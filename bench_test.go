// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment and reports the
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at a reduced (shape-preserving) scale.
// Use cmd/proteus-bench for the full printed tables and -paperscale runs.
package repro_test

import (
	"context"
	"io"
	"strconv"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/ledger"
	"repro/internal/logging"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchOpt is sized so each experiment completes in seconds while keeping
// realistic per-transaction behaviour (full Table 2 initialization
// footprints are too slow to rebuild per benchmark here; InitScale 4
// keeps multi-megabyte structures).
func benchOpt() experiments.Options {
	return experiments.Options{Threads: 4, SimScale: 100, InitScale: 4, Seed: 42}
}

// benchSuite builds a fresh suite — and therefore a fresh engine cache —
// per benchmark iteration, so b.N > 1 iterations re-simulate instead of
// replaying memoized results.
func benchSuite() *experiments.Suite {
	return experiments.NewSuite(context.Background(), benchOpt(), engine.New(engine.Config{}))
}

func reportGeomean(b *testing.B, get func() (float64, error), unit string) {
	b.Helper()
	var v float64
	for i := 0; i < b.N; i++ {
		x, err := get()
		if err != nil {
			b.Fatal(err)
		}
		v = x
	}
	b.ReportMetric(v, unit)
}

// BenchmarkFigure6 regenerates the NVMM speedup comparison; the metric is
// the Proteus geomean speedup over PMEM (paper: 1.46).
func BenchmarkFigure6(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure6()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "Proteus"), nil
	}, "proteus-speedup")
}

// BenchmarkFigure7 regenerates the front-end stall comparison; the metric
// is ATOM's stalls normalized to the ideal case (paper: ~1.16).
func BenchmarkFigure7(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure7()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "ATOM"), nil
	}, "atom-stalls-vs-ideal")
}

// BenchmarkFigure8 regenerates the NVMM write comparison; the metric is
// ATOM's write amplification over the ideal case (paper: ~3.4).
func BenchmarkFigure8(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure8()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "ATOM"), nil
	}, "atom-write-amp")
}

// BenchmarkFigure9 regenerates the slow-NVM study; the metric is the
// Proteus geomean speedup (paper: 1.49).
func BenchmarkFigure9(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure9()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "Proteus"), nil
	}, "proteus-speedup-slownvm")
}

// BenchmarkFigure10 regenerates the DRAM study; the metric is the Proteus
// geomean speedup (paper: 1.47).
func BenchmarkFigure10(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure10()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "Proteus"), nil
	}, "proteus-speedup-dram")
}

// BenchmarkFigure11 regenerates the LogQ sweep; the metric is the geomean
// speedup gained growing the LogQ from 1 to 64 entries.
func BenchmarkFigure11(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure11()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "LogQ=64") - tab.Get("geomean", "LogQ=1"), nil
	}, "logq-1-to-64-gain")
}

// BenchmarkFigure12 regenerates the LPQ sweep; the metric is the geomean
// speedup at the paper's chosen 256-entry LPQ.
func BenchmarkFigure12(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure12()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "LPQ=256"), nil
	}, "speedup-at-lpq256")
}

// BenchmarkTable3 regenerates the large-transaction study; the metric is
// Proteus's speedup at 8192-element transactions (paper: 1.24 vs ideal
// 1.27).
func BenchmarkTable3(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		res, err := benchSuite().Table3()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", res.Speedups)
		return res.Speedups.Get("8192", "Proteus"), nil
	}, "proteus-speedup-8192")
}

// BenchmarkTable4 regenerates the LLT miss rates; the metric is the QE
// miss rate (paper: 22.5%).
func BenchmarkTable4(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Table4()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get(workload.Queue.Abbrev(), "miss rate"), nil
	}, "qe-llt-missrate-pct")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles
// simulated per wall second) on one Proteus run — the cost of the
// substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().Figure6()
		_ = tab
		return float64(b.Elapsed().Milliseconds()), err
	}, "ms-per-suite")
}

// BenchmarkEngineSerialVsParallel runs Figure 6's 36-job matrix once on a
// single worker and once on GOMAXPROCS workers; the metric is the parallel
// speedup. Tables are asserted byte-identical in either mode by
// TestEngineDeterminismAcrossWorkers.
func BenchmarkEngineSerialVsParallel(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		time1, err := timeSuite(1)
		if err != nil {
			return 0, err
		}
		timeN, err := timeSuite(0) // 0 = GOMAXPROCS
		if err != nil {
			return 0, err
		}
		return time1 / timeN, nil
	}, "parallel-speedup")
}

func timeSuite(workers int) (float64, error) {
	s := experiments.NewSuite(context.Background(), benchOpt(), engine.New(engine.Config{Workers: workers}))
	start := time.Now()
	if _, err := s.Figure6(); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()), nil
}

// BenchmarkAblationPersistency compares §2.1's persistency models on the
// software baseline; the metric is strict persistency's geomean slowdown
// over the durable-transaction model.
func BenchmarkAblationPersistency(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().PersistencyModels()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "strict"), nil
	}, "strict-slowdown")
}

// BenchmarkAblationStaticElim compares the hardware LLT against
// compiler-side duplicate-log elimination (§4.2); the metric is the
// fraction of log operations a perfect compiler still has to emit.
func BenchmarkAblationStaticElim(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().StaticVsDynamicFiltering()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "logops-emitted-ratio"), nil
	}, "static-emit-ratio")
}

// BenchmarkAblationATOMInFlight sweeps ATOM's log-request pipelining; the
// metric is ATOM's geomean speedup at the deepest pipeline, which still
// trails Proteus (the LogQ decoupling, not request bandwidth, is the
// difference).
func BenchmarkAblationATOMInFlight(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().ATOMInFlightSweep()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "inflight=16"), nil
	}, "atom-speedup-deep-pipe")
}

// BenchmarkAblationWPQ sweeps the WPQ capacity under the software
// baseline; the metric is the slowdown of a 16-entry WPQ relative to 128.
func BenchmarkAblationWPQ(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().WPQSweep()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "WPQ=16"), nil
	}, "wpq16-slowdown")
}

// BenchmarkAblationWPQDrain sweeps the WPQ drain-age threshold under the
// software baseline; the metric is the geomean slowdown of an eager
// (age=8) drain policy relative to the default age of 48.
func BenchmarkAblationWPQDrain(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().WPQDrainSweep()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get("geomean", "age=8"), nil
	}, "eager-drain-slowdown")
}

// aluSystem builds a machine whose cores grind one enormous ALU op: the
// Step loop runs indefinitely without touching memory or allocating,
// isolating the per-cycle cost the trace layer adds.
func aluSystem(tb testing.TB, cores int) *core.System {
	tb.Helper()
	cfg := config.Default()
	cfg.Cores = cores
	traces := make([]*isa.Trace, cores)
	for i := range traces {
		traces[i] = &isa.Trace{Thread: i, Ops: []isa.Op{{Kind: isa.Alu, Val: 1 << 30}}}
	}
	sys, err := core.NewSystem(cfg, core.Proteus, traces, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// TestNilTracerAddsNoAllocations is the observability layer's zero-cost
// guard: with no tracer attached (the default), the simulation loop must
// not allocate — the disabled path is one pointer nil-check per cycle.
func TestNilTracerAddsNoAllocations(t *testing.T) {
	sys := aluSystem(t, 4)
	sys.Step(10_000) // warm up any lazy internal state
	if allocs := testing.AllocsPerRun(50, func() { sys.Step(2_000) }); allocs != 0 {
		t.Fatalf("untraced Step allocates %.1f times per 2k cycles, want 0", allocs)
	}
}

// BenchmarkStepNilTracer measures the per-cycle cost of the simulation
// loop with tracing disabled — the baseline BenchmarkStepTraced compares
// against.
func BenchmarkStepNilTracer(b *testing.B) {
	sys := aluSystem(b, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(1_000)
	}
}

// BenchmarkStepTraced is the same loop with a JSONL tracer sampling every
// DefaultEpoch cycles into a discarded stream: the difference to
// BenchmarkStepNilTracer is the layer's total enabled overhead.
func BenchmarkStepTraced(b *testing.B) {
	sys := aluSystem(b, 4)
	tr, err := trace.NewJSONLTracer(io.Discard, trace.Meta{Label: "bench", Cores: 4}, 0)
	if err != nil {
		b.Fatal(err)
	}
	sys.SetTracer(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(1_000)
	}
	b.StopTimer()
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
}

// steadySystem builds a Proteus machine running a real Table-2 queue
// workload and steps it past warm-up, so every ring, pool, queue and
// stats buffer has hit its high-water mark before measurement begins.
func steadySystem(tb testing.TB) *core.System {
	tb.Helper()
	p := workload.Queue.DefaultParams(1)
	p.InitOps /= 8 // keep the build cheap; SimOps full-length so the run outlasts the bench
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = p.Threads
	traces, err := logging.Generate(w, core.Proteus, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	if err != nil {
		tb.Fatal(err)
	}
	sys.Step(10_000)
	if sys.Finished() {
		tb.Fatal("workload finished during warm-up; steady state never reached")
	}
	return sys
}

// TestStepSteadyStateAllocFree asserts the hot loop's headline property:
// once warm, advancing the machine — cores, caches, memory controller,
// NVM timing, logging — performs zero heap allocations per Step.
func TestStepSteadyStateAllocFree(t *testing.T) {
	sys := steadySystem(t)
	if allocs := testing.AllocsPerRun(20, func() { sys.Step(2_000) }); allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f times per 2k cycles, want 0", allocs)
	}
	if sys.Finished() {
		t.Fatal("workload finished during measurement; shorten the measured spans")
	}
}

// BenchmarkStepSteadyState measures the per-cycle cost of the full
// machine under a real logging workload (queue benchmark, Proteus
// scheme), mid-run. Compare against BenchmarkStepNilTracer, which bounds
// the same loop from below with pure ALU work.
func BenchmarkStepSteadyState(b *testing.B) {
	sys := steadySystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.Finished() {
			b.StopTimer()
			sys = steadySystem(b)
			b.StartTimer()
		}
		sys.Step(2_000)
	}
}

// benchLedger opens a fresh ledger in a per-call temp dir. The
// admission benchmarks rotate to a new one periodically so the
// append-rewrites-whole-file cost stays representative of a live
// serving ledger instead of growing without bound with b.N.
func benchLedger(b *testing.B) *ledger.Ledger {
	b.Helper()
	lg, err := ledger.Open(ledger.DefaultPath(b.TempDir()), nil)
	if err != nil {
		b.Fatal(err)
	}
	return lg
}

func benchLeaf(i int) ledger.Leaf {
	return ledger.Leaf{
		Kind:     ledger.LeafAdmission,
		Key:      "0123456789abcdef",
		ConfigFP: "fedcba9876543210",
		Scheme:   "Proteus",
		Workload: "QE",
		Revision: "bench",
		Digest:   strconv.Itoa(i),
	}
}

// BenchmarkAdmissionBatched measures serve-path admission throughput
// with the batcher in front of the ledger: Submit is a slice append
// plus two non-blocking signals, and one fsynced chain rewrite seals
// 64 admissions. Compare BenchmarkAdmissionUnbatched — the same leaves
// sealed one record each — for the batching win.
func BenchmarkAdmissionBatched(b *testing.B) {
	const rotate = 1 << 14
	lg := benchLedger(b)
	bt := ledger.NewBatcher(lg, 64, 2*time.Millisecond)
	ctx := context.Background()
	tickets := make([]*ledger.Ticket, 0, min(b.N, rotate))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%rotate == 0 {
			drainTickets(b, ctx, tickets)
			tickets = tickets[:0]
			bt.Close()
			lg = benchLedger(b)
			bt = ledger.NewBatcher(lg, 64, 2*time.Millisecond)
		}
		tickets = append(tickets, bt.Submit(benchLeaf(i)))
	}
	drainTickets(b, ctx, tickets)
	b.StopTimer()
	bt.Close()
}

func drainTickets(b *testing.B, ctx context.Context, tickets []*ledger.Ticket) {
	b.Helper()
	for _, tk := range tickets {
		if _, err := tk.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionUnbatched seals one record per admission — the
// naive design the batcher replaces: every admission pays a full
// Merkle build, chain rewrite, fsync and read-back of its own.
func BenchmarkAdmissionUnbatched(b *testing.B) {
	const rotate = 1 << 9
	lg := benchLedger(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%rotate == 0 {
			lg = benchLedger(b)
		}
		if _, err := lg.Append([]ledger.Leaf{benchLeaf(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLLTSweep reports the QE miss rate at a 256-entry LLT.
func BenchmarkAblationLLTSweep(b *testing.B) {
	reportGeomean(b, func() (float64, error) {
		tab, err := benchSuite().LLTSweep()
		if err != nil {
			return 0, err
		}
		b.Logf("\n%s", tab)
		return tab.Get(workload.Queue.Abbrev(), "LLT=256"), nil
	}, "qe-llt256-missrate")
}
