// Command proteus-bench regenerates the paper's tables and figures. By
// default it runs every experiment at the standard reduced scale
// (full Table 2 footprints, 1/25th of the timed operations); -fig selects
// one experiment and -paperscale runs the full Table 2 operation counts.
//
// Example:
//
//	proteus-bench                # everything
//	proteus-bench -fig 6         # just Figure 6
//	proteus-bench -fig t3        # just Table 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment: 6-12, t3, t4, logq-delta, all; ablations: persistency, llt, static-elim, atom-inflight, wpq, ablations")
		threads    = flag.Int("threads", 4, "worker threads / cores")
		simScale   = flag.Int("simscale", 25, "divide Table 2 timed operation counts by this")
		initScale  = flag.Int("initscale", 1, "divide Table 2 initialization counts by this (affects footprint)")
		paperScale = flag.Bool("paperscale", false, "run the full Table 2 operation counts (hours)")
		seed       = flag.Int64("seed", 42, "workload seed")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			exitOn(err)
		}
	}

	opt := experiments.Options{Threads: *threads, SimScale: *simScale, InitScale: *initScale, Seed: *seed}
	if *paperScale {
		opt.SimScale = 1
		opt.InitScale = 1
	}

	sel := strings.ToLower(*fig)
	want := func(name string) bool { return sel == "all" || sel == name }

	type tableExp struct {
		name string
		run  func(experiments.Options) (fmt.Stringer, error)
	}
	exps := []tableExp{
		{"6", wrap(experiments.Figure6)},
		{"7", wrap(experiments.Figure7)},
		{"8", wrap(experiments.Figure8)},
		{"9", wrap(experiments.Figure9)},
		{"10", wrap(experiments.Figure10)},
		{"11", wrap(experiments.Figure11)},
		{"12", wrap(experiments.Figure12)},
	}
	// Ablations beyond the paper's own sensitivity study; selected by
	// name, or by "ablations" for the whole group (excluded from "all").
	ablations := []tableExp{
		{"persistency", wrap(experiments.PersistencyModels)},
		{"llt", wrap(experiments.LLTSweep)},
		{"static-elim", wrap(experiments.StaticVsDynamicFiltering)},
		{"atom-inflight", wrap(experiments.ATOMInFlightSweep)},
		{"wpq", wrap(experiments.WPQSweep)},
	}

	emit := func(name string, out fmt.Stringer) {
		fmt.Println(out)
		if *csvDir == "" {
			return
		}
		tab, ok := out.(*stats.Table)
		if !ok {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, "fig"+name+".csv"))
		exitOn(err)
		exitOn(tab.WriteCSV(f))
		exitOn(f.Close())
	}

	ran := false
	for _, e := range exps {
		if !want(e.name) {
			continue
		}
		ran = true
		out, err := e.run(opt)
		exitOn(err)
		emit(e.name, out)
	}
	for _, e := range ablations {
		if sel != e.name && sel != "ablations" {
			continue
		}
		ran = true
		out, err := e.run(opt)
		exitOn(err)
		emit(e.name, out)
	}

	if want("t3") {
		ran = true
		res, err := experiments.Table3(opt)
		exitOn(err)
		fmt.Println(res.Speedups)
		fmt.Println("log entries per transaction (before LLT -> flushed to MC):")
		for _, n := range experiments.Table3Sizes {
			fmt.Printf("  %5d elements: %8.0f -> %8.0f\n", n, res.EntriesPerTxn[n], res.FlushedPerTxn[n])
		}
		fmt.Println()
	}
	if want("t4") {
		ran = true
		tab, err := experiments.Table4(opt)
		exitOn(err)
		fmt.Println(tab)
	}
	if want("logq-delta") {
		ran = true
		nvmD, dramD, err := experiments.LogQMemoryDelta(opt)
		exitOn(err)
		fmt.Printf("LogQ 8->16 geomean speedup delta: %+.3f on NVM, %+.3f on DRAM (§7.2)\n\n", nvmD, dramD)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "proteus-bench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}
}

func wrap[T fmt.Stringer](f func(experiments.Options) (T, error)) func(experiments.Options) (fmt.Stringer, error) {
	return func(o experiments.Options) (fmt.Stringer, error) { return f(o) }
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-bench:", err)
		os.Exit(1)
	}
}
