// Command proteus-bench regenerates the paper's tables and figures. By
// default it runs every experiment at the standard reduced scale
// (full Table 2 footprints, 1/25th of the timed operations); -fig selects
// one experiment and -paperscale runs the full Table 2 operation counts.
//
// All selected experiments share one simulation engine: their combined
// (workload, scheme, config) job matrix runs on -jobs parallel workers,
// and a tuple several figures have in common is simulated exactly once.
// Ctrl-C cancels the remaining jobs.
//
// Example:
//
//	proteus-bench                # everything, GOMAXPROCS workers
//	proteus-bench -fig 6         # just Figure 6
//	proteus-bench -fig t3        # just Table 3
//	proteus-bench -jobs 1        # serial (tables are identical either way)
//	proteus-bench -fig 6 -trace-dir traces  # one JSONL trace per job
//	proteus-bench -pprof localhost:6060     # live profiling of the harness
//
// With -csv the per-job metrics summary (cycles, wall time, failures) is
// written next to the tables as metrics.json. A job that exceeds -timeout
// fails alone: the remaining jobs complete and the affected table cells
// render as "-".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment: 6-12, t3, t4, logq-delta, all; ablations: persistency, llt, static-elim, atom-inflight, wpq, wpq-drain, ablations")
		threads    = flag.Int("threads", 4, "worker threads / cores")
		simScale   = flag.Int("simscale", 25, "divide Table 2 timed operation counts by this")
		initScale  = flag.Int("initscale", 1, "divide Table 2 initialization counts by this (affects footprint)")
		paperScale = flag.Bool("paperscale", false, "run the full Table 2 operation counts (hours)")
		seed       = flag.Int64("seed", 42, "workload seed")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		jobs       = flag.Int("jobs", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
		jobTimeout = flag.Duration("timeout", 0, "wall-clock limit per simulation job, e.g. 10m (0 = none)")
		verbose    = flag.Bool("v", false, "log each simulation job to stderr as it finishes")
		traceDir   = flag.String("trace-dir", "", "write one epoch-sampled JSONL trace per simulation job into this directory")
		traceEpoch = flag.Uint64("trace-epoch", trace.DefaultEpoch, "cycles between trace samples (with -trace-dir)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060")
		storeDir   = flag.String("store", "", "persistent result store directory: reruns of identical tuples are answered from disk")
		stepperSel = flag.String("stepper", "fast", "cycle-advance strategy: fast (event-driven fast-forward) or reference (per-cycle)")
	)
	flag.Parse()
	stepper, err := core.StepperByName(*stepperSel)
	exitOn(err)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			exitOn(err)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			exitOn(err)
		}
	}
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "proteus-bench: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "proteus-bench: pprof:", err)
			}
		}()
	}

	opt := experiments.Options{Threads: *threads, SimScale: *simScale, InitScale: *initScale, Seed: *seed}
	if *paperScale {
		opt.SimScale = 1
		opt.InitScale = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	econf := engine.Config{Workers: *jobs, JobTimeout: *jobTimeout, Stepper: stepper}
	if *storeDir != "" {
		st, err := resultstore.Open(*storeDir)
		exitOn(err)
		econf.Store = st
	}
	if *traceDir != "" {
		dir, epoch := *traceDir, *traceEpoch
		econf.Trace = func(j engine.Job) (*trace.Tracer, error) {
			f, err := os.Create(filepath.Join(dir, traceName(j)))
			if err != nil {
				return nil, err
			}
			meta := trace.Meta{Label: j.String(), Fingerprint: j.Fingerprint(), Cores: j.Config.Cores}
			tr, err := trace.NewJSONLTracer(f, meta, epoch)
			if err != nil {
				f.Close()
				return nil, err
			}
			return tr, nil
		}
	}
	if *verbose {
		econf.Progress = func(ev engine.Event) {
			if ev.Phase == engine.JobDone {
				status := "ok"
				if ev.Err != nil {
					status = ev.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "proteus-bench: %v in %v (%s)\n", ev.Job, ev.Elapsed.Round(time.Millisecond), status)
			}
		}
	}
	eng := engine.New(econf)
	suite := experiments.NewSuite(ctx, opt, eng)
	start := time.Now()

	sel := strings.ToLower(*fig)
	want := func(name string) bool { return sel == "all" || sel == name }

	type tableExp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	exps := []tableExp{
		{"6", wrap(suite.Figure6)},
		{"7", wrap(suite.Figure7)},
		{"8", wrap(suite.Figure8)},
		{"9", wrap(suite.Figure9)},
		{"10", wrap(suite.Figure10)},
		{"11", wrap(suite.Figure11)},
		{"12", wrap(suite.Figure12)},
	}
	// Ablations beyond the paper's own sensitivity study; selected by
	// name, or by "ablations" for the whole group (excluded from "all").
	ablations := []tableExp{
		{"persistency", wrap(suite.PersistencyModels)},
		{"llt", wrap(suite.LLTSweep)},
		{"static-elim", wrap(suite.StaticVsDynamicFiltering)},
		{"atom-inflight", wrap(suite.ATOMInFlightSweep)},
		{"wpq", wrap(suite.WPQSweep)},
		{"wpq-drain", wrap(suite.WPQDrainSweep)},
	}

	emit := func(name string, out fmt.Stringer) {
		fmt.Println(out)
		if *csvDir == "" {
			return
		}
		tab, ok := out.(*stats.Table)
		if !ok {
			return
		}
		// Atomic publish: an interrupted run never leaves a truncated
		// table where a previous complete one stood.
		var buf bytes.Buffer
		exitOn(tab.WriteCSV(&buf))
		exitOn(resultstore.WriteFileAtomic(filepath.Join(*csvDir, "fig"+name+".csv"), buf.Bytes(), 0o644))
	}

	ran := false
	for _, e := range exps {
		if !want(e.name) {
			continue
		}
		ran = true
		out, err := e.run()
		exitOn(err)
		emit(e.name, out)
	}
	for _, e := range ablations {
		if sel != e.name && sel != "ablations" {
			continue
		}
		ran = true
		out, err := e.run()
		exitOn(err)
		emit(e.name, out)
	}

	if want("t3") {
		ran = true
		res, err := suite.Table3()
		exitOn(err)
		fmt.Println(res.Speedups)
		fmt.Println("log entries per transaction (before LLT -> flushed to MC):")
		for _, n := range experiments.Table3Sizes {
			fmt.Printf("  %5d elements: %8.0f -> %8.0f\n", n, res.EntriesPerTxn[n], res.FlushedPerTxn[n])
		}
		fmt.Println()
	}
	if want("t4") {
		ran = true
		tab, err := suite.Table4()
		exitOn(err)
		fmt.Println(tab)
	}
	if want("logq-delta") {
		ran = true
		nvmD, dramD, err := suite.LogQMemoryDelta()
		exitOn(err)
		fmt.Printf("LogQ 8->16 geomean speedup delta: %+.3f on NVM, %+.3f on DRAM (§7.2)\n\n", nvmD, dramD)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "proteus-bench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}
	if *csvDir != "" {
		// The per-job metrics summary rides along with the tables: one row
		// per executed simulation (cycles, wall time, failure if any).
		// Written atomically so an interrupted run never leaves truncated
		// JSON on disk.
		data, err := json.MarshalIndent(eng.Metrics(), "", "  ")
		exitOn(err)
		exitOn(resultstore.WriteFileAtomic(filepath.Join(*csvDir, "metrics.json"), append(data, '\n'), 0o644))
	}
	c := eng.Counters()
	fmt.Fprintf(os.Stderr, "proteus-bench: %d simulations (%d failed, %d duplicate requests served from cache, %d answered from result store, %d workloads built) in %v\n",
		c.Simulated, c.Failed, c.Deduped, c.StoreHits, c.WorkloadsBuilt, time.Since(start).Round(time.Millisecond))
	if c.Failed > 0 {
		for _, m := range eng.Metrics() {
			if m.Err != "" {
				fmt.Fprintf(os.Stderr, "proteus-bench: failed: %s (%s): %s\n", m.Job, m.Fingerprint, m.Err)
			}
		}
		// The tables already rendered with the survivors; the exit code
		// still has to tell CI something was missing.
		os.Exit(1)
	}
}

// traceName builds a per-job trace filename: the readable tuple plus the
// full-key fingerprint, which keeps jobs distinct even when they share a
// workload kind, scheme and config (e.g. the Table 3 size sweep).
func traceName(j engine.Job) string {
	r := strings.NewReplacer("/", "_", "+", "-", " ", "")
	return r.Replace(j.String()) + "-" + j.Fingerprint() + ".jsonl"
}

func wrap[T fmt.Stringer](f func() (T, error)) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) { return f() }
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-bench:", err)
		os.Exit(1)
	}
}
