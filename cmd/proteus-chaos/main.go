// Command proteus-chaos is the end-to-end fault-tolerance soak for the
// serve/cluster/resultstore stack. Each iteration it runs the same small
// crash campaign twice — once fault-free on a local engine, once on a
// real in-process cluster (serve HTTP front, coordinator, pull workers)
// with deterministic, seed-driven faults injected at every layer — and
// requires the two reports to be byte-identical.
//
// Fault surfaces (selected with -faults):
//
//	fs    torn writes, bit flips, ENOSPC, fsync failures and
//	      crash-before-rename inside every result store
//	http  dropped, delayed, duplicated and 5xx'd worker↔coordinator
//	      protocol calls
//	kill  a worker killed mid-batch each iteration (its leases must
//	      expire and requeue) plus injected worker stalls longer than
//	      the lease TTL (their late completions must drop as stale)
//
// The soak ends by scrubbing every store: corrupt entries are
// quarantined, and a second scrub must come back clean. Any report
// mismatch, quarantined cluster item, or residual corruption exits 1.
//
// Example:
//
//	proteus-chaos -seed 42 -duration 60s -workers 3 -faults fs,http,kill
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "chaos seed; fixes the fault mix and all jitter")
		duration = flag.Duration("duration", 20*time.Second, "keep starting iterations until this much time has passed")
		workers  = flag.Int("workers", 3, "cluster workers per iteration (plus the kill victim)")
		faults   = flag.String("faults", "fs,http,kill", "comma-separated fault surfaces: fs, http, kill (empty = none)")
		storeDir = flag.String("store", "", "root directory for the result stores (default: a temp dir)")
		out      = flag.String("out", "", "write the JSON soak report here (default: stdout)")
		verbose  = flag.Bool("v", false, "log worker and coordinator activity")
	)
	flag.Parse()
	if err := run(*seed, *duration, *workers, *faults, *storeDir, *out, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "proteus-chaos:", err)
		os.Exit(1)
	}
}

// soakReport is the machine-readable outcome of one soak.
type soakReport struct {
	Seed       int64             `json:"seed"`
	Workers    int               `json:"workers"`
	Iterations int               `json:"iterations"`
	Mismatches int               `json:"mismatches"`
	Faults     map[string]uint64 `json:"faults"`

	// Cluster recovery activity summed over all iterations.
	LeaseExpired   uint64 `json:"lease_expired"`
	Requeued       uint64 `json:"requeued"`
	StaleReports   uint64 `json:"stale_reports"`
	UnknownWorker  uint64 `json:"unknown_worker_calls"`
	WorkersEvicted uint64 `json:"workers_evicted"`
	ItemsLost      uint64 `json:"items_quarantined"` // must be 0

	// Store repair at the end of the soak.
	ScrubScanned     int `json:"scrub_scanned"`
	ScrubCorrupt     int `json:"scrub_corrupt"`
	StoreQuarantined int `json:"store_quarantined"` // corpses parked on disk

	Elapsed string `json:"elapsed"`
}

func run(seed int64, duration time.Duration, workers int, faultList, storeDir, out string, verbose bool) error {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var fsFaults, httpFaults, killFaults bool
	for _, f := range strings.Split(faultList, ",") {
		switch strings.TrimSpace(f) {
		case "fs":
			fsFaults = true
		case "http":
			httpFaults = true
		case "kill":
			killFaults = true
		case "":
		default:
			return fmt.Errorf("unknown fault surface %q (want fs, http, kill)", f)
		}
	}
	conf := chaos.Config{}
	if fsFaults {
		conf.TornWrite, conf.BitFlip = 0.05, 0.05
		conf.ENOSPC, conf.SyncFail, conf.CrashRename = 0.02, 0.02, 0.02
	}
	if httpFaults {
		conf.Drop, conf.Delay, conf.Dup, conf.ServerError = 0.04, 0.08, 0.04, 0.04
		conf.MaxDelay = 25 * time.Millisecond
	}
	in := chaos.New(seed, conf)

	if storeDir == "" {
		dir, err := os.MkdirTemp("", "proteus-chaos-")
		if err != nil {
			return err
		}
		storeDir = dir
		defer os.RemoveAll(dir)
	}

	ctx := context.Background()
	start := time.Now()
	rep := soakReport{Seed: seed, Workers: workers}
	for time.Since(start) < duration {
		iterSeed := seed + int64(rep.Iterations)
		camp := campaignConf(iterSeed)

		// Fault-free reference on a private local engine.
		ref := camp
		ref.Engine = engine.New(engine.Config{Workers: 2})
		want, err := reportBytes(ctx, ref)
		if err != nil {
			return fmt.Errorf("iteration %d: fault-free reference run: %w", rep.Iterations, err)
		}

		got, stats, err := chaosIteration(ctx, iterArgs{
			campaign: camp, injector: in, logger: logger,
			storeDir: storeDir, workers: workers, seed: seed,
			fsFaults: fsFaults, httpFaults: httpFaults, killFaults: killFaults,
		})
		if err != nil {
			return fmt.Errorf("iteration %d: chaos run: %w", rep.Iterations, err)
		}
		if !bytes.Equal(want, got) {
			rep.Mismatches++
			fmt.Fprintf(os.Stderr, "iteration %d: REPORT MISMATCH\nfault-free: %s\nchaos:      %s\n",
				rep.Iterations, want, got)
		}
		rep.LeaseExpired += stats.LeaseExpired
		rep.Requeued += stats.Requeued
		rep.StaleReports += stats.StaleReports
		rep.UnknownWorker += stats.UnknownWorkerCalls
		rep.WorkersEvicted += stats.WorkersEvicted
		rep.ItemsLost += stats.QuarantinedN
		rep.Iterations++
	}

	// Repair pass: scrub every store, then verify a second scrub finds
	// nothing — latent corruption must not outlive the soak.
	dirs, err := filepath.Glob(filepath.Join(storeDir, "*"))
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		st, err := resultstore.Open(dir)
		if err != nil {
			return fmt.Errorf("opening %s for scrub: %w", dir, err)
		}
		sr, err := st.Scrub()
		if err != nil {
			return fmt.Errorf("scrubbing %s: %w", dir, err)
		}
		rep.ScrubScanned += sr.Scanned
		rep.ScrubCorrupt += sr.Corrupt
		if again, err := st.Scrub(); err != nil || again.Corrupt != 0 {
			return fmt.Errorf("store %s still corrupt after scrub: %+v (%v)", dir, again, err)
		}
		q, err := st.Quarantined()
		if err != nil {
			return err
		}
		rep.StoreQuarantined += q
	}

	rep.Faults = in.Counters()
	rep.Elapsed = time.Since(start).Round(time.Millisecond).String()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	}
	os.Stdout.Write(data)

	switch {
	case rep.Iterations == 0:
		return errors.New("no iterations completed within the duration")
	case rep.Mismatches > 0:
		return fmt.Errorf("%d report mismatches", rep.Mismatches)
	case rep.ItemsLost > 0:
		return fmt.Errorf("%d cluster items quarantined (unrecovered work)", rep.ItemsLost)
	case (fsFaults || httpFaults) && in.Total() == 0:
		return errors.New("fault surfaces enabled but nothing fired; soak proved nothing")
	}
	return nil
}

// campaignConf is the per-iteration campaign: small enough for a few
// seconds per run, rich enough (2 benches × 2 schemes, torn-write
// sweeps) that tuple reports carry real classification work. The
// campaign seed varies per iteration so the soak does not keep
// replaying one memoized answer.
func campaignConf(iterSeed int64) crashcampaign.Config {
	faults, err := crashcampaign.ParseFaults("torn")
	if err != nil {
		panic(err)
	}
	return crashcampaign.Config{
		Benches: []workload.Kind{workload.Queue, workload.StringSwap},
		Schemes: []core.Scheme{core.Proteus, core.ATOM},
		Params: workload.Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 11,
			SSItems: 64, SSStrSize: 64},
		Sim:    config.Default(),
		Sweep:  4,
		Faults: faults,
		Seed:   iterSeed,
	}
}

func reportBytes(ctx context.Context, c crashcampaign.Config) ([]byte, error) {
	rep, err := crashcampaign.Run(ctx, c)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type iterArgs struct {
	campaign crashcampaign.Config
	injector *chaos.Injector
	logger   *slog.Logger
	storeDir string
	workers  int
	seed     int64
	fsFaults bool
	httpFaults bool
	killFaults bool
}

// chaosIteration runs one campaign on a full in-process cluster — serve
// HTTP front, coordinator, pull workers with their own stores — under
// the injector's faults, and returns the report bytes plus the
// coordinator's closing stats.
func chaosIteration(ctx context.Context, a iterArgs) ([]byte, cluster.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Minute)
	defer cancel()

	openStore := func(name string) (*resultstore.Store, error) {
		var fsys resultstore.FS
		if a.fsFaults {
			fsys = chaos.NewFS(a.injector)
		}
		return resultstore.OpenFS(filepath.Join(a.storeDir, name), fsys)
	}

	coStore, err := openStore("coordinator")
	if err != nil {
		return nil, cluster.Stats{}, err
	}
	co := cluster.NewCoordinator(cluster.Config{
		LeaseTTL:    time.Second,
		RetryBudget: 10,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
		Seed:        a.seed,
		Publish:     cluster.PublishToStore(coStore, a.logger),
		Logger:      a.logger,
	})
	srv, err := serve.New(serve.Config{
		Engine:  engine.New(engine.Config{Workers: 2, Store: coStore}),
		Store:   coStore,
		Cluster: co,
		Logger:  a.logger,
	})
	if err != nil {
		return nil, cluster.Stats{}, err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, cluster.Stats{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	newWorker := func(name, store string) (*cluster.Worker, error) {
		eng := engine.Config{Workers: 2}
		st, err := openStore(store)
		if err != nil {
			return nil, err
		}
		eng.Store = st
		client := &http.Client{Timeout: 30 * time.Second}
		if a.httpFaults {
			client.Transport = chaos.NewRoundTripper(a.injector)
		}
		w := &cluster.Worker{
			Name: name, Coordinator: url,
			Engine: engine.New(eng),
			Batch:  2, Poll: 20 * time.Millisecond,
			Client:    client,
			Logger:    a.logger,
			RetryBase: 20 * time.Millisecond, RetryMax: 250 * time.Millisecond,
		}
		if a.killFaults {
			// Occasionally stall past the lease TTL before executing: the
			// coordinator must requeue the batch and drop the stalled
			// worker's late completions as stale.
			w.Hooks.Leased = func(items []cluster.Item) {
				if a.injector.Roll("proc.stall", 0.05) {
					time.Sleep(1500 * time.Millisecond)
				}
			}
		}
		return w, nil
	}

	wctx, stopWorkers := context.WithCancel(ctx)
	var wg sync.WaitGroup
	startWorker := func(w *cluster.Worker, runCtx context.Context) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(runCtx)
		}()
	}
	for i := 0; i < a.workers; i++ {
		w, err := newWorker(fmt.Sprintf("worker-%d", i), fmt.Sprintf("worker-%d", i))
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, err
		}
		startWorker(w, wctx)
	}
	if a.killFaults {
		// The victim dies the instant it first leases work — SIGKILL as
		// the coordinator sees it: held leases, then silence. A phoenix
		// replacement (same store) joins so capacity recovers.
		victimCtx, killVictim := context.WithCancel(wctx)
		defer killVictim()
		var once sync.Once
		victim, err := newWorker("victim", "victim")
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, err
		}
		victim.Hooks.Leased = func(items []cluster.Item) {
			once.Do(killVictim)
		}
		startWorker(victim, victimCtx)
		phoenix, err := newWorker("phoenix", "victim")
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, err
		}
		startWorker(phoenix, wctx)
	}

	got, runErr := func() ([]byte, error) {
		rep, err := cluster.RunCampaign(ctx, co, a.campaign)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}()

	// Exercise the operator surface while the stack is still up: a scrub
	// over HTTP and a metrics scrape must both succeed under chaos. These
	// use a clean client — they model the operator, not the fleet.
	if runErr == nil {
		if resp, err := http.Post(url+"/v1/store/scrub", "application/json", nil); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				runErr = fmt.Errorf("scrub endpoint returned %d", resp.StatusCode)
			}
		} else {
			runErr = fmt.Errorf("scrub endpoint: %w", err)
		}
	}
	if runErr == nil {
		if resp, err := http.Get(url + "/metrics"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else {
			runErr = fmt.Errorf("metrics scrape: %w", err)
		}
	}

	stats := co.Stats()
	stopWorkers()
	wg.Wait()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(shutCtx)
	srv.Drain(shutCtx)
	shutCancel()
	ln.Close()
	return got, stats, runErr
}
