// Command proteus-chaos is the end-to-end fault-tolerance soak for the
// serve/cluster/resultstore stack. Each iteration it runs the same small
// crash campaign twice — once fault-free on a local engine, once on a
// real in-process cluster (serve HTTP front, coordinator, pull workers)
// with deterministic, seed-driven faults injected at every layer — and
// requires the two reports to be byte-identical.
//
// Fault surfaces (selected with -faults):
//
//	fs    torn writes, bit flips, ENOSPC, fsync failures and
//	      crash-before-rename inside every result store
//	http  dropped, delayed, duplicated and 5xx'd worker↔coordinator
//	      protocol calls
//	kill  a worker killed mid-batch each iteration (its leases must
//	      expire and requeue) plus injected worker stalls longer than
//	      the lease TTL (their late completions must drop as stale)
//
// The soak ends by scrubbing every store: corrupt entries are
// quarantined, and a second scrub must come back clean. Any report
// mismatch, quarantined cluster item, or residual corruption exits 1.
//
// Example:
//
//	proteus-chaos -seed 42 -duration 60s -workers 3 -faults fs,http,kill
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "chaos seed; fixes the fault mix and all jitter")
		duration = flag.Duration("duration", 20*time.Second, "keep starting iterations until this much time has passed")
		workers  = flag.Int("workers", 3, "cluster workers per iteration (plus the kill victim)")
		faults   = flag.String("faults", "fs,http,kill", "comma-separated fault surfaces: fs, http, kill (empty = none)")
		storeDir = flag.String("store", "", "root directory for the result stores (default: a temp dir)")
		out      = flag.String("out", "", "write the JSON soak report here (default: stdout)")
		verbose  = flag.Bool("v", false, "log worker and coordinator activity")
	)
	flag.Parse()
	if err := run(*seed, *duration, *workers, *faults, *storeDir, *out, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "proteus-chaos:", err)
		os.Exit(1)
	}
}

// soakReport is the machine-readable outcome of one soak.
type soakReport struct {
	Seed       int64             `json:"seed"`
	Workers    int               `json:"workers"`
	Iterations int               `json:"iterations"`
	Mismatches int               `json:"mismatches"`
	Faults     map[string]uint64 `json:"faults"`

	// Cluster recovery activity summed over all iterations.
	LeaseExpired   uint64 `json:"lease_expired"`
	Requeued       uint64 `json:"requeued"`
	StaleReports   uint64 `json:"stale_reports"`
	UnknownWorker  uint64 `json:"unknown_worker_calls"`
	WorkersEvicted uint64 `json:"workers_evicted"`
	ItemsLost      uint64 `json:"items_quarantined"` // must be 0

	// Store repair at the end of the soak.
	ScrubScanned     int `json:"scrub_scanned"`
	ScrubCorrupt     int `json:"scrub_corrupt"`
	StoreQuarantined int `json:"store_quarantined"` // corpses parked on disk

	// Provenance ledger under chaos. ForgedProofs counts verifying
	// inclusion proofs that vouched for corrupt on-disk bytes (must be
	// 0: the lying FS may corrupt entries, but it must never be able to
	// make the ledger attest to the corruption). StampRejected counts
	// worker completions the coordinator refused over their stamps.
	ForgedProofs  int    `json:"forged_proofs"`
	StampRejected uint64 `json:"stamp_rejected"`
	LedgerRecords int    `json:"ledger_records"`
	LedgerLeaves  int    `json:"ledger_leaves"`
	// Final offline audit of the coordinator store against its ledger
	// (run on the real filesystem, after scrubbing): divergent and
	// unledgered must both be 0. Missing entries are quarantined
	// corpses — the ledger remembers results the store will have to
	// re-simulate, which is loss, not deceit.
	AuditLedgered   int `json:"audit_ledgered"`
	AuditDivergent  int `json:"audit_divergent"`
	AuditUnledgered int `json:"audit_unledgered"`
	AuditMissing    int `json:"audit_missing"`

	Elapsed string `json:"elapsed"`
}

func run(seed int64, duration time.Duration, workers int, faultList, storeDir, out string, verbose bool) error {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var fsFaults, httpFaults, killFaults bool
	for _, f := range strings.Split(faultList, ",") {
		switch strings.TrimSpace(f) {
		case "fs":
			fsFaults = true
		case "http":
			httpFaults = true
		case "kill":
			killFaults = true
		case "":
		default:
			return fmt.Errorf("unknown fault surface %q (want fs, http, kill)", f)
		}
	}
	conf := chaos.Config{}
	if fsFaults {
		conf.TornWrite, conf.BitFlip = 0.05, 0.05
		conf.ENOSPC, conf.SyncFail, conf.CrashRename = 0.02, 0.02, 0.02
	}
	if httpFaults {
		conf.Drop, conf.Delay, conf.Dup, conf.ServerError = 0.04, 0.08, 0.04, 0.04
		conf.MaxDelay = 25 * time.Millisecond
	}
	in := chaos.New(seed, conf)

	if storeDir == "" {
		dir, err := os.MkdirTemp("", "proteus-chaos-")
		if err != nil {
			return err
		}
		storeDir = dir
		defer os.RemoveAll(dir)
	}

	ctx := context.Background()
	start := time.Now()
	rep := soakReport{Seed: seed, Workers: workers}
	for time.Since(start) < duration {
		iterSeed := seed + int64(rep.Iterations)
		camp := campaignConf(iterSeed)

		// Fault-free reference on a private local engine.
		ref := camp
		ref.Engine = engine.New(engine.Config{Workers: 2})
		want, err := reportBytes(ctx, ref)
		if err != nil {
			return fmt.Errorf("iteration %d: fault-free reference run: %w", rep.Iterations, err)
		}

		got, stats, forged, err := chaosIteration(ctx, iterArgs{
			campaign: camp, injector: in, logger: logger,
			storeDir: storeDir, workers: workers, seed: seed,
			fsFaults: fsFaults, httpFaults: httpFaults, killFaults: killFaults,
		})
		if err != nil {
			return fmt.Errorf("iteration %d: chaos run: %w", rep.Iterations, err)
		}
		if !bytes.Equal(want, got) {
			rep.Mismatches++
			fmt.Fprintf(os.Stderr, "iteration %d: REPORT MISMATCH\nfault-free: %s\nchaos:      %s\n",
				rep.Iterations, want, got)
		}
		rep.LeaseExpired += stats.LeaseExpired
		rep.Requeued += stats.Requeued
		rep.StaleReports += stats.StaleReports
		rep.UnknownWorker += stats.UnknownWorkerCalls
		rep.WorkersEvicted += stats.WorkersEvicted
		rep.ItemsLost += stats.QuarantinedN
		rep.StampRejected += stats.StampRejected
		rep.ForgedProofs += forged
		rep.Iterations++
	}

	// Repair pass: scrub every store, then verify a second scrub finds
	// nothing — latent corruption must not outlive the soak.
	dirs, err := filepath.Glob(filepath.Join(storeDir, "*"))
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		st, err := resultstore.Open(dir)
		if err != nil {
			return fmt.Errorf("opening %s for scrub: %w", dir, err)
		}
		sr, err := st.Scrub()
		if err != nil {
			return fmt.Errorf("scrubbing %s: %w", dir, err)
		}
		rep.ScrubScanned += sr.Scanned
		rep.ScrubCorrupt += sr.Corrupt
		if again, err := st.Scrub(); err != nil || again.Corrupt != 0 {
			return fmt.Errorf("store %s still corrupt after scrub: %+v (%v)", dir, again, err)
		}
		q, err := st.Quarantined()
		if err != nil {
			return err
		}
		rep.StoreQuarantined += q
	}

	// Offline audit on the real filesystem: every entry that survived the
	// scrub must match the chain, and nothing the recording hook wrote may
	// be missing from it. Quarantined corpses show up as Missing — loss
	// the cache will repair by re-simulating, not deceit — so they are
	// tolerated here; divergence or unledgered entries are not.
	coDir := filepath.Join(storeDir, "coordinator")
	if _, statErr := os.Stat(ledger.DefaultPath(coDir)); statErr == nil {
		st, err := resultstore.Open(coDir)
		if err != nil {
			return err
		}
		lg, err := ledger.Open(ledger.DefaultPath(coDir), nil)
		if err != nil {
			return fmt.Errorf("final ledger open: %w", err)
		}
		arep, err := ledger.Audit(st, lg)
		if err != nil {
			return fmt.Errorf("final ledger audit: %w", err)
		}
		rep.LedgerRecords = arep.Records
		rep.LedgerLeaves = arep.Leaves
		rep.AuditLedgered = arep.Ledgered
		rep.AuditDivergent = len(arep.Divergent)
		rep.AuditUnledgered = len(arep.Unledgered)
		rep.AuditMissing = len(arep.Missing)
	}

	rep.Faults = in.Counters()
	rep.Elapsed = time.Since(start).Round(time.Millisecond).String()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	}
	os.Stdout.Write(data)

	switch {
	case rep.Iterations == 0:
		return errors.New("no iterations completed within the duration")
	case rep.Mismatches > 0:
		return fmt.Errorf("%d report mismatches", rep.Mismatches)
	case rep.ItemsLost > 0:
		return fmt.Errorf("%d cluster items quarantined (unrecovered work)", rep.ItemsLost)
	case rep.ForgedProofs > 0:
		return fmt.Errorf("%d forged inclusion proofs (the lying FS defeated tamper evidence)", rep.ForgedProofs)
	case rep.AuditDivergent > 0 || rep.AuditUnledgered > 0:
		return fmt.Errorf("final ledger audit failed: %d divergent, %d unledgered",
			rep.AuditDivergent, rep.AuditUnledgered)
	case (fsFaults || httpFaults) && in.Total() == 0:
		return errors.New("fault surfaces enabled but nothing fired; soak proved nothing")
	}
	return nil
}

// campaignConf is the per-iteration campaign: small enough for a few
// seconds per run, rich enough (2 benches × 2 schemes, torn-write
// sweeps) that tuple reports carry real classification work. The
// campaign seed varies per iteration so the soak does not keep
// replaying one memoized answer.
func campaignConf(iterSeed int64) crashcampaign.Config {
	faults, err := crashcampaign.ParseFaults("torn")
	if err != nil {
		panic(err)
	}
	return crashcampaign.Config{
		Benches: []workload.Kind{workload.Queue, workload.StringSwap},
		Schemes: []core.Scheme{core.Proteus, core.ATOM},
		Params: workload.Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 11,
			SSItems: 64, SSStrSize: 64},
		Sim:    config.Default(),
		Sweep:  4,
		Faults: faults,
		Seed:   iterSeed,
	}
}

func reportBytes(ctx context.Context, c crashcampaign.Config) ([]byte, error) {
	rep, err := crashcampaign.Run(ctx, c)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type iterArgs struct {
	campaign   crashcampaign.Config
	injector   *chaos.Injector
	logger     *slog.Logger
	storeDir   string
	workers    int
	seed       int64
	fsFaults   bool
	httpFaults bool
	killFaults bool
}

// chaosIteration runs one campaign on a full in-process cluster — serve
// HTTP front, coordinator, pull workers with their own stores — under
// the injector's faults, and returns the report bytes, the
// coordinator's closing stats, and the number of forged inclusion
// proofs (corrupt entries the ledger vouched for; must be zero).
func chaosIteration(ctx context.Context, a iterArgs) ([]byte, cluster.Stats, int, error) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Minute)
	defer cancel()

	openStore := func(name string) (*resultstore.Store, error) {
		var fsys resultstore.FS
		if a.fsFaults {
			fsys = chaos.NewFS(a.injector)
		}
		return resultstore.OpenFS(filepath.Join(a.storeDir, name), fsys)
	}

	coStore, err := openStore("coordinator")
	if err != nil {
		return nil, cluster.Stats{}, 0, err
	}
	// The provenance ledger lives inside the coordinator store and is
	// written through the same lying filesystem: every sealed batch must
	// survive torn writes and bit flips or refuse to commit, and nothing
	// the faults do may ever produce a proof over corrupted bytes.
	var ledgerFS resultstore.FS
	if a.fsFaults {
		ledgerFS = chaos.NewFS(a.injector)
	}
	lg, err := openLedgerRetry(ledger.DefaultPath(coStore.Dir()), ledgerFS)
	if err != nil {
		return nil, cluster.Stats{}, 0, fmt.Errorf("opening ledger: %w", err)
	}
	admissions := ledger.NewBatcher(lg, 16, 10*time.Millisecond)
	recStore := ledger.NewRecordingStore(coStore, admissions)
	coStore.SetVerifier(ledger.DigestVerifier(lg))
	co := cluster.NewCoordinator(cluster.Config{
		LeaseTTL:         time.Second,
		RetryBudget:      10,
		BackoffBase:      10 * time.Millisecond,
		BackoffMax:       500 * time.Millisecond,
		Seed:             a.seed,
		Publish:          cluster.PublishToStore(recStore, a.logger),
		VerifyCompletion: cluster.VerifyCompletion,
		Logger:           a.logger,
	})
	srv, err := serve.New(serve.Config{
		Engine:     engine.New(engine.Config{Workers: 2, Store: recStore}),
		Store:      coStore,
		Cluster:    co,
		Ledger:     lg,
		Admissions: admissions,
		Logger:     a.logger,
	})
	if err != nil {
		return nil, cluster.Stats{}, 0, err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, cluster.Stats{}, 0, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	newWorker := func(name, store string) (*cluster.Worker, error) {
		eng := engine.Config{Workers: 2}
		st, err := openStore(store)
		if err != nil {
			return nil, err
		}
		eng.Store = st
		client := &http.Client{Timeout: 30 * time.Second}
		if a.httpFaults {
			client.Transport = chaos.NewRoundTripper(a.injector)
		}
		w := &cluster.Worker{
			Name: name, Coordinator: url,
			Engine: engine.New(eng),
			Batch:  2, Poll: 20 * time.Millisecond,
			Client:    client,
			Logger:    a.logger,
			RetryBase: 20 * time.Millisecond, RetryMax: 250 * time.Millisecond,
		}
		if a.killFaults {
			// Occasionally stall past the lease TTL before executing: the
			// coordinator must requeue the batch and drop the stalled
			// worker's late completions as stale.
			w.Hooks.Leased = func(items []cluster.Item) {
				if a.injector.Roll("proc.stall", 0.05) {
					time.Sleep(1500 * time.Millisecond)
				}
			}
		}
		return w, nil
	}

	wctx, stopWorkers := context.WithCancel(ctx)
	var wg sync.WaitGroup
	startWorker := func(w *cluster.Worker, runCtx context.Context) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(runCtx)
		}()
	}
	for i := 0; i < a.workers; i++ {
		w, err := newWorker(fmt.Sprintf("worker-%d", i), fmt.Sprintf("worker-%d", i))
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, 0, err
		}
		startWorker(w, wctx)
	}
	if a.killFaults {
		// The victim dies the instant it first leases work — SIGKILL as
		// the coordinator sees it: held leases, then silence. A phoenix
		// replacement (same store) joins so capacity recovers.
		victimCtx, killVictim := context.WithCancel(wctx)
		defer killVictim()
		var once sync.Once
		victim, err := newWorker("victim", "victim")
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, 0, err
		}
		victim.Hooks.Leased = func(items []cluster.Item) {
			once.Do(killVictim)
		}
		startWorker(victim, victimCtx)
		phoenix, err := newWorker("phoenix", "victim")
		if err != nil {
			stopWorkers()
			return nil, cluster.Stats{}, 0, err
		}
		startWorker(phoenix, wctx)
	}

	got, runErr := func() ([]byte, error) {
		rep, err := cluster.RunCampaign(ctx, co, a.campaign)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}()

	// Drive the serve front door too: the campaign above scatters tuples
	// to workers, but only direct submissions flow through the admission
	// batcher and the recording store, so this is what makes every
	// iteration seal real leaves (admissions at submit, results at
	// store-write) while the fault injector is live.
	if runErr == nil {
		runErr = submitSims(ctx, url, a.campaign.Seed)
	}

	// Exercise the operator surface while the stack is still up: a scrub
	// over HTTP and a metrics scrape must both succeed under chaos. These
	// use a clean client — they model the operator, not the fleet.
	if runErr == nil {
		if resp, err := http.Post(url+"/v1/store/scrub", "application/json", nil); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				runErr = fmt.Errorf("scrub endpoint returned %d", resp.StatusCode)
			}
		} else {
			runErr = fmt.Errorf("scrub endpoint: %w", err)
		}
	}
	if runErr == nil {
		if resp, err := http.Get(url + "/metrics"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else {
			runErr = fmt.Errorf("metrics scrape: %w", err)
		}
	}

	stats := co.Stats()
	stopWorkers()
	wg.Wait()
	// Seal whatever the workers left pending, then probe the store for
	// forged proofs while the chain is at its final per-iteration state.
	admissions.Close()
	forged := 0
	if runErr == nil {
		var ferr error
		forged, ferr = forgedProofs(coStore, lg)
		if ferr != nil {
			runErr = fmt.Errorf("forged-proof probe: %w", ferr)
		}
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(shutCtx)
	srv.Drain(shutCtx)
	shutCancel()
	ln.Close()
	return got, stats, forged, runErr
}

// openLedgerRetry opens the ledger through a possibly-lying filesystem.
// Open re-verifies the whole chain, so a bit-flipped *read* of a good
// file looks exactly like corruption; retrying separates lying reads
// (transient — the next read tells the truth) from genuine on-disk
// damage (persistent, and a soak failure, because every append was
// read-back-verified before it committed).
func openLedgerRetry(path string, fsys resultstore.FS) (*ledger.Ledger, error) {
	var lg *ledger.Ledger
	var err error
	for i := 0; i < 8; i++ {
		if lg, err = ledger.Open(path, fsys); err == nil {
			return lg, nil
		}
	}
	return nil, err
}

// submitSims pushes two small sim jobs through the HTTP front door —
// the path the campaign does not take — and polls each to completion.
// A finished sim must eventually carry a verifying admission proof in
// its status: the submission was sealed into the chain, and the proof
// survived whatever the injector did to the ledger file. The sim seed
// follows the iteration so result leaves keep being minted rather than
// answered from cache.
func submitSims(ctx context.Context, url string, seed int64) error {
	type status struct {
		ID        string                 `json:"id"`
		State     string                 `json:"state"`
		Error     string                 `json:"error"`
		Admission *ledger.InclusionProof `json:"admission"`
	}
	for _, scheme := range []string{"Proteus", "ATOM"} {
		body, err := json.Marshal(map[string]any{
			"type": "sim", "bench": "QE", "scheme": scheme,
			"threads": 2, "simops": 16, "initops": 64, "seed": seed,
		})
		if err != nil {
			return err
		}
		resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("submit sim: %w", err)
		}
		var st status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("submit sim: decoding response: %w", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("sim %s: no verifying admission proof before deadline (state %s)", st.ID, st.State)
			}
			resp, err := http.Get(url + "/v1/jobs/" + st.ID)
			if err != nil {
				return fmt.Errorf("sim %s: poll: %w", st.ID, err)
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("sim %s: poll decode: %w", st.ID, err)
			}
			switch st.State {
			case "failed", "cancelled":
				return fmt.Errorf("sim %s: state %s: %s", st.ID, st.State, st.Error)
			case "done":
				if st.Admission != nil {
					if err := st.Admission.Verify(); err != nil {
						return fmt.Errorf("sim %s: admission proof does not verify: %w", st.ID, err)
					}
				}
			}
			if st.State == "done" && st.Admission != nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// forgedProofs walks the store for corrupt entries that the ledger
// nevertheless vouches for: a verifying inclusion proof whose leaf
// digest matches the corrupt bytes would mean the lying FS forged
// provenance. The walk itself reads through the chaos FS, so a lying
// read can make a healthy entry look corrupt here — but its mangled
// bytes hash to a digest the chain never sealed, so that cannot count
// as forged.
func forgedProofs(st *resultstore.Store, lg *ledger.Ledger) (int, error) {
	forged := 0
	err := st.Walk(func(key string, raw []byte, readErr error) error {
		if readErr != nil {
			return nil // unreadable: no bytes for a proof to vouch for
		}
		if _, verr := resultstore.VerifyEntry(key, raw); verr == nil {
			return nil // healthy: cross-checked by the final offline audit
		}
		var doc struct {
			Result json.RawMessage `json:"result"`
		}
		if json.Unmarshal(raw, &doc) != nil || len(doc.Result) == 0 {
			return nil
		}
		sum := sha256.Sum256(doc.Result)
		p, err := lg.Proof(key, ledger.LeafResult)
		if err != nil {
			return nil // never sealed: nothing vouches for this key
		}
		if lg.VerifyProof(p) == nil && p.Leaf.Digest == hex.EncodeToString(sum[:]) {
			forged++
		}
		return nil
	})
	return forged, err
}
