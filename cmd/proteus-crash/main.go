// Command proteus-crash runs fault-injection crash campaigns: it sweeps
// crash points across every failure-safe scheme and Table 2 benchmark,
// injects power-failure fault models (clean cut, torn line writes, ADR
// loss, log-area bit corruption) at each point, runs recovery, verifies
// the oracle's durable-transaction property, and classifies every
// injection. Expected-safe combinations that fail are bisected to the
// earliest failing cycle, their fault masks shrunk, and dumped as
// ready-to-replay reproducer artifacts for proteus-recover.
//
// The report is deterministic in (flags, -seed): the same sweep produces
// byte-identical report.json at any -jobs count.
//
// Examples:
//
//	proteus-crash -sweep 64 -faults torn,adrloss -jobs 8 -out report.json
//	proteus-crash -bench QE,SS -scheme PMEM,Proteus -sweep 16 -faults all -artifacts repro/
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/resultstore"
	"repro/internal/workload"
)

func main() {
	var (
		benchList  = flag.String("bench", "all", "comma-separated benchmark abbrevs (QE, HM, SS, AT, BT, RT) or all")
		schemeList = flag.String("scheme", "all", "comma-separated schemes or all (the failure-safe set); PMEM+nolog may be named explicitly")
		sweep      = flag.Int("sweep", 64, "systematically spaced crash points per tuple")
		randPts    = flag.Int("rand", 0, "additional seeded-random crash points per tuple")
		faultsArg  = flag.String("faults", "clean", "fault models to inject: clean, torn, adrloss, corrupt, all (clean is always included)")
		jobs       = flag.Int("jobs", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
		jobTimeout = flag.Duration("timeout", 10*time.Minute, "wall-clock limit per sweep chunk (0 = none)")
		out        = flag.String("out", "report.json", "report destination (- = stdout)")
		artifacts  = flag.String("artifacts", "", "dump minimized-failure reproducers into this directory")
		minimize   = flag.String("minimize", "failed", "which outcomes to minimize: failed, all, off")
		threads    = flag.Int("threads", 2, "worker threads / cores")
		simOps     = flag.Int("simops", 40, "timed operations per thread")
		initOps    = flag.Int("initops", 256, "initialization operations per thread")
		wseed      = flag.Int64("wseed", 11, "workload seed")
		seed       = flag.Int64("seed", 1, "campaign seed: crash-point choice and per-line fault randomness")
		storeDir   = flag.String("store", "", "persistent result store directory for the underlying simulations")
		stepperSel = flag.String("stepper", "fast", "cycle-advance strategy: fast (event-driven fast-forward) or reference (per-cycle)")
		verbose    = flag.Bool("v", false, "log engine job activity to stderr")
	)
	flag.Parse()

	faults, err := crashcampaign.ParseFaults(*faultsArg)
	exitOn(err)
	benches, err := parseBenches(*benchList)
	exitOn(err)
	schemes, err := parseSchemes(*schemeList)
	exitOn(err)
	var mode crashcampaign.MinimizeMode
	switch *minimize {
	case "failed":
		mode = crashcampaign.MinimizeFailed
	case "all":
		mode = crashcampaign.MinimizeAll
	case "off":
		mode = crashcampaign.MinimizeOff
	default:
		exitOn(fmt.Errorf("unknown -minimize mode %q (failed, all, off)", *minimize))
	}

	stepper, err := core.StepperByName(*stepperSel)
	exitOn(err)

	engCfg := engine.Config{Workers: *jobs, JobTimeout: *jobTimeout, Stepper: stepper}
	if *storeDir != "" {
		st, err := resultstore.Open(*storeDir)
		exitOn(err)
		engCfg.Store = st
	}
	if *verbose {
		engCfg.Progress = func(ev engine.Event) {
			if ev.Phase == engine.JobDone {
				fmt.Fprintf(os.Stderr, "[engine] %v %v err=%v (%v)\n", ev.Job, ev.Phase, ev.Err, ev.Elapsed.Round(time.Millisecond))
			}
		}
	}

	camp := crashcampaign.Config{
		Benches: benches,
		Schemes: schemes,
		Params: workload.Params{Threads: *threads, InitOps: *initOps, SimOps: *simOps, Seed: *wseed,
			SSItems: 256, SSStrSize: 256, ListNodes: 4, ListElems: 64},
		Sim:         config.Default(),
		Stepper:     stepper,
		Sweep:       *sweep,
		Rand:        *randPts,
		Faults:      faults,
		Seed:        *seed,
		Minimize:    mode,
		ArtifactDir: *artifacts,
		Engine:      engine.New(engCfg),
	}

	start := time.Now()
	rep, err := crashcampaign.Run(context.Background(), camp)
	exitOn(err)

	if *out == "-" {
		exitOn(rep.WriteJSON(os.Stdout))
	} else {
		// Buffer and publish atomically: a crash mid-write never clobbers
		// the previous complete report.
		var buf bytes.Buffer
		exitOn(rep.WriteJSON(&buf))
		exitOn(resultstore.WriteFileAtomic(*out, buf.Bytes(), 0o644))
	}

	fmt.Fprintf(os.Stderr, "campaign: %d tuples, %d injections in %v\n",
		rep.Totals.Tuples, rep.Totals.Injections, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "  verified %d, detected %d, vulnerable %d, failed %d (minimized %d)\n",
		rep.Totals.Verified, rep.Totals.Detected, rep.Totals.Vulnerable, rep.Totals.Failed, rep.Totals.Minimized)
	for _, tu := range rep.Tuples {
		if tu.Failed == 0 {
			continue
		}
		for _, ir := range tu.Injections {
			if ir.Outcome != crashcampaign.OutcomeFailed {
				continue
			}
			fmt.Fprintf(os.Stderr, "  FAILED %s/%s %s@%d: %s\n", tu.Bench, tu.Scheme, ir.Fault, ir.Cycle, ir.Detail)
			if ir.Minimized != nil && ir.Minimized.Repro != "" {
				fmt.Fprintf(os.Stderr, "    repro: %s\n", ir.Minimized.Repro)
			}
		}
	}
	if rep.Totals.Failed > 0 {
		os.Exit(1)
	}
}

func parseBenches(s string) ([]workload.Kind, error) {
	if strings.EqualFold(s, "all") {
		return workload.Table2, nil
	}
	var out []workload.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range workload.Table2 {
			if strings.EqualFold(k.Abbrev(), name) {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
	}
	return out, nil
}

func parseSchemes(s string) ([]core.Scheme, error) {
	if strings.EqualFold(s, "all") {
		var out []core.Scheme
		for _, sc := range core.Schemes {
			if sc.FailureSafe() {
				out = append(out, sc)
			}
		}
		return out, nil
	}
	var out []core.Scheme
	for _, name := range strings.Split(s, ",") {
		sc, err := crashcampaign.SchemeByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-crash:", err)
		os.Exit(1)
	}
}
