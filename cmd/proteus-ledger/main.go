// Command proteus-ledger is the offline side of the provenance ledger:
// it inspects, extends and audits the Merkle-chained ledger that lives
// next to a result store.
//
//	proteus-ledger head   -store DIR            print the chain tip
//	proteus-ledger verify -store DIR [-key K]   verify the full chain
//	                                            (and K's inclusion proof)
//	proteus-ledger append -store DIR            backfill: seal result
//	                                            leaves for unledgered
//	                                            entries
//	proteus-ledger audit  -store DIR            cross-check store vs
//	                                            ledger; exit 1 on any
//	                                            divergence or truncation
//
// audit flags: -allow-unledgered tolerates entries the chain never
// sealed (a store written with the ledger off — run append first);
// -require-present fails on sealed results whose entries vanished
// (default: reported but tolerated, a cache is allowed to re-simulate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/ledger"
	"repro/internal/resultstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "head":
		fs := flag.NewFlagSet("head", flag.ExitOnError)
		storeDir := fs.String("store", "proteus-store", "result store directory")
		fs.Parse(args)
		lg := openLedger(*storeDir)
		printJSON(lg.Head())
	case "verify":
		fs := flag.NewFlagSet("verify", flag.ExitOnError)
		storeDir := fs.String("store", "proteus-store", "result store directory")
		key := fs.String("key", "", "also verify the inclusion proof for this key")
		kind := fs.String("kind", "", "narrow -key to one leaf kind (result, admission, completion)")
		fs.Parse(args)
		// Open re-verifies the whole chain — every root against its
		// leaves, every head against its predecessor — so reaching this
		// line means the file is intact.
		lg := openLedger(*storeDir)
		out := map[string]any{"chain": "ok", "head": lg.Head()}
		if *key != "" {
			p, err := lg.Proof(*key, *kind)
			exitOn(err)
			exitOn(lg.VerifyProof(p))
			out["proof"] = p
		}
		printJSON(out)
	case "append":
		fs := flag.NewFlagSet("append", flag.ExitOnError)
		storeDir := fs.String("store", "proteus-store", "result store directory")
		batch := fs.Int("batch", 256, "max leaves per sealed batch")
		fs.Parse(args)
		st, lg := openBoth(*storeDir)
		b := ledger.NewBatcher(lg, *batch, 0)
		n, err := ledger.Backfill(context.Background(), st, b)
		b.Close()
		exitOn(err)
		printJSON(map[string]any{"sealed": n, "head": lg.Head()})
	case "audit":
		fs := flag.NewFlagSet("audit", flag.ExitOnError)
		storeDir := fs.String("store", "proteus-store", "result store directory")
		allowUnledgered := fs.Bool("allow-unledgered", false, "tolerate live entries the ledger never sealed")
		requirePresent := fs.Bool("require-present", false, "fail on sealed results with no live store entry")
		fs.Parse(args)
		st, lg := openBoth(*storeDir)
		rep, err := ledger.Audit(st, lg)
		exitOn(err)
		printJSON(rep)
		if aerr := rep.Err(*allowUnledgered, *requirePresent); aerr != nil {
			fmt.Fprintln(os.Stderr, "proteus-ledger:", aerr)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func openLedger(storeDir string) *ledger.Ledger {
	lg, err := ledger.Open(ledger.DefaultPath(storeDir), nil)
	exitOn(err)
	return lg
}

func openBoth(storeDir string) (*resultstore.Store, *ledger.Ledger) {
	st, err := resultstore.Open(storeDir)
	exitOn(err)
	return st, openLedger(storeDir)
}

func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	exitOn(err)
	fmt.Println(string(data))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: proteus-ledger {head|verify|append|audit} [flags]")
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-ledger:", err)
		os.Exit(1)
	}
}
