// Command proteus-litmus runs the persistency-model litmus harness: it
// enumerates tiny programs (2–4 persistent stores over two variables, up
// to two threads, up to two durable transactions per thread), runs each
// under every selected scheme, sweeps every distinct persist state of
// every run with the crash campaign's fault models, and checks each
// recovered image against the exact post-crash states the scheme's
// declared ordering axioms permit. Any divergence is a bug — in the
// simulator, the recovery path, or the axioms — and is reported with the
// earliest divergent cycle, a shrunken fault mask, and (with -artifacts)
// a replayable reproducer.
//
// The report is deterministic in (flags, -seed): byte-identical at any
// -jobs count and under either -stepper.
//
// Examples:
//
//	proteus-litmus -programs curated -faults all -out litmus.json
//	proteus-litmus -programs all -scheme Proteus,Proteus+NoLWR -jobs 8
//	proteus-litmus -replay repro/Pc_x_y-Proteus-torn-c42
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/litmus"
	"repro/internal/resultstore"
)

func main() {
	var (
		programsArg = flag.String("programs", "all", "programs to sweep: all (full grammar), curated (CI subset), or a comma-separated list of program names like Ps:xy;x|y")
		schemeList  = flag.String("scheme", "all", "comma-separated schemes or all (the failure-safe set)")
		faultsArg   = flag.String("faults", "all", "fault models to inject: clean, torn, adrloss, corrupt, all (clean is always included)")
		jobs        = flag.Int("jobs", 0, "concurrent case sweeps (0 = GOMAXPROCS)")
		out         = flag.String("out", "-", "report destination (- = stdout)")
		artifacts   = flag.String("artifacts", "", "dump divergence reproducers into this directory")
		seed        = flag.Int64("seed", 1, "per-injection fault randomness seed")
		stepperSel  = flag.String("stepper", "fast", "cycle-advance strategy: fast or reference")
		replayDir   = flag.String("replay", "", "re-check a reproducer directory instead of sweeping")
		quiet       = flag.Bool("q", false, "suppress the stderr summary")
	)
	flag.Parse()

	if *replayDir != "" {
		replay(*replayDir)
		return
	}

	programs, err := parsePrograms(*programsArg)
	exitOn(err)
	schemes, err := parseSchemes(*schemeList)
	exitOn(err)
	faults, err := crashcampaign.ParseFaults(*faultsArg)
	exitOn(err)
	stepper, err := core.StepperByName(*stepperSel)
	exitOn(err)

	cfg := litmus.Config{
		Programs:    programs,
		Schemes:     schemes,
		Faults:      faults,
		Seed:        *seed,
		Workers:     *jobs,
		Stepper:     stepper,
		ArtifactDir: *artifacts,
		ReplayCmd:   "proteus-litmus",
	}

	start := time.Now()
	rep, err := litmus.Run(context.Background(), cfg)
	exitOn(err)

	if *out == "-" {
		exitOn(rep.WriteJSON(os.Stdout))
	} else {
		// Buffer and publish atomically: a crash mid-write never clobbers
		// the previous complete report.
		var buf bytes.Buffer
		exitOn(rep.WriteJSON(&buf))
		exitOn(resultstore.WriteFileAtomic(*out, buf.Bytes(), 0o644))
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "litmus: %d programs, %d cases, %d injections over %d persist states in %v\n",
			rep.Suite.Programs, rep.Totals.Cases, rep.Totals.Injections, totalStates(rep), time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "  verified %d, detected %d, vulnerable %d, failed %d (divergences %d)\n",
			rep.Totals.Verified, rep.Totals.Detected, rep.Totals.Vulnerable, rep.Totals.Failed, rep.Totals.Divergences)
		for _, c := range rep.Cases {
			for _, d := range c.Divergences {
				fmt.Fprintf(os.Stderr, "  DIVERGENCE %s/%s %s@%d: %s\n", c.Program, c.Scheme, d.Fault, d.Cycle, d.Detail)
				if d.Repro != "" {
					fmt.Fprintf(os.Stderr, "    repro: %s\n", d.Repro)
				}
			}
		}
	}
	if rep.Totals.Failed > 0 {
		os.Exit(1)
	}
}

// replay re-checks a reproducer directory: exit 0 when the recorded
// outcome reproduces, 2 when the image now classifies differently, 1 on
// error.
func replay(dir string) {
	res, err := litmus.Replay(dir)
	exitOn(err)
	fmt.Printf("program   %s\nscheme    %s\nfault     %s\ncycle     %d\ncommitted %v\nrecorded  %s\nreplayed  %s\n",
		res.Meta.Program, res.Meta.Scheme, res.Meta.Fault, res.Meta.Cycle, res.Meta.Committed, res.Meta.Outcome, res.Outcome)
	if res.Detail != "" {
		fmt.Printf("detail    %s\n", res.Detail)
	}
	if !res.Reproduced {
		fmt.Println("NOT reproduced")
		os.Exit(2)
	}
	fmt.Println("reproduced")
}

func parsePrograms(s string) ([]litmus.Program, error) {
	switch {
	case strings.EqualFold(s, "all"):
		return litmus.Enumerate(), nil
	case strings.EqualFold(s, "curated"):
		return litmus.Curated(), nil
	}
	var out []litmus.Program
	for _, name := range strings.Split(s, ",") {
		p, err := litmus.Parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseSchemes(s string) ([]core.Scheme, error) {
	if strings.EqualFold(s, "all") {
		var out []core.Scheme
		for _, sc := range core.Schemes {
			if sc.FailureSafe() {
				out = append(out, sc)
			}
		}
		return out, nil
	}
	var out []core.Scheme
	for _, name := range strings.Split(s, ",") {
		sc, err := crashcampaign.SchemeByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func totalStates(rep *litmus.Report) int {
	n := 0
	for _, c := range rep.Cases {
		n += c.States
	}
	return n
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-litmus:", err)
		os.Exit(1)
	}
}
