// Command proteus-recover demonstrates the crash-injection and recovery
// machinery: it runs a workload under a failure-safe scheme, cuts power
// at a chosen point — optionally through a fault model (torn line writes,
// ADR loss, log corruption) — extracts the persistent image, runs
// recovery, and verifies transaction atomicity against the oracle.
//
// On an oracle failure it prints a per-thread mismatch summary and exits
// nonzero. A detected (and reported) log corruption exits zero: refusing
// a damaged log is the correct recovery outcome.
//
// Examples:
//
//	proteus-recover -bench RT -scheme Proteus -at 0.6
//	proteus-recover -bench QE -scheme PMEM -at-cycle 4242 -fault torn
//	proteus-recover -bench HM -scheme ATOM -adr=false
//	proteus-recover -campaign artifacts/ss-pmemnolog-clean-c984/meta.json
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "RT", "benchmark: QE, HM, SS, AT, BT, RT")
		schemeName = flag.String("scheme", "Proteus", "failure-safe scheme: PMEM, PMEM+pcommit, ATOM, Proteus, Proteus+NoLWR")
		at         = flag.Float64("at", 0.5, "crash point as a fraction of the full run")
		atCycle    = flag.Int64("at-cycle", -1, "crash at this exact cycle (overrides -at)")
		adr        = flag.Bool("adr", true, "queues are in the persistency domain; -adr=false injects ADR loss")
		faultName  = flag.String("fault", "", "fault model at the crash: torn, adrloss, corrupt (default clean)")
		faultSeed  = flag.Uint64("fault-seed", 0, "per-line fault randomness seed (0 derives one from the workload seed)")
		faultMask  = flag.String("fault-mask", "", "comma-separated target indexes the fault is limited to (default all)")
		threads    = flag.Int("threads", 2, "worker threads / cores")
		simOps     = flag.Int("simops", 64, "timed operations per thread")
		seed       = flag.Int64("seed", 42, "workload seed")
		campaign   = flag.String("campaign", "", "replay a crash-campaign reproducer from its meta.json (overrides every other flag)")
		traceOut   = flag.String("trace", "", "write an epoch-sampled JSONL trace of the full (pre-crash) run to this file")
		traceEpoch = flag.Uint64("trace-epoch", trace.DefaultEpoch, "cycles between trace samples")
	)
	flag.Parse()
	ctx := context.Background()
	cfg := config.Default()

	if *campaign != "" {
		meta, err := crashcampaign.LoadArtifact(*campaign)
		exitOn(err)
		fmt.Printf("replaying %s/%s %s@%d (campaign seed %d)\n",
			meta.Bench, meta.Scheme, meta.Fault, meta.Cycle, meta.CampaignSeed)
		cfg.Cores = meta.Params.Threads
		if fp := cfg.Fingerprint(); fp != meta.ConfigFingerprint {
			fmt.Printf("warning: config fingerprint %s differs from recorded %s; the replay may diverge\n",
				fp, meta.ConfigFingerprint)
		}
		res, err := meta.Replay(ctx, cfg)
		exitOn(err)
		imgPath := filepath.Join(filepath.Dir(*campaign), meta.Image)
		if stored, err := os.ReadFile(imgPath); err == nil {
			var rebuilt bytes.Buffer
			exitOn(res.Image.Serialize(&rebuilt))
			if bytes.Equal(rebuilt.Bytes(), stored) {
				fmt.Println("rebuilt crash image matches the stored artifact image")
			} else {
				fmt.Println("warning: rebuilt crash image differs from the stored artifact image")
			}
		}
		os.Exit(recoverAndVerify(res))
	}

	var kind workload.Kind
	found := false
	for _, k := range workload.Table2 {
		if strings.EqualFold(k.Abbrev(), *benchName) {
			kind, found = k, true
		}
	}
	if !found {
		exitOn(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	scheme, err := crashcampaign.SchemeByName(*schemeName)
	exitOn(err)
	if !scheme.FailureSafe() {
		exitOn(fmt.Errorf("scheme %q is not a failure-safe scheme", *schemeName))
	}

	p := kind.DefaultParams(1)
	p.Threads = *threads
	p.SimOps = *simOps
	p.InitOps /= 10
	p.Seed = *seed
	cfg.Cores = *threads

	fmt.Printf("building %v (%d threads, %d txns each)...\n", kind, p.Threads, p.SimOps)
	w, err := workload.Build(kind, p)
	exitOn(err)
	traces, err := logging.Generate(w, scheme, cfg)
	exitOn(err)

	// Learn the full run length. The optional trace records this run, so
	// the timeline shows the queue state around any candidate crash point.
	full, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	exitOn(err)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		exitOn(err)
		meta := trace.Meta{Label: fmt.Sprintf("%v/%v/recover", kind, scheme), Fingerprint: cfg.Fingerprint(), Cores: cfg.Cores}
		tr, err := trace.NewJSONLTracer(f, meta, *traceEpoch)
		exitOn(err)
		full.SetTracer(tr)
		defer func() { exitOn(tr.Close()) }()
	}
	_, err = full.Run(0)
	exitOn(err)
	total := full.Cycle()
	crashAt := uint64(float64(total) * *at)
	if *atCycle >= 0 {
		crashAt = uint64(*atCycle)
	}

	fault := *faultName
	if fault == "" {
		if !*adr {
			fault = "adrloss"
		} else {
			fault = "clean"
		}
	}
	fseed := *faultSeed
	if fseed == 0 {
		fseed = uint64(*seed)*0x9E3779B9 + crashAt
	}
	mask, err := parseMask(*faultMask)
	exitOn(err)
	fmt.Printf("full run: %d cycles; cutting power at cycle %d (fault %s)\n", total, crashAt, fault)

	meta := crashcampaign.ArtifactMeta{
		Bench: kind.Abbrev(), Scheme: scheme.String(), Params: p,
		Fault: fault, FaultSeed: fseed, Cycle: crashAt, Mask: mask,
	}
	res, err := meta.Replay(ctx, config.Default())
	exitOn(err)
	fmt.Printf("at crash: committed transactions per thread: %v\n", res.Committed)
	os.Exit(recoverAndVerify(res))
}

// recoverAndVerify runs recovery and the oracle over a rebuilt crash
// state and reports the outcome; the return value is the process exit
// code.
func recoverAndVerify(res *crashcampaign.ReplayResult) int {
	rec, err := recovery.Recover(res.Image, res.Scheme, res.Threads)
	if err != nil {
		if recovery.IsDetectedCorruption(err) {
			fmt.Printf("DETECTED: recovery refused the image: %v\n", err)
			fmt.Println("(refusing a damaged log is the correct outcome; nothing was silently applied)")
			return 0
		}
		fmt.Fprintln(os.Stderr, "proteus-recover: recovery error:", err)
		return 1
	}
	for t, rb := range rec.RolledBack {
		if len(rb) > 0 {
			fmt.Printf("recovery: thread %d rolled back transaction(s) %v\n", t, rb)
		}
	}
	fmt.Printf("recovery applied %d undo entries\n", rec.EntriesApplied)

	statuses := res.Oracle.Report(res.Image, res.Committed, res.SW)
	bad := 0
	for _, st := range statuses {
		if !st.OK() {
			bad++
		}
	}
	if bad == 0 {
		matched := make([]int, len(statuses))
		for i, st := range statuses {
			matched[i] = st.Matched
		}
		fmt.Printf("VERIFIED: recovered state matches transaction prefixes %v — every transaction atomic, no committed transaction lost\n", matched)
		return 0
	}
	fmt.Printf("FAILED: %d of %d threads do not match any transaction prefix:\n", bad, len(statuses))
	for _, st := range statuses {
		if st.OK() {
			fmt.Printf("  thread %d: ok (matched prefix %d of %d committed)\n", st.Thread, st.Matched, st.Committed)
		} else {
			fmt.Printf("  thread %d: MISMATCH (committed %d): %s\n", st.Thread, st.Committed, st.Mismatch)
		}
	}
	return 1
}

func parseMask(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad fault-mask entry %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-recover:", err)
		os.Exit(1)
	}
}
