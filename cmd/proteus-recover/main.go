// Command proteus-recover demonstrates the crash-injection and recovery
// machinery: it runs a workload under a failure-safe scheme, cuts power at
// a chosen point, extracts the persistent image, runs recovery, and
// verifies transaction atomicity against the oracle.
//
// Example:
//
//	proteus-recover -bench RT -scheme Proteus -at 0.6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "RT", "benchmark: QE, HM, SS, AT, BT, RT")
		schemeName = flag.String("scheme", "Proteus", "failure-safe scheme: PMEM, PMEM+pcommit, ATOM, Proteus, Proteus+NoLWR")
		at         = flag.Float64("at", 0.5, "crash point as a fraction of the full run")
		threads    = flag.Int("threads", 2, "worker threads / cores")
		simOps     = flag.Int("simops", 64, "timed operations per thread")
		seed       = flag.Int64("seed", 42, "workload seed")
		traceOut   = flag.String("trace", "", "write an epoch-sampled JSONL trace of the full (pre-crash) run to this file")
		traceEpoch = flag.Uint64("trace-epoch", trace.DefaultEpoch, "cycles between trace samples")
	)
	flag.Parse()

	var kind workload.Kind
	found := false
	for _, k := range workload.Table2 {
		if strings.EqualFold(k.Abbrev(), *benchName) {
			kind, found = k, true
		}
	}
	if !found {
		exitOn(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	var scheme core.Scheme
	found = false
	for _, s := range core.Schemes {
		if strings.EqualFold(s.String(), *schemeName) {
			scheme, found = s, true
		}
	}
	if !found || !scheme.FailureSafe() {
		exitOn(fmt.Errorf("scheme %q is not a failure-safe scheme", *schemeName))
	}

	p := kind.DefaultParams(1)
	p.Threads = *threads
	p.SimOps = *simOps
	p.InitOps /= 10
	p.Seed = *seed
	cfg := config.Default()
	cfg.Cores = *threads

	fmt.Printf("building %v (%d threads, %d txns each)...\n", kind, p.Threads, p.SimOps)
	w, err := workload.Build(kind, p)
	exitOn(err)
	oracle := recovery.NewOracle(w)
	traces, err := logging.Generate(w, scheme, cfg)
	exitOn(err)

	// Learn the full run length. The optional trace records this run, so
	// the timeline shows the queue state around any candidate crash point.
	full, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	exitOn(err)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		exitOn(err)
		meta := trace.Meta{Label: fmt.Sprintf("%v/%v/recover", kind, scheme), Fingerprint: cfg.Fingerprint(), Cores: cfg.Cores}
		tr, err := trace.NewJSONLTracer(f, meta, *traceEpoch)
		exitOn(err)
		full.SetTracer(tr)
		defer func() { exitOn(tr.Close()) }()
	}
	_, err = full.Run(0)
	exitOn(err)
	total := full.Cycle()
	crashAt := uint64(float64(total) * *at)
	fmt.Printf("full run: %d cycles; cutting power at cycle %d (%.0f%%)\n", total, crashAt, *at*100)

	// Re-run and crash.
	sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	exitOn(err)
	sys.Step(crashAt)
	img := sys.CrashImage()
	counts := make([]int, *threads)
	for i, cs := range sys.Commits() {
		counts[i] = len(cs)
	}
	fmt.Printf("at crash: committed transactions per thread: %v\n", counts)

	res, err := recovery.Recover(img, scheme, cfg.Cores)
	exitOn(err)
	for t, rb := range res.RolledBack {
		if len(rb) > 0 {
			fmt.Printf("recovery: thread %d rolled back transaction(s) %v\n", t, rb)
		}
	}
	fmt.Printf("recovery applied %d undo entries\n", res.EntriesApplied)

	verify := oracle.VerifyPrefix
	if scheme == core.PMEM || scheme == core.PMEMPcommit {
		verify = oracle.VerifyPrefixSW
	}
	matched, err := verify(img, counts)
	exitOn(err)
	fmt.Printf("VERIFIED: recovered state matches transaction prefixes %v — every transaction atomic, no committed transaction lost\n", matched)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-recover:", err)
		os.Exit(1)
	}
}
