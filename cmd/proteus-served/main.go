// Command proteus-served runs the simulation job server: an HTTP JSON
// service that accepts single simulations, figure suites and crash
// campaigns, executes them on the shared simulation engine, and answers
// repeated tuples from the persistent on-disk result store.
//
// The server is production-shaped: a bounded admission queue rejects
// overload with 429 + Retry-After, identical in-flight submissions are
// collapsed into one task, per-request deadlines and client disconnects
// cancel the underlying engine contexts, and SIGTERM/SIGINT triggers a
// graceful drain (stop accepting, finish queued work, then exit 0).
//
// Example:
//
//	proteus-served -addr :8080 -store proteus-store -queue 64
//	curl -XPOST localhost:8080/v1/jobs -d '{"type":"sim","bench":"QE","scheme":"Proteus"}'
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/resultstore"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		storeDir     = flag.String("store", "proteus-store", "persistent result store directory (empty disables)")
		queueDepth   = flag.Int("queue", 64, "admission queue depth (full queue => 429)")
		workers      = flag.Int("workers", 2, "concurrently executing jobs")
		jobs         = flag.Int("jobs", 0, "engine simulation workers per job (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("timeout", 30*time.Minute, "default wall-clock limit per job (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM drain waits before cancelling running jobs")

		clusterOn   = flag.Bool("cluster", false, "act as cluster coordinator: scatter sim/campaign jobs to pull-based proteus-worker processes (mounts /v1/cluster/)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "cluster lease TTL: a worker silent this long loses its items to requeue")
		retryBudget = flag.Int("retry-budget", 4, "cluster lease grants per item before quarantine")
		leaseBatch  = flag.Int("lease-batch", 8, "cluster max items per lease call")

		ledgerOn  = flag.Bool("ledger", true, "maintain the tamper-evident provenance ledger next to the store (requires -store)")
		batchMax  = flag.Int("ledger-batch", 64, "ledger batching: seal a batch at this many leaves")
		batchWait = flag.Duration("ledger-wait", 25*time.Millisecond, "ledger batching: seal a batch when its oldest leaf has waited this long")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	econf := engine.Config{Workers: *jobs}
	var store *resultstore.Store
	var lg *ledger.Ledger
	var batcher *ledger.Batcher
	if *storeDir != "" {
		var err error
		store, err = resultstore.Open(*storeDir)
		exitOn(err)
		econf.Store = store
		logger.Info("result store open", "dir", *storeDir)
		if *ledgerOn {
			lg, err = ledger.Open(ledger.DefaultPath(*storeDir), nil)
			exitOn(err)
			batcher = ledger.NewBatcher(lg, *batchMax, *batchWait)
			// Every engine store-write flows through the recording hook,
			// so the ledger seals a leaf for each new result; Scrub
			// cross-checks healthy entries against the sealed digests.
			econf.Store = ledger.NewRecordingStore(store, batcher)
			store.SetVerifier(ledger.DigestVerifier(lg))
			head := lg.Head()
			logger.Info("provenance ledger open", "path", ledger.DefaultPath(*storeDir),
				"records", head.Records, "leaves", head.Leaves, "head", head.Head)
		}
	}
	eng := engine.New(econf)

	var coord *cluster.Coordinator
	var janitorStop chan struct{}
	if *clusterOn {
		cconf := cluster.Config{
			LeaseTTL:    *leaseTTL,
			RetryBudget: *retryBudget,
			MaxBatch:    *leaseBatch,
			Logger:      logger,
		}
		if store != nil {
			// Workers report results over the protocol; the coordinator
			// publishes sims into the shared store so later submissions
			// are answered without touching the cluster. With the ledger
			// on, the publish flows through the recording hook and every
			// completion's provenance stamp is verified before acceptance.
			cconf.Publish = cluster.PublishToStore(econf.Store, logger)
			if batcher != nil {
				cconf.VerifyCompletion = cluster.VerifyCompletion
			}
		}
		coord = cluster.NewCoordinator(cconf)
		janitorStop = make(chan struct{})
		go coord.Janitor(0, janitorStop)
		logger.Info("cluster coordinator enabled", "lease_ttl", leaseTTL.String(), "retry_budget", *retryBudget)
	}

	srv, err := serve.New(serve.Config{
		Engine:         eng,
		Store:          store,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		DefaultTimeout: *jobTimeout,
		Cluster:        coord,
		Ledger:         lg,
		Admissions:     batcher,
		Logger:         logger,
	})
	exitOn(err)
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		exitOn(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: refuse new submissions, finish (or, past the
	// deadline, cancel) queued and running work, then stop the listener.
	logger.Info("signal received, draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain deadline forced cancellation", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if janitorStop != nil {
		close(janitorStop)
	}
	if batcher != nil {
		// Seal whatever the drain left pending so the on-disk ledger
		// covers every store write this process made.
		batcher.Close()
	}
	logger.Info("drained, exiting")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-served:", err)
		os.Exit(1)
	}
}
