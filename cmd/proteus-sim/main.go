// Command proteus-sim runs one (benchmark, scheme, memory) combination on
// the simulated machine and prints the full statistics report.
//
// Example:
//
//	proteus-sim -bench AT -scheme Proteus -mem nvm-fast -simops 400
//	proteus-sim -bench QE -scheme Proteus -trace qe.jsonl -trace-epoch 5000
//
// -trace records an epoch-sampled JSONL trace of the run (ROB/LSQ/LogQ
// occupancy, stall causes, WPQ/LPQ depth, NVM bank pressure); render it
// with proteus-trace -timeline.
//
// -store names a persistent result-store directory (shared with
// proteus-bench and proteus-served): a rerun of an identical tuple is
// answered from disk without simulating.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "QE", "benchmark: QE, HM, SS, AT, BT, RT, LL")
		schemeName = flag.String("scheme", "Proteus", "scheme: PMEM, PMEM+pcommit, PMEM+nolog, ATOM, Proteus, Proteus+NoLWR")
		memName    = flag.String("mem", "nvm-fast", "memory kind: nvm-fast, nvm-slow, dram")
		threads    = flag.Int("threads", 4, "worker threads / cores")
		simOps     = flag.Int("simops", 0, "timed operations per thread (0 = Table 2 / 25)")
		initOps    = flag.Int("initops", 0, "initialization operations per thread (0 = Table 2)")
		seed       = flag.Int64("seed", 42, "workload seed")
		logQ       = flag.Int("logq", 16, "Proteus LogQ entries")
		lpq        = flag.Int("lpq", 256, "LPQ entries")
		jobTimeout = flag.Duration("timeout", 0, "wall-clock limit for the simulation, e.g. 10m (0 = none)")
		traceOut   = flag.String("trace", "", "write an epoch-sampled JSONL trace of the run to this file")
		traceEpoch = flag.Uint64("trace-epoch", trace.DefaultEpoch, "cycles between trace samples")
		storeDir   = flag.String("store", "", "persistent result store directory: reruns of an identical tuple are answered from disk")
		stepperSel = flag.String("stepper", "fast", "cycle-advance strategy: fast (event-driven fast-forward) or reference (per-cycle)")
	)
	flag.Parse()

	kind, err := workload.KindByName(*benchName)
	exitOn(err)
	scheme, err := core.SchemeByName(*schemeName)
	exitOn(err)
	stepper, err := core.StepperByName(*stepperSel)
	exitOn(err)
	memKind, err := config.ParseMemKind(*memName)
	exitOn(err)

	p := kind.DefaultParams(1)
	p.Threads = *threads
	p.Seed = *seed
	if *simOps > 0 {
		p.SimOps = *simOps
	} else {
		p.SimOps /= 25
		if p.SimOps < 8 {
			p.SimOps = 8
		}
	}
	if *initOps > 0 {
		p.InitOps = *initOps
	}

	cfg := config.Default().WithMemKind(memKind)
	cfg.Cores = *threads
	cfg.Proteus.LogQ = *logQ
	cfg.Mem.LPQ = *lpq

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("building %v: threads=%d init=%d sim=%d ...\n", kind, p.Threads, p.InitOps, p.SimOps)
	econf := engine.Config{Workers: 1, JobTimeout: *jobTimeout, Stepper: stepper}
	if *storeDir != "" {
		st, err := resultstore.Open(*storeDir)
		exitOn(err)
		econf.Store = st
	}
	if *traceOut != "" {
		econf.Trace = func(j engine.Job) (*trace.Tracer, error) {
			f, err := os.Create(*traceOut)
			if err != nil {
				return nil, err
			}
			meta := trace.Meta{Label: j.String(), Fingerprint: j.Fingerprint(), Cores: j.Config.Cores}
			tr, err := trace.NewJSONLTracer(f, meta, *traceEpoch)
			if err != nil {
				f.Close()
				return nil, err
			}
			return tr, nil
		}
	}
	eng := engine.New(econf)
	start := time.Now()
	res, err := eng.Run(ctx, engine.Job{Kind: kind, Params: p, Scheme: scheme, Config: cfg})
	exitOn(err)
	if eng.Counters().StoreHits > 0 {
		fmt.Printf("answered from result store in %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("simulated in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *traceOut != "" {
		fmt.Printf("trace written to %s (1 sample per %d cycles)\n", *traceOut, *traceEpoch)
	}

	printReport(kind, scheme, memKind, res.Report, p)
}

func printReport(kind workload.Kind, scheme core.Scheme, mem config.MemKind, rep *stats.Report, p workload.Params) {
	txns := uint64(p.SimOps * p.Threads)
	fmt.Printf("\n%v / %v on %v\n", kind, scheme, mem)
	fmt.Printf("  cycles            %12d  (%.0f per txn)\n", rep.Cycles, float64(rep.Cycles)/float64(p.SimOps))
	fmt.Printf("  retired uops      %12d\n", rep.TotalRetired())
	fmt.Printf("  transactions      %12d\n", txns)
	fmt.Printf("  front-end stalls  %12d\n", rep.TotalFrontEndStalls())
	m := rep.MemStat
	fmt.Printf("  NVM reads         %12d\n", m.Reads)
	fmt.Printf("  NVM writes        %12d  (data %d, log %d, truncate %d)\n",
		m.NVMWrites(), m.Writes[stats.WriteData], m.Writes[stats.WriteLog], m.Writes[stats.WriteTruncate])
	fmt.Printf("  WPQ coalesced     %12d\n", m.WPQCoalesced)
	fmt.Printf("  LPQ accepted      %12d  dropped %d, drained %d\n", m.LPQAccepted, m.LPQDropped, m.LPQDrained)
	fmt.Printf("  row buffer        %12.1f%% hits\n", 100*float64(m.RowBufferHits)/float64(max64(m.RowBufferHits+m.RowBufferMiss, 1)))
	var logLoads, flushes, lltH, lltM uint64
	for i := range rep.CoreStat {
		logLoads += rep.CoreStat[i].LogLoads
		flushes += rep.CoreStat[i].LogFlushes
		lltH += rep.CoreStat[i].LLTHits
		lltM += rep.CoreStat[i].LLTMisses
	}
	if logLoads > 0 {
		fmt.Printf("  log ops           %12d  (%d flushed to MC, LLT miss %.1f%%)\n",
			logLoads, flushes, rep.LLTMissRate())
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-sim:", err)
		os.Exit(1)
	}
}
