// Command proteus-trace inspects the per-scheme code generation: it
// builds a workload, expands it under one or two schemes, and prints
// instruction histograms, per-transaction averages, and (optionally) the
// first transactions' micro-ops — the quickest way to see exactly what
// each logging scheme adds to the instruction stream.
//
// It also renders epoch-sampled run traces (proteus-sim -trace /
// proteus-bench -trace-dir) as an ASCII occupancy timeline.
//
// Example:
//
//	proteus-trace -bench QE -scheme PMEM -vs Proteus -dump 1
//	proteus-trace -timeline qe.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logging"
	"repro/internal/timeline"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "QE", "benchmark: QE, HM, SS, AT, BT, RT, LL")
		schemeA   = flag.String("scheme", "PMEM", "scheme to expand")
		schemeB   = flag.String("vs", "", "optional second scheme to compare against")
		dump      = flag.Int("dump", 0, "print the micro-ops of the first N transactions")
		simOps    = flag.Int("simops", 32, "timed operations per thread")
		threads   = flag.Int("threads", 1, "threads")
		seed      = flag.Int64("seed", 42, "workload seed")
		timelineF = flag.String("timeline", "", "render this JSONL run trace as an ASCII occupancy timeline and exit")
		width     = flag.Int("width", timeline.DefaultWidth, "timeline chart width in columns")
	)
	flag.Parse()

	if *timelineF != "" {
		f, err := os.Open(*timelineF)
		exitOn(err)
		err = timeline.Render(os.Stdout, f, *width)
		f.Close()
		exitOn(err)
		return
	}

	kind, err := parseBench(*benchName)
	exitOn(err)
	p := kind.DefaultParams(1)
	p.Threads = *threads
	p.SimOps = *simOps
	p.InitOps /= 50
	if p.InitOps < 32 {
		p.InitOps = 32
	}
	p.Seed = *seed
	w, err := workload.Build(kind, p)
	exitOn(err)

	cfg := config.Default()
	schemes := []string{*schemeA}
	if *schemeB != "" {
		schemes = append(schemes, *schemeB)
	}
	for _, name := range schemes {
		scheme, err := parseScheme(name)
		exitOn(err)
		traces, err := logging.Generate(w, scheme, cfg)
		exitOn(err)
		tr := traces[0]
		s := tr.Summarize()
		txns := float64(p.SimOps)
		fmt.Printf("%v / %v: %d micro-ops on thread 0 (%.1f per txn)\n", kind, scheme, tr.Len(), float64(tr.Len())/txns)
		fmt.Printf("  loads  %6d (%.1f/txn)   stores   %6d (%.1f/txn)   alu units %d\n",
			s.Loads, float64(s.Loads)/txns, s.Stores, float64(s.Stores)/txns, s.Alus)
		fmt.Printf("  clwb   %6d (%.1f/txn)   sfence   %6d (%.1f/txn)   pcommit   %d\n",
			s.Clwbs, float64(s.Clwbs)/txns, s.Sfences, float64(s.Sfences)/txns, s.Pcommits)
		fmt.Printf("  logld  %6d (%.1f/txn)   logflush %6d (%.1f/txn)   locks     %d\n",
			s.LogLoads, float64(s.LogLoads)/txns, s.LogFlushes, float64(s.LogFlushes)/txns, s.Locks)
		if *dump > 0 {
			dumpTxns(tr, *dump)
		}
		fmt.Println()
	}
}

func dumpTxns(tr *isa.Trace, n int) {
	txn := 0
	for _, op := range tr.Ops {
		if op.Kind == isa.TxBegin {
			txn++
			if txn > n {
				return
			}
		}
		if txn >= 1 {
			fmt.Printf("    %s\n", op)
		}
		if op.Kind == isa.TxEnd && txn >= n {
			return
		}
	}
}

func parseBench(s string) (workload.Kind, error) {
	for _, k := range append(append([]workload.Kind{}, workload.Table2...), workload.LinkedList) {
		if strings.EqualFold(k.Abbrev(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown benchmark %q", s)
}

func parseScheme(s string) (core.Scheme, error) {
	for _, sc := range core.Schemes {
		if strings.EqualFold(sc.String(), s) {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-trace:", err)
		os.Exit(1)
	}
}
