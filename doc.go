// Package repro is a from-scratch Go reproduction of "Proteus: A Flexible
// and Fast Software Supported Hardware Logging approach for NVM" (Shin,
// Tirukkovalluri, Tuck, Solihin — MICRO-50, 2017).
//
// The implementation lives under internal/: the machine model (cpu, cache,
// memctrl, nvm), the logging schemes and their code generation (core,
// logging, logfmt), the workloads of Table 2 (heap, pstruct, workload),
// crash recovery and its verification (recovery), and the experiment
// harness that regenerates every figure and table of the paper's
// evaluation (experiments). See README.md for a tour, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-versus-measured results.
package repro
