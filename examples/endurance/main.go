// endurance: the Figure 8 angle — NVM cells wear out, so the writes a
// logging scheme adds are lifetime, not just bandwidth. This example runs
// the same workload under every scheme with per-line write counting
// enabled and reports total writes, write amplification over the ideal,
// and the hottest line's write count (the wear-leveling worst case).
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logging"
	"repro/internal/nvm"
	"repro/internal/workload"
)

func main() {
	p := workload.AVLTree.DefaultParams(1)
	p.SimOps = 250
	w, err := workload.Build(workload.AVLTree, p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Default()

	type row struct {
		scheme  core.Scheme
		writes  uint64
		hottest uint64
		lines   int
	}
	var rows []row
	var ideal uint64
	for _, s := range []core.Scheme{core.PMEMNoLog, core.PMEM, core.ATOM, core.ProteusNoLWR, core.Proteus} {
		traces, err := logging.Generate(w, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(cfg, s, traces, w.InitImage)
		if err != nil {
			log.Fatal(err)
		}
		sys.Device().EnableEndurance()
		rep, err := sys.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		var hottest uint64
		counts := sys.Device().WriteCounts()
		for _, c := range counts {
			if c > hottest {
				hottest = c
			}
		}
		rows = append(rows, row{s, rep.MemStat.NVMWrites(), hottest, len(counts)})
		if s == core.PMEMNoLog {
			ideal = rep.MemStat.NVMWrites()
		}
	}

	fmt.Printf("AVL-tree workload, %d transactions (NVM write endurance view)\n\n", p.SimOps*p.Threads)
	fmt.Printf("%-15s %12s %14s %14s %12s\n", "scheme", "NVM writes", "amplification", "distinct lines", "hottest line")
	for _, r := range rows {
		fmt.Printf("%-15s %12d %13.2fx %14d %12d\n", r.scheme, r.writes, float64(r.writes)/float64(ideal), r.lines, r.hottest)
	}
	fmt.Println("\nEvery log write that the LPQ drops (Proteus) is NVM lifetime saved;")
	fmt.Println("ATOM's 3-4x amplification cuts cell endurance by the same factor (§6, Figure 8).")

	// Start-Gap wear leveling (the paper's reference [39]) attacks the
	// orthogonal problem: spreading whatever writes remain. Rerun the SW
	// baseline with the heap region leveled and compare the hottest line.
	traces, err := logging.Generate(w, core.PMEM, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
	if err != nil {
		log.Fatal(err)
	}
	sys.Device().EnableEndurance()
	base, _ := isa.HeapWindow(0)
	sg, err := nvm.NewStartGap(base, 1<<16, 100) // level 4MB of thread 0's heap
	if err != nil {
		log.Fatal(err)
	}
	sys.Device().EnableWearLeveling(sg)
	if _, err := sys.Run(0); err != nil {
		log.Fatal(err)
	}
	var hottest uint64
	for _, c := range sys.Device().WriteCounts() {
		if c > hottest {
			hottest = c
		}
	}
	fmt.Printf("\nwith Start-Gap wear leveling on thread 0's heap: hottest line %d writes (%d gap moves)\n",
		hottest, sg.Moves())
}
