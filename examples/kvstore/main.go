// kvstore: a durable key-value store on the persistent heap, run through
// the full crash cycle — populate under Proteus, cut power mid-update,
// recover, and verify that every committed transaction survived and the
// in-flight one rolled back.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/workload"
)

func main() {
	// The KV store substrate is the Table 2 hash-map benchmark: 16 maps
	// behind per-map locks, insert/delete transactions.
	p := workload.Params{Threads: 2, InitOps: 4096, SimOps: 96, Seed: 7}
	w, err := workload.Build(workload.HashMap, p)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Check(); err != nil {
		log.Fatal(err)
	}
	oracle := recovery.NewOracle(w)

	cfg := config.Default()
	cfg.Cores = p.Threads
	traces, err := logging.Generate(w, core.Proteus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Learn the run length, then crash at two thirds.
	probe, _ := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	if _, err := probe.Run(0); err != nil {
		log.Fatal(err)
	}
	crashAt := probe.Cycle() * 2 / 3

	sys, _ := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	sys.Step(crashAt)
	fmt.Printf("power cut at cycle %d of %d\n", crashAt, probe.Cycle())

	committed := make([]int, p.Threads)
	for i, cs := range sys.Commits() {
		committed[i] = len(cs)
	}
	fmt.Printf("committed at crash: %v of %d transactions per thread\n", committed, p.SimOps)

	// What the NVM DIMMs + ADR domain hold at that instant.
	img := sys.CrashImage()
	res, err := recovery.Recover(img, core.Proteus, cfg.Cores)
	if err != nil {
		log.Fatal(err)
	}
	for t, rb := range res.RolledBack {
		fmt.Printf("thread %d: rolled back %d in-flight transaction(s) using %s\n",
			t, len(rb), "the Proteus undo log")
	}

	matched, err := oracle.VerifyPrefix(img, committed)
	if err != nil {
		log.Fatalf("ATOMICITY VIOLATED: %v", err)
	}
	fmt.Printf("verified: store state equals exactly %v committed transactions per thread\n", matched)
	fmt.Println("every committed insert/delete survived the crash; the in-flight ones vanished atomically")
}
