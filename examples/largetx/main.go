// largetx: the Table 3 scenario — transactions that update thousands of
// elements in one node of a linked list, stressing the LogQ/LLT/LPQ far
// beyond the Table 2 benchmarks. Proteus's hardware structures must
// sustain the load with near-ideal performance.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/workload"
)

func main() {
	cfg := config.Default()
	cfg.Cores = 2

	fmt.Println("txn size   PMEM cycles   Proteus   ideal    Proteus-speedup   ideal-speedup   log-ops/txn")
	for _, elems := range []int{1024, 2048, 4096, 8192} {
		p := workload.LinkedList.DefaultParams(1)
		p.Threads = 2
		p.ListElems = elems
		p.SimOps = 16
		w, err := workload.Build(workload.LinkedList, p)
		if err != nil {
			log.Fatal(err)
		}

		cycles := map[core.Scheme]uint64{}
		var logOps uint64
		for _, s := range []core.Scheme{core.PMEM, core.Proteus, core.PMEMNoLog} {
			traces, err := logging.Generate(w, s, cfg)
			if err != nil {
				log.Fatal(err)
			}
			sys, err := core.NewSystem(cfg, s, traces, w.InitImage)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := sys.Run(0)
			if err != nil {
				log.Fatal(err)
			}
			cycles[s] = rep.Cycles
			if s == core.Proteus {
				for i := range rep.CoreStat {
					logOps += rep.CoreStat[i].LogLoads
				}
			}
		}
		txns := uint64(p.SimOps * p.Threads)
		fmt.Printf("%8d   %11d   %7d   %5d    %15.2f   %13.2f   %11d\n",
			elems, cycles[core.PMEM], cycles[core.Proteus], cycles[core.PMEMNoLog],
			float64(cycles[core.PMEM])/float64(cycles[core.Proteus]),
			float64(cycles[core.PMEM])/float64(cycles[core.PMEMNoLog]),
			logOps/txns)
	}
	fmt.Println("\nProteus tracks the ideal case even at 8192-element transactions (Table 3).")
}
