// Quickstart: build one Table 2 workload, run it under the software
// logging baseline and under Proteus, and print the speedup and the NVM
// write savings — the paper's two headline claims, in about thirty lines
// of API use.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/workload"
)

func main() {
	// A hash-map workload: 4 threads, Table 2 footprint, a slice of the
	// timed operations.
	params := workload.HashMap.DefaultParams(1)
	params.SimOps = 400
	w, err := workload.Build(workload.HashMap, params)
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.Default() // the paper's Table 1 machine
	run := func(scheme core.Scheme) (cycles, nvmWrites uint64) {
		traces, err := logging.Generate(w, scheme, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Cycles, rep.MemStat.NVMWrites()
	}

	baseCycles, baseWrites := run(core.PMEM)
	protCycles, protWrites := run(core.Proteus)
	atomCycles, atomWrites := run(core.ATOM)

	fmt.Printf("benchmark: HM (%d transactions on %d threads)\n", params.SimOps*params.Threads, params.Threads)
	fmt.Printf("  PMEM (software logging): %10d cycles, %6d NVM writes\n", baseCycles, baseWrites)
	fmt.Printf("  ATOM (hardware logging): %10d cycles, %6d NVM writes\n", atomCycles, atomWrites)
	fmt.Printf("  Proteus (SSHL):          %10d cycles, %6d NVM writes\n", protCycles, protWrites)
	fmt.Printf("\nProteus speedup over software logging: %.2fx\n", float64(baseCycles)/float64(protCycles))
	fmt.Printf("ATOM writes %.1fx more to NVM than Proteus\n", float64(atomWrites)/float64(protWrites))
}
