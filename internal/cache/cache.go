// Package cache models the three-level write-back cache hierarchy of
// Table 1: private 32KB L1D and 256KB L2 per core, and a shared 8MB L3,
// all with 64-byte lines and LRU replacement. Lines carry their data so
// that the functional contents of the machine flow through the hierarchy
// exactly as the timing model persists them (clwb, write-backs, log
// loads).
//
// Cross-core coherence traffic is structurally absent: the workloads
// partition data structures across threads (see DESIGN.md §1), so no line
// is ever shared between cores. The shared L3 still models capacity and
// bandwidth interaction between cores.
package cache

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

type way struct {
	tag   uint64 // line address
	valid bool
	dirty bool
	lru   uint64
	data  [isa.LineSize]byte
}

// Level is one set-associative cache.
type Level struct {
	cfg     config.Cache
	sets    [][]way
	setMask uint64
}

// NewLevel builds a cache level from its configuration. All sets share
// one flat backing array: a level is two allocations instead of one per
// set, which matters when thousands of Systems are built per campaign.
func NewLevel(cfg config.Cache) *Level {
	n := cfg.Sets()
	backing := make([]way, n*cfg.Ways)
	sets := make([][]way, n)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Level{cfg: cfg, sets: sets, setMask: uint64(n - 1)}
}

func (l *Level) set(line uint64) []way {
	return l.sets[(line/isa.LineSize)&l.setMask]
}

// lookup returns the way holding line, or nil.
func (l *Level) lookup(line uint64) *way {
	s := l.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			return &s[i]
		}
	}
	return nil
}

// victim returns the way to allocate for line: an invalid way if any,
// otherwise the LRU way. The caller handles the victim's dirty data.
func (l *Level) victim(line uint64) *way {
	s := l.set(line)
	var v *way
	for i := range s {
		if !s[i].valid {
			return &s[i]
		}
		if v == nil || s[i].lru < v.lru {
			v = &s[i]
		}
	}
	return v
}

// Latency returns the level's access latency.
func (l *Level) Latency() int { return l.cfg.Latency }

// Hierarchy is one core's view of the cache system: its private L1D and
// L2, the shared L3 and the memory controller behind it.
type Hierarchy struct {
	l1, l2 *Level
	l3     *Level // shared
	mc     *memctrl.Controller
	l3ToMC int
	st     *stats.Core
}

// NewHierarchy wires a core's private levels to the shared L3 and MC.
func NewHierarchy(cfg config.Config, l3 *Level, mc *memctrl.Controller, st *stats.Core) *Hierarchy {
	return &Hierarchy{
		l1: NewLevel(cfg.L1D), l2: NewLevel(cfg.L2), l3: l3,
		mc: mc, l3ToMC: cfg.Mem.L3ToMC, st: st,
	}
}

// fill brings line into every level down to L1 and returns the cycle the
// data arrives at the core, along with the L1 way now holding it. ok is
// false when the memory controller cannot accept the read this cycle.
func (h *Hierarchy) fill(now uint64, line uint64) (*way, uint64, bool) {
	if w := h.l1.lookup(line); w != nil {
		w.lru = now
		if h.st != nil {
			h.st.LoadHitsL1++
		}
		return w, now + uint64(h.l1.Latency()), true
	}
	if w := h.l2.lookup(line); w != nil {
		w.lru = now
		nw := h.allocate(h.l1, now, line, w.data)
		if h.st != nil {
			h.st.LoadHitsL2++
		}
		return nw, now + uint64(h.l2.Latency()), true
	}
	if w := h.l3.lookup(line); w != nil {
		w.lru = now
		h.allocate(h.l2, now, line, w.data)
		nw := h.allocate(h.l1, now, line, w.data)
		if h.st != nil {
			h.st.LoadHitsL3++
		}
		return nw, now + uint64(h.l3.Latency()), true
	}
	// Miss all the way to memory.
	arrive := now + uint64(h.l3.Latency()) + uint64(h.l3ToMC)
	done, data, ok := h.mc.ReadLine(arrive, line)
	if !ok {
		return nil, 0, false
	}
	if h.st != nil {
		h.st.LoadMisses++
	}
	h.allocate(h.l3, now, line, data)
	h.allocate(h.l2, now, line, data)
	nw := h.allocate(h.l1, now, line, data)
	return nw, done + uint64(h.l3ToMC), true
}

// allocate installs line/data in level l (clean), evicting as needed, and
// returns the way.
func (h *Hierarchy) allocate(l *Level, now uint64, line uint64, data [isa.LineSize]byte) *way {
	if w := l.lookup(line); w != nil {
		w.lru = now
		w.data = data
		return w
	}
	v := l.victim(line)
	if v.valid && v.dirty {
		h.evict(l, now, v)
	}
	v.tag = line
	v.valid = true
	v.dirty = false
	v.lru = now
	v.data = data
	return v
}

// evict pushes a dirty victim one level down (L1→L2, L2→L3, L3→memory).
func (h *Hierarchy) evict(l *Level, now uint64, v *way) {
	switch l {
	case h.l1:
		if w := h.l2.lookup(v.tag); w != nil {
			w.data = v.data
			w.dirty = true
			return
		}
		nv := h.l2.victim(v.tag)
		if nv.valid && nv.dirty {
			h.evict(h.l2, now, nv)
		}
		*nv = way{tag: v.tag, valid: true, dirty: true, lru: now, data: v.data}
	case h.l2:
		if w := h.l3.lookup(v.tag); w != nil {
			w.data = v.data
			w.dirty = true
			return
		}
		nv := h.l3.victim(v.tag)
		if nv.valid && nv.dirty {
			h.evict(h.l3, now, nv)
		}
		*nv = way{tag: v.tag, valid: true, dirty: true, lru: now, data: v.data}
	default: // L3
		h.mc.WriteLineEvict(now, v.tag, v.data, stats.WriteData)
	}
}

// Load reads size bytes at addr through the hierarchy, returning the data
// and its arrival cycle. ok is false when the access must be retried
// (memory-controller backpressure).
func (h *Hierarchy) Load(now uint64, addr uint64, size int, buf []byte) (done uint64, ok bool) {
	line := isa.LineAddr(addr)
	w, done, ok := h.fill(now, line)
	if !ok {
		return 0, false
	}
	if buf != nil {
		off := int(addr - line)
		n := size
		if off+n > isa.LineSize {
			n = isa.LineSize - off
		}
		copy(buf[:n], w.data[off:off+n])
		// Accesses spanning a line boundary touch the next line too.
		if n < size {
			w2, done2, ok2 := h.fill(now, line+isa.LineSize)
			if !ok2 {
				return 0, false
			}
			copy(buf[n:size], w2.data[:size-n])
			if done2 > done {
				done = done2
			}
		}
	}
	return done, true
}

// Store writes data at addr (write-allocate, write-back), returning the
// cycle the write completes in the L1. ok is false when a required fill
// cannot be accepted this cycle.
func (h *Hierarchy) Store(now uint64, addr uint64, data []byte) (done uint64, ok bool) {
	line := isa.LineAddr(addr)
	w, done, ok := h.fill(now, line)
	if !ok {
		return 0, false
	}
	off := int(addr - line)
	n := len(data)
	if off+n > isa.LineSize {
		n = isa.LineSize - off
	}
	copy(w.data[off:off+n], data[:n])
	w.dirty = true
	if n < len(data) {
		w2, done2, ok2 := h.fill(now, line+isa.LineSize)
		if !ok2 {
			return 0, false
		}
		copy(w2.data[:len(data)-n], data[n:])
		w2.dirty = true
		if done2 > done {
			done = done2
		}
	}
	return done, true
}

// Clwb writes the line containing addr back to the memory controller if it
// is dirty anywhere in this core's path, leaving it valid and clean. It
// returns the cycle at which the write is accepted at the WPQ (the
// completion point under ADR) and whether a write actually happened. ok is
// false when the WPQ is full and the clwb must be retried.
func (h *Hierarchy) Clwb(now uint64, addr uint64) (done uint64, wrote bool, ok bool) {
	line := isa.LineAddr(addr)
	var w *way
	lat := uint64(0)
	if w = h.l1.lookup(line); w != nil {
		lat = uint64(h.l1.Latency())
	} else if w = h.l2.lookup(line); w != nil {
		lat = uint64(h.l2.Latency())
	} else if w = h.l3.lookup(line); w != nil {
		lat = uint64(h.l3.Latency())
	}
	if w == nil || !w.dirty {
		return now + uint64(h.l1.Latency()), false, true
	}
	arrive := now + lat + uint64(h.l3.Latency()) + uint64(h.l3ToMC)
	if !h.mc.WriteLine(arrive, line, w.data, stats.WriteData) {
		return 0, false, false
	}
	w.dirty = false
	// Keep lower-level copies coherent with the flushed data.
	if lw := h.l2.lookup(line); lw != nil && lw != w {
		lw.data = w.data
		lw.dirty = false
	}
	if lw := h.l3.lookup(line); lw != nil && lw != w {
		lw.data = w.data
		lw.dirty = false
	}
	return arrive + uint64(h.l3ToMC), true, true
}

// Peek reads bytes functionally (no timing, no state change), preferring
// the highest level holding the line. It is used to capture pre-images for
// hardware log creation.
func (h *Hierarchy) Peek(addr uint64, size int, buf []byte) {
	for i := 0; i < size; {
		line := isa.LineAddr(addr + uint64(i))
		off := int(addr + uint64(i) - line)
		n := isa.LineSize - off
		if n > size-i {
			n = size - i
		}
		var src *[isa.LineSize]byte
		if w := h.l1.lookup(line); w != nil {
			src = &w.data
		} else if w := h.l2.lookup(line); w != nil {
			src = &w.data
		} else if w := h.l3.lookup(line); w != nil {
			src = &w.data
		}
		if src != nil {
			copy(buf[i:i+n], src[off:off+n])
		} else {
			var tmp [isa.LineSize]byte
			done, data, ok := h.mc.PeekLine(line)
			_ = done
			if ok {
				tmp = data
			}
			copy(buf[i:i+n], tmp[off:off+n])
		}
		i += n
	}
}

// DirtyLines returns the dirty state of line addr anywhere in the private
// path or L3 (used by tx-end hardware flushing to decide what to write).
func (h *Hierarchy) IsDirty(line uint64) bool {
	line = isa.LineAddr(line)
	if w := h.l1.lookup(line); w != nil && w.dirty {
		return true
	}
	if w := h.l2.lookup(line); w != nil && w.dirty {
		return true
	}
	if w := h.l3.lookup(line); w != nil && w.dirty {
		return true
	}
	return false
}
