package cache

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/nvm"
	"repro/internal/stats"
)

func newHier() (*Hierarchy, *memctrl.Controller, *stats.Core, *stats.Mem) {
	cfg := config.Default()
	ms := &stats.Mem{}
	cs := &stats.Core{}
	store := nvm.NewStore()
	dev := nvm.NewDevice(cfg.Mem, ms)
	mc := memctrl.New(cfg.Mem, dev, store, ms)
	l3 := NewLevel(cfg.L3)
	return NewHierarchy(cfg, l3, mc, cs), mc, cs, ms
}

func TestLoadLatencies(t *testing.T) {
	h, _, cs, _ := newHier()
	addr := uint64(isa.HeapBase)

	// Cold miss goes to memory.
	done1, ok := h.Load(100, addr, 8, nil)
	if !ok {
		t.Fatal("load refused")
	}
	if done1 < 100+42 {
		t.Fatalf("cold miss done at %d, below L3 latency", done1)
	}
	if cs.LoadMisses != 1 {
		t.Fatalf("misses %d", cs.LoadMisses)
	}
	// Now an L1 hit.
	done2, _ := h.Load(10_000, addr, 8, nil)
	if done2 != 10_000+4 {
		t.Fatalf("L1 hit done at %d, want %d", done2, 10_000+4)
	}
	if cs.LoadHitsL1 != 1 {
		t.Fatalf("L1 hits %d", cs.LoadHitsL1)
	}
}

func TestStoreMakesLineDirtyAndClwbFlushes(t *testing.T) {
	h, mc, _, _ := newHier()
	addr := uint64(isa.HeapBase)
	if _, ok := h.Store(100, addr, []byte{0xAB}); !ok {
		t.Fatal("store refused")
	}
	if !h.IsDirty(addr) {
		t.Fatal("line not dirty after store")
	}
	done, wrote, ok := h.Clwb(200, addr)
	if !ok || !wrote {
		t.Fatalf("clwb: ok=%v wrote=%v", ok, wrote)
	}
	if done <= 200 {
		t.Fatal("clwb completed instantly")
	}
	if h.IsDirty(addr) {
		t.Fatal("line still dirty after clwb")
	}
	// Drain the WPQ; the byte must reach memory.
	mc.ForceDrain(true)
	for now := uint64(done); now < done+100_000; now++ {
		mc.Tick(now)
		if mc.WPQEmpty() {
			break
		}
	}
	if got := mc.Store().Read(addr, 1)[0]; got != 0xAB {
		t.Fatalf("memory byte %#x, want 0xAB", got)
	}
}

func TestCleanClwbIsNoWrite(t *testing.T) {
	h, _, _, _ := newHier()
	addr := uint64(isa.HeapBase)
	h.Load(100, addr, 8, nil)
	_, wrote, ok := h.Clwb(200, addr)
	if !ok || wrote {
		t.Fatalf("clean clwb: ok=%v wrote=%v", ok, wrote)
	}
}

func TestLoadReturnsStoredData(t *testing.T) {
	h, _, _, _ := newHier()
	addr := uint64(isa.HeapBase + 24)
	h.Store(100, addr, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	buf := make([]byte, 8)
	h.Load(200, addr, 8, buf)
	for i, b := range buf {
		if b != byte(i+1) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
}

func TestEvictionWritesBack(t *testing.T) {
	h, mc, _, _ := newHier()
	cfg := config.Default()
	// Dirty one line, then blow every level with conflicting fills.
	victim := uint64(isa.HeapBase)
	h.Store(1, victim, []byte{0x77})

	// Lines mapping to the same set in every level, enough to evict
	// through L1, L2 and L3.
	stride := uint64(cfg.L3.SizeBytes) // conservative: same set everywhere
	n := cfg.L3.Ways + cfg.L2.Ways + cfg.L1D.Ways + 2
	for i := 1; i <= n; i++ {
		h.Load(uint64(i)*10_000, victim+uint64(i)*stride, 8, nil)
	}
	// The dirty line must have been written back to the MC (WPQ) or
	// still live in a lower level; read through a fresh hierarchy after
	// draining.
	mc.ForceDrain(true)
	for now := uint64(1_000_000); now < 3_000_000; now++ {
		mc.Tick(now)
		if mc.WPQEmpty() {
			break
		}
	}
	if h.IsDirty(victim) {
		// Still cached somewhere — acceptable; force check via peek.
		var b [1]byte
		h.Peek(victim, 1, b[:])
		if b[0] != 0x77 {
			t.Fatalf("dirty data lost: %#x", b[0])
		}
		return
	}
	if got := mc.Store().Read(victim, 1)[0]; got != 0x77 {
		t.Fatalf("evicted data not in memory: %#x", got)
	}
}

func TestPeekSeesMemoryAndCache(t *testing.T) {
	h, mc, _, _ := newHier()
	addr := uint64(isa.HeapBase)
	mc.Store().WriteUint64(addr, 0x1111)
	var buf [8]byte
	h.Peek(addr, 8, buf[:])
	if buf[0] != 0x11 {
		t.Fatal("peek missed memory value")
	}
	h.Store(100, addr, []byte{0x22})
	h.Peek(addr, 1, buf[:1])
	if buf[0] != 0x22 {
		t.Fatal("peek missed cached store")
	}
}

func TestCrossLineAccesses(t *testing.T) {
	h, _, _, _ := newHier()
	addr := uint64(isa.HeapBase + 60) // spans two lines
	h.Store(100, addr, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	buf := make([]byte, 8)
	h.Load(200, addr, 8, buf)
	for i, b := range buf {
		if b != byte(i+1) {
			t.Fatalf("cross-line byte %d = %d", i, b)
		}
	}
}
