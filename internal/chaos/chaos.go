// Package chaos is the deterministic fault injector behind the
// serve/cluster/resultstore robustness campaign. It owns one seeded
// random stream and three injection surfaces:
//
//   - FS wraps resultstore.FS with disk faults: torn (short) writes the
//     kernel "acknowledged", single bit flips on read, ENOSPC, fsync
//     failures, and crash-before-rename (the publish rename never
//     lands).
//   - RoundTripper wraps http.RoundTripper with network faults for the
//     worker↔coordinator protocol: dropped connections, injected
//     latency, duplicated requests, and synthesized 5xx responses.
//   - Roll/Intn expose the same seeded stream to process-level fault
//     schedules (cmd/proteus-chaos kills and stalls workers mid-batch
//     with it).
//
// Determinism contract: every decision is drawn from one rand.Rand
// seeded by Config-independent Seed, so a fixed seed reproduces the
// same fault mix and rates. Under concurrency the interleaving of draws
// follows goroutine scheduling, so the exact fault *schedule* can vary
// between runs — which is precisely what the soak harness wants: the
// system must produce byte-identical reports under any schedule the
// seed generates, not under one blessed schedule. Every injected fault
// is counted per kind; Counters() is the campaign's evidence that the
// surfaces actually fired.
package chaos

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Config sets per-operation fault probabilities, each in [0, 1]. The
// zero value injects nothing.
type Config struct {
	// Filesystem faults (FS).
	TornWrite   float64 // a write persists only a prefix but reports full success
	BitFlip     float64 // one random bit of a read flips
	ENOSPC      float64 // a write fails with "no space left on device"
	SyncFail    float64 // an fsync fails after writing
	CrashRename float64 // the publishing rename never happens (process "crashed")

	// Network faults (RoundTripper).
	Drop        float64       // the connection drops before a response arrives
	Delay       float64       // the request is delayed by up to MaxDelay
	Dup         float64       // the network delivers the request twice
	ServerError float64       // a synthesized 503 comes back instead of the real response
	MaxDelay    time.Duration // cap for injected latency; <= 0 means 50ms
}

// Injector is the shared seeded decision stream. Safe for concurrent
// use.
type Injector struct {
	conf Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]uint64
}

// New returns an injector whose decisions are fully determined by seed.
func New(seed int64, conf Config) *Injector {
	if conf.MaxDelay <= 0 {
		conf.MaxDelay = 50 * time.Millisecond
	}
	return &Injector{
		conf:   conf,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]uint64),
	}
}

// Config returns the injector's fault configuration.
func (in *Injector) Config() Config { return in.conf }

// Roll draws one decision: with probability p it records a fault of the
// given kind and returns true. p <= 0 never fires (and draws nothing,
// so disabled faults do not perturb the stream of enabled ones).
func (in *Injector) Roll(kind string, p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	hit := in.rng.Float64() < p
	if hit {
		in.counts[kind]++
	}
	in.mu.Unlock()
	return hit
}

// Intn draws a uniform int in [0, n) from the seeded stream.
func (in *Injector) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v
}

// Counters snapshots the per-kind fault counts.
func (in *Injector) Counters() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total is the number of faults injected so far across all kinds.
func (in *Injector) Total() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t uint64
	for _, v := range in.counts {
		t += v
	}
	return t
}

// Kinds returns the fault kinds injected so far, sorted — the stable
// iteration order for reports.
func (in *Injector) Kinds() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.counts))
	for k := range in.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
