package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testJob(seed int64) engine.Job {
	cfg := config.Default()
	cfg.Cores = 1
	return engine.Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: seed},
		Scheme: core.PMEMNoLog,
		Config: cfg,
	}
}

func testResult() *engine.Result {
	rep := &stats.Report{Label: "chaos", Cycles: 4242, CoreStat: make([]stats.Core, 1)}
	rep.CoreStat[0].Retired = 99
	return &engine.Result{Report: rep, EmittedLogFlushes: 3}
}

// TestInjectorDeterministic: the same seed yields the same decision
// stream, a different seed a different one, and counters record hits.
func TestInjectorDeterministic(t *testing.T) {
	conf := Config{Drop: 0.3, BitFlip: 0.5}
	a, b := New(7, conf), New(7, conf)
	var hitsA, hitsB int
	for i := 0; i < 1000; i++ {
		if a.Roll("x", 0.3) {
			hitsA++
		}
		if b.Roll("x", 0.3) {
			hitsB++
		}
		if a.Intn(100) != b.Intn(100) {
			t.Fatalf("draw %d diverged between equal seeds", i)
		}
	}
	if hitsA != hitsB {
		t.Fatalf("hit counts diverged: %d vs %d", hitsA, hitsB)
	}
	if hitsA == 0 || hitsA == 1000 {
		t.Fatalf("p=0.3 roll hit %d/1000 times", hitsA)
	}
	if a.Counters()["x"] != uint64(hitsA) || a.Total() != uint64(hitsA) {
		t.Fatalf("counters %v do not match %d hits", a.Counters(), hitsA)
	}
	// Disabled faults must not consume draws: a stream with an extra
	// p=0 roll interleaved stays aligned.
	c, d := New(9, conf), New(9, conf)
	for i := 0; i < 100; i++ {
		c.Roll("off", 0)
		if c.Intn(1000) != d.Intn(1000) {
			t.Fatalf("p=0 roll perturbed the stream at draw %d", i)
		}
	}
}

// TestTornWriteIsDetectedByDigest: a write that silently persists only
// a prefix publishes a truncated entry; the store's digest verification
// refuses to serve it and quarantines the corpse.
func TestTornWriteIsDetectedByDigest(t *testing.T) {
	dir := t.TempDir()
	in := New(1, Config{TornWrite: 1})
	sick, err := resultstore.OpenFS(dir, NewFS(in))
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := sick.Store(j.Fingerprint(), j, testResult()); err != nil {
		t.Fatalf("torn write surfaced an error; it must lie: %v", err)
	}
	if in.Counters()["fs.torn_write"] == 0 {
		t.Fatal("torn-write fault never fired")
	}
	// A healthy reader of the same directory detects the damage.
	clean, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := clean.Load(j.Fingerprint())
	if got != nil || !errors.Is(err, resultstore.ErrCorruptEntry) {
		t.Fatalf("Load of torn entry = (%v, %v), want ErrCorruptEntry", got, err)
	}
	if n, err := clean.Quarantined(); err != nil || n != 1 {
		t.Fatalf("Quarantined() = (%d, %v), want 1", n, err)
	}
}

// TestBitFlipIsDetectedByDigest: one flipped bit on the read path makes
// the entry fail verification instead of serving silently wrong data.
func TestBitFlipIsDetectedByDigest(t *testing.T) {
	dir := t.TempDir()
	clean, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(2)
	if err := clean.Store(j.Fingerprint(), j, testResult()); err != nil {
		t.Fatal(err)
	}
	in := New(3, Config{BitFlip: 1})
	sick, err := resultstore.OpenFS(dir, NewFS(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sick.Load(j.Fingerprint())
	if got != nil || !errors.Is(err, resultstore.ErrCorruptEntry) {
		t.Fatalf("bit-flipped Load = (%v, %v), want ErrCorruptEntry", got, err)
	}
}

// TestCrashBeforeRenameNeverPublishes: the publish rename "crashes";
// the writer sees the failure, the old entry survives untouched, and no
// temp debris becomes visible.
func TestCrashBeforeRenameNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	clean, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(3)
	old := testResult()
	if err := clean.Store(j.Fingerprint(), j, old); err != nil {
		t.Fatal(err)
	}

	in := New(4, Config{CrashRename: 1})
	sick, err := resultstore.OpenFS(dir, NewFS(in))
	if err != nil {
		t.Fatal(err)
	}
	newer := testResult()
	newer.Report.Cycles = 1
	if err := sick.Store(j.Fingerprint(), j, newer); err == nil {
		t.Fatal("Store succeeded though the rename crashed")
	}
	got, err := clean.Load(j.Fingerprint())
	if err != nil || got == nil || got.Report.Cycles != old.Report.Cycles {
		t.Fatalf("old entry after crashed publish = (%+v, %v)", got, err)
	}
}

// TestWriteFaultsSurfaceAsStoreErrors: ENOSPC and fsync failures fail
// the Store call without leaving a live entry behind.
func TestWriteFaultsSurfaceAsStoreErrors(t *testing.T) {
	for name, conf := range map[string]Config{
		"enospc":    {ENOSPC: 1},
		"sync_fail": {SyncFail: 1},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			in := New(5, conf)
			sick, err := resultstore.OpenFS(dir, NewFS(in))
			if err != nil {
				t.Fatal(err)
			}
			j := testJob(4)
			if err := sick.Store(j.Fingerprint(), j, testResult()); err == nil {
				t.Fatal("Store succeeded under a write fault")
			}
			clean, err := resultstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := clean.Load(j.Fingerprint()); got != nil || err != nil {
				t.Fatalf("failed Store left a visible entry: (%v, %v)", got, err)
			}
		})
	}
}

// TestEngineSurvivesSickStore: with every disk fault firing at a high
// rate, the engine still answers every job correctly — the store
// degrades to (at worst) a pile of quarantined corpses and extra
// simulations, never to a wrong or failed result.
func TestEngineSurvivesSickStore(t *testing.T) {
	in := New(6, Config{TornWrite: 0.5, BitFlip: 0.5, ENOSPC: 0.3, SyncFail: 0.3, CrashRename: 0.3})
	sick, err := resultstore.OpenFS(t.TempDir(), NewFS(in))
	if err != nil {
		t.Fatal(err)
	}
	chaotic := engine.New(engine.Config{Workers: 2, Store: sick})
	reference := engine.New(engine.Config{Workers: 2})
	for i := int64(0); i < 4; i++ {
		j := testJob(10 + i)
		want, err := reference.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		// Two passes: the second may hit, miss, or trip over a corrupt
		// entry — all must converge on the reference result.
		for pass := 0; pass < 2; pass++ {
			got, err := chaotic.Run(context.Background(), j)
			if err != nil {
				t.Fatalf("job %d pass %d failed under store chaos: %v", i, pass, err)
			}
			a, _ := json.Marshal(want)
			b, _ := json.Marshal(got)
			if string(a) != string(b) {
				t.Fatalf("job %d pass %d diverged under store chaos", i, pass)
			}
		}
	}
	if in.Total() == 0 {
		t.Fatal("no faults fired; the test exercised nothing")
	}
}

// TestRoundTripperSynthesizes5xx: the 5xx fault returns a well-formed
// 503 without touching the network.
func TestRoundTripperSynthesizes5xx(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewRoundTripper(New(7, Config{ServerError: 1}))}
	resp, err := client.Post(ts.URL, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if served.Load() != 0 {
		t.Fatal("synthesized 5xx still reached the server")
	}
}

// TestRoundTripperDropIsNetError: a dropped connection surfaces as a
// net.Error, the class retry logic treats as transient.
func TestRoundTripperDropIsNetError(t *testing.T) {
	client := &http.Client{Transport: NewRoundTripper(New(8, Config{Drop: 1}))}
	_, err := client.Get("http://127.0.0.1:1/never-dialed")
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("drop error %T is not a net.Error", err)
	}
}

// TestRoundTripperDuplicatesDelivery: the dup fault delivers the
// request twice; the caller sees one valid response.
func TestRoundTripperDuplicatesDelivery(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewRoundTripper(New(9, Config{Dup: 1}))}
	resp, err := client.Post(ts.URL, "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if served.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", served.Load())
	}
}

// TestRoundTripperDelayRespectsContext: an injected delay aborts as
// soon as the request context does.
func TestRoundTripperDelayRespectsContext(t *testing.T) {
	client := &http.Client{Transport: NewRoundTripper(New(10, Config{Delay: 1, MaxDelay: 10 * time.Second}))}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:1/never", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("delayed request to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delay ignored context cancellation (%v)", elapsed)
	}
}
