package chaos

import (
	"fmt"
	"os"
	"syscall"

	"repro/internal/resultstore"
)

// FS is a fault-injecting resultstore.FS. Every fault it injects is one
// the result store must survive: torn writes and bit flips are caught
// by the store's digest verification (quarantine → re-simulate), ENOSPC
// and fsync failures surface as Store errors the engine drops, and a
// crashed rename simply never publishes — the atomic-write contract
// means no reader ever sees the partial state.
type FS struct {
	inner resultstore.FS
	in    *Injector
}

// NewFS wraps the real filesystem with the injector's disk faults.
func NewFS(in *Injector) *FS { return WrapFS(resultstore.OSFS(), in) }

// WrapFS wraps an arbitrary FS (so shims can nest).
func WrapFS(inner resultstore.FS, in *Injector) *FS {
	return &FS{inner: inner, in: in}
}

// ReadFile reads through, then possibly flips one random bit of the
// payload — modeling media decay or a misdirected DMA that ECC missed.
func (f *FS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil || len(data) == 0 {
		return data, err
	}
	if f.in.Roll("fs.bitflip", f.in.conf.BitFlip) {
		bit := f.in.Intn(len(data) * 8)
		flipped := append([]byte(nil), data...) // never alias a page cache buffer
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, err
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) Remove(name string) error                     { return f.inner.Remove(name) }

// Rename is the publish step; a crash-before-rename fault means the
// process died after fsyncing the temp file but before the rename — the
// destination is untouched and the writer sees the failure.
func (f *FS) Rename(oldpath, newpath string) error {
	if f.in.Roll("fs.crash_rename", f.in.conf.CrashRename) {
		return fmt.Errorf("chaos: crash before rename of %s", newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// SyncDir can fail like any fsync.
func (f *FS) SyncDir(dir string) error {
	if f.in.Roll("fs.sync_fail", f.in.conf.SyncFail) {
		return fmt.Errorf("chaos: injected directory fsync failure: %w", syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

// CreateTemp hands out fault-wrapped file handles.
func (f *FS) CreateTemp(dir, pattern string) (resultstore.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: file, in: f.in}, nil
}

// chaosFile injects write-path faults on one handle.
type chaosFile struct {
	resultstore.File
	in *Injector
}

// Write may fail with ENOSPC, or — the nastiest fault — persist only a
// prefix while reporting full success, the way a lying controller or a
// torn page acknowledges a write that never fully landed. The torn
// write is only detectable later, by the store's digest check.
func (c *chaosFile) Write(p []byte) (int, error) {
	if c.in.Roll("fs.enospc", c.in.conf.ENOSPC) {
		return 0, fmt.Errorf("chaos: injected ENOSPC: %w", syscall.ENOSPC)
	}
	if len(p) > 1 && c.in.Roll("fs.torn_write", c.in.conf.TornWrite) {
		keep := 1 + c.in.Intn(len(p)-1) // strictly short, never empty
		if _, err := c.File.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil // the lie: full success reported
	}
	return c.File.Write(p)
}

// Sync may fail the way a real fsync does under a dying device.
func (c *chaosFile) Sync() error {
	if c.in.Roll("fs.sync_fail", c.in.conf.SyncFail) {
		return fmt.Errorf("chaos: injected fsync failure: %w", syscall.EIO)
	}
	return c.File.Sync()
}
