package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// netError is the transport-level failure the drop fault surfaces; it
// implements net.Error so retry classifiers treat it like any other
// connection error.
type netError struct{ msg string }

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return false }
func (e *netError) Temporary() bool { return true }

// RoundTripper injects network faults between an HTTP client and its
// real transport: dropped connections (a transport error with no
// response), added latency, duplicated deliveries (the request reaches
// the server twice — retries and at-least-once networks do this), and
// synthesized 503s (an overloaded proxy answering for a healthy
// backend). The worker protocol must absorb all four: drops and 5xx are
// retried with backoff, duplicates are idempotent or dropped as stale
// by the coordinator, and latency only stretches leases.
type RoundTripper struct {
	inner http.RoundTripper
	in    *Injector
}

// NewRoundTripper wraps the default transport with the injector's
// network faults.
func NewRoundTripper(in *Injector) *RoundTripper {
	return WrapRoundTripper(http.DefaultTransport, in)
}

// WrapRoundTripper wraps an arbitrary transport.
func WrapRoundTripper(inner http.RoundTripper, in *Injector) *RoundTripper {
	return &RoundTripper{inner: inner, in: in}
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	conf := t.in.conf
	if t.in.Roll("http.drop", conf.Drop) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &netError{fmt.Sprintf("chaos: connection to %s dropped", req.URL.Host)}
	}
	if t.in.Roll("http.delay", conf.Delay) {
		d := time.Duration(t.in.Intn(int(conf.MaxDelay)))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	if t.in.Roll("http.5xx", conf.ServerError) {
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesized(req, http.StatusServiceUnavailable,
			`{"error":"chaos: injected server error"}`), nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	// Duplicate delivery: the first response is discarded unread (as a
	// client that timed out and retried would have), the replay's
	// response is what the caller sees. Requires a replayable body.
	if (req.Body == nil || req.GetBody != nil) && t.in.Roll("http.dup", conf.Dup) {
		replay := req.Clone(req.Context())
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return resp, nil
			}
			replay.Body = body
		}
		resp2, err2 := t.inner.RoundTrip(replay)
		if err2 != nil {
			// The duplicate got lost; the original response stands.
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp2, nil
	}
	return resp, nil
}

// synthesized fabricates a minimal, well-formed HTTP response.
func synthesized(req *http.Request, code int, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
