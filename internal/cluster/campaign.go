package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"

	"repro/internal/crashcampaign"
	"repro/internal/engine"
)

// RunCampaign executes a crash campaign on the cluster: the bench ×
// scheme matrix is scattered as one KindCampaignTuple item per pair
// (placed on the ring by the tuple's job fingerprint), workers sweep each
// tuple independently, and the coordinator gathers the TupleReports and
// assembles the final report in matrix order — the exact shape
// crashcampaign.Run produces locally, so the report bytes are identical
// whether a campaign ran in-process, on 1 worker, or on N workers with
// crashes along the way.
//
// A quarantined tuple (an item that failed its whole retry budget) fails
// the campaign with ErrQuarantined rather than wedging it.
func RunCampaign(ctx context.Context, co *Coordinator, c crashcampaign.Config) (*crashcampaign.Report, error) {
	c.Normalize()
	faults := make([]string, len(c.Faults))
	for i, f := range c.Faults {
		faults[i] = f.String()
	}
	var ids []string
	for _, bench := range c.Benches {
		for _, scheme := range c.Schemes {
			w := TupleWork{
				Bench:    bench.Abbrev(),
				Scheme:   scheme.String(),
				Params:   c.Params,
				Sim:      c.Sim,
				Sweep:    c.Sweep,
				Rand:     c.Rand,
				Faults:   faults,
				Seed:     c.Seed,
				Minimize: int(c.Minimize),
			}
			payload, err := json.Marshal(w)
			if err != nil {
				return nil, fmt.Errorf("cluster: encoding tuple work: %w", err)
			}
			// Ring placement by the tuple's engine-job fingerprint: the
			// same key the worker's reference run is stored under, so the
			// tuple's natural home already holds (or will hold) its cache
			// entry.
			job := engine.Job{Kind: bench, Params: c.Params, Scheme: scheme, Config: c.Sim}
			ids = append(ids, co.Enqueue(KindCampaignTuple, payload, job.Fingerprint(), nil))
		}
	}
	tuples := make([]*crashcampaign.TupleReport, 0, len(ids))
	for _, id := range ids {
		raw, err := co.Wait(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("cluster: campaign tuple %s: %w", id, err)
		}
		var tr crashcampaign.TupleReport
		if err := json.Unmarshal(raw, &tr); err != nil {
			return nil, fmt.Errorf("cluster: decoding tuple report %s: %w", id, err)
		}
		tuples = append(tuples, &tr)
	}
	return crashcampaign.AssembleReport(c, tuples), nil
}

// RunSim executes one engine job on the cluster and returns its result.
// The coordinator's Publish hook (see PublishToStore) writes the result
// into the shared result store, so repeated submissions are answered
// without re-simulating anywhere.
func RunSim(ctx context.Context, co *Coordinator, j engine.Job) (*engine.Result, error) {
	payload, err := json.Marshal(NewSimWork(j))
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding sim work: %w", err)
	}
	id := co.Enqueue(KindSim, payload, j.Fingerprint(), nil)
	raw, err := co.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	var out SimOutcome
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("cluster: decoding sim outcome: %w", err)
	}
	return &engine.Result{Report: out.Report, EmittedLogFlushes: out.EmittedLogFlushes}, nil
}

// PublishToStore returns a Coordinator Publish hook that writes completed
// KindSim results into the shared result store — the coordinator-side
// half of "workers report, the coordinator publishes". Decode or store
// failures are dropped: the store is a cache, and the worst failure mode
// stays re-simulation.
func PublishToStore(store engine.ResultStore, log *slog.Logger) func(kind string, payload, result json.RawMessage) {
	return func(kind string, payload, result json.RawMessage) {
		if kind != KindSim || store == nil {
			return
		}
		var w SimWork
		var out SimOutcome
		if json.Unmarshal(payload, &w) != nil || json.Unmarshal(result, &out) != nil || out.Report == nil {
			return
		}
		j, err := w.Job()
		if err != nil {
			return
		}
		if err := store.Store(j.Fingerprint(), j, &engine.Result{
			Report: out.Report, EmittedLogFlushes: out.EmittedLogFlushes,
		}); err != nil && log != nil {
			log.Warn("publishing worker result", "job", j.String(), "err", err.Error())
		}
	}
}
