package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/workload"
)

// testCampaign is the small campaign every cluster scenario sweeps: 2
// benches × 2 failure-safe schemes = 4 tuple items, with the torn-write
// fault on so the requeue path replays non-trivial classification work.
func testCampaign() crashcampaign.Config {
	faults, err := crashcampaign.ParseFaults("torn")
	if err != nil {
		panic(err)
	}
	return crashcampaign.Config{
		Benches: []workload.Kind{workload.Queue, workload.StringSwap},
		Schemes: []core.Scheme{core.Proteus, core.ATOM},
		Params: workload.Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 11,
			SSItems: 64, SSStrSize: 64, ListNodes: 2, ListElems: 16},
		Sim:    config.Default(),
		Sweep:  6,
		Faults: faults,
		Seed:   1,
	}
}

// mountCoordinator serves the coordinator exactly the way proteus-served
// does: under /v1/cluster/, which is the prefix the Worker client dials.
func mountCoordinator(t *testing.T, co *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", http.StripPrefix("/v1/cluster", co.Handler()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func startWorker(t *testing.T, w *Worker) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

func newTestWorker(name, url string, batch int) *Worker {
	return &Worker{
		Name:        name,
		Coordinator: url,
		Engine:      engine.New(engine.Config{Workers: 2}),
		Batch:       batch,
		Poll:        10 * time.Millisecond,
	}
}

// runClusterCampaign executes the test campaign on a fresh coordinator
// with the given number of workers, optionally SIGKILL-simulating one
// mid-sweep, and returns the canonical report bytes plus the end-of-run
// stats.
func runClusterCampaign(t *testing.T, workers int, killOne bool) ([]byte, Stats) {
	t.Helper()
	co := NewCoordinator(Config{
		LeaseTTL:    400 * time.Millisecond,
		RetryBudget: 6,
		BackoffBase: 5 * time.Millisecond,
	})
	ts := mountCoordinator(t, co)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	type campaignOut struct {
		rep *crashcampaign.Report
		err error
	}
	out := make(chan campaignOut, 1)
	go func() {
		rep, err := RunCampaign(ctx, co, testCampaign())
		out <- campaignOut{rep, err}
	}()

	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	if killOne {
		// The victim boots alone, leases a batch, and "dies" holding it:
		// its context is cancelled before execution, so nothing completes
		// and nothing heartbeats — exactly what SIGKILL looks like to the
		// coordinator. Only then do the survivors join, so the requeue
		// path is guaranteed to run.
		victimCtx, victimCancel := context.WithCancel(context.Background())
		leased := make(chan struct{})
		var once sync.Once
		victim := newTestWorker("victim", ts.URL, 3)
		victim.Hooks.Leased = func(items []Item) {
			once.Do(func() {
				victimCancel()
				close(leased)
			})
		}
		victimDone := make(chan struct{})
		go func() {
			defer close(victimDone)
			_ = victim.Run(victimCtx)
		}()
		select {
		case <-leased:
		case <-time.After(30 * time.Second):
			t.Fatal("victim worker never leased an item")
		}
		<-victimDone
		for i := 0; i < workers-1; i++ {
			stops = append(stops, startWorker(t, newTestWorker(workerName(i), ts.URL, 2)))
		}
	} else {
		for i := 0; i < workers; i++ {
			stops = append(stops, startWorker(t, newTestWorker(workerName(i), ts.URL, 2)))
		}
	}

	res := <-out
	if res.err != nil {
		t.Fatalf("cluster campaign (%d workers, kill=%v): %v", workers, killOne, res.err)
	}
	var buf bytes.Buffer
	if err := res.rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), co.Stats()
}

func workerName(i int) string {
	return string(rune('a'+i)) + "-worker"
}

// TestClusterDeterministicAcrossWorkerCountAndLoss is the cluster's core
// guarantee: a campaign swept by 1 worker, by 4 workers, and by 4 workers
// one of which is killed mid-sweep (leases expired, items requeued within
// the retry budget) produces byte-identical reports — and identical to a
// plain in-process crashcampaign.Run of the same config.
func TestClusterDeterministicAcrossWorkerCountAndLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario campaign sweep")
	}

	one, statsOne := runClusterCampaign(t, 1, false)
	four, statsFour := runClusterCampaign(t, 4, false)
	loss, statsLoss := runClusterCampaign(t, 4, true)

	if !bytes.Equal(one, four) {
		t.Errorf("1-worker and 4-worker reports differ:\n1w: %s\n4w: %s", one, four)
	}
	if !bytes.Equal(one, loss) {
		t.Errorf("1-worker and worker-loss reports differ:\n1w: %s\nloss: %s", one, loss)
	}

	// The loss scenario must actually have exercised the failure path:
	// expired leases, requeues, and no quarantine (budget respected).
	if statsLoss.LeaseExpired == 0 {
		t.Errorf("worker-loss run expired no leases; victim did not hold work")
	}
	if statsLoss.Requeued == 0 {
		t.Errorf("worker-loss run requeued nothing")
	}
	for _, s := range []Stats{statsOne, statsFour, statsLoss} {
		if s.Quarantined != 0 || s.QuarantinedN != 0 {
			t.Errorf("campaign quarantined items: %+v", s)
		}
		if s.Done != 4 {
			t.Errorf("campaign finished %d/4 items", s.Done)
		}
	}

	// And the cluster must agree with a local, single-process run.
	c := testCampaign()
	c.Engine = engine.New(engine.Config{})
	rep, err := crashcampaign.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := rep.WriteJSON(&local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, local.Bytes()) {
		t.Errorf("cluster report differs from local crashcampaign.Run:\ncluster: %s\nlocal: %s", one, local.Bytes())
	}

	// The cluster scenarios all ran the default fast-forward stepper; a
	// local per-cycle reference run must land on the same report bytes.
	cRef := testCampaign()
	cRef.Stepper = core.StepperReference
	cRef.Engine = engine.New(engine.Config{Stepper: core.StepperReference})
	repRef, err := crashcampaign.Run(context.Background(), cRef)
	if err != nil {
		t.Fatal(err)
	}
	var localRef bytes.Buffer
	if err := repRef.WriteJSON(&localRef); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, localRef.Bytes()) {
		t.Errorf("cluster report differs from reference-stepper crashcampaign.Run:\ncluster: %s\nreference: %s", one, localRef.Bytes())
	}
}

// TestQuarantinePoisonedItem: an item that fails every attempt must burn
// its retry budget and surface ErrQuarantined to the waiter instead of
// looping forever.
func TestQuarantinePoisonedItem(t *testing.T) {
	co := NewCoordinator(Config{
		LeaseTTL:    5 * time.Second,
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
	})
	ts := mountCoordinator(t, co)
	stop := startWorker(t, newTestWorker("w1", ts.URL, 2))
	defer stop()

	// A sim item naming an unknown benchmark fails compilation on every
	// worker that tries it: the canonical poisoned job.
	id := co.Enqueue(KindSim, json.RawMessage(`{"bench":"NOPE","scheme":"Proteus"}`), "deadbeef", nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := co.Wait(ctx, id)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Wait = %v, want ErrQuarantined", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("quarantine error %q does not report the exhausted budget", err)
	}
	if s := co.Stats(); s.QuarantinedN != 1 || s.Quarantined != 1 {
		t.Errorf("stats %+v, want exactly one quarantined item", s)
	}
}

// TestLeaseExpiryRequeuesAndStaleCompletionIsDropped drives the lease
// state machine directly with an injected clock: a worker that leases and
// goes silent loses the item at TTL, another worker picks it up, and the
// original's late completion is dropped as stale.
func TestLeaseExpiryRequeuesAndStaleCompletionIsDropped(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := &now
	co := NewCoordinator(Config{
		LeaseTTL:    10 * time.Second,
		WorkerTTL:   time.Hour, // keep both workers on the ring throughout
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		now:         func() time.Time { return *clock },
	})

	for _, name := range []string{"w1", "w2"} {
		if err := co.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	id := co.Enqueue(KindSim, json.RawMessage(`{}`), "cafe", nil)
	got, err := co.Lease("w1", 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("w1 lease = (%v, %v), want the item", got, err)
	}
	if got2, _ := co.Lease("w2", 1); len(got2) != 0 {
		t.Fatalf("w2 leased %v while w1 holds the lease", got2)
	}

	now = now.Add(11 * time.Second) // past TTL: w1's lease is dead
	if got2, _ := co.Lease("w2", 1); len(got2) != 0 {
		// First post-expiry grant is gated by the backoff window.
		t.Fatalf("w2 leased %v inside the backoff window", got2)
	}
	now = now.Add(time.Second)
	got2, _ := co.Lease("w2", 1)
	if len(got2) != 1 || got2[0].ID != id {
		t.Fatalf("w2 post-expiry lease = %v, want requeued item", got2)
	}

	// w1 comes back from the dead and reports: stale, dropped.
	accepted, err := co.Complete("w1", id, json.RawMessage(`{"cycles":1}`), nil, "")
	if err != nil || accepted {
		t.Fatalf("stale completion = (%v, %v), want dropped", accepted, err)
	}
	// w2's report wins.
	accepted, err = co.Complete("w2", id, json.RawMessage(`{"cycles":1}`), nil, "")
	if err != nil || !accepted {
		t.Fatalf("live completion = (%v, %v), want accepted", accepted, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := co.Wait(ctx, id); err != nil {
		t.Fatalf("Wait after completion: %v", err)
	}
	s := co.Stats()
	if s.LeaseExpired != 1 || s.Requeued != 1 || s.StaleReports != 1 || s.Completed != 1 {
		t.Errorf("stats %+v, want 1 expiry / 1 requeue / 1 stale / 1 completed", s)
	}
}

// TestHeartbeatKeepsLeaseAlive: heartbeats extend the lease past the
// nominal TTL, and report which leases a worker has lost.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := &now
	co := NewCoordinator(Config{
		LeaseTTL:    10 * time.Second,
		WorkerTTL:   time.Hour,
		RetryBudget: 3,
		now:         func() time.Time { return *clock },
	})
	if err := co.Register("w1"); err != nil {
		t.Fatal(err)
	}
	id := co.Enqueue(KindSim, json.RawMessage(`{}`), "beef", nil)
	if got, _ := co.Lease("w1", 1); len(got) != 1 {
		t.Fatal("lease failed")
	}
	for i := 0; i < 5; i++ {
		now = now.Add(8 * time.Second) // each step would expire an unrefreshed lease at 10s
		lost, err := co.Heartbeat("w1", []string{id})
		if err != nil || len(lost) != 0 {
			t.Fatalf("heartbeat %d = (%v, %v), want kept", i, lost, err)
		}
	}
	if s := co.Stats(); s.LeaseExpired != 0 {
		t.Errorf("lease expired despite heartbeats: %+v", s)
	}
	lost, _ := co.Heartbeat("w1", []string{"item-never-existed"})
	if len(lost) != 1 {
		t.Errorf("heartbeat on unknown item reported lost=%v, want 1 entry", lost)
	}
}

// TestRingLocalityAndStability: keys move only when their owner leaves.
func TestRingLocalityAndStability(t *testing.T) {
	r := newRing(64)
	for _, w := range []string{"w1", "w2", "w3", "w4"} {
		r.add(w)
	}
	keys := make([]string, 200)
	before := make(map[string]string)
	for i := range keys {
		keys[i] = engine.Job{Kind: workload.Queue, Params: workload.Params{Seed: int64(i)},
			Scheme: core.Proteus, Config: config.Default()}.Fingerprint() + string(rune(i))
		before[keys[i]] = r.owner(keys[i])
	}
	owners := map[string]int{}
	for _, k := range keys {
		owners[before[k]]++
	}
	if len(owners) < 3 {
		t.Errorf("200 keys landed on %d workers; want a spread across >= 3", len(owners))
	}
	r.remove("w2")
	for _, k := range keys {
		after := r.owner(k)
		if before[k] != "w2" && after != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner never left", k, before[k], after)
		}
		if after == "w2" {
			t.Errorf("key %q still owned by removed worker", k)
		}
	}
}

// TestSimWorkRoundTrip: the wire form reconstructs a job with the same
// fingerprint, so ring placement, memo keys and store keys all agree
// across the network hop.
func TestSimWorkRoundTrip(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 2
	j := engine.Job{
		Kind:   workload.BTree,
		Params: workload.Params{Threads: 2, InitOps: 128, SimOps: 32, Seed: 7},
		Scheme: core.ATOM,
		Config: cfg,
	}
	data, err := json.Marshal(NewSimWork(j))
	if err != nil {
		t.Fatal(err)
	}
	var w SimWork
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Job()
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != j.Fingerprint() {
		t.Fatalf("wire round trip changed the job fingerprint: %s -> %s", j.Fingerprint(), back.Fingerprint())
	}
}

// TestEnqueueDeduplicates: identical submissions share one item and one
// retry budget.
func TestEnqueueDeduplicates(t *testing.T) {
	co := NewCoordinator(Config{})
	a := co.Enqueue(KindSim, json.RawMessage(`{"bench":"QE"}`), "aa", nil)
	b := co.Enqueue(KindSim, json.RawMessage(`{"bench":"QE"}`), "aa", nil)
	c := co.Enqueue(KindSim, json.RawMessage(`{"bench":"HM"}`), "bb", nil)
	if a != b {
		t.Errorf("identical payloads got distinct items %s / %s", a, b)
	}
	if a == c {
		t.Errorf("distinct payloads shared item %s", a)
	}
	if s := co.Stats(); s.Pending != 2 {
		t.Errorf("pending = %d, want 2", s.Pending)
	}
}

// TestBackoffShiftClampAtHighRetryBudget pins the overflow clamp in
// requeueLocked. BackoffBase<<(attempts-1) is computed in int64
// nanoseconds; with a high retry budget the shift walks past 63 bits and
// the product wraps mod 2^64. A base of (1<<34 + 1)ns wraps at attempt 31
// to exactly 1<<30 ns (~1.07s) — positive and below BackoffMax, so the
// old "> BackoffMax || <= 0" guard accepted it and the backoff window
// silently collapsed. The clamp must hold every post-overflow attempt at
// BackoffMax.
func TestBackoffShiftClampAtHighRetryBudget(t *testing.T) {
	const (
		base = time.Duration(1<<34 + 1) // ~17.18s, odd so the wrap is exact
		max  = 30 * time.Second
	)
	now := time.Unix(3000, 0)
	clock := &now
	co := NewCoordinator(Config{
		LeaseTTL:    time.Hour,
		WorkerTTL:   24 * time.Hour,
		RetryBudget: 64,
		BackoffBase: base,
		BackoffMax:  max,
		now:         func() time.Time { return *clock },
	})
	if err := co.Register("w1"); err != nil {
		t.Fatal(err)
	}
	id := co.Enqueue(KindSim, json.RawMessage(`{}`), "feed", nil)

	// Burn attempts 1..30: lease, fail, and skip far past any backoff.
	for i := 0; i < 30; i++ {
		got, err := co.Lease("w1", 1)
		if err != nil || len(got) != 1 {
			t.Fatalf("attempt %d: lease = (%v, %v), want the item", i+1, got, err)
		}
		if _, err := co.Complete("w1", id, nil, nil, "injected failure"); err != nil {
			t.Fatalf("attempt %d: fail report: %v", i+1, err)
		}
		now = now.Add(max + time.Second)
	}

	// Attempt 31: the shift by 30 wraps. The requeue window must still be
	// the full BackoffMax, not the wrapped ~1.07s.
	if got, _ := co.Lease("w1", 1); len(got) != 1 {
		t.Fatal("attempt 31: item not leasable")
	}
	if _, err := co.Complete("w1", id, nil, nil, "injected failure"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second) // far beyond the wrapped window
	if got, _ := co.Lease("w1", 1); len(got) != 0 {
		t.Fatalf("item leasable 2s after failure 31: backoff wrapped instead of clamping to %v", max)
	}
	now = now.Add(max - 2*time.Second)
	if got, _ := co.Lease("w1", 1); len(got) != 1 {
		t.Fatalf("item not leasable after the full %v clamped backoff", max)
	}
}
