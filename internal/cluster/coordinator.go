// Package cluster turns the single-node job server into a distributed
// simulation cluster: a coordinator that owns a queue of work items and
// pull-based workers (cmd/proteus-worker) that lease batches of items,
// heartbeat while simulating, and report results.
//
// The design is lease-based and fail-stop tolerant: every grant carries a
// TTL, a worker that vanishes (crash, partition, SIGKILL) simply stops
// heartbeating and its items are requeued when the lease expires. Each
// requeue burns one attempt from a retry budget with exponential backoff;
// items that exhaust the budget are quarantined with a typed error
// (ErrQuarantined) instead of wedging the campaign that submitted them.
//
// Placement uses a consistent-hash ring over the registered workers keyed
// by the item fingerprint (for simulations, engine.Job.Fingerprint() — the
// same key the result store shards by), so each tuple has one natural home
// and a worker's local result store accumulates exactly the entries it
// keeps being asked for. Ownership is a locality preference, not a
// partition: an idle worker steals any available item, which is what lets
// a 1-worker cluster drain everything and a 4-worker cluster survive the
// loss of one.
//
// Determinism is preserved end to end: items are deterministic
// simulations, results are keyed (never ordered by completion), and the
// campaign assembly on the coordinator walks the bench × scheme matrix in
// declaration order — so a campaign run on 1 worker, 4 workers, or 4
// workers with one killed mid-sweep produces byte-identical reports
// (asserted by TestClusterDeterministicAcrossWorkerCountAndLoss).
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ErrQuarantined marks an item that failed its whole retry budget. A
// campaign waiting on a quarantined item fails with this error (wrapped
// with the item id, attempt count and last failure) rather than hanging.
var ErrQuarantined = errors.New("cluster: item quarantined after retry budget exhausted")

// ErrUnknownWorker rejects lease/heartbeat/complete calls from a worker
// the coordinator does not know — never registered, or evicted after
// going silent (typically because the coordinator restarted and lost its
// membership). The HTTP layer maps it to 409 Conflict; workers react by
// re-registering and retrying, which is what lets a fleet ride out a
// coordinator restart without operator help.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// ItemState is one work item's lifecycle phase.
type ItemState string

const (
	ItemPending     ItemState = "pending"
	ItemLeased      ItemState = "leased"
	ItemDone        ItemState = "done"
	ItemQuarantined ItemState = "quarantined"
)

// Item is the wire form of one unit of work: a kind tag selecting the
// executor on the worker plus an opaque payload.
type Item struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// item is the coordinator's book-keeping for one unit of work.
type item struct {
	Item
	fp string // placement fingerprint (ring key)

	state     ItemState
	worker    string    // current lease holder
	expiry    time.Time // lease deadline
	attempts  int       // lease grants so far
	notBefore time.Time // backoff gate for the next grant
	lastErr   string    // most recent failed attempt's error

	result json.RawMessage
	err    error
	done   chan struct{}

	onDone func(result json.RawMessage) // optional completion hook (store publish)
}

// workerState tracks one registered worker.
type workerState struct {
	name     string
	lastSeen time.Time

	completed uint64
	requeued  uint64 // items this worker lost to failure reports
	expired   uint64 // items this worker lost to lease expiry
}

// Config tunes a Coordinator.
type Config struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat;
	// <= 0 means 10s.
	LeaseTTL time.Duration
	// WorkerTTL is how long a silent worker stays on the hash ring;
	// <= 0 means 3 × LeaseTTL.
	WorkerTTL time.Duration
	// RetryBudget is how many lease grants an item gets before it is
	// quarantined; <= 0 means 4.
	RetryBudget int
	// BackoffBase and BackoffMax shape the exponential requeue delay:
	// attempt n waits min(BackoffBase << (n-1), BackoffMax) before it can
	// be leased again. Defaults: 250ms base, 30s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxBatch caps how many items one lease call can grant; <= 0 means 8.
	MaxBatch int
	// VirtualNodes is the per-worker vnode count on the hash ring;
	// <= 0 means 64.
	VirtualNodes int
	// EvictAfterMissed evicts a worker after this many missed heartbeat
	// periods (LeaseTTL/3) of silence. It is an alternative spelling of
	// WorkerTTL and is ignored when WorkerTTL is set explicitly; <= 0
	// falls back to the WorkerTTL default (3 × LeaseTTL, i.e. 9 missed
	// heartbeats).
	EvictAfterMissed int
	// BackoffJitter spreads requeue backoffs: attempt n waits a duration
	// drawn from [b×(1−BackoffJitter), b] where b is the clamped
	// exponential delay, so a batch of items requeued together does not
	// stampede back in lockstep. 0 means the default 0.2; negative
	// disables jitter. The draw is a hash of (item, attempt, Seed), not a
	// shared random stream, so it is identical across runs regardless of
	// how requeues interleave.
	BackoffJitter float64
	// Seed perturbs the deterministic backoff jitter between otherwise
	// identical deployments.
	Seed int64
	// Publish, when non-nil, receives every completed item's kind and
	// result on the coordinator — the hook the serving layer uses to
	// write worker-produced simulation results into the shared result
	// store.
	Publish func(kind string, payload, result json.RawMessage)
	// VerifyCompletion, when non-nil, checks every successful
	// completion's provenance stamp before it is accepted (wired to
	// cluster.VerifyCompletion when the serving binary runs with the
	// ledger on). A completion that fails verification is treated as a
	// failed attempt: requeued with backoff, quarantined when the
	// budget runs out — a mis-stamping worker can slow an item down but
	// never slip an unattested result into the store.
	VerifyCompletion func(kind string, payload, result, stamp json.RawMessage) error
	// Logger receives structured coordinator logs; nil discards.
	Logger *slog.Logger

	// now overrides the clock in tests.
	now func() time.Time
}

// Coordinator owns the cluster's work queue. It is safe for concurrent
// use; all state transitions happen under one mutex and every API entry
// point first sweeps expired leases, so liveness does not depend on a
// background goroutine (though Janitor can run one to reclaim leases
// while the cluster is otherwise idle).
type Coordinator struct {
	conf Config
	log  *slog.Logger

	mu      sync.Mutex
	items   map[string]*item
	order   []string // enqueue order, for deterministic grant scans
	workers map[string]*workerState
	ring    *ring

	// counters (under mu; exported via Stats).
	leasesGranted uint64
	leaseExpired  uint64
	requeued      uint64
	completed     uint64
	quarantined   uint64
	staleReports  uint64
	evicted       uint64
	unknownCalls  uint64
	stampRejected uint64
}

// NewCoordinator returns a coordinator with the given configuration.
func NewCoordinator(conf Config) *Coordinator {
	if conf.LeaseTTL <= 0 {
		conf.LeaseTTL = 10 * time.Second
	}
	if conf.WorkerTTL <= 0 {
		if conf.EvictAfterMissed > 0 {
			conf.WorkerTTL = time.Duration(conf.EvictAfterMissed) * (conf.LeaseTTL / 3)
		} else {
			conf.WorkerTTL = 3 * conf.LeaseTTL
		}
	}
	if conf.BackoffJitter == 0 {
		conf.BackoffJitter = 0.2
	} else if conf.BackoffJitter < 0 {
		conf.BackoffJitter = 0
	} else if conf.BackoffJitter > 1 {
		conf.BackoffJitter = 1
	}
	if conf.RetryBudget <= 0 {
		conf.RetryBudget = 4
	}
	if conf.BackoffBase <= 0 {
		conf.BackoffBase = 250 * time.Millisecond
	}
	if conf.BackoffMax <= 0 {
		conf.BackoffMax = 30 * time.Second
	}
	if conf.MaxBatch <= 0 {
		conf.MaxBatch = 8
	}
	if conf.VirtualNodes <= 0 {
		conf.VirtualNodes = 64
	}
	if conf.Logger == nil {
		conf.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if conf.now == nil {
		conf.now = time.Now
	}
	return &Coordinator{
		conf:    conf,
		log:     conf.Logger,
		items:   make(map[string]*item),
		workers: make(map[string]*workerState),
		ring:    newRing(conf.VirtualNodes),
	}
}

// LeaseTTL returns the configured lease TTL (advertised to workers at
// registration so they can pace heartbeats).
func (c *Coordinator) LeaseTTL() time.Duration { return c.conf.LeaseTTL }

// itemID derives the deterministic identity of a work item from its
// content, so identical submissions collapse onto one item.
func itemID(kind string, payload []byte) string {
	h := sha256.Sum256(append([]byte(kind+"\x00"), payload...))
	return kind + "-" + hex.EncodeToString(h[:8])
}

// Enqueue admits one work item. fp is the placement fingerprint (ring
// key); onDone, when non-nil, runs once on the coordinator when the item
// completes. Identical (kind, payload) submissions share one item — and
// one retry budget — like the serving layer's singleflight. It returns
// the item id to Wait on.
func (c *Coordinator) Enqueue(kind string, payload json.RawMessage, fp string, onDone func(json.RawMessage)) string {
	id := itemID(kind, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[id]; ok {
		return id
	}
	c.items[id] = &item{
		Item:   Item{ID: id, Kind: kind, Payload: payload},
		fp:     fp,
		state:  ItemPending,
		done:   make(chan struct{}),
		onDone: onDone,
	}
	c.order = append(c.order, id)
	return id
}

// Wait blocks until the item completes (result), quarantines
// (ErrQuarantined) or ctx expires.
func (c *Coordinator) Wait(ctx context.Context, id string) (json.RawMessage, error) {
	c.mu.Lock()
	it, ok := c.items[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown item %q", id)
	}
	select {
	case <-it.done:
		c.mu.Lock()
		res, err := it.result, it.err
		c.mu.Unlock()
		return res, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Register adds (or refreshes) a worker on the hash ring.
func (c *Coordinator) Register(name string) error {
	if name == "" {
		return errors.New("cluster: empty worker name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(name)
	return nil
}

// touchLocked refreshes the worker's liveness, adding it to the ring on
// first contact.
func (c *Coordinator) touchLocked(name string) *workerState {
	w, ok := c.workers[name]
	if !ok {
		w = &workerState{name: name}
		c.workers[name] = w
		c.ring.add(name)
		c.log.Info("worker joined", "worker", name, "ring", len(c.workers))
	}
	w.lastSeen = c.conf.now()
	return w
}

// lookupLocked resolves a known worker, refreshing its liveness. Unlike
// touchLocked it never creates one: lease, heartbeat and complete calls
// from unknown workers fail with ErrUnknownWorker, so a worker that
// outlives the coordinator's memory of it (restart, eviction) is forced
// back through Register — and onto the hash ring — before it gets work.
func (c *Coordinator) lookupLocked(name string) (*workerState, error) {
	if name == "" {
		return nil, errors.New("cluster: empty worker name")
	}
	w, ok := c.workers[name]
	if !ok {
		c.unknownCalls++
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, name)
	}
	w.lastSeen = c.conf.now()
	return w, nil
}

// Lease grants up to max pending items to the worker, preferring items
// the hash ring places on it and stealing any other available item
// otherwise. It returns the granted items (possibly none).
func (c *Coordinator) Lease(workerName string, max int) ([]Item, error) {
	if max <= 0 || max > c.conf.MaxBatch {
		max = c.conf.MaxBatch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.conf.now()
	c.sweepLocked(now)
	if _, err := c.lookupLocked(workerName); err != nil {
		return nil, err
	}

	var owned, stealable []*item
	for _, id := range c.order {
		it := c.items[id]
		if it.state != ItemPending || now.Before(it.notBefore) {
			continue
		}
		if c.ring.owner(it.fp) == workerName {
			owned = append(owned, it)
		} else {
			stealable = append(stealable, it)
		}
	}
	var out []Item
	for _, it := range append(owned, stealable...) {
		if len(out) >= max {
			break
		}
		it.state = ItemLeased
		it.worker = workerName
		it.expiry = now.Add(c.conf.LeaseTTL)
		it.attempts++
		c.leasesGranted++
		out = append(out, it.Item)
	}
	if len(out) > 0 {
		c.log.Info("leased", "worker", workerName, "items", len(out))
	}
	return out, nil
}

// Heartbeat extends the worker's leases on ids and returns the subset it
// no longer owns (expired and re-granted elsewhere, or finished), which
// the worker should abandon.
func (c *Coordinator) Heartbeat(workerName string, ids []string) (lost []string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.conf.now()
	c.sweepLocked(now)
	if _, err := c.lookupLocked(workerName); err != nil {
		return nil, err
	}
	for _, id := range ids {
		it, ok := c.items[id]
		if !ok || it.state != ItemLeased || it.worker != workerName {
			lost = append(lost, id)
			continue
		}
		it.expiry = now.Add(c.conf.LeaseTTL)
	}
	return lost, nil
}

// Complete reports one item's execution result (or failure) from a
// worker. A report for a lease the worker no longer holds is dropped as
// stale — the first valid completion wins, which is harmless because
// every item is a deterministic simulation. A failure report costs one
// attempt and requeues the item with backoff (or quarantines it), and
// so does a successful report whose provenance stamp fails
// Config.VerifyCompletion.
func (c *Coordinator) Complete(workerName, id string, result, stamp json.RawMessage, errMsg string) (accepted bool, err error) {
	c.mu.Lock()
	now := c.conf.now()
	c.sweepLocked(now)
	w, lerr := c.lookupLocked(workerName)
	if lerr != nil {
		c.mu.Unlock()
		return false, lerr
	}
	it, ok := c.items[id]
	if !ok || it.state != ItemLeased || it.worker != workerName {
		c.staleReports++
		c.mu.Unlock()
		return false, nil
	}
	if errMsg != "" {
		it.lastErr = errMsg
		w.requeued++
		c.requeueLocked(it, now)
		c.log.Warn("attempt failed", "item", id, "worker", workerName, "attempts", it.attempts, "err", errMsg)
		c.mu.Unlock()
		return true, nil
	}
	if c.conf.VerifyCompletion != nil {
		if verr := c.conf.VerifyCompletion(it.Kind, it.Payload, result, stamp); verr != nil {
			c.stampRejected++
			it.lastErr = "provenance stamp rejected: " + verr.Error()
			w.requeued++
			c.requeueLocked(it, now)
			c.log.Warn("completion stamp rejected", "item", id, "worker", workerName,
				"attempts", it.attempts, "err", verr.Error())
			c.mu.Unlock()
			return false, nil
		}
	}
	it.state = ItemDone
	it.result = result
	it.worker = ""
	c.completed++
	w.completed++
	onDone := it.onDone
	close(it.done)
	c.mu.Unlock()
	c.log.Info("item done", "item", id, "worker", workerName)
	if onDone != nil {
		onDone(result)
	}
	if c.conf.Publish != nil {
		c.conf.Publish(it.Kind, it.Payload, result)
	}
	return true, nil
}

// requeueLocked returns a leased item to the pending queue with backoff,
// or quarantines it when the retry budget is spent.
func (c *Coordinator) requeueLocked(it *item, now time.Time) {
	it.worker = ""
	if it.attempts >= c.conf.RetryBudget {
		it.state = ItemQuarantined
		it.err = fmt.Errorf("%w: item %s after %d attempts (last error: %s)",
			ErrQuarantined, it.ID, it.attempts, orStr(it.lastErr, "lease expired"))
		c.quarantined++
		close(it.done)
		c.log.Error("item quarantined", "item", it.ID, "attempts", it.attempts, "last_err", it.lastErr)
		return
	}
	// Clamp the exponent before shifting: with a large RetryBudget the
	// shift can exceed 63 bits and wrap to a small positive duration that
	// the <= 0 guard below never catches.
	backoff := c.conf.BackoffMax
	if shift := it.attempts - 1; shift < 63 && c.conf.BackoffBase<<shift>>shift == c.conf.BackoffBase {
		backoff = c.conf.BackoffBase << shift
	}
	if backoff > c.conf.BackoffMax || backoff <= 0 {
		backoff = c.conf.BackoffMax
	}
	// Subtract-only jitter: the wait stays within the clamped exponential
	// window (tests and capacity planning can still reason about the
	// ceiling) while a batch of items requeued by one dead worker fans
	// back out instead of stampeding the next lease call together.
	if frac := c.conf.BackoffJitter; frac > 0 {
		backoff -= time.Duration(float64(backoff) * frac *
			jitter01(it.ID, strconv.Itoa(it.attempts), strconv.FormatInt(c.conf.Seed, 10)))
	}
	it.state = ItemPending
	it.notBefore = now.Add(backoff)
	c.requeued++
}

func orStr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// sweepLocked requeues expired leases and drops silent workers from the
// ring. Called under mu from every API entry point and the janitor.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, id := range c.order {
		it := c.items[id]
		if it.state == ItemLeased && now.After(it.expiry) {
			c.leaseExpired++
			if w := c.workers[it.worker]; w != nil {
				w.expired++
			}
			c.log.Warn("lease expired", "item", id, "worker", it.worker, "attempts", it.attempts)
			it.lastErr = orStr(it.lastErr, fmt.Sprintf("lease expired on worker %s", it.worker))
			c.requeueLocked(it, now)
		}
	}
	for name, w := range c.workers {
		if now.Sub(w.lastSeen) > c.conf.WorkerTTL {
			delete(c.workers, name)
			c.ring.remove(name)
			c.evicted++
			c.log.Warn("worker evicted after missed heartbeats", "worker", name)
		}
	}
}

// Janitor runs the expiry sweep every interval until stop is closed, so
// leases are reclaimed even while no worker is calling in.
func (c *Coordinator) Janitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = c.conf.LeaseTTL / 2
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			c.sweepLocked(c.conf.now())
			c.mu.Unlock()
		case <-stop:
			return
		}
	}
}

// WorkerStats is one worker's view in a Stats snapshot.
type WorkerStats struct {
	Name      string `json:"name"`
	Leased    int    `json:"leased"` // items currently held
	Completed uint64 `json:"completed"`
	Requeued  uint64 `json:"requeued"` // lost to failure reports
	Expired   uint64 `json:"expired"`  // lost to lease expiry
}

// Stats is a point-in-time snapshot of the cluster.
type Stats struct {
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Done        int `json:"done"`
	Quarantined int `json:"quarantined"`

	LeasesGranted uint64 `json:"leases_granted"`
	LeaseExpired  uint64 `json:"lease_expired"`
	Requeued      uint64 `json:"requeued"`
	Completed     uint64 `json:"completed"`
	QuarantinedN  uint64 `json:"quarantined_total"`
	StaleReports  uint64 `json:"stale_reports"`
	// StampRejected counts successful completions refused because their
	// provenance stamp failed verification.
	StampRejected uint64 `json:"stamp_rejected"`
	// WorkersEvicted counts workers dropped from the ring after missing
	// enough heartbeats; UnknownWorkerCalls counts protocol calls
	// rejected with ErrUnknownWorker (each one is a worker being pushed
	// back through registration).
	WorkersEvicted     uint64 `json:"workers_evicted"`
	UnknownWorkerCalls uint64 `json:"unknown_worker_calls"`

	Workers []WorkerStats `json:"workers"`
}

// Stats snapshots the coordinator (sweeping expired leases first, so the
// numbers reflect liveness, not stale grants).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.conf.now())
	s := Stats{
		LeasesGranted:      c.leasesGranted,
		LeaseExpired:       c.leaseExpired,
		Requeued:           c.requeued,
		Completed:          c.completed,
		QuarantinedN:       c.quarantined,
		StaleReports:       c.staleReports,
		StampRejected:      c.stampRejected,
		WorkersEvicted:     c.evicted,
		UnknownWorkerCalls: c.unknownCalls,
	}
	held := make(map[string]int)
	for _, id := range c.order {
		switch it := c.items[id]; it.state {
		case ItemPending:
			s.Pending++
		case ItemLeased:
			s.Leased++
			held[it.worker]++
		case ItemDone:
			s.Done++
		case ItemQuarantined:
			s.Quarantined++
		}
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := c.workers[name]
		s.Workers = append(s.Workers, WorkerStats{
			Name:      name,
			Leased:    held[name],
			Completed: w.completed,
			Requeued:  w.requeued,
			Expired:   w.expired,
		})
	}
	return s
}
