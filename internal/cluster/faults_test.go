package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// TestStrictRegistrationRejectsUnknownWorker: lease, heartbeat and
// complete from a worker the coordinator never met fail with
// ErrUnknownWorker (409 over HTTP) instead of silently auto-registering
// it off the ring.
func TestStrictRegistrationRejectsUnknownWorker(t *testing.T) {
	co := NewCoordinator(Config{})
	co.Enqueue(KindSim, json.RawMessage(`{}`), "aa", nil)

	if _, err := co.Lease("ghost", 1); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("Lease from unregistered worker = %v, want ErrUnknownWorker", err)
	}
	if _, err := co.Heartbeat("ghost", []string{"x"}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("Heartbeat from unregistered worker = %v, want ErrUnknownWorker", err)
	}
	if _, err := co.Complete("ghost", "x", nil, nil, ""); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("Complete from unregistered worker = %v, want ErrUnknownWorker", err)
	}
	if s := co.Stats(); s.UnknownWorkerCalls != 3 {
		t.Errorf("UnknownWorkerCalls = %d, want 3", s.UnknownWorkerCalls)
	}

	ts := mountCoordinator(t, co)
	resp, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json",
		strings.NewReader(`{"worker":"ghost","max":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("HTTP status for unknown worker = %d, want 409", resp.StatusCode)
	}

	// After registering, the same worker leases normally.
	if err := co.Register("ghost"); err != nil {
		t.Fatal(err)
	}
	if got, err := co.Lease("ghost", 1); err != nil || len(got) != 1 {
		t.Fatalf("post-registration lease = (%v, %v), want the item", got, err)
	}
}

// TestWorkerPostRetriesTransient: the worker's post absorbs transient
// 5xx responses with backoff and gives up immediately on a permanent
// 4xx.
func TestWorkerPostRetriesTransient(t *testing.T) {
	co := NewCoordinator(Config{})
	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", http.StripPrefix("/v1/cluster", co.Handler()))
	var calls, failing atomic.Int64
	failing.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Add(-1) >= 0 {
			http.Error(w, "injected overload", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	w := &Worker{Name: "w1", Coordinator: ts.URL,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}
	var resp registerResponse
	if err := w.post(context.Background(), "/register", registerRequest{Worker: "w1"}, &resp); err != nil {
		t.Fatalf("post did not survive two 503s: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 2 failures + 1 success", calls.Load())
	}

	// A malformed request draws a 400; post must not burn retries on it.
	failing.Store(0)
	before := calls.Load()
	err := w.post(context.Background(), "/lease", json.RawMessage(`"not an object"`), nil)
	var se *statusError
	if !errors.As(err, &se) || se.status != http.StatusBadRequest {
		t.Fatalf("malformed request error = %v, want a 400 statusError", err)
	}
	if calls.Load() != before+1 {
		t.Fatalf("permanent 400 was retried: %d extra calls", calls.Load()-before)
	}
}

// TestWorkerSurvivesCoordinatorRestart: the coordinator is replaced by a
// fresh instance with no memory of the worker (membership, leases and
// queue all gone). The worker's next call draws a 409, re-registers
// transparently, and drains the new coordinator's queue — no restart of
// the worker fleet needed.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	var current atomic.Pointer[Coordinator]
	current.Store(NewCoordinator(Config{LeaseTTL: 2 * time.Second}))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.StripPrefix("/v1/cluster", current.Load().Handler()).ServeHTTP(w, r)
	}))
	defer ts.Close()

	w := newTestWorker("survivor", ts.URL, 2)
	w.RetryBase = 5 * time.Millisecond
	w.RetryMax = 50 * time.Millisecond
	stop := startWorker(t, w)
	defer stop()

	waitRegistered := func(co *Coordinator) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			for _, ws := range co.Stats().Workers {
				if ws.Name == "survivor" {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("worker never registered")
	}
	waitRegistered(current.Load())

	// Restart: a brand-new coordinator takes over the same endpoint.
	co2 := NewCoordinator(Config{LeaseTTL: 2 * time.Second})
	current.Store(co2)

	cfg := config.Default()
	cfg.Cores = 2
	job := engine.Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 3},
		Scheme: core.Proteus,
		Config: cfg,
	}
	payload, err := json.Marshal(NewSimWork(job))
	if err != nil {
		t.Fatal(err)
	}
	id := co2.Enqueue(KindSim, payload, job.Fingerprint(), nil)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := co2.Wait(ctx, id)
	if err != nil {
		t.Fatalf("item never completed after coordinator restart: %v", err)
	}
	var out SimOutcome
	if err := json.Unmarshal(res, &out); err != nil || out.Report == nil {
		t.Fatalf("result after restart = %s (%v), want a sim outcome", res, err)
	}
	s := co2.Stats()
	if s.Completed != 1 {
		t.Errorf("new coordinator completed %d items, want 1", s.Completed)
	}
	if s.UnknownWorkerCalls == 0 {
		t.Errorf("restart never rejected the stale worker; re-registration path untested")
	}
}

// TestSilentWorkerIsEvicted: a worker that stops heartbeating is dropped
// from the ring after EvictAfterMissed heartbeat periods and must
// re-register before it can lease again.
func TestSilentWorkerIsEvicted(t *testing.T) {
	now := time.Unix(4000, 0)
	clock := &now
	co := NewCoordinator(Config{
		LeaseTTL:         9 * time.Second,
		EvictAfterMissed: 3, // 3 × (9s/3) = 9s of silence
		now:              func() time.Time { return *clock },
	})
	if err := co.Register("w1"); err != nil {
		t.Fatal(err)
	}

	now = now.Add(9*time.Second + time.Millisecond)
	s := co.Stats()
	if s.WorkersEvicted != 1 || len(s.Workers) != 0 {
		t.Fatalf("stats after silence = %+v, want w1 evicted", s)
	}
	if _, err := co.Lease("w1", 1); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("evicted worker leased without re-registering: %v", err)
	}
	if err := co.Register("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Lease("w1", 1); err != nil {
		t.Fatalf("lease after re-registration: %v", err)
	}
}

// TestRequeueBackoffJitterDeterministic: the jitter is a pure function
// of (item, attempt, seed) — identical across coordinators with the
// same seed, bounded below by 1−jitter, and removable.
func TestRequeueBackoffJitterDeterministic(t *testing.T) {
	backoffAfterOneFailure := func(seed int64, jitter float64) time.Duration {
		now := time.Unix(5000, 0)
		co := NewCoordinator(Config{
			LeaseTTL: time.Hour, WorkerTTL: 24 * time.Hour,
			RetryBudget: 5, BackoffBase: time.Second, BackoffMax: time.Minute,
			BackoffJitter: jitter, Seed: seed,
			now: func() time.Time { return now },
		})
		if err := co.Register("w1"); err != nil {
			t.Fatal(err)
		}
		id := co.Enqueue(KindSim, json.RawMessage(`{}`), "aa", nil)
		if got, err := co.Lease("w1", 1); err != nil || len(got) != 1 {
			t.Fatalf("lease = (%v, %v)", got, err)
		}
		if _, err := co.Complete("w1", id, nil, nil, "boom"); err != nil {
			t.Fatal(err)
		}
		co.mu.Lock()
		defer co.mu.Unlock()
		return co.items[id].notBefore.Sub(now)
	}

	a := backoffAfterOneFailure(1, 0)
	if b := backoffAfterOneFailure(1, 0); a != b {
		t.Fatalf("same seed produced different backoffs: %v vs %v", a, b)
	}
	if a < 800*time.Millisecond || a > time.Second {
		t.Fatalf("jittered backoff %v outside [0.8s, 1s] (base 1s, jitter 0.2)", a)
	}
	if off := backoffAfterOneFailure(1, -1); off != time.Second {
		t.Fatalf("disabled jitter still perturbed the backoff: %v", off)
	}
}
