package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Wire types of the coordinator's work-pull protocol. All endpoints are
// JSON over POST (stats is GET); workers identify themselves by name in
// every request — there is no session state beyond the leases themselves,
// so a worker reconnecting after a network partition just keeps calling.

type registerRequest struct {
	Worker string `json:"worker"`
}

type registerResponse struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the suggested heartbeat period (a third of the TTL).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type leaseResponse struct {
	Items []Item `json:"items"`
	// PollMS is the suggested wait before the next lease call when Items
	// is empty.
	PollMS int64 `json:"poll_ms"`
}

type heartbeatRequest struct {
	Worker string   `json:"worker"`
	IDs    []string `json:"ids"`
}

type heartbeatResponse struct {
	// Lost lists leases the worker no longer holds; it should abandon
	// that work (the item has been requeued or finished elsewhere).
	Lost []string `json:"lost,omitempty"`
}

type completeRequest struct {
	Worker string          `json:"worker"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	// Stamp is the worker's provenance attestation (a ledger.Stamp)
	// over the result; see stamp.go.
	Stamp json.RawMessage `json:"stamp,omitempty"`
	Error string          `json:"error,omitempty"`
}

type completeResponse struct {
	// Accepted is false for stale reports (the lease had expired and the
	// item was re-granted or finished elsewhere).
	Accepted bool `json:"accepted"`
}

// Handler returns the coordinator's HTTP handler. The serving layer
// mounts it under /v1/cluster/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Register(req.Worker); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		ttl := c.LeaseTTL()
		httpJSON(w, http.StatusOK, registerResponse{
			LeaseTTLMS:  ttl.Milliseconds(),
			HeartbeatMS: (ttl / 3).Milliseconds(),
		})
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decode(w, r, &req) {
			return
		}
		items, err := c.Lease(req.Worker, req.Max)
		if err != nil {
			httpErr(w, statusFor(err), err)
			return
		}
		httpJSON(w, http.StatusOK, leaseResponse{Items: items, PollMS: (250 * time.Millisecond).Milliseconds()})
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		lost, err := c.Heartbeat(req.Worker, req.IDs)
		if err != nil {
			httpErr(w, statusFor(err), err)
			return
		}
		httpJSON(w, http.StatusOK, heartbeatResponse{Lost: lost})
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decode(w, r, &req) {
			return
		}
		accepted, err := c.Complete(req.Worker, req.ID, req.Result, req.Stamp, req.Error)
		if err != nil {
			httpErr(w, statusFor(err), err)
			return
		}
		httpJSON(w, http.StatusOK, completeResponse{Accepted: accepted})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		httpJSON(w, http.StatusOK, c.Stats())
	})
	return mux
}

// statusFor maps coordinator errors to HTTP codes. ErrUnknownWorker is
// 409 Conflict — a protocol-state mismatch the worker repairs by
// re-registering — so clients can tell it apart from a malformed
// request's 400, which retrying will never fix.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownWorker) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(v); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding request: %w", err))
		return false
	}
	return true
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func httpErr(w http.ResponseWriter, code int, err error) {
	httpJSON(w, code, map[string]string{"error": err.Error()})
}
