package cluster

import "hash/fnv"

// jitter01 maps its parts to a pseudo-uniform fraction in [0, 1). It is
// a hash, not a random stream, on purpose: concurrent callers cannot
// perturb each other's draws, so the jitter applied to (item, attempt)
// or (worker, path, attempt) is identical across runs no matter how
// goroutines interleave — which keeps chaos soaks reproducible while
// still de-synchronizing retries within one run.
func jitter01(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	// Keep the top 53 bits: the widest integer a float64 holds exactly.
	return float64(h.Sum64()>>11) / float64(1<<53)
}
