package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker names. Each worker owns
// vnodes points on a 64-bit circle; an item's fingerprint is owned by the
// first point clockwise from its hash. Adding or removing one worker
// moves only the keys adjacent to its points — so a worker crash
// redistributes its share without reshuffling everyone else's store
// locality.
//
// Ownership is a placement preference, not a partition: the coordinator
// lets idle workers steal items they do not own, so correctness never
// depends on ring membership being current.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

func newRing(vnodes int) *ring {
	return &ring{vnodes: vnodes}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// add inserts the worker's vnodes. Adding a present worker is a no-op.
func (r *ring) add(worker string) {
	for _, p := range r.points {
		if p.worker == worker {
			return
		}
	}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", worker, i)), worker})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes the worker's vnodes.
func (r *ring) remove(worker string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the worker owning the key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}
