package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/provenance"
)

// Completion stamps: every successful report a worker sends carries a
// ledger.Stamp over the provenance leaf its result commits to. The
// worker cannot produce an inclusion proof — only the coordinator's
// ledger seals batches — but it can commit to exactly what it computed:
// the coordinator recomputes the same leaf from the payload it handed
// out and the result bytes it got back, and rejects the completion when
// the commitments disagree (Config.VerifyCompletion, wired to
// VerifyCompletion by the serving binary when the ledger is on). A
// rejected completion costs the item one attempt, exactly like a
// failure report: a worker that keeps mis-stamping exhausts the retry
// budget and the item quarantines instead of poisoning the store.

// completionLeaf derives the provenance leaf one completion commits to.
// For sim items it is byte-identical to the leaf the coordinator's
// RecordingStore seals when it publishes the result — key, entry
// digest, config fingerprint, scheme, workload — so the stamp chains
// the worker's computation to the sealed ledger entry. Campaign tuples
// have no store entry; their leaf commits to the raw report bytes.
func completionLeaf(kind string, payload, result json.RawMessage) (ledger.Leaf, error) {
	switch kind {
	case KindSim:
		var w SimWork
		if err := json.Unmarshal(payload, &w); err != nil {
			return ledger.Leaf{}, fmt.Errorf("cluster: decoding sim work: %w", err)
		}
		j, err := w.Job()
		if err != nil {
			return ledger.Leaf{}, err
		}
		var out SimOutcome
		if err := json.Unmarshal(result, &out); err != nil {
			return ledger.Leaf{}, fmt.Errorf("cluster: decoding sim outcome: %w", err)
		}
		return ledger.ResultLeaf(j.Fingerprint(), j,
			&engine.Result{Report: out.Report, EmittedLogFlushes: out.EmittedLogFlushes})
	default:
		h := sha256.Sum256(result)
		return ledger.Leaf{
			Kind:     ledger.LeafCompletion,
			Key:      itemID(kind, payload),
			Digest:   hex.EncodeToString(h[:]),
			Revision: provenance.Revision(),
		}, nil
	}
}

// StampCompletion builds the wire-form stamp a worker attaches to one
// successful completion report.
func StampCompletion(kind string, payload, result json.RawMessage) (json.RawMessage, error) {
	leaf, err := completionLeaf(kind, payload, result)
	if err != nil {
		return nil, err
	}
	h := leaf.Hash()
	return json.Marshal(ledger.Stamp{Leaf: leaf, LeafHash: hex.EncodeToString(h[:])})
}

// VerifyCompletion is the coordinator-side check: the stamp must be
// internally consistent and its leaf must match the one the
// coordinator derives from the payload it issued and the result bytes
// it received. The revision is the worker's attestation about its own
// binary — it is required to be present but not required to equal the
// coordinator's (mixed-build fleets are legitimate; the ledger records
// who computed what, it does not force lockstep deploys).
func VerifyCompletion(kind string, payload, result, stamp json.RawMessage) error {
	if len(stamp) == 0 {
		return errors.New("cluster: completion carries no provenance stamp")
	}
	var st ledger.Stamp
	if err := json.Unmarshal(stamp, &st); err != nil {
		return fmt.Errorf("cluster: decoding stamp: %w", err)
	}
	if err := st.Verify(); err != nil {
		return err
	}
	want, err := completionLeaf(kind, payload, result)
	if err != nil {
		return err
	}
	got := st.Leaf
	if got.Kind != want.Kind || got.Key != want.Key || got.Digest != want.Digest ||
		got.ConfigFP != want.ConfigFP || got.Scheme != want.Scheme || got.Workload != want.Workload {
		return fmt.Errorf("cluster: stamp leaf (key %s, digest %.12s..) does not match the reported result (key %s, digest %.12s..)",
			got.Key, got.Digest, want.Key, want.Digest)
	}
	if got.Revision == "" {
		return errors.New("cluster: stamp carries no code revision")
	}
	return nil
}
