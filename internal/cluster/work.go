package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Work item kinds. The kind selects the executor on the worker; payloads
// are JSON so the protocol carries no process-local state (engines,
// stores, channels stay on their own side).
const (
	// KindSim is one engine job: a (workload, scheme, config) tuple.
	KindSim = "sim"
	// KindCampaignTuple is one (bench, scheme) crash-campaign sweep — the
	// unit the coordinator scatters a campaign into.
	KindCampaignTuple = "campaign-tuple"
)

// SimWork is the wire form of one engine.Job. Kind and scheme travel as
// their canonical names (the same parsers every CLI flag uses), the
// config and params as their full structs — so the worker rebuilds a job
// with the identical fingerprint, hitting the same result-store shard the
// ring placed it by.
type SimWork struct {
	Bench  string          `json:"bench"`
	Scheme string          `json:"scheme"`
	Params workload.Params `json:"params"`
	Config config.Config   `json:"config"`
	Log    logging.Options `json:"log"`
}

// SimOutcome is the result payload of a KindSim item.
type SimOutcome struct {
	Report            *stats.Report `json:"report"`
	EmittedLogFlushes uint64        `json:"emitted_log_flushes"`
}

// NewSimWork converts an engine job to its wire form.
func NewSimWork(j engine.Job) SimWork {
	return SimWork{
		Bench:  j.Kind.Abbrev(),
		Scheme: j.Scheme.String(),
		Params: j.Params,
		Config: j.Config,
		Log:    j.Log,
	}
}

// Job rebuilds the engine job the wire form names.
func (w SimWork) Job() (engine.Job, error) {
	kind, err := workload.KindByName(w.Bench)
	if err != nil {
		return engine.Job{}, err
	}
	scheme, err := core.SchemeByName(w.Scheme)
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{Kind: kind, Params: w.Params, Scheme: scheme, Config: w.Config, Log: w.Log}, nil
}

// TupleWork is the wire form of one crash-campaign (bench, scheme) sweep:
// the campaign parameters narrowed to a single tuple. Faults travel as
// names; the artifact directory deliberately does not travel — reproducer
// dumps are a local-debugging feature, and leaving it empty keeps the
// TupleReport bytes identical to a local (non-cluster) campaign run.
type TupleWork struct {
	Bench    string          `json:"bench"`
	Scheme   string          `json:"scheme"`
	Params   workload.Params `json:"params"`
	Sim      config.Config   `json:"sim"`
	Sweep    int             `json:"sweep"`
	Rand     int             `json:"rand"`
	Faults   []string        `json:"faults"`
	Seed     int64           `json:"seed"`
	Minimize int             `json:"minimize"`
}

// compile resolves the wire form to a single-tuple campaign config bound
// to the worker's engine.
func (w TupleWork) compile(eng *engine.Engine) (crashcampaign.Config, workload.Kind, core.Scheme, error) {
	kind, err := workload.KindByName(w.Bench)
	if err != nil {
		return crashcampaign.Config{}, 0, 0, err
	}
	scheme, err := core.SchemeByName(w.Scheme)
	if err != nil {
		return crashcampaign.Config{}, 0, 0, err
	}
	faults, err := crashcampaign.ParseFaults(joinNames(w.Faults))
	if err != nil {
		return crashcampaign.Config{}, 0, 0, err
	}
	c := crashcampaign.Config{
		Benches:  []workload.Kind{kind},
		Schemes:  []core.Scheme{scheme},
		Params:   w.Params,
		Sim:      w.Sim,
		Sweep:    w.Sweep,
		Rand:     w.Rand,
		Faults:   faults,
		Seed:     w.Seed,
		Minimize: crashcampaign.MinimizeMode(w.Minimize),
		Engine:   eng,
	}
	return c, kind, scheme, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// executeItem runs one leased item on the worker's engine and returns its
// canonical result encoding. An error here is an attempt failure: the
// coordinator requeues (and eventually quarantines) the item.
func executeItem(ctx context.Context, eng *engine.Engine, it Item) (json.RawMessage, error) {
	switch it.Kind {
	case KindSim:
		var w SimWork
		if err := json.Unmarshal(it.Payload, &w); err != nil {
			return nil, fmt.Errorf("cluster: decoding sim work: %w", err)
		}
		j, err := w.Job()
		if err != nil {
			return nil, err
		}
		res, err := eng.Run(ctx, j)
		if err != nil {
			return nil, err
		}
		return json.Marshal(SimOutcome{Report: res.Report, EmittedLogFlushes: res.EmittedLogFlushes})
	case KindCampaignTuple:
		var w TupleWork
		if err := json.Unmarshal(it.Payload, &w); err != nil {
			return nil, fmt.Errorf("cluster: decoding tuple work: %w", err)
		}
		c, kind, scheme, err := w.compile(eng)
		if err != nil {
			return nil, err
		}
		rep, err := crashcampaign.RunTuple(ctx, c, kind, scheme)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	default:
		return nil, fmt.Errorf("cluster: unknown item kind %q", it.Kind)
	}
}
