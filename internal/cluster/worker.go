package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/engine"
)

// Worker is the pull-based execution side of the cluster: it registers
// with a coordinator, leases batches of items, heartbeats while
// simulating, executes each item on its own engine (with its own result
// store, typically a directory shared with the coordinator), and reports
// results. It is fail-stop by design — a worker that dies mid-batch
// simply stops heartbeating and the coordinator requeues its leases.
type Worker struct {
	// Name identifies the worker on the hash ring; required and unique
	// per cluster.
	Name string
	// Coordinator is the job server's base URL (e.g. http://host:8080);
	// the /v1/cluster prefix is appended by the client.
	Coordinator string
	// Engine executes leased work; required.
	Engine *engine.Engine
	// Batch is how many items to lease per pull; <= 0 means 2.
	Batch int
	// Poll is how long to wait between empty lease calls; <= 0 means the
	// coordinator's hint (or 250ms).
	Poll time.Duration
	// Client is the HTTP client; nil means a 30s-timeout default.
	Client *http.Client
	// Logger receives structured worker logs; nil discards.
	Logger *slog.Logger

	// RetryAttempts bounds how many times one protocol call is tried
	// before its error surfaces; <= 0 means 6. RetryBase and RetryMax
	// shape the exponential backoff between tries (defaults 100ms and
	// 5s); the wait is jittered deterministically by (Name, path,
	// attempt).
	RetryAttempts int
	RetryBase     time.Duration
	RetryMax      time.Duration

	// Hooks expose fault-injection seams for tests and the chaos soak
	// runner; all-nil in production.
	Hooks WorkerHooks

	heartbeatEvery time.Duration
	pollSeq        int // idle-poll counter feeding the jitter hash
}

// WorkerHooks are optional observation points on the worker's run loop.
type WorkerHooks struct {
	// Leased runs after a non-empty lease, before execution — the seam
	// that simulates a worker dying while holding leases (cancel the
	// worker's context here and nothing completes, so the coordinator
	// must reclaim the batch by lease expiry).
	Leased func(items []Item)
}

func (w *Worker) log() *slog.Logger {
	if w.Logger == nil {
		return slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return w.Logger
}

func (w *Worker) client() *http.Client {
	if w.Client == nil {
		return &http.Client{Timeout: 30 * time.Second}
	}
	return w.Client
}

// statusError is a non-200 protocol response; the status code is what
// the retry classifier keys on.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// transient reports whether a protocol error is worth retrying:
// transport failures (connection refused, resets, timeouts — all
// net.Error or url.Error) and 5xx responses are transient; 4xx
// responses and encode/decode failures are permanent.
func transient(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// postOnce sends one protocol call and decodes the response into out. A
// 409 surfaces as ErrUnknownWorker (the coordinator forgot us); other
// non-200s surface as statusError for the retry classifier.
func (w *Worker) postOnce(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+"/v1/cluster"+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		if resp.StatusCode == http.StatusConflict {
			return fmt.Errorf("%w (%s: %s)", ErrUnknownWorker, path, bytes.TrimSpace(msg))
		}
		return &statusError{status: resp.StatusCode,
			msg: fmt.Sprintf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// post sends one protocol call, retrying transient failures (transport
// errors, 5xx) with jittered exponential backoff. When the coordinator
// answers 409 — it restarted, or evicted this worker after missed
// heartbeats — post re-registers and retries, so a coordinator bounce
// looks like one slow call instead of a dead worker. Permanent errors
// return immediately.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	attempts := w.RetryAttempts
	if attempts <= 0 {
		attempts = 6
	}
	base := w.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := w.RetryMax
	if max <= 0 {
		max = 5 * time.Second
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			backoff := max
			if shift := attempt - 1; shift < 63 && base<<shift>>shift == base {
				backoff = base << shift
			}
			if backoff > max || backoff <= 0 {
				backoff = max
			}
			backoff -= time.Duration(float64(backoff) * 0.5 *
				jitter01(w.Name, path, strconv.Itoa(attempt)))
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
		}
		err = w.postOnce(ctx, path, in, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if errors.Is(err, ErrUnknownWorker) && path != "/register" {
			w.log().Warn("coordinator does not know us; re-registering", "path", path)
			if rerr := w.register(ctx); rerr != nil {
				w.log().Warn("re-register failed", "err", rerr.Error())
			}
			continue
		}
		if !transient(err) {
			return err
		}
		w.log().Warn("transient protocol error, will retry",
			"path", path, "attempt", attempt+1, "err", err.Error())
	}
	return err
}

// register announces the worker and adopts the coordinator's pacing. It
// deliberately uses postOnce: post calls register on 409, and the
// caller (Run's registration loop, or post itself) already retries.
func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	if err := w.postOnce(ctx, "/register", registerRequest{Worker: w.Name}, &resp); err != nil {
		return err
	}
	if resp.HeartbeatMS > 0 {
		w.heartbeatEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
	} else {
		w.heartbeatEvery = time.Second
	}
	return nil
}

// Run is the worker's main loop: lease, execute, complete, repeat, until
// ctx is cancelled. Transient coordinator errors (it restarted, the
// network blipped) are retried with a fixed pause — the protocol is
// stateless enough that reconnecting is just carrying on.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" || w.Coordinator == "" || w.Engine == nil {
		return errors.New("cluster: Worker needs Name, Coordinator and Engine")
	}
	batch := w.Batch
	if batch <= 0 {
		batch = 2
	}
	for {
		if err := w.register(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.log().Warn("register failed, retrying", "err", err.Error())
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		}
		break
	}
	w.log().Info("registered", "coordinator", w.Coordinator, "heartbeat", w.heartbeatEvery.String())

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var lease leaseResponse
		if err := w.post(ctx, "/lease", leaseRequest{Worker: w.Name, Max: batch}, &lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.log().Warn("lease failed, retrying", "err", err.Error())
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		}
		if len(lease.Items) == 0 {
			poll := w.Poll
			if poll <= 0 {
				poll = time.Duration(lease.PollMS) * time.Millisecond
				if poll <= 0 {
					poll = 250 * time.Millisecond
				}
			}
			// Stretch each idle poll by up to 50% (hash-jittered, so
			// deterministic per worker) to keep a fleet that went idle
			// together from polling the coordinator in lockstep forever.
			poll += time.Duration(float64(poll) * 0.5 *
				jitter01(w.Name, "idle-poll", strconv.Itoa(w.pollSeq)))
			w.pollSeq++
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		if w.Hooks.Leased != nil {
			w.Hooks.Leased(lease.Items)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		w.runBatch(ctx, lease.Items)
	}
}

// runBatch executes one leased batch under a heartbeat.
func (w *Worker) runBatch(ctx context.Context, items []Item) {
	ids := make([]string, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, ids)
	}()
	defer func() {
		stopHB()
		<-hbDone
	}()

	for _, it := range items {
		if ctx.Err() != nil {
			return
		}
		result, err := executeItem(ctx, w.Engine, it)
		if ctx.Err() != nil {
			// Shutting down mid-item: do not report a spurious failure;
			// the lease will expire and the item will be re-run.
			return
		}
		req := completeRequest{Worker: w.Name, ID: it.ID, Result: result}
		if err != nil {
			req.Result = nil
			req.Error = err.Error()
		} else if stamp, serr := StampCompletion(it.Kind, it.Payload, result); serr == nil {
			// Every successful completion is stamped; a coordinator
			// running without verification simply ignores it.
			req.Stamp = stamp
		}
		var resp completeResponse
		if perr := w.post(ctx, "/complete", req, &resp); perr != nil {
			w.log().Warn("complete failed", "item", it.ID, "err", perr.Error())
			continue
		}
		w.log().Info("completed", "item", it.ID, "accepted", resp.Accepted, "failed", err != nil)
	}
}

// heartbeat extends the batch's leases every heartbeatEvery until ctx is
// cancelled.
func (w *Worker) heartbeat(ctx context.Context, ids []string) {
	period := w.heartbeatEvery
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp heartbeatResponse
			if err := w.post(ctx, "/heartbeat", heartbeatRequest{Worker: w.Name, IDs: ids}, &resp); err != nil {
				if ctx.Err() == nil {
					w.log().Warn("heartbeat failed", "err", err.Error())
				}
				continue
			}
			if len(resp.Lost) > 0 {
				w.log().Warn("leases lost", "items", resp.Lost)
			}
		}
	}
}

// sleepCtx sleeps d or until ctx is done; it reports whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
