// Package config holds the machine configuration of Table 1 of the paper
// and the memory-kind variants used in the sensitivity studies (§7).
//
// All latencies are expressed in CPU cycles at 3.4GHz unless noted. Memory
// device timings are expressed in memory-bus cycles at 800MHz (DDR3-1600)
// and converted with the clock ratio.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// MemKind selects the main-memory device model.
type MemKind int

const (
	// NVMFast is the paper's default NVM: 50ns read, 150ns write
	// (tRCD 29 read / 109 write in DDR cycles).
	NVMFast MemKind = iota
	// NVMSlow raises the write latency to 300ns (§7.1) keeping 50ns read.
	NVMSlow
	// DRAM uses the unmodified DDR3-1600 timing set (§7.2).
	DRAM
)

func (k MemKind) String() string {
	switch k {
	case NVMFast:
		return "nvm-fast"
	case NVMSlow:
		return "nvm-slow"
	case DRAM:
		return "dram"
	}
	return fmt.Sprintf("MemKind(%d)", int(k))
}

// ParseMemKind resolves a memory kind by name, case-insensitively
// ("nvm-fast"/"nvm", "nvm-slow"/"slow", "dram"). It is the shared parser
// for every CLI flag and HTTP job spec naming a memory kind.
func ParseMemKind(s string) (MemKind, error) {
	switch strings.ToLower(s) {
	case "nvm-fast", "nvm":
		return NVMFast, nil
	case "nvm-slow", "slow":
		return NVMSlow, nil
	case "dram":
		return DRAM, nil
	}
	return 0, fmt.Errorf("config: unknown memory kind %q (want nvm-fast, nvm-slow, dram)", s)
}

// Core holds the out-of-order core parameters (Table 1, Processor row).
type Core struct {
	Width     int // dispatch/retire width (5-wide issue/retire)
	ROB       int // reorder buffer entries
	FetchQ    int
	IssueQ    int
	LoadQ     int
	StoreQ    int
	StoreBuf  int // post-retirement store buffer entries
	AluPerMem int // modeled ALU units emitted per data-structure memory op
	// AluPerTxn models the fixed per-operation harness work outside the
	// data structure proper — reading the operation and key from the
	// input stream, call overhead, key hashing (§5.2's workload drivers).
	// It is identical across schemes and so only rescales the baseline.
	AluPerTxn int
}

// Cache holds one cache level's geometry and latency.
type Cache struct {
	SizeBytes int
	Ways      int
	Latency   int // total access latency in CPU cycles, load-to-use
}

// Sets returns the number of sets.
func (c Cache) Sets() int { return c.SizeBytes / (64 * c.Ways) }

// DDRTiming is the DDR3-1600 timing set of Table 1, in memory-bus cycles.
type DDRTiming struct {
	TCAS, TRCD, TRP, TRAS, TRC, TWR, TWTR, TRTP, TRRD, TFAW int
	// TRCDReadNVM/TRCDWriteNVM replace TRCD when the device is NVM.
	TRCDReadNVM  int
	TRCDWriteNVM int
}

// Mem holds the main-memory configuration.
type Mem struct {
	Kind       MemKind
	Banks      int
	RowBytes   int
	ClockRatio float64 // CPU cycles per memory-bus cycle (3.4GHz / 800MHz)
	Timing     DDRTiming
	// L3ToMC is the on-chip latency from the L3 to the memory controller
	// in CPU cycles (one way).
	L3ToMC int
	// ReadQ, WPQ and LPQ are the memory-controller queue capacities.
	ReadQ int
	WPQ   int
	LPQ   int
	// DrainHi and MaxWPQAge set the write-drain policy (§4.3's scheduling
	// side): below DrainHi occupancy the controller holds writes back so
	// they can coalesce, and any entry older than MaxWPQAge cycles is
	// drained regardless of occupancy (log-area writes, whose completion
	// is acceptance, age 8x longer so a transaction's worth batches into
	// one row activation).
	DrainHi   int
	MaxWPQAge int
}

// Proteus holds the sizes of the new hardware structures (Table 1 last
// row): 8 log registers, 16 LogQ entries, 64-entry 8-way LLT, 256-entry
// LPQ (the LPQ capacity lives in Mem.LPQ so the memory controller owns it).
type Proteus struct {
	LogRegs int
	LogQ    int
	LLTSize int
	LLTWays int
}

// ATOM holds the parameters of the ATOM comparison model: how many active
// log entries the MC-side hardware can track per transaction before
// truncation falls back to searching the log area (§4.3), and whether the
// posted-log and source-log optimizations are on (they always are in the
// paper's "best-performing version").
type ATOM struct {
	MCTrackEntries int
	PostedLog      bool
	SourceLog      bool
	// InFlight is how many log-creation requests can be outstanding at
	// the MC concurrently. ATOM still ties each store's retirement to its
	// log acknowledgment (unlike Proteus's LogQ decoupling), but requests
	// themselves pipeline.
	InFlight int
}

// Config is the full machine configuration.
type Config struct {
	Cores   int
	Core    Core
	L1D     Cache
	L2      Cache
	L3      Cache
	Mem     Mem
	Proteus Proteus
	ATOM    ATOM
}

// Default returns the Table 1 baseline configuration.
func Default() Config {
	return Config{
		Cores: 4,
		Core: Core{
			Width:     5,
			ROB:       224,
			FetchQ:    48,
			IssueQ:    64,
			LoadQ:     72,
			StoreQ:    56,
			StoreBuf:  56,
			AluPerMem: 2,
			AluPerTxn: 2000,
		},
		L1D: Cache{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:  Cache{SizeBytes: 256 << 10, Ways: 8, Latency: 12},
		L3:  Cache{SizeBytes: 8 << 20, Ways: 16, Latency: 42},
		Mem: Mem{
			Kind:       NVMFast,
			Banks:      16,
			RowBytes:   2048,
			ClockRatio: 4.25,
			Timing: DDRTiming{
				TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28, TRC: 39,
				TWR: 12, TWTR: 6, TRTP: 6, TRRD: 5, TFAW: 24,
				TRCDReadNVM:  29,
				TRCDWriteNVM: 109,
			},
			L3ToMC:    10,
			ReadQ:     32,
			WPQ:       128,
			LPQ:       256,
			DrainHi:   8,
			MaxWPQAge: 48,
		},
		Proteus: Proteus{LogRegs: 8, LogQ: 16, LLTSize: 64, LLTWays: 8},
		ATOM:    ATOM{MCTrackEntries: 32, PostedLog: true, SourceLog: true, InFlight: 4},
	}
}

// WithMemKind returns a copy of c configured for the given memory kind,
// adjusting the NVM write latency for NVMSlow (300ns write = 245 DDR
// cycles at 1.25ns/cycle, keeping the 50ns read).
func (c Config) WithMemKind(k MemKind) Config {
	c.Mem.Kind = k
	switch k {
	case NVMFast:
		c.Mem.Timing.TRCDReadNVM = 29
		c.Mem.Timing.TRCDWriteNVM = 109
	case NVMSlow:
		c.Mem.Timing.TRCDReadNVM = 29
		c.Mem.Timing.TRCDWriteNVM = 245
	case DRAM:
		// Unmodified DDR3-1600 timing; TRCD applies to both directions.
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("config: cores must be >= 1, got %d", c.Cores)
	}
	if c.Core.Width < 1 || c.Core.ROB < 1 {
		return fmt.Errorf("config: bad core width/ROB (%d/%d)", c.Core.Width, c.Core.ROB)
	}
	for _, cc := range []struct {
		name string
		c    Cache
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if cc.c.Ways < 1 || cc.c.SizeBytes < 64*cc.c.Ways || cc.c.Sets()&(cc.c.Sets()-1) != 0 {
			return fmt.Errorf("config: %s geometry invalid (%d bytes, %d ways)", cc.name, cc.c.SizeBytes, cc.c.Ways)
		}
	}
	if c.Mem.Banks < 1 || c.Mem.RowBytes < 64 {
		return fmt.Errorf("config: bad memory geometry")
	}
	if c.Mem.ReadQ < 1 || c.Mem.WPQ < 1 || c.Mem.LPQ < 1 {
		return fmt.Errorf("config: bad MC queue capacities (readq %d, wpq %d, lpq %d)",
			c.Mem.ReadQ, c.Mem.WPQ, c.Mem.LPQ)
	}
	if c.Mem.DrainHi < 0 || c.Mem.DrainHi > c.Mem.WPQ {
		return fmt.Errorf("config: DrainHi %d outside [0, WPQ=%d]", c.Mem.DrainHi, c.Mem.WPQ)
	}
	if c.Mem.MaxWPQAge < 1 {
		return fmt.Errorf("config: MaxWPQAge must be >= 1, got %d", c.Mem.MaxWPQAge)
	}
	if c.Proteus.LogRegs < 1 || c.Proteus.LogQ < 1 || c.Proteus.LLTWays < 1 ||
		c.Proteus.LLTSize%c.Proteus.LLTWays != 0 {
		return fmt.Errorf("config: bad Proteus structure sizes")
	}
	return nil
}

// Fingerprint returns a short stable digest covering every configuration
// field. Two configs share a fingerprint exactly when they are equal, so
// it serves as a memoization key for simulation results: the engine runs
// each (workload, scheme, fingerprint) tuple at most once per invocation,
// and the same key addresses the persistent result store shared by the
// CLIs and the job server — a silent collision would serve one config's
// results for another's, so TestFingerprintCoversEveryField asserts by
// reflection that mutating any field changes the digest. The digest
// hashes the Go-syntax rendering of the struct, so it is stable within a
// build but intentionally changes when fields are added.
func (c Config) Fingerprint() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", c)))
	return hex.EncodeToString(h[:8])
}
