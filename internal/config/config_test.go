package config

import (
	"reflect"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Cores != 4 || c.Core.Width != 5 || c.Core.ROB != 224 {
		t.Fatalf("processor row: %+v", c.Core)
	}
	if c.Core.LoadQ != 72 || c.Core.StoreQ != 56 {
		t.Fatalf("LSQ: %d/%d", c.Core.LoadQ, c.Core.StoreQ)
	}
	if c.L1D.SizeBytes != 32<<10 || c.L1D.Ways != 8 || c.L1D.Latency != 4 {
		t.Fatalf("L1D: %+v", c.L1D)
	}
	if c.L2.SizeBytes != 256<<10 || c.L2.Latency != 12 {
		t.Fatalf("L2: %+v", c.L2)
	}
	if c.L3.SizeBytes != 8<<20 || c.L3.Ways != 16 || c.L3.Latency != 42 {
		t.Fatalf("L3: %+v", c.L3)
	}
	tm := c.Mem.Timing
	if tm.TCAS != 11 || tm.TRCD != 11 || tm.TRP != 11 || tm.TRAS != 28 || tm.TRC != 39 ||
		tm.TWR != 12 || tm.TWTR != 6 || tm.TRTP != 6 || tm.TRRD != 5 || tm.TFAW != 24 {
		t.Fatalf("DDR timing: %+v", tm)
	}
	if tm.TRCDReadNVM != 29 || tm.TRCDWriteNVM != 109 {
		t.Fatalf("NVM tRCD: %d/%d", tm.TRCDReadNVM, tm.TRCDWriteNVM)
	}
	if c.Mem.Banks != 16 || c.Mem.RowBytes != 2048 {
		t.Fatalf("memory geometry: %+v", c.Mem)
	}
	p := c.Proteus
	if p.LogRegs != 8 || p.LogQ != 16 || p.LLTSize != 64 || p.LLTWays != 8 {
		t.Fatalf("Proteus structures: %+v", p)
	}
	if c.Mem.LPQ != 256 {
		t.Fatalf("LPQ: %d", c.Mem.LPQ)
	}
	if c.Mem.DrainHi != 8 || c.Mem.MaxWPQAge != 48 {
		t.Fatalf("WPQ drain policy: hi=%d age=%d", c.Mem.DrainHi, c.Mem.MaxWPQAge)
	}
}

func TestWithMemKind(t *testing.T) {
	slow := Default().WithMemKind(NVMSlow)
	if slow.Mem.Timing.TRCDWriteNVM <= 109 {
		t.Fatalf("slow NVM write tRCD %d", slow.Mem.Timing.TRCDWriteNVM)
	}
	if slow.Mem.Timing.TRCDReadNVM != 29 {
		t.Fatal("slow NVM changed read latency")
	}
	dram := Default().WithMemKind(DRAM)
	if dram.Mem.Kind != DRAM {
		t.Fatal("kind not set")
	}
	// Round trip back to fast.
	fast := slow.WithMemKind(NVMFast)
	if fast.Mem.Timing.TRCDWriteNVM != 109 {
		t.Fatal("fast restore failed")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Core.Width = 0 },
		func(c *Config) { c.L1D.Ways = 0 },
		func(c *Config) { c.L2.SizeBytes = 100 }, // non-power-of-two sets
		func(c *Config) { c.Mem.Banks = 0 },
		func(c *Config) { c.Proteus.LogQ = 0 },
		func(c *Config) { c.Proteus.LLTSize = 63 }, // not divisible by ways
		func(c *Config) { c.Mem.WPQ = 0 },
		func(c *Config) { c.Mem.DrainHi = -1 },
		func(c *Config) { c.Mem.DrainHi = c.Mem.WPQ + 1 },
		func(c *Config) { c.Mem.MaxWPQAge = 0 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a, b := Default(), Default()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configs have different fingerprints")
	}
	if got := len(a.Fingerprint()); got != 16 {
		t.Fatalf("fingerprint length %d, want 16 hex chars", got)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 8 },
		func(c *Config) { c.Proteus.LogQ = 32 },
		func(c *Config) { c.Mem.LPQ = 128 },
		func(c *Config) { c.Mem.MaxWPQAge = 64 },
		func(c *Config) { c.Mem.DrainHi = 16 },
		func(c *Config) { c.ATOM.InFlight = 8 },
		func(c *Config) { *c = c.WithMemKind(NVMSlow) },
	}
	seen := map[string]int{a.Fingerprint(): -1}
	for i, mutate := range mutations {
		c := Default()
		mutate(&c)
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %d collides with %d: %s", i, prev, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintCoversEveryField walks every leaf field of Config by
// reflection and asserts that mutating it changes the fingerprint. The
// fingerprint keys the persistent result store shared across processes,
// so a field the digest misses would silently serve one configuration's
// simulation results for another's.
func TestFingerprintCoversEveryField(t *testing.T) {
	base := Default()
	baseFP := base.Fingerprint()

	var leaves []string
	var walk func(v reflect.Value, path string)
	walk = func(v reflect.Value, path string) {
		if v.Kind() == reflect.Struct {
			for i := 0; i < v.NumField(); i++ {
				f := v.Type().Field(i)
				walk(v.Field(i), path+"."+f.Name)
			}
			return
		}
		leaves = append(leaves, path)
		if !v.CanSet() {
			t.Fatalf("%s: cannot set", path)
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(v.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			v.SetFloat(v.Float() + 0.5)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.String:
			v.SetString(v.String() + "x")
		default:
			t.Fatalf("%s: unhandled leaf kind %v — extend the mutator AND check Fingerprint covers it", path, v.Kind())
		}
	}

	rt := reflect.TypeOf(base)
	// Mutate one leaf at a time: re-walk from a fresh Default() and stop
	// the mutation at the target index.
	count := 0
	var countLeaves func(t reflect.Type) int
	countLeaves = func(t reflect.Type) int {
		if t.Kind() != reflect.Struct {
			return 1
		}
		n := 0
		for i := 0; i < t.NumField(); i++ {
			n += countLeaves(t.Field(i).Type)
		}
		return n
	}
	count = countLeaves(rt)
	if count == 0 {
		t.Fatal("no leaf fields found")
	}

	for target := 0; target < count; target++ {
		c := Default()
		idx := 0
		leaves = leaves[:0]
		var mutateNth func(v reflect.Value, path string)
		mutateNth = func(v reflect.Value, path string) {
			if v.Kind() == reflect.Struct {
				for i := 0; i < v.NumField(); i++ {
					mutateNth(v.Field(i), path+"."+v.Type().Field(i).Name)
				}
				return
			}
			if idx == target {
				walk(v, path)
			}
			idx++
		}
		mutateNth(reflect.ValueOf(&c).Elem(), "Config")
		if len(leaves) != 1 {
			t.Fatalf("target %d: mutated %d leaves, want 1", target, len(leaves))
		}
		if fp := c.Fingerprint(); fp == baseFP {
			t.Errorf("mutating %s did not change the fingerprint", leaves[0])
		}
	}
	if idxWant := count; idxWant < 30 {
		t.Fatalf("only %d leaf fields found — reflection walk looks broken", idxWant)
	}
}
