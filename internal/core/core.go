// Package core assembles the full simulated machine — out-of-order cores,
// private L1D/L2 caches, shared L3, memory controller with WPQ/LPQ, and
// the NVM/DRAM device — and runs per-scheme micro-op traces on it. It is
// the top of the reproduction: every experiment in the paper is a set of
// (workload, Scheme, memory kind) runs of a System.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/nvm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Scheme is one of the logging designs the paper evaluates (§6).
type Scheme int

const (
	// PMEM is the baseline: software undo logging built from Intel PMEM
	// instructions (clwb + sfence per Figure 2), with ADR (no pcommit).
	PMEM Scheme = iota
	// PMEMPcommit is PMEM plus a pcommit after every persist step: the
	// WPQ is not in the persistency domain and must drain to NVM.
	PMEMPcommit
	// PMEMNoLog removes the logging code entirely (the ideal case: no
	// failure safety, no logging overheads).
	PMEMNoLog
	// ATOM is the state-of-the-art hardware undo logging comparison with
	// its posted-log and source-log optimizations.
	ATOM
	// Proteus is the paper's software-supported hardware logging with log
	// write removal (the LPQ, §4.3).
	Proteus
	// ProteusNoLWR is Proteus without log write removal: log flushes
	// drain to NVM through the WPQ like regular writes.
	ProteusNoLWR
)

// Schemes lists all schemes in presentation order (Figure 6's bars).
var Schemes = []Scheme{PMEM, PMEMPcommit, ATOM, ProteusNoLWR, Proteus, PMEMNoLog}

func (s Scheme) String() string {
	switch s {
	case PMEM:
		return "PMEM"
	case PMEMPcommit:
		return "PMEM+pcommit"
	case PMEMNoLog:
		return "PMEM+nolog"
	case ATOM:
		return "ATOM"
	case Proteus:
		return "Proteus"
	case ProteusNoLWR:
		return "Proteus+NoLWR"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// SchemeByName resolves a scheme by its display name, case-insensitively
// ("proteus", "PMEM+pcommit", ...). It is the inverse of String and the
// shared parser for every CLI flag and HTTP job spec naming a scheme.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range Schemes {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q (want one of %v)", name, Schemes)
}

// Mode returns the core execution mode the scheme needs.
func (s Scheme) Mode() cpu.Mode {
	switch s {
	case ATOM:
		return cpu.ModeATOM
	case Proteus, ProteusNoLWR:
		return cpu.ModeProteus
	default:
		return cpu.ModePlain
	}
}

// LWR reports whether log write removal (the LPQ) is enabled.
func (s Scheme) LWR() bool { return s == Proteus }

// ADR reports whether the WPQ/LPQ are inside the persistency domain.
// Only the PMEM+pcommit baseline models the pre-ADR world.
func (s Scheme) ADR() bool { return s != PMEMPcommit }

// FailureSafe reports whether the scheme claims transaction atomicity
// across power failures. PMEM+nolog is the ideal case and is not safe.
func (s Scheme) FailureSafe() bool { return s != PMEMNoLog }

// System is one assembled machine executing a fixed set of traces.
type System struct {
	cfg    config.Config
	scheme Scheme

	store *nvm.Store
	dev   *nvm.Device
	mc    *memctrl.Controller
	l3    *cache.Level
	cores []*cpu.Core

	coreStats []stats.Core
	memStat   stats.Mem

	cycle       uint64
	drainCycles uint64
	finished    bool

	// Epoch-sampled tracing (nil = disabled; the only hot-path cost of
	// the disabled state is the nil check in Step).
	tracer    *trace.Tracer
	traceNext uint64
	sample    trace.Sample
}

// NewSystem builds a machine for the scheme. traces supplies one micro-op
// stream per core (missing entries run an idle core); initImage, when
// non-nil, pre-populates NVM with the workload's functional state after
// its initialization operations.
func NewSystem(cfg config.Config, scheme Scheme, traces []*isa.Trace, initImage *nvm.Store) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) > cfg.Cores {
		return nil, fmt.Errorf("core: %d traces for %d cores", len(traces), cfg.Cores)
	}
	store := nvm.NewStore()
	if initImage != nil {
		store = initImage.Snapshot()
	}
	s := &System{
		cfg:       cfg,
		scheme:    scheme,
		store:     store,
		coreStats: make([]stats.Core, cfg.Cores),
	}
	s.dev = nvm.NewDevice(cfg.Mem, &s.memStat)
	s.mc = memctrl.New(cfg.Mem, s.dev, store, &s.memStat)
	s.l3 = cache.NewLevel(cfg.L3)
	for i := 0; i < cfg.Cores; i++ {
		var ops []isa.Op
		if i < len(traces) && traces[i] != nil {
			ops = traces[i].Ops
		}
		hier := cache.NewHierarchy(cfg, s.l3, s.mc, &s.coreStats[i])
		s.cores = append(s.cores, cpu.New(i, cfg, scheme.Mode(), scheme.LWR(), hier, s.mc, ops, &s.coreStats[i]))
	}
	return s, nil
}

// Device exposes the memory device (endurance accounting).
func (s *System) Device() *nvm.Device { return s.dev }

// Cycle returns the current simulation cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Finished reports whether every core has drained its trace.
func (s *System) Finished() bool { return s.finished }

// SetTracer attaches an epoch-sampled tracer; call it before the run
// starts. A nil tracer (the default) disables sampling entirely.
func (s *System) SetTracer(t *trace.Tracer) {
	s.tracer = t
	if t != nil {
		s.traceNext = s.cycle + t.Epoch()
		s.sample.Cores = make([]trace.CoreSample, len(s.cores))
	}
}

// emitSample snapshots the machine into the reused sample buffer and
// forwards it to the tracer. Occupancies are instantaneous at the given
// cycle; counters are cumulative, so the final sample equals the report.
func (s *System) emitSample(cycle uint64, final bool) {
	sm := &s.sample
	sm.Cycle = cycle
	sm.Final = final
	for i, c := range s.cores {
		cs := &sm.Cores[i]
		st := &s.coreStats[i]
		cs.ROB, cs.LoadQ, cs.StoreQ, cs.StoreBuf = c.Occupancy()
		cs.LogQ = c.LogQDepth()
		cs.FreeLogRegs = c.FreeLogRegs()
		cs.ATOMInFlight = c.ATOMInFlight()
		cs.Retired = st.Retired
		cs.StallROB = st.StallCycles[stats.StallROB]
		cs.StallLoadQ = st.StallCycles[stats.StallLoadQ]
		cs.StallStoreQ = st.StallCycles[stats.StallStoreQ]
		cs.StallLogReg = st.StallCycles[stats.StallLogReg]
		cs.StallLogQ = st.StallCycles[stats.StallLogQ]
		cs.SfenceWait = st.SfenceWait
		cs.PcommitWait = st.PcommitWait
	}
	m := &s.memStat
	sm.Mem = trace.MemSample{
		WPQ:            s.mc.WPQLen(),
		LPQ:            s.mc.LPQLen(),
		ReadQ:          s.mc.ReadQLen(),
		BusyBanks:      s.dev.BusyBanks(cycle),
		Reads:          m.Reads,
		WritesData:     m.Writes[stats.WriteData],
		WritesLog:      m.Writes[stats.WriteLog],
		WritesTruncate: m.Writes[stats.WriteTruncate],
		LPQAccepted:    m.LPQAccepted,
		LPQDropped:     m.LPQDropped,
		LPQDrained:     m.LPQDrained,
	}
	s.tracer.Emit(sm)
}

// Step advances the machine by up to n cycles, stopping early when all
// cores finish. It returns the number of cycles actually simulated.
func (s *System) Step(n uint64) uint64 {
	var done uint64
	for ; done < n && !s.finished; done++ {
		s.cycle++
		s.mc.Tick(s.cycle)
		fin := true
		for _, c := range s.cores {
			c.Tick(s.cycle)
			fin = fin && c.Done()
		}
		s.finished = fin
		if s.tracer != nil && s.cycle >= s.traceNext {
			s.traceNext = s.cycle + s.tracer.Epoch()
			s.emitSample(s.cycle, false)
		}
	}
	return done
}

// Run simulates to completion (bounded by maxCycles; 0 means a generous
// default) and returns the report.
func (s *System) Run(maxCycles uint64) (*stats.Report, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cancellation: the context is checked between
// simulation quanta, so a cancelled or deadline-expired context stops a
// long run within ~100k simulated cycles.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) (*stats.Report, error) {
	if maxCycles == 0 {
		maxCycles = 20_000_000_000
	}
	for !s.finished && s.cycle < maxCycles {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run cancelled at cycle %d (scheme %v): %w", s.cycle, s.scheme, err)
		}
		s.Step(100_000)
	}
	if !s.finished {
		return nil, fmt.Errorf("core: simulation exceeded %d cycles (scheme %v)", maxCycles, s.scheme)
	}
	// Drain residual WPQ contents so NVM write counts are complete. The
	// drain runs on a detached clock: the performance clock (Cycle,
	// Report.Cycles) stays at the core completion time, so later Report or
	// CrashImage calls see undistorted cycle accounting.
	s.mc.ForceDrain(true)
	for s.drainCycles = 0; s.drainCycles < 1_000_000 && !s.mc.WPQEmpty(); {
		s.drainCycles++
		s.mc.Tick(s.cycle + s.drainCycles)
	}
	s.mc.ForceDrain(false)
	rep := s.Report()
	if s.tracer != nil {
		// The final sample is taken after the residual drain, at the
		// report's cycle count, so its cumulative totals match the
		// end-of-run report exactly.
		s.emitSample(rep.Cycles, true)
		if err := s.tracer.Err(); err != nil {
			return nil, fmt.Errorf("core: trace sink failed (scheme %v): %w", s.scheme, err)
		}
	}
	return rep, nil
}

// DrainCycles returns how long the post-completion residual WPQ drain
// took; these cycles are excluded from Cycle() and Report().Cycles.
func (s *System) DrainCycles() uint64 { return s.drainCycles }

// Report snapshots the statistics gathered so far.
func (s *System) Report() *stats.Report {
	r := &stats.Report{
		Label:    s.scheme.String(),
		CoreStat: append([]stats.Core(nil), s.coreStats...),
		MemStat:  s.memStat,
	}
	for _, c := range s.cores {
		if c.Done() && c.DoneCycle() > r.Cycles {
			r.Cycles = c.DoneCycle()
		}
	}
	if r.Cycles == 0 {
		r.Cycles = s.cycle
	}
	return r
}

// Commits returns each core's committed transactions in commit order.
func (s *System) Commits() [][]cpu.Commit {
	out := make([][]cpu.Commit, len(s.cores))
	for i, c := range s.cores {
		out[i] = append([]cpu.Commit(nil), c.Commits...)
	}
	return out
}

// CrashImage extracts the persistent state a power failure at the current
// cycle would leave behind, honoring the scheme's persistency domain.
func (s *System) CrashImage() *nvm.Store {
	return s.mc.CrashImage(s.scheme.ADR())
}

// ADR reports whether the scheme's platform keeps the MC queues in the
// persistency domain (what CrashImage assumes).
func (s *System) ADR() bool { return s.scheme.ADR() }

// CrashImageWith extracts the crash state under an explicit fault model,
// overriding the scheme's nominal persistency domain. The fault-injection
// campaign uses it to model ADR loss and torn line writes.
func (s *System) CrashImageWith(f memctrl.CrashFault) *nvm.Store {
	return s.mc.CrashImageWith(f)
}

// PendingLines lists the line addresses a crash now would offer to a
// CrashFault.Torn hook, in hook-index order.
func (s *System) PendingLines(adr bool) []uint64 {
	return s.mc.PendingLines(adr)
}

// QueueLens returns the current WPQ and LPQ occupancy (monitoring).
func (s *System) QueueLens() (wpq, lpq int) {
	return s.mc.WPQLen(), s.mc.LPQLen()
}
