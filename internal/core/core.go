// Package core assembles the full simulated machine — out-of-order cores,
// private L1D/L2 caches, shared L3, memory controller with WPQ/LPQ, and
// the NVM/DRAM device — and runs per-scheme micro-op traces on it. It is
// the top of the reproduction: every experiment in the paper is a set of
// (workload, Scheme, memory kind) runs of a System.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/nvm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Scheme is one of the logging designs the paper evaluates (§6).
type Scheme int

const (
	// PMEM is the baseline: software undo logging built from Intel PMEM
	// instructions (clwb + sfence per Figure 2), with ADR (no pcommit).
	PMEM Scheme = iota
	// PMEMPcommit is PMEM plus a pcommit after every persist step: the
	// WPQ is not in the persistency domain and must drain to NVM.
	PMEMPcommit
	// PMEMNoLog removes the logging code entirely (the ideal case: no
	// failure safety, no logging overheads).
	PMEMNoLog
	// ATOM is the state-of-the-art hardware undo logging comparison with
	// its posted-log and source-log optimizations.
	ATOM
	// Proteus is the paper's software-supported hardware logging with log
	// write removal (the LPQ, §4.3).
	Proteus
	// ProteusNoLWR is Proteus without log write removal: log flushes
	// drain to NVM through the WPQ like regular writes.
	ProteusNoLWR
)

// Schemes lists all schemes in presentation order (Figure 6's bars).
var Schemes = []Scheme{PMEM, PMEMPcommit, ATOM, ProteusNoLWR, Proteus, PMEMNoLog}

func (s Scheme) String() string {
	switch s {
	case PMEM:
		return "PMEM"
	case PMEMPcommit:
		return "PMEM+pcommit"
	case PMEMNoLog:
		return "PMEM+nolog"
	case ATOM:
		return "ATOM"
	case Proteus:
		return "Proteus"
	case ProteusNoLWR:
		return "Proteus+NoLWR"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// SchemeByName resolves a scheme by its display name, case-insensitively
// ("proteus", "PMEM+pcommit", ...). It is the inverse of String and the
// shared parser for every CLI flag and HTTP job spec naming a scheme.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range Schemes {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q (want one of %v)", name, Schemes)
}

// Mode returns the core execution mode the scheme needs.
func (s Scheme) Mode() cpu.Mode {
	switch s {
	case ATOM:
		return cpu.ModeATOM
	case Proteus, ProteusNoLWR:
		return cpu.ModeProteus
	default:
		return cpu.ModePlain
	}
}

// LWR reports whether log write removal (the LPQ) is enabled.
func (s Scheme) LWR() bool { return s == Proteus }

// ADR reports whether the WPQ/LPQ are inside the persistency domain.
// Only the PMEM+pcommit baseline models the pre-ADR world.
func (s Scheme) ADR() bool { return s != PMEMPcommit }

// FailureSafe reports whether the scheme claims transaction atomicity
// across power failures. PMEM+nolog is the ideal case and is not safe.
func (s Scheme) FailureSafe() bool { return s != PMEMNoLog }

// Stepper selects the Step implementation.
type Stepper int

const (
	// StepperFast is the event-driven fast-forward stepper (the default):
	// when no component can change state, it computes the next event cycle,
	// measures one inert cycle, and advances the remaining span in closed
	// form. It is cross-checked against StepperReference for byte-identical
	// output by the equivalence tests and fuzz target.
	StepperFast Stepper = iota
	// StepperReference is the naive cycle-at-a-time stepper, retained as
	// the correctness oracle and for bisection via -stepper=reference.
	StepperReference
)

func (st Stepper) String() string {
	switch st {
	case StepperFast:
		return "fast"
	case StepperReference:
		return "reference"
	}
	return fmt.Sprintf("Stepper(%d)", int(st))
}

// StepperByName resolves a stepper by name ("fast" or "reference"); the
// shared parser for CLI flags and job specs.
func StepperByName(name string) (Stepper, error) {
	switch strings.ToLower(name) {
	case "", "fast":
		return StepperFast, nil
	case "reference", "ref":
		return StepperReference, nil
	}
	return 0, fmt.Errorf("core: unknown stepper %q (want fast or reference)", name)
}

// System is one assembled machine executing a fixed set of traces.
type System struct {
	cfg    config.Config
	scheme Scheme

	store *nvm.Store
	dev   *nvm.Device
	mc    *memctrl.Controller
	l3    *cache.Level
	cores []*cpu.Core

	coreStats []stats.Core
	memStat   stats.Mem

	cycle       uint64
	drainCycles uint64
	finished    bool

	// Fast-forward state: the stepper choice, the progress signature of
	// the previous cycle, and reusable counter snapshots for the measured
	// inert cycle.
	stepper  Stepper
	lastSig  uint64
	statSnap []stats.Core
	memSnap  stats.Mem

	// Epoch-sampled tracing (nil = disabled; the only hot-path cost of
	// the disabled state is the nil check in Step).
	tracer    *trace.Tracer
	traceNext uint64
	sample    trace.Sample
}

// NewSystem builds a machine for the scheme. traces supplies one micro-op
// stream per core (missing entries run an idle core); initImage, when
// non-nil, pre-populates NVM with the workload's functional state after
// its initialization operations.
func NewSystem(cfg config.Config, scheme Scheme, traces []*isa.Trace, initImage *nvm.Store) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) > cfg.Cores {
		return nil, fmt.Errorf("core: %d traces for %d cores", len(traces), cfg.Cores)
	}
	store := nvm.NewStore()
	if initImage != nil {
		// Copy-on-write: the init image is typically shared by thousands of
		// simulations per campaign; forking replaces the dominant allocation
		// cost of building a System.
		store = initImage.Fork()
	}
	s := &System{
		cfg:       cfg,
		scheme:    scheme,
		store:     store,
		coreStats: make([]stats.Core, cfg.Cores),
		statSnap:  make([]stats.Core, cfg.Cores),
	}
	s.dev = nvm.NewDevice(cfg.Mem, &s.memStat)
	s.mc = memctrl.New(cfg.Mem, s.dev, store, &s.memStat)
	s.l3 = cache.NewLevel(cfg.L3)
	for i := 0; i < cfg.Cores; i++ {
		var ops []isa.Op
		if i < len(traces) && traces[i] != nil {
			ops = traces[i].Ops
		}
		hier := cache.NewHierarchy(cfg, s.l3, s.mc, &s.coreStats[i])
		s.cores = append(s.cores, cpu.New(i, cfg, scheme.Mode(), scheme.LWR(), hier, s.mc, ops, &s.coreStats[i]))
	}
	return s, nil
}

// Device exposes the memory device (endurance accounting).
func (s *System) Device() *nvm.Device { return s.dev }

// Store exposes the functional memory contents (benchmarks and tests).
func (s *System) Store() *nvm.Store { return s.store }

// SetStepper selects the Step implementation; call it before the run
// starts. The default is StepperFast.
func (s *System) SetStepper(st Stepper) { s.stepper = st }

// Cycle returns the current simulation cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Finished reports whether every core has drained its trace.
func (s *System) Finished() bool { return s.finished }

// SetTracer attaches an epoch-sampled tracer; call it before the run
// starts. A nil tracer (the default) disables sampling entirely.
func (s *System) SetTracer(t *trace.Tracer) {
	s.tracer = t
	if t != nil {
		s.traceNext = s.cycle + t.Epoch()
		s.sample.Cores = make([]trace.CoreSample, len(s.cores))
	}
}

// emitSample snapshots the machine into the reused sample buffer and
// forwards it to the tracer. Occupancies are instantaneous at the given
// cycle; counters are cumulative, so the final sample equals the report.
func (s *System) emitSample(cycle uint64, final bool) {
	sm := &s.sample
	sm.Cycle = cycle
	sm.Final = final
	for i, c := range s.cores {
		cs := &sm.Cores[i]
		st := &s.coreStats[i]
		cs.ROB, cs.LoadQ, cs.StoreQ, cs.StoreBuf = c.Occupancy()
		cs.LogQ = c.LogQDepth()
		cs.FreeLogRegs = c.FreeLogRegs()
		cs.ATOMInFlight = c.ATOMInFlight()
		cs.Retired = st.Retired
		cs.StallROB = st.StallCycles[stats.StallROB]
		cs.StallLoadQ = st.StallCycles[stats.StallLoadQ]
		cs.StallStoreQ = st.StallCycles[stats.StallStoreQ]
		cs.StallLogReg = st.StallCycles[stats.StallLogReg]
		cs.StallLogQ = st.StallCycles[stats.StallLogQ]
		cs.SfenceWait = st.SfenceWait
		cs.PcommitWait = st.PcommitWait
	}
	m := &s.memStat
	sm.Mem = trace.MemSample{
		WPQ:            s.mc.WPQLen(),
		LPQ:            s.mc.LPQLen(),
		ReadQ:          s.mc.ReadQLen(),
		BusyBanks:      s.dev.BusyBanks(cycle),
		Reads:          m.Reads,
		WritesData:     m.Writes[stats.WriteData],
		WritesLog:      m.Writes[stats.WriteLog],
		WritesTruncate: m.Writes[stats.WriteTruncate],
		LPQAccepted:    m.LPQAccepted,
		LPQDropped:     m.LPQDropped,
		LPQDrained:     m.LPQDrained,
	}
	s.tracer.Emit(sm)
}

// Step advances the machine by up to n cycles, stopping early when all
// cores finish. It returns the number of cycles actually advanced,
// including fast-forwarded spans.
func (s *System) Step(n uint64) uint64 {
	if s.stepper == StepperReference {
		return s.stepReference(n)
	}
	return s.stepFast(n)
}

// tick1 simulates exactly one cycle: memory controller, then cores, then
// the epoch sample. Both steppers use it, so modeled behavior cannot
// diverge at the single-cycle level.
func (s *System) tick1(cycle uint64) {
	s.mc.Tick(cycle)
	fin := true
	for _, c := range s.cores {
		c.Tick(cycle)
		fin = fin && c.Done()
	}
	s.finished = fin
	if s.tracer != nil && cycle >= s.traceNext {
		s.traceNext = cycle + s.tracer.Epoch()
		s.emitSample(cycle, false)
	}
}

// stepReference is the retained naive stepper: every cycle is simulated.
func (s *System) stepReference(n uint64) uint64 {
	var done uint64
	for ; done < n && !s.finished; done++ {
		s.cycle++
		s.tick1(s.cycle)
	}
	return done
}

// stepFast ticks cycle by cycle while components make progress, and
// fast-forwards over provably inert spans. After a tick whose progress
// signature matches the previous cycle's, it asks every component for the
// next cycle at which it can change state (NextEvent). If that is more
// than one cycle away, the span in between is inert: the machine state is
// identical at every cycle in it, so per-cycle counter deltas (wait and
// stall counters) are constant. One cycle of the span is simulated for
// real to measure that delta, and the rest is applied in closed form.
//
// Two clamps keep the fast path byte-compatible with the reference: the
// wake never crosses the next trace epoch (samples are always emitted by
// a genuinely simulated cycle), and never exceeds the Step budget (so
// callers that single-step to an exact cycle, like the crash campaign,
// land exactly there).
func (s *System) stepFast(n uint64) uint64 {
	var done uint64
	for done < n && !s.finished {
		s.cycle++
		done++
		s.tick1(s.cycle)
		if s.finished || done >= n {
			break
		}
		busy := false
		for _, c := range s.cores {
			if c.BusyHint() {
				busy = true
				break
			}
		}
		if busy {
			s.lastSig = 0
			continue
		}
		sig := uint64(1)
		for _, c := range s.cores {
			sig = sig*0x100000001B3 + c.ProgressSig()
		}
		if sig != s.lastSig {
			s.lastSig = sig
			continue
		}
		wake := s.nextEvent()
		if wake == 0 {
			continue
		}
		if s.tracer != nil && wake > s.traceNext {
			wake = s.traceNext
		}
		last := wake - 1 // the last provably inert cycle
		if maxLast := s.cycle + (n - done); maxLast < last {
			last = maxLast
		}
		span := last - s.cycle
		if span == 0 {
			continue
		}
		// Measure one inert cycle, then extrapolate the remaining span-1.
		copy(s.statSnap, s.coreStats)
		s.memSnap = s.memStat
		s.cycle++
		done++
		s.tick1(s.cycle)
		if k := span - 1; k > 0 {
			for i := range s.coreStats {
				s.coreStats[i].AddScaledDiff(&s.statSnap[i], k)
			}
			s.memStat.AddScaledDiff(&s.memSnap, k)
			s.cycle += k
			done += k
		}
	}
	return done
}

// nextEvent returns the earliest cycle (strictly after s.cycle) at which
// any component can change state, 0 if some component is active now, and
// ^uint64(0) if nothing is pending anywhere (a stall that only the Step
// budget bounds, exactly like the reference stepper spinning).
func (s *System) nextEvent() uint64 {
	wake := s.mc.NextEvent(s.cycle)
	if wake == 0 {
		return 0
	}
	for _, c := range s.cores {
		w := c.NextEvent(s.cycle)
		if w == 0 {
			return 0
		}
		if w < wake {
			wake = w
		}
	}
	return wake
}

// Run simulates to completion (bounded by maxCycles; 0 means a generous
// default) and returns the report.
func (s *System) Run(maxCycles uint64) (*stats.Report, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cancellation: the context is checked between
// simulation quanta, so a cancelled or deadline-expired context stops a
// long run within ~100k simulated cycles.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) (*stats.Report, error) {
	if maxCycles == 0 {
		maxCycles = 20_000_000_000
	}
	for !s.finished && s.cycle < maxCycles {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run cancelled at cycle %d (scheme %v): %w", s.cycle, s.scheme, err)
		}
		s.Step(100_000)
	}
	if !s.finished {
		return nil, fmt.Errorf("core: simulation exceeded %d cycles (scheme %v)", maxCycles, s.scheme)
	}
	// Drain residual WPQ contents so NVM write counts are complete. The
	// drain runs on a detached clock: the performance clock (Cycle,
	// Report.Cycles) stays at the core completion time, so later Report or
	// CrashImage calls see undistorted cycle accounting.
	s.mc.ForceDrain(true)
	for s.drainCycles = 0; s.drainCycles < 1_000_000 && !s.mc.WPQEmpty(); {
		s.drainCycles++
		s.mc.Tick(s.cycle + s.drainCycles)
	}
	s.mc.ForceDrain(false)
	rep := s.Report()
	if s.tracer != nil {
		// The final sample is taken after the residual drain, at the
		// report's cycle count, so its cumulative totals match the
		// end-of-run report exactly.
		s.emitSample(rep.Cycles, true)
		if err := s.tracer.Err(); err != nil {
			return nil, fmt.Errorf("core: trace sink failed (scheme %v): %w", s.scheme, err)
		}
	}
	return rep, nil
}

// DrainCycles returns how long the post-completion residual WPQ drain
// took; these cycles are excluded from Cycle() and Report().Cycles.
func (s *System) DrainCycles() uint64 { return s.drainCycles }

// Report snapshots the statistics gathered so far.
func (s *System) Report() *stats.Report {
	r := &stats.Report{
		Label:    s.scheme.String(),
		CoreStat: append([]stats.Core(nil), s.coreStats...),
		MemStat:  s.memStat,
	}
	for _, c := range s.cores {
		if c.Done() && c.DoneCycle() > r.Cycles {
			r.Cycles = c.DoneCycle()
		}
	}
	if r.Cycles == 0 {
		r.Cycles = s.cycle
	}
	return r
}

// Commits returns each core's committed transactions in commit order.
func (s *System) Commits() [][]cpu.Commit {
	out := make([][]cpu.Commit, len(s.cores))
	for i, c := range s.cores {
		out[i] = append([]cpu.Commit(nil), c.Commits...)
	}
	return out
}

// CrashImage extracts the persistent state a power failure at the current
// cycle would leave behind, honoring the scheme's persistency domain.
func (s *System) CrashImage() *nvm.Store {
	return s.mc.CrashImage(s.scheme.ADR())
}

// ADR reports whether the scheme's platform keeps the MC queues in the
// persistency domain (what CrashImage assumes).
func (s *System) ADR() bool { return s.scheme.ADR() }

// CrashImageWith extracts the crash state under an explicit fault model,
// overriding the scheme's nominal persistency domain. The fault-injection
// campaign uses it to model ADR loss and torn line writes.
func (s *System) CrashImageWith(f memctrl.CrashFault) *nvm.Store {
	return s.mc.CrashImageWith(f)
}

// PendingLines lists the line addresses a crash now would offer to a
// CrashFault.Torn hook, in hook-index order.
func (s *System) PendingLines(adr bool) []uint64 {
	return s.mc.PendingLines(adr)
}

// QueueLens returns the current WPQ and LPQ occupancy (monitoring).
func (s *System) QueueLens() (wpq, lpq int) {
	return s.mc.WPQLen(), s.mc.LPQLen()
}

// PersistSig summarizes the persist-relevant machine state (functional
// store mutations plus pending queue contents): cycles with equal
// signatures produce byte-identical crash images under every fault
// model. Exhaustive crash-point sweeps use it to classify one
// representative cycle per signature.
func (s *System) PersistSig() uint64 { return s.mc.PersistSig() }
