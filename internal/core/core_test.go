package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logging"
	"repro/internal/workload"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s           core.Scheme
		adr, lwr    bool
		failureSafe bool
	}{
		{core.PMEM, true, false, true},
		{core.PMEMPcommit, false, false, true},
		{core.PMEMNoLog, true, false, false},
		{core.ATOM, true, false, true},
		{core.Proteus, true, true, true},
		{core.ProteusNoLWR, true, false, true},
	}
	for _, c := range cases {
		if c.s.ADR() != c.adr || c.s.LWR() != c.lwr || c.s.FailureSafe() != c.failureSafe {
			t.Errorf("%v: adr=%v lwr=%v safe=%v", c.s, c.s.ADR(), c.s.LWR(), c.s.FailureSafe())
		}
		if c.s.String() == "" {
			t.Errorf("scheme %d has no name", int(c.s))
		}
	}
}

func TestSystemValidation(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 1
	// More traces than cores.
	if _, err := core.NewSystem(cfg, core.PMEM, []*isa.Trace{{}, {}}, nil); err == nil {
		t.Fatal("accepted more traces than cores")
	}
	// Invalid config.
	bad := cfg
	bad.Core.ROB = 0
	if _, err := core.NewSystem(bad, core.PMEM, nil, nil); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestSystemDeterminism(t *testing.T) {
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 24, Seed: 13}
	w, err := workload.Build(workload.RBTree, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = 2
	var prev uint64
	for i := 0; i < 3; i++ {
		traces, _ := logging.Generate(w, core.Proteus, cfg)
		sys, _ := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
		rep, err := sys.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.Cycles != prev {
			t.Fatalf("run %d: %d cycles, previous %d — simulation not deterministic", i, rep.Cycles, prev)
		}
		prev = rep.Cycles
	}
}

func TestStepAndFinished(t *testing.T) {
	p := workload.Params{Threads: 1, InitOps: 32, SimOps: 4, Seed: 1}
	w, _ := workload.Build(workload.Queue, p)
	cfg := config.Default()
	cfg.Cores = 1
	traces, _ := logging.Generate(w, core.PMEMNoLog, cfg)
	sys, _ := core.NewSystem(cfg, core.PMEMNoLog, traces, w.InitImage)
	if sys.Finished() {
		t.Fatal("finished before stepping")
	}
	n := sys.Step(10)
	if n != 10 || sys.Cycle() != 10 {
		t.Fatalf("step accounting: n=%d cycle=%d", n, sys.Cycle())
	}
	for !sys.Finished() {
		sys.Step(10_000)
	}
	// Stepping a finished system is a no-op.
	if n := sys.Step(100); n != 0 {
		t.Fatalf("finished system stepped %d cycles", n)
	}
}

func TestIdleCore(t *testing.T) {
	// Fewer traces than cores: the extra core idles and the system still
	// completes.
	p := workload.Params{Threads: 1, InitOps: 32, SimOps: 4, Seed: 1}
	w, _ := workload.Build(workload.Queue, p)
	cfg := config.Default()
	cfg.Cores = 4
	traces, _ := logging.Generate(w, core.PMEM, cfg)
	sys, _ := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestMoreCoresSlowerOrEqualPerCore: the same single-thread trace takes at
// least as long when three other cores compete for the L3 and MC.
func TestSharedResourceContention(t *testing.T) {
	p := workload.Params{Threads: 4, InitOps: 4000, SimOps: 64, Seed: 3}
	w, _ := workload.Build(workload.AVLTree, p)
	cfg := config.Default()

	traces, _ := logging.Generate(w, core.PMEM, cfg)
	// Alone: only thread 0's trace.
	alone, _ := core.NewSystem(cfg, core.PMEM, traces[:1], w.InitImage)
	ra, err := alone.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Together: all four.
	together, _ := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
	rt, err := together.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.CoreStat[0].Cycles < ra.CoreStat[0].Cycles {
		t.Fatalf("core 0 ran faster with contention: %d vs %d", rt.CoreStat[0].Cycles, ra.CoreStat[0].Cycles)
	}
}

// TestRunDrainClockSeparate verifies the residual WPQ drain after
// completion does not advance the performance clock: Cycle() and a
// post-Run Report() must agree with the report Run returned.
func TestRunDrainClockSeparate(t *testing.T) {
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 7}
	w, err := workload.Build(workload.HashMap, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = 2
	traces, err := logging.Generate(w, core.Proteus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("completed at cycle %d, residual drain took %d cycles", rep.Cycles, sys.DrainCycles())
	if sys.Cycle() != rep.Cycles {
		t.Errorf("Cycle() = %d after Run, want completion time %d (drain leaked into the clock)", sys.Cycle(), rep.Cycles)
	}
	if again := sys.Report(); again.Cycles != rep.Cycles {
		t.Errorf("post-Run Report().Cycles = %d, want %d", again.Cycles, rep.Cycles)
	}
}

// TestRunContextCancel verifies a cancelled context stops a run promptly
// with the context error.
func TestRunContextCancel(t *testing.T) {
	p := workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 3}
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = 1
	traces, _ := logging.Generate(w, core.PMEM, cfg)
	sys, _ := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after cancel: err = %v, want context.Canceled", err)
	}
}
