package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestDebugBreakdown prints a per-scheme breakdown used while calibrating
// the model; it never fails.
func TestDebugBreakdown(t *testing.T) {
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 32, Seed: 7}
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = p.Threads
	for _, scheme := range core.Schemes {
		traces, _ := logging.Generate(w, scheme, cfg)
		sys, _ := core.NewSystem(cfg, scheme, traces, w.InitImage)
		rep, err := sys.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		c := rep.CoreStat[0]
		tstats := traces[0].Summarize()
		t.Logf("%-14s cyc=%7d ops/txn=%4d stalls[rob=%d lq=%d sq=%d logq=%d] sf=%d clwb=%d wpqFull=%d coal=%d lpqDrop=%d writes[data=%d log=%d trunc=%d]",
			scheme, rep.Cycles, traces[0].Len()/32,
			c.StallCycles[stats.StallROB], c.StallCycles[stats.StallLoadQ], c.StallCycles[stats.StallStoreQ], c.StallCycles[stats.StallLogQ],
			c.Sfences, c.Clwbs, rep.MemStat.WPQFullStall, rep.MemStat.WPQCoalesced, rep.MemStat.LPQDropped,
			rep.MemStat.Writes[stats.WriteData], rep.MemStat.Writes[stats.WriteLog], rep.MemStat.Writes[stats.WriteTruncate])
		issueDelay := float64(0)
		if rep.MemStat.WPQDrained > 0 {
			issueDelay = float64(rep.MemStat.WPQIssueDelay) / float64(rep.MemStat.WPQDrained)
		}
		service := float64(0)
		if rep.MemStat.WPQDrained > 0 {
			service = float64(rep.MemStat.WPQService) / float64(rep.MemStat.WPQDrained)
		}
		t.Logf("    wpqResidency=%.0f issueDelay=%.0f service=%.0f bankBusy=%d rowHit=%d rowMiss=%d reads=%d", rep.MemStat.MeanWPQResidency(), issueDelay, service, rep.MemStat.BankBusy, rep.MemStat.RowBufferHits, rep.MemStat.RowBufferMiss, rep.MemStat.Reads)
		_ = tstats
	}
}
