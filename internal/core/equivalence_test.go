package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// pairResult is everything observable from one run that the fast stepper
// must reproduce byte-for-byte.
type pairResult struct {
	rep     *stats.Report
	commits [][]cpu.Commit
	trace   []byte
	image   []byte
}

// runWith executes the workload under one stepper, capturing the report,
// commits, JSONL trace, and final crash image. A run error (e.g. the cycle
// budget expiring) is returned, not fatal: the fuzz target must tolerate
// configurations where the modeled machine genuinely cannot progress.
func runWith(t testing.TB, cfg config.Config, scheme core.Scheme, traces []*isa.Trace, w *workload.Workload, st core.Stepper, epoch, maxCycles uint64) (*pairResult, error) {
	t.Helper()
	sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetStepper(st)
	var buf bytes.Buffer
	if epoch > 0 {
		tr, err := trace.NewJSONLTracer(&buf, trace.Meta{Label: "equiv", Cores: cfg.Cores}, epoch)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetTracer(tr)
	}
	rep, err := sys.Run(maxCycles)
	if err != nil {
		return nil, err
	}
	var img bytes.Buffer
	if err := sys.CrashImage().Serialize(&img); err != nil {
		t.Fatal(err)
	}
	return &pairResult{rep: rep, commits: sys.Commits(), trace: buf.Bytes(), image: img.Bytes()}, nil
}

func comparePair(t *testing.T, ref, fast *pairResult) {
	t.Helper()
	if !reflect.DeepEqual(ref.rep, fast.rep) {
		t.Errorf("report diverges:\nreference: %+v\nfast:      %+v", ref.rep, fast.rep)
	}
	if !reflect.DeepEqual(ref.commits, fast.commits) {
		t.Errorf("commits diverge")
	}
	if !bytes.Equal(ref.trace, fast.trace) {
		t.Errorf("JSONL traces diverge (%d vs %d bytes)", len(ref.trace), len(fast.trace))
	}
	if !bytes.Equal(ref.image, fast.image) {
		t.Errorf("crash images diverge (%d vs %d bytes)", len(ref.image), len(fast.image))
	}
}

// TestFastForwardEquivalence cross-checks the fast stepper against the
// reference stepper for every scheme x Table-2 benchmark: byte-identical
// stats.Report, commit streams, JSONL traces, and final crash images.
func TestFastForwardEquivalence(t *testing.T) {
	for _, kind := range workload.Table2 {
		p := kind.DefaultParams(2000)
		p.Threads = 2
		w, err := workload.Build(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		cfg.Cores = p.Threads
		for _, scheme := range core.Schemes {
			kind, scheme := kind, scheme
			t.Run(kind.String()+"/"+scheme.String(), func(t *testing.T) {
				t.Parallel()
				traces, err := logging.Generate(w, scheme, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := runWith(t, cfg, scheme, traces, w, core.StepperReference, 2000, 500_000_000)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := runWith(t, cfg, scheme, traces, w, core.StepperFast, 2000, 500_000_000)
				if err != nil {
					t.Fatal(err)
				}
				comparePair(t, ref, fast)
			})
		}
	}
}

// TestFastForwardCrashPointEquivalence mimics the crash campaign's usage:
// both steppers are single-stepped to the same exact mid-run cycles and
// must expose byte-identical crash images there.
func TestFastForwardCrashPointEquivalence(t *testing.T) {
	p := workload.Queue.DefaultParams(2000)
	p.Threads = 2
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = p.Threads
	for _, scheme := range []core.Scheme{core.PMEM, core.ATOM, core.Proteus} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			traces, err := logging.Generate(w, scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(st core.Stepper) *core.System {
				sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
				if err != nil {
					t.Fatal(err)
				}
				sys.SetStepper(st)
				return sys
			}
			ref, fast := mk(core.StepperReference), mk(core.StepperFast)
			for _, cycle := range []uint64{137, 1000, 2503, 10_000, 40_000} {
				ref.Step(cycle - ref.Cycle())
				fast.Step(cycle - fast.Cycle())
				if ref.Cycle() != fast.Cycle() {
					t.Fatalf("cycle mismatch at target %d: ref %d fast %d", cycle, ref.Cycle(), fast.Cycle())
				}
				var ri, fi bytes.Buffer
				if err := ref.CrashImage().Serialize(&ri); err != nil {
					t.Fatal(err)
				}
				if err := fast.CrashImage().Serialize(&fi); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ri.Bytes(), fi.Bytes()) {
					t.Fatalf("crash image diverges at cycle %d", cycle)
				}
				if ref.Finished() != fast.Finished() {
					t.Fatalf("finished flag diverges at cycle %d", cycle)
				}
			}
		})
	}
}

// FuzzFastForwardEquivalence fuzzes workload kind, scheme, queue depths
// and drain policy, and fails on any observable divergence between the
// reference and fast steppers.
func FuzzFastForwardEquivalence(f *testing.F) {
	// Seed corpus: one per scheme family, plus queue-pressure corners.
	f.Add(uint8(0), uint8(0), uint8(16), uint8(8), uint8(8), uint8(12))
	f.Add(uint8(1), uint8(3), uint8(4), uint8(2), uint8(1), uint8(10))
	f.Add(uint8(2), uint8(4), uint8(8), uint8(16), uint8(0), uint8(8))
	f.Add(uint8(3), uint8(5), uint8(2), uint8(1), uint8(4), uint8(8))
	f.Add(uint8(4), uint8(1), uint8(64), uint8(64), uint8(32), uint8(16))
	f.Add(uint8(5), uint8(2), uint8(3), uint8(4), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, kindSel, schemeSel, wpq, lpq, drainHi, simOps uint8) {
		kind := workload.Table2[int(kindSel)%len(workload.Table2)]
		scheme := core.Schemes[int(schemeSel)%len(core.Schemes)]
		p := kind.DefaultParams(4000)
		p.Threads = 2
		p.SimOps = 4 + int(simOps)%16
		w, err := workload.Build(kind, p)
		if err != nil {
			t.Skip()
		}
		cfg := config.Default()
		cfg.Cores = p.Threads
		// WPQ >= 2: ATOM sends meta+data pairs and needs two free slots,
		// so a 1-entry WPQ livelocks the modeled machine by design.
		cfg.Mem.WPQ = 2 + int(wpq)%127
		cfg.Mem.LPQ = 1 + int(lpq)%128
		cfg.Mem.DrainHi = int(drainHi) % (cfg.Mem.WPQ + 1)
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		traces, err := logging.Generate(w, scheme, cfg)
		if err != nil {
			t.Skip()
		}
		ref, err := runWith(t, cfg, scheme, traces, w, core.StepperReference, 1000, 20_000_000)
		if err != nil {
			// The modeled machine stalled under this configuration in the
			// reference stepper too: nothing to compare.
			t.Skip()
		}
		fast, err := runWith(t, cfg, scheme, traces, w, core.StepperFast, 1000, 20_000_000)
		if err != nil {
			t.Fatalf("fast stepper stalled where reference finished: %v", err)
		}
		if !reflect.DeepEqual(ref.rep, fast.rep) {
			t.Fatalf("report diverges for %v/%v wpq=%d lpq=%d drainHi=%d",
				kind, scheme, cfg.Mem.WPQ, cfg.Mem.LPQ, cfg.Mem.DrainHi)
		}
		if !bytes.Equal(ref.trace, fast.trace) {
			t.Fatalf("trace diverges for %v/%v", kind, scheme)
		}
		if !bytes.Equal(ref.image, fast.image) {
			t.Fatalf("crash image diverges for %v/%v", kind, scheme)
		}
	})
}
