package core

// OrderingRules is a scheme's declared persistency contract: the axioms
// its logging design promises about post-crash NVM state. The crash
// campaign's expectation matrix and the litmus harness's axiomatic
// checker are both derived from these declarations, so a simulator or
// recovery behaviour that contradicts them is mechanically detectable —
// the rules are load-bearing, not documentation.
type OrderingRules struct {
	// LogBeforeData: the log entry covering a persistent store is durable
	// before the store's own line may reach NVM, so recovery can always
	// undo (or redo) a partially persisted transaction.
	LogBeforeData bool

	// CommitLag bounds recovery's freedom at a transaction boundary: the
	// durable state recovery produces for a thread corresponds to a whole
	// number of its transactions m, with m in [n, n+CommitLag] where n is
	// the thread's committed count at the crash. Lag 1 admits the
	// transaction whose commit was in flight (its data durable, its log
	// not yet invalidated) being replayed or kept whole.
	CommitLag int

	// QueueDrain: the scheme counts the memory controller's WPQ/LPQ into
	// its persistency domain and relies on ADR draining them at power
	// failure. Such schemes are exposed to torn queue writes and ADR
	// (backup capacitor) loss; a scheme with QueueDrain false flushes
	// explicitly and owes its guarantees even under those faults.
	QueueDrain bool

	// DetectsCorruption: recovery validates log integrity and must either
	// produce a permitted state or report the corruption — it never
	// silently applies a corrupted entry.
	DetectsCorruption bool
}

// Ordering returns the scheme's declared persistency axioms. Schemes that
// are not failure-safe (PMEM+nolog) declare no ordering between log and
// data — there is no log — and promise nothing after a crash.
func (s Scheme) Ordering() OrderingRules {
	switch s {
	case PMEM, ATOM, ProteusNoLWR, Proteus:
		return OrderingRules{LogBeforeData: true, CommitLag: 1, QueueDrain: true, DetectsCorruption: true}
	case PMEMPcommit:
		// pcommit stalls until the controller queues are on NVM, so the
		// platform's ADR drain is never load-bearing.
		return OrderingRules{LogBeforeData: true, CommitLag: 1, QueueDrain: false, DetectsCorruption: true}
	case PMEMNoLog:
		return OrderingRules{QueueDrain: true}
	}
	return OrderingRules{}
}

// ExpectSafe reports whether the axioms promise the durable-transaction
// property under the given platform condition: queuesLost is true when
// the fault defeats the ADR drain (torn queue writes, capacitor failure).
// A scheme without LogBeforeData promises nothing; one whose persistency
// domain leans on the ADR drain loses its promise when the drain fails.
// Corruption faults are excluded — their contract is verified-or-detected
// (DetectsCorruption), not unconditional safety.
func (r OrderingRules) ExpectSafe(queuesLost bool) bool {
	if !r.LogBeforeData {
		return false
	}
	return !queuesLost || !r.QueueDrain
}
