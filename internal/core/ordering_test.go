package core

import "testing"

// TestOrderingRulesConsistency pins the scheme axiom declarations against
// the scheme predicates the simulator itself is built from: a scheme's
// QueueDrain axiom must match its ADR persistency domain, and exactly the
// failure-safe schemes declare log-before-data with a bounded commit lag.
func TestOrderingRulesConsistency(t *testing.T) {
	for _, s := range Schemes {
		r := s.Ordering()
		if r.QueueDrain != s.ADR() {
			t.Errorf("%v: QueueDrain=%v but ADR()=%v", s, r.QueueDrain, s.ADR())
		}
		if r.LogBeforeData != s.FailureSafe() {
			t.Errorf("%v: LogBeforeData=%v but FailureSafe()=%v", s, r.LogBeforeData, s.FailureSafe())
		}
		if s.FailureSafe() {
			if r.CommitLag != 1 {
				t.Errorf("%v: CommitLag=%d, want 1 (one in-flight commit)", s, r.CommitLag)
			}
			if !r.DetectsCorruption {
				t.Errorf("%v: failure-safe scheme must declare DetectsCorruption", s)
			}
			if !r.ExpectSafe(false) {
				t.Errorf("%v: failure-safe scheme must be safe under a clean cut", s)
			}
			if r.ExpectSafe(true) != !r.QueueDrain {
				t.Errorf("%v: ExpectSafe(queuesLost) = %v, want %v", s, r.ExpectSafe(true), !r.QueueDrain)
			}
		} else if r.ExpectSafe(false) || r.ExpectSafe(true) {
			t.Errorf("%v: non-failure-safe scheme promises safety", s)
		}
	}
	// Exactly one scheme in the evaluated set flushes through the queues
	// explicitly (pcommit) and so keeps its promise when ADR fails.
	var survivors int
	for _, s := range Schemes {
		if s.FailureSafe() && !s.Ordering().QueueDrain {
			survivors++
		}
	}
	if survivors != 1 {
		t.Errorf("schemes surviving queue loss = %d, want exactly 1 (PMEM+pcommit)", survivors)
	}
}
