package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/workload"
)

func TestProbeWPQ(t *testing.T) {
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 32, Seed: 7}
	w, _ := workload.Build(workload.Queue, p)
	cfg := config.Default()
	cfg.Cores = p.Threads
	traces, _ := logging.Generate(w, core.PMEM, cfg)
	sys, _ := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
	for i := 0; i < 12 && !sys.Finished(); i++ {
		sys.Step(5000)
		wpq, lpq := sys.QueueLens()
		rep := sys.Report()
		t.Logf("cyc=%d wpqLen=%d lpq=%d writes=%d retired=%d", sys.Cycle(), wpq, lpq, rep.MemStat.NVMWrites(), rep.TotalRetired())
	}
}
