package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestScaleRatios runs a realistic-footprint queue workload (paper-scale
// initialization, reduced timed ops) and reports speedups vs PMEM.
func TestScaleRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("scale run")
	}
	for _, bench := range []struct {
		kind workload.Kind
		p    workload.Params
	}{
		{workload.Queue, workload.Params{Threads: 4, InitOps: 20000, SimOps: 300, Seed: 7}},
		{workload.HashMap, workload.Params{Threads: 4, InitOps: 25000, SimOps: 200, Seed: 7}},
		{workload.AVLTree, workload.Params{Threads: 4, InitOps: 50000, SimOps: 150, Seed: 7}},
	} {
		w, err := workload.Build(bench.kind, bench.p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		var base uint64
		for _, scheme := range core.Schemes {
			traces, _ := logging.Generate(w, scheme, cfg)
			sys, _ := core.NewSystem(cfg, scheme, traces, w.InitImage)
			rep, err := sys.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if scheme == core.PMEM {
				base = rep.Cycles
			}
			c0 := rep.CoreStat[0]
			rl := float64(0)
			if rep.MemStat.ReadsServed > 0 {
				rl = float64(rep.MemStat.ReadLatency) / float64(rep.MemStat.ReadsServed)
			}
			t.Logf("%v %-14s cycles=%9d speedup=%.3f writes=%d reads=%d rdlat=%.0f fwd=%d sfW=%d pcW=%d sbBlk=%d txeW=%d atomD=%d rob=%d lq=%d sq=%d lreg=%d logq=%d", bench.kind, scheme, rep.Cycles,
				float64(base)/float64(rep.Cycles), rep.MemStat.NVMWrites(), rep.MemStat.ReadsServed, rl, rep.MemStat.WPQForwards,
				c0.SfenceWait, c0.PcommitWait, c0.SBWPQBlocked, c0.TxEndWait, c0.ATOMLogDelays,
				c0.StallCycles[stats.StallROB], c0.StallCycles[stats.StallLoadQ], c0.StallCycles[stats.StallStoreQ], c0.StallCycles[stats.StallLogReg], c0.StallCycles[stats.StallLogQ])
		}
	}
}
