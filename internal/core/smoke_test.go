package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// TestSmokeAllSchemes runs a small queue workload under every scheme and
// checks that the simulation completes, commits every transaction, and
// leaves the persistent image in the all-transactions-applied state.
func TestSmokeAllSchemes(t *testing.T) {
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 32, Seed: 7}
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	oracle := recovery.NewOracle(w)
	cfg := config.Default()
	cfg.Cores = p.Threads

	for _, scheme := range core.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			traces, err := logging.Generate(w, scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.Run(200_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cycles == 0 {
				t.Fatal("zero cycles")
			}
			for c, commits := range sys.Commits() {
				if got, want := len(commits), p.SimOps; got != want {
					t.Errorf("core %d committed %d transactions, want %d", c, got, want)
				}
			}
			img := sys.CrashImage()
			if err := oracle.VerifyFinal(img); err != nil {
				t.Errorf("final state: %v", err)
			}
			t.Logf("%-14s cycles=%d retired=%d nvmWrites=%d", scheme, rep.Cycles, rep.TotalRetired(), rep.MemStat.NVMWrites())
		})
	}
}
