package cpu

import (
	"repro/internal/isa"
	"repro/internal/logfmt"
)

// atomMaybeLog enqueues a hardware log-creation request for the line's
// first transactional store (ATOM creates one log entry per update per
// transaction). The pre-image is captured at dispatch, before the
// triggering store enters the ROB, with store-to-load forwarding from
// older in-flight stores.
func (c *Core) atomMaybeLog(now uint64, t *txState, line uint64, tx uint32) {
	if _, ok := t.atomLogged.get(line); ok {
		return
	}
	req := c.newAtomReq()
	req.tx = tx
	c.forwardedPeek(line, isa.LineSize, req.data[:])
	req.metaAddr = c.atomCursor
	c.atomCursor += logfmt.PairEntrySize
	if c.atomCursor+logfmt.PairEntrySize > c.logEnd {
		c.atomCursor = c.logStart
	}
	req.meta = logfmt.EncodePairMeta(logfmt.PairEntry{
		From: line, Tx: uint64(tx), Len: isa.LineSize,
		DataCRC: logfmt.PairDataCRC(req.data[:]),
	})
	t.atomLogged.put(line, len(t.atomReqs))
	t.atomReqs = append(t.atomReqs, req)
	t.atomEntries = append(t.atomEntries, req.metaAddr)
	c.atomQ = append(c.atomQ, req)
	if c.st != nil {
		c.st.LogFlushes++
	}
}

// atomAcked reports whether the line's log entry has been acknowledged by
// the MC; transactional stores may not retire before that ("logging delays
// the store's retirement and the store is held in the storeQ until the
// logging operation is completed", §5.1).
func (c *Core) atomAcked(tx uint32, line uint64, now uint64) bool {
	t := c.txFor(tx)
	if t == nil {
		return true
	}
	idx, ok := t.atomLogged.get(line)
	if !ok {
		return true
	}
	req := t.atomReqs[idx]
	return req.acked && req.ackAt <= now
}

// tickAtomQ issues log-creation requests in order with a small in-flight
// window (cfg.ATOM.InFlight) and completes them when the MC acknowledges
// acceptance (posted-log: the ack is sent when the entry arrives at the
// MC, before it is durable in NVM). Stores still cannot retire before
// their line's ack — the coupling the Proteus LogQ removes (§6).
func (c *Core) tickAtomQ(now uint64) {
	if len(c.atomQ) == 0 {
		return
	}
	// Retire acknowledged heads.
	for len(c.atomQ) > 0 && c.atomQ[0].sent && c.atomQ[0].ackAt <= now {
		c.atomQ[0].acked = true
		copy(c.atomQ, c.atomQ[1:])
		c.atomQ[len(c.atomQ)-1] = nil
		c.atomQ = c.atomQ[:len(c.atomQ)-1]
	}
	inFlight := 0
	limit := c.cfg.ATOM.InFlight
	if limit < 1 {
		limit = 1
	}
	for _, req := range c.atomQ {
		if !req.sent {
			if inFlight >= limit || c.mc.WPQFree() < 2 {
				return
			}
			arrive := now + c.mcTrip
			c.mc.AtomLog(arrive, c.id, req.tx, req.metaAddr, req.meta)
			c.mc.AtomLog(arrive, c.id, req.tx, req.metaAddr+isa.LineSize, req.data)
			req.sent = true
			req.ackAt = arrive + 1 + c.mcTrip
		}
		inFlight++
	}
}
