// Package cpu models the out-of-order cores of Table 1 (5-wide
// dispatch/retire, 224-entry ROB, 72/56-entry load/store queues) at the
// level of detail the paper's results depend on: in-order dispatch and
// retirement with resource-pressure stalls, a post-retirement store buffer
// with in-order release to the cache, PMEM instruction semantics (clwb,
// sfence, pcommit), ATOM's log-before-store-retirement rule, and the
// Proteus core structures — log registers, the LogQ and the LLT (§4.2).
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

// Mode selects how the core treats transactional stores.
type Mode int

const (
	// ModePlain executes the trace as-is: logging, if any, is explicit in
	// the instruction stream (the software schemes).
	ModePlain Mode = iota
	// ModeATOM creates a log entry in hardware before each transactional
	// store retires, holding the store until the MC acknowledges the
	// entry (posted-log), with entries created at the MC (source-log).
	ModeATOM
	// ModeProteus executes log-load/log-flush with the LR file, LogQ and
	// LLT, and performs the tx-end actions of §4.2-4.3.
	ModeProteus
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeATOM:
		return "atom"
	case ModeProteus:
		return "proteus"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Commit records the cycle at which a transaction became durable.
type Commit struct {
	Tx    uint32
	Cycle uint64
}

type robEntry struct {
	op       isa.Op
	issued   bool   // memory op sent to the hierarchy
	doneAt   uint64 // execution completion (valid once issued)
	filtered bool   // Proteus: log op absorbed by the LLT
	lr       int    // Proteus: log register index, -1 otherwise
	lqe      int    // Proteus: LogQ entry index, -1 otherwise
	lqSeq    uint64 // sequence number guarding LogQ slot reuse
}

type sbKind uint8

const (
	sbStore sbKind = iota
	sbClwb
)

type sbEntry struct {
	kind sbKind
	addr uint64
	size int
	val  uint64
	tx   uint32
}

// lrSlot is one Proteus log register: it keeps the log data and log-from
// address while the logging instructions are in flight (§4.2).
type lrSlot struct {
	busy     bool
	filtered bool
	issued   bool
	doneAt   uint64
	addr     uint64 // log-from 32B block
	data     [isa.LogBlockSize]byte
}

// lqEntry is one LogQ entry tracking an in-flight log-flush (§4.2).
type lqEntry struct {
	valid   bool
	lr      int
	logFrom uint64
	logTo   uint64
	tx      uint32
	hasData bool
	data    [isa.LogBlockSize]byte
	issued  bool
	ackAt   uint64
	seq     uint64
}

// atomReq is one serialized ATOM log-creation request.
type atomReq struct {
	tx       uint32
	metaAddr uint64
	meta     [isa.LineSize]byte
	data     [isa.LineSize]byte
	sent     bool
	acked    bool
	ackAt    uint64
}

// txState is the per-transaction bookkeeping the hardware keeps. It is
// created when tx-begin dispatches (dispatch runs ahead of retirement, so
// a transaction's stores may enter the pipeline while the previous
// transaction is still completing) and destroyed when tx-end retires.
type txState struct {
	tx        uint32
	dirty     u64set // lines already recorded in dirtyList
	dirtyList []uint64
	// Proteus.
	logCount  int
	lastLogTo uint64
	// ATOM.
	atomLogged  u64kv // line -> index into atomReqs
	atomReqs    []*atomReq
	atomEntries []uint64 // metadata-line addresses for truncation
}

// Core is one simulated out-of-order core.
type Core struct {
	id   int
	cfg  config.Config
	mode Mode
	lwr  bool // Proteus log write removal (LPQ) enabled

	hier *cache.Hierarchy
	mc   *memctrl.Controller
	st   *stats.Core

	trace   []isa.Op
	pc      int
	aluLeft uint64

	rob      []robEntry
	robHead  int
	robCount int
	unissued int // ROB entries awaiting a hierarchy slot (issuePending gate)

	loads  int // LoadQ occupancy
	stores int // StoreQ occupancy (ROB stores + store buffer)

	// Store buffer as a fixed-capacity ring (StoreBuf entries).
	sbq         []sbEntry
	sbHead      int
	sbCount     int
	sbBusyUntil uint64
	persistAcks []uint64

	// Pointer-chase serialization: a load to a line unrelated to any
	// recently loaded line (neither the same line nor a sequential
	// successor) depends on the previous load's completion — its address
	// came from that load. Tree traversals serialize; streaming over a
	// node's lines, or alternating between a few buffers, does not.
	recentLoads  [4]recentLoad
	recentNext   int
	lastLoadDone uint64

	mcTrip uint64

	// Transaction state: active transactions, oldest first. The last is
	// the one the front end dispatches for; the first is the one
	// retirement completes.
	txs     []*txState
	txPool  []*txState // retired txStates kept for reuse
	curTx   uint32
	Commits []Commit

	// Proteus state.
	lr       []lrSlot
	lrFIFO   []int // dispatched log-loads awaiting their log-flush
	logQ     []lqEntry
	lqCount  int // valid LogQ entries
	lqSeq    uint64
	llt      *llt
	logStart uint64
	logEnd   uint64
	curlog   uint64

	// ATOM state.
	atomQ      []*atomReq // serialized in-flight log-creation requests
	reqPool    []*atomReq // completed requests kept for reuse
	atomCursor uint64

	// tx-end state machine.
	txEndStage  int
	txFlushList []uint64
	txFlushIdx  int
	txFlushMax  uint64 // latest flush ack
	txMarkDone  bool

	pcommitForcing bool
	pcommitSeq     uint64
	finished       bool
	doneCycle      uint64
}

// New builds a core executing trace in the given mode. lwr enables
// Proteus's log write removal (the LPQ path); it is ignored in other
// modes.
func New(id int, cfg config.Config, mode Mode, lwr bool, hier *cache.Hierarchy, mc *memctrl.Controller, trace []isa.Op, st *stats.Core) *Core {
	logStart, logEnd := isa.LogWindow(id)
	nTx := 0
	for i := range trace {
		if trace[i].Kind == isa.TxEnd {
			nTx++
		}
	}
	return &Core{
		id: id, cfg: cfg, mode: mode, lwr: lwr,
		hier: hier, mc: mc, st: st, trace: trace,
		rob:         make([]robEntry, cfg.Core.ROB),
		sbq:         make([]sbEntry, cfg.Core.StoreBuf),
		persistAcks: make([]uint64, 0, 64),
		mcTrip:      uint64(cfg.L3.Latency + cfg.Mem.L3ToMC),
		txs:         make([]*txState, 0, 8),
		Commits:     make([]Commit, 0, nTx),
		lr:          make([]lrSlot, cfg.Proteus.LogRegs),
		lrFIFO:      make([]int, 0, cfg.Proteus.LogRegs),
		logQ:        make([]lqEntry, cfg.Proteus.LogQ),
		llt:         newLLT(cfg.Proteus.LLTSize, cfg.Proteus.LLTWays),
		logStart:    logStart,
		logEnd:      logEnd,
		curlog:      logStart,
		atomQ:       make([]*atomReq, 0, 32),
		atomCursor:  logStart,
	}
}

// ------------------------------------------------------- reusable storage

// sbAt returns the i-th store-buffer entry from the head.
func (c *Core) sbAt(i int) *sbEntry {
	idx := c.sbHead + i
	if idx >= len(c.sbq) {
		idx -= len(c.sbq)
	}
	return &c.sbq[idx]
}

func (c *Core) sbPush(e sbEntry) {
	idx := c.sbHead + c.sbCount
	if idx >= len(c.sbq) {
		idx -= len(c.sbq)
	}
	c.sbq[idx] = e
	c.sbCount++
}

func (c *Core) sbPop() {
	c.sbHead++
	if c.sbHead == len(c.sbq) {
		c.sbHead = 0
	}
	c.sbCount--
}

// newTxState returns a cleared per-transaction record, reusing storage
// from completed transactions so steady-state stepping does not allocate.
func (c *Core) newTxState(tx uint32) *txState {
	var t *txState
	if n := len(c.txPool); n > 0 {
		t = c.txPool[n-1]
		c.txPool = c.txPool[:n-1]
	} else {
		t = &txState{}
	}
	t.tx = tx
	return t
}

// popTx retires the oldest transaction and recycles its storage. Its
// atomReqs are guaranteed out of atomQ: every transactional store retired
// before tx-end, and store retirement requires the popped-and-acked state.
func (c *Core) popTx() {
	t := c.txs[0]
	copy(c.txs, c.txs[1:])
	c.txs[len(c.txs)-1] = nil
	c.txs = c.txs[:len(c.txs)-1]
	for _, r := range t.atomReqs {
		*r = atomReq{}
		c.reqPool = append(c.reqPool, r)
	}
	t.dirty.reset()
	t.dirtyList = t.dirtyList[:0]
	t.atomLogged.reset()
	t.atomReqs = t.atomReqs[:0]
	t.atomEntries = t.atomEntries[:0]
	t.logCount = 0
	t.lastLogTo = 0
	t.tx = 0
	c.txPool = append(c.txPool, t)
}

func (c *Core) newAtomReq() *atomReq {
	if n := len(c.reqPool); n > 0 {
		r := c.reqPool[n-1]
		c.reqPool = c.reqPool[:n-1]
		return r
	}
	return &atomReq{}
}

// Done reports whether the core has drained its trace and all buffers.
func (c *Core) Done() bool { return c.finished }

// DoneCycle returns the cycle at which the core drained (valid once Done).
func (c *Core) DoneCycle() uint64 { return c.doneCycle }

// Occupancy returns the instantaneous ROB, load-queue, store-queue and
// store-buffer occupancy — the per-epoch snapshot the trace layer samples.
func (c *Core) Occupancy() (rob, loadQ, storeQ, storeBuf int) {
	return c.robCount, c.loads, c.stores, c.sbCount
}

// LogQDepth returns the number of in-flight LogQ entries (Proteus).
func (c *Core) LogQDepth() int { return c.lqCount }

// FreeLogRegs returns the number of free Proteus log registers.
func (c *Core) FreeLogRegs() int {
	n := 0
	for i := range c.lr {
		if !c.lr[i].busy {
			n++
		}
	}
	return n
}

// ATOMInFlight returns the outstanding hardware log-creation requests
// (ATOM's serialized request queue).
func (c *Core) ATOMInFlight() int { return len(c.atomQ) }

// dtx returns the transaction the front end is dispatching for, nil
// outside transactions.
func (c *Core) dtx() *txState {
	if len(c.txs) == 0 {
		return nil
	}
	return c.txs[len(c.txs)-1]
}

// rtx returns the transaction retirement is completing, nil when none.
func (c *Core) rtx() *txState {
	if len(c.txs) == 0 {
		return nil
	}
	return c.txs[0]
}

// txFor finds the active transaction with the given ID.
func (c *Core) txFor(tx uint32) *txState {
	for _, t := range c.txs {
		if t.tx == tx {
			return t
		}
	}
	return nil
}

// Tick advances the core by one cycle.
func (c *Core) Tick(now uint64) {
	if c.finished {
		return
	}
	c.issuePending(now)
	c.tickLogQ(now)
	c.tickAtomQ(now)
	c.retire(now)
	c.drainStoreBuffer(now)
	c.dispatch(now)

	if c.pc >= len(c.trace) && c.robCount == 0 && c.sbCount == 0 &&
		c.logQEmpty() && len(c.atomQ) == 0 {
		c.finished = true
		c.doneCycle = now
		if c.st != nil {
			c.st.Cycles = now
		}
	}
}

func (c *Core) logQEmpty() bool { return c.lqCount == 0 }

// logQEmptyFor reports whether no LogQ entry of tx remains in flight.
func (c *Core) logQEmptyFor(tx uint32) bool {
	for i := range c.logQ {
		if c.logQ[i].valid && c.logQ[i].tx == tx {
			return false
		}
	}
	return true
}

// robAt returns the i-th entry from the head.
func (c *Core) robAt(i int) *robEntry {
	idx := c.robHead + i
	if idx >= len(c.rob) {
		idx -= len(c.rob)
	}
	return &c.rob[idx]
}

func (c *Core) robPush(e robEntry) *robEntry {
	idx := c.robHead + c.robCount
	if idx >= len(c.rob) {
		idx -= len(c.rob)
	}
	c.rob[idx] = e
	c.robCount++
	return &c.rob[idx]
}

func (c *Core) robPop() {
	c.robHead++
	if c.robHead == len(c.rob) {
		c.robHead = 0
	}
	c.robCount--
}

// forwardedPeek reads the current architectural value of [addr,
// addr+size): the cache/memory contents patched with not-yet-drained older
// stores from the store buffer and the ROB, in program order. This is the
// pre-image hardware log creation must capture.
func (c *Core) forwardedPeek(addr uint64, size int, buf []byte) {
	c.hier.Peek(addr, size, buf)
	apply := func(sAddr uint64, sSize int, val uint64) {
		lo := max64(sAddr, addr)
		hi := min64(sAddr+uint64(sSize), addr+uint64(size))
		for a := lo; a < hi; a++ {
			buf[a-addr] = byte(val >> (8 * (a - sAddr)))
		}
	}
	for i := 0; i < c.sbCount; i++ {
		if e := c.sbAt(i); e.kind == sbStore {
			apply(e.addr, e.size, e.val)
		}
	}
	for i := 0; i < c.robCount; i++ {
		e := c.robAt(i)
		if e.op.Kind == isa.St {
			apply(e.op.Addr, int(e.op.Size), e.op.Val)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------- dispatch

func (c *Core) stall(cause stats.StallCause) {
	if c.st != nil {
		c.st.StallCycles[cause]++
	}
}

func (c *Core) dispatch(now uint64) {
	slots := c.cfg.Core.Width
	for slots > 0 {
		if c.pc >= len(c.trace) {
			return
		}
		op := c.trace[c.pc]

		if c.robCount >= len(c.rob) {
			c.stall(stats.StallROB)
			return
		}

		switch op.Kind {
		case isa.Alu:
			if c.aluLeft == 0 {
				c.aluLeft = op.Val
				if c.aluLeft == 0 {
					c.aluLeft = 1
				}
			}
			take := uint64(slots)
			if take > c.aluLeft {
				take = c.aluLeft
			}
			c.aluLeft -= take
			slots -= int(take)
			if c.aluLeft > 0 {
				return // ran out of slots mid-op
			}
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})
			c.pc++
			continue

		case isa.Ld, isa.LockAcq:
			if c.loads >= c.cfg.Core.LoadQ {
				c.stall(stats.StallLoadQ)
				return
			}
			e := c.robPush(robEntry{op: op, lr: -1, lqe: -1})
			c.loads++
			c.issueLoad(now, e)
			if !e.issued {
				c.unissued++
			}

		case isa.LogLoad:
			if c.loads >= c.cfg.Core.LoadQ {
				c.stall(stats.StallLoadQ)
				return
			}
			if c.mode != ModeProteus {
				// Treated as a plain load outside Proteus mode.
				e := c.robPush(robEntry{op: op, lr: -1, lqe: -1})
				c.loads++
				c.issueLoad(now, e)
				if !e.issued {
					c.unissued++
				}
				break
			}
			lri := c.freeLR()
			if lri < 0 {
				c.stall(stats.StallLogReg)
				return
			}
			c.dispatchLogLoad(now, op, lri)

		case isa.St, isa.LockRel:
			if c.stores >= c.cfg.Core.StoreQ {
				c.stall(stats.StallStoreQ)
				return
			}
			if op.Kind == isa.St && op.Tx != 0 && isa.IsPersistentAddr(op.Addr) {
				if t := c.dtx(); t != nil {
					line := isa.LineAddr(op.Addr)
					if t.dirty.add(line) {
						t.dirtyList = append(t.dirtyList, line)
					}
					if c.mode == ModeATOM {
						c.atomMaybeLog(now, t, line, op.Tx)
					}
				}
			}
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})
			c.stores++

		case isa.Clwb:
			if c.stores >= c.cfg.Core.StoreQ {
				c.stall(stats.StallStoreQ)
				return
			}
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})
			c.stores++

		case isa.LogFlush:
			if c.mode != ModeProteus {
				// No-op outside Proteus mode (should not be generated).
				c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})
				break
			}
			if !c.dispatchLogFlush(now, op) {
				return // stalled on LogQ
			}

		case isa.TxBegin:
			c.txs = append(c.txs, c.newTxState(op.Tx))
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})

		case isa.TxEnd:
			// Clear the LLT in dispatch (program) order so the next
			// transaction cannot hit stale entries (§4.2).
			if c.mode == ModeProteus {
				c.llt.Clear()
			}
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})

		default:
			// Sfence, Pcommit, LogSave, Nop.
			c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: -1, lqe: -1})
		}
		c.pc++
		slots--
	}
}

// issueLoad sends a load to the hierarchy, retrying later on backpressure.
// Data loads chain behind the previous load when they look like a pointer
// dereference (a jump to a line unrelated to any recent load).
func (c *Core) issueLoad(now uint64, e *robEntry) {
	at := now
	line := isa.LineAddr(e.op.Addr)
	data := e.op.Kind == isa.Ld && isa.IsPersistentAddr(e.op.Addr)
	if data {
		chained := true
		for _, r := range c.recentLoads {
			if line == r.line || line == r.line+isa.LineSize {
				chained = false
				break
			}
		}
		if chained && c.lastLoadDone > at {
			at = c.lastLoadDone
		}
	}
	done, ok := c.hier.Load(at, e.op.Addr, int(e.op.Size), nil)
	if !ok {
		return // remain unissued; retried by issuePending
	}
	e.issued = true
	e.doneAt = done
	if data {
		c.recentLoads[c.recentNext] = recentLoad{line: line}
		c.recentNext = (c.recentNext + 1) % len(c.recentLoads)
		c.lastLoadDone = done
	}
}

// issuePending retries memory operations that were refused by the
// hierarchy (memory-controller queue backpressure). The unissued counter
// makes the common case — nothing to retry — a single compare instead of
// a full ROB scan every cycle.
func (c *Core) issuePending(now uint64) {
	if c.unissued == 0 {
		return
	}
	left := c.unissued
	for i := 0; i < c.robCount && left > 0; i++ {
		e := c.robAt(i)
		if e.issued {
			continue
		}
		left--
		switch e.op.Kind {
		case isa.Ld, isa.LockAcq:
			c.issueLoad(now, e)
		case isa.LogLoad:
			if c.mode == ModeProteus {
				c.issueProteusLogLoad(now, e)
			} else {
				c.issueLoad(now, e)
			}
		}
		if e.issued {
			c.unissued--
		}
	}
}

// ----------------------------------------------------------------- retire

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.Core.Width && c.robCount > 0; n++ {
		e := c.robAt(0)
		if !e.issued || e.doneAt > now {
			return
		}
		switch e.op.Kind {
		case isa.St, isa.LockRel:
			if c.sbCount >= c.cfg.Core.StoreBuf {
				return
			}
			if c.mode == ModeATOM && e.op.Kind == isa.St && e.op.Tx != 0 && isa.IsPersistentAddr(e.op.Addr) {
				if !c.atomAcked(e.op.Tx, isa.LineAddr(e.op.Addr), now) {
					if c.st != nil {
						c.st.ATOMLogDelays++
					}
					return
				}
			}
			c.sbPush(sbEntry{kind: sbStore, addr: e.op.Addr, size: int(e.op.Size), val: e.op.Val, tx: e.op.Tx})

		case isa.Clwb:
			if c.sbCount >= c.cfg.Core.StoreBuf {
				return
			}
			c.sbPush(sbEntry{kind: sbClwb, addr: e.op.Addr})
			if c.st != nil {
				c.st.Clwbs++
			}

		case isa.Sfence:
			if !c.persistComplete(now) {
				if c.st != nil {
					c.st.SfenceWait++
				}
				return
			}
			if c.st != nil {
				c.st.Sfences++
			}

		case isa.Pcommit:
			if !c.pcommitForcing {
				if !c.persistComplete(now) {
					if c.st != nil {
						c.st.PcommitWait++
					}
					return
				}
				// All prior persists accepted; now drain what is pending.
				c.pcommitForcing = true
				c.pcommitSeq = c.mc.CurSeq()
				c.mc.ForceDrain(true)
			}
			if !c.mc.WPQDrainedThrough(c.pcommitSeq) {
				if c.st != nil {
					c.st.PcommitWait++
				}
				return
			}
			if c.pcommitForcing {
				c.pcommitForcing = false
				c.mc.ForceDrain(false)
			}

		case isa.TxBegin:
			c.curTx = e.op.Tx

		case isa.TxEnd:
			if !c.retireTxEnd(now, e.op.Tx) {
				if c.st != nil {
					c.st.TxEndWait++
				}
				return
			}

		case isa.LogLoad:
			// Data arrived; nothing else to do at retirement.

		case isa.LogFlush:
			// Log registers are recycled by the LogQ data copy (or at
			// dispatch for filtered pairs); nothing to do here.

		case isa.LogSave:
			if !c.retireLogSave(now) {
				return
			}
		}

		if e.op.Kind == isa.Ld || e.op.Kind == isa.LockAcq || e.op.Kind == isa.LogLoad {
			c.loads--
		}
		if c.st != nil {
			c.st.Retired++
			if e.op.Kind == isa.St {
				c.st.Stores++
			}
		}
		c.robPop()
	}
}

// persistComplete reports whether all older stores have drained and all
// issued clwb/persist operations have been acknowledged (sfence's retire
// condition).
func (c *Core) persistComplete(now uint64) bool {
	if c.sbCount > 0 {
		return false
	}
	keep := c.persistAcks[:0]
	for _, a := range c.persistAcks {
		if a > now {
			keep = append(keep, a)
		}
	}
	c.persistAcks = keep
	return len(c.persistAcks) == 0
}

// retireLogSave implements the context-switch assist (§4.4): wait for the
// store buffer and LogQ to drain, then force the MC to write the current
// transaction's LPQ entries to NVM.
func (c *Core) retireLogSave(now uint64) bool {
	if c.sbCount > 0 || !c.logQEmpty() {
		return false
	}
	c.mc.DrainLog(now, c.id, c.curTx)
	c.llt.Clear()
	return true
}

// ------------------------------------------------------------ store buffer

// drainStoreBuffer releases the store-buffer head to the cache, one entry
// per cycle, honoring the Proteus ordering rule: a store whose log-from
// block has an unacknowledged log-flush in the LogQ is held (§4.2).
func (c *Core) drainStoreBuffer(now uint64) {
	if c.sbCount == 0 || c.sbBusyUntil > now {
		return
	}
	e := *c.sbAt(0)
	switch e.kind {
	case sbStore:
		if c.mode == ModeProteus && e.tx != 0 && isa.IsPersistentAddr(e.addr) {
			if c.logBlocked(e.addr) {
				return
			}
		}
		var buf [8]byte
		n := e.size
		if n > 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			buf[i] = byte(e.val >> (8 * i))
		}
		if _, ok := c.hier.Store(now, e.addr, buf[:n]); !ok {
			return // retry next cycle
		}
		c.sbBusyUntil = now + 1
	case sbClwb:
		done, _, ok := c.hier.Clwb(now, e.addr)
		if !ok {
			if c.st != nil {
				c.st.SBWPQBlocked++
			}
			return
		}
		c.persistAcks = append(c.persistAcks, done)
		c.sbBusyUntil = now + 1
	}
	c.sbPop()
	c.stores--
}

// logBlocked reports whether an unacknowledged log-flush covers the
// 32-byte block the store touches.
func (c *Core) logBlocked(addr uint64) bool {
	b := isa.LogBlockAddr(addr)
	for i := range c.logQ {
		q := &c.logQ[i]
		if q.valid && q.logFrom == b {
			return true
		}
	}
	return false
}

// recentLoad is one slot in the pointer-chase recency window.
type recentLoad struct {
	line uint64
}
