package cpu_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
)

func run(t *testing.T, scheme core.Scheme, cfg config.Config, ops []isa.Op) (*stats.Report, *core.System) {
	t.Helper()
	tr := &isa.Trace{Ops: ops}
	sys, err := core.NewSystem(cfg, scheme, []*isa.Trace{tr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return rep, sys
}

func oneCore() config.Config {
	cfg := config.Default()
	cfg.Cores = 1
	return cfg
}

var heapLine = uint64(isa.HeapBase + 4096)

// TestSfenceWaitsForClwb: a store+clwb+sfence sequence must take at least
// the round trip to the memory controller; without the sfence it retires
// quickly.
func TestSfenceWaitsForClwb(t *testing.T) {
	cfg := oneCore()
	withFence := []isa.Op{
		{Kind: isa.St, Addr: heapLine, Size: 8, Val: 1},
		{Kind: isa.Clwb, Addr: heapLine},
		{Kind: isa.Sfence},
		{Kind: isa.Alu, Val: 1},
	}
	withoutFence := []isa.Op{
		{Kind: isa.St, Addr: heapLine, Size: 8, Val: 1},
		{Kind: isa.Clwb, Addr: heapLine},
		{Kind: isa.Alu, Val: 1},
	}
	rf, _ := run(t, core.PMEM, cfg, withFence)
	rn, _ := run(t, core.PMEM, cfg, withoutFence)
	if rf.Cycles <= rn.Cycles {
		t.Fatalf("sfence free: %d vs %d cycles", rf.Cycles, rn.Cycles)
	}
	if rf.CoreStat[0].Sfences != 1 || rf.CoreStat[0].Clwbs != 1 {
		t.Fatalf("counters: %d sfences, %d clwbs", rf.CoreStat[0].Sfences, rf.CoreStat[0].Clwbs)
	}
}

// TestPcommitWaitsForNVM: pcommit must be much more expensive than sfence
// alone (it waits for the WPQ to drain into slow NVM).
func TestPcommitWaitsForNVM(t *testing.T) {
	cfg := oneCore()
	base := []isa.Op{
		{Kind: isa.St, Addr: heapLine, Size: 8, Val: 1},
		{Kind: isa.Clwb, Addr: heapLine},
		{Kind: isa.Sfence},
	}
	withPc := append(append([]isa.Op{}, base...), isa.Op{Kind: isa.Pcommit})
	rb, _ := run(t, core.PMEMPcommit, cfg, base)
	rp, _ := run(t, core.PMEMPcommit, cfg, withPc)
	if rp.Cycles < rb.Cycles+100 {
		t.Fatalf("pcommit too cheap: %d vs %d", rp.Cycles, rb.Cycles)
	}
}

// txOps builds a minimal hardware-logging transaction writing n distinct
// lines.
func txOps(scheme core.Scheme, n int) []isa.Op {
	var ops []isa.Op
	ops = append(ops, isa.Op{Kind: isa.TxBegin, Tx: 1})
	for i := 0; i < n; i++ {
		addr := heapLine + uint64(i)*isa.LineSize
		if scheme == core.Proteus || scheme == core.ProteusNoLWR {
			block := isa.LogBlockAddr(addr)
			ops = append(ops,
				isa.Op{Kind: isa.LogLoad, Size: isa.LogBlockSize, Tx: 1, Addr: block},
				isa.Op{Kind: isa.LogFlush, Size: isa.LogBlockSize, Tx: 1, Addr: block})
		}
		ops = append(ops, isa.Op{Kind: isa.St, Addr: addr, Size: 8, Val: uint64(i) + 100, Tx: 1})
	}
	ops = append(ops, isa.Op{Kind: isa.TxEnd, Tx: 1})
	return ops
}

// TestProteusTransactionDurable: after tx-end retires, the transaction's
// data must be in the persistency domain (WPQ or NVM), and the LPQ entries
// dropped.
func TestProteusTransactionDurable(t *testing.T) {
	cfg := oneCore()
	rep, sys := run(t, core.Proteus, cfg, txOps(core.Proteus, 3))
	img := sys.CrashImage()
	for i := 0; i < 3; i++ {
		addr := heapLine + uint64(i)*isa.LineSize
		if got := img.ReadUint64(addr); got != uint64(i)+100 {
			t.Fatalf("line %d: %#x not durable (got %d)", i, addr, got)
		}
	}
	if rep.MemStat.LPQDropped == 0 {
		t.Fatal("no LPQ entries dropped: log write removal inactive")
	}
	if got := len(sys.Commits()[0]); got != 1 {
		t.Fatalf("%d commits", got)
	}
}

// TestProteusLLTFilters: two stores to the same 32-byte block log once.
func TestProteusLLTFilters(t *testing.T) {
	cfg := oneCore()
	block := isa.LogBlockAddr(heapLine)
	ops := []isa.Op{
		{Kind: isa.TxBegin, Tx: 1},
		{Kind: isa.LogLoad, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.LogFlush, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.St, Addr: heapLine, Size: 8, Val: 1, Tx: 1},
		{Kind: isa.LogLoad, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.LogFlush, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.St, Addr: heapLine + 8, Size: 8, Val: 2, Tx: 1},
		{Kind: isa.TxEnd, Tx: 1},
	}
	rep, _ := run(t, core.Proteus, cfg, ops)
	c := rep.CoreStat[0]
	if c.LLTHits != 1 || c.LLTMisses != 1 {
		t.Fatalf("LLT hits/misses: %d/%d", c.LLTHits, c.LLTMisses)
	}
	if c.LogFlushes != 1 {
		t.Fatalf("log flushes %d, want 1 (second filtered)", c.LogFlushes)
	}
}

// TestProteusLLTClearedAtTxEnd: the same block logged in two transactions
// creates two log entries (the LLT is cleared at tx-end).
func TestProteusLLTClearedAtTxEnd(t *testing.T) {
	cfg := oneCore()
	block := isa.LogBlockAddr(heapLine)
	one := func(tx uint32) []isa.Op {
		return []isa.Op{
			{Kind: isa.TxBegin, Tx: tx},
			{Kind: isa.LogLoad, Size: 32, Tx: tx, Addr: block},
			{Kind: isa.LogFlush, Size: 32, Tx: tx, Addr: block},
			{Kind: isa.St, Addr: heapLine, Size: 8, Val: uint64(tx), Tx: tx},
			{Kind: isa.TxEnd, Tx: tx},
		}
	}
	ops := append(one(1), one(2)...)
	rep, _ := run(t, core.Proteus, cfg, ops)
	if got := rep.CoreStat[0].LogFlushes; got != 2 {
		t.Fatalf("log flushes %d, want 2", got)
	}
	if got := rep.CoreStat[0].LLTMisses; got != 2 {
		t.Fatalf("LLT misses %d, want 2 (cleared between txns)", got)
	}
}

// TestATOMDelaysStores: ATOM's transactional stores wait for log acks;
// the same trace under nolog semantics (plain mode) retires faster.
func TestATOMDelaysStores(t *testing.T) {
	cfg := oneCore()
	ops := txOps(core.ATOM, 8)
	ra, _ := run(t, core.ATOM, cfg, ops)
	rp, _ := run(t, core.PMEMNoLog, cfg, ops) // plain mode: no hardware logging
	if ra.Cycles <= rp.Cycles {
		t.Fatalf("ATOM (%d) not slower than unlogged (%d)", ra.Cycles, rp.Cycles)
	}
	if ra.MemStat.Writes[stats.WriteLog] == 0 {
		t.Fatal("ATOM produced no log writes")
	}
	if ra.MemStat.Writes[stats.WriteTruncate] == 0 && ra.MemStat.Writes[stats.WriteLog] > 0 {
		// Truncation may be fully cancelled in the WPQ for a tiny run;
		// at least the commit must have happened.
		if len(raCommits(t, cfg, ops)) != 1 {
			t.Fatal("ATOM transaction did not commit")
		}
	}
}

func raCommits(t *testing.T, cfg config.Config, ops []isa.Op) []interface{} {
	t.Helper()
	_, sys := run(t, core.ATOM, cfg, ops)
	cs := sys.Commits()[0]
	out := make([]interface{}, len(cs))
	for i := range cs {
		out[i] = cs[i]
	}
	return out
}

// TestLogQSizeOneStillCorrect: a LogQ of one entry serializes log flushes
// but must not deadlock or drop entries.
func TestLogQSizeOneStillCorrect(t *testing.T) {
	cfg := oneCore()
	cfg.Proteus.LogQ = 1
	rep, sys := run(t, core.Proteus, cfg, txOps(core.Proteus, 6))
	if got := len(sys.Commits()[0]); got != 1 {
		t.Fatalf("%d commits", got)
	}
	if rep.CoreStat[0].StallCycles[stats.StallLogQ] == 0 {
		t.Fatal("LogQ=1 never stalled dispatch")
	}
	big := oneCore()
	rep2, _ := run(t, core.Proteus, big, txOps(core.Proteus, 6))
	if rep.Cycles < rep2.Cycles {
		t.Fatalf("LogQ=1 (%d) faster than LogQ=16 (%d)", rep.Cycles, rep2.Cycles)
	}
}

// TestProteusNoLWRWritesLogToNVM: without log write removal, log entries
// reach NVM.
func TestProteusNoLWRWritesLogToNVM(t *testing.T) {
	cfg := oneCore()
	r1, _ := run(t, core.ProteusNoLWR, cfg, txOps(core.ProteusNoLWR, 4))
	r2, _ := run(t, core.Proteus, cfg, txOps(core.Proteus, 4))
	if r1.MemStat.Writes[stats.WriteLog] == 0 {
		t.Fatal("NoLWR produced no NVM log writes")
	}
	if r2.MemStat.Writes[stats.WriteLog] >= r1.MemStat.Writes[stats.WriteLog] {
		t.Fatalf("LWR did not reduce log writes: %d vs %d",
			r2.MemStat.Writes[stats.WriteLog], r1.MemStat.Writes[stats.WriteLog])
	}
}

// TestLockOpsExecute: lock acquire/release complete and are timed.
func TestLockOpsExecute(t *testing.T) {
	cfg := oneCore()
	lock, _ := isa.VolatileWindow(0)
	ops := []isa.Op{
		{Kind: isa.LockAcq, Addr: lock, Size: 8},
		{Kind: isa.Alu, Val: 3},
		{Kind: isa.LockRel, Addr: lock, Size: 8},
	}
	rep, _ := run(t, core.PMEM, cfg, ops)
	if rep.TotalRetired() != 3 {
		t.Fatalf("retired %d", rep.TotalRetired())
	}
}

// TestEmptyTransaction: tx-begin immediately followed by tx-end commits
// without log activity.
func TestEmptyTransaction(t *testing.T) {
	cfg := oneCore()
	ops := []isa.Op{{Kind: isa.TxBegin, Tx: 1}, {Kind: isa.TxEnd, Tx: 1}}
	for _, s := range []core.Scheme{core.ATOM, core.Proteus} {
		rep, sys := run(t, s, cfg, ops)
		if len(sys.Commits()[0]) != 1 {
			t.Fatalf("%v: empty txn did not commit", s)
		}
		if rep.MemStat.NVMWrites() != 0 {
			t.Fatalf("%v: empty txn wrote %d lines to NVM", s, rep.MemStat.NVMWrites())
		}
	}
}

// TestLogSave drains the LPQ to NVM (context switch, §4.4).
func TestLogSave(t *testing.T) {
	cfg := oneCore()
	block := isa.LogBlockAddr(heapLine)
	ops := []isa.Op{
		{Kind: isa.TxBegin, Tx: 1},
		{Kind: isa.LogLoad, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.LogFlush, Size: 32, Tx: 1, Addr: block},
		{Kind: isa.St, Addr: heapLine, Size: 8, Val: 7, Tx: 1},
		{Kind: isa.LogSave, Tx: 1},
		{Kind: isa.TxEnd, Tx: 1},
	}
	rep, _ := run(t, core.Proteus, cfg, ops)
	if rep.MemStat.LPQDrained == 0 {
		t.Fatal("log-save drained nothing to NVM")
	}
}

// TestROBPressure: a long-latency chained load followed by a large ALU
// stream must fill the ROB and stall dispatch.
func TestROBPressure(t *testing.T) {
	cfg := oneCore()
	ops := []isa.Op{
		{Kind: isa.Ld, Addr: heapLine, Size: 8},         // NVM miss
		{Kind: isa.Ld, Addr: heapLine + 1<<20, Size: 8}, // chained miss
		{Kind: isa.Ld, Addr: heapLine + 2<<20, Size: 8}, // chained miss
	}
	// Hundreds of single-unit ops pile up behind the stalled head.
	for i := 0; i < cfg.Core.ROB*2; i++ {
		ops = append(ops, isa.Op{Kind: isa.Alu, Val: 1})
	}
	rep, _ := run(t, core.PMEM, cfg, ops)
	if rep.CoreStat[0].StallCycles[stats.StallROB] == 0 {
		t.Fatal("ROB never filled")
	}
}

// TestLoadQPressure: more outstanding chained loads than LoadQ entries.
func TestLoadQPressure(t *testing.T) {
	cfg := oneCore()
	var ops []isa.Op
	for i := 0; i < cfg.Core.LoadQ+16; i++ {
		ops = append(ops, isa.Op{Kind: isa.Ld, Addr: heapLine + uint64(i)<<16, Size: 8})
	}
	rep, _ := run(t, core.PMEM, cfg, ops)
	if rep.CoreStat[0].StallCycles[stats.StallLoadQ] == 0 {
		t.Fatal("LoadQ never filled")
	}
}

// TestStoreQPressure: a burst of stores beyond StoreQ capacity behind a
// store-buffer drain bottleneck.
func TestStoreQPressure(t *testing.T) {
	cfg := oneCore()
	var ops []isa.Op
	for i := 0; i < cfg.Core.StoreQ*3; i++ {
		ops = append(ops, isa.Op{Kind: isa.St, Addr: heapLine + uint64(i)<<16, Size: 8, Val: 1})
	}
	rep, _ := run(t, core.PMEM, cfg, ops)
	if rep.CoreStat[0].StallCycles[stats.StallStoreQ] == 0 {
		t.Fatal("StoreQ never filled")
	}
}

// TestLogRegPressure: more outstanding log pairs than log registers, with
// slow log-loads, must stall on LR availability at least transiently.
func TestLogRegPressure(t *testing.T) {
	cfg := oneCore()
	cfg.Proteus.LogQ = 64 // don't stall on LogQ first
	var ops []isa.Op
	ops = append(ops, isa.Op{Kind: isa.TxBegin, Tx: 1})
	for i := 0; i < 32; i++ {
		block := isa.LogBlockAddr(heapLine + uint64(i)<<16) // all LLT misses, NVM misses
		ops = append(ops,
			isa.Op{Kind: isa.LogLoad, Size: 32, Tx: 1, Addr: block},
			isa.Op{Kind: isa.LogFlush, Size: 32, Tx: 1, Addr: block},
			isa.Op{Kind: isa.St, Addr: block, Size: 8, Val: 1, Tx: 1})
	}
	ops = append(ops, isa.Op{Kind: isa.TxEnd, Tx: 1})
	rep, _ := run(t, core.Proteus, cfg, ops)
	c := rep.CoreStat[0]
	if c.StallCycles[stats.StallLogReg]+c.StallCycles[stats.StallLogQ] == 0 {
		t.Fatal("log structures never pressured dispatch")
	}
	if c.LogFlushes != 32 {
		t.Fatalf("flushes %d", c.LogFlushes)
	}
}
