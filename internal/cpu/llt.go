package cpu

import "repro/internal/isa"

// llt is the Log Lookup Table (§4.2): a small set-associative table of the
// last few log-from addresses in the current transaction. A hit means the
// 32-byte block was already logged this transaction, so the log-load and
// log-flush complete immediately and no log entry is created. It is
// cleared at tx-end and on context switches.
type llt struct {
	sets [][]lltWay
	mask uint64
}

type lltWay struct {
	tag   uint64
	valid bool
	lru   uint64
}

func newLLT(entries, ways int) *llt {
	n := entries / ways
	if n < 1 {
		n = 1
	}
	sets := make([][]lltWay, n)
	for i := range sets {
		sets[i] = make([]lltWay, ways)
	}
	return &llt{sets: sets, mask: uint64(n - 1)}
}

// LookupInsert checks block (a 32-byte-aligned log-from address) and
// returns whether it was present. On a miss the block is inserted,
// replacing the LRU way.
func (l *llt) LookupInsert(block, now uint64) bool {
	s := l.sets[(block/isa.LogBlockSize)&l.mask]
	for i := range s {
		if s[i].valid && s[i].tag == block {
			s[i].lru = now
			return true
		}
	}
	victim := &s[0]
	for i := range s {
		if !s[i].valid {
			victim = &s[i]
			break
		}
		if s[i].lru < victim.lru {
			victim = &s[i]
		}
	}
	*victim = lltWay{tag: block, valid: true, lru: now}
	return false
}

// Clear invalidates the whole table (tx-end, context switch).
func (l *llt) Clear() {
	for _, s := range l.sets {
		for i := range s {
			s[i] = lltWay{}
		}
	}
}
