package cpu

import "repro/internal/isa"

// never is the NextEvent result for a finished (or fully MC-blocked) core.
const never = ^uint64(0)

// BusyHint cheaply reports that the core is certainly going to act next
// cycle: it is mid-ALU-burst or holds refused memory ops that retry every
// cycle. The fast stepper uses it to skip the full NextEvent analysis.
func (c *Core) BusyHint() bool {
	return !c.finished && (c.aluLeft > 0 || c.unissued > 0)
}

// ProgressSig mixes the core's cheap progress indicators into a hash. The
// fast stepper only attempts a fast-forward when the signature did not
// change across a tick; a collision is harmless (NextEvent is the oracle,
// the signature is only a gate), so the hash need not be strong.
func (c *Core) ProgressSig() uint64 {
	const m = 0x9E3779B97F4A7C15
	h := uint64(c.pc)
	h = h*m + uint64(c.robCount)
	h = h*m + uint64(c.sbCount)
	h = h*m + c.aluLeft
	h = h*m + uint64(c.loads)<<16 + uint64(c.stores)
	h = h*m + uint64(len(c.atomQ))<<16 + uint64(len(c.txs))<<8 + uint64(c.txEndStage)
	h = h*m + uint64(c.lqCount)<<8 + uint64(len(c.persistAcks))
	h = h*m + uint64(c.unissued)
	if c.st != nil {
		h = h*m + c.st.Retired
	}
	return h
}

// NextEvent returns the next cycle strictly after now at which the core
// can change state, assuming no tick happens in between. It returns 0 when
// the core may act on the very next cycle ("active" — including every
// retry path with observable side effects, such as stall counters), and
// never when the core is finished or waiting purely on the memory
// controller (whose own NextEvent then supplies the wake).
//
// The contract is one-sided: returning 0 is always sound (the caller just
// keeps ticking cycle by cycle); a wake later than the true next state
// change would corrupt the simulation, so every blocked condition below
// either maps to a concrete timestamp the blocking event carries or
// conservatively returns 0.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.finished {
		return never
	}
	if c.aluLeft > 0 || c.unissued > 0 {
		return 0
	}
	wake := never
	upd := func(t uint64) {
		if t < wake {
			wake = t
		}
	}

	// LogQ entries: waiting on log-register data (lr.doneAt), retrying a
	// refused WriteLine (active), or waiting for the MC ack (ackAt).
	if c.lqCount > 0 {
		for i := range c.logQ {
			q := &c.logQ[i]
			if !q.valid {
				continue
			}
			if !q.hasData {
				lr := &c.lr[q.lr]
				if !lr.busy || !lr.issued || lr.doneAt <= now {
					return 0
				}
				upd(lr.doneAt)
				continue
			}
			if !q.issued || q.ackAt <= now {
				return 0
			}
			upd(q.ackAt)
		}
	}

	// ATOM request queue. Sent requests form a prefix; the head's ack pops
	// the queue. An unsent request inside the in-flight window is gated
	// only on WPQ space, which another component can free any cycle.
	if len(c.atomQ) > 0 {
		head := c.atomQ[0]
		if !head.sent {
			return 0
		}
		if head.ackAt <= now {
			return 0
		}
		upd(head.ackAt)
		limit := c.cfg.ATOM.InFlight
		if limit < 1 {
			limit = 1
		}
		sent := 0
		for _, r := range c.atomQ {
			if !r.sent {
				break
			}
			sent++
		}
		if sent < len(c.atomQ) && sent < limit {
			return 0
		}
	}

	// Store buffer: throttled by sbBusyUntil, blocked on a pending
	// log-flush (covered by the LogQ wakes above), or ready to attempt a
	// drain — attempts have side effects even when refused, so they count
	// as activity.
	if c.sbCount > 0 {
		if c.sbBusyUntil > now {
			upd(c.sbBusyUntil)
		} else {
			e := c.sbAt(0)
			blocked := e.kind == sbStore && c.mode == ModeProteus &&
				e.tx != 0 && isa.IsPersistentAddr(e.addr) && c.logBlocked(e.addr)
			if !blocked {
				return 0
			}
		}
	}

	// Retirement: the head entry's completion time, or the event that
	// unblocks a completed-but-held head.
	if c.robCount > 0 {
		e := c.robAt(0)
		if e.doneAt > now {
			upd(e.doneAt)
		} else if w := c.retireWake(now, e); w == 0 {
			return 0
		} else if w != never {
			upd(w)
		}
	}

	// Dispatch: the front end acts unless the resource its next op needs
	// is exhausted, in which case the event freeing it is already covered
	// by the retirement / store-buffer / LogQ wakes above.
	if c.pc < len(c.trace) && c.robCount < len(c.rob) {
		switch op := c.trace[c.pc]; op.Kind {
		case isa.Ld, isa.LockAcq:
			if c.loads < c.cfg.Core.LoadQ {
				return 0
			}
		case isa.LogLoad:
			if c.loads < c.cfg.Core.LoadQ {
				if c.mode != ModeProteus || c.freeLR() >= 0 {
					return 0
				}
				// All log registers busy: each is awaiting its LogQ data
				// copy (every preceding log-flush already dispatched), so
				// the LogQ wakes cover the release.
			}
		case isa.St, isa.LockRel, isa.Clwb:
			if c.stores < c.cfg.Core.StoreQ {
				return 0
			}
		case isa.LogFlush:
			if c.mode != ModeProteus || len(c.lrFIFO) == 0 ||
				c.lr[c.lrFIFO[0]].filtered || c.lqCount < len(c.logQ) {
				return 0
			}
			// LogQ full: entry wakes above cover the free-up.
		default:
			// Alu, TxBegin, TxEnd, Sfence, Pcommit, LogSave, Nop dispatch
			// without extra resources.
			return 0
		}
	}

	return wake
}

// retireWake analyzes a completed head-of-ROB entry that retire(now) left
// in place: 0 if the retire attempt itself has side effects or could
// succeed next cycle, a timestamp if the blocking event carries one, and
// never if an earlier section (store buffer, LogQ, ATOM queue) or the
// memory controller already covers the unblocking event.
func (c *Core) retireWake(now uint64, e *robEntry) uint64 {
	switch e.op.Kind {
	case isa.St, isa.LockRel:
		if c.sbCount >= c.cfg.Core.StoreBuf {
			return never // store-buffer wake covers
		}
		if c.mode == ModeATOM && e.op.Kind == isa.St && e.op.Tx != 0 &&
			isa.IsPersistentAddr(e.op.Addr) &&
			!c.atomAcked(e.op.Tx, isa.LineAddr(e.op.Addr), now) {
			if len(c.atomQ) == 0 {
				return 0 // defensive: unacked implies a queued request
			}
			return never // ATOM queue wake covers
		}
		return 0
	case isa.Clwb:
		if c.sbCount >= c.cfg.Core.StoreBuf {
			return never
		}
		return 0
	case isa.Sfence:
		return c.persistWake(now)
	case isa.Pcommit:
		if !c.pcommitForcing {
			return c.persistWake(now)
		}
		if c.mc.WPQDrainedThrough(c.pcommitSeq) {
			return 0
		}
		// Not drained through: the WPQ holds an entry with seq <=
		// pcommitSeq, so the MC's NextEvent supplies the wake.
		return never
	case isa.TxEnd:
		return c.txEndWake(now, e.op.Tx)
	case isa.LogSave:
		if c.sbCount > 0 || c.lqCount > 0 {
			return never // store-buffer / LogQ wakes cover
		}
		return 0
	default:
		// Ld, LockAcq, LogLoad, LogFlush, TxBegin, Alu, Nop retire freely.
		return 0
	}
}

// persistWake is the sfence/pcommit-phase-1 wait: all acks expired (and
// the store buffer empty, covered elsewhere when not) unblocks it.
func (c *Core) persistWake(now uint64) uint64 {
	if c.sbCount > 0 {
		return never // store-buffer wake covers
	}
	m := uint64(0)
	for _, a := range c.persistAcks {
		if a > m {
			m = a
		}
	}
	if m <= now {
		return 0
	}
	return m
}

// txEndWake mirrors retireTxEnd's staged blocking conditions.
func (c *Core) txEndWake(now uint64, tx uint32) uint64 {
	if c.mode == ModePlain {
		return 0
	}
	t := c.rtx()
	if t == nil || t.tx != tx {
		return 0
	}
	switch c.txEndStage {
	case txEndIdle:
		if c.sbCount > 0 {
			return never // store-buffer wake covers
		}
		if c.mode == ModeProteus && !c.logQEmptyFor(tx) {
			return never // LogQ wakes cover
		}
		return 0
	case txEndWaitAcks:
		if c.txFlushMax > now {
			return c.txFlushMax
		}
		return 0
	default:
		// Flushing issues clwbs (or retries refused ones) every cycle;
		// finalize acts every cycle.
		return 0
	}
}
