package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

// freeLR returns a free log-register index, or -1 (a structural hazard
// that stalls dispatch, §3.2).
func (c *Core) freeLR() int {
	for i := range c.lr {
		if !c.lr[i].busy {
			return i
		}
	}
	return -1
}

// dispatchLogLoad enters a log-load into the pipeline. The LLT is checked
// here (the log-from address needs no register inputs in the modeled
// traces): on a hit, the log-load — and its paired log-flush — complete
// immediately and no log entry is created (§4.2).
//
// The pre-image is captured at dispatch with forwarding from older
// in-flight stores; at this point no younger op (in particular not the
// paired store) is in the ROB, so the captured bytes are exactly the
// pre-transaction value of the block.
func (c *Core) dispatchLogLoad(now uint64, op isa.Op, lri int) {
	block := isa.LogBlockAddr(op.Addr)
	hit := c.llt.LookupInsert(block, now)
	if c.st != nil {
		c.st.LogLoads++
		if hit {
			c.st.LLTHits++
		} else {
			c.st.LLTMisses++
		}
	}
	c.lr[lri] = lrSlot{busy: true, filtered: hit, addr: block}
	if !hit {
		c.forwardedPeek(block, isa.LogBlockSize, c.lr[lri].data[:])
	}
	c.lrFIFO = append(c.lrFIFO, lri)
	c.loads++
	e := c.robPush(robEntry{op: op, lr: lri, lqe: -1})
	if hit {
		e.issued = true
		e.doneAt = now + 1
		c.lr[lri].issued = true
		c.lr[lri].doneAt = now + 1
	} else {
		c.issueProteusLogLoad(now, e)
		if !e.issued {
			c.unissued++
		}
	}
}

// issueProteusLogLoad sends the 32-byte log read into the hierarchy. The
// data was already captured at dispatch; this models the read's timing.
func (c *Core) issueProteusLogLoad(now uint64, e *robEntry) {
	lr := &c.lr[e.lr]
	done, ok := c.hier.Load(now, lr.addr, isa.LogBlockSize, nil)
	if !ok {
		return
	}
	e.issued = true
	e.doneAt = done
	lr.issued = true
	lr.doneAt = done
}

// dispatchLogFlush enters a log-flush. A filtered flush (LLT hit on its
// log-load) completes immediately; otherwise a LogQ entry is required and
// dispatch stalls when none is free, which also guarantees the persist
// ordering against later same-address stores can be enforced (§4.2).
// The log-to address is assigned here, i.e. in program order across all
// log-flushes, so recovery can rely on the earliest entry per address
// being first in the log (§4.2).
func (c *Core) dispatchLogFlush(now uint64, op isa.Op) bool {
	if len(c.lrFIFO) == 0 {
		panic(fmt.Sprintf("cpu: core %d log-flush without preceding log-load at pc %d", c.id, c.pc))
	}
	lri := c.lrFIFO[0]
	if c.lr[lri].filtered {
		c.popLRFIFO()
		c.lr[lri] = lrSlot{} // recycle immediately; nothing to flush
		c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, filtered: true, lr: -1, lqe: -1})
		return true
	}
	slot := -1
	for i := range c.logQ {
		if !c.logQ[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		c.stall(stats.StallLogQ)
		return false
	}
	c.popLRFIFO()

	logTo := c.curlog
	c.curlog += isa.LineSize
	if c.curlog >= c.logEnd {
		c.curlog = c.logStart
	}
	t := c.dtx()
	if t != nil {
		t.logCount++
		t.lastLogTo = logTo
		if uint64(t.logCount)*isa.LineSize > c.logEnd-c.logStart {
			if c.st != nil {
				c.st.LogOverflow++
			}
		}
	}

	c.lqSeq++
	c.logQ[slot] = lqEntry{
		valid: true, lr: lri, logFrom: c.lr[lri].addr, logTo: logTo,
		tx: op.Tx, seq: c.lqSeq,
	}
	c.lqCount++
	if c.st != nil {
		c.st.LogFlushes++
	}
	c.robPush(robEntry{op: op, issued: true, doneAt: now + 1, lr: lri, lqe: slot, lqSeq: c.lqSeq})
	return true
}

// popLRFIFO removes the oldest pending log-load, keeping the slice's
// storage (its capacity is bounded by the log-register count).
func (c *Core) popLRFIFO() {
	copy(c.lrFIFO, c.lrFIFO[1:])
	c.lrFIFO = c.lrFIFO[:len(c.lrFIFO)-1]
}

// tickLogQ advances in-flight log flushes: copies log data out of ready
// log registers, sends flushes to the memory controller (concurrently —
// the LogQ hides the logging latency, §4.2), and frees entries when the
// controller acknowledges receipt.
//
// Flushes leave for the controller in sequence (program) order. A
// younger transaction's log-load can complete long before an older one's
// (its block is already cached by the older transaction's own log-load),
// and letting its entry become durable first would leave a crash window
// where the log holds an undo entry whose pre-image is the *volatile*
// output of an earlier, unlogged transaction — recovery would then
// "restore" a state that never existed. In-order departure keeps the
// durable log a program-order prefix, which is exactly the invariant the
// §4.3 descending-chain recovery walk relies on.
func (c *Core) tickLogQ(now uint64) {
	if c.lqCount == 0 {
		return
	}
	for i := range c.logQ {
		q := &c.logQ[i]
		if !q.valid || q.hasData {
			continue
		}
		lr := &c.lr[q.lr]
		if lr.busy && lr.issued && lr.doneAt <= now {
			q.data = lr.data
			q.hasData = true
			// The register is recycled as soon as the LogQ owns the
			// data — LRs "can be recycled quickly", which is why
			// eight suffice (§4.2).
			*lr = lrSlot{}
		}
	}
	for {
		var next *lqEntry
		for i := range c.logQ {
			q := &c.logQ[i]
			if q.valid && !q.issued && (next == nil || q.seq < next.seq) {
				next = q
			}
		}
		// The oldest unissued flush gates all younger ones, whether it is
		// waiting on its log-load or on WPQ backpressure.
		if next == nil || !next.hasData {
			break
		}
		arrive := now + c.mcTrip
		line := logfmt.EncodeProteus(logfmt.ProteusEntry{Data: next.data, From: next.logFrom, Tx: next.tx, Seq: next.seq})
		if c.lwr {
			c.mc.LogFlush(arrive, memctrl.LogEntry{
				Core: c.id, Tx: next.tx, LogTo: next.logTo, Data: line,
			})
		} else if !c.mc.WriteLine(arrive, next.logTo, line, stats.WriteLog) {
			break // WPQ full; retry next cycle
		}
		next.issued = true
		next.ackAt = arrive + 1 + c.mcTrip
	}
	for i := range c.logQ {
		q := &c.logQ[i]
		if q.valid && q.issued && q.ackAt <= now {
			q.valid = false
			c.lqCount--
		}
	}
}
