package cpu

// tx-end stages for the hardware-logging modes.
const (
	txEndIdle = iota
	txEndFlushing
	txEndWaitAcks
	txEndFinalize
)

// retireTxEnd performs the tx-end actions and reports whether the
// instruction can retire this cycle.
//
// In ModePlain the software already persisted everything (Figure 2's
// steps), so tx-end is only the commit marker.
//
// In the hardware modes, tx-end makes the transaction durable: it waits
// for the store buffer and the transaction's log operations to drain, then
// flushes the transaction's dirty data lines into the WPQ (which is inside
// the persistency domain under ADR: "when a transaction ends, we can be
// sure that all of its data updates are durable, either in the NVMM or in
// the WPQ", §3.1). Then ATOM truncates its log (§4.3) while Proteus marks
// the last log entry as the transaction end and flash-clears the rest of
// the transaction's LPQ entries (§4.3).
func (c *Core) retireTxEnd(now uint64, tx uint32) bool {
	t := c.rtx()
	if c.mode == ModePlain {
		c.Commits = append(c.Commits, Commit{Tx: tx, Cycle: now})
		if t != nil && t.tx == tx {
			c.popTx()
		}
		c.curTx = 0
		return true
	}
	if t == nil || t.tx != tx {
		// No bookkeeping (e.g. a trace without tx-begin); just commit.
		c.Commits = append(c.Commits, Commit{Tx: tx, Cycle: now})
		c.curTx = 0
		return true
	}

	switch c.txEndStage {
	case txEndIdle:
		if c.sbCount > 0 {
			return false
		}
		if c.mode == ModeProteus && !c.logQEmptyFor(tx) {
			return false
		}
		// Collect the transaction's still-dirty data lines.
		c.txFlushList = c.txFlushList[:0]
		for _, line := range t.dirtyList {
			if c.hier.IsDirty(line) {
				c.txFlushList = append(c.txFlushList, line)
			}
		}
		c.txFlushIdx = 0
		c.txFlushMax = 0
		c.txMarkDone = false
		c.txEndStage = txEndFlushing
		fallthrough

	case txEndFlushing:
		for n := 0; n < 2 && c.txFlushIdx < len(c.txFlushList); n++ {
			done, _, ok := c.hier.Clwb(now, c.txFlushList[c.txFlushIdx])
			if !ok {
				return false // WPQ backpressure; retry
			}
			if done > c.txFlushMax {
				c.txFlushMax = done
			}
			c.txFlushIdx++
		}
		if c.txFlushIdx < len(c.txFlushList) {
			return false
		}
		c.txEndStage = txEndWaitAcks
		fallthrough

	case txEndWaitAcks:
		if c.txFlushMax > now {
			return false
		}
		c.txEndStage = txEndFinalize
		fallthrough

	default: // txEndFinalize
		switch c.mode {
		case ModeProteus:
			if t.logCount > 0 && !c.txMarkDone {
				if !c.mc.MarkCommit(now, c.id, tx, t.lastLogTo) {
					return false // WPQ full while rewriting a drained entry
				}
				c.txMarkDone = true
			}
			if c.lwr {
				c.mc.FlashClear(c.id, tx)
			}
		case ModeATOM:
			c.mc.AtomTxEnd(now, c.id, tx, t.atomEntries, c.cfg.ATOM.MCTrackEntries)
		}
		c.Commits = append(c.Commits, Commit{Tx: tx, Cycle: now})
		if c.st != nil {
			c.st.TxCommitted++
		}
		c.popTx()
		c.curTx = 0
		c.txEndStage = txEndIdle
		return true
	}
}
