package cpu

// u64set is a reusable sorted-slice set of uint64 keys. Transactions track
// their dirty lines with it instead of a freshly allocated map: reset
// keeps the backing array, so steady-state transaction turnover performs
// no heap allocations. Membership is a binary search over a slice that is
// small (a transaction's working set) and cache-resident.
type u64set struct {
	ks []uint64
}

// search returns the insertion index of v in the sorted slice ks.
func search(ks []uint64, v uint64) int {
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// add inserts v and reports whether it was absent.
func (s *u64set) add(v uint64) bool {
	i := search(s.ks, v)
	if i < len(s.ks) && s.ks[i] == v {
		return false
	}
	s.ks = append(s.ks, 0)
	copy(s.ks[i+1:], s.ks[i:])
	s.ks[i] = v
	return true
}

// contains reports membership.
func (s *u64set) contains(v uint64) bool {
	i := search(s.ks, v)
	return i < len(s.ks) && s.ks[i] == v
}

// reset empties the set, keeping its storage.
func (s *u64set) reset() { s.ks = s.ks[:0] }

// u64kv is a reusable sorted key→int map with the same storage-retaining
// properties as u64set (the ATOM logged-line index).
type u64kv struct {
	ks []uint64
	vs []int
}

// get returns the value for k.
func (m *u64kv) get(k uint64) (int, bool) {
	i := search(m.ks, k)
	if i < len(m.ks) && m.ks[i] == k {
		return m.vs[i], true
	}
	return 0, false
}

// put inserts or overwrites k.
func (m *u64kv) put(k uint64, v int) {
	i := search(m.ks, k)
	if i < len(m.ks) && m.ks[i] == k {
		m.vs[i] = v
		return
	}
	m.ks = append(m.ks, 0)
	copy(m.ks[i+1:], m.ks[i:])
	m.ks[i] = k
	m.vs = append(m.vs, 0)
	copy(m.vs[i+1:], m.vs[i:])
	m.vs[i] = v
}

// reset empties the map, keeping its storage.
func (m *u64kv) reset() {
	m.ks = m.ks[:0]
	m.vs = m.vs[:0]
}
