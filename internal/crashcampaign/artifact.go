package crashcampaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/nvm"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// ImageFileName is the serialized crash image inside an artifact dir.
const ImageFileName = "image.nvmimg"

// MetaFileName is the replay descriptor inside an artifact dir.
const MetaFileName = "meta.json"

// ArtifactMeta is everything needed to replay a minimized failure from
// scratch: the workload identity and parameters, the fault and its seed,
// the crash cycle, and the shrunk fault mask. proteus-recover's -campaign
// flag consumes it.
type ArtifactMeta struct {
	Bench             string          `json:"bench"`
	Scheme            string          `json:"scheme"`
	Params            workload.Params `json:"params"`
	ConfigFingerprint string          `json:"config_fingerprint"`
	CampaignSeed      int64           `json:"campaign_seed"`
	Fault             string          `json:"fault"`
	FaultSeed         uint64          `json:"fault_seed"`
	Cycle             uint64          `json:"cycle"`
	OriginalCycle     uint64          `json:"original_cycle"`
	Mask              []int           `json:"mask,omitempty"`
	Committed         []int           `json:"committed"`
	Outcome           Outcome         `json:"outcome"`
	Detail            string          `json:"detail,omitempty"`
	Image             string          `json:"image"`
}

// writeArtifact dumps the minimized failure as a reproducer directory and
// returns its path plus the ready-to-run replay command line.
func (tc *tupleCtx) writeArtifact(inj injection, orig InjectionResult, m *Minimized) (string, string, error) {
	sys, err := tc.newSystem()
	if err != nil {
		return "", "", err
	}
	stepTo(sys, inj.cycle)
	img := buildImage(sys, tc.threads, inj)
	committed := committedCounts(sys)

	name := fmt.Sprintf("%s-%s-%s-c%d",
		strings.ToLower(tc.bench.Abbrev()), sanitize(tc.scheme.String()), inj.fault, orig.Cycle)
	dir := filepath.Join(tc.camp.ArtifactDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("crashcampaign: artifact dir: %w", err)
	}

	f, err := os.Create(filepath.Join(dir, ImageFileName))
	if err != nil {
		return "", "", err
	}
	if err := img.Serialize(f); err != nil {
		f.Close()
		return "", "", err
	}
	if err := f.Close(); err != nil {
		return "", "", err
	}

	meta := ArtifactMeta{
		Bench:             tc.bench.Abbrev(),
		Scheme:            tc.scheme.String(),
		Params:            tc.camp.Params,
		ConfigFingerprint: tc.cfg.Fingerprint(),
		CampaignSeed:      tc.camp.Seed,
		Fault:             inj.fault.String(),
		FaultSeed:         inj.seed,
		Cycle:             inj.cycle,
		OriginalCycle:     orig.Cycle,
		Mask:              inj.mask,
		Committed:         committed,
		Outcome:           m.Outcome,
		Detail:            m.Detail,
		Image:             ImageFileName,
	}
	b, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return "", "", err
	}
	metaPath := filepath.Join(dir, MetaFileName)
	if err := os.WriteFile(metaPath, append(b, '\n'), 0o644); err != nil {
		return "", "", err
	}
	return dir, fmt.Sprintf("%s -campaign %s", tc.camp.RecoverCmd, metaPath), nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		case r == '+':
			return 'p'
		default:
			return '_'
		}
	}, strings.ToLower(s))
}

// LoadArtifact reads an artifact's replay descriptor.
func LoadArtifact(path string) (*ArtifactMeta, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m ArtifactMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("crashcampaign: parsing %s: %w", path, err)
	}
	return &m, nil
}

// ReplayResult is the rebuilt pre-recovery state of an artifact (or of a
// manual injection): the faulted crash image plus everything the caller
// needs to run recovery and verify it.
type ReplayResult struct {
	Image     *nvm.Store
	Committed []int
	Oracle    *recovery.Oracle
	Scheme    core.Scheme
	SW        bool
	Threads   int
}

// Replay re-runs the artifact's injection from scratch under sim (which
// should match the recorded config fingerprint; the caller is told if it
// does not) and returns the faulted image ready for recovery.
func (a *ArtifactMeta) Replay(ctx context.Context, sim config.Config) (*ReplayResult, error) {
	var kind workload.Kind
	found := false
	for _, k := range workload.Table2 {
		if strings.EqualFold(k.Abbrev(), a.Bench) {
			kind, found = k, true
		}
	}
	if !found {
		return nil, fmt.Errorf("crashcampaign: unknown benchmark %q", a.Bench)
	}
	scheme, err := SchemeByName(a.Scheme)
	if err != nil {
		return nil, err
	}
	fault, err := parseFault(a.Fault)
	if err != nil {
		return nil, err
	}
	sim.Cores = a.Params.Threads
	wl, err := workload.Build(kind, a.Params)
	if err != nil {
		return nil, err
	}
	traces, err := logging.Generate(wl, scheme, sim)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(sim, scheme, traces, wl.InitImage)
	if err != nil {
		return nil, err
	}
	stepTo(sys, a.Cycle)
	inj := injection{fault: fault, cycle: a.Cycle, seed: a.FaultSeed, mask: a.Mask}
	return &ReplayResult{
		Image:     buildImage(sys, sim.Cores, inj),
		Committed: committedCounts(sys),
		Oracle:    recovery.NewOracle(wl),
		Scheme:    scheme,
		SW:        scheme == core.PMEM || scheme == core.PMEMPcommit,
		Threads:   sim.Cores,
	}, nil
}

// SchemeByName resolves a scheme by its display name (case-insensitive).
func SchemeByName(name string) (core.Scheme, error) {
	for _, s := range core.Schemes {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("crashcampaign: unknown scheme %q", name)
}
