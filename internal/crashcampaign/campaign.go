package crashcampaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/logging"
	"repro/internal/nvm"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// chunkPoints is how many crash points one engine.Do slot walks with a
// single replayed System. The size is fixed (never derived from the
// worker count) so the chunk boundaries — and with them every simulation
// — are identical at any parallelism.
const chunkPoints = 8

// MinimizeMode selects which outcomes get minimized.
type MinimizeMode int

const (
	// MinimizeFailed (the default) minimizes OutcomeFailed injections:
	// expected-safe combinations that broke.
	MinimizeFailed MinimizeMode = iota
	// MinimizeAll also minimizes OutcomeVulnerable injections, turning
	// documented exposures into small reproducers too.
	MinimizeAll
	// MinimizeOff disables minimization.
	MinimizeOff
)

// Config describes a campaign.
type Config struct {
	// Benches and Schemes form the tuple matrix; empty defaults to the
	// Table 2 benchmarks × the failure-safe schemes.
	Benches []workload.Kind
	Schemes []core.Scheme
	// Params is the workload shape used for every benchmark.
	Params workload.Params
	// Sim is the machine configuration; Cores is overridden with
	// Params.Threads.
	Sim config.Config
	// Sweep is the number of systematically spaced crash points per tuple;
	// Rand adds seeded-random points on top.
	Sweep int
	Rand  int
	// Faults lists the fault models to inject at every point (FaultClean
	// is implied if absent).
	Faults []Fault
	// Seed drives crash-point choice and per-injection randomness.
	Seed int64
	// Minimize selects which outcomes are minimized.
	Minimize MinimizeMode
	// ArtifactDir, when set, receives one reproducer directory per
	// minimized failure.
	ArtifactDir string
	// Engine executes all simulation work: the full-length reference runs
	// (memoized jobs shared with any experiments on the same engine) and
	// the sweep chunks (bounded by the same worker pool).
	Engine *engine.Engine
	// RecoverCmd names the replay binary in generated repro command lines;
	// empty means "proteus-recover".
	RecoverCmd string
	// Stepper selects the cycle-advance strategy for the sweep systems
	// (the zero value is the event-driven fast stepper). The full-length
	// reference runs executed through Engine follow the engine's own
	// Stepper configuration instead.
	Stepper core.Stepper
}

// Normalize fills defaulted fields (benchmark matrix, fault list, sweep
// size, core count) exactly the way Run does. It is idempotent, and it is
// what makes a campaign's identity transportable: the cluster layer
// normalizes once on the coordinator and once per tuple on the workers,
// and both sides end up with the same Info and config fingerprint a local
// Run would produce.
func (c *Config) Normalize() { c.fill() }

func (c *Config) fill() {
	if len(c.Benches) == 0 {
		c.Benches = workload.Table2
	}
	if len(c.Schemes) == 0 {
		for _, s := range core.Schemes {
			if s.FailureSafe() {
				c.Schemes = append(c.Schemes, s)
			}
		}
	}
	if len(c.Faults) == 0 {
		c.Faults = []Fault{FaultClean}
	}
	if c.Sweep <= 0 && c.Rand <= 0 {
		c.Sweep = 16
	}
	if c.RecoverCmd == "" {
		c.RecoverCmd = "proteus-recover"
	}
	c.Sim.Cores = c.Params.Threads
}

// tupleCtx holds everything needed to replay one (bench, scheme) tuple to
// an arbitrary cycle. Traces and the workload are immutable during runs,
// so concurrent chunks share them and build private Systems.
type tupleCtx struct {
	camp    *Config
	bench   workload.Kind
	scheme  core.Scheme
	cfg     config.Config
	wl      *workload.Workload
	traces  []*isa.Trace
	oracle  *recovery.Oracle
	threads int
	sw      bool
	job     engine.Job
}

// newSystem builds a fresh machine for the tuple.
func (tc *tupleCtx) newSystem() (*core.System, error) {
	sys, err := core.NewSystem(tc.cfg, tc.scheme, tc.traces, tc.wl.InitImage)
	if err != nil {
		return nil, err
	}
	sys.SetStepper(tc.camp.Stepper)
	return sys, nil
}

// stepTo advances the system to the cycle (or the end of the run).
func stepTo(sys *core.System, cycle uint64) {
	if cycle > sys.Cycle() && !sys.Finished() {
		sys.Step(cycle - sys.Cycle())
	}
}

func committedCounts(sys *core.System) []int {
	commits := sys.Commits()
	counts := make([]int, len(commits))
	for i, cs := range commits {
		counts[i] = len(cs)
	}
	return counts
}

// classify runs recovery + oracle verification on the image and maps the
// result through the expectation matrix.
func (tc *tupleCtx) classify(img *nvm.Store, fault Fault, committed []int) (Outcome, string) {
	_, rerr := recovery.Recover(img, tc.scheme, tc.threads)
	if rerr != nil {
		if !recovery.IsDetectedCorruption(rerr) {
			return OutcomeFailed, "recovery error: " + rerr.Error()
		}
		if fault == FaultClean || expectSafe(tc.scheme, fault) {
			// Nominal operation (or a fault inside the scheme's
			// guarantees) must never leave a log recovery rejects.
			return OutcomeFailed, "corruption detected in expected-safe run: " + rerr.Error()
		}
		return OutcomeDetected, rerr.Error()
	}
	verify := tc.oracle.VerifyPrefix
	if tc.sw {
		verify = tc.oracle.VerifyPrefixSW
	}
	if _, verr := verify(img, committed); verr != nil {
		switch {
		case expectSafe(tc.scheme, fault):
			return OutcomeFailed, verr.Error()
		case fault == FaultCorrupt && tc.scheme.FailureSafe():
			// Recovery accepted a corrupted log and produced a wrong
			// state: the one outcome the integrity layer exists to
			// prevent.
			return OutcomeFailed, "silent corruption accepted: " + verr.Error()
		default:
			return OutcomeVulnerable, verr.Error()
		}
	}
	return OutcomeVerified, ""
}

// evaluateAt replays the tuple to the cycle and classifies one injection
// there. The minimizer's predicate.
func (tc *tupleCtx) evaluateAt(inj injection) (Outcome, string, error) {
	sys, err := tc.newSystem()
	if err != nil {
		return "", "", err
	}
	stepTo(sys, inj.cycle)
	out, detail := tc.classify(buildImage(sys, tc.threads, inj), inj.fault, committedCounts(sys))
	return out, detail, nil
}

// crashPoints computes the tuple's crash points: Sweep evenly spaced
// cycles plus Rand seeded-random ones, deduplicated and sorted.
func crashPoints(total uint64, sweep, rnd int, seed uint64) []uint64 {
	if total == 0 {
		return nil
	}
	seen := make(map[uint64]bool)
	var out []uint64
	add := func(p uint64) {
		if p > 0 && p <= total && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := 1; i <= sweep; i++ {
		add(total * uint64(i) / uint64(sweep+1))
	}
	for i := 0; i < rnd; i++ {
		add(1 + mix(seed, 0x5EED, uint64(i))%total)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run executes the campaign and assembles its deterministic report.
func Run(ctx context.Context, c Config) (*Report, error) {
	c.fill()
	if c.Engine == nil {
		return nil, fmt.Errorf("crashcampaign: Config.Engine is required")
	}

	type tupleSlot struct {
		rep *TupleReport
		err error
	}
	slots := make([]tupleSlot, len(c.Benches)*len(c.Schemes))
	var wg sync.WaitGroup
	for bi, bench := range c.Benches {
		for si, scheme := range c.Schemes {
			bi, si, bench, scheme := bi, si, bench, scheme
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep, err := runTuple(ctx, &c, bench, scheme)
				slots[bi*len(c.Schemes)+si] = tupleSlot{rep, err}
			}()
		}
	}
	wg.Wait()

	tuples := make([]*TupleReport, 0, len(slots))
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		tuples = append(tuples, s.rep)
	}
	return AssembleReport(c, tuples), nil
}

// AssembleReport builds the campaign report from per-tuple reports listed
// in c.Benches × c.Schemes matrix order. c must be normalized. It is the
// single assembly path for local and distributed campaigns: Run uses it
// after sweeping in-process, and the cluster coordinator uses it after
// gathering TupleReports from workers — which is what makes the two
// byte-identical.
func AssembleReport(c Config, tuples []*TupleReport) *Report {
	rep := &Report{
		Campaign: Info{
			Seed:              c.Seed,
			Sweep:             c.Sweep,
			Rand:              c.Rand,
			Params:            c.Params,
			ConfigFingerprint: c.Sim.Fingerprint(),
		},
	}
	for _, f := range c.Faults {
		rep.Campaign.Faults = append(rep.Campaign.Faults, f.String())
	}
	for _, tr := range tuples {
		rep.Tuples = append(rep.Tuples, *tr)
		rep.Totals.Tuples++
		rep.Totals.Injections += len(tr.Injections)
		rep.Totals.Verified += tr.Verified
		rep.Totals.Detected += tr.Detected
		rep.Totals.Vulnerable += tr.Vulnerable
		rep.Totals.Failed += tr.Failed
		for _, ir := range tr.Injections {
			if ir.Minimized != nil {
				rep.Totals.Minimized++
			}
		}
	}
	return rep
}

// RunTuple sweeps one (bench, scheme) pair of the campaign and returns
// its report — the unit of work a cluster worker executes. The config is
// normalized here, so a worker can hand a deserialized single-tuple
// Config straight in; Engine is required.
func RunTuple(ctx context.Context, c Config, bench workload.Kind, scheme core.Scheme) (*TupleReport, error) {
	c.fill()
	if c.Engine == nil {
		return nil, fmt.Errorf("crashcampaign: Config.Engine is required")
	}
	return runTuple(ctx, &c, bench, scheme)
}

// runTuple sweeps one (bench, scheme) pair.
func runTuple(ctx context.Context, c *Config, bench workload.Kind, scheme core.Scheme) (*TupleReport, error) {
	eng := c.Engine
	wl, err := eng.Workload(ctx, bench, c.Params)
	if err != nil {
		return nil, fmt.Errorf("crashcampaign: %v: %w", bench, err)
	}
	job := engine.Job{Kind: bench, Params: c.Params, Scheme: scheme, Config: c.Sim}
	full, err := eng.Run(ctx, job)
	if err != nil {
		return nil, fmt.Errorf("crashcampaign: %v/%v reference run: %w", bench, scheme, err)
	}
	traces, err := logging.Generate(wl, scheme, c.Sim)
	if err != nil {
		return nil, fmt.Errorf("crashcampaign: %v/%v: %w", bench, scheme, err)
	}
	tc := &tupleCtx{
		camp: c, bench: bench, scheme: scheme, cfg: c.Sim,
		wl: wl, traces: traces, oracle: recovery.NewOracle(wl),
		threads: c.Sim.Cores,
		sw:      scheme == core.PMEM || scheme == core.PMEMPcommit,
		job:     job,
	}

	total := full.Report.Cycles
	points := crashPoints(total, c.Sweep, c.Rand,
		seedFor(c.Seed, bench.Abbrev(), scheme.String(), "points"))
	var faults []Fault
	for _, f := range c.Faults {
		if f.appliesTo(scheme) {
			faults = append(faults, f)
		}
	}

	results := make([]InjectionResult, len(points)*len(faults))
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for lo := 0; lo < len(points); lo += chunkPoints {
		hi := lo + chunkPoints
		if hi > len(points) {
			hi = len(points)
		}
		lo, hi := lo, hi
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := eng.Do(ctx, func(ctx context.Context) error {
				sys, err := tc.newSystem()
				if err != nil {
					return err
				}
				for pi := lo; pi < hi; pi++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					stepTo(sys, points[pi])
					committed := committedCounts(sys)
					for fi, f := range faults {
						inj := injection{
							fault: f,
							cycle: points[pi],
							seed:  seedFor(c.Seed, bench.Abbrev(), scheme.String(), f.String(), fmt.Sprint(points[pi])),
						}
						out, detail := tc.classify(buildImage(sys, tc.threads, inj), f, committed)
						results[pi*len(faults)+fi] = InjectionResult{
							Cycle: points[pi], Fault: f.String(),
							Outcome: out, Detail: detail,
						}
					}
				}
				return nil
			})
			if err != nil {
				fail(fmt.Errorf("crashcampaign: %v/%v points[%d:%d]: %w", bench, scheme, lo, hi, err))
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	// Minimize failures (and, if asked, vulnerabilities) in parallel;
	// each minimization is self-contained and lands at a fixed index.
	if c.Minimize != MinimizeOff {
		var mwg sync.WaitGroup
		for i := range results {
			r := &results[i]
			if r.Outcome != OutcomeFailed && !(c.Minimize == MinimizeAll && r.Outcome == OutcomeVulnerable) {
				continue
			}
			mwg.Add(1)
			go func() {
				defer mwg.Done()
				err := eng.Do(ctx, func(ctx context.Context) error {
					m, err := tc.minimize(ctx, *r)
					if err != nil {
						return err
					}
					r.Minimized = m
					return nil
				})
				if err != nil {
					fail(fmt.Errorf("crashcampaign: %v/%v minimizing %s@%d: %w", bench, scheme, r.Fault, r.Cycle, err))
				}
			}()
		}
		mwg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
	}

	rep := &TupleReport{
		Bench:       bench.Abbrev(),
		Scheme:      scheme.String(),
		Fingerprint: job.Fingerprint(),
		TotalCycles: total,
		Points:      points,
		Injections:  results,
	}
	for _, r := range results {
		rep.count(r.Outcome)
	}
	return rep, nil
}
