package crashcampaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{Threads: 2, InitOps: 128, SimOps: 24, Seed: 11,
		SSItems: 256, SSStrSize: 256, ListNodes: 4, ListElems: 64}
}

func testConfig(workers int) Config {
	return Config{
		Params: testParams(),
		Sim:    config.Default(),
		Engine: engine.New(engine.Config{Workers: workers}),
		Seed:   7,
	}
}

// TestCleanSweepAllVerified: a clean-fault sweep across every failure-safe
// scheme must verify at every crash point — the baseline the recovery
// tests already establish, now through the campaign machinery.
func TestCleanSweepAllVerified(t *testing.T) {
	c := testConfig(4)
	c.Benches = []workload.Kind{workload.Queue, workload.HashMap}
	c.Sweep = 8
	rep, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Injections == 0 {
		t.Fatal("campaign injected nothing")
	}
	if rep.Totals.Verified != rep.Totals.Injections {
		t.Fatalf("clean sweep: %d/%d verified (failed %d, vulnerable %d, detected %d)",
			rep.Totals.Verified, rep.Totals.Injections,
			rep.Totals.Failed, rep.Totals.Vulnerable, rep.Totals.Detected)
	}
}

// TestFaultSweepNoExpectedSafeFailures: with every fault model on, no
// injection may land in the failed class — torn/ADR-loss damage on
// ADR-reliant schemes is vulnerable-or-detected (documented exposure),
// and corruption is verified-or-detected, never silently accepted.
func TestFaultSweepNoExpectedSafeFailures(t *testing.T) {
	c := testConfig(4)
	c.Benches = []workload.Kind{workload.Queue, workload.StringSwap}
	c.Sweep = 12
	c.Rand = 4
	c.Faults = AllFaults
	rep, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rep.Tuples {
		if tu.Failed != 0 {
			for _, ir := range tu.Injections {
				if ir.Outcome == OutcomeFailed {
					t.Errorf("%s/%s %s@%d failed: %s", tu.Bench, tu.Scheme, ir.Fault, ir.Cycle, ir.Detail)
				}
			}
		}
	}
	if rep.Totals.Detected == 0 {
		t.Error("no injection was detected as corruption; the torn/corrupt models are not reaching the integrity checks")
	}
}

// TestDeterministicReport: the report bytes are identical whether the
// engine runs 1 worker or 8 (satellite: campaign determinism).
func TestDeterministicReport(t *testing.T) {
	render := func(workers int) []byte {
		c := testConfig(workers)
		c.Benches = []workload.Kind{workload.Queue}
		c.Schemes = []core.Scheme{core.PMEM, core.Proteus}
		c.Sweep = 6
		c.Rand = 2
		c.Faults = AllFaults
		rep, err := Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render(1)
	b := render(8)
	if !bytes.Equal(a, b) {
		t.Fatalf("report differs between 1 and 8 workers:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestStepperEquivalentReport: the campaign report bytes are identical
// whether the sweep systems and engine runs use the fast event-driven
// stepper or the per-cycle reference stepper.
func TestStepperEquivalentReport(t *testing.T) {
	render := func(st core.Stepper) []byte {
		c := testConfig(4)
		c.Engine = engine.New(engine.Config{Workers: 4, Stepper: st})
		c.Stepper = st
		c.Benches = []workload.Kind{workload.Queue, workload.StringSwap}
		c.Sweep = 6
		c.Rand = 2
		c.Faults = AllFaults
		rep, err := Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := render(core.StepperFast)
	ref := render(core.StepperReference)
	if !bytes.Equal(fast, ref) {
		t.Fatalf("report differs between fast and reference steppers:\n--- fast ---\n%s\n--- reference ---\n%s", fast, ref)
	}
}

// TestMinimizerProducesReproducer: a scheme that is not failure safe
// yields vulnerable injections; with MinimizeAll each gets bisected to an
// earlier-or-equal cycle and dumped as an artifact that replays to the
// same failure.
func TestMinimizerProducesReproducer(t *testing.T) {
	c := testConfig(4)
	c.Benches = []workload.Kind{workload.StringSwap}
	c.Schemes = []core.Scheme{core.PMEMNoLog}
	// Unprotected tearing is only visible inside a transaction's narrow
	// durability window, so the sweep must be dense to hit one.
	c.Sweep = 220
	c.Minimize = MinimizeAll
	c.ArtifactDir = t.TempDir()
	rep, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	var min *Minimized
	for _, tu := range rep.Tuples {
		for _, ir := range tu.Injections {
			if ir.Outcome == OutcomeVulnerable {
				if ir.Minimized == nil {
					t.Fatalf("vulnerable injection at %d not minimized under MinimizeAll", ir.Cycle)
				}
				if min == nil {
					min = ir.Minimized
				}
				if ir.Minimized.Cycle > ir.Cycle {
					t.Fatalf("minimized cycle %d beyond original %d", ir.Minimized.Cycle, ir.Cycle)
				}
			}
		}
	}
	if min == nil {
		t.Fatal("PMEM+nolog never torn by the sweep; minimization untested (widen the sweep)")
	}
	if min.Artifact == "" || min.Repro == "" {
		t.Fatalf("minimized failure lacks artifact/repro: %+v", min)
	}
	if _, err := os.Stat(filepath.Join(min.Artifact, ImageFileName)); err != nil {
		t.Fatal(err)
	}

	meta, err := LoadArtifact(filepath.Join(min.Artifact, MetaFileName))
	if err != nil {
		t.Fatal(err)
	}
	res, err := meta.Replay(context.Background(), config.Default())
	if err != nil {
		t.Fatal(err)
	}
	// The replayed image must be byte-identical to the stored one.
	f, err := os.Open(filepath.Join(min.Artifact, ImageFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var rebuilt, stored bytes.Buffer
	if err := res.Image.Serialize(&rebuilt); err != nil {
		t.Fatal(err)
	}
	if _, err := stored.ReadFrom(f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt.Bytes(), stored.Bytes()) {
		t.Fatal("replayed crash image differs from the stored artifact image")
	}
	// And it must still exhibit the failure.
	verify := res.Oracle.VerifyPrefix
	if res.SW {
		verify = res.Oracle.VerifyPrefixSW
	}
	if _, err := verify(res.Image, res.Committed); err == nil {
		t.Fatal("minimized reproducer no longer fails verification")
	}
}

// TestParseFaults covers the CLI's fault-list parsing.
func TestParseFaults(t *testing.T) {
	fs, err := ParseFaults("torn,adrloss")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[0] != FaultClean || fs[1] != FaultTorn || fs[2] != FaultADRLoss {
		t.Fatalf("parsed %v", fs)
	}
	if fs, _ = ParseFaults("all"); len(fs) != len(AllFaults) {
		t.Fatalf("all -> %v", fs)
	}
	if fs, _ = ParseFaults(""); len(fs) != 1 || fs[0] != FaultClean {
		t.Fatalf("empty -> %v", fs)
	}
	if _, err := ParseFaults("nope"); err == nil {
		t.Fatal("bad fault accepted")
	}
}
