// Package crashcampaign runs fault-injection campaigns over the
// simulator: it sweeps crash points across (benchmark, scheme) tuples,
// extracts crash images under several power-failure fault models, runs
// recovery, checks the oracle's durable-transaction property, and
// classifies every injection against an expectation matrix. Expected-safe
// combinations that fail are automatically minimized (the crash point is
// bisected to the earliest failing cycle and the fault mask shrunk) and
// dumped as ready-to-replay reproducer artifacts.
//
// Everything the campaign computes is deterministic in (config, seed):
// crash points, per-injection randomness, result order, and the report
// bytes are identical no matter how many engine workers execute the
// sweep.
package crashcampaign

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memctrl"
	"repro/internal/nvm"
)

// Fault is a power-failure fault model.
type Fault int

const (
	// FaultClean is a nominal power cut: the scheme's persistency domain
	// (ADR queues included where the platform has them) drains intact.
	FaultClean Fault = iota
	// FaultTorn tears pending line writes: only a prefix of the 8-byte
	// words of each affected 64-byte line reaches NVM. Under ADR this
	// breaks the platform's drain guarantee; without ADR it models device
	// writes interrupted mid-line.
	FaultTorn
	// FaultADRLoss drops the WPQ/LPQ contents a scheme's ADR domain was
	// supposed to drain (a failed backup capacitor).
	FaultADRLoss
	// FaultCorrupt flips one bit in every affected materialized log-area
	// line of the clean crash image. Recovery must either still produce a
	// verified state or report the corruption — never silently apply it.
	FaultCorrupt
)

var faultNames = map[Fault]string{
	FaultClean:   "clean",
	FaultTorn:    "torn",
	FaultADRLoss: "adrloss",
	FaultCorrupt: "corrupt",
}

func (f Fault) String() string {
	if n, ok := faultNames[f]; ok {
		return n
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// AllFaults lists every model in campaign order.
var AllFaults = []Fault{FaultClean, FaultTorn, FaultADRLoss, FaultCorrupt}

// ParseFaults parses a comma-separated fault list ("torn,adrloss", or
// "all"). FaultClean is always included first: the clean sweep is the
// baseline every campaign needs.
func ParseFaults(s string) ([]Fault, error) {
	out := []Fault{FaultClean}
	seen := map[Fault]bool{FaultClean: true}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			for _, f := range AllFaults {
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			}
			continue
		}
		found := false
		for f, n := range faultNames {
			if n == name {
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("crashcampaign: unknown fault %q (have clean, torn, adrloss, corrupt, all)", name)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// QueuesLost reports whether the fault defeats the platform's ADR drain
// of the controller queues — torn queue writes and capacitor loss do, a
// clean cut and log corruption do not.
func (f Fault) QueuesLost() bool { return f == FaultTorn || f == FaultADRLoss }

// ExpectSafe reports whether the (scheme, fault) combination is expected
// to satisfy the durable-transaction property, derived from the scheme's
// declared ordering axioms: torn and ADR-loss faults break the ADR drain,
// so only a scheme whose rules never relied on it (QueueDrain false,
// i.e. PMEM+pcommit) is expected to survive them. FaultCorrupt is never
// "safe" in this sense: its contract is verified-or-detected, which the
// classifier handles separately.
func ExpectSafe(s core.Scheme, f Fault) bool {
	if !s.FailureSafe() || f == FaultCorrupt {
		return false
	}
	return s.Ordering().ExpectSafe(f.QueuesLost())
}

// expectSafe is the internal spelling predating the exported API.
func expectSafe(s core.Scheme, f Fault) bool { return ExpectSafe(s, f) }

// AppliesTo reports whether injecting the fault into the scheme is
// meaningful. ADR loss is a no-op for a scheme whose persistency domain
// never included the queues (QueueDrain false in its ordering rules).
func (f Fault) AppliesTo(s core.Scheme) bool {
	if f == FaultADRLoss {
		return s.Ordering().QueueDrain
	}
	return true
}

// appliesTo is the internal spelling predating the exported API.
func (f Fault) appliesTo(s core.Scheme) bool { return f.AppliesTo(s) }

// mix hashes words into a well-distributed 64-bit value (splitmix64
// finalization). Per-line fault decisions hash (seed, line identity)
// statelessly, so shrinking a fault mask never shifts the randomness of
// the lines that remain.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
	}
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// seedFor derives the per-injection fault seed from the campaign seed and
// the injection's identity.
func seedFor(campaignSeed int64, parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", campaignSeed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// injection is one planned fault injection at one crash point.
type injection struct {
	fault Fault
	cycle uint64
	seed  uint64
	// mask, when non-nil, restricts the fault to the listed target
	// indexes (pending-line index for torn, sorted-log-line index for
	// corrupt). nil faults every target. The minimizer shrinks it.
	mask []int
}

func maskSet(mask []int) map[int]bool {
	if mask == nil {
		return nil
	}
	m := make(map[int]bool, len(mask))
	for _, i := range mask {
		m[i] = true
	}
	return m
}

// tornWords returns how many leading 8-byte words of pending line idx
// persist under the injection's seed: always a strict prefix (0..7), so
// every selected line genuinely tears.
func tornWords(seed uint64, idx int) int {
	return int(mix(seed, 0x7047, uint64(idx)) % 8)
}

// logLines returns the materialized log-area lines of the image across
// all threads, in ascending address order — the corrupt fault's target
// list.
func logLines(img *nvm.Store, threads int) []uint64 {
	var out []uint64
	for t := 0; t < threads; t++ {
		base, limit := isa.LogWindow(t)
		out = append(out, img.LinesIn(base, limit)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildImage extracts the crash image the injection leaves behind.
func buildImage(sys *core.System, threads int, inj injection) *nvm.Store {
	switch inj.fault {
	case FaultClean:
		return sys.CrashImage()
	case FaultADRLoss:
		return sys.CrashImageWith(memctrl.CrashFault{ADR: false})
	case FaultTorn:
		sel := maskSet(inj.mask)
		return sys.CrashImageWith(memctrl.CrashFault{
			ADR: sys.ADR(),
			Torn: func(idx int, addr uint64) int {
				if sel != nil && !sel[idx] {
					return 8 // not selected: the whole line persists
				}
				return tornWords(inj.seed, idx)
			},
		})
	case FaultCorrupt:
		img := sys.CrashImage()
		sel := maskSet(inj.mask)
		for i, addr := range logLines(img, threads) {
			if sel != nil && !sel[i] {
				continue
			}
			bit := mix(inj.seed, 0xC0FF, addr) % (isa.LineSize * 8)
			line := img.Read(addr, isa.LineSize)
			line[bit/8] ^= 1 << (bit % 8)
			img.Write(addr, line)
		}
		return img
	}
	return sys.CrashImage()
}

// maskTargets returns how many targets the injection's fault has at this
// system state — the universe the minimizer's mask shrink works over.
func maskTargets(sys *core.System, threads int, f Fault) int {
	switch f {
	case FaultTorn:
		return len(sys.PendingLines(sys.ADR()))
	case FaultCorrupt:
		return len(logLines(sys.CrashImage(), threads))
	}
	return 0
}

// Injection is an exported fault-application handle for other harnesses
// (the litmus sweep) that drive their own crash-point schedules through
// the campaign's fault machinery. Seed feeds the same stateless per-line
// randomness the campaign uses; Mask, when non-nil, restricts the fault
// to the listed target indexes exactly as the minimizer's masks do.
type Injection struct {
	Fault Fault
	Seed  uint64
	Mask  []int
}

// Apply extracts the crash image the injection leaves behind at the
// system's current state. The system is not advanced or mutated.
func (in Injection) Apply(sys *core.System, threads int) *nvm.Store {
	return buildImage(sys, threads, injection{fault: in.Fault, seed: in.Seed, mask: in.Mask})
}

// Targets returns the size of the fault's target universe at the system's
// current state — the index space a Mask selects from (pending lines for
// torn, materialized log lines for corrupt, 0 for the rest).
func (in Injection) Targets(sys *core.System, threads int) int {
	return maskTargets(sys, threads, in.Fault)
}

// InjectionSeed derives a deterministic per-injection fault seed from a
// campaign seed and the injection's identity, exactly as the campaign
// does internally.
func InjectionSeed(campaignSeed int64, parts ...string) uint64 {
	return seedFor(campaignSeed, parts...)
}
