package crashcampaign

import (
	"context"
	"fmt"
)

// shrinkBudget caps predicate evaluations during mask shrinking; the
// bisection adds at most ~log2(total cycles) more. Fixed so minimization
// cost is bounded and deterministic.
const shrinkBudget = 40

// badFor reports whether a re-evaluated outcome still exhibits the
// failure being minimized. A vulnerable injection that upgrades to failed
// at an earlier cycle still reproduces.
func badFor(orig, got Outcome) bool {
	return got == OutcomeFailed || (orig == OutcomeVulnerable && got == OutcomeVulnerable)
}

// minimize reduces a failed injection: bisect the crash cycle down to the
// earliest failing step (with the fault pattern pinned by the original
// seed), then shrink the fault mask to a small subset that still fails,
// and — when the campaign has an artifact dir — dump a reproducer.
func (tc *tupleCtx) minimize(ctx context.Context, r InjectionResult) (*Minimized, error) {
	fault, err := parseFault(r.Fault)
	if err != nil {
		return nil, err
	}
	seed := seedFor(tc.camp.Seed, tc.bench.Abbrev(), tc.scheme.String(), fault.String(), fmt.Sprint(r.Cycle))
	base := injection{fault: fault, cycle: r.Cycle, seed: seed}

	eval := func(inj injection) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		out, _, err := tc.evaluateAt(inj)
		if err != nil {
			return false, err
		}
		return badFor(r.Outcome, out), nil
	}

	// Bisect [0, cycle] for the earliest failing cycle. Cycle 0 (nothing
	// executed, nothing pending) passes trivially, the original cycle
	// fails by construction; the search maintains pass(lo) / fail(hi).
	lo, hi := uint64(0), r.Cycle
	if bad, err := eval(injection{fault: fault, cycle: 0, seed: seed}); err != nil {
		return nil, err
	} else if bad {
		hi = 0
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		bad, err := eval(injection{fault: fault, cycle: mid, seed: seed})
		if err != nil {
			return nil, err
		}
		if bad {
			hi = mid
		} else {
			lo = mid
		}
	}
	base.cycle = hi

	m := &Minimized{Cycle: base.cycle, OriginalCycle: r.Cycle}

	// Shrink the fault mask for the fault models that have one.
	if fault == FaultTorn || fault == FaultCorrupt {
		sys, err := tc.newSystem()
		if err != nil {
			return nil, err
		}
		stepTo(sys, base.cycle)
		n := maskTargets(sys, tc.threads, fault)
		m.Targets = n
		if n > 0 {
			mask, err := tc.shrinkMask(base, r.Outcome, n)
			if err != nil {
				return nil, err
			}
			base.mask = mask
			m.Mask = mask
		}
	}

	// Record the failure as it presents at the minimized point.
	out, detail, err := tc.evaluateAt(base)
	if err != nil {
		return nil, err
	}
	m.Outcome, m.Detail = out, detail

	if tc.camp.ArtifactDir != "" {
		dir, repro, err := tc.writeArtifact(base, r, m)
		if err != nil {
			return nil, err
		}
		m.Artifact, m.Repro = dir, repro
	}
	return m, nil
}

// shrinkMask greedily removes chunks of the [0, n) target mask while the
// failure persists (a ddmin-style pass with a fixed evaluation budget).
func (tc *tupleCtx) shrinkMask(base injection, orig Outcome, n int) ([]int, error) {
	mask := make([]int, n)
	for i := range mask {
		mask[i] = i
	}
	budget := shrinkBudget
	gran := 2
	for len(mask) >= 2 && budget > 0 {
		chunk := (len(mask) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(mask) && budget > 0; start += chunk {
			end := start + chunk
			if end > len(mask) {
				end = len(mask)
			}
			cand := make([]int, 0, len(mask)-(end-start))
			cand = append(cand, mask[:start]...)
			cand = append(cand, mask[end:]...)
			budget--
			out, _, err := tc.evaluateAt(injection{fault: base.fault, cycle: base.cycle, seed: base.seed, mask: cand})
			if err != nil {
				return nil, err
			}
			if badFor(orig, out) {
				mask = cand
				if gran > 2 {
					gran--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if gran >= len(mask) {
				break
			}
			gran *= 2
			if gran > len(mask) {
				gran = len(mask)
			}
		}
	}
	return mask, nil
}

// parseFault maps a fault name back to its model.
func parseFault(name string) (Fault, error) {
	for f, n := range faultNames {
		if n == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("crashcampaign: unknown fault %q", name)
}
