package crashcampaign

import (
	"encoding/json"
	"io"

	"repro/internal/workload"
)

// Outcome classifies one injection against the expectation matrix.
type Outcome string

const (
	// OutcomeVerified: recovery succeeded and the oracle matched a
	// transaction prefix.
	OutcomeVerified Outcome = "verified"
	// OutcomeDetected: recovery refused the image with a typed corruption
	// error — the acceptable result for injected damage the scheme never
	// promised to survive.
	OutcomeDetected Outcome = "detected"
	// OutcomeVulnerable: an expected-unsafe combination (a fault outside
	// the scheme's guarantees) failed verification. Documented exposure,
	// not a bug.
	OutcomeVulnerable Outcome = "vulnerable"
	// OutcomeFailed: an expected-safe combination broke, or corruption
	// was silently accepted. Every failed injection is minimized.
	OutcomeFailed Outcome = "failed"
)

// InjectionResult is the outcome of one fault injection.
type InjectionResult struct {
	Cycle   uint64  `json:"cycle"`
	Fault   string  `json:"fault"`
	Outcome Outcome `json:"outcome"`
	// Detail carries the recovery error or oracle mismatch for non-verified
	// outcomes.
	Detail string `json:"detail,omitempty"`
	// Minimized is attached to failed injections after minimization.
	Minimized *Minimized `json:"minimized,omitempty"`
}

// Minimized describes the reduced reproducer of a failed injection.
type Minimized struct {
	// Cycle is the earliest failing crash cycle the bisection found.
	Cycle uint64 `json:"cycle"`
	// OriginalCycle is the sweep point the failure was first seen at.
	OriginalCycle uint64 `json:"original_cycle"`
	// Targets is the fault's target universe size at the minimized cycle;
	// Mask is the shrunk subset that still fails (absent for faults
	// without a mask, e.g. ADR loss).
	Targets int   `json:"targets,omitempty"`
	Mask    []int `json:"mask,omitempty"`
	// Outcome is the failure's classification at the minimized point.
	Outcome Outcome `json:"outcome"`
	Detail  string  `json:"detail,omitempty"`
	// Artifact is the reproducer directory (empty when the campaign ran
	// without an artifact dir); Repro is the ready-to-run replay command.
	Artifact string `json:"artifact,omitempty"`
	Repro    string `json:"repro,omitempty"`
}

// TupleReport is the sweep result for one (benchmark, scheme) pair.
type TupleReport struct {
	Bench       string            `json:"bench"`
	Scheme      string            `json:"scheme"`
	Fingerprint string            `json:"fingerprint"`
	TotalCycles uint64            `json:"total_cycles"`
	Points      []uint64          `json:"points"`
	Injections  []InjectionResult `json:"injections"`
	Verified    int               `json:"verified"`
	Detected    int               `json:"detected"`
	Vulnerable  int               `json:"vulnerable"`
	Failed      int               `json:"failed"`
}

// Totals aggregates the campaign.
type Totals struct {
	Tuples     int `json:"tuples"`
	Injections int `json:"injections"`
	Verified   int `json:"verified"`
	Detected   int `json:"detected"`
	Vulnerable int `json:"vulnerable"`
	Failed     int `json:"failed"`
	Minimized  int `json:"minimized"`
}

// Info records the campaign's inputs so a report is self-describing.
type Info struct {
	Seed              int64           `json:"seed"`
	Sweep             int             `json:"sweep"`
	Rand              int             `json:"rand"`
	Faults            []string        `json:"faults"`
	Params            workload.Params `json:"params"`
	ConfigFingerprint string          `json:"config_fingerprint"`
}

// Report is the campaign result. It contains no wall-clock or
// order-of-completion data: marshaling it is byte-identical for the same
// (config, seed) at any worker count.
type Report struct {
	Campaign Info          `json:"campaign"`
	Tuples   []TupleReport `json:"tuples"`
	Totals   Totals        `json:"totals"`
}

// WriteJSON writes the canonical (indented, newline-terminated) report
// encoding — the bytes the determinism guarantee is stated over.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// count tallies an outcome into the tuple report.
func (t *TupleReport) count(o Outcome) {
	switch o {
	case OutcomeVerified:
		t.Verified++
	case OutcomeDetected:
		t.Detected++
	case OutcomeVulnerable:
		t.Vulnerable++
	case OutcomeFailed:
		t.Failed++
	}
}
