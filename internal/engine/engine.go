// Package engine is the shared simulation-job layer under the experiment
// harness. Every figure of the evaluation is a matrix of (workload,
// scheme, config) tuples; the engine runs such tuples through a bounded
// worker pool, memoizes each result under a stable key (the workload
// parameters plus config.Config.Fingerprint()), and builds each workload
// exactly once no matter how many jobs — or figures — reference it.
//
// Determinism: each simulation is single-goroutine and seeded, workloads
// are immutable once built, and results are keyed rather than ordered by
// completion, so a table assembled from engine results is byte-identical
// whether the pool runs 1 worker or N.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Job names one simulation: build (or reuse) the workload for
// (Kind, Params), generate the Scheme's traces under Config with the
// logging options, and run the machine to completion.
type Job struct {
	Kind   workload.Kind
	Params workload.Params
	Scheme core.Scheme
	Config config.Config
	Log    logging.Options
}

func (j Job) String() string {
	return fmt.Sprintf("%v/%v/%s", j.Kind, j.Scheme, j.Config.Mem.Kind)
}

// jobKey is the memoization key: the job with the config collapsed to its
// fingerprint. All fields are comparable, so identical tuples collide by
// construction.
type jobKey struct {
	kind   workload.Kind
	params workload.Params
	scheme core.Scheme
	cfg    string
	log    logging.Options
}

func (j Job) key() jobKey {
	return jobKey{j.Kind, j.Params, j.Scheme, j.Config.Fingerprint(), j.Log}
}

type wlKey struct {
	kind   workload.Kind
	params workload.Params
}

// Result is what one simulation produced.
type Result struct {
	Report *stats.Report
	// EmittedLogFlushes counts the log-flush micro-ops present in the
	// generated traces, before any run-time LLT filtering (the quantity
	// the static-vs-dynamic filtering ablation compares).
	EmittedLogFlushes uint64
}

// Phase tags a progress event.
type Phase int

const (
	// JobStart fires when a simulation begins executing on a worker.
	JobStart Phase = iota
	// JobDone fires when a simulation finishes (Err reports failure).
	JobDone
	// JobCached fires when a Run call is answered from the memo table
	// (including waiting on an identical in-flight job).
	JobCached
)

func (p Phase) String() string {
	switch p {
	case JobStart:
		return "start"
	case JobDone:
		return "done"
	case JobCached:
		return "cached"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Event is one progress notification. The callback runs on worker
// goroutines and must be safe for concurrent use.
type Event struct {
	Job     Job
	Phase   Phase
	Err     error
	Elapsed time.Duration // set on JobDone
}

// Config tunes an Engine.
type Config struct {
	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// JobTimeout is a wall-clock bound per simulation; 0 means none.
	JobTimeout time.Duration
	// Progress, when non-nil, receives an Event per job transition.
	Progress func(Event)
}

// Counters reports what an engine has executed so far.
type Counters struct {
	// Simulated counts simulations actually run (unique tuples).
	Simulated uint64
	// Deduped counts Run calls answered from the memo table.
	Deduped uint64
	// WorkloadsBuilt counts distinct (kind, params) workload builds.
	WorkloadsBuilt uint64
}

// Engine runs simulation jobs. It is safe for concurrent use; all methods
// may be called from multiple goroutines.
type Engine struct {
	conf Config
	sem  chan struct{}

	mu   sync.Mutex
	jobs map[jobKey]*jobEntry
	wls  map[wlKey]*wlEntry

	simulated atomic.Uint64
	deduped   atomic.Uint64
	built     atomic.Uint64
}

type jobEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

type wlEntry struct {
	done chan struct{}
	wl   *workload.Workload
	err  error
}

// New returns an engine with the given configuration.
func New(conf Config) *Engine {
	if conf.Workers <= 0 {
		conf.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		conf: conf,
		sem:  make(chan struct{}, conf.Workers),
		jobs: make(map[jobKey]*jobEntry),
		wls:  make(map[wlKey]*wlEntry),
	}
}

// Counters snapshots the execution counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Simulated:      e.simulated.Load(),
		Deduped:        e.deduped.Load(),
		WorkloadsBuilt: e.built.Load(),
	}
}

func (e *Engine) emit(ev Event) {
	if e.conf.Progress != nil {
		e.conf.Progress(ev)
	}
}

// Run executes the job, or returns the memoized result of an identical
// earlier job. Concurrent Run calls for the same tuple share one
// simulation. A result produced by a cancelled or timed-out run is not
// memoized, so a later invocation with a live context retries.
func (e *Engine) Run(ctx context.Context, j Job) (*Result, error) {
	key := j.key()
	e.mu.Lock()
	if ent, ok := e.jobs[key]; ok {
		e.mu.Unlock()
		e.deduped.Add(1)
		e.emit(Event{Job: j, Phase: JobCached})
		select {
		case <-ent.done:
			return ent.res, ent.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &jobEntry{done: make(chan struct{})}
	e.jobs[key] = ent
	e.mu.Unlock()

	start := time.Now()
	res, err := e.simulate(ctx, j)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Cancellation is a property of this invocation, not of the job:
		// forget the entry so a later call can retry.
		e.mu.Lock()
		delete(e.jobs, key)
		e.mu.Unlock()
	}
	ent.res, ent.err = res, err
	close(ent.done)
	e.emit(Event{Job: j, Phase: JobDone, Err: err, Elapsed: time.Since(start)})
	return res, err
}

// RunAll runs every job concurrently (bounded by the worker pool) and
// waits for all of them. The first failure cancels the jobs still pending
// and is returned; results stay memoized for later Run calls.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Run(ctx, j); err != nil {
				mu.Lock()
				if first == nil {
					first = err
					cancel()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return first
}

// simulate executes one job on a worker slot.
func (e *Engine) simulate(ctx context.Context, j Job) (*Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if e.conf.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.conf.JobTimeout)
		defer cancel()
	}
	e.emit(Event{Job: j, Phase: JobStart})

	w, err := e.workloadFor(ctx, j.Kind, j.Params)
	if err != nil {
		return nil, err
	}
	traces, err := logging.GenerateOpts(w, j.Scheme, j.Config, j.Log)
	if err != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, err)
	}
	var emitted uint64
	for _, tr := range traces {
		emitted += uint64(tr.Summarize().LogFlushes)
	}
	sys, err := core.NewSystem(j.Config, j.Scheme, traces, w.InitImage)
	if err != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, err)
	}
	rep, err := sys.RunContext(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, err)
	}
	e.simulated.Add(1)
	return &Result{Report: rep, EmittedLogFlushes: emitted}, nil
}

// workloadFor builds the workload for (kind, params) exactly once;
// concurrent callers wait for the builder. Workloads are immutable after
// Build, so the jobs sharing one read it concurrently without copies.
func (e *Engine) workloadFor(ctx context.Context, kind workload.Kind, params workload.Params) (*workload.Workload, error) {
	key := wlKey{kind, params}
	e.mu.Lock()
	if ent, ok := e.wls[key]; ok {
		e.mu.Unlock()
		select {
		case <-ent.done:
			return ent.wl, ent.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &wlEntry{done: make(chan struct{})}
	e.wls[key] = ent
	e.mu.Unlock()

	ent.wl, ent.err = workload.Build(kind, params)
	if ent.err == nil {
		e.built.Add(1)
	}
	close(ent.done)
	return ent.wl, ent.err
}
