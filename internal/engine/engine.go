// Package engine is the shared simulation-job layer under the experiment
// harness. Every figure of the evaluation is a matrix of (workload,
// scheme, config) tuples; the engine runs such tuples through a bounded
// worker pool, memoizes each result under a stable key (the workload
// parameters plus config.Config.Fingerprint()), and builds each workload
// exactly once no matter how many jobs — or figures — reference it.
//
// Determinism: each simulation is single-goroutine and seeded, workloads
// are immutable once built, and results are keyed rather than ordered by
// completion, so a table assembled from engine results is byte-identical
// whether the pool runs 1 worker or N.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrJobTimeout marks a per-job wall-clock timeout (Config.JobTimeout).
// Unlike a cancellation of the caller's context, a job timeout is a
// property of the job under this engine's configuration: the failure is
// memoized, surfaced in Counters and Metrics, and does not abort the
// sibling jobs of a RunAll.
var ErrJobTimeout = errors.New("job timeout exceeded")

// Job names one simulation: build (or reuse) the workload for
// (Kind, Params), generate the Scheme's traces under Config with the
// logging options, and run the machine to completion.
type Job struct {
	Kind   workload.Kind
	Params workload.Params
	Scheme core.Scheme
	Config config.Config
	Log    logging.Options
}

func (j Job) String() string {
	return fmt.Sprintf("%v/%v/%s", j.Kind, j.Scheme, j.Config.Mem.Kind)
}

// jobKey is the memoization key: the job with the config collapsed to its
// fingerprint. All fields are comparable, so identical tuples collide by
// construction.
type jobKey struct {
	kind   workload.Kind
	params workload.Params
	scheme core.Scheme
	cfg    string
	log    logging.Options
}

func (j Job) key() jobKey {
	return jobKey{j.Kind, j.Params, j.Scheme, j.Config.Fingerprint(), j.Log}
}

// Fingerprint returns a short stable digest of the complete job tuple
// (the memoization key, params and logging options included). It is what
// per-job artifacts — trace files, metrics rows — use to stay unique even
// when two jobs share a workload kind, scheme and config.
func (j Job) Fingerprint() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", j.key())))
	return hex.EncodeToString(h[:8])
}

type wlKey struct {
	kind   workload.Kind
	params workload.Params
}

// Result is what one simulation produced.
type Result struct {
	Report *stats.Report
	// EmittedLogFlushes counts the log-flush micro-ops present in the
	// generated traces, before any run-time LLT filtering (the quantity
	// the static-vs-dynamic filtering ablation compares).
	EmittedLogFlushes uint64
}

// Phase tags a progress event.
type Phase int

const (
	// JobStart fires when a simulation begins executing on a worker.
	JobStart Phase = iota
	// JobDone fires when a simulation finishes (Err reports failure).
	JobDone
	// JobCached fires when a Run call is answered from the memo table
	// (including waiting on an identical in-flight job).
	JobCached
	// JobStoreHit fires when a Run call is answered from the persistent
	// result store (Config.Store) without simulating.
	JobStoreHit
)

func (p Phase) String() string {
	switch p {
	case JobStart:
		return "start"
	case JobDone:
		return "done"
	case JobCached:
		return "cached"
	case JobStoreHit:
		return "store-hit"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Event is one progress notification. The callback runs on worker
// goroutines and must be safe for concurrent use.
type Event struct {
	Job     Job
	Phase   Phase
	Err     error
	Elapsed time.Duration // set on JobDone
}

// ResultStore persists successful results across processes. The engine
// consults it after a memo-table miss (keyed by Job.Fingerprint()) and
// writes every successfully simulated result back. Load returns (nil, nil)
// on a miss; an error from either method is treated as a miss — a sick
// store degrades to re-simulation, never to a failed job. Implementations
// must be safe for concurrent use. Only completed results ever reach
// Store: cancelled, timed-out and failed runs are not persisted.
type ResultStore interface {
	Load(key string) (*Result, error)
	Store(key string, j Job, res *Result) error
}

// Config tunes an Engine.
type Config struct {
	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// JobTimeout is a wall-clock bound per simulation; 0 means none. An
	// expiry fails only that job (ErrJobTimeout): siblings keep running.
	JobTimeout time.Duration
	// Progress, when non-nil, receives an Event per job transition.
	Progress func(Event)
	// Trace, when non-nil, is consulted once per executed simulation
	// (memo hits replay no trace) and returns the tracer the run records
	// into; a nil tracer skips tracing for that job. The engine closes
	// the tracer when the simulation finishes.
	Trace func(Job) (*trace.Tracer, error)
	// Store, when non-nil, is the persistent result store: memo-table
	// misses are answered from it when possible, and successful
	// simulations are written back so identical tuples in later
	// processes (or other transports) are near-instant.
	Store ResultStore
	// Stepper selects the simulation stepper for every job (the zero
	// value is the event-driven fast path; core.StepperReference retains
	// the cycle-at-a-time oracle for bisection).
	Stepper core.Stepper
}

// Counters reports what an engine has executed so far.
type Counters struct {
	// Simulated counts simulations actually run (unique tuples).
	Simulated uint64
	// Deduped counts Run calls answered from the memo table.
	Deduped uint64
	// WorkloadsBuilt counts distinct (kind, params) workload builds.
	WorkloadsBuilt uint64
	// Failed counts executed jobs that ended in a memoized failure (a
	// job timeout or a simulation error); suite cancellations, which are
	// retried on the next Run, are not counted.
	Failed uint64
	// StoreHits counts Run calls answered from the persistent result
	// store (Config.Store) instead of simulating.
	StoreHits uint64
	// StoreErrors counts store Load calls that returned an error —
	// typically a corrupt or quarantined entry (resultstore's digest
	// verification). Each one degraded to a miss: the job was
	// re-simulated and, on success, re-stored, healing the entry.
	StoreErrors uint64
}

// JobMetric records one executed simulation for the metrics summary.
type JobMetric struct {
	// Job is the human-readable tuple name (workload/scheme/mem).
	Job string `json:"job"`
	// Fingerprint is Job.Fingerprint(): unique per memoization key.
	Fingerprint string `json:"fingerprint"`
	// Cycles is the simulated cycle count of the run (0 on failure).
	Cycles uint64 `json:"cycles"`
	// Wall is the wall-clock duration of the simulation.
	Wall time.Duration `json:"wall_ns"`
	// Err is the failure message, empty for a successful run.
	Err string `json:"err,omitempty"`
}

// Engine runs simulation jobs. It is safe for concurrent use; all methods
// may be called from multiple goroutines.
type Engine struct {
	conf Config
	sem  chan struct{}

	mu   sync.Mutex
	jobs map[jobKey]*jobEntry
	wls  map[wlKey]*wlEntry

	metricsMu sync.Mutex
	metrics   []JobMetric

	simulated atomic.Uint64
	deduped   atomic.Uint64
	built     atomic.Uint64
	failed    atomic.Uint64
	storeHits atomic.Uint64
	storeErrs atomic.Uint64
}

type jobEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

type wlEntry struct {
	done chan struct{}
	wl   *workload.Workload
	err  error
}

// New returns an engine with the given configuration.
func New(conf Config) *Engine {
	if conf.Workers <= 0 {
		conf.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		conf: conf,
		sem:  make(chan struct{}, conf.Workers),
		jobs: make(map[jobKey]*jobEntry),
		wls:  make(map[wlKey]*wlEntry),
	}
}

// Counters snapshots the execution counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Simulated:      e.simulated.Load(),
		Deduped:        e.deduped.Load(),
		WorkloadsBuilt: e.built.Load(),
		Failed:         e.failed.Load(),
		StoreHits:      e.storeHits.Load(),
		StoreErrors:    e.storeErrs.Load(),
	}
}

// Metrics returns one entry per executed simulation (memo hits excluded),
// sorted by job name then fingerprint so the summary is deterministic
// regardless of completion order.
func (e *Engine) Metrics() []JobMetric {
	e.metricsMu.Lock()
	out := append([]JobMetric(nil), e.metrics...)
	e.metricsMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

func (e *Engine) recordMetric(j Job, res *Result, err error, elapsed time.Duration) {
	m := JobMetric{Job: j.String(), Fingerprint: j.Fingerprint(), Wall: elapsed}
	if res != nil && res.Report != nil {
		m.Cycles = res.Report.Cycles
	}
	if err != nil {
		m.Err = err.Error()
	}
	e.metricsMu.Lock()
	e.metrics = append(e.metrics, m)
	e.metricsMu.Unlock()
}

func (e *Engine) emit(ev Event) {
	if e.conf.Progress != nil {
		e.conf.Progress(ev)
	}
}

// Run executes the job, or returns the memoized result of an identical
// earlier job. Concurrent Run calls for the same tuple share one
// simulation. A result produced by a cancelled or timed-out run is not
// memoized, so a later invocation with a live context retries.
func (e *Engine) Run(ctx context.Context, j Job) (*Result, error) {
	key := j.key()
	e.mu.Lock()
	if ent, ok := e.jobs[key]; ok {
		e.mu.Unlock()
		e.deduped.Add(1)
		e.emit(Event{Job: j, Phase: JobCached})
		select {
		case <-ent.done:
			return ent.res, ent.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &jobEntry{done: make(chan struct{})}
	e.jobs[key] = ent
	e.mu.Unlock()

	if e.conf.Store != nil {
		// Memo miss: consult the persistent store before simulating. A
		// load error — including a corrupt entry the store detected and
		// quarantined — degrades to a miss: the job is re-simulated and
		// the successful result re-stored, which is the store's healing
		// path. The error is counted so /metrics can surface corruption.
		if res, err := e.conf.Store.Load(j.Fingerprint()); err == nil && res != nil {
			e.storeHits.Add(1)
			ent.res = res
			close(ent.done)
			e.emit(Event{Job: j, Phase: JobStoreHit})
			return res, nil
		} else if err != nil {
			e.storeErrs.Add(1)
		}
	}

	start := time.Now()
	res, err := e.simulate(ctx, j)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, ErrJobTimeout) &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Cancellation is a property of this invocation, not of the job:
		// forget the entry so a later call can retry. A per-job timeout
		// (ErrJobTimeout) is NOT a cancellation — it stays memoized as a
		// failure so table assembly does not wait out the timeout twice.
		e.mu.Lock()
		delete(e.jobs, key)
		e.mu.Unlock()
	} else {
		if err != nil {
			e.failed.Add(1)
		} else if e.conf.Store != nil {
			// Persist only completed results; a write error is dropped
			// (the caller still gets the live result) and the tuple is
			// simply re-simulated by the next process.
			_ = e.conf.Store.Store(j.Fingerprint(), j, res)
		}
		e.recordMetric(j, res, err, elapsed)
	}
	ent.res, ent.err = res, err
	close(ent.done)
	e.emit(Event{Job: j, Phase: JobDone, Err: err, Elapsed: elapsed})
	return res, err
}

// RunAll runs every job concurrently (bounded by the worker pool) and
// waits for all of them. A per-job failure — a simulation error or a
// Config.JobTimeout expiry — does not abort the siblings: the suite
// drains every job, the failure stays memoized (a later Run for the tuple
// returns it instantly), and it is surfaced through Counters().Failed and
// Metrics(). Only cancellation of ctx itself stops the suite early, and
// only that cancellation is returned as RunAll's error.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) error {
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = e.Run(ctx, j)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: suite cancelled: %w", err)
	}
	return nil
}

// simulate executes one job on a worker slot.
func (e *Engine) simulate(parent context.Context, j Job) (*Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-parent.Done():
		return nil, parent.Err()
	}
	defer func() { <-e.sem }()
	ctx := parent
	if e.conf.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.conf.JobTimeout)
		defer cancel()
	}
	e.emit(Event{Job: j, Phase: JobStart})

	res, err := e.simulate1(ctx, j)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		// The per-job deadline expired while the suite is still live:
		// report it as a job failure, not a cancellation.
		return nil, fmt.Errorf("engine: %v: %w after %v", j, ErrJobTimeout, e.conf.JobTimeout)
	}
	return res, err
}

// simulate1 builds and runs the machine under an already-bounded context.
func (e *Engine) simulate1(ctx context.Context, j Job) (*Result, error) {
	w, err := e.workloadFor(ctx, j.Kind, j.Params)
	if err != nil {
		return nil, err
	}
	traces, err := logging.GenerateOpts(w, j.Scheme, j.Config, j.Log)
	if err != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, err)
	}
	var emitted uint64
	for _, tr := range traces {
		emitted += uint64(tr.Summarize().LogFlushes)
	}
	sys, err := core.NewSystem(j.Config, j.Scheme, traces, w.InitImage)
	if err != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, err)
	}
	sys.SetStepper(e.conf.Stepper)
	var tr *trace.Tracer
	if e.conf.Trace != nil {
		tr, err = e.conf.Trace(j)
		if err != nil {
			return nil, fmt.Errorf("engine: %v: opening trace: %w", j, err)
		}
		if tr != nil {
			sys.SetTracer(tr)
		}
	}
	rep, runErr := sys.RunContext(ctx, 0)
	if tr != nil {
		if cerr := tr.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("closing trace: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("engine: %v: %w", j, runErr)
	}
	e.simulated.Add(1)
	return &Result{Report: rep, EmittedLogFlushes: emitted}, nil
}

// Do runs fn on a worker slot, applying the engine's per-job timeout. It
// lets non-Job work — the crash campaign's sweep chunks, which each carry
// their own simulation loop — share the same bounded pool instead of
// stacking a second layer of parallelism on top of it. A Config.JobTimeout
// expiry is reported as ErrJobTimeout, mirroring Run.
func (e *Engine) Do(parent context.Context, fn func(context.Context) error) error {
	select {
	case e.sem <- struct{}{}:
	case <-parent.Done():
		return parent.Err()
	}
	defer func() { <-e.sem }()
	ctx := parent
	if e.conf.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.conf.JobTimeout)
		defer cancel()
	}
	err := fn(ctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		return fmt.Errorf("engine: %w after %v", ErrJobTimeout, e.conf.JobTimeout)
	}
	return err
}

// Workload returns the memoized workload build for (kind, params),
// building it on first use. Campaign code uses it to share builds with
// the experiment jobs running through the same engine.
func (e *Engine) Workload(ctx context.Context, kind workload.Kind, params workload.Params) (*workload.Workload, error) {
	return e.workloadFor(ctx, kind, params)
}

// workloadFor builds the workload for (kind, params) exactly once;
// concurrent callers wait for the builder. Workloads are immutable after
// Build, so the jobs sharing one read it concurrently without copies.
func (e *Engine) workloadFor(ctx context.Context, kind workload.Kind, params workload.Params) (*workload.Workload, error) {
	key := wlKey{kind, params}
	e.mu.Lock()
	if ent, ok := e.wls[key]; ok {
		e.mu.Unlock()
		select {
		case <-ent.done:
			return ent.wl, ent.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &wlEntry{done: make(chan struct{})}
	e.wls[key] = ent
	e.mu.Unlock()

	ent.wl, ent.err = workload.Build(kind, params)
	if ent.err == nil {
		e.built.Add(1)
	}
	close(ent.done)
	return ent.wl, ent.err
}
