package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func testJob(scheme core.Scheme) Job {
	cfg := config.Default()
	cfg.Cores = 1
	return Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 1},
		Scheme: scheme,
		Config: cfg,
	}
}

func TestMemoizedSingleSimulation(t *testing.T) {
	e := New(Config{Workers: 4})
	ctx := context.Background()
	j := testJob(core.PMEMNoLog)

	// Eight concurrent identical jobs share one simulation.
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = j
	}
	if err := e.RunAll(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Simulated != 1 || c.WorkloadsBuilt != 1 {
		t.Fatalf("counters after 8 identical jobs: %+v, want 1 simulated / 1 built", c)
	}

	// A later Run is a memo hit returning the very same result.
	r1, err := e.Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("memoized Run returned distinct results")
	}
	if c := e.Counters(); c.Simulated != 1 || c.Deduped < 9 {
		t.Fatalf("counters after memo hits: %+v", c)
	}
	if r1.Report == nil || r1.Report.Cycles == 0 {
		t.Fatalf("bad result: %+v", r1)
	}
}

func TestWorkloadSharedAcrossSchemes(t *testing.T) {
	e := New(Config{Workers: 2})
	jobs := []Job{testJob(core.PMEM), testJob(core.Proteus), testJob(core.ATOM)}
	if err := e.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.Simulated != 3 {
		t.Fatalf("simulated %d, want 3 (distinct schemes)", c.Simulated)
	}
	if c.WorkloadsBuilt != 1 {
		t.Fatalf("built %d workloads, want 1 shared across schemes", c.WorkloadsBuilt)
	}
}

func TestConfigChangesAreDistinctJobs(t *testing.T) {
	e := New(Config{Workers: 2})
	a := testJob(core.Proteus)
	b := a
	b.Config.Proteus.LogQ = 4
	if err := e.RunAll(context.Background(), []Job{a, b}); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Simulated != 2 {
		t.Fatalf("simulated %d, want 2 (configs differ)", c.Simulated)
	}
}

func TestCancelledRunRetries(t *testing.T) {
	e := New(Config{Workers: 1})
	j := testJob(core.PMEM)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run: err = %v, want context.Canceled", err)
	}
	// The cancelled attempt must not be memoized.
	res, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if res == nil || res.Report.Cycles == 0 {
		t.Fatal("retry returned no result")
	}
}

func TestJobTimeout(t *testing.T) {
	e := New(Config{Workers: 1, JobTimeout: time.Nanosecond})
	if _, err := e.Run(context.Background(), testJob(core.PMEM)); !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}
	// A job timeout is a memoized failure, not a cancellation: the retry
	// answers from the memo table instead of waiting out the timeout again.
	start := time.Now()
	if _, err := e.Run(context.Background(), testJob(core.PMEM)); !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("memoized retry: err = %v, want ErrJobTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("memoized retry took %v; the failure was re-simulated", elapsed)
	}
	if c := e.Counters(); c.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", c.Failed)
	}
}

func TestRunAllDrainsPastJobFailure(t *testing.T) {
	e := New(Config{Workers: 1})
	bad := testJob(core.PMEM)
	bad.Config.Cores = 0 // fails validation inside NewSystem
	good := testJob(core.Proteus)
	if err := e.RunAll(context.Background(), []Job{bad, good}); err != nil {
		t.Fatalf("RunAll aborted the suite on a per-job failure: %v", err)
	}
	if _, err := e.Run(context.Background(), bad); err == nil {
		t.Fatal("bad job's failure was not memoized")
	}
	res, err := e.Run(context.Background(), good)
	if err != nil || res.Report.Cycles == 0 {
		t.Fatalf("good job did not complete: res=%v err=%v", res, err)
	}
	if c := e.Counters(); c.Failed != 1 || c.Simulated != 1 {
		t.Fatalf("counters %+v, want 1 failed / 1 simulated", c)
	}
}

// TestRunAllDrainsPastTimeout is the regression test for the suite-abort
// bug: one job forced past Config.JobTimeout must fail alone while every
// sibling runs to completion.
func TestRunAllDrainsPastTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a deliberately slow simulation")
	}
	e := New(Config{Workers: 2, JobTimeout: 300 * time.Millisecond})
	slow := testJob(core.PMEM)
	slow.Params.SimOps = 30000 // seconds of simulation: cannot beat the timeout
	fast := []Job{testJob(core.Proteus), testJob(core.ATOM), testJob(core.PMEMNoLog)}

	if err := e.RunAll(context.Background(), append([]Job{slow}, fast...)); err != nil {
		t.Fatalf("RunAll aborted the suite on a job timeout: %v", err)
	}
	if _, err := e.Run(context.Background(), slow); !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("slow job: err = %v, want ErrJobTimeout", err)
	}
	for _, j := range fast {
		res, err := e.Run(context.Background(), j)
		if err != nil || res.Report.Cycles == 0 {
			t.Fatalf("sibling %v did not survive the slow job: res=%v err=%v", j, res, err)
		}
	}
	if c := e.Counters(); c.Failed != 1 || c.Simulated != uint64(len(fast)) {
		t.Fatalf("counters %+v, want 1 failed / %d simulated", c, len(fast))
	}
	var failed int
	for _, m := range e.Metrics() {
		if m.Err != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("metrics report %d failed jobs, want 1:\n%+v", failed, e.Metrics())
	}
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[Phase]int{}
	e := New(Config{Workers: 2, Progress: func(ev Event) {
		mu.Lock()
		counts[ev.Phase]++
		mu.Unlock()
	}})
	ctx := context.Background()
	j := testJob(core.PMEMNoLog)
	if _, err := e.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[JobStart] != 1 || counts[JobDone] != 1 || counts[JobCached] != 1 {
		t.Fatalf("event counts = %v, want 1 start / 1 done / 1 cached", counts)
	}
}

// TestDoSharesWorkerPool: Do occupies a worker slot — with one worker, two
// Do calls serialize — and applies the per-job timeout as ErrJobTimeout.
func TestDoSharesWorkerPool(t *testing.T) {
	e := New(Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	ctx := context.Background()

	var active, maxActive int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Do(ctx, func(context.Context) error {
				mu.Lock()
				active++
				if active > maxActive {
					maxActive = active
				}
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				mu.Lock()
				active--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Fatalf("pool of 1 ran %d Do bodies concurrently", maxActive)
	}

	err := e.Do(ctx, func(c context.Context) error {
		<-c.Done()
		return c.Err()
	})
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("timeout surfaced as %v, want ErrJobTimeout", err)
	}
}

// TestExportedWorkloadSharesBuilds: Engine.Workload memoizes with the
// builds done by Run.
func TestExportedWorkloadSharesBuilds(t *testing.T) {
	e := New(Config{Workers: 2})
	ctx := context.Background()
	j := testJob(core.PMEMNoLog)
	if _, err := e.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	w, err := e.Workload(ctx, j.Kind, j.Params)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || len(w.Heaps) == 0 {
		t.Fatal("empty workload")
	}
	if got := e.Counters().WorkloadsBuilt; got != 1 {
		t.Fatalf("workload built %d times, want 1 (shared)", got)
	}
}

// recordingStore is a fake ResultStore that records every Store call and
// always misses on Load, so tests can assert what the engine persists.
type recordingStore struct {
	mu     sync.Mutex
	stored []string
}

func (s *recordingStore) Load(string) (*Result, error) { return nil, nil }

func (s *recordingStore) Store(key string, _ Job, _ *Result) error {
	s.mu.Lock()
	s.stored = append(s.stored, key)
	s.mu.Unlock()
	return nil
}

func (s *recordingStore) keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.stored...)
}

// bigJob is sized so a simulation runs long enough to be cancelled
// mid-flight (the core checks its context every 100k simulated cycles).
func bigJob() Job {
	cfg := config.Default()
	cfg.Cores = 2
	return Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 2, InitOps: 4096, SimOps: 30000, Seed: 7},
		Scheme: core.Proteus,
		Config: cfg,
	}
}

// TestCancelMidRunReturnsPromptly: cancelling the context while a
// simulation is in flight returns within a fraction of the job's full
// runtime, the aborted attempt is neither memoized nor persisted, and a
// subsequent Run recomputes cleanly.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	store := &recordingStore{}
	started := make(chan struct{})
	var once sync.Once
	e := New(Config{Workers: 1, Store: store, Progress: func(ev Event) {
		if ev.Phase == JobStart {
			once.Do(func() { close(started) })
		}
	}})
	j := bigJob()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, j)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled mid-run: err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Run did not return promptly")
	}

	// The aborted attempt must not have been persisted...
	if keys := store.keys(); len(keys) != 0 {
		t.Fatalf("cancelled run was written to the result store: %v", keys)
	}
	// ...nor memoized: the retry recomputes and succeeds.
	res, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("retry after mid-run cancel: %v", err)
	}
	if res == nil || res.Report == nil || res.Report.Cycles == 0 {
		t.Fatal("retry returned an empty result")
	}
	if c := e.Counters(); c.Failed != 0 {
		t.Fatalf("cancellation counted as failure: %+v", c)
	}
	// Only the successful retry reached the store.
	if keys := store.keys(); len(keys) != 1 || keys[0] != j.Fingerprint() {
		t.Fatalf("store writes after retry = %v, want exactly [%s]", keys, j.Fingerprint())
	}
}

// TestCancelDoesNotPoisonSharedEntry: when several callers share one
// in-flight job and the whole engine run is cancelled, later engines (or
// the same one) recompute rather than observing a poisoned memo entry.
func TestCancelRunAllRecomputes(t *testing.T) {
	store := &recordingStore{}
	started := make(chan struct{})
	var once sync.Once
	e := New(Config{Workers: 2, Store: store, Progress: func(ev Event) {
		if ev.Phase == JobStart {
			once.Do(func() { close(started) })
		}
	}})
	jobs := []Job{bigJob(), bigJob()} // identical: one shared entry

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.RunAll(ctx, jobs) }()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunAll err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled RunAll did not return promptly")
	}
	if keys := store.keys(); len(keys) != 0 {
		t.Fatalf("cancelled RunAll persisted results: %v", keys)
	}
	if err := e.RunAll(context.Background(), jobs); err != nil {
		t.Fatalf("RunAll retry after cancel: %v", err)
	}
	if c := e.Counters(); c.Simulated != 1 {
		t.Fatalf("retry simulated %d times, want 1 (identical jobs share one entry)", c.Simulated)
	}
}
