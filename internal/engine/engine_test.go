package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func testJob(scheme core.Scheme) Job {
	cfg := config.Default()
	cfg.Cores = 1
	return Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 1},
		Scheme: scheme,
		Config: cfg,
	}
}

func TestMemoizedSingleSimulation(t *testing.T) {
	e := New(Config{Workers: 4})
	ctx := context.Background()
	j := testJob(core.PMEMNoLog)

	// Eight concurrent identical jobs share one simulation.
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = j
	}
	if err := e.RunAll(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Simulated != 1 || c.WorkloadsBuilt != 1 {
		t.Fatalf("counters after 8 identical jobs: %+v, want 1 simulated / 1 built", c)
	}

	// A later Run is a memo hit returning the very same result.
	r1, err := e.Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("memoized Run returned distinct results")
	}
	if c := e.Counters(); c.Simulated != 1 || c.Deduped < 9 {
		t.Fatalf("counters after memo hits: %+v", c)
	}
	if r1.Report == nil || r1.Report.Cycles == 0 {
		t.Fatalf("bad result: %+v", r1)
	}
}

func TestWorkloadSharedAcrossSchemes(t *testing.T) {
	e := New(Config{Workers: 2})
	jobs := []Job{testJob(core.PMEM), testJob(core.Proteus), testJob(core.ATOM)}
	if err := e.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.Simulated != 3 {
		t.Fatalf("simulated %d, want 3 (distinct schemes)", c.Simulated)
	}
	if c.WorkloadsBuilt != 1 {
		t.Fatalf("built %d workloads, want 1 shared across schemes", c.WorkloadsBuilt)
	}
}

func TestConfigChangesAreDistinctJobs(t *testing.T) {
	e := New(Config{Workers: 2})
	a := testJob(core.Proteus)
	b := a
	b.Config.Proteus.LogQ = 4
	if err := e.RunAll(context.Background(), []Job{a, b}); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Simulated != 2 {
		t.Fatalf("simulated %d, want 2 (configs differ)", c.Simulated)
	}
}

func TestCancelledRunRetries(t *testing.T) {
	e := New(Config{Workers: 1})
	j := testJob(core.PMEM)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run: err = %v, want context.Canceled", err)
	}
	// The cancelled attempt must not be memoized.
	res, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if res == nil || res.Report.Cycles == 0 {
		t.Fatal("retry returned no result")
	}
}

func TestJobTimeout(t *testing.T) {
	e := New(Config{Workers: 1, JobTimeout: time.Nanosecond})
	if _, err := e.Run(context.Background(), testJob(core.PMEM)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunAllFirstErrorCancelsRest(t *testing.T) {
	e := New(Config{Workers: 1})
	bad := testJob(core.PMEM)
	bad.Config.Cores = 0 // fails validation inside NewSystem
	err := e.RunAll(context.Background(), []Job{bad, testJob(core.Proteus)})
	if err == nil {
		t.Fatal("RunAll swallowed the failure")
	}
}

func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[Phase]int{}
	e := New(Config{Workers: 2, Progress: func(ev Event) {
		mu.Lock()
		counts[ev.Phase]++
		mu.Unlock()
	}})
	ctx := context.Background()
	j := testJob(core.PMEMNoLog)
	if _, err := e.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[JobStart] != 1 || counts[JobDone] != 1 || counts[JobCached] != 1 {
		t.Fatalf("event counts = %v, want 1 start / 1 done / 1 cached", counts)
	}
}
