package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablations beyond the paper's own sensitivity study (§7): each isolates
// one design choice DESIGN.md calls out.

// PersistencyModels quantifies §2.1's taxonomy on the software-logging
// baseline: strict persistency (fence per store) versus the epoch-style
// durable-transaction steps the paper uses. Values are slowdowns relative
// to the durable-transaction model (higher = slower).
func PersistencyModels(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	models := []logging.PersistencyModel{logging.ModelDurableTx, logging.ModelEpoch, logging.ModelStrict}
	cols := make([]string, 0, len(models))
	for _, m := range models {
		cols = append(cols, m.String())
	}
	tab := stats.NewTable("Ablation: persistency models on software logging (slowdown vs durable-tx)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		w, err := r.workload(k)
		if err != nil {
			return nil, err
		}
		var base uint64
		for _, m := range models {
			traces, err := logging.GenerateOpts(w, core.PMEM, cfg, logging.Options{Model: m})
			if err != nil {
				return nil, err
			}
			sys, err := core.NewSystem(cfg, core.PMEM, traces, w.InitImage)
			if err != nil {
				return nil, err
			}
			rep, err := sys.Run(0)
			if err != nil {
				return nil, err
			}
			if m == logging.ModelDurableTx {
				base = rep.Cycles
			}
			tab.Set(k.Abbrev(), m.String(), float64(rep.Cycles)/float64(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LLTSizes is the LLT capacity sweep.
var LLTSizes = []int{8, 16, 32, 64, 128, 256}

// LLTSweep measures the LLT miss rate and the log flushes per transaction
// as the table grows (the paper fixes 64 entries; this shows why). The
// returned table holds miss rates in percent.
func LLTSweep(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := make([]string, 0, len(LLTSizes))
	for _, n := range LLTSizes {
		cols = append(cols, fmt.Sprintf("LLT=%d", n))
	}
	tab := stats.NewTable("Ablation: LLT miss rate (%) vs capacity", "bench", benchRows(), cols)
	tab.Format = "%8.1f"
	for _, k := range workload.Table2 {
		for _, n := range LLTSizes {
			c := cfg
			c.Proteus.LLTSize = n
			ways := c.Proteus.LLTWays
			if n < ways {
				ways = n
			}
			c.Proteus.LLTWays = ways
			rep, err := r.run(k, core.Proteus, c)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LLT=%d", n), rep.LLTMissRate())
		}
	}
	return tab, nil
}

// StaticVsDynamicFiltering compares the hardware LLT against a
// perfect-alias compiler that statically eliminates duplicate log pairs
// (§4.2 discusses exactly this alternative). Columns: Proteus speedup
// over PMEM with dynamic filtering, with static elimination, and the
// log-flush reduction static elimination achieves over the instruction
// stream the LLT sees.
func StaticVsDynamicFiltering(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := []string{"dynamic(LLT)", "static(compiler)", "logops-emitted-ratio"}
	tab := stats.NewTable("Ablation: LLT vs compiler-side log elimination", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		w, err := r.workload(k)
		if err != nil {
			return nil, err
		}
		base, err := r.run(k, core.PMEM, cfg)
		if err != nil {
			return nil, err
		}
		var speedup [2]float64
		var emitted [2]uint64
		for i, o := range []logging.Options{{}, {StaticLogElim: true}} {
			traces, err := logging.GenerateOpts(w, core.Proteus, cfg, o)
			if err != nil {
				return nil, err
			}
			var logOps uint64
			for _, tr := range traces {
				logOps += uint64(tr.Summarize().LogFlushes)
			}
			emitted[i] = logOps
			sys, err := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
			if err != nil {
				return nil, err
			}
			rep, err := sys.Run(0)
			if err != nil {
				return nil, err
			}
			speedup[i] = rep.Speedup(base)
		}
		tab.Set(k.Abbrev(), "dynamic(LLT)", speedup[0])
		tab.Set(k.Abbrev(), "static(compiler)", speedup[1])
		tab.Set(k.Abbrev(), "logops-emitted-ratio", float64(emitted[1])/float64(max(emitted[0], 1)))
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// ATOMInFlightSizes sweeps how many concurrent log-creation requests the
// ATOM model allows.
var ATOMInFlightSizes = []int{1, 2, 4, 8, 16}

// ATOMInFlightSweep shows the cost of ATOM's store-retirement coupling:
// even with deeply pipelined log requests it cannot reach Proteus, whose
// LogQ decouples stores entirely. Values are speedups over PMEM.
func ATOMInFlightSweep(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := make([]string, 0, len(ATOMInFlightSizes)+1)
	for _, n := range ATOMInFlightSizes {
		cols = append(cols, fmt.Sprintf("inflight=%d", n))
	}
	cols = append(cols, "Proteus")
	tab := stats.NewTable("Ablation: ATOM log-request pipelining (speedup vs PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := r.run(k, core.PMEM, cfg)
		if err != nil {
			return nil, err
		}
		for _, n := range ATOMInFlightSizes {
			c := cfg
			c.ATOM.InFlight = n
			rep, err := r.run(k, core.ATOM, c)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("inflight=%d", n), rep.Speedup(base))
		}
		rep, err := r.run(k, core.Proteus, cfg)
		if err != nil {
			return nil, err
		}
		tab.Set(k.Abbrev(), "Proteus", rep.Speedup(base))
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// WPQSizes sweeps the write pending queue capacity.
var WPQSizes = []int{16, 32, 64, 128, 256}

// WPQSweep shows the sensitivity of the software baseline to WPQ depth
// (the paper motivates the LPQ by the cost of growing the WPQ; this is
// the performance side of that trade).
func WPQSweep(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := make([]string, 0, len(WPQSizes))
	for _, n := range WPQSizes {
		cols = append(cols, fmt.Sprintf("WPQ=%d", n))
	}
	tab := stats.NewTable("Ablation: PMEM cycles normalized to WPQ=128", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		var base uint64
		{
			c := cfg
			c.Mem.WPQ = 128
			rep, err := r.run(k, core.PMEM, c)
			if err != nil {
				return nil, err
			}
			base = rep.Cycles
		}
		for _, n := range WPQSizes {
			c := cfg
			c.Mem.WPQ = n
			rep, err := r.run(k, core.PMEM, c)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("WPQ=%d", n), float64(rep.Cycles)/float64(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
