package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablations beyond the paper's own sensitivity study (§7): each isolates
// one design choice DESIGN.md calls out. Like the figures, each declares
// its job matrix and assembles from the engine's keyed results.

// PersistencyModels quantifies §2.1's taxonomy on the software-logging
// baseline: strict persistency (fence per store) versus the epoch-style
// durable-transaction steps the paper uses. Values are slowdowns relative
// to the durable-transaction model (higher = slower).
func (s *Suite) PersistencyModels() (*stats.Table, error) {
	cfg := s.config()
	models := []logging.PersistencyModel{logging.ModelDurableTx, logging.ModelEpoch, logging.ModelStrict}
	job := func(k workload.Kind, m logging.PersistencyModel) engine.Job {
		j := s.job(k, core.PMEM, cfg)
		j.Log = logging.Options{Model: m}
		return j
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, m := range models {
			jobs = append(jobs, job(k, m))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(models))
	for _, m := range models {
		cols = append(cols, m.String())
	}
	tab := stats.NewTable("Ablation: persistency models on software logging (slowdown vs durable-tx)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(job(k, logging.ModelDurableTx))
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			rep, err := s.reportCell(job(k, m))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil || base.Cycles == 0 {
				tab.Set(k.Abbrev(), m.String(), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), m.String(), float64(rep.Cycles)/float64(base.Cycles))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LLTSizes is the LLT capacity sweep.
var LLTSizes = []int{8, 16, 32, 64, 128, 256}

// lltConfig returns the suite config with an n-entry LLT, shrinking the
// associativity when the capacity is below the default way count.
func (s *Suite) lltConfig(n int) config.Config {
	c := s.config()
	c.Proteus.LLTSize = n
	if n < c.Proteus.LLTWays {
		c.Proteus.LLTWays = n
	}
	return c
}

// LLTSweep measures the LLT miss rate and the log flushes per transaction
// as the table grows (the paper fixes 64 entries; this shows why). The
// returned table holds miss rates in percent.
func (s *Suite) LLTSweep() (*stats.Table, error) {
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, n := range LLTSizes {
			jobs = append(jobs, s.job(k, core.Proteus, s.lltConfig(n)))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(LLTSizes))
	for _, n := range LLTSizes {
		cols = append(cols, fmt.Sprintf("LLT=%d", n))
	}
	tab := stats.NewTable("Ablation: LLT miss rate (%) vs capacity", "bench", benchRows(), cols)
	tab.Format = "%8.1f"
	for _, k := range workload.Table2 {
		for _, n := range LLTSizes {
			rep, err := s.reportCell(s.job(k, core.Proteus, s.lltConfig(n)))
			if err != nil {
				return nil, err
			}
			if rep == nil {
				tab.Set(k.Abbrev(), fmt.Sprintf("LLT=%d", n), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LLT=%d", n), rep.LLTMissRate())
		}
	}
	return tab, nil
}

// StaticVsDynamicFiltering compares the hardware LLT against a
// perfect-alias compiler that statically eliminates duplicate log pairs
// (§4.2 discusses exactly this alternative). Columns: Proteus speedup
// over PMEM with dynamic filtering, with static elimination, and the
// log-flush reduction static elimination achieves over the instruction
// stream the LLT sees.
func (s *Suite) StaticVsDynamicFiltering() (*stats.Table, error) {
	cfg := s.config()
	static := func(k workload.Kind) engine.Job {
		j := s.job(k, core.Proteus, cfg)
		j.Log = logging.Options{StaticLogElim: true}
		return j
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.PMEM, cfg), s.job(k, core.Proteus, cfg), static(k))
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := []string{"dynamic(LLT)", "static(compiler)", "logops-emitted-ratio"}
	tab := stats.NewTable("Ablation: LLT vs compiler-side log elimination", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, cfg))
		if err != nil {
			return nil, err
		}
		dyn, dynErr := s.eng.Run(s.ctx, s.job(k, core.Proteus, cfg))
		st, stErr := s.eng.Run(s.ctx, static(k))
		if s.ctx.Err() != nil {
			if dynErr != nil {
				return nil, dynErr
			}
			return nil, stErr
		}
		if base == nil || dynErr != nil || stErr != nil {
			tab.Set(k.Abbrev(), "dynamic(LLT)", math.NaN())
			tab.Set(k.Abbrev(), "static(compiler)", math.NaN())
			tab.Set(k.Abbrev(), "logops-emitted-ratio", math.NaN())
			continue
		}
		tab.Set(k.Abbrev(), "dynamic(LLT)", dyn.Report.Speedup(base))
		tab.Set(k.Abbrev(), "static(compiler)", st.Report.Speedup(base))
		tab.Set(k.Abbrev(), "logops-emitted-ratio",
			float64(st.EmittedLogFlushes)/float64(max(dyn.EmittedLogFlushes, 1)))
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// ATOMInFlightSizes sweeps how many concurrent log-creation requests the
// ATOM model allows.
var ATOMInFlightSizes = []int{1, 2, 4, 8, 16}

// ATOMInFlightSweep shows the cost of ATOM's store-retirement coupling:
// even with deeply pipelined log requests it cannot reach Proteus, whose
// LogQ decouples stores entirely. Values are speedups over PMEM.
func (s *Suite) ATOMInFlightSweep() (*stats.Table, error) {
	cfg := s.config()
	variant := func(n int) config.Config {
		c := cfg
		c.ATOM.InFlight = n
		return c
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.PMEM, cfg), s.job(k, core.Proteus, cfg))
		for _, n := range ATOMInFlightSizes {
			jobs = append(jobs, s.job(k, core.ATOM, variant(n)))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(ATOMInFlightSizes)+1)
	for _, n := range ATOMInFlightSizes {
		cols = append(cols, fmt.Sprintf("inflight=%d", n))
	}
	cols = append(cols, "Proteus")
	tab := stats.NewTable("Ablation: ATOM log-request pipelining (speedup vs PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, cfg))
		if err != nil {
			return nil, err
		}
		for _, n := range ATOMInFlightSizes {
			rep, err := s.reportCell(s.job(k, core.ATOM, variant(n)))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil {
				tab.Set(k.Abbrev(), fmt.Sprintf("inflight=%d", n), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("inflight=%d", n), rep.Speedup(base))
		}
		rep, err := s.reportCell(s.job(k, core.Proteus, cfg))
		if err != nil {
			return nil, err
		}
		if base == nil || rep == nil {
			tab.Set(k.Abbrev(), "Proteus", math.NaN())
			continue
		}
		tab.Set(k.Abbrev(), "Proteus", rep.Speedup(base))
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// WPQSizes sweeps the write pending queue capacity.
var WPQSizes = []int{16, 32, 64, 128, 256}

// WPQSweep shows the sensitivity of the software baseline to WPQ depth
// (the paper motivates the LPQ by the cost of growing the WPQ; this is
// the performance side of that trade).
func (s *Suite) WPQSweep() (*stats.Table, error) {
	variant := func(n int) config.Config {
		c := s.config()
		c.Mem.WPQ = n
		if c.Mem.DrainHi > n {
			c.Mem.DrainHi = n
		}
		return c
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.PMEM, variant(128)))
		for _, n := range WPQSizes {
			jobs = append(jobs, s.job(k, core.PMEM, variant(n)))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(WPQSizes))
	for _, n := range WPQSizes {
		cols = append(cols, fmt.Sprintf("WPQ=%d", n))
	}
	tab := stats.NewTable("Ablation: PMEM cycles normalized to WPQ=128", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, variant(128)))
		if err != nil {
			return nil, err
		}
		for _, n := range WPQSizes {
			rep, err := s.reportCell(s.job(k, core.PMEM, variant(n)))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil || base.Cycles == 0 {
				tab.Set(k.Abbrev(), fmt.Sprintf("WPQ=%d", n), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("WPQ=%d", n), float64(rep.Cycles)/float64(base.Cycles))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// WPQDrainAges sweeps the maximum WPQ entry age before a forced drain
// (config.Mem.MaxWPQAge; the default is 48).
var WPQDrainAges = []int{8, 16, 48, 128, 384}

// WPQDrainSweep shows the coalescing-vs-latency trade in the WPQ drain
// policy now that it is configurable: draining entries young forfeits
// write coalescing and row batching, draining them old risks full-queue
// stalls. Values are PMEM cycles normalized to the default age of 48.
func (s *Suite) WPQDrainSweep() (*stats.Table, error) {
	variant := func(age int) config.Config {
		c := s.config()
		c.Mem.MaxWPQAge = age
		return c
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, age := range WPQDrainAges {
			jobs = append(jobs, s.job(k, core.PMEM, variant(age)))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(WPQDrainAges))
	for _, age := range WPQDrainAges {
		cols = append(cols, fmt.Sprintf("age=%d", age))
	}
	tab := stats.NewTable("Ablation: PMEM cycles vs WPQ drain age (normalized to age=48)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, variant(48)))
		if err != nil {
			return nil, err
		}
		for _, age := range WPQDrainAges {
			rep, err := s.reportCell(s.job(k, core.PMEM, variant(age)))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil || base.Cycles == 0 {
				tab.Set(k.Abbrev(), fmt.Sprintf("age=%d", age), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("age=%d", age), float64(rep.Cycles)/float64(base.Cycles))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Package-level wrappers (fresh single-ablation suite each; see the
// figure wrappers in experiments.go).

// PersistencyModels runs the persistency-model ablation.
func PersistencyModels(opt Options) (*stats.Table, error) {
	return NewSuite(nil, opt, nil).PersistencyModels()
}

// LLTSweep runs the LLT capacity ablation.
func LLTSweep(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).LLTSweep() }

// StaticVsDynamicFiltering runs the LLT-vs-compiler ablation.
func StaticVsDynamicFiltering(opt Options) (*stats.Table, error) {
	return NewSuite(nil, opt, nil).StaticVsDynamicFiltering()
}

// ATOMInFlightSweep runs the ATOM pipelining ablation.
func ATOMInFlightSweep(opt Options) (*stats.Table, error) {
	return NewSuite(nil, opt, nil).ATOMInFlightSweep()
}

// WPQSweep runs the WPQ capacity ablation.
func WPQSweep(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).WPQSweep() }

// WPQDrainSweep runs the WPQ drain-age ablation.
func WPQDrainSweep(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).WPQDrainSweep() }
