package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/engine"
)

// TestEngineDeterminismAcrossWorkers asserts the tentpole invariant: for a
// fixed seed, the tables a suite produces are byte-identical whether the
// engine runs 1 worker or 8 — results are keyed, not ordered by
// completion. Covers Figure 6 and the WPQ drain-age ablation.
func TestEngineDeterminismAcrossWorkers(t *testing.T) {
	render := func(workers int) ([]byte, engine.Counters) {
		eng := engine.New(engine.Config{Workers: workers})
		s := NewSuite(context.Background(), Quick(), eng)
		f6, err := s.Figure6()
		if err != nil {
			t.Fatal(err)
		}
		ab, err := s.WPQDrainSweep()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f6.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), eng.Counters()
	}

	serial, c1 := render(1)
	parallel, c8 := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("tables differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if c1.Simulated != c8.Simulated {
		t.Errorf("simulation counts differ: %d vs %d", c1.Simulated, c8.Simulated)
	}
	// Figure 6 shares its PMEM runs with the drain sweep's age=48 column:
	// the suite must simulate each unique tuple exactly once.
	// Figure 6: 6 benches x 6 schemes = 36. Drain sweep: 6 benches x 5
	// ages, minus the 6 PMEM age=48 runs Figure 6 already did = 24.
	if want := uint64(60); c8.Simulated != want {
		t.Errorf("simulated %d unique tuples, want %d (duplicate or missing runs)", c8.Simulated, want)
	}
	t.Logf("jobs=8 counters: %+v", c8)
}
