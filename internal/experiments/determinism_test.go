package experiments

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
)

// traceCapture records one in-memory JSONL trace per executed job, keyed
// by the job fingerprint — the test-side analogue of proteus-bench's
// -trace-dir.
type traceCapture struct {
	mu   sync.Mutex
	bufs map[string]*bytes.Buffer
}

func newTraceCapture() *traceCapture {
	return &traceCapture{bufs: make(map[string]*bytes.Buffer)}
}

func (tc *traceCapture) hook(j engine.Job) (*trace.Tracer, error) {
	buf := &bytes.Buffer{}
	tc.mu.Lock()
	tc.bufs[j.Fingerprint()] = buf
	tc.mu.Unlock()
	meta := trace.Meta{Label: j.String(), Fingerprint: j.Fingerprint(), Cores: j.Config.Cores}
	return trace.NewJSONLTracer(buf, meta, 5000)
}

// TestEngineDeterminismAcrossWorkers asserts the tentpole invariant: for a
// fixed seed, the tables a suite produces — and the epoch-sampled trace of
// every job — are byte-identical whether the engine runs 1 worker or 8:
// results are keyed, not ordered by completion, and each simulation runs
// on a single goroutine. Covers Figure 6 and the WPQ drain-age ablation.
func TestEngineDeterminismAcrossWorkers(t *testing.T) {
	render := func(workers int, stepper core.Stepper) ([]byte, engine.Counters, map[string]*bytes.Buffer) {
		tc := newTraceCapture()
		eng := engine.New(engine.Config{Workers: workers, Trace: tc.hook, Stepper: stepper})
		s := NewSuite(context.Background(), Quick(), eng)
		f6, err := s.Figure6()
		if err != nil {
			t.Fatal(err)
		}
		ab, err := s.WPQDrainSweep()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f6.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), eng.Counters(), tc.bufs
	}

	serial, c1, tr1 := render(1, core.StepperFast)
	parallel, c8, tr8 := render(8, core.StepperFast)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("tables differ between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	// The event-driven fast-forward stepper is the default; the per-cycle
	// reference stepper must produce the same tables and traces.
	reference, cRef, trRef := render(1, core.StepperReference)
	if !bytes.Equal(serial, reference) {
		t.Fatalf("tables differ between fast and reference steppers:\n--- fast ---\n%s\n--- reference ---\n%s", serial, reference)
	}
	if c1.Simulated != cRef.Simulated {
		t.Errorf("simulation counts differ across steppers: %d vs %d", c1.Simulated, cRef.Simulated)
	}
	for fp, b1 := range tr1 {
		bRef, ok := trRef[fp]
		if !ok {
			t.Fatalf("job %s traced under fast stepper but not under reference", fp)
		}
		if !bytes.Equal(b1.Bytes(), bRef.Bytes()) {
			t.Errorf("trace for job %s differs between fast and reference steppers", fp)
		}
	}
	if c1.Simulated != c8.Simulated {
		t.Errorf("simulation counts differ: %d vs %d", c1.Simulated, c8.Simulated)
	}
	// Figure 6 shares its PMEM runs with the drain sweep's age=48 column:
	// the suite must simulate each unique tuple exactly once.
	// Figure 6: 6 benches x 6 schemes = 36. Drain sweep: 6 benches x 5
	// ages, minus the 6 PMEM age=48 runs Figure 6 already did = 24.
	if want := uint64(60); c8.Simulated != want {
		t.Errorf("simulated %d unique tuples, want %d (duplicate or missing runs)", c8.Simulated, want)
	}
	// Every job traced once, and each trace byte-identical across worker
	// counts.
	if len(tr1) != int(c1.Simulated) || len(tr8) != int(c8.Simulated) {
		t.Fatalf("trace counts: %d at jobs=1, %d at jobs=8, want %d each", len(tr1), len(tr8), c1.Simulated)
	}
	for fp, b1 := range tr1 {
		b8, ok := tr8[fp]
		if !ok {
			t.Fatalf("job %s traced at jobs=1 but not at jobs=8", fp)
		}
		if b1.Len() == 0 {
			t.Fatalf("job %s produced an empty trace", fp)
		}
		if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
			t.Errorf("trace for job %s differs between jobs=1 and jobs=8", fp)
		}
	}
	t.Logf("jobs=8 counters: %+v, %d traces captured", c8, len(tr8))
}
