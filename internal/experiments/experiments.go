// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7): one function per figure/table, each returning the
// same rows and series the paper plots. The per-experiment index lives in
// DESIGN.md §4; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
//
// Figures declare their (workload, scheme, config) job matrix and hand it
// to a shared simulation engine (internal/engine), which runs the jobs on
// a bounded worker pool and memoizes each tuple; the figure then assembles
// its table from the keyed results in a fixed order, so output is
// byte-identical regardless of worker count. Sharing one Suite across
// figures (as cmd/proteus-bench does) dedupes the many runs Figures
// 6/7/8/11/12 and the ablations have in common.
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options sizes the experiment runs.
type Options struct {
	// Threads is the worker-thread/core count (the paper uses 4).
	Threads int
	// SimScale divides the Table 2 timed-operation counts; 1 reproduces
	// the paper's counts, larger values shrink runs shape-preservingly.
	SimScale int
	// InitScale divides the Table 2 initialization counts. Keep it small
	// (1-2): the initialization sets the memory footprint, and the
	// schemes' relative behaviour depends on realistic miss rates.
	InitScale int
	Seed      int64
}

// Default returns the options the benchmark harness uses: full footprint,
// 1/25th of the timed operations.
func Default() Options {
	return Options{Threads: 4, SimScale: 25, InitScale: 1, Seed: 42}
}

// Quick returns small options for tests (distorted magnitudes, same
// plumbing).
func Quick() Options {
	return Options{Threads: 2, SimScale: 400, InitScale: 25, Seed: 42}
}

func (o Options) params(k workload.Kind) workload.Params {
	p := k.DefaultParams(1)
	p.Threads = o.Threads
	p.Seed = o.Seed
	if o.SimScale > 1 {
		p.SimOps /= o.SimScale
	}
	if o.InitScale > 1 {
		p.InitOps /= o.InitScale
		p.SSItems /= o.InitScale
	}
	if p.SimOps < 8 {
		p.SimOps = 8
	}
	if p.InitOps < 16 {
		p.InitOps = 16
	}
	if p.SSItems < 64 {
		p.SSItems = 64
	}
	return p
}

// Suite runs figures through one shared engine: every (workload, scheme,
// config) tuple any of its figures needs is simulated at most once for
// the suite's lifetime.
type Suite struct {
	opt Options
	eng *engine.Engine
	ctx context.Context
}

// NewSuite returns a suite over the engine. A nil context means
// context.Background(); a nil engine gets a private one with default
// settings (GOMAXPROCS workers).
func NewSuite(ctx context.Context, opt Options, eng *engine.Engine) *Suite {
	if ctx == nil {
		ctx = context.Background()
	}
	if eng == nil {
		eng = engine.New(engine.Config{})
	}
	return &Suite{opt: opt, eng: eng, ctx: ctx}
}

// Engine exposes the suite's engine (for its execution counters).
func (s *Suite) Engine() *engine.Engine { return s.eng }

// config returns the default machine scaled to the suite's thread count.
func (s *Suite) config() config.Config {
	cfg := config.Default()
	cfg.Cores = s.opt.Threads
	return cfg
}

// job declares one Table 2 benchmark run.
func (s *Suite) job(k workload.Kind, scheme core.Scheme, cfg config.Config) engine.Job {
	return engine.Job{Kind: k, Params: s.opt.params(k), Scheme: scheme, Config: cfg}
}

// reportCell fetches one job's report for a table cell. A per-job
// failure (timeout, simulation error) yields a nil report and nil error:
// the cell stays missing (NaN, rendered "-") while the rest of the
// figure renders from the survivors. Only suite-level cancellation
// aborts the figure.
func (s *Suite) reportCell(j engine.Job) (*stats.Report, error) {
	res, err := s.eng.Run(s.ctx, j)
	if err != nil {
		if s.ctx.Err() != nil {
			return nil, err
		}
		return nil, nil
	}
	return res.Report, nil
}

func benchRows() []string {
	rows := make([]string, 0, len(workload.Table2))
	for _, k := range workload.Table2 {
		rows = append(rows, k.Abbrev())
	}
	return rows
}

// speedupFigure runs the Figure 6/9/10 matrix on the given memory kind:
// speedup of every scheme over the PMEM software-logging baseline.
func (s *Suite) speedupFigure(kind config.MemKind, title string) (*stats.Table, error) {
	cfg := s.config().WithMemKind(kind)
	schemes := []core.Scheme{
		core.PMEM, core.PMEMPcommit, core.ATOM,
		core.ProteusNoLWR, core.Proteus, core.PMEMNoLog,
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, sc := range schemes {
			jobs = append(jobs, s.job(k, sc, cfg))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := []string{
		core.PMEMPcommit.String(), core.ATOM.String(),
		core.ProteusNoLWR.String(), core.Proteus.String(), core.PMEMNoLog.String(),
	}
	tab := stats.NewTable(title, "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, cfg))
		if err != nil {
			return nil, err
		}
		for _, sc := range []core.Scheme{core.PMEMPcommit, core.ATOM, core.ProteusNoLWR, core.Proteus, core.PMEMNoLog} {
			rep, err := s.reportCell(s.job(k, sc, cfg))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil {
				tab.Set(k.Abbrev(), sc.String(), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), sc.String(), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Figure6 reproduces the speedup comparison on (fast) NVMM with software
// logging with PMEM as baseline.
func (s *Suite) Figure6() (*stats.Table, error) {
	return s.speedupFigure(config.NVMFast, "Figure 6: speedup on NVMM (baseline: PMEM software logging)")
}

// Figure9 reproduces the slow-NVMM study (300ns writes, §7.1).
func (s *Suite) Figure9() (*stats.Table, error) {
	return s.speedupFigure(config.NVMSlow, "Figure 9: speedup on slow NVMM, 300ns writes (baseline: PMEM)")
}

// Figure10 reproduces the DRAM study (§7.2).
func (s *Suite) Figure10() (*stats.Table, error) {
	return s.speedupFigure(config.DRAM, "Figure 10: speedup on DRAM (baseline: PMEM)")
}

// Figure7 reproduces the front-end stall comparison: stall cycles
// normalized to PMEM+nolog.
func (s *Suite) Figure7() (*stats.Table, error) {
	cfg := s.config()
	schemes := []core.Scheme{core.ATOM, core.Proteus, core.PMEMNoLog}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, sc := range schemes {
			jobs = append(jobs, s.job(k, sc, cfg))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := []string{core.ATOM.String(), core.Proteus.String(), core.PMEMNoLog.String()}
	tab := stats.NewTable("Figure 7: front-end stall cycles (normalized to PMEM+nolog)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		ideal, err := s.reportCell(s.job(k, core.PMEMNoLog, cfg))
		if err != nil {
			return nil, err
		}
		base := 1.0
		if ideal != nil && ideal.TotalFrontEndStalls() > 0 {
			base = float64(ideal.TotalFrontEndStalls())
		}
		for _, sc := range schemes {
			rep, err := s.reportCell(s.job(k, sc, cfg))
			if err != nil {
				return nil, err
			}
			if ideal == nil || rep == nil {
				tab.Set(k.Abbrev(), sc.String(), math.NaN())
				continue
			}
			stalls := float64(rep.TotalFrontEndStalls())
			if stalls < 1 {
				stalls = 1 // keep the geomean defined when a run never stalls
			}
			tab.Set(k.Abbrev(), sc.String(), stalls/base)
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Figure8 reproduces the NVMM write comparison: writes normalized to
// PMEM+nolog.
func (s *Suite) Figure8() (*stats.Table, error) {
	cfg := s.config()
	schemes := []core.Scheme{core.PMEM, core.ATOM, core.Proteus, core.PMEMNoLog}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		for _, sc := range schemes {
			jobs = append(jobs, s.job(k, sc, cfg))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := []string{core.PMEM.String(), core.ATOM.String(), core.Proteus.String(), core.PMEMNoLog.String()}
	tab := stats.NewTable("Figure 8: NVMM writes (normalized to PMEM+nolog)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		ideal, err := s.reportCell(s.job(k, core.PMEMNoLog, cfg))
		if err != nil {
			return nil, err
		}
		base := 1.0
		if ideal != nil && ideal.MemStat.NVMWrites() > 0 {
			base = float64(ideal.MemStat.NVMWrites())
		}
		for _, sc := range schemes {
			rep, err := s.reportCell(s.job(k, sc, cfg))
			if err != nil {
				return nil, err
			}
			if ideal == nil || rep == nil {
				tab.Set(k.Abbrev(), sc.String(), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), sc.String(), float64(rep.MemStat.NVMWrites())/base)
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LogQSizes is the Figure 11 sweep.
var LogQSizes = []int{1, 2, 4, 8, 16, 32, 64}

// Figure11 reproduces the LogQ-size sensitivity: Proteus speedup over PMEM
// for LogQ sizes 1-64.
func (s *Suite) Figure11() (*stats.Table, error) {
	cfg := s.config()
	jobs := []engine.Job{}
	variants := make(map[int]config.Config, len(LogQSizes))
	for _, n := range LogQSizes {
		c := cfg
		c.Proteus.LogQ = n
		variants[n] = c
	}
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.PMEM, cfg))
		for _, n := range LogQSizes {
			jobs = append(jobs, s.job(k, core.Proteus, variants[n]))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(LogQSizes))
	for _, n := range LogQSizes {
		cols = append(cols, fmt.Sprintf("LogQ=%d", n))
	}
	tab := stats.NewTable("Figure 11: Proteus speedup vs LogQ size (baseline: PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, cfg))
		if err != nil {
			return nil, err
		}
		for _, n := range LogQSizes {
			rep, err := s.reportCell(s.job(k, core.Proteus, variants[n]))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil {
				tab.Set(k.Abbrev(), fmt.Sprintf("LogQ=%d", n), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LogQ=%d", n), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LPQSizes is the Figure 12 sweep (LogQ fixed at 16).
var LPQSizes = []int{16, 32, 64, 128, 256, 512}

// Figure12 reproduces the LPQ-size sensitivity at LogQ=16.
func (s *Suite) Figure12() (*stats.Table, error) {
	cfg := s.config()
	variants := make(map[int]config.Config, len(LPQSizes))
	for _, n := range LPQSizes {
		c := cfg
		c.Mem.LPQ = n
		variants[n] = c
	}
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.PMEM, cfg))
		for _, n := range LPQSizes {
			jobs = append(jobs, s.job(k, core.Proteus, variants[n]))
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(LPQSizes))
	for _, n := range LPQSizes {
		cols = append(cols, fmt.Sprintf("LPQ=%d", n))
	}
	tab := stats.NewTable("Figure 12: Proteus speedup vs LPQ size, LogQ=16 (baseline: PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := s.reportCell(s.job(k, core.PMEM, cfg))
		if err != nil {
			return nil, err
		}
		for _, n := range LPQSizes {
			rep, err := s.reportCell(s.job(k, core.Proteus, variants[n]))
			if err != nil {
				return nil, err
			}
			if base == nil || rep == nil {
				tab.Set(k.Abbrev(), fmt.Sprintf("LPQ=%d", n), math.NaN())
				continue
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LPQ=%d", n), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Table3Sizes is the large-transaction element sweep.
var Table3Sizes = []int{1024, 2048, 4096, 8192}

// Table3Result reproduces the large-transaction study on the linked-list
// microbenchmark: Proteus and ideal speedups over PMEM, and the log-entry
// amplification before and after the LLT.
type Table3Result struct {
	Speedups *stats.Table
	// EntriesPerTxn / FlushedPerTxn report logging ops per transaction
	// before and after LLT filtering for each size (§7.3's 20-156x and
	// 7-52x factors are relative to the Table 2 benchmarks).
	EntriesPerTxn map[int]float64
	FlushedPerTxn map[int]float64
}

// table3Params sizes the linked-list workload for n-element transactions.
func (s *Suite) table3Params(n int) workload.Params {
	p := workload.LinkedList.DefaultParams(1)
	p.Threads = s.opt.Threads
	p.Seed = s.opt.Seed
	p.ListElems = n
	p.SimOps = 192 / s.opt.Threads
	if s.opt.SimScale > 25 {
		p.SimOps = 64 / s.opt.Threads
	}
	if p.SimOps < 8 {
		p.SimOps = 8
	}
	return p
}

// Table3 runs the sweep.
func (s *Suite) Table3() (*Table3Result, error) {
	cfg := s.config()
	schemes := []core.Scheme{core.PMEM, core.Proteus, core.PMEMNoLog}
	var jobs []engine.Job
	for _, n := range Table3Sizes {
		for _, sc := range schemes {
			jobs = append(jobs, engine.Job{Kind: workload.LinkedList, Params: s.table3Params(n), Scheme: sc, Config: cfg})
		}
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(Table3Sizes))
	for _, n := range Table3Sizes {
		rows = append(rows, fmt.Sprintf("%d", n))
	}
	res := &Table3Result{
		Speedups:      stats.NewTable("Table 3: speedups for large transactions (baseline: PMEM)", "txn size", rows, []string{"Proteus", "PMEM+nolog(ideal)"}),
		EntriesPerTxn: make(map[int]float64),
		FlushedPerTxn: make(map[int]float64),
	}
	for _, n := range Table3Sizes {
		p := s.table3Params(n)
		job := func(sc core.Scheme) engine.Job {
			return engine.Job{Kind: workload.LinkedList, Params: p, Scheme: sc, Config: cfg}
		}
		base, err := s.reportCell(job(core.PMEM))
		if err != nil {
			return nil, err
		}
		proteus, err := s.reportCell(job(core.Proteus))
		if err != nil {
			return nil, err
		}
		ideal, err := s.reportCell(job(core.PMEMNoLog))
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%d", n)
		if base == nil || proteus == nil {
			res.Speedups.Set(row, "Proteus", math.NaN())
		} else {
			res.Speedups.Set(row, "Proteus", proteus.Speedup(base))
		}
		if base == nil || ideal == nil {
			res.Speedups.Set(row, "PMEM+nolog(ideal)", math.NaN())
		} else {
			res.Speedups.Set(row, "PMEM+nolog(ideal)", ideal.Speedup(base))
		}
		if proteus == nil {
			res.EntriesPerTxn[n] = math.NaN()
			res.FlushedPerTxn[n] = math.NaN()
			continue
		}
		txns := float64(p.SimOps * s.opt.Threads)
		var logLoads, flushes uint64
		for i := range proteus.CoreStat {
			logLoads += proteus.CoreStat[i].LogLoads
			flushes += proteus.CoreStat[i].LogFlushes
		}
		res.EntriesPerTxn[n] = float64(logLoads) / txns
		res.FlushedPerTxn[n] = float64(flushes) / txns
	}
	return res, nil
}

// Table4 reproduces the LLT miss rates (64-entry LLT).
func (s *Suite) Table4() (*stats.Table, error) {
	cfg := s.config()
	var jobs []engine.Job
	for _, k := range workload.Table2 {
		jobs = append(jobs, s.job(k, core.Proteus, cfg))
	}
	if err := s.eng.RunAll(s.ctx, jobs); err != nil {
		return nil, err
	}
	tab := stats.NewTable("Table 4: LLT miss rate (%), 64-entry 8-way LLT", "bench", benchRows(), []string{"miss rate"})
	tab.Format = "%8.1f"
	for _, k := range workload.Table2 {
		rep, err := s.reportCell(s.job(k, core.Proteus, cfg))
		if err != nil {
			return nil, err
		}
		if rep == nil {
			tab.Set(k.Abbrev(), "miss rate", math.NaN())
			continue
		}
		tab.Set(k.Abbrev(), "miss rate", rep.LLTMissRate())
	}
	return tab, nil
}

// LogQMemoryDelta reproduces the §7.2 observation: the speedup gained by
// growing the LogQ from 8 to 16 entries on NVM vs on DRAM.
func (s *Suite) LogQMemoryDelta() (nvmDelta, dramDelta float64, err error) {
	for i, kind := range []config.MemKind{config.NVMFast, config.DRAM} {
		cfg := s.config().WithMemKind(kind)
		variants := map[int]config.Config{}
		var jobs []engine.Job
		for _, n := range []int{8, 16} {
			c := cfg
			c.Proteus.LogQ = n
			variants[n] = c
			for _, k := range workload.Table2 {
				jobs = append(jobs, s.job(k, core.PMEM, cfg), s.job(k, core.Proteus, c))
			}
		}
		if err := s.eng.RunAll(s.ctx, jobs); err != nil {
			return 0, 0, err
		}
		var sp [2]float64 // LogQ 8, 16 geomean speedups
		for j, n := range []int{8, 16} {
			var speedups []float64
			for _, k := range workload.Table2 {
				base, err := s.reportCell(s.job(k, core.PMEM, cfg))
				if err != nil {
					return 0, 0, err
				}
				rep, err := s.reportCell(s.job(k, core.Proteus, variants[n]))
				if err != nil {
					return 0, 0, err
				}
				if base == nil || rep == nil {
					continue // failed run: geomean over the survivors
				}
				speedups = append(speedups, rep.Speedup(base))
			}
			sp[j] = stats.GeoMean(speedups)
		}
		if i == 0 {
			nvmDelta = sp[1] - sp[0]
		} else {
			dramDelta = sp[1] - sp[0]
		}
	}
	return nvmDelta, dramDelta, nil
}

// ------------------------------------------------------------------------
// Package-level wrappers: each runs on a fresh single-figure suite. Tools
// that generate several figures should share one Suite instead, so common
// tuples are simulated once.

// Figure6 reproduces the NVMM speedup comparison (see Suite.Figure6).
func Figure6(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure6() }

// Figure7 reproduces the front-end stall comparison (see Suite.Figure7).
func Figure7(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure7() }

// Figure8 reproduces the NVMM write comparison (see Suite.Figure8).
func Figure8(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure8() }

// Figure9 reproduces the slow-NVMM study (see Suite.Figure9).
func Figure9(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure9() }

// Figure10 reproduces the DRAM study (see Suite.Figure10).
func Figure10(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure10() }

// Figure11 reproduces the LogQ-size sensitivity (see Suite.Figure11).
func Figure11(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure11() }

// Figure12 reproduces the LPQ-size sensitivity (see Suite.Figure12).
func Figure12(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Figure12() }

// Table3 runs the large-transaction sweep (see Suite.Table3).
func Table3(opt Options) (*Table3Result, error) { return NewSuite(nil, opt, nil).Table3() }

// Table4 reproduces the LLT miss rates (see Suite.Table4).
func Table4(opt Options) (*stats.Table, error) { return NewSuite(nil, opt, nil).Table4() }

// LogQMemoryDelta reproduces the §7.2 delta (see Suite.LogQMemoryDelta).
func LogQMemoryDelta(opt Options) (nvmDelta, dramDelta float64, err error) {
	return NewSuite(nil, opt, nil).LogQMemoryDelta()
}
