// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7): one function per figure/table, each returning the
// same rows and series the paper plots. The per-experiment index lives in
// DESIGN.md §4; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options sizes the experiment runs.
type Options struct {
	// Threads is the worker-thread/core count (the paper uses 4).
	Threads int
	// SimScale divides the Table 2 timed-operation counts; 1 reproduces
	// the paper's counts, larger values shrink runs shape-preservingly.
	SimScale int
	// InitScale divides the Table 2 initialization counts. Keep it small
	// (1-2): the initialization sets the memory footprint, and the
	// schemes' relative behaviour depends on realistic miss rates.
	InitScale int
	Seed      int64
}

// Default returns the options the benchmark harness uses: full footprint,
// 1/25th of the timed operations.
func Default() Options {
	return Options{Threads: 4, SimScale: 25, InitScale: 1, Seed: 42}
}

// Quick returns small options for tests (distorted magnitudes, same
// plumbing).
func Quick() Options {
	return Options{Threads: 2, SimScale: 400, InitScale: 25, Seed: 42}
}

func (o Options) params(k workload.Kind) workload.Params {
	p := k.DefaultParams(1)
	p.Threads = o.Threads
	p.Seed = o.Seed
	if o.SimScale > 1 {
		p.SimOps /= o.SimScale
	}
	if o.InitScale > 1 {
		p.InitOps /= o.InitScale
		p.SSItems /= o.InitScale
	}
	if p.SimOps < 8 {
		p.SimOps = 8
	}
	if p.InitOps < 16 {
		p.InitOps = 16
	}
	if p.SSItems < 64 {
		p.SSItems = 64
	}
	return p
}

// runner caches built workloads so the schemes share one recording.
type runner struct {
	opt Options
	wls map[workload.Kind]*workload.Workload
}

func newRunner(opt Options) *runner {
	return &runner{opt: opt, wls: make(map[workload.Kind]*workload.Workload)}
}

func (r *runner) workload(k workload.Kind) (*workload.Workload, error) {
	if w, ok := r.wls[k]; ok {
		return w, nil
	}
	w, err := workload.Build(k, r.opt.params(k))
	if err != nil {
		return nil, err
	}
	r.wls[k] = w
	return w, nil
}

// run simulates one (benchmark, scheme) pair under cfg.
func (r *runner) run(k workload.Kind, scheme core.Scheme, cfg config.Config) (*stats.Report, error) {
	w, err := r.workload(k)
	if err != nil {
		return nil, err
	}
	traces, err := logging.Generate(w, scheme, cfg)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	if err != nil {
		return nil, err
	}
	rep, err := sys.Run(0)
	if err != nil {
		return nil, fmt.Errorf("%v/%v: %w", k, scheme, err)
	}
	return rep, nil
}

func benchRows() []string {
	rows := make([]string, 0, len(workload.Table2))
	for _, k := range workload.Table2 {
		rows = append(rows, k.Abbrev())
	}
	return rows
}

// speedupFigure runs the Figure 6/9/10 matrix on the given memory kind:
// speedup of every scheme over the PMEM software-logging baseline.
func speedupFigure(opt Options, kind config.MemKind, title string) (*stats.Table, error) {
	cfg := config.Default().WithMemKind(kind)
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := []string{
		core.PMEMPcommit.String(), core.ATOM.String(),
		core.ProteusNoLWR.String(), core.Proteus.String(), core.PMEMNoLog.String(),
	}
	tab := stats.NewTable(title, "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := r.run(k, core.PMEM, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range []core.Scheme{core.PMEMPcommit, core.ATOM, core.ProteusNoLWR, core.Proteus, core.PMEMNoLog} {
			rep, err := r.run(k, s, cfg)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), s.String(), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Figure6 reproduces the speedup comparison on (fast) NVMM with software
// logging with PMEM as baseline.
func Figure6(opt Options) (*stats.Table, error) {
	return speedupFigure(opt, config.NVMFast, "Figure 6: speedup on NVMM (baseline: PMEM software logging)")
}

// Figure9 reproduces the slow-NVMM study (300ns writes, §7.1).
func Figure9(opt Options) (*stats.Table, error) {
	return speedupFigure(opt, config.NVMSlow, "Figure 9: speedup on slow NVMM, 300ns writes (baseline: PMEM)")
}

// Figure10 reproduces the DRAM study (§7.2).
func Figure10(opt Options) (*stats.Table, error) {
	return speedupFigure(opt, config.DRAM, "Figure 10: speedup on DRAM (baseline: PMEM)")
}

// Figure7 reproduces the front-end stall comparison: stall cycles
// normalized to PMEM+nolog.
func Figure7(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := []string{core.ATOM.String(), core.Proteus.String(), core.PMEMNoLog.String()}
	tab := stats.NewTable("Figure 7: front-end stall cycles (normalized to PMEM+nolog)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		ideal, err := r.run(k, core.PMEMNoLog, cfg)
		if err != nil {
			return nil, err
		}
		base := float64(ideal.TotalFrontEndStalls())
		if base == 0 {
			base = 1
		}
		for _, s := range []core.Scheme{core.ATOM, core.Proteus, core.PMEMNoLog} {
			rep, err := r.run(k, s, cfg)
			if err != nil {
				return nil, err
			}
			stalls := float64(rep.TotalFrontEndStalls())
			if stalls < 1 {
				stalls = 1 // keep the geomean defined when a run never stalls
			}
			tab.Set(k.Abbrev(), s.String(), stalls/base)
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Figure8 reproduces the NVMM write comparison: writes normalized to
// PMEM+nolog.
func Figure8(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := []string{core.PMEM.String(), core.ATOM.String(), core.Proteus.String(), core.PMEMNoLog.String()}
	tab := stats.NewTable("Figure 8: NVMM writes (normalized to PMEM+nolog)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		ideal, err := r.run(k, core.PMEMNoLog, cfg)
		if err != nil {
			return nil, err
		}
		base := float64(ideal.MemStat.NVMWrites())
		if base == 0 {
			base = 1
		}
		for _, s := range []core.Scheme{core.PMEM, core.ATOM, core.Proteus, core.PMEMNoLog} {
			rep, err := r.run(k, s, cfg)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), s.String(), float64(rep.MemStat.NVMWrites())/base)
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LogQSizes is the Figure 11 sweep.
var LogQSizes = []int{1, 2, 4, 8, 16, 32, 64}

// Figure11 reproduces the LogQ-size sensitivity: Proteus speedup over PMEM
// for LogQ sizes 1-64.
func Figure11(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := make([]string, 0, len(LogQSizes))
	for _, n := range LogQSizes {
		cols = append(cols, fmt.Sprintf("LogQ=%d", n))
	}
	tab := stats.NewTable("Figure 11: Proteus speedup vs LogQ size (baseline: PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := r.run(k, core.PMEM, cfg)
		if err != nil {
			return nil, err
		}
		for _, n := range LogQSizes {
			c := cfg
			c.Proteus.LogQ = n
			rep, err := r.run(k, core.Proteus, c)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LogQ=%d", n), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// LPQSizes is the Figure 12 sweep (LogQ fixed at 16).
var LPQSizes = []int{16, 32, 64, 128, 256, 512}

// Figure12 reproduces the LPQ-size sensitivity at LogQ=16.
func Figure12(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	cols := make([]string, 0, len(LPQSizes))
	for _, n := range LPQSizes {
		cols = append(cols, fmt.Sprintf("LPQ=%d", n))
	}
	tab := stats.NewTable("Figure 12: Proteus speedup vs LPQ size, LogQ=16 (baseline: PMEM)", "bench", benchRows(), cols)
	for _, k := range workload.Table2 {
		base, err := r.run(k, core.PMEM, cfg)
		if err != nil {
			return nil, err
		}
		for _, n := range LPQSizes {
			c := cfg
			c.Mem.LPQ = n
			rep, err := r.run(k, core.Proteus, c)
			if err != nil {
				return nil, err
			}
			tab.Set(k.Abbrev(), fmt.Sprintf("LPQ=%d", n), rep.Speedup(base))
		}
	}
	tab.AddGeoMeanRow()
	return tab, nil
}

// Table3Sizes is the large-transaction element sweep.
var Table3Sizes = []int{1024, 2048, 4096, 8192}

// Table3 reproduces the large-transaction study on the linked-list
// microbenchmark: Proteus and ideal speedups over PMEM, and the log-entry
// amplification before and after the LLT.
type Table3Result struct {
	Speedups *stats.Table
	// EntriesPerTxn / FlushedPerTxn report logging ops per transaction
	// before and after LLT filtering for each size (§7.3's 20-156x and
	// 7-52x factors are relative to the Table 2 benchmarks).
	EntriesPerTxn map[int]float64
	FlushedPerTxn map[int]float64
}

// Table3 runs the sweep.
func Table3(opt Options) (*Table3Result, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	rows := make([]string, 0, len(Table3Sizes))
	for _, n := range Table3Sizes {
		rows = append(rows, fmt.Sprintf("%d", n))
	}
	res := &Table3Result{
		Speedups:      stats.NewTable("Table 3: speedups for large transactions (baseline: PMEM)", "txn size", rows, []string{"Proteus", "PMEM+nolog(ideal)"}),
		EntriesPerTxn: make(map[int]float64),
		FlushedPerTxn: make(map[int]float64),
	}
	for _, n := range Table3Sizes {
		p := workload.LinkedList.DefaultParams(1)
		p.Threads = opt.Threads
		p.Seed = opt.Seed
		p.ListElems = n
		p.SimOps = 192 / opt.Threads
		if opt.SimScale > 25 {
			p.SimOps = 64 / opt.Threads
		}
		if p.SimOps < 8 {
			p.SimOps = 8
		}
		w, err := workload.Build(workload.LinkedList, p)
		if err != nil {
			return nil, err
		}
		var base, proteus, ideal *stats.Report
		for _, s := range []core.Scheme{core.PMEM, core.Proteus, core.PMEMNoLog} {
			traces, err := logging.Generate(w, s, cfg)
			if err != nil {
				return nil, err
			}
			sys, err := core.NewSystem(cfg, s, traces, w.InitImage)
			if err != nil {
				return nil, err
			}
			rep, err := sys.Run(0)
			if err != nil {
				return nil, err
			}
			switch s {
			case core.PMEM:
				base = rep
			case core.Proteus:
				proteus = rep
			case core.PMEMNoLog:
				ideal = rep
			}
		}
		row := fmt.Sprintf("%d", n)
		res.Speedups.Set(row, "Proteus", proteus.Speedup(base))
		res.Speedups.Set(row, "PMEM+nolog(ideal)", ideal.Speedup(base))
		txns := float64(p.SimOps * opt.Threads)
		var logLoads, flushes uint64
		for i := range proteus.CoreStat {
			logLoads += proteus.CoreStat[i].LogLoads
			flushes += proteus.CoreStat[i].LogFlushes
		}
		res.EntriesPerTxn[n] = float64(logLoads) / txns
		res.FlushedPerTxn[n] = float64(flushes) / txns
	}
	return res, nil
}

// Table4 reproduces the LLT miss rates (64-entry LLT).
func Table4(opt Options) (*stats.Table, error) {
	cfg := config.Default()
	cfg.Cores = opt.Threads
	r := newRunner(opt)
	tab := stats.NewTable("Table 4: LLT miss rate (%), 64-entry 8-way LLT", "bench", benchRows(), []string{"miss rate"})
	tab.Format = "%8.1f"
	for _, k := range workload.Table2 {
		rep, err := r.run(k, core.Proteus, cfg)
		if err != nil {
			return nil, err
		}
		tab.Set(k.Abbrev(), "miss rate", rep.LLTMissRate())
	}
	return tab, nil
}

// LogQMemoryDelta reproduces the §7.2 observation: the speedup gained by
// growing the LogQ from 8 to 16 entries on NVM vs on DRAM.
func LogQMemoryDelta(opt Options) (nvmDelta, dramDelta float64, err error) {
	for i, kind := range []config.MemKind{config.NVMFast, config.DRAM} {
		cfg := config.Default().WithMemKind(kind)
		cfg.Cores = opt.Threads
		r := newRunner(opt)
		var sp [2]float64 // LogQ 8, 16 geomean speedups
		for j, n := range []int{8, 16} {
			var speedups []float64
			for _, k := range workload.Table2 {
				base, err := r.run(k, core.PMEM, cfg)
				if err != nil {
					return 0, 0, err
				}
				c := cfg
				c.Proteus.LogQ = n
				rep, err := r.run(k, core.Proteus, c)
				if err != nil {
					return 0, 0, err
				}
				speedups = append(speedups, rep.Speedup(base))
			}
			sp[j] = stats.GeoMean(speedups)
		}
		if i == 0 {
			nvmDelta = sp[1] - sp[0]
		} else {
			dramDelta = sp[1] - sp[0]
		}
	}
	return nvmDelta, dramDelta, nil
}
