package experiments

import (
	"testing"

	"repro/internal/workload"
)

// quick runs every experiment at the smallest scale to validate plumbing;
// magnitudes at this scale are distorted, so only structural properties
// and weak ordering relations are asserted.
func TestFigure6Quick(t *testing.T) {
	tab, err := Figure6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(tab.Rows) != len(workload.Table2)+1 { // + geomean
		t.Fatalf("rows: %v", tab.Rows)
	}
	for _, k := range workload.Table2 {
		pc := tab.Get(k.Abbrev(), "PMEM+pcommit")
		ideal := tab.Get(k.Abbrev(), "PMEM+nolog")
		proteus := tab.Get(k.Abbrev(), "Proteus")
		if pc >= 1 {
			t.Errorf("%v: pcommit speedup %.2f not below 1", k, pc)
		}
		if ideal < 1 {
			t.Errorf("%v: ideal speedup %.2f below 1", k, ideal)
		}
		if proteus <= pc {
			t.Errorf("%v: Proteus (%.2f) not above pcommit (%.2f)", k, proteus, pc)
		}
	}
}

func TestFigure8Quick(t *testing.T) {
	tab, err := Figure8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, k := range workload.Table2 {
		atom := tab.Get(k.Abbrev(), "ATOM")
		proteus := tab.Get(k.Abbrev(), "Proteus")
		if atom <= proteus {
			t.Errorf("%v: ATOM writes (%.2fx) not above Proteus (%.2fx)", k, atom, proteus)
		}
		if proteus > 1.6 {
			t.Errorf("%v: Proteus write amplification %.2fx too high", k, proteus)
		}
		if got := tab.Get(k.Abbrev(), "PMEM+nolog"); got != 1 {
			t.Errorf("%v: nolog not normalized to 1 (%.3f)", k, got)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	tab, err := Table4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, k := range workload.Table2 {
		r := tab.Get(k.Abbrev(), "miss rate")
		if r <= 0 || r > 100 {
			t.Errorf("%v: miss rate %.1f out of range", k, r)
		}
	}
}

func TestFigure11Quick(t *testing.T) {
	opt := Quick()
	tab, err := Figure11(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	// Speedup must not degrade drastically as the LogQ grows.
	for _, k := range workload.Table2 {
		small := tab.Get(k.Abbrev(), "LogQ=1")
		large := tab.Get(k.Abbrev(), "LogQ=64")
		if large < small*0.9 {
			t.Errorf("%v: LogQ=64 (%.2f) much worse than LogQ=1 (%.2f)", k, large, small)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	opt := Quick()
	res, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Speedups)
	for _, n := range Table3Sizes {
		if res.EntriesPerTxn[n] < float64(n)/8 {
			t.Errorf("size %d: only %.0f log ops per txn", n, res.EntriesPerTxn[n])
		}
		if res.FlushedPerTxn[n] >= res.EntriesPerTxn[n] {
			t.Errorf("size %d: LLT filtered nothing (%.0f of %.0f)", n, res.FlushedPerTxn[n], res.EntriesPerTxn[n])
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	opt := Quick()
	pm, err := PersistencyModels(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", pm)
	if g := pm.Get("geomean", "strict"); g < 1.0 {
		t.Errorf("strict persistency geomean slowdown %.2f below 1", g)
	}
	if g := pm.Get("geomean", "epoch"); g != 1.0 {
		t.Errorf("epoch model differs from durable-tx: %.3f", g)
	}

	se, err := StaticVsDynamicFiltering(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", se)
	if r := se.Get("geomean", "logops-emitted-ratio"); r >= 1 {
		t.Errorf("static elimination emitted ratio %.2f not below 1", r)
	}

	llt, err := LLTSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", llt)
	// A larger LLT cannot have a (much) higher miss rate.
	for _, k := range workload.Table2 {
		small := llt.Get(k.Abbrev(), "LLT=8")
		big := llt.Get(k.Abbrev(), "LLT=256")
		if big > small+1 {
			t.Errorf("%v: LLT=256 miss rate %.1f above LLT=8 %.1f", k, big, small)
		}
	}
}
