package experiments

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
)

// TestFigureRendersSurvivorsPastJobFailure is the end-to-end regression
// test for the suite-abort bug: when some jobs of a figure fail, the
// figure must still render — failed cells as "-", the geomean over the
// surviving rows — instead of erroring out or printing a 0.000 geomean.
func TestFigureRendersSurvivorsPastJobFailure(t *testing.T) {
	injected := errors.New("injected job failure")
	eng := engine.New(engine.Config{Workers: 4, Trace: func(j engine.Job) (*trace.Tracer, error) {
		if j.Scheme == core.ATOM {
			return nil, injected
		}
		return nil, nil
	}})
	s := NewSuite(context.Background(), Quick(), eng)

	tab, err := s.Figure6()
	if err != nil {
		t.Fatalf("figure aborted on per-job failures: %v", err)
	}
	// Every ATOM cell — including its geomean — is missing; the other
	// columns are intact.
	for _, row := range tab.Rows {
		if v := tab.Get(row, core.ATOM.String()); !math.IsNaN(v) {
			t.Errorf("ATOM cell %q = %v, want NaN (the job failed)", row, v)
		}
		if v := tab.Get(row, core.Proteus.String()); math.IsNaN(v) || v <= 0 {
			t.Errorf("Proteus cell %q = %v, want a finite positive speedup", row, v)
		}
	}
	out := tab.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("raw NaN leaked into the rendered table:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cells not rendered as -:\n%s", out)
	}
	if v := tab.Get("geomean", "Proteus"); math.IsNaN(v) || v <= 0 {
		t.Fatalf("geomean over survivors = %v, want finite positive", v)
	}

	c := eng.Counters()
	if c.Failed != 6 { // one ATOM job per Table 2 benchmark
		t.Errorf("Failed = %d, want 6", c.Failed)
	}
	var failed int
	for _, m := range eng.Metrics() {
		if m.Err != "" {
			failed++
			if !strings.Contains(m.Err, injected.Error()) {
				t.Errorf("metric error %q does not carry the cause", m.Err)
			}
		}
	}
	if failed != 6 {
		t.Errorf("metrics report %d failures, want 6", failed)
	}
}
