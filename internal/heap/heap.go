// Package heap provides the persistent heap the workloads run on: a
// per-thread bump/free-list allocator over the simulated NVM address
// space, word-granularity loads and stores that both mutate the functional
// memory image and record the access stream, and transaction recording
// (write sets with pre/post images, plus the conservative undo-log hints
// software logging needs).
//
// The recorded transactions are the single source the per-scheme code
// generators (package logging) expand into micro-op traces, and the oracle
// the recovery verifier replays.
package heap

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/nvm"
)

// AccessKind classifies a recorded access.
type AccessKind uint8

const (
	Load AccessKind = iota
	Store
)

// Access is one recorded word access in program order.
type Access struct {
	Kind AccessKind
	Addr uint64
	Val  uint64 // store value (stores only)
}

// Range is a byte range of persistent memory.
type Range struct {
	Addr uint64
	Size int
}

// Txn is one recorded durable transaction.
type Txn struct {
	ID   uint32
	Lock uint64 // lock word guarding the structure (volatile region)
	Ops  []Access
	// Hints is the conservative undo-log set declared by the data
	// structure: everything that could be modified, known before the
	// modifications happen (§5.2: "our manual undo-logging assumes the
	// worst and logs all nodes that could be modified").
	Hints []Range
	// Allocs lists memory allocated during the transaction. Writes into
	// it need no undo coverage: allocation is failure-safe (§5.2) and the
	// memory is unreachable until the (logged) structural store links it.
	Allocs []Range
	// Pre/Post are the transaction's write set at word granularity.
	Pre  map[uint64]uint64
	Post map[uint64]uint64
}

// WriteLines returns the distinct cache lines the transaction wrote.
func (t *Txn) WriteLines() []uint64 {
	seen := make(map[uint64]struct{})
	var lines []uint64
	for _, a := range t.Ops {
		if a.Kind != Store {
			continue
		}
		l := isa.LineAddr(a.Addr)
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			lines = append(lines, l)
		}
	}
	return lines
}

// Heap is one thread's persistent heap.
type Heap struct {
	thread      int
	base, limit uint64
	next        uint64
	free        map[int][]uint64 // size class -> free addresses
	img         *nvm.Store       // shared functional image

	recording bool
	cur       *Txn
	Txns      []*Txn
	nextTxID  uint32
}

// New creates a heap for thread over the shared functional image. The
// first line of the thread's window is reserved for the software-logging
// logFlag (see logfmt.LogFlagAddr).
func New(thread int, img *nvm.Store) *Heap {
	base, limit := isa.HeapWindow(thread)
	return &Heap{
		thread: thread,
		base:   base,
		limit:  limit,
		next:   base + isa.LineSize, // skip the logFlag line
		free:   make(map[int][]uint64),
		img:    img,
	}
}

// Thread returns the owning thread index.
func (h *Heap) Thread() int { return h.thread }

// Image returns the shared functional image.
func (h *Heap) Image() *nvm.Store { return h.img }

// Alloc returns a 64-byte-aligned block of at least size bytes. Node
// allocations are line-aligned per Table 2 ("we size each node to be 64
// bytes and align them to cache blocks"). Allocation is assumed
// failure-safe (§5.2) and is not recorded; recycled memory is NOT zeroed
// (as in C allocators), so data structures must initialize every field
// they later read — this keeps the functional image and the timing
// simulation's replayed stores identical.
func (h *Heap) Alloc(size int) uint64 {
	size = (size + isa.LineSize - 1) &^ (isa.LineSize - 1)
	var addr uint64
	if fl := h.free[size]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		h.free[size] = fl[:len(fl)-1]
	} else {
		addr = h.next
		h.next += uint64(size)
		if h.next > h.limit {
			panic(fmt.Sprintf("heap: thread %d exhausted its %d MiB window", h.thread, (h.limit-h.base)>>20))
		}
	}
	if h.recording && h.cur != nil {
		h.cur.Allocs = append(h.cur.Allocs, Range{Addr: addr, Size: size})
	}
	return addr
}

// Free returns a block of the given size to the allocator (assumed
// failure-safe, not recorded).
func (h *Heap) Free(addr uint64, size int) {
	size = (size + isa.LineSize - 1) &^ (isa.LineSize - 1)
	h.free[size] = append(h.free[size], addr)
}

// Load reads the 8-byte word at addr, recording it when a transaction is
// being recorded.
func (h *Heap) Load(addr uint64) uint64 {
	v := h.img.ReadUint64(addr)
	if h.recording && h.cur != nil {
		h.cur.Ops = append(h.cur.Ops, Access{Kind: Load, Addr: addr, Val: v})
	}
	return v
}

// Store writes the 8-byte word at addr.
func (h *Heap) Store(addr uint64, val uint64) {
	if h.recording && h.cur != nil {
		if _, ok := h.cur.Pre[addr]; !ok {
			h.cur.Pre[addr] = h.img.ReadUint64(addr)
		}
		h.cur.Ops = append(h.cur.Ops, Access{Kind: Store, Addr: addr, Val: val})
	}
	h.img.WriteUint64(addr, val)
}

// LogHint declares that [addr, addr+size) may be modified by the current
// transaction. Software logging will create undo entries for the whole
// range before the first data update.
func (h *Heap) LogHint(addr uint64, size int) {
	if h.recording && h.cur != nil {
		h.cur.Hints = append(h.cur.Hints, Range{Addr: addr, Size: size})
	}
}

// SetRecording turns transaction recording on or off (off during the
// fast-forwarded initialization operations).
func (h *Heap) SetRecording(on bool) { h.recording = on }

// Begin starts recording a transaction guarded by the given lock word.
func (h *Heap) Begin(lock uint64) *Txn {
	h.nextTxID++
	h.cur = &Txn{
		ID:   h.nextTxID,
		Lock: lock,
		Pre:  make(map[uint64]uint64),
		Post: make(map[uint64]uint64),
	}
	return h.cur
}

// End finishes the current transaction, filling its post-image.
func (h *Heap) End() *Txn {
	t := h.cur
	if t == nil {
		return nil
	}
	for addr := range t.Pre {
		t.Post[addr] = h.img.ReadUint64(addr)
	}
	if h.recording {
		h.Txns = append(h.Txns, t)
	}
	h.cur = nil
	return t
}
