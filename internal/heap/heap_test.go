package heap

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/nvm"
)

func TestAllocAlignmentAndWindows(t *testing.T) {
	h := New(2, nvm.NewStore())
	base, limit := isa.HeapWindow(2)
	for i := 0; i < 100; i++ {
		a := h.Alloc(64)
		if a%isa.LineSize != 0 {
			t.Fatalf("alloc %#x not line-aligned", a)
		}
		if a < base || a >= limit {
			t.Fatalf("alloc %#x outside window [%#x,%#x)", a, base, limit)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	h := New(0, nvm.NewStore())
	a := h.Alloc(64)
	h.Free(a, 64)
	b := h.Alloc(64)
	if a != b {
		t.Fatalf("free list not reused: %#x vs %#x", a, b)
	}
}

func TestAllocDistinct(t *testing.T) {
	h := New(0, nvm.NewStore())
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		a := h.Alloc(64)
		if seen[a] {
			t.Fatalf("alloc returned %#x twice", a)
		}
		seen[a] = true
	}
}

func TestRecording(t *testing.T) {
	h := New(0, nvm.NewStore())
	a := h.Alloc(64)
	h.Store(a, 1) // unrecorded: recording off

	h.SetRecording(true)
	h.Begin(0xF00)
	h.Store(a, 2)
	h.Store(a+8, 3)
	h.LogHint(a, 64)
	if v := h.Load(a); v != 2 {
		t.Fatalf("load %d", v)
	}
	txn := h.End()

	if len(h.Txns) != 1 {
		t.Fatalf("%d txns recorded", len(h.Txns))
	}
	if txn.Lock != 0xF00 {
		t.Fatalf("lock %#x", txn.Lock)
	}
	if len(txn.Ops) != 3 { // 2 stores + 1 load
		t.Fatalf("%d ops", len(txn.Ops))
	}
	if txn.Pre[a] != 1 || txn.Post[a] != 2 {
		t.Fatalf("pre/post: %d/%d", txn.Pre[a], txn.Post[a])
	}
	if txn.Pre[a+8] != 0 || txn.Post[a+8] != 3 {
		t.Fatalf("pre/post of fresh word: %d/%d", txn.Pre[a+8], txn.Post[a+8])
	}
	if len(txn.Hints) != 1 || txn.Hints[0].Addr != a {
		t.Fatalf("hints: %+v", txn.Hints)
	}
}

func TestPreCapturesFirstValueOnly(t *testing.T) {
	h := New(0, nvm.NewStore())
	a := h.Alloc(64)
	h.Store(a, 10)
	h.SetRecording(true)
	h.Begin(0)
	h.Store(a, 20)
	h.Store(a, 30)
	txn := h.End()
	if txn.Pre[a] != 10 {
		t.Fatalf("pre %d, want 10 (first value before txn)", txn.Pre[a])
	}
	if txn.Post[a] != 30 {
		t.Fatalf("post %d, want 30", txn.Post[a])
	}
}

func TestWriteLines(t *testing.T) {
	h := New(0, nvm.NewStore())
	a := h.Alloc(128)
	h.SetRecording(true)
	h.Begin(0)
	h.Store(a, 1)
	h.Store(a+8, 2)  // same line
	h.Store(a+64, 3) // next line
	txn := h.End()
	if lines := txn.WriteLines(); len(lines) != 2 {
		t.Fatalf("write lines: %#x", lines)
	}
}

func TestAllocsRecorded(t *testing.T) {
	h := New(0, nvm.NewStore())
	h.SetRecording(true)
	h.Begin(0)
	a := h.Alloc(64)
	txn := h.End()
	if len(txn.Allocs) != 1 || txn.Allocs[0].Addr != a {
		t.Fatalf("allocs: %+v", txn.Allocs)
	}
}

func TestRecordingOffDiscardsTxn(t *testing.T) {
	h := New(0, nvm.NewStore())
	a := h.Alloc(64)
	h.Begin(0)
	h.Store(a, 1)
	h.End()
	if len(h.Txns) != 0 {
		t.Fatalf("unrecorded txn kept: %d", len(h.Txns))
	}
	// Functional effect still applied.
	if h.Load(a) != 1 {
		t.Fatal("functional store lost")
	}
}
