package isa

// Address-space layout of the simulated machine. All regions are
// physically backed by the simulated main memory; the distinction between
// them drives cacheability (log areas are uncacheable, §4.2), persistence
// accounting, and recovery scanning.
const (
	// LineSize is the cache line size in bytes (Table 1).
	LineSize = 64
	// LogBlockSize is the Proteus logging granularity: 32 bytes of data
	// per log entry, leaving the remainder of the 64B entry for metadata
	// (§4.1).
	LogBlockSize = 32

	// HeapBase is the start of the persistent heap. Each thread owns a
	// disjoint HeapStride-sized window.
	HeapBase   uint64 = 0x1_0000_0000
	HeapStride uint64 = 0x1000_0000 // 256 MiB per thread

	// LogBase is the start of the per-thread log areas. Each thread owns
	// one LogStride-sized circular buffer (§4.1: one log area per thread).
	LogBase   uint64 = 0x2_0000_0000
	LogStride uint64 = 0x0100_0000 // 16 MiB per thread

	// VolatileBase is the start of the volatile region (locks and other
	// non-persistent bookkeeping). Writes here never count as NVMM
	// persistent-state and are ignored by recovery.
	VolatileBase   uint64 = 0x3_0000_0000
	VolatileStride uint64 = 0x0010_0000

	// MaxThreads bounds the per-thread region math.
	MaxThreads = 64
)

// HeapWindow returns the [base, limit) persistent-heap window of a thread.
func HeapWindow(thread int) (base, limit uint64) {
	base = HeapBase + uint64(thread)*HeapStride
	return base, base + HeapStride
}

// LogWindow returns the [base, limit) log-area window of a thread.
func LogWindow(thread int) (base, limit uint64) {
	base = LogBase + uint64(thread)*LogStride
	return base, base + LogStride
}

// VolatileWindow returns the [base, limit) volatile window of a thread.
func VolatileWindow(thread int) (base, limit uint64) {
	base = VolatileBase + uint64(thread)*VolatileStride
	return base, base + VolatileStride
}

// IsLogAddr reports whether addr falls in any thread's log area. Log
// addresses are uncacheable: log flushes bypass the cache hierarchy and go
// straight to the memory controller.
func IsLogAddr(addr uint64) bool {
	return addr >= LogBase && addr < LogBase+uint64(MaxThreads)*LogStride
}

// IsVolatileAddr reports whether addr falls in the volatile region.
func IsVolatileAddr(addr uint64) bool {
	return addr >= VolatileBase
}

// IsPersistentAddr reports whether addr belongs to the persistent domain
// (heap or log area).
func IsPersistentAddr(addr uint64) bool {
	return addr >= HeapBase && addr < VolatileBase
}

// LineAddr returns the address of the cache line containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// LogBlockAddr returns the address of the 32-byte logging block containing
// addr.
func LogBlockAddr(addr uint64) uint64 { return addr &^ uint64(LogBlockSize-1) }
