// Package isa defines the micro-operation vocabulary shared by the
// functional layer (which records transactions as streams of loads and
// stores) and the timing layer (which executes per-scheme expansions of
// those streams on the machine model).
//
// The vocabulary covers the baseline Intel PMEM instructions the paper
// models (clwb, sfence, pcommit), the two new Proteus instructions
// (log-load and log-flush, §3.2), the transaction delimiters (tx-begin,
// tx-end), and plain loads, stores and ALU work.
package isa

import "fmt"

// Kind identifies a micro-operation.
type Kind uint8

// Micro-operation kinds.
const (
	// Nop does nothing; it is never emitted by code generation but is
	// useful as a zero value guard.
	Nop Kind = iota
	// Alu models Val cycles' worth of plain computation (address
	// arithmetic, comparisons). Each unit occupies one dispatch slot and
	// one ROB entry for one cycle.
	Alu
	// Ld is a load of Size bytes from Addr.
	Ld
	// St is a store of Size bytes of Val to Addr.
	St
	// Clwb writes the cache line containing Addr back to the memory
	// controller if it is dirty, without invalidating it. It is ordered
	// only by store-fencing operations.
	Clwb
	// Sfence retires only once all older stores have drained from the
	// store buffer and all older clwb/log-flush operations have been
	// acknowledged by the memory controller.
	Sfence
	// Pcommit additionally waits for the write pending queue to drain to
	// NVM. Deprecated by ADR; modeled for the PMEM+pcommit baseline.
	Pcommit
	// TxBegin marks the start of a durable transaction (Tx holds the ID).
	TxBegin
	// TxEnd marks the end of a durable transaction. Under hardware
	// logging schemes it triggers flushing of the transaction's dirty
	// data lines, clearing of the LLT, and flash-clearing of the
	// transaction's LPQ entries.
	TxEnd
	// LogLoad loads the 32-byte block at Addr into a log register
	// (Proteus). Addr is the log-from address.
	LogLoad
	// LogFlush writes the log register filled by the immediately
	// preceding LogLoad to the current log-to address and advances the
	// LTA register (Proteus). Addr repeats the log-from address so the
	// hardware can enforce store ordering against it.
	LogFlush
	// LockAcq and LockRel model the per-structure lock operations the
	// workloads perform. They are timed as an atomic RMW (LockAcq) and a
	// releasing store (LockRel) on Addr but never contend, because the
	// workload partitions structures across threads (see DESIGN.md §1).
	LockAcq
	LockRel
	// LogSave models the context-switch assist instruction (§4.4): it
	// saves the logging registers and forces the MC to write all LPQ
	// entries for the current transaction to NVM.
	LogSave
)

var kindNames = [...]string{
	Nop:      "nop",
	Alu:      "alu",
	Ld:       "ld",
	St:       "st",
	Clwb:     "clwb",
	Sfence:   "sfence",
	Pcommit:  "pcommit",
	TxBegin:  "tx-begin",
	TxEnd:    "tx-end",
	LogLoad:  "log-load",
	LogFlush: "log-flush",
	LockAcq:  "lock-acq",
	LockRel:  "lock-rel",
	LogSave:  "log-save",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMem reports whether the kind accesses the memory hierarchy.
func (k Kind) IsMem() bool {
	switch k {
	case Ld, St, Clwb, LogLoad, LogFlush, LockAcq, LockRel:
		return true
	}
	return false
}

// Op is one micro-operation. Ops are kept deliberately small; traces can
// run to millions of entries.
type Op struct {
	Kind Kind
	Size uint8  // access size in bytes (memory ops)
	Tx   uint32 // enclosing transaction ID, 0 outside transactions
	Addr uint64 // target address (memory ops)
	Val  uint64 // store value, or ALU unit count
}

func (o Op) String() string {
	switch o.Kind {
	case Alu:
		return fmt.Sprintf("alu x%d", o.Val)
	case Ld, LogLoad:
		return fmt.Sprintf("%s [%#x],%d", o.Kind, o.Addr, o.Size)
	case St:
		return fmt.Sprintf("st [%#x],%d <- %#x", o.Addr, o.Size, o.Val)
	case Clwb, LogFlush, LockAcq, LockRel:
		return fmt.Sprintf("%s [%#x]", o.Kind, o.Addr)
	case TxBegin, TxEnd:
		return fmt.Sprintf("%s tx%d", o.Kind, o.Tx)
	default:
		return o.Kind.String()
	}
}

// Trace is the per-thread micro-op stream consumed by one core.
type Trace struct {
	Thread int
	Ops    []Op
}

// Append adds an op to the trace.
func (t *Trace) Append(op Op) { t.Ops = append(t.Ops, op) }

// Len returns the number of ops in the trace.
func (t *Trace) Len() int { return len(t.Ops) }

// Stats summarizes a trace's composition, mainly for tests and reports.
type TraceStats struct {
	Loads, Stores, Alus      int
	Clwbs, Sfences, Pcommits int
	LogLoads, LogFlushes     int
	TxBegins, TxEnds         int
	Locks                    int
}

// Summarize counts ops by kind.
func (t *Trace) Summarize() TraceStats {
	var s TraceStats
	for _, op := range t.Ops {
		switch op.Kind {
		case Ld:
			s.Loads++
		case St:
			s.Stores++
		case Alu:
			s.Alus += int(op.Val)
		case Clwb:
			s.Clwbs++
		case Sfence:
			s.Sfences++
		case Pcommit:
			s.Pcommits++
		case LogLoad:
			s.LogLoads++
		case LogFlush:
			s.LogFlushes++
		case TxBegin:
			s.TxBegins++
		case TxEnd:
			s.TxEnds++
		case LockAcq, LockRel:
			s.Locks++
		}
	}
	return s
}
