package isa

import "testing"

func TestAddressRegions(t *testing.T) {
	for thread := 0; thread < 4; thread++ {
		hb, hl := HeapWindow(thread)
		lb, ll := LogWindow(thread)
		vb, vl := VolatileWindow(thread)
		if hb >= hl || lb >= ll || vb >= vl {
			t.Fatalf("thread %d: degenerate window", thread)
		}
		if !IsPersistentAddr(hb) || !IsPersistentAddr(hl-1) {
			t.Errorf("heap window of %d not persistent", thread)
		}
		if !IsLogAddr(lb) || !IsLogAddr(ll-1) {
			t.Errorf("log window of %d not log", thread)
		}
		if IsLogAddr(hb) || IsLogAddr(vb) {
			t.Errorf("non-log address classified as log")
		}
		if !IsVolatileAddr(vb) || IsVolatileAddr(hb) || IsVolatileAddr(lb) {
			t.Errorf("volatile classification wrong")
		}
	}
	// Windows of different threads must not overlap.
	h0, h0l := HeapWindow(0)
	h1, _ := HeapWindow(1)
	if h0l > h1 {
		t.Fatalf("heap windows overlap: [%#x,%#x) vs %#x", h0, h0l, h1)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LogBlockAddr(0x1234) != 0x1220 {
		t.Errorf("LogBlockAddr(0x1234) = %#x", LogBlockAddr(0x1234))
	}
	if LineAddr(0x1200) != 0x1200 || LogBlockAddr(0x1220) != 0x1220 {
		t.Error("aligned addresses changed")
	}
}

func TestKindStringsAndIsMem(t *testing.T) {
	mem := map[Kind]bool{
		Ld: true, St: true, Clwb: true, LogLoad: true, LogFlush: true,
		LockAcq: true, LockRel: true,
		Alu: false, Sfence: false, Pcommit: false, TxBegin: false, TxEnd: false, Nop: false, LogSave: false,
	}
	for k, want := range mem {
		if k.IsMem() != want {
			t.Errorf("%v.IsMem() = %v, want %v", k, k.IsMem(), want)
		}
		if k.String() == "" {
			t.Errorf("%v has empty name", int(k))
		}
	}
}

func TestTraceSummarize(t *testing.T) {
	tr := &Trace{}
	tr.Append(Op{Kind: TxBegin, Tx: 1})
	tr.Append(Op{Kind: Alu, Val: 5})
	tr.Append(Op{Kind: Ld, Addr: HeapBase, Size: 8})
	tr.Append(Op{Kind: St, Addr: HeapBase, Size: 8, Val: 42})
	tr.Append(Op{Kind: Clwb, Addr: HeapBase})
	tr.Append(Op{Kind: Sfence})
	tr.Append(Op{Kind: TxEnd, Tx: 1})
	s := tr.Summarize()
	if s.Loads != 1 || s.Stores != 1 || s.Alus != 5 || s.Clwbs != 1 || s.Sfences != 1 || s.TxBegins != 1 || s.TxEnds != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if tr.Len() != 7 {
		t.Fatalf("len %d", tr.Len())
	}
}
