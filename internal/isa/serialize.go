package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace serialization: a compact binary format so expanded traces can be
// saved once and replayed across many machine configurations (the
// workload build and code generation dominate setup time for large runs).
//
// Layout: magic, version, thread, op count, then ops as fixed 22-byte
// records (kind, size, tx, addr, val), all little endian.

const (
	traceMagic   = 0x50524F54 // "PROT"
	traceVersion = 1
)

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.Thread))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(t.Ops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))
	var rec [22]byte
	for _, op := range t.Ops {
		rec[0] = byte(op.Kind)
		rec[1] = op.Size
		binary.LittleEndian.PutUint32(rec[2:], op.Tx)
		binary.LittleEndian.PutUint64(rec[6:], op.Addr)
		binary.LittleEndian.PutUint64(rec[14:], op.Val)
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += int64(len(rec))
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("isa: not a trace file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("isa: unsupported trace version %d", v)
	}
	t := &Trace{Thread: int(binary.LittleEndian.Uint32(hdr[8:]))}
	count := binary.LittleEndian.Uint32(hdr[12:])
	t.Ops = make([]Op, 0, count)
	var rec [22]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("isa: trace op %d: %w", i, err)
		}
		t.Ops = append(t.Ops, Op{
			Kind: Kind(rec[0]),
			Size: rec[1],
			Tx:   binary.LittleEndian.Uint32(rec[2:]),
			Addr: binary.LittleEndian.Uint64(rec[6:]),
			Val:  binary.LittleEndian.Uint64(rec[14:]),
		})
	}
	return t, nil
}
