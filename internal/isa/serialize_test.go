package isa

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTraceRoundtrip(t *testing.T) {
	tr := &Trace{Thread: 3}
	tr.Append(Op{Kind: TxBegin, Tx: 1})
	tr.Append(Op{Kind: LogLoad, Size: 32, Tx: 1, Addr: HeapBase})
	tr.Append(Op{Kind: LogFlush, Size: 32, Tx: 1, Addr: HeapBase})
	tr.Append(Op{Kind: St, Size: 8, Tx: 1, Addr: HeapBase + 8, Val: 0xDEADBEEF})
	tr.Append(Op{Kind: TxEnd, Tx: 1})

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Thread != tr.Thread || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("shape: thread %d ops %d", got.Thread, len(got.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: %v != %v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestTraceRoundtripQuick(t *testing.T) {
	prop := func(kinds []uint8, addrs []uint64, vals []uint64) bool {
		tr := &Trace{Thread: 1}
		n := len(kinds)
		if n > len(addrs) {
			n = len(addrs)
		}
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			tr.Append(Op{Kind: Kind(kinds[i] % 14), Size: 8, Tx: uint32(i), Addr: addrs[i], Val: vals[i]})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got.Ops) != n {
			return false
		}
		for i := range got.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated op stream.
	tr := &Trace{}
	tr.Append(Op{Kind: St, Size: 8, Addr: 1, Val: 2})
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
