package ledger

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/resultstore"
)

// AuditReport is the outcome of cross-checking a store against its
// ledger. The failure classes are distinct because they mean different
// things: Divergent is a lie (bytes disagree with a sealed commitment),
// Unledgered is truncation or bypass (entries the chain never sealed),
// Missing is loss (sealed results with no surviving entry — for a
// cache, a re-simulation away from recovery rather than a lie).
type AuditReport struct {
	// Entries is the number of live store entries examined.
	Entries int `json:"entries"`
	// Ledgered counts entries whose digest matches their newest sealed
	// result leaf.
	Ledgered int `json:"ledgered"`
	// Records and Leaves describe the verified chain.
	Records int `json:"records"`
	// Leaves is the total leaf count across all sealed batches.
	Leaves int `json:"leaves"`
	// Head is the chain tip ("" for an empty ledger).
	Head string `json:"head"`
	// Divergent lists keys whose entry verifies locally but disagrees
	// with the sealed digest, or whose bytes fail verification outright.
	Divergent []string `json:"divergent,omitempty"`
	// Unledgered lists live, verified entries with no sealed result leaf.
	Unledgered []string `json:"unledgered,omitempty"`
	// Missing lists sealed result keys with no live store entry.
	Missing []string `json:"missing,omitempty"`
}

// Err distills the report into pass/fail. Divergence always fails.
// Unledgered entries fail unless allowUnledgered (a store written
// without the ledger enabled is truncation from the auditor's view —
// run backfill first). Missing entries fail only when requirePresent:
// a content-addressed cache may legitimately have quarantined an entry
// it will re-simulate, and the ledger's word still stands.
func (r AuditReport) Err(allowUnledgered, requirePresent bool) error {
	var probs []string
	if len(r.Divergent) > 0 {
		probs = append(probs, fmt.Sprintf("%d divergent", len(r.Divergent)))
	}
	if !allowUnledgered && len(r.Unledgered) > 0 {
		probs = append(probs, fmt.Sprintf("%d unledgered", len(r.Unledgered)))
	}
	if requirePresent && len(r.Missing) > 0 {
		probs = append(probs, fmt.Sprintf("%d missing", len(r.Missing)))
	}
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("ledger: audit failed: %s", strings.Join(probs, ", "))
}

// Audit walks every live entry of st and cross-checks it against lg,
// then checks the reverse direction (sealed results that vanished from
// the store). The walk never mutates the store, so an audit can run
// against a serving deployment; pair it with Scrub when quarantining
// is wanted.
func Audit(st *resultstore.Store, lg *Ledger) (AuditReport, error) {
	var rep AuditReport
	head := lg.Head()
	rep.Records, rep.Leaves, rep.Head = head.Records, head.Leaves, head.Head

	inStore := make(map[string]bool)
	err := st.Walk(func(key string, raw []byte, readErr error) error {
		rep.Entries++
		inStore[key] = true
		if readErr != nil {
			rep.Divergent = append(rep.Divergent, key)
			return nil
		}
		info, verr := resultstore.VerifyEntry(key, raw)
		if verr != nil {
			rep.Divergent = append(rep.Divergent, key)
			return nil
		}
		sealed, ok := lg.LatestResultDigest(key)
		switch {
		case !ok:
			rep.Unledgered = append(rep.Unledgered, key)
		case sealed != info.Digest:
			rep.Divergent = append(rep.Divergent, key)
		default:
			rep.Ledgered++
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	for _, rec := range lg.Records() {
		for _, leaf := range rec.Leaves {
			if leaf.Kind == LeafResult && !inStore[leaf.Key] {
				rep.Missing = append(rep.Missing, leaf.Key)
			}
		}
	}
	sort.Strings(rep.Divergent)
	sort.Strings(rep.Unledgered)
	rep.Missing = dedupSorted(rep.Missing)
	return rep, nil
}

func dedupSorted(s []string) []string {
	sort.Strings(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Backfill seals result leaves for every live, verified entry the
// ledger has not sealed yet — how a store written before the ledger
// existed (or with it disabled) is brought under the chain. Leaves
// built from disk carry the digest and the producing revision the
// entry recorded; the config fingerprint is unavailable after the fact
// and left empty. Returns the number of entries sealed.
func Backfill(ctx context.Context, st *resultstore.Store, b *Batcher) (int, error) {
	var tickets []*Ticket
	err := st.Walk(func(key string, raw []byte, readErr error) error {
		if readErr != nil {
			return nil // unreadable: Scrub's problem, not backfill's
		}
		info, verr := resultstore.VerifyEntry(key, raw)
		if verr != nil {
			return nil // corrupt: quarantine via Scrub, don't seal lies
		}
		if _, ok := b.lg.LatestResultDigest(key); ok {
			return nil
		}
		leaf := Leaf{
			Kind:     LeafResult,
			Key:      info.Key,
			Digest:   info.Digest,
			Revision: info.Rev,
		}
		if parts := strings.SplitN(info.Job, "/", 3); len(parts) == 3 {
			leaf.Workload, leaf.Scheme = parts[0], parts[1]
		}
		tickets = append(tickets, b.Submit(leaf))
		return nil
	})
	if err != nil {
		return 0, err
	}
	b.Flush()
	for _, t := range tickets {
		if _, werr := t.Wait(ctx); werr != nil {
			return 0, werr
		}
	}
	return len(tickets), nil
}
