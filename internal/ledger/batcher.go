package ledger

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBatcherClosed reports a submission to a batcher that has already
// drained and stopped.
var ErrBatcherClosed = errors.New("ledger: batcher closed")

// Ticket is a submitter's claim on a pending leaf: Done closes when
// the leaf's batch seals (or fails), after which Proof returns the
// inclusion proof or the flush error.
type Ticket struct {
	done  chan struct{}
	proof InclusionProof
	err   error
}

// Done returns a channel closed once the ticket's batch has sealed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Proof returns the inclusion proof after Done; calling it before Done
// closes returns an error rather than a partial proof.
func (t *Ticket) Proof() (InclusionProof, error) {
	select {
	case <-t.done:
		return t.proof, t.err
	default:
		return InclusionProof{}, errors.New("ledger: batch not sealed yet")
	}
}

// Wait blocks until the batch seals or ctx expires.
func (t *Ticket) Wait(ctx context.Context) (InclusionProof, error) {
	select {
	case <-t.done:
		return t.proof, t.err
	case <-ctx.Done():
		return InclusionProof{}, ctx.Err()
	}
}

// BatcherCounters snapshots batcher activity.
type BatcherCounters struct {
	// Submitted counts leaves accepted into batches.
	Submitted uint64
	// Sealed counts leaves sealed into the ledger.
	Sealed uint64
	// Batches counts sealed batches.
	Batches uint64
	// Errors counts leaves whose batch failed to seal.
	Errors uint64
}

// Batcher amortizes ledger appends: submitters enqueue leaves and get
// a Ticket immediately; a single flusher goroutine seals a batch when
// it reaches MaxBatch leaves or the oldest pending leaf has waited
// MaxWait, whichever comes first. All ledger I/O — the Merkle build,
// the atomic rewrite, the fsyncs, the read-back — happens on the
// flusher, never on a submitter, which is what makes admission under
// the serve path's lock cheap: Submit is an append to a slice and at
// most two non-blocking channel sends.
type Batcher struct {
	lg       *Ledger
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending []pendingLeaf
	closed  bool

	arm  chan struct{} // pending went 0 → 1: start the max-wait clock
	kick chan struct{} // pending reached maxBatch: seal now
	stop chan struct{}
	wg   sync.WaitGroup

	submitted atomic.Uint64
	sealed    atomic.Uint64
	batches   atomic.Uint64
	errs      atomic.Uint64
}

type pendingLeaf struct {
	leaf Leaf
	tick *Ticket
}

// NewBatcher starts a batcher over lg. maxBatch <= 0 defaults to 64
// leaves; maxWait <= 0 defaults to 25ms.
func NewBatcher(lg *Ledger, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxWait <= 0 {
		maxWait = 25 * time.Millisecond
	}
	b := &Batcher{
		lg:       lg,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		arm:      make(chan struct{}, 1),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Submit enqueues a leaf and returns its ticket without blocking on
// any I/O. After Close the ticket comes back already failed with
// ErrBatcherClosed.
func (b *Batcher) Submit(leaf Leaf) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		t.err = ErrBatcherClosed
		close(t.done)
		return t
	}
	b.pending = append(b.pending, pendingLeaf{leaf: leaf, tick: t})
	n := len(b.pending)
	b.mu.Unlock()
	b.submitted.Add(1)
	if n == 1 {
		signal(b.arm)
	}
	if n >= b.maxBatch {
		signal(b.kick)
	}
	return t
}

// Append is the blocking form: submit, wait for the seal, return the
// proof. It is what callers off the hot path (backfill, tests) use.
func (b *Batcher) Append(ctx context.Context, leaf Leaf) (InclusionProof, error) {
	return b.Submit(leaf).Wait(ctx)
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func (b *Batcher) run() {
	defer b.wg.Done()
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for {
		select {
		case <-b.stop:
			b.flush()
			return
		case <-b.arm:
		case <-b.kick:
			b.flush()
			continue
		}
		// At least one leaf is pending: seal on the threshold kick or
		// when the oldest leaf has waited maxWait.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(b.maxWait)
		select {
		case <-b.stop:
			b.flush()
			return
		case <-b.kick:
		case <-timer.C:
		}
		b.flush()
	}
}

// flush seals everything pending into one record and resolves the
// tickets. Concurrent calls are safe — the second sees no pending
// leaves and does nothing.
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	leaves := make([]Leaf, len(batch))
	for i, p := range batch {
		leaves[i] = p.leaf
	}
	rec, err := b.lg.Append(leaves)
	if err != nil {
		b.errs.Add(uint64(len(batch)))
		for _, p := range batch {
			p.tick.err = err
			close(p.tick.done)
		}
		return
	}
	b.batches.Add(1)
	b.sealed.Add(uint64(len(batch)))
	proofs := ProofsFor(rec)
	for i, p := range batch {
		p.tick.proof = proofs[i]
		close(p.tick.done)
	}
}

// Flush seals whatever is pending right now, synchronously. Intended
// for tests and drain points; concurrent traffic keeps batching.
func (b *Batcher) Flush() { b.flush() }

// Close drains pending leaves into a final batch and stops the
// flusher. Submissions after Close fail with ErrBatcherClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
}

// Counters snapshots batcher activity.
func (b *Batcher) Counters() BatcherCounters {
	return BatcherCounters{
		Submitted: b.submitted.Load(),
		Sealed:    b.sealed.Load(),
		Batches:   b.batches.Load(),
		Errors:    b.errs.Load(),
	}
}
