package ledger_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/resultstore"
)

// fuzzFixture is one sealed provenance story: a store entry, the chain
// that committed to it, and an inclusion proof — the three byte strings
// a forger would have to mutate.
type fuzzFixture struct {
	key       string
	entryRaw  []byte
	sealed    string // digest the chain committed to
	proof     ledger.InclusionProof
	proofJSON []byte
	ledgerRaw []byte
	records   []ledger.Record
	lg        *ledger.Ledger
}

func buildFixture(tb testing.TB) *fuzzFixture {
	dir := tb.TempDir()
	st, err := resultstore.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	lg, err := ledger.Open(ledger.DefaultPath(dir), nil)
	if err != nil {
		tb.Fatal(err)
	}
	b := ledger.NewBatcher(lg, 1, time.Minute)
	rs := ledger.NewRecordingStore(st, b)
	j := testJob()
	key := j.Fingerprint()
	if err := rs.Store(key, j, testResult(9)); err != nil {
		tb.Fatal(err)
	}
	b.Close()
	p, err := lg.Proof(key, ledger.LeafResult)
	if err != nil {
		tb.Fatal(err)
	}
	proofJSON, err := json.Marshal(p)
	if err != nil {
		tb.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", key+".json"))
	if err != nil || len(matches) != 1 {
		tb.Fatalf("locating entry: %v %v", matches, err)
	}
	entryRaw, err := os.ReadFile(matches[0])
	if err != nil {
		tb.Fatal(err)
	}
	ledgerRaw, err := os.ReadFile(ledger.DefaultPath(dir))
	if err != nil {
		tb.Fatal(err)
	}
	return &fuzzFixture{
		key: key, entryRaw: entryRaw, sealed: p.Leaf.Digest,
		proof: p, proofJSON: proofJSON,
		ledgerRaw: ledgerRaw, records: lg.Records(), lg: lg,
	}
}

// checkEntryMutation is the oracle for a single-byte entry mutation:
// either verification rejects the bytes, or the mutation left the
// committed surface — key, digest, result bytes, schema validity —
// untouched (annotation fields and JSON spelling are not committed).
func (fx *fuzzFixture) checkEntryMutation(t *testing.T, mut []byte) {
	info, err := resultstore.VerifyEntry(fx.key, mut)
	if err != nil {
		return // detected
	}
	if info.Key != fx.key || info.Digest != fx.sealed {
		t.Fatalf("mutated entry verifies with (key %q, digest %.12s..), sealed was (key %q, digest %.12s..)",
			info.Key, info.Digest, fx.key, fx.sealed)
	}
}

// canonicalizeProof lowercases the path's hex — VerifyProof decodes it,
// so "AB" and "ab" are the same commitment, not a mutation.
func canonicalizeProof(p ledger.InclusionProof) ledger.InclusionProof {
	path := make([]string, len(p.Path))
	for i, s := range p.Path {
		path[i] = strings.ToLower(s)
	}
	p.Path = path
	return p
}

// checkProofMutation: a mutated proof must either fail to parse, decode
// to the same proof (field-name case, hex case), or fail VerifyProof.
func (fx *fuzzFixture) checkProofMutation(t *testing.T, mut []byte) {
	var p ledger.InclusionProof
	if json.Unmarshal(mut, &p) != nil {
		return
	}
	if reflect.DeepEqual(canonicalizeProof(p), canonicalizeProof(fx.proof)) {
		return
	}
	if fx.lg.VerifyProof(p) == nil {
		t.Fatalf("mutated proof still verifies: %+v", p)
	}
}

// checkLedgerMutation: a mutated ledger file must either fail Open's
// full-chain verification or decode to the identical chain.
func (fx *fuzzFixture) checkLedgerMutation(t *testing.T, mut []byte) {
	path := filepath.Join(t.TempDir(), ledger.FileName)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := ledger.Open(path, nil)
	if err != nil {
		return // detected
	}
	if !reflect.DeepEqual(re.Records(), fx.records) {
		t.Fatal("mutated ledger opened with a different chain")
	}
}

func flipAt(data []byte, pos uint64, delta byte) []byte {
	mut := append([]byte(nil), data...)
	mut[pos%uint64(len(mut))] ^= delta
	return mut
}

// FuzzProofVerify drives single-byte mutations into each of the three
// provenance byte strings — the store entry, the serialized inclusion
// proof, and the ledger file — and asserts none of them can keep
// verifying with altered committed content. The checked-in corpus in
// testdata seeds one mutation per surface per delta class (low bit,
// case bit, high bit) at several offsets.
func FuzzProofVerify(f *testing.F) {
	fx := buildFixture(f)
	for _, which := range []uint64{0, 1, 2} {
		for _, pos := range []uint64{0, 17, 200, 5000} {
			for _, delta := range []uint64{0x01, 0x20, 0x80} {
				f.Add(which, pos, delta)
			}
		}
	}
	f.Fuzz(func(t *testing.T, which, pos, delta uint64) {
		d := byte(delta)
		if d == 0 {
			return // identity mutation proves nothing
		}
		switch which % 3 {
		case 0:
			fx.checkEntryMutation(t, flipAt(fx.entryRaw, pos, d))
		case 1:
			fx.checkProofMutation(t, flipAt(fx.proofJSON, pos, d))
		case 2:
			fx.checkLedgerMutation(t, flipAt(fx.ledgerRaw, pos, d))
		}
	})
}

// TestEveryByteProofAndEntryMutation exhaustively sweeps the two small
// surfaces with three representative deltas — the deterministic
// counterpart of the fuzzer (the ledger file sweep lives in
// TestEveryByteMutationDetected).
func TestEveryByteProofAndEntryMutation(t *testing.T) {
	fx := buildFixture(t)
	for _, delta := range []byte{0x01, 0x20, 0x80} {
		for pos := range fx.entryRaw {
			fx.checkEntryMutation(t, flipAt(fx.entryRaw, uint64(pos), delta))
		}
		for pos := range fx.proofJSON {
			fx.checkProofMutation(t, flipAt(fx.proofJSON, uint64(pos), delta))
		}
	}
}
