// Package ledger is the tamper-evident provenance ledger behind the
// result store: an append-only sequence of sealed batches, each a
// Merkle tree over provenance leaves, whose roots chain into a single
// head hash that summarizes the whole store history.
//
// On disk the ledger is one JSONL file — one record per sealed batch —
// living in <store>/ledger/ next to the shards it describes. Every
// append rewrites the file atomically through the same FS seam the
// result store uses, so the chaos harness's lying filesystem injects
// faults into ledger writes too; the writer then reads the file back
// and compares bytes, because a medium that lies about writes
// (PR 9's torn writes, bit flips, crash-before-rename) must not be
// able to publish a head the process never computed. Open re-verifies
// the entire chain — every root recomputed from its leaves, every head
// recomputed from its predecessor — so a tampered or truncated file is
// rejected as ErrCorruptLedger rather than trusted.
//
// The ledger is a single-writer structure: one process (the serving
// coordinator, or the proteus-ledger CLI) appends; any number of
// processes may read. This mirrors the paper's own logging discipline —
// one logging agent per log, readers verify.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"

	"repro/internal/resultstore"
)

// FileName is the ledger file's name inside resultstore.LedgerDir.
const FileName = "ledger.jsonl"

// ErrCorruptLedger marks a ledger file that failed chain verification:
// unparseable, out-of-sequence, a root that does not match its leaves,
// or a head that does not match its predecessor. A corrupt ledger is
// never partially trusted — Open refuses it outright.
var ErrCorruptLedger = errors.New("ledger: corrupt ledger")

// ErrUnverifiedAppend reports that an append could not be confirmed on
// the medium: the write "succeeded" but reading the file back did not
// return the bytes that were written, repeatedly. The in-memory chain
// is rolled back so ledger state never silently diverges from what the
// process believes it published.
var ErrUnverifiedAppend = errors.New("ledger: append not verified on medium")

// ErrNoProof reports that the ledger holds no leaf for the given key.
var ErrNoProof = errors.New("ledger: no leaf for key")

// appendVerifyAttempts bounds the write→read-back retry loop. Under
// the chaos soak's fault rates the chance of this many consecutive
// lies is negligible; on honest media the first attempt verifies.
const appendVerifyAttempts = 8

// Record is one sealed batch: the Merkle root over Leaves, chained to
// the previous record by Head = H(prev head ‖ root ‖ seq ‖ count).
type Record struct {
	Seq    int    `json:"seq"`
	Prev   string `json:"prev"`
	Root   string `json:"root"`
	Leaves []Leaf `json:"leaves"`
	Head   string `json:"head"`
}

const headTag byte = 0x02

// headOf computes the chain value a record publishes.
func headOf(prev, root string, seq, count int) string {
	h := sha256.New()
	h.Write([]byte{headTag})
	var n [8]byte
	for _, f := range []string{prev, root} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	binary.LittleEndian.PutUint64(n[:], uint64(seq))
	h.Write(n[:])
	binary.LittleEndian.PutUint64(n[:], uint64(count))
	h.Write(n[:])
	return hex.EncodeToString(h.Sum(nil))
}

// recordRoot recomputes the Merkle root over a record's leaves.
func recordRoot(leaves []Leaf) string {
	hashes := make([][32]byte, len(leaves))
	for i, l := range leaves {
		hashes[i] = l.Hash()
	}
	root := merkleRoot(hashes)
	return hex.EncodeToString(root[:])
}

// leafRef locates one leaf: record index and position within it.
type leafRef struct {
	rec, leaf int
}

// Ledger is the in-memory view of one verified ledger file plus the
// writer that extends it. Safe for concurrent use by multiple
// goroutines; see the package comment for the single-writer-process
// rule.
type Ledger struct {
	path string
	fs   resultstore.FS

	mu      sync.Mutex
	records []Record
	data    []byte               // exact on-disk bytes of the verified chain
	index   map[string][]leafRef // key → leaf positions, oldest first
}

// DefaultPath returns the ledger file path for a store rooted at dir.
func DefaultPath(storeDir string) string {
	return filepath.Join(storeDir, resultstore.LedgerDir, FileName)
}

// Open reads, verifies and indexes the ledger at path, creating the
// notion of an empty ledger when the file does not exist yet. fsys ==
// nil means the real filesystem. Any verification failure is reported
// as ErrCorruptLedger; an unreadable file keeps its underlying error.
func Open(path string, fsys resultstore.FS) (*Ledger, error) {
	if fsys == nil {
		fsys = resultstore.OSFS()
	}
	l := &Ledger{path: path, fs: fsys, index: make(map[string][]leafRef)}
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	records, err := parseChain(data)
	if err != nil {
		return nil, err
	}
	l.records = records
	l.data = data
	for ri, r := range records {
		for li, leaf := range r.Leaves {
			l.index[leaf.Key] = append(l.index[leaf.Key], leafRef{ri, li})
		}
	}
	return l, nil
}

// parseChain decodes and fully verifies a ledger file's bytes.
func parseChain(data []byte) ([]Record, error) {
	var records []Record
	prev := ""
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("%w: record %d unparseable: %v", ErrCorruptLedger, len(records), err)
		}
		if r.Seq != len(records) {
			return nil, fmt.Errorf("%w: record %d carries seq %d", ErrCorruptLedger, len(records), r.Seq)
		}
		if r.Prev != prev {
			return nil, fmt.Errorf("%w: record %d chains to %.12s.., want %.12s..", ErrCorruptLedger, r.Seq, r.Prev, prev)
		}
		if len(r.Leaves) == 0 {
			return nil, fmt.Errorf("%w: record %d seals no leaves", ErrCorruptLedger, r.Seq)
		}
		if got := recordRoot(r.Leaves); got != r.Root {
			return nil, fmt.Errorf("%w: record %d root %.12s.. does not match its leaves", ErrCorruptLedger, r.Seq, r.Root)
		}
		if got := headOf(r.Prev, r.Root, r.Seq, len(r.Leaves)); got != r.Head {
			return nil, fmt.Errorf("%w: record %d head does not match its chain", ErrCorruptLedger, r.Seq)
		}
		records = append(records, r)
		prev = r.Head
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptLedger, err)
	}
	return records, nil
}

// Head summarizes the chain tip.
type Head struct {
	// Head is the chain value after the last sealed batch ("" for an
	// empty ledger).
	Head string `json:"head"`
	// Records is the number of sealed batches.
	Records int `json:"records"`
	// Leaves is the total number of leaves across all batches.
	Leaves int `json:"leaves"`
}

// Head returns the current chain tip.
func (l *Ledger) Head() Head {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := Head{Records: len(l.records)}
	for _, r := range l.records {
		h.Leaves += len(r.Leaves)
	}
	if n := len(l.records); n > 0 {
		h.Head = l.records[n-1].Head
	}
	return h
}

// Records returns a copy of the verified chain.
func (l *Ledger) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Append seals leaves into a new record, publishes the extended chain
// atomically, and confirms the publish by reading the file back. On a
// verified publish the record is returned; on persistent medium lies
// the in-memory chain is rolled back and ErrUnverifiedAppend returned,
// so the ledger never believes in a head the disk does not hold.
func (l *Ledger) Append(leaves []Leaf) (Record, error) {
	if len(leaves) == 0 {
		return Record{}, errors.New("ledger: refusing to seal an empty batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := ""
	if n := len(l.records); n > 0 {
		prev = l.records[n-1].Head
	}
	rec := Record{
		Seq:    len(l.records),
		Prev:   prev,
		Root:   recordRoot(leaves),
		Leaves: append([]Leaf(nil), leaves...),
	}
	rec.Head = headOf(rec.Prev, rec.Root, rec.Seq, len(rec.Leaves))
	line, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("ledger: %w", err)
	}
	newData := make([]byte, 0, len(l.data)+len(line)+1)
	newData = append(newData, l.data...)
	newData = append(newData, line...)
	newData = append(newData, '\n')

	if err := l.fs.MkdirAll(filepath.Dir(l.path), 0o755); err != nil {
		return Record{}, fmt.Errorf("ledger: %w", err)
	}
	if err := l.publishVerified(newData); err != nil {
		return Record{}, err
	}
	l.data = newData
	l.records = append(l.records, rec)
	for li, leaf := range rec.Leaves {
		l.index[leaf.Key] = append(l.index[leaf.Key], leafRef{rec.Seq, li})
	}
	return rec, nil
}

// publishVerified writes data atomically and reads it back until the
// medium returns exactly those bytes. A read-back can only pass when
// the true on-disk content equals data: a torn write changes the
// length, and a lying read of a good write merely forces a retry.
func (l *Ledger) publishVerified(data []byte) error {
	var lastErr error
	for attempt := 0; attempt < appendVerifyAttempts; attempt++ {
		if err := resultstore.WriteFileAtomicFS(l.fs, l.path, data, 0o644); err != nil {
			lastErr = err
			continue
		}
		got, err := l.fs.ReadFile(l.path)
		if err == nil && bytes.Equal(got, data) {
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = errors.New("read-back mismatch")
		}
	}
	return fmt.Errorf("%w: %v", ErrUnverifiedAppend, lastErr)
}

// proofLocked builds the inclusion proof for one located leaf.
func (l *Ledger) proofLocked(ref leafRef) InclusionProof {
	rec := l.records[ref.rec]
	hashes := make([][32]byte, len(rec.Leaves))
	for i, leaf := range rec.Leaves {
		hashes[i] = leaf.Hash()
	}
	levels := merkleLevels(hashes)
	path := siblingPath(levels, ref.leaf)
	hexPath := make([]string, len(path))
	for i, p := range path {
		hexPath[i] = hex.EncodeToString(p[:])
	}
	return InclusionProof{
		Seq:   rec.Seq,
		Index: ref.leaf,
		Leaf:  rec.Leaves[ref.leaf],
		Path:  hexPath,
		Root:  rec.Root,
		Head:  rec.Head,
	}
}

// Proof returns the inclusion proof for the newest leaf recorded under
// key, optionally filtered to one leaf kind ("" accepts any).
func (l *Ledger) Proof(key, kind string) (InclusionProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	refs := l.index[key]
	for i := len(refs) - 1; i >= 0; i-- {
		leaf := l.records[refs[i].rec].Leaves[refs[i].leaf]
		if kind == "" || leaf.Kind == kind {
			return l.proofLocked(refs[i]), nil
		}
	}
	return InclusionProof{}, fmt.Errorf("%w: %s", ErrNoProof, key)
}

// ProofsFor builds the inclusion proofs for every leaf of one sealed
// record, sharing a single tree construction — what the batcher hands
// back to each submitter after a flush.
func ProofsFor(rec Record) []InclusionProof {
	hashes := make([][32]byte, len(rec.Leaves))
	for i, leaf := range rec.Leaves {
		hashes[i] = leaf.Hash()
	}
	levels := merkleLevels(hashes)
	proofs := make([]InclusionProof, len(rec.Leaves))
	for i := range rec.Leaves {
		path := siblingPath(levels, i)
		hexPath := make([]string, len(path))
		for j, p := range path {
			hexPath[j] = hex.EncodeToString(p[:])
		}
		proofs[i] = InclusionProof{
			Seq:   rec.Seq,
			Index: i,
			Leaf:  rec.Leaves[i],
			Path:  hexPath,
			Root:  rec.Root,
			Head:  rec.Head,
		}
	}
	return proofs
}

// VerifyProof binds a proof to this ledger: the Merkle arithmetic must
// hold and the record at proof.Seq must carry exactly the proof's root
// and head with the index in range. A proof that verifies here is a
// commitment by this chain — any mutation of the leaf, the path, the
// root, or the ledger record breaks it.
func (l *Ledger) VerifyProof(p InclusionProof) error {
	if err := p.Verify(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.Seq >= len(l.records) {
		return fmt.Errorf("ledger: proof seq %d beyond chain tip %d", p.Seq, len(l.records)-1)
	}
	rec := l.records[p.Seq]
	if p.Index >= len(rec.Leaves) {
		return fmt.Errorf("ledger: proof index %d beyond record's %d leaves", p.Index, len(rec.Leaves))
	}
	if rec.Root != p.Root {
		return errors.New("ledger: proof root does not match the sealed record")
	}
	if rec.Head != p.Head {
		return errors.New("ledger: proof head does not match the sealed record")
	}
	if rec.Leaves[p.Index] != p.Leaf {
		return errors.New("ledger: proof leaf does not match the sealed record")
	}
	return nil
}

// LatestResultDigest returns the digest of the newest result leaf for
// key, with ok == false when the ledger has no result leaf for it.
func (l *Ledger) LatestResultDigest(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	refs := l.index[key]
	for i := len(refs) - 1; i >= 0; i-- {
		leaf := l.records[refs[i].rec].Leaves[refs[i].leaf]
		if leaf.Kind == LeafResult {
			return leaf.Digest, true
		}
	}
	return "", false
}

// DigestVerifier adapts the ledger to resultstore.Verifier: a healthy
// store entry diverges when the ledger's newest result leaf for its
// key commits to a different digest. Keys the ledger has never sealed
// pass — they may sit in a batch that has not flushed yet.
func DigestVerifier(l *Ledger) func(key, digest string) error {
	return func(key, digest string) error {
		want, ok := l.LatestResultDigest(key)
		if !ok {
			return nil
		}
		if want != digest {
			return fmt.Errorf("ledger: entry %s digest %.12s.. diverges from sealed %.12s..", key, digest, want)
		}
		return nil
	}
}
