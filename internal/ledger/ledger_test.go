package ledger_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testJob() engine.Job {
	cfg := config.Default()
	cfg.Cores = 1
	return engine.Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 1},
		Scheme: core.PMEMNoLog,
		Config: cfg,
	}
}

func testResult(flushes uint64) *engine.Result {
	rep := &stats.Report{Label: "test", Cycles: 12345, CoreStat: make([]stats.Core, 1)}
	rep.CoreStat[0].Retired = 678
	return &engine.Result{Report: rep, EmittedLogFlushes: flushes}
}

func leafN(i int) ledger.Leaf {
	return ledger.Leaf{
		Kind:   ledger.LeafResult,
		Key:    fmt.Sprintf("key-%04d", i),
		Digest: fmt.Sprintf("digest-%04d", i),
		Scheme: "Proteus", Workload: "QE", Revision: "rev-test",
	}
}

func openAt(t *testing.T, dir string) *ledger.Ledger {
	t.Helper()
	lg, err := ledger.Open(ledger.DefaultPath(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestProofsAllBatchSizes seals batches of 1..9 leaves — covering the
// balanced, odd-duplicated and single-leaf tree shapes — and checks
// every leaf's inclusion proof both standalone and bound to the chain.
func TestProofsAllBatchSizes(t *testing.T) {
	lg := openAt(t, t.TempDir())
	for n := 1; n <= 9; n++ {
		leaves := make([]ledger.Leaf, n)
		for i := range leaves {
			leaves[i] = leafN(n*100 + i)
		}
		rec, err := lg.Append(leaves)
		if err != nil {
			t.Fatalf("append %d leaves: %v", n, err)
		}
		proofs := ledger.ProofsFor(rec)
		if len(proofs) != n {
			t.Fatalf("ProofsFor returned %d proofs for %d leaves", len(proofs), n)
		}
		for i, p := range proofs {
			if err := p.Verify(); err != nil {
				t.Fatalf("batch %d proof %d: %v", n, i, err)
			}
			if err := lg.VerifyProof(p); err != nil {
				t.Fatalf("batch %d proof %d vs ledger: %v", n, i, err)
			}
			// A different index must not pass the ledger-bound check.
			// (Standalone Verify can accept a duplicated-last leaf under
			// its phantom twin index — same leaf, same root — which is
			// why VerifyProof also range-checks against the record.)
			bad := p
			bad.Index = (p.Index + 1) % (1 << uint(len(p.Path)))
			if n > 1 && lg.VerifyProof(bad) == nil {
				t.Fatalf("batch %d: proof verified under wrong index %d", n, bad.Index)
			}
		}
	}
}

func TestProofLookupByKeyAndKind(t *testing.T) {
	lg := openAt(t, t.TempDir())
	if _, err := lg.Append([]ledger.Leaf{
		{Kind: ledger.LeafAdmission, Key: "k1"},
		{Kind: ledger.LeafResult, Key: "k1", Digest: "d-old"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append([]ledger.Leaf{{Kind: ledger.LeafResult, Key: "k1", Digest: "d-new"}}); err != nil {
		t.Fatal(err)
	}
	p, err := lg.Proof("k1", ledger.LeafResult)
	if err != nil {
		t.Fatal(err)
	}
	if p.Leaf.Digest != "d-new" {
		t.Fatalf("Proof returned digest %q, want the newest result leaf", p.Leaf.Digest)
	}
	if p, err = lg.Proof("k1", ledger.LeafAdmission); err != nil || p.Leaf.Kind != ledger.LeafAdmission {
		t.Fatalf("admission proof = (%+v, %v)", p.Leaf, err)
	}
	if _, err := lg.Proof("absent", ""); !errors.Is(err, ledger.ErrNoProof) {
		t.Fatalf("absent key error = %v, want ErrNoProof", err)
	}
	if d, ok := lg.LatestResultDigest("k1"); !ok || d != "d-new" {
		t.Fatalf("LatestResultDigest = (%q, %v)", d, ok)
	}
}

func TestReopenPreservesChain(t *testing.T) {
	dir := t.TempDir()
	lg := openAt(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := lg.Append([]ledger.Leaf{leafN(i), leafN(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	head := lg.Head()

	re := openAt(t, dir)
	if got := re.Head(); got != head {
		t.Fatalf("reopened head %+v, want %+v", got, head)
	}
	if !reflect.DeepEqual(re.Records(), lg.Records()) {
		t.Fatal("reopened records differ from the written chain")
	}
	p, err := re.Proof("key-0001", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := re.VerifyProof(p); err != nil {
		t.Fatal(err)
	}
	// The reopened ledger keeps appending on the same chain.
	rec, err := re.Append([]ledger.Leaf{leafN(99)})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 || rec.Prev != head.Head {
		t.Fatalf("append after reopen sealed seq %d prev %.12s, want 3 chaining to %.12s", rec.Seq, rec.Prev, head.Head)
	}
}

// TestEveryByteMutationDetected flips every byte of a sealed ledger
// file and requires each mutation to either fail verification at Open
// or decode to the exact same chain (JSON case-insensitive field
// matching makes e.g. "seq"→"Seq" byte-different but semantically
// identical; nothing committed changes).
func TestEveryByteMutationDetected(t *testing.T) {
	dir := t.TempDir()
	lg := openAt(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := lg.Append([]ledger.Leaf{leafN(i), leafN(10 + i), leafN(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := lg.Records()
	path := ledger.DefaultPath(dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	forged := 0
	for pos := 0; pos < len(orig); pos++ {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0x20
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := ledger.Open(path, nil)
		if err != nil {
			continue // detected — the common case
		}
		if !reflect.DeepEqual(re.Records(), want) {
			forged++
			t.Errorf("byte %d: mutated ledger opened with a different chain", pos)
			if forged > 5 {
				t.Fatal("giving up after 5 forgeries")
			}
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationCaughtByAudit drops the last ledger record. The
// shortened file is a valid chain prefix — truncation is undetectable
// from the file alone — so the audit must catch it from the store side:
// entries whose leaves were in the dropped record become unledgered.
func TestTruncationCaughtByAudit(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lg := openAt(t, dir)
	b := ledger.NewBatcher(lg, 1, time.Minute) // seal every write immediately
	rs := ledger.NewRecordingStore(st, b)
	j, res := testJob(), testResult(9)
	if err := rs.Store(j.Fingerprint(), j, res); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if lg.Head().Records != 1 {
		t.Fatalf("expected 1 sealed record, have %d", lg.Head().Records)
	}

	path := ledger.DefaultPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	trunc := bytes.Join(lines[:len(lines)-2], nil) // drop the last record
	if err := os.WriteFile(path, trunc, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openAt(t, dir) // the prefix verifies
	rep, err := ledger.Audit(st, re)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unledgered) != 1 {
		t.Fatalf("audit of truncated ledger: %+v, want 1 unledgered entry", rep)
	}
	if rep.Err(false, false) == nil {
		t.Fatal("audit passed despite truncation")
	}
	if rep.Err(true, false) != nil {
		t.Fatal("-allow-unledgered should tolerate truncation-shaped reports")
	}
}

func TestBatcherSealsOnSize(t *testing.T) {
	lg := openAt(t, t.TempDir())
	b := ledger.NewBatcher(lg, 4, time.Hour) // only the size policy can fire
	defer b.Close()
	var tickets []*ledger.Ticket
	for i := 0; i < 4; i++ {
		tickets = append(tickets, b.Submit(leafN(i)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range tickets {
		p, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if err := lg.VerifyProof(p); err != nil {
			t.Fatalf("ticket %d proof: %v", i, err)
		}
		if p.Seq != 0 || p.Index != i {
			t.Fatalf("ticket %d sealed at (%d,%d), want (0,%d)", i, p.Seq, p.Index, i)
		}
	}
	if c := b.Counters(); c.Batches != 1 || c.Sealed != 4 {
		t.Fatalf("counters %+v, want one batch of 4", c)
	}
}

func TestBatcherSealsOnWait(t *testing.T) {
	lg := openAt(t, t.TempDir())
	b := ledger.NewBatcher(lg, 1000, 20*time.Millisecond) // only the clock can fire
	defer b.Close()
	t1, t2 := b.Submit(leafN(1)), b.Submit(leafN(2))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	p1, err1 := t1.Wait(ctx)
	p2, err2 := t2.Wait(ctx)
	if err1 != nil || err2 != nil {
		t.Fatalf("waits: %v / %v", err1, err2)
	}
	if p1.Seq != p2.Seq {
		t.Fatalf("two leaves submitted together sealed in different batches (%d vs %d)", p1.Seq, p2.Seq)
	}
}

func TestBatcherCloseDrainsAndRejects(t *testing.T) {
	lg := openAt(t, t.TempDir())
	b := ledger.NewBatcher(lg, 1000, time.Hour)
	tk := b.Submit(leafN(1))
	b.Close()
	if _, err := tk.Proof(); err != nil {
		t.Fatalf("pending leaf not sealed by Close: %v", err)
	}
	late := b.Submit(leafN(2))
	if _, err := late.Proof(); !errors.Is(err, ledger.ErrBatcherClosed) {
		t.Fatalf("submit after Close = %v, want ErrBatcherClosed", err)
	}
}

// TestRecordingStoreAuditLifecycle walks the full provenance loop:
// recorded writes audit clean; a bypassing write shows up unledgered
// and is healed by Backfill; an overwrite behind the ledger's back is
// divergence (caught by Audit and by Scrub's verifier hook); a deleted
// entry is Missing, fatal only under -require-present.
func TestRecordingStoreAuditLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lg := openAt(t, dir)
	b := ledger.NewBatcher(lg, 1, time.Minute)
	rs := ledger.NewRecordingStore(st, b)
	ctx := context.Background()

	j := testJob()
	key := j.Fingerprint()
	if err := rs.Store(key, j, testResult(9)); err != nil {
		t.Fatal(err)
	}
	if got, err := rs.Load(key); err != nil || got == nil {
		t.Fatalf("Load through RecordingStore = (%v, %v)", got, err)
	}
	waitSealed(t, lg, 1)

	rep := mustAudit(t, st, lg)
	if rep.Ledgered != 1 || rep.Err(false, false) != nil {
		t.Fatalf("clean store audits dirty: %+v", rep)
	}

	// Bypass: write a second tuple directly into the store.
	j2 := testJob()
	j2.Params.Seed = 2
	key2 := j2.Fingerprint()
	if err := st.Store(key2, j2, testResult(5)); err != nil {
		t.Fatal(err)
	}
	rep = mustAudit(t, st, lg)
	if len(rep.Unledgered) != 1 || rep.Unledgered[0] != key2 {
		t.Fatalf("bypassing write not flagged: %+v", rep)
	}
	n, err := ledger.Backfill(ctx, st, b)
	if err != nil || n != 1 {
		t.Fatalf("Backfill = (%d, %v), want 1 sealed", n, err)
	}
	rep = mustAudit(t, st, lg)
	if rep.Err(false, false) != nil {
		t.Fatalf("audit after backfill: %+v", rep)
	}

	// Divergence: overwrite key's entry without telling the ledger.
	if err := st.Store(key, j, testResult(1234)); err != nil {
		t.Fatal(err)
	}
	rep = mustAudit(t, st, lg)
	if len(rep.Divergent) != 1 || rep.Divergent[0] != key {
		t.Fatalf("silent overwrite not flagged divergent: %+v", rep)
	}
	if rep.Err(true, false) == nil {
		t.Fatal("divergence must fail the audit under every flag combination")
	}
	st.SetVerifier(ledger.DigestVerifier(lg))
	sr, err := st.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Diverged) != 1 || sr.Diverged[0] != key {
		t.Fatalf("Scrub verifier hook missed the divergence: %+v", sr)
	}

	// Restore honesty, then lose an entry: Missing, tolerated by default.
	if err := rs.Store(key, j, testResult(1234)); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	matches, err := filepath.Glob(filepath.Join(dir, "*", key2+".json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("locating %s: %v %v", key2, matches, err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	rep = mustAudit(t, st, lg)
	if len(rep.Missing) != 1 || rep.Missing[0] != key2 {
		t.Fatalf("deleted entry not reported missing: %+v", rep)
	}
	if rep.Err(false, false) != nil {
		t.Fatalf("missing entries must be tolerated by default: %v", rep.Err(false, false))
	}
	if rep.Err(false, true) == nil {
		t.Fatal("-require-present must fail on missing entries")
	}
	b.Close()
}

func waitSealed(t *testing.T, lg *ledger.Ledger, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for lg.Head().Leaves < want {
		if time.Now().After(deadline) {
			t.Fatalf("ledger never sealed %d leaves (have %d)", want, lg.Head().Leaves)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustAudit(t *testing.T, st *resultstore.Store, lg *ledger.Ledger) ledger.AuditReport {
	t.Helper()
	rep, err := ledger.Audit(st, lg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLyingFSCannotForge hammers the ledger through the chaos
// filesystem — torn writes, bit-flipped reads, failed fsyncs,
// crash-before-rename — and then re-reads the file with the honest
// filesystem. Every append the ledger reported as committed must be on
// disk verbatim, and the on-disk chain must verify; an append the
// medium defeated must have been rolled back, never half-believed.
func TestLyingFSCannotForge(t *testing.T) {
	dir := t.TempDir()
	in := chaos.New(7, chaos.Config{
		TornWrite: 0.15, BitFlip: 0.15, ENOSPC: 0.05, SyncFail: 0.05, CrashRename: 0.05,
	})
	lg, err := ledger.Open(ledger.DefaultPath(dir), chaos.NewFS(in))
	if err != nil {
		t.Fatal(err)
	}
	var committed []ledger.Record
	failed := 0
	for i := 0; i < 60; i++ {
		rec, err := lg.Append([]ledger.Leaf{leafN(i), leafN(1000 + i)})
		if err != nil {
			if !errors.Is(err, ledger.ErrUnverifiedAppend) {
				t.Fatalf("append %d: unexpected error class: %v", i, err)
			}
			failed++
			continue
		}
		committed = append(committed, rec)
	}
	if in.Total() == 0 {
		t.Fatal("no faults fired; the test proved nothing")
	}
	t.Logf("%d committed, %d defeated appends, %d faults fired", len(committed), failed, in.Total())

	re, err := ledger.Open(ledger.DefaultPath(dir), nil)
	if err != nil {
		t.Fatalf("honest reopen failed — the lying FS corrupted a verified chain: %v", err)
	}
	onDisk := re.Records()
	for _, rec := range committed {
		if rec.Seq >= len(onDisk) {
			t.Fatalf("committed record seq %d missing from disk (chain has %d)", rec.Seq, len(onDisk))
		}
		if !reflect.DeepEqual(onDisk[rec.Seq], rec) {
			t.Fatalf("committed record seq %d differs on disk", rec.Seq)
		}
		for _, p := range ledger.ProofsFor(rec) {
			if err := re.VerifyProof(p); err != nil {
				t.Fatalf("proof for committed seq %d no longer verifies: %v", rec.Seq, err)
			}
		}
	}
}
