// Merkle layer of the provenance ledger: leaf hashing, batch trees,
// and inclusion proofs.
//
// Leaf and interior hashes are domain-separated (0x00 vs 0x01 prefix),
// so an interior node can never be reinterpreted as a leaf — the
// classic second-preimage defense. Leaf fields are length-prefixed
// before hashing, so no concatenation of two field values can collide
// with a different split of the same bytes. Odd levels duplicate their
// last node, which keeps proof verification a pure fold over the
// sibling path driven by the leaf index's bits.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Leaf kinds. A result leaf commits to a stored simulation result; an
// admission leaf records that the serve path accepted a job (what was
// asked, by which code) before any result exists; a completion leaf is
// a cluster worker's attestation over the raw bytes it handed back.
const (
	LeafResult     = "result"
	LeafAdmission  = "admission"
	LeafCompletion = "completion"
)

// Leaf is one provenance fact: what (key, digest), produced how
// (config fingerprint, scheme, workload) and by which code (VCS
// revision). Empty fields hash as empty strings — the length prefix
// keeps "" distinct from an absent field ever being skipped.
type Leaf struct {
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	Digest   string `json:"digest,omitempty"`
	ConfigFP string `json:"config,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	Revision string `json:"revision,omitempty"`
}

const (
	leafTag byte = 0x00
	nodeTag byte = 0x01
)

// Hash returns the leaf's hash: sha256 over the leaf domain tag and
// the length-prefixed fields, in declaration order.
func (l Leaf) Hash() [32]byte {
	h := sha256.New()
	h.Write([]byte{leafTag})
	var n [8]byte
	for _, f := range []string{l.Kind, l.Key, l.Digest, l.ConfigFP, l.Scheme, l.Workload, l.Revision} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func nodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{nodeTag})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// merkleLevels builds the full tree bottom-up: levels[0] is the leaf
// hashes, the last level has exactly one node (the root). Odd levels
// pair their last node with itself.
func merkleLevels(leaves [][32]byte) [][][32]byte {
	if len(leaves) == 0 {
		return nil
	}
	levels := [][][32]byte{leaves}
	for cur := leaves; len(cur) > 1; {
		next := make([][32]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			right := cur[i]
			if i+1 < len(cur) {
				right = cur[i+1]
			} else {
				right = cur[i] // duplicate-last pairing
			}
			next = append(next, nodeHash(cur[i], right))
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// merkleRoot returns the root over the given leaf hashes.
func merkleRoot(leaves [][32]byte) [32]byte {
	levels := merkleLevels(leaves)
	if levels == nil {
		return [32]byte{}
	}
	return levels[len(levels)-1][0]
}

// siblingPath returns the bottom-up sibling hashes proving leaf i's
// inclusion, given the prebuilt levels.
func siblingPath(levels [][][32]byte, i int) [][32]byte {
	var path [][32]byte
	for _, level := range levels[:len(levels)-1] {
		sib := i ^ 1
		if sib >= len(level) {
			sib = i // odd level: the duplicated node is its own sibling
		}
		path = append(path, level[sib])
		i >>= 1
	}
	return path
}

// foldPath recomputes the root from a leaf hash, its index, and its
// sibling path — the verification side of siblingPath.
func foldPath(leaf [32]byte, index int, path [][32]byte) [32]byte {
	h := leaf
	for _, sib := range path {
		if index&1 == 1 {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
		index >>= 1
	}
	return h
}

// Stamp is a producer's attestation over work it hands to someone
// else's ledger: the leaf it vouches for plus that leaf's hash. A
// worker has no ledger of its own — the coordinator seals the leaf —
// so the stamp is the half of an inclusion proof the producer can
// compute: a binding commitment to exactly what it returned.
type Stamp struct {
	Leaf     Leaf   `json:"leaf"`
	LeafHash string `json:"leaf_hash"`
}

// Verify checks the stamp's internal consistency: the recorded hash
// must be the hash of the recorded leaf.
func (s Stamp) Verify() error {
	h := s.Leaf.Hash()
	if hex.EncodeToString(h[:]) != s.LeafHash {
		return errors.New("ledger: stamp hash does not match its leaf")
	}
	return nil
}

// InclusionProof ties one leaf to a sealed batch and to the ledger
// head published after that batch: the leaf hashes through Path to
// Root, and Root is committed by the ledger record at Seq whose chain
// value is Head. Verify checks the Merkle arithmetic; binding Root and
// Head to an actual ledger is Ledger.VerifyProof's job (a proof is
// only as good as the head you trust).
type InclusionProof struct {
	Seq   int      `json:"seq"`
	Index int      `json:"index"`
	Leaf  Leaf     `json:"leaf"`
	Path  []string `json:"path"`
	Root  string   `json:"root"`
	Head  string   `json:"head"`
}

// Verify checks the proof's internal Merkle consistency. It rejects
// out-of-range indexes explicitly: with a path of length L the index
// must fit in L bits, otherwise bits beyond the path would be silently
// ignored and two different indexes could "verify" the same path.
func (p InclusionProof) Verify() error {
	if p.Seq < 0 {
		return errors.New("ledger: proof seq negative")
	}
	if len(p.Path) > 62 {
		return errors.New("ledger: proof path implausibly deep")
	}
	if p.Index < 0 || p.Index >= 1<<uint(len(p.Path)) {
		return fmt.Errorf("ledger: proof index %d out of range for path depth %d", p.Index, len(p.Path))
	}
	path := make([][32]byte, len(p.Path))
	for i, s := range p.Path {
		b, err := hex.DecodeString(s)
		if err != nil || len(b) != 32 {
			return fmt.Errorf("ledger: proof path[%d] is not a sha256 hex digest", i)
		}
		copy(path[i][:], b)
	}
	root := foldPath(p.Leaf.Hash(), p.Index, path)
	if hex.EncodeToString(root[:]) != p.Root {
		return errors.New("ledger: proof does not hash to its root")
	}
	return nil
}
