package ledger

import (
	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/resultstore"
)

// ResultLeaf builds the provenance leaf a stored copy of res commits
// to: the entry digest (exactly as resultstore records it), the job's
// config fingerprint, scheme and workload, and the running binary's
// VCS revision.
func ResultLeaf(key string, j engine.Job, res *engine.Result) (Leaf, error) {
	d, err := resultstore.EntryDigest(res)
	if err != nil {
		return Leaf{}, err
	}
	return Leaf{
		Kind:     LeafResult,
		Key:      key,
		Digest:   d,
		ConfigFP: j.Config.Fingerprint(),
		Scheme:   j.Scheme.String(),
		Workload: j.Kind.Abbrev(),
		Revision: provenance.Revision(),
	}, nil
}

// RecordingStore wraps an engine.ResultStore so every successful Store
// also submits a result leaf to the batcher — the engine-side hook
// that makes the ledger complete without the engine knowing ledgers
// exist. Loads pass straight through. Submission is non-blocking (the
// simulation pool never waits on ledger fsyncs); closing the batcher
// at shutdown seals whatever is still pending.
type RecordingStore struct {
	inner   engine.ResultStore
	batcher *Batcher
}

// NewRecordingStore wraps inner so writes are recorded via b.
func NewRecordingStore(inner engine.ResultStore, b *Batcher) *RecordingStore {
	return &RecordingStore{inner: inner, batcher: b}
}

// Load implements engine.ResultStore.
func (r *RecordingStore) Load(key string) (*engine.Result, error) {
	return r.inner.Load(key)
}

// Store implements engine.ResultStore: persist first, then record. A
// leaf is only submitted for a write the store accepted, so the ledger
// never attests to an entry that was refused.
func (r *RecordingStore) Store(key string, j engine.Job, res *engine.Result) error {
	if err := r.inner.Store(key, j, res); err != nil {
		return err
	}
	if leaf, err := ResultLeaf(key, j, res); err == nil {
		r.batcher.Submit(leaf)
	}
	return nil
}
