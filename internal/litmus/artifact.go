package litmus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/nvm"
)

// ArtifactMeta is the replay descriptor of a litmus reproducer: enough
// to re-check the divergence without re-running the simulator — the
// faulted crash image is stored alongside, and the program, scheme, and
// committed counts reconstruct the axiomatic window exactly.
type ArtifactMeta struct {
	Type      string `json:"type"` // always "litmus"
	Program   string `json:"program"`
	Scheme    string `json:"scheme"`
	Fault     string `json:"fault"`
	Cycle     uint64 `json:"cycle"`
	Seed      uint64 `json:"seed"`
	Mask      []int  `json:"mask,omitempty"`
	Committed []int  `json:"committed"`
	Outcome   string `json:"outcome"`
	Detail    string `json:"detail,omitempty"`
	// Image names the serialized faulted crash image in the artifact
	// directory (the crash campaign's NVMIMG format and file name).
	Image string `json:"image"`
}

// writeArtifact dumps one divergence as a replayable reproducer: the
// faulted (pre-recovery) crash image plus the meta descriptor, using the
// crash campaign's artifact file names. The injection is re-applied to
// the live system — Apply is pure, so the stored image is exactly the
// one the classifier judged (with the minimized mask).
func writeArtifact(c *Config, ck *checker, compiled *Compiled, sys *core.System, inj crashcampaign.Injection, cycle uint64, committed []int, outcome crashcampaign.Outcome, detail string) (dir, repro string, err error) {
	name := fmt.Sprintf("%s-%s-%s-c%d", sanitize(compiled.Prog.Name()), sanitize(ck.scheme.String()), inj.Fault, cycle)
	dir = filepath.Join(c.ArtifactDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	img := inj.Apply(sys, len(compiled.Prog.Threads))
	f, err := os.Create(filepath.Join(dir, crashcampaign.ImageFileName))
	if err != nil {
		return "", "", err
	}
	if err := img.Serialize(f); err != nil {
		f.Close()
		return "", "", err
	}
	if err := f.Close(); err != nil {
		return "", "", err
	}
	meta := ArtifactMeta{
		Type:      "litmus",
		Program:   compiled.Prog.Name(),
		Scheme:    ck.scheme.String(),
		Fault:     inj.Fault.String(),
		Cycle:     cycle,
		Seed:      inj.Seed,
		Mask:      inj.Mask,
		Committed: append([]int(nil), committed...),
		Outcome:   string(outcome),
		Detail:    detail,
		Image:     crashcampaign.ImageFileName,
	}
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return "", "", err
	}
	if err := os.WriteFile(filepath.Join(dir, crashcampaign.MetaFileName), append(data, '\n'), 0o644); err != nil {
		return "", "", err
	}
	return dir, fmt.Sprintf("%s -replay %s", c.ReplayCmd, dir), nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// LoadArtifact reads a reproducer directory.
func LoadArtifact(path string) (*ArtifactMeta, *nvm.Store, error) {
	data, err := os.ReadFile(filepath.Join(path, crashcampaign.MetaFileName))
	if err != nil {
		return nil, nil, err
	}
	var m ArtifactMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("litmus: parsing %s: %w", crashcampaign.MetaFileName, err)
	}
	if m.Type != "litmus" {
		return nil, nil, fmt.Errorf("litmus: artifact %s has type %q, want litmus", path, m.Type)
	}
	img := m.Image
	if img == "" {
		img = crashcampaign.ImageFileName
	}
	f, err := os.Open(filepath.Join(path, img))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	store, err := nvm.ReadSerialized(f)
	if err != nil {
		return nil, nil, fmt.Errorf("litmus: reading image: %w", err)
	}
	return &m, store, nil
}

// ReplayResult is the outcome of re-checking a reproducer.
type ReplayResult struct {
	Meta    *ArtifactMeta
	Outcome crashcampaign.Outcome
	Detail  string
	// Reproduced reports whether the re-check classified the image the
	// same way the original sweep did.
	Reproduced bool
}

// Replay re-runs recovery and the axiomatic check over a reproducer's
// stored crash image. No simulation happens: the image already carries
// the fault, and the stored committed counts pin the axiomatic window.
func Replay(path string) (*ReplayResult, error) {
	m, img, err := LoadArtifact(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(m.Program)
	if err != nil {
		return nil, err
	}
	scheme, err := crashcampaign.SchemeByName(m.Scheme)
	if err != nil {
		return nil, err
	}
	var fault crashcampaign.Fault
	found := false
	for _, f := range crashcampaign.AllFaults {
		if f.String() == m.Fault {
			fault, found = f, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("litmus: unknown fault %q in artifact", m.Fault)
	}
	compiled, err := prog.Compile()
	if err != nil {
		return nil, err
	}
	if len(m.Committed) != len(prog.Threads) {
		return nil, fmt.Errorf("litmus: artifact has %d committed counts for %d threads", len(m.Committed), len(prog.Threads))
	}
	ck := newChecker(compiled, scheme)
	outcome, detail := ck.classify(img, fault, m.Committed)
	return &ReplayResult{
		Meta:       m,
		Outcome:    outcome,
		Detail:     detail,
		Reproduced: string(outcome) == m.Outcome,
	}, nil
}
