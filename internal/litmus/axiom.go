package litmus

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/nvm"
	"repro/internal/recovery"
)

// modelStates computes, from the program AST alone (deliberately not
// from the heap recording, so the checker is independent of the
// compilation path), thread t's variable values after each whole number
// of its transactions: states[m][v] is variable v after m transactions,
// m = 0..len(txns).
func modelStates(p Program, t int) [][2]uint64 {
	cur := [2]uint64{initVal(t, 0), initVal(t, 1)}
	states := [][2]uint64{cur}
	pos := 0
	for _, txn := range p.Threads[t].Txns() {
		for _, v := range txn {
			cur[v] = storeVal(t, pos)
			pos++
		}
		states = append(states, cur)
	}
	return states
}

// checker evaluates recovered images of one compiled (program, scheme)
// pair against the scheme's ordering axioms.
type checker struct {
	prog   Program
	scheme core.Scheme
	rules  core.OrderingRules
	addrs  [][2]uint64
	// states[t][m] is thread t's model state after m whole transactions.
	states [][][2]uint64
}

func newChecker(c *Compiled, scheme core.Scheme) *checker {
	ck := &checker{
		prog:   c.Prog,
		scheme: scheme,
		rules:  scheme.Ordering(),
		addrs:  c.Addrs,
	}
	for t := range c.Prog.Threads {
		ck.states = append(ck.states, modelStates(c.Prog, t))
	}
	return ck
}

// permitted checks the recovered image against the axioms: for every
// thread t the recovered variable values must equal the model state
// after m whole transactions for some m in [committed[t],
// committed[t]+CommitLag] (clamped to the thread's transaction count) —
// transaction atomicity plus the declared commit lag, checked exactly.
// Threads own disjoint variables, so each is checked independently. The
// returned detail describes the first violation.
func (ck *checker) permitted(img *nvm.Store, committed []int) error {
	for t := range ck.states {
		got := [2]uint64{img.ReadUint64(ck.addrs[t][0]), img.ReadUint64(ck.addrs[t][1])}
		lo := committed[t]
		hi := lo + ck.rules.CommitLag
		if max := len(ck.states[t]) - 1; hi > max {
			hi = max
		}
		ok := false
		for m := lo; m <= hi; m++ {
			if ck.states[t][m] == got {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("thread %d: recovered x=%#x y=%#x matches no whole-transaction state in window [%d,%d] of %s",
				t, got[0], got[1], lo, hi, ck.describe(t))
		}
	}
	return nil
}

// describe renders thread t's permitted model states for diagnostics.
func (ck *checker) describe(t int) string {
	var b strings.Builder
	for m, st := range ck.states[t] {
		if m > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "m=%d:(%#x,%#x)", m, st[0], st[1])
	}
	return b.String()
}

// classify runs the scheme's recovery over the crash image and maps the
// axiomatic membership check through the expectation matrix, mirroring
// the crash campaign's outcome taxonomy: Failed marks a divergence
// between the simulator+recovery and the declared axioms.
func (ck *checker) classify(img *nvm.Store, fault crashcampaign.Fault, committed []int) (crashcampaign.Outcome, string) {
	threads := len(ck.prog.Threads)
	_, rerr := recovery.Recover(img, ck.scheme, threads)
	if rerr != nil {
		if !recovery.IsDetectedCorruption(rerr) {
			return crashcampaign.OutcomeFailed, "recovery error: " + rerr.Error()
		}
		if fault == crashcampaign.FaultClean || crashcampaign.ExpectSafe(ck.scheme, fault) {
			return crashcampaign.OutcomeFailed, "corruption detected in expected-safe run: " + rerr.Error()
		}
		if !ck.rules.DetectsCorruption {
			return crashcampaign.OutcomeFailed, "scheme declares no corruption detection yet reported: " + rerr.Error()
		}
		return crashcampaign.OutcomeDetected, rerr.Error()
	}
	if err := ck.permitted(img, committed); err != nil {
		switch {
		case crashcampaign.ExpectSafe(ck.scheme, fault):
			return crashcampaign.OutcomeFailed, err.Error()
		case fault == crashcampaign.FaultCorrupt && ck.scheme.FailureSafe():
			// Recovery silently accepted a corrupted log: the outcome the
			// DetectsCorruption axiom forbids.
			return crashcampaign.OutcomeFailed, "silent corruption accepted: " + err.Error()
		default:
			return crashcampaign.OutcomeVulnerable, err.Error()
		}
	}
	return crashcampaign.OutcomeVerified, ""
}
