package litmus

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
)

// The report is the CI gate's ground truth, so its bytes must not depend
// on scheduling: the same (config, seed) produces the identical report at
// any worker count and under either cycle stepper.
func TestReportBytesAreDeterministic(t *testing.T) {
	render := func(workers int, stepper core.Stepper) []byte {
		rep, err := Run(context.Background(), Config{
			Programs: Curated(),
			Seed:     42,
			Workers:  workers,
			Stepper:  stepper,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	base := render(1, core.StepperFast)
	for _, v := range []struct {
		name    string
		workers int
		stepper core.Stepper
	}{
		{"workers=8 stepper=fast", 8, core.StepperFast},
		{"workers=1 stepper=reference", 1, core.StepperReference},
		{"workers=5 stepper=reference", 5, core.StepperReference},
	} {
		if got := render(v.workers, v.stepper); !bytes.Equal(got, base) {
			t.Fatalf("report bytes differ for %s (len %d vs %d)", v.name, len(got), len(base))
		}
	}
}

// The full grammar must also sweep clean; this is the slow exhaustive
// pass behind the curated gate.
func TestFullGrammarSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full 398-program sweep skipped in -short mode")
	}
	rep, err := Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite.Programs != 398 {
		t.Fatalf("swept %d programs, want the full 398-program grammar", rep.Suite.Programs)
	}
	if rep.Totals.Failed != 0 || rep.Totals.Divergences != 0 {
		for _, c := range rep.Cases {
			for _, d := range c.Divergences {
				t.Errorf("divergence %s/%s %s@%d: %s", c.Program, c.Scheme, d.Fault, d.Cycle, d.Detail)
			}
		}
		t.Fatalf("full sweep: %d failed, %d divergences", rep.Totals.Failed, rep.Totals.Divergences)
	}
}
