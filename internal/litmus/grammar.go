package litmus

import "sort"

// minStores/maxStores bound the template grammar: every program has 2–4
// persistent stores in total.
const (
	minStores = 2
	maxStores = 4
)

// threadConfigs enumerates every ThreadProg with exactly k stores: all
// 2^k variable assignments crossed with the k ways to partition the
// stores into one or two transactions.
func threadConfigs(k int) []ThreadProg {
	var out []ThreadProg
	for bits := 0; bits < 1<<k; bits++ {
		vars := make([]int, k)
		for i := range vars {
			vars[i] = (bits >> i) & 1
		}
		// Cut == k is the single-transaction form; 1..k-1 are the
		// two-transaction splits.
		for cut := 1; cut <= k; cut++ {
			out = append(out, ThreadProg{Vars: vars, Cut: cut})
		}
	}
	return out
}

// Enumerate returns the full grammar: every 1- and 2-thread program with
// 2–4 stores in total, under both layouts, sorted by canonical name.
// Two-thread programs whose threads are swapped copies of each other are
// behaviourally isomorphic (threads own disjoint variables on a
// symmetric machine), so only the canonically ordered representative is
// kept. The result is deterministic: same list, same order, every call.
func Enumerate() []Program {
	var progs []Program
	for _, layout := range []Layout{LayoutSame, LayoutCross} {
		// Single-thread programs: k = 2..4 stores.
		for k := minStores; k <= maxStores; k++ {
			for _, tc := range threadConfigs(k) {
				progs = append(progs, Program{Layout: layout, Threads: []ThreadProg{tc}})
			}
		}
		// Two-thread programs: k0 + k1 <= 4, each thread at least one
		// store, deduplicated up to thread swap.
		for k0 := 1; k0 < maxStores; k0++ {
			for k1 := k0; k0+k1 <= maxStores; k1++ {
				for _, tc0 := range threadConfigs(k0) {
					for _, tc1 := range threadConfigs(k1) {
						if k0 == k1 && tc1.encode() < tc0.encode() {
							continue // swapped copy of a kept program
						}
						progs = append(progs, Program{Layout: layout, Threads: []ThreadProg{tc0, tc1}})
					}
				}
			}
		}
	}
	sort.Slice(progs, func(i, j int) bool { return progs[i].Name() < progs[j].Name() })
	return progs
}

// Curated returns the fast CI subset: a handful of programs chosen to
// cover each (store count, thread count, transaction split, layout)
// class — intra-line and cross-line write pairs, single- and two-txn
// threads, and both two-thread shapes — so the smoke gate exercises
// every scheme's ordering machinery in well under a minute.
func Curated() []Program {
	names := []string{
		"Ps:xy",     // one txn, both vars, same line
		"Pc:xy",     // one txn, both vars, cross line
		"Ps:x;y",    // two txns, same line
		"Pc:x;y",    // two txns, cross line
		"Ps:xx;y",   // overwrite then second txn
		"Pc:xyx;y",  // 4 stores, revisit across txns
		"Ps:xy;xy",  // two full txns, same line
		"Pc:x|y",    // two threads, one store each
		"Ps:x|y",    // two threads sharing a line layout
		"Pc:xy|x;y", // thread 0 one txn, thread 1 two txns
		"Ps:x;x|y",  // overwrites split across txns, plus a peer
		"Pc:xx|yy",  // two threads, repeated stores
	}
	out := make([]Program, 0, len(names))
	for _, n := range names {
		p, err := Parse(n)
		if err != nil {
			panic("litmus: bad curated program " + n + ": " + err.Error())
		}
		out = append(out, p)
	}
	return out
}
