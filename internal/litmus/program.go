// Package litmus is a persistency-model litmus harness: it enumerates
// tiny programs from a template grammar (2–4 persistent stores over two
// variables, up to two threads, each thread's stores split across up to
// two durable transactions), compiles each into the workload
// representation the simulator runs, sweeps every distinct persist state
// of every run under the crash campaign's fault models, and checks each
// recovered image against the exact set of post-crash states the
// scheme's declared ordering axioms (core.OrderingRules) permit. Any
// divergence is a bug in the simulator, the recovery path, or the axioms;
// the harness reports it with the earliest divergent cycle, a shrunken
// fault mask, and a replayable reproducer artifact.
//
// Everything the harness computes is deterministic in (config, seed): the
// report bytes are identical at any worker count and under either cycle
// stepper.
package litmus

import (
	"fmt"
	"strings"

	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/nvm"
	"repro/internal/workload"
)

// Layout places the two per-thread variables in the heap.
type Layout int

const (
	// LayoutSame puts x and y on one cache line, 32 bytes apart — the
	// same line (one WPQ entry, one torn-write victim) but distinct 32B
	// log blocks for the hardware schemes.
	LayoutSame Layout = iota
	// LayoutCross puts x and y on different cache lines.
	LayoutCross
)

func (l Layout) String() string {
	if l == LayoutSame {
		return "same"
	}
	return "cross"
}

// varNames maps variable indexes to their grammar letters.
const varNames = "xy"

// ThreadProg is one thread's program: an ordered list of stores (each to
// variable x or y) partitioned into one or two durable transactions.
type ThreadProg struct {
	// Vars holds the target variable index (0 = x, 1 = y) of each store
	// in program order.
	Vars []int
	// Cut splits Vars into transactions: Vars[:Cut] is the first
	// transaction, Vars[Cut:] the second. Cut == len(Vars) means a single
	// transaction.
	Cut int
}

// Txns returns the per-transaction store lists.
func (tp ThreadProg) Txns() [][]int {
	if tp.Cut >= len(tp.Vars) {
		return [][]int{tp.Vars}
	}
	return [][]int{tp.Vars[:tp.Cut], tp.Vars[tp.Cut:]}
}

func (tp ThreadProg) encode() string {
	var b strings.Builder
	for i, v := range tp.Vars {
		if i == tp.Cut {
			b.WriteByte(';')
		}
		b.WriteByte(varNames[v])
	}
	return b.String()
}

// Program is one litmus test: a layout plus one or two thread programs.
type Program struct {
	Layout  Layout
	Threads []ThreadProg
}

// Name returns the program's canonical encoding, e.g. "Ps:xy;x|y" —
// layout prefix (s = same line, c = cross line), threads separated by
// "|", transactions within a thread separated by ";", stores spelled as
// their target variable letters.
func (p Program) Name() string {
	var b strings.Builder
	b.WriteByte('P')
	if p.Layout == LayoutSame {
		b.WriteByte('s')
	} else {
		b.WriteByte('c')
	}
	b.WriteByte(':')
	for t, tp := range p.Threads {
		if t > 0 {
			b.WriteByte('|')
		}
		b.WriteString(tp.encode())
	}
	return b.String()
}

func (p Program) String() string { return p.Name() }

// Stores returns the total store count across threads.
func (p Program) Stores() int {
	n := 0
	for _, tp := range p.Threads {
		n += len(tp.Vars)
	}
	return n
}

// Parse decodes a Name() encoding back into a Program.
func Parse(s string) (Program, error) {
	rest, ok := strings.CutPrefix(s, "P")
	if !ok || len(rest) < 2 || rest[1] != ':' {
		return Program{}, fmt.Errorf("litmus: malformed program %q", s)
	}
	var p Program
	switch rest[0] {
	case 's':
		p.Layout = LayoutSame
	case 'c':
		p.Layout = LayoutCross
	default:
		return Program{}, fmt.Errorf("litmus: unknown layout %q in %q", rest[0], s)
	}
	for _, enc := range strings.Split(rest[2:], "|") {
		var tp ThreadProg
		tp.Cut = -1
		for _, c := range enc {
			switch c {
			case 'x':
				tp.Vars = append(tp.Vars, 0)
			case 'y':
				tp.Vars = append(tp.Vars, 1)
			case ';':
				if tp.Cut >= 0 {
					return Program{}, fmt.Errorf("litmus: more than two transactions in %q", s)
				}
				tp.Cut = len(tp.Vars)
			default:
				return Program{}, fmt.Errorf("litmus: unexpected %q in %q", c, s)
			}
		}
		if tp.Cut < 0 {
			tp.Cut = len(tp.Vars)
		}
		if len(tp.Vars) == 0 || tp.Cut == 0 || tp.Cut == len(tp.Vars) && strings.Contains(enc, ";") {
			return Program{}, fmt.Errorf("litmus: empty transaction in %q", s)
		}
		p.Threads = append(p.Threads, tp)
	}
	if len(p.Threads) < 1 || len(p.Threads) > 2 {
		return Program{}, fmt.Errorf("litmus: %d threads in %q, want 1 or 2", len(p.Threads), s)
	}
	if n := p.Stores(); n < minStores || n > maxStores {
		return Program{}, fmt.Errorf("litmus: %d stores in %q, want %d..%d", n, s, minStores, maxStores)
	}
	return p, nil
}

// initVal returns thread t's variable v's pre-program value. Every
// initial and stored value in a program is globally distinct so every
// reachable memory state is distinguishable.
func initVal(t, v int) uint64 { return 0xA000 + uint64(t)*16 + uint64(v) }

// storeVal returns the value the pos-th store (in thread program order)
// of thread t writes.
func storeVal(t, pos int) uint64 { return uint64(t+1)*100 + uint64(pos) + 1 }

// Compiled is a program lowered to the simulator's workload
// representation, with the variable addresses the axiomatic checker
// reads.
type Compiled struct {
	Prog Program
	WL   *workload.Workload
	// Addrs[t][v] is thread t's variable v's heap address.
	Addrs [][2]uint64
}

// Compile lowers the program: variables are allocated and initialized on
// a fresh image (unrecorded), then each transaction is recorded through
// the heap exactly as the macro-benchmarks record theirs — Begin with the
// thread's private lock, an undo hint covering every line the transaction
// writes, the stores, End. The recorded workload feeds logging.Generate
// unchanged.
func (p Program) Compile() (*Compiled, error) {
	if len(p.Threads) == 0 {
		return nil, fmt.Errorf("litmus: program %q has no threads", p.Name())
	}
	img := nvm.NewStore()
	heaps := make([]*heap.Heap, len(p.Threads))
	addrs := make([][2]uint64, len(p.Threads))
	for t := range p.Threads {
		h := heap.New(t, img)
		heaps[t] = h
		if p.Layout == LayoutSame {
			line := h.Alloc(isa.LineSize)
			addrs[t] = [2]uint64{line, line + isa.LogBlockSize}
		} else {
			addrs[t] = [2]uint64{h.Alloc(isa.LineSize), h.Alloc(isa.LineSize)}
		}
		h.Store(addrs[t][0], initVal(t, 0))
		h.Store(addrs[t][1], initVal(t, 1))
	}
	init := img.Snapshot()
	for t, tp := range p.Threads {
		h := heaps[t]
		h.SetRecording(true)
		lock, _ := isa.VolatileWindow(t)
		pos := 0
		for _, txn := range tp.Txns() {
			h.Begin(lock)
			for _, line := range txnLines(addrs[t], txn) {
				h.LogHint(line, isa.LineSize)
			}
			for _, v := range txn {
				h.Store(addrs[t][v], storeVal(t, pos))
				pos++
			}
			h.End()
		}
	}
	wl := &workload.Workload{
		Kind:      workload.Litmus,
		Params:    workload.Params{Threads: len(p.Threads)},
		InitImage: init,
		Heaps:     heaps,
	}
	return &Compiled{Prog: p, WL: wl, Addrs: addrs}, nil
}

// txnLines returns the distinct cache lines the transaction's stores
// touch, in first-touch order — the undo-hint set.
func txnLines(addrs [2]uint64, txn []int) []uint64 {
	var out []uint64
	for _, v := range txn {
		line := isa.LineAddr(addrs[v])
		dup := false
		for _, l := range out {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, line)
		}
	}
	return out
}
