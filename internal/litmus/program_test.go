package litmus

import (
	"testing"

	"repro/internal/isa"
)

// The grammar is closed form: per layout, single-thread programs
// contribute sum_{k=2..4} 2^k*k = 8+24+64 = 96, and two-thread programs
// with k0 <= k1, k0+k1 <= 4 contribute (1,1): 2*2 with swap dedup -> 3,
// (1,2): 2*8 = 16, (1,3): 2*24 = 48, (2,2): 8*8 with swap dedup -> 36,
// for 103; (96+103)*2 layouts = 398.
func TestEnumerateCountAndRoundtrip(t *testing.T) {
	progs := Enumerate()
	if len(progs) != 398 {
		t.Fatalf("Enumerate() returned %d programs, want 398", len(progs))
	}
	seen := make(map[string]bool)
	for _, p := range progs {
		name := p.Name()
		if seen[name] {
			t.Fatalf("duplicate program %q", name)
		}
		seen[name] = true
		got, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if got.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q", name, got.Name())
		}
		if n := p.Stores(); n < minStores || n > maxStores {
			t.Fatalf("program %q has %d stores, want %d..%d", name, n, minStores, maxStores)
		}
	}
}

func TestEnumerateIsDeterministic(t *testing.T) {
	a, b := Enumerate(), Enumerate()
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("Enumerate() order differs at %d: %q vs %q", i, a[i].Name(), b[i].Name())
		}
	}
}

func TestEnumerateDedupsSwappedThreads(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range Enumerate() {
		seen[p.Name()] = true
	}
	for name := range seen {
		p, err := Parse(name)
		if err != nil || len(p.Threads) != 2 {
			continue
		}
		if len(p.Threads[0].Vars) != len(p.Threads[1].Vars) {
			continue
		}
		swapped := Program{Layout: p.Layout, Threads: []ThreadProg{p.Threads[1], p.Threads[0]}}
		if sn := swapped.Name(); sn != name && seen[sn] {
			t.Fatalf("both %q and its thread-swap %q are enumerated", name, sn)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"", "xy", "Pz:xy", "Ps:", "Ps:x", "Ps:abc", "Ps:;xy", "Ps:xy;",
		"Ps:x;y;x", "Ps:x|y|x", "Ps:xyxyx", "Ps:xy|xyx", "Ps:|xy",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

func TestCuratedParses(t *testing.T) {
	progs := Curated()
	if len(progs) == 0 {
		t.Fatal("Curated() is empty")
	}
	one, two := false, false
	for _, p := range progs {
		switch len(p.Threads) {
		case 1:
			one = true
		case 2:
			two = true
		}
	}
	if !one || !two {
		t.Fatalf("curated subset must cover both thread counts (one=%v two=%v)", one, two)
	}
}

func TestCompileLayoutsAndInit(t *testing.T) {
	for _, name := range []string{"Ps:xy|yx", "Pc:xy|yx"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("Compile(%q): %v", name, err)
		}
		for tid, a := range c.Addrs {
			x, y := a[0], a[1]
			if p.Layout == LayoutSame {
				if isa.LineAddr(x) != isa.LineAddr(y) {
					t.Fatalf("%s thread %d: same-line layout got lines %#x / %#x", name, tid, x, y)
				}
				if y != x+isa.LogBlockSize {
					t.Fatalf("%s thread %d: want y = x+%d, got x=%#x y=%#x", name, tid, isa.LogBlockSize, x, y)
				}
			} else if isa.LineAddr(x) == isa.LineAddr(y) {
				t.Fatalf("%s thread %d: cross-line layout got one line %#x", name, tid, isa.LineAddr(x))
			}
			if got := c.WL.InitImage.ReadUint64(x); got != initVal(tid, 0) {
				t.Fatalf("%s thread %d: init x = %#x, want %#x", name, tid, got, initVal(tid, 0))
			}
			if got := c.WL.InitImage.ReadUint64(y); got != initVal(tid, 1) {
				t.Fatalf("%s thread %d: init y = %#x, want %#x", name, tid, got, initVal(tid, 1))
			}
		}
	}
}

func TestModelStates(t *testing.T) {
	p, err := Parse("Ps:xyx;y")
	if err != nil {
		t.Fatal(err)
	}
	states := modelStates(p, 0)
	want := [][2]uint64{
		{initVal(0, 0), initVal(0, 1)},
		{storeVal(0, 2), storeVal(0, 1)}, // after txn 1: x<-s0, y<-s1, x<-s2
		{storeVal(0, 2), storeVal(0, 3)}, // after txn 2: y<-s3
	}
	if len(states) != len(want) {
		t.Fatalf("modelStates returned %d states, want %d", len(states), len(want))
	}
	for m := range want {
		if states[m] != want[m] {
			t.Fatalf("state[%d] = %#x, want %#x", m, states[m], want[m])
		}
	}
}
