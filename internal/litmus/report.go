package litmus

import (
	"encoding/json"
	"io"

	"repro/internal/crashcampaign"
)

// Divergence is one simulator/axiom disagreement: an injection the
// expectation matrix classified as failed. Only the earliest divergent
// cycle per (case, fault) is recorded in full (with its shrunken mask
// and reproducer); later cycles of the same fault are tallied in the
// case counters.
type Divergence struct {
	Fault string `json:"fault"`
	// Cycle is the earliest cycle whose persist state diverges — the
	// sweep classifies states in cycle order, so the first hit is the
	// minimum.
	Cycle  uint64 `json:"cycle"`
	Detail string `json:"detail,omitempty"`
	// Targets is the fault's target universe size at the divergent cycle;
	// Mask is the shrunken subset that still diverges (absent for faults
	// without a mask).
	Targets int   `json:"targets,omitempty"`
	Mask    []int `json:"mask,omitempty"`
	// Artifact is the reproducer directory (when the sweep ran with one);
	// Repro is the ready-to-run replay command.
	Artifact string `json:"artifact,omitempty"`
	Repro    string `json:"repro,omitempty"`
}

// CaseReport is the sweep result for one (program, scheme) pair.
type CaseReport struct {
	Program string `json:"program"`
	Scheme  string `json:"scheme"`
	// TotalCycles is the full run length; States counts the distinct
	// persist states the sweep classified (the representatives of the
	// per-cycle signature dedup).
	TotalCycles uint64       `json:"total_cycles"`
	States      int          `json:"states"`
	Injections  int          `json:"injections"`
	Verified    int          `json:"verified"`
	Detected    int          `json:"detected"`
	Vulnerable  int          `json:"vulnerable"`
	Failed      int          `json:"failed"`
	Divergences []Divergence `json:"divergences,omitempty"`
}

func (c *CaseReport) count(o crashcampaign.Outcome) {
	c.Injections++
	switch o {
	case crashcampaign.OutcomeVerified:
		c.Verified++
	case crashcampaign.OutcomeDetected:
		c.Detected++
	case crashcampaign.OutcomeVulnerable:
		c.Vulnerable++
	case crashcampaign.OutcomeFailed:
		c.Failed++
	}
}

// Totals aggregates the suite.
type Totals struct {
	Cases       int `json:"cases"`
	Injections  int `json:"injections"`
	Verified    int `json:"verified"`
	Detected    int `json:"detected"`
	Vulnerable  int `json:"vulnerable"`
	Failed      int `json:"failed"`
	Divergences int `json:"divergences"`
}

// Info records the suite's inputs so a report is self-describing.
type Info struct {
	Seed              int64    `json:"seed"`
	Programs          int      `json:"programs"`
	Schemes           []string `json:"schemes"`
	Faults            []string `json:"faults"`
	ConfigFingerprint string   `json:"config_fingerprint"`
}

// Report is the suite result. It contains no wall-clock or
// order-of-completion data: marshaling it is byte-identical for the same
// (config, seed) at any worker count and under either stepper.
type Report struct {
	Suite  Info         `json:"suite"`
	Cases  []CaseReport `json:"cases"`
	Totals Totals       `json:"totals"`
}

// WriteJSON writes the canonical (indented, newline-terminated) report
// encoding — the bytes the determinism guarantee is stated over.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
