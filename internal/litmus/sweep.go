package litmus

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/logging"
)

// Config configures a litmus sweep.
type Config struct {
	// Programs defaults to the full Enumerate() grammar.
	Programs []Program
	// Schemes defaults to every failure-safe scheme.
	Schemes []core.Scheme
	// Faults defaults to the full model set (clean, torn, adrloss,
	// corrupt); FaultClean is always included.
	Faults []crashcampaign.Fault
	// Seed feeds the per-injection fault randomness.
	Seed int64
	// Workers bounds concurrent case sweeps (0 = GOMAXPROCS).
	Workers int
	// Stepper selects the cycle-advance strategy (zero value = fast).
	// The report is byte-identical under either.
	Stepper core.Stepper
	// ArtifactDir, when set, receives one reproducer directory per
	// divergence.
	ArtifactDir string
	// ReplayCmd names the replay binary in generated repro command lines;
	// empty means "proteus-litmus".
	ReplayCmd string
}

func (c *Config) fill() {
	if len(c.Programs) == 0 {
		c.Programs = Enumerate()
	}
	if len(c.Schemes) == 0 {
		for _, s := range core.Schemes {
			if s.FailureSafe() {
				c.Schemes = append(c.Schemes, s)
			}
		}
	}
	if len(c.Faults) == 0 {
		c.Faults = crashcampaign.AllFaults
	} else {
		seen := map[crashcampaign.Fault]bool{crashcampaign.FaultClean: true}
		faults := []crashcampaign.Fault{crashcampaign.FaultClean}
		for _, f := range c.Faults {
			if !seen[f] {
				seen[f] = true
				faults = append(faults, f)
			}
		}
		sort.Slice(faults, func(i, j int) bool { return faults[i] < faults[j] })
		c.Faults = faults
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ReplayCmd == "" {
		c.ReplayCmd = "proteus-litmus"
	}
}

// SimConfig returns the machine configuration litmus programs run under:
// the paper's machine with the per-transaction harness ALU padding
// zeroed, so a 2–4 store program's run is a few thousand cycles and an
// exhaustive per-cycle sweep stays cheap.
func SimConfig(threads int) config.Config {
	cfg := config.Default()
	cfg.Cores = threads
	cfg.Core.AluPerTxn = 0
	return cfg
}

// Run sweeps every (program, scheme) case and assembles the
// deterministic report: cases are indexed up front, executed by a worker
// pool, and emitted in index order, so the bytes never depend on worker
// count or completion order.
func Run(ctx context.Context, c Config) (*Report, error) {
	c.fill()
	type caseKey struct {
		prog   Program
		scheme core.Scheme
	}
	var keys []caseKey
	for _, p := range c.Programs {
		for _, s := range c.Schemes {
			keys = append(keys, caseKey{p, s})
		}
	}

	results := make([]CaseReport, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.Workers)
	for i, k := range keys {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, k caseKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			results[i], errs[i] = runCase(&c, k.prog, k.scheme)
		}(i, k)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("litmus: case %s/%s: %w", keys[i].prog, keys[i].scheme, err)
		}
	}

	rep := &Report{
		Suite: Info{
			Seed:              c.Seed,
			Programs:          len(c.Programs),
			ConfigFingerprint: SimConfig(1).Fingerprint(),
		},
		Cases: results,
	}
	for _, s := range c.Schemes {
		rep.Suite.Schemes = append(rep.Suite.Schemes, s.String())
	}
	for _, f := range c.Faults {
		rep.Suite.Faults = append(rep.Suite.Faults, f.String())
	}
	for i := range rep.Cases {
		cr := &rep.Cases[i]
		rep.Totals.Cases++
		rep.Totals.Injections += cr.Injections
		rep.Totals.Verified += cr.Verified
		rep.Totals.Detected += cr.Detected
		rep.Totals.Vulnerable += cr.Vulnerable
		rep.Totals.Failed += cr.Failed
		rep.Totals.Divergences += len(cr.Divergences)
	}
	return rep, nil
}

// persistKey dedups sweep cycles: equal signatures AND equal committed
// counts guarantee the crash image, the fault target universe, and the
// axiomatic window are all identical, so one representative cycle stands
// for the run. (Signature alone is not enough — a transaction can retire
// without moving persist state, which shifts the permitted window.)
type persistKey struct {
	sig       uint64
	committed [2]int
}

// runCase sweeps one (program, scheme) pair: compile, generate the
// scheme's trace, then single-step the machine from cycle 1 to
// completion, classifying every applicable fault at each distinct
// persist state.
func runCase(c *Config, prog Program, scheme core.Scheme) (CaseReport, error) {
	cr := CaseReport{Program: prog.Name(), Scheme: scheme.String()}
	compiled, err := prog.Compile()
	if err != nil {
		return cr, err
	}
	threads := len(prog.Threads)
	cfg := SimConfig(threads)
	traces, err := logging.Generate(compiled.WL, scheme, cfg)
	if err != nil {
		return cr, err
	}
	ck := newChecker(compiled, scheme)
	sys, err := core.NewSystem(cfg, scheme, traces, compiled.WL.InitImage)
	if err != nil {
		return cr, err
	}
	sys.SetStepper(c.Stepper)

	// firstDiv remembers which faults already produced their minimized
	// earliest divergence for this case.
	firstDiv := make(map[crashcampaign.Fault]bool)
	seen := make(map[persistKey]bool)
	for !sys.Finished() {
		sys.Step(1)
		key := persistKey{sig: sys.PersistSig()}
		for t, n := range committedCounts(sys) {
			key.committed[t] = n
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := classifyState(c, &cr, ck, sys, compiled, firstDiv); err != nil {
			return cr, err
		}
	}
	cr.TotalCycles = sys.Cycle()
	cr.States = len(seen)
	return cr, nil
}

// classifyState evaluates every applicable fault at the system's current
// state, counting outcomes and recording (minimizing, dumping) the first
// divergence per fault.
func classifyState(c *Config, cr *CaseReport, ck *checker, sys *core.System, compiled *Compiled, firstDiv map[crashcampaign.Fault]bool) error {
	threads := len(compiled.Prog.Threads)
	committed := committedCounts(sys)
	cycle := sys.Cycle()
	for _, f := range c.Faults {
		if !f.AppliesTo(ck.scheme) {
			continue
		}
		inj := crashcampaign.Injection{
			Fault: f,
			Seed: crashcampaign.InjectionSeed(c.Seed,
				cr.Program, cr.Scheme, f.String(), fmt.Sprint(cycle)),
		}
		outcome, detail := ck.classify(inj.Apply(sys, threads), f, committed)
		cr.count(outcome)
		if outcome != crashcampaign.OutcomeFailed || firstDiv[f] {
			continue
		}
		firstDiv[f] = true
		div := Divergence{Fault: f.String(), Cycle: cycle, Detail: detail}
		div.Targets = inj.Targets(sys, threads)
		// Shrink the fault mask to a single target when one suffices: the
		// masks are tiny (pending lines / log lines of a 2–4 store
		// program), so a linear scan is exhaustive.
		if div.Targets > 1 {
			for i := 0; i < div.Targets; i++ {
				one := inj
				one.Mask = []int{i}
				if o, d := ck.classify(one.Apply(sys, threads), f, committed); o == crashcampaign.OutcomeFailed {
					inj = one
					div.Mask = one.Mask
					div.Detail = d
					break
				}
			}
		}
		if c.ArtifactDir != "" {
			dir, repro, err := writeArtifact(c, ck, compiled, sys, inj, cycle, committed, outcome, div.Detail)
			if err != nil {
				return err
			}
			div.Artifact, div.Repro = dir, repro
		}
		cr.Divergences = append(cr.Divergences, div)
	}
	return nil
}

func committedCounts(sys *core.System) []int {
	commits := sys.Commits()
	counts := make([]int, len(commits))
	for i, cs := range commits {
		counts[i] = len(cs)
	}
	return counts
}
