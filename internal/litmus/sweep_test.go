package litmus

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/logging"
)

// The curated subset is the CI gate: every failure-safe scheme, every
// fault model, zero divergences. A failure here means the simulator, the
// recovery path, and the declared ordering axioms no longer agree.
func TestCuratedSweepIsDivergenceFree(t *testing.T) {
	rep, err := Run(context.Background(), Config{Programs: Curated()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Failed != 0 || rep.Totals.Divergences != 0 {
		for _, c := range rep.Cases {
			for _, d := range c.Divergences {
				t.Errorf("divergence %s/%s %s@%d: %s", c.Program, c.Scheme, d.Fault, d.Cycle, d.Detail)
			}
		}
		t.Fatalf("curated sweep: %d failed, %d divergences", rep.Totals.Failed, rep.Totals.Divergences)
	}
	if rep.Totals.Verified == 0 || rep.Totals.Detected == 0 || rep.Totals.Vulnerable == 0 {
		t.Fatalf("curated sweep lacks outcome coverage: %+v", rep.Totals)
	}
	wantCases := len(Curated()) * len(rep.Suite.Schemes)
	if rep.Totals.Cases != wantCases {
		t.Fatalf("swept %d cases, want %d", rep.Totals.Cases, wantCases)
	}
	for _, c := range rep.Cases {
		if c.States < 2 {
			t.Errorf("case %s/%s classified only %d persist states", c.Program, c.Scheme, c.States)
		}
		if c.Injections == 0 {
			t.Errorf("case %s/%s ran no injections", c.Program, c.Scheme)
		}
	}
}

// Regression for the out-of-order log-flush departure bug this harness
// found (DESIGN.md "Litmus harness"): a younger transaction's log entry
// used to reach the memory controller before an older transaction's
// entries whenever the younger log-load hit in cache while the older ones
// missed to NVM. A crash in that window left the durable log holding only
// the younger undo entry, whose pre-image is the older transaction's
// *volatile* output — recovery then rolled the variable to a value that
// never persisted. The two-transaction single-thread programs below are
// the minimal reproducers; Proteus is swept with and without log write
// removal.
func TestLogFlushDepartsInOrderRegression(t *testing.T) {
	var progs []Program
	for _, name := range []string{"Pc:xyx;y", "Ps:xy;xy", "Pc:x;y"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	rep, err := Run(context.Background(), Config{
		Programs: progs,
		Schemes:  []core.Scheme{core.Proteus, core.ProteusNoLWR},
		Faults:   []crashcampaign.Fault{crashcampaign.FaultClean},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cases {
		for _, d := range c.Divergences {
			t.Errorf("reintroduced divergence %s/%s %s@%d: %s", c.Program, c.Scheme, d.Fault, d.Cycle, d.Detail)
		}
	}
	if rep.Totals.Failed != 0 {
		t.Fatalf("clean-fault sweep failed %d injections", rep.Totals.Failed)
	}
}

// A checker must reject states the axioms forbid: feed it the init image
// with a committed count claiming one transaction retired, which no
// commit-lag window can explain away once the count exceeds the lag.
func TestCheckerRejectsImpossibleState(t *testing.T) {
	p, err := Parse("Ps:x;y")
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ck := newChecker(c, core.Proteus)
	if err := ck.permitted(c.WL.InitImage, []int{0}); err != nil {
		t.Fatalf("init image with committed=0 must be permitted: %v", err)
	}
	if err := ck.permitted(c.WL.InitImage, []int{2}); err == nil {
		t.Fatal("init image with committed=2 must be rejected")
	}
}

func TestArtifactReplayRoundtrip(t *testing.T) {
	p, err := Parse("Pc:x;y")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.Proteus
	cfg := SimConfig(1)
	traces, err := logging.Generate(compiled.WL, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, scheme, traces, compiled.WL.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	for !sys.Finished() {
		sys.Step(10000)
	}
	conf := &Config{ArtifactDir: t.TempDir(), ReplayCmd: "proteus-litmus"}
	ck := newChecker(compiled, scheme)
	inj := crashcampaign.Injection{
		Fault: crashcampaign.FaultTorn,
		Seed:  crashcampaign.InjectionSeed(7, "roundtrip"),
	}
	committed := committedCounts(sys)
	outcome, detail := ck.classify(inj.Apply(sys, 1), inj.Fault, committed)
	dir, repro, err := writeArtifact(conf, ck, compiled, sys, inj, sys.Cycle(), committed, outcome, detail)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(repro, "proteus-litmus -replay ") {
		t.Fatalf("repro command %q lacks the replay invocation", repro)
	}
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("replay classified %s (%s), sweep recorded %s (%s)", res.Outcome, res.Detail, outcome, detail)
	}
	if res.Meta.Program != p.Name() || res.Meta.Scheme != scheme.String() || res.Meta.Fault != inj.Fault.String() {
		t.Fatalf("artifact meta mismatch: %+v", res.Meta)
	}
}

func TestRunRespectsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Programs: Curated()}); err == nil {
		t.Fatal("cancelled sweep must return an error")
	}
}
