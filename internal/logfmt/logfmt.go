// Package logfmt defines the on-NVM undo-log entry encodings shared by
// the timing layer (which creates entries), the code generators (software
// logging writes entries with plain stores), and recovery (which parses
// crash images).
//
// Three formats exist:
//
//   - Proteus entries (§4.1): one 64-byte line holding 32 bytes of data
//     plus metadata (log-from address, transaction ID, flags). The commit
//     mark lives in the flags of a transaction's last entry (§4.3).
//   - ATOM entries: a 64-byte metadata line (valid word, log-from address,
//     transaction ID) followed by a 64-byte data line. Truncation zeroes
//     the metadata line.
//   - Software (PMEM) entries: the same two-line layout as ATOM, written
//     by plain stores; validity is governed by the per-thread logFlag
//     protocol of Figure 2 rather than per-entry valid words.
//
// Every entry carries CRC32 integrity words so recovery can distinguish a
// whole, untampered entry from a torn line (only a prefix of its 8-byte
// words persisted) or log-area bit corruption. The paper's formats leave
// these bytes unused; packing the checksums into existing metadata words
// keeps the entry sizes — and for software logging the store count —
// unchanged, so the timing results are unaffected.
package logfmt

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/isa"
)

// LineState classifies a 64-byte line of log area.
type LineState int

const (
	// LineEmpty is a line holding no entry (never written or invalidated;
	// reads as all-zero bytes at the validity markers).
	LineEmpty LineState = iota
	// LineValid is a whole entry whose integrity checks pass.
	LineValid
	// LineCorrupt is a line that claims to hold an entry but fails its
	// integrity check — a torn write or bit corruption. Recovery must
	// report it, never apply it.
	LineCorrupt
)

func (s LineState) String() string {
	switch s {
	case LineEmpty:
		return "empty"
	case LineValid:
		return "valid"
	case LineCorrupt:
		return "corrupt"
	}
	return "LineState(?)"
}

// Proteus entry layout within one 64-byte line.
const (
	ProteusEntrySize = isa.LineSize
	proteusDataOff   = 0  // 32 bytes of logged data
	proteusFromOff   = 32 // 8-byte log-from address
	proteusTxOff     = 40 // 4-byte transaction ID
	proteusFlagOff   = 44 // 1-byte flags
	proteusSeqOff    = 48 // 8-byte program-order sequence number
	proteusCRCOff    = 56 // 4-byte CRC32 over bytes [0, 56)
	// The sequence number materializes the §4.2 invariant that log-to
	// addresses are assigned in program order: recovery uses it to apply
	// entries newest-first so the earliest entry per address wins.
	// ProteusFlagLast marks the last entry of a transaction; its presence
	// in a durable entry means the transaction committed.
	ProteusFlagLast = 0x1
	// ProteusFlagValid is set on every entry so recovery can distinguish
	// entries from never-written log area.
	ProteusFlagValid = 0x2
)

// ProteusEntry is a decoded Proteus log entry.
type ProteusEntry struct {
	Data [isa.LogBlockSize]byte
	From uint64
	Tx   uint32
	Seq  uint64
	Last bool
}

// crcIEEE is a table-driven CRC-32 (IEEE), byte-identical to
// crc32.ChecksumIEEE. The stdlib checksum dispatches into assembly, which
// defeats escape analysis and forces every stack-built line image to the
// heap; this pure-Go loop keeps the encoders allocation-free.
func crcIEEE(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc32.IEEETable[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

func proteusCRC(line *[isa.LineSize]byte) uint32 {
	return crcIEEE(line[:proteusCRCOff])
}

// EncodeProteus writes the entry into a 64-byte line image.
func EncodeProteus(e ProteusEntry) [isa.LineSize]byte {
	var line [isa.LineSize]byte
	copy(line[proteusDataOff:], e.Data[:])
	binary.LittleEndian.PutUint64(line[proteusFromOff:], e.From)
	binary.LittleEndian.PutUint32(line[proteusTxOff:], e.Tx)
	binary.LittleEndian.PutUint64(line[proteusSeqOff:], e.Seq)
	flags := byte(ProteusFlagValid)
	if e.Last {
		flags |= ProteusFlagLast
	}
	line[proteusFlagOff] = flags
	binary.LittleEndian.PutUint32(line[proteusCRCOff:], proteusCRC(&line))
	return line
}

// DecodeProteusChecked parses a 64-byte line into an entry and its
// integrity state. A line without the valid flag that is not all-zero is
// reported corrupt: entries are only ever written whole, and invalidation
// writes zeros, so a nonzero invalid line is a torn write or bit damage.
func DecodeProteusChecked(line []byte) (ProteusEntry, LineState) {
	var e ProteusEntry
	if len(line) < isa.LineSize {
		return e, LineEmpty
	}
	if line[proteusFlagOff]&ProteusFlagValid == 0 {
		for _, b := range line[:isa.LineSize] {
			if b != 0 {
				return e, LineCorrupt
			}
		}
		return e, LineEmpty
	}
	var buf [isa.LineSize]byte
	copy(buf[:], line)
	if binary.LittleEndian.Uint32(line[proteusCRCOff:]) != proteusCRC(&buf) {
		return e, LineCorrupt
	}
	// The reserved tail after the CRC is never written; nonzero bytes
	// there are corruption the checksum cannot see.
	for _, b := range line[proteusCRCOff+4 : isa.LineSize] {
		if b != 0 {
			return e, LineCorrupt
		}
	}
	copy(e.Data[:], line[proteusDataOff:proteusDataOff+isa.LogBlockSize])
	e.From = binary.LittleEndian.Uint64(line[proteusFromOff:])
	e.Tx = binary.LittleEndian.Uint32(line[proteusTxOff:])
	e.Seq = binary.LittleEndian.Uint64(line[proteusSeqOff:])
	e.Last = line[proteusFlagOff]&ProteusFlagLast != 0
	return e, LineValid
}

// DecodeProteus parses a 64-byte line; ok is false when the line holds no
// whole valid entry.
func DecodeProteus(line []byte) (ProteusEntry, bool) {
	e, st := DecodeProteusChecked(line)
	return e, st == LineValid
}

// SetProteusLast sets the commit mark on an encoded entry in place and
// refreshes the integrity word.
func SetProteusLast(line *[isa.LineSize]byte) {
	line[proteusFlagOff] |= ProteusFlagLast
	binary.LittleEndian.PutUint32(line[proteusCRCOff:], proteusCRC(line))
}

// Two-line (meta + data) entry layout used by ATOM and software logging.
// The valid word packs the magic (low half) with a CRC32 of the remaining
// metadata words (high half); the length word packs the logged length (low
// half) with a CRC32 of the logged data (high half). Both checksums ride
// in words the formats already write, so software logging still stores
// exactly four meta words per entry.
const (
	PairEntrySize = 2 * isa.LineSize
	pairValidOff  = 0  // magic (low 32 bits) | meta CRC32 (high 32 bits)
	pairFromOff   = 8  // 8-byte log-from address
	pairTxOff     = 16 // 8-byte transaction ID
	pairLenOff    = 24 // logged length (low 32 bits) | data CRC32 (high)
	pairMetaEnd   = 32 // metadata bytes covered by the meta CRC: [8, 32)
	// PairValidMagic distinguishes a written entry from zeroed area.
	PairValidMagic = 0xA70A70A7
)

// PairEntry is a decoded two-line log entry.
type PairEntry struct {
	From    uint64
	Tx      uint64
	Len     uint64
	DataCRC uint32
	Data    [isa.LineSize]byte
}

// PairDataCRC computes the data-line checksum stored in the meta line.
func PairDataCRC(data []byte) uint32 { return crcIEEE(data) }

// EncodePairMeta builds the metadata line. The caller provides DataCRC
// over the Len bytes the data line will hold (PairDataCRC).
func EncodePairMeta(e PairEntry) [isa.LineSize]byte {
	var line [isa.LineSize]byte
	binary.LittleEndian.PutUint64(line[pairFromOff:], e.From)
	binary.LittleEndian.PutUint64(line[pairTxOff:], e.Tx)
	binary.LittleEndian.PutUint64(line[pairLenOff:], e.Len&0xFFFF_FFFF|uint64(e.DataCRC)<<32)
	meta := crcIEEE(line[pairFromOff:pairMetaEnd])
	binary.LittleEndian.PutUint64(line[pairValidOff:], PairValidMagic|uint64(meta)<<32)
	return line
}

// DecodePairMetaChecked parses a metadata line into an entry and its
// integrity state. As with Proteus lines, a nonzero line without the magic
// is corrupt, not empty.
func DecodePairMetaChecked(line []byte) (PairEntry, LineState) {
	var e PairEntry
	if len(line) < isa.LineSize {
		return e, LineEmpty
	}
	valid := binary.LittleEndian.Uint64(line[pairValidOff:])
	if uint32(valid) != PairValidMagic {
		for _, b := range line[:isa.LineSize] {
			if b != 0 {
				return e, LineCorrupt
			}
		}
		return e, LineEmpty
	}
	if uint32(valid>>32) != crcIEEE(line[pairFromOff:pairMetaEnd]) {
		return e, LineCorrupt
	}
	e.From = binary.LittleEndian.Uint64(line[pairFromOff:])
	e.Tx = binary.LittleEndian.Uint64(line[pairTxOff:])
	lw := binary.LittleEndian.Uint64(line[pairLenOff:])
	e.Len = lw & 0xFFFF_FFFF
	e.DataCRC = uint32(lw >> 32)
	return e, LineValid
}

// DecodePairMeta parses a metadata line; ok is false when the line holds
// no whole valid entry.
func DecodePairMeta(line []byte) (PairEntry, bool) {
	e, st := DecodePairMetaChecked(line)
	return e, st == LineValid
}

// LogFlagAddr returns the address of a thread's persistent logFlag word
// for the software-logging protocol (Figure 2). The word packs the
// in-flight transaction ID and its undo-entry count so both persist
// atomically (8-byte persist atomicity is the standard NVM assumption);
// zero means no transaction is in flight.
func LogFlagAddr(thread int) uint64 {
	base, _ := isa.HeapWindow(thread)
	return base
}

// PackLogFlag builds the logFlag word from a transaction ID and its entry
// count.
func PackLogFlag(tx uint32, entries int) uint64 {
	return uint64(tx)<<32 | uint64(uint32(entries))
}

// UnpackLogFlag splits a logFlag word.
func UnpackLogFlag(w uint64) (tx uint32, entries int) {
	return uint32(w >> 32), int(uint32(w))
}

// SWLogBase returns where software logging places its first entry in the
// thread's log area (entries are rewritten from the base each
// transaction).
func SWLogBase(thread int) uint64 {
	base, _ := isa.LogWindow(thread)
	return base
}
