// Package logfmt defines the on-NVM undo-log entry encodings shared by
// the timing layer (which creates entries), the code generators (software
// logging writes entries with plain stores), and recovery (which parses
// crash images).
//
// Three formats exist:
//
//   - Proteus entries (§4.1): one 64-byte line holding 32 bytes of data
//     plus metadata (log-from address, transaction ID, flags). The commit
//     mark lives in the flags of a transaction's last entry (§4.3).
//   - ATOM entries: a 64-byte metadata line (valid word, log-from address,
//     transaction ID) followed by a 64-byte data line. Truncation zeroes
//     the metadata line.
//   - Software (PMEM) entries: the same two-line layout as ATOM, written
//     by plain stores; validity is governed by the per-thread logFlag
//     protocol of Figure 2 rather than per-entry valid words.
package logfmt

import (
	"encoding/binary"

	"repro/internal/isa"
)

// Proteus entry layout within one 64-byte line.
const (
	ProteusEntrySize = isa.LineSize
	proteusDataOff   = 0  // 32 bytes of logged data
	proteusFromOff   = 32 // 8-byte log-from address
	proteusTxOff     = 40 // 4-byte transaction ID
	proteusFlagOff   = 44 // 1-byte flags
	proteusSeqOff    = 48 // 8-byte program-order sequence number
	// The sequence number materializes the §4.2 invariant that log-to
	// addresses are assigned in program order: recovery uses it to apply
	// entries newest-first so the earliest entry per address wins.
	// ProteusFlagLast marks the last entry of a transaction; its presence
	// in a durable entry means the transaction committed.
	ProteusFlagLast = 0x1
	// ProteusFlagValid is set on every entry so recovery can distinguish
	// entries from never-written log area.
	ProteusFlagValid = 0x2
)

// ProteusEntry is a decoded Proteus log entry.
type ProteusEntry struct {
	Data [isa.LogBlockSize]byte
	From uint64
	Tx   uint32
	Seq  uint64
	Last bool
}

// EncodeProteus writes the entry into a 64-byte line image.
func EncodeProteus(e ProteusEntry) [isa.LineSize]byte {
	var line [isa.LineSize]byte
	copy(line[proteusDataOff:], e.Data[:])
	binary.LittleEndian.PutUint64(line[proteusFromOff:], e.From)
	binary.LittleEndian.PutUint32(line[proteusTxOff:], e.Tx)
	binary.LittleEndian.PutUint64(line[proteusSeqOff:], e.Seq)
	flags := byte(ProteusFlagValid)
	if e.Last {
		flags |= ProteusFlagLast
	}
	line[proteusFlagOff] = flags
	return line
}

// DecodeProteus parses a 64-byte line; ok is false when the line holds no
// valid entry.
func DecodeProteus(line []byte) (ProteusEntry, bool) {
	var e ProteusEntry
	if len(line) < isa.LineSize || line[proteusFlagOff]&ProteusFlagValid == 0 {
		return e, false
	}
	copy(e.Data[:], line[proteusDataOff:proteusDataOff+isa.LogBlockSize])
	e.From = binary.LittleEndian.Uint64(line[proteusFromOff:])
	e.Tx = binary.LittleEndian.Uint32(line[proteusTxOff:])
	e.Seq = binary.LittleEndian.Uint64(line[proteusSeqOff:])
	e.Last = line[proteusFlagOff]&ProteusFlagLast != 0
	return e, true
}

// SetProteusLast sets the commit mark on an encoded entry in place.
func SetProteusLast(line *[isa.LineSize]byte) {
	line[proteusFlagOff] |= ProteusFlagLast
}

// Two-line (meta + data) entry layout used by ATOM and software logging.
const (
	PairEntrySize = 2 * isa.LineSize
	pairValidOff  = 0  // 8-byte valid word (nonzero = valid)
	pairFromOff   = 8  // 8-byte log-from address
	pairTxOff     = 16 // 8-byte transaction ID
	pairLenOff    = 24 // 8-byte logged length (<= 64)
	// PairValidMagic distinguishes a written entry from zeroed area.
	PairValidMagic = 0xA70A70A7
)

// PairEntry is a decoded two-line log entry.
type PairEntry struct {
	From uint64
	Tx   uint64
	Len  uint64
	Data [isa.LineSize]byte
}

// EncodePairMeta builds the metadata line.
func EncodePairMeta(e PairEntry) [isa.LineSize]byte {
	var line [isa.LineSize]byte
	binary.LittleEndian.PutUint64(line[pairValidOff:], PairValidMagic)
	binary.LittleEndian.PutUint64(line[pairFromOff:], e.From)
	binary.LittleEndian.PutUint64(line[pairTxOff:], e.Tx)
	binary.LittleEndian.PutUint64(line[pairLenOff:], e.Len)
	return line
}

// DecodePairMeta parses a metadata line; ok is false when invalid.
func DecodePairMeta(line []byte) (PairEntry, bool) {
	var e PairEntry
	if len(line) < isa.LineSize || binary.LittleEndian.Uint64(line[pairValidOff:]) != PairValidMagic {
		return e, false
	}
	e.From = binary.LittleEndian.Uint64(line[pairFromOff:])
	e.Tx = binary.LittleEndian.Uint64(line[pairTxOff:])
	e.Len = binary.LittleEndian.Uint64(line[pairLenOff:])
	return e, true
}

// LogFlagAddr returns the address of a thread's persistent logFlag word
// for the software-logging protocol (Figure 2). The word packs the
// in-flight transaction ID and its undo-entry count so both persist
// atomically (8-byte persist atomicity is the standard NVM assumption);
// zero means no transaction is in flight.
func LogFlagAddr(thread int) uint64 {
	base, _ := isa.HeapWindow(thread)
	return base
}

// PackLogFlag builds the logFlag word from a transaction ID and its entry
// count.
func PackLogFlag(tx uint32, entries int) uint64 {
	return uint64(tx)<<32 | uint64(uint32(entries))
}

// UnpackLogFlag splits a logFlag word.
func UnpackLogFlag(w uint64) (tx uint32, entries int) {
	return uint32(w >> 32), int(uint32(w))
}

// SWLogBase returns where software logging places its first entry in the
// thread's log area (entries are rewritten from the base each
// transaction).
func SWLogBase(thread int) uint64 {
	base, _ := isa.LogWindow(thread)
	return base
}
