package logfmt

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestProteusRoundtrip(t *testing.T) {
	prop := func(data [isa.LogBlockSize]byte, from uint64, tx uint32, seq uint64, last bool) bool {
		e := ProteusEntry{Data: data, From: from, Tx: tx, Seq: seq, Last: last}
		line := EncodeProteus(e)
		d, ok := DecodeProteus(line[:])
		return ok && d == e
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProteusInvalidLine(t *testing.T) {
	var zero [isa.LineSize]byte
	if _, ok := DecodeProteus(zero[:]); ok {
		t.Fatal("zero line decoded as valid entry")
	}
	if _, ok := DecodeProteus(nil); ok {
		t.Fatal("nil decoded as valid entry")
	}
}

func TestSetProteusLast(t *testing.T) {
	line := EncodeProteus(ProteusEntry{From: 0x40, Tx: 3})
	SetProteusLast(&line)
	e, ok := DecodeProteus(line[:])
	if !ok || !e.Last {
		t.Fatalf("mark not set: ok=%v last=%v", ok, e.Last)
	}
}

func TestPairRoundtrip(t *testing.T) {
	prop := func(from, tx uint64, ln uint8) bool {
		e := PairEntry{From: from, Tx: tx, Len: uint64(ln)}
		line := EncodePairMeta(e)
		d, ok := DecodePairMeta(line[:])
		return ok && d.From == from && d.Tx == tx && d.Len == uint64(ln)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairInvalid(t *testing.T) {
	var zero [isa.LineSize]byte
	if _, ok := DecodePairMeta(zero[:]); ok {
		t.Fatal("zero meta decoded as valid")
	}
}

func TestLogFlagPacking(t *testing.T) {
	prop := func(tx uint32, n uint16) bool {
		w := PackLogFlag(tx, int(n))
		gt, gn := UnpackLogFlag(w)
		return gt == tx && gn == int(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if PackLogFlag(0, 0) != 0 {
		t.Fatal("empty flag must be zero (the no-transaction state)")
	}
}

func TestRegionHelpers(t *testing.T) {
	for thread := 0; thread < 4; thread++ {
		if !isa.IsPersistentAddr(LogFlagAddr(thread)) {
			t.Fatalf("logFlag of %d not persistent", thread)
		}
		if !isa.IsLogAddr(SWLogBase(thread)) {
			t.Fatalf("sw log base of %d not in log region", thread)
		}
	}
}
