package logfmt

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestProteusRoundtrip(t *testing.T) {
	prop := func(data [isa.LogBlockSize]byte, from uint64, tx uint32, seq uint64, last bool) bool {
		e := ProteusEntry{Data: data, From: from, Tx: tx, Seq: seq, Last: last}
		line := EncodeProteus(e)
		d, ok := DecodeProteus(line[:])
		return ok && d == e
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProteusInvalidLine(t *testing.T) {
	var zero [isa.LineSize]byte
	if _, ok := DecodeProteus(zero[:]); ok {
		t.Fatal("zero line decoded as valid entry")
	}
	if _, st := DecodeProteusChecked(zero[:]); st != LineEmpty {
		t.Fatalf("zero line state = %v, want empty", st)
	}
	if _, ok := DecodeProteus(nil); ok {
		t.Fatal("nil decoded as valid entry")
	}
}

// TestProteusIntegrity: any torn prefix or single flipped bit of a whole
// entry must decode as corrupt — never as a different valid entry, and
// never as empty unless the result is all-zero.
func TestProteusIntegrity(t *testing.T) {
	var data [isa.LogBlockSize]byte
	for i := range data {
		data[i] = byte(i + 1)
	}
	line := EncodeProteus(ProteusEntry{Data: data, From: 0x1_0000_0040, Tx: 7, Seq: 9})
	for words := 0; words < 8; words++ {
		torn := [isa.LineSize]byte{}
		copy(torn[:], line[:words*8])
		_, st := DecodeProteusChecked(torn[:])
		if words == 0 {
			if st != LineEmpty {
				t.Fatalf("empty tear state = %v", st)
			}
			continue
		}
		if st != LineCorrupt {
			t.Fatalf("torn at %d words: state = %v, want corrupt", words, st)
		}
	}
	for bit := 0; bit < isa.LineSize*8; bit++ {
		flipped := line
		flipped[bit/8] ^= 1 << (bit % 8)
		if _, st := DecodeProteusChecked(flipped[:]); st == LineValid {
			t.Fatalf("bit flip at %d still decodes as valid", bit)
		}
	}
}

func TestSetProteusLast(t *testing.T) {
	line := EncodeProteus(ProteusEntry{From: 0x40, Tx: 3})
	SetProteusLast(&line)
	e, ok := DecodeProteus(line[:])
	if !ok || !e.Last {
		t.Fatalf("mark not set: ok=%v last=%v", ok, e.Last)
	}
}

func TestPairRoundtrip(t *testing.T) {
	prop := func(from, tx uint64, ln uint8, crc uint32) bool {
		e := PairEntry{From: from, Tx: tx, Len: uint64(ln), DataCRC: crc}
		line := EncodePairMeta(e)
		d, ok := DecodePairMeta(line[:])
		return ok && d.From == from && d.Tx == tx && d.Len == uint64(ln) && d.DataCRC == crc
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairInvalid(t *testing.T) {
	var zero [isa.LineSize]byte
	if _, ok := DecodePairMeta(zero[:]); ok {
		t.Fatal("zero meta decoded as valid")
	}
	if _, st := DecodePairMetaChecked(zero[:]); st != LineEmpty {
		t.Fatalf("zero meta state = %v, want empty", st)
	}
}

// TestPairIntegrity mirrors TestProteusIntegrity for the two-line format.
func TestPairIntegrity(t *testing.T) {
	var data [isa.LineSize]byte
	for i := range data {
		data[i] = byte(i * 7)
	}
	line := EncodePairMeta(PairEntry{From: 0x1_0000_0080, Tx: 5, Len: isa.LineSize, DataCRC: PairDataCRC(data[:])})
	for words := 1; words < 4; words++ {
		torn := [isa.LineSize]byte{}
		copy(torn[:], line[:words*8])
		if _, st := DecodePairMetaChecked(torn[:]); st != LineCorrupt {
			t.Fatalf("torn meta at %d words: state = %v, want corrupt", words, st)
		}
	}
	for bit := 0; bit < pairMetaEnd*8; bit++ {
		flipped := line
		flipped[bit/8] ^= 1 << (bit % 8)
		if _, st := DecodePairMetaChecked(flipped[:]); st == LineValid {
			t.Fatalf("meta bit flip at %d still decodes as valid", bit)
		}
	}
	// Data corruption is caught through the DataCRC carried in the meta.
	flipped := data
	flipped[13] ^= 0x10
	if PairDataCRC(flipped[:]) == PairDataCRC(data[:]) {
		t.Fatal("data CRC did not change under a bit flip")
	}
}

func TestLogFlagPacking(t *testing.T) {
	prop := func(tx uint32, n uint16) bool {
		w := PackLogFlag(tx, int(n))
		gt, gn := UnpackLogFlag(w)
		return gt == tx && gn == int(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if PackLogFlag(0, 0) != 0 {
		t.Fatal("empty flag must be zero (the no-transaction state)")
	}
}

func TestRegionHelpers(t *testing.T) {
	for thread := 0; thread < 4; thread++ {
		if !isa.IsPersistentAddr(LogFlagAddr(thread)) {
			t.Fatalf("logFlag of %d not persistent", thread)
		}
		if !isa.IsLogAddr(SWLogBase(thread)) {
			t.Fatalf("sw log base of %d not in log region", thread)
		}
	}
}
