// Package logging turns recorded workload transactions into per-scheme
// micro-op traces:
//
//   - PMEM: software undo logging with clwb/sfence exactly following
//     Figure 2's four steps (log + persist, set logFlag, update data +
//     persist, clear logFlag), optionally with pcommit after every sfence
//     (the PMEM+pcommit baseline).
//   - PMEM+nolog: data updates and their persists only (the ideal case).
//   - ATOM: plain transactional stores — logging happens in hardware.
//   - Proteus: every store expanded into log-load, log-flush, store
//     (Figure 4); the LLT filters repeats at run time.
package logging

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
	"repro/internal/workload"
)

// Generate expands every thread's recorded transactions into a trace for
// the given scheme, using the default options (the paper's configuration:
// durable-transaction persistency, dynamic LLT filtering).
func Generate(w *workload.Workload, scheme core.Scheme, cfg config.Config) ([]*isa.Trace, error) {
	return GenerateOpts(w, scheme, cfg, Options{})
}

// gen carries per-thread generation state.
type gen struct {
	tr      *isa.Trace
	alu     uint64
	aluTxn  uint64
	scheme  core.Scheme
	opts    Options
	thread  int
	img     *nvm.Store        // functional image after initialization
	overlay map[uint64]uint64 // word-level committed state on top of img
	swLog   uint64            // software log area base
	logFlag uint64
}

func generateThreadOpts(h *heap.Heap, scheme core.Scheme, cfg config.Config, img *nvm.Store, opts Options) (*isa.Trace, error) {
	g := &gen{
		tr:      &isa.Trace{},
		alu:     uint64(cfg.Core.AluPerMem),
		aluTxn:  uint64(cfg.Core.AluPerTxn),
		scheme:  scheme,
		opts:    opts,
		thread:  h.Thread(),
		img:     img,
		overlay: make(map[uint64]uint64),
		swLog:   logfmt.SWLogBase(h.Thread()),
		logFlag: logfmt.LogFlagAddr(h.Thread()),
	}
	for _, txn := range h.Txns {
		if err := g.emitTxn(txn); err != nil {
			return nil, err
		}
		// The transaction is committed; fold its writes into the
		// committed state used for later pre-images.
		for a, v := range txn.Post {
			g.overlay[a] = v
		}
	}
	return g.tr, nil
}

// preWord returns the committed (pre-transaction) value of a word.
func (g *gen) preWord(addr uint64) uint64 {
	if v, ok := g.overlay[addr]; ok {
		return v
	}
	return g.img.ReadUint64(addr)
}

// preWordIn returns the pre-image of a word inside the current
// transaction, preferring the transaction's own recorded pre-image (the
// word may have been written).
func preWordIn(t *heap.Txn, g *gen, addr uint64) uint64 {
	if v, ok := t.Pre[addr]; ok {
		return v
	}
	return g.preWord(addr)
}

func (g *gen) op(o isa.Op) { g.tr.Append(o) }

func (g *gen) aluPad() {
	if g.alu > 0 {
		g.op(isa.Op{Kind: isa.Alu, Val: g.alu})
	}
}

func (g *gen) load(tx uint32, addr uint64) {
	g.aluPad()
	g.op(isa.Op{Kind: isa.Ld, Size: 8, Tx: tx, Addr: addr})
}

func (g *gen) store(tx uint32, addr, val uint64) {
	g.aluPad()
	g.op(isa.Op{Kind: isa.St, Size: 8, Tx: tx, Addr: addr, Val: val})
}

// storeRaw emits a store without ALU padding (log-copy loops).
func (g *gen) storeRaw(tx uint32, addr, val uint64) {
	g.op(isa.Op{Kind: isa.St, Size: 8, Tx: tx, Addr: addr, Val: val})
}

func (g *gen) clwb(addr uint64) { g.op(isa.Op{Kind: isa.Clwb, Addr: addr}) }

func (g *gen) sfence() {
	g.op(isa.Op{Kind: isa.Sfence})
	if g.scheme == core.PMEMPcommit {
		g.op(isa.Op{Kind: isa.Pcommit})
	}
}

func (g *gen) emitTxn(t *heap.Txn) error {
	// Fixed per-operation harness work (input parsing, call overhead),
	// identical across schemes.
	if g.aluTxn > 0 {
		g.op(isa.Op{Kind: isa.Alu, Val: g.aluTxn})
	}
	g.op(isa.Op{Kind: isa.LockAcq, Size: 8, Addr: t.Lock})
	switch g.scheme {
	case core.PMEM, core.PMEMPcommit:
		g.emitSWLogging(t)
	case core.PMEMNoLog:
		g.emitNoLog(t)
	case core.ATOM:
		g.emitHW(t)
	case core.Proteus, core.ProteusNoLWR:
		g.emitProteus(t)
	default:
		return fmt.Errorf("unknown scheme %v", g.scheme)
	}
	g.op(isa.Op{Kind: isa.LockRel, Size: 8, Addr: t.Lock})
	return nil
}

// hintLines returns the deduplicated 64-byte lines of the transaction's
// conservative undo set, in first-declaration order.
func hintLines(t *heap.Txn) []uint64 {
	seen := make(map[uint64]struct{})
	var lines []uint64
	for _, r := range t.Hints {
		for a := isa.LineAddr(r.Addr); a < r.Addr+uint64(r.Size); a += isa.LineSize {
			if _, ok := seen[a]; !ok {
				seen[a] = struct{}{}
				lines = append(lines, a)
			}
		}
	}
	return lines
}

// emitSWLogging generates Figure 2's fail-safe undo logging.
func (g *gen) emitSWLogging(t *heap.Txn) {
	tx := t.ID
	g.op(isa.Op{Kind: isa.TxBegin, Tx: tx})

	// Step 1: create and persist the undo log. One two-line entry per
	// conservatively-hinted 64-byte line: read the original data, store
	// the metadata and data words, flush both lines.
	lines := hintLines(t)
	for i, line := range lines {
		// The pre-image words double as the entry's data checksum input,
		// so compute them before emitting any ops (the op sequence —
		// 8 loads, 4 meta stores, 8 data stores — is unchanged).
		var pre [8]uint64
		var preBytes [isa.LineSize]byte
		for w := 0; w < 8; w++ {
			pre[w] = preWordIn(t, g, line+uint64(w*8))
			putWord(preBytes[w*8:], pre[w])
		}
		meta := logfmt.EncodePairMeta(logfmt.PairEntry{
			From: line, Tx: uint64(tx), Len: isa.LineSize,
			DataCRC: logfmt.PairDataCRC(preBytes[:]),
		})
		metaAddr := g.swLog + uint64(i)*logfmt.PairEntrySize
		dataAddr := metaAddr + isa.LineSize
		// Read the original line (8 words) and write it to the log.
		for w := 0; w < 8; w++ {
			g.load(tx, line+uint64(w*8))
		}
		for w := 0; w < 4; w++ {
			g.storeRaw(tx, metaAddr+uint64(w*8), wordOf(meta[:], w))
		}
		for w := 0; w < 8; w++ {
			g.storeRaw(tx, dataAddr+uint64(w*8), pre[w])
		}
		g.clwb(metaAddr)
		g.clwb(dataAddr)
		if g.opts.Model == ModelStrict {
			g.sfence()
		}
	}
	g.sfence()

	// Step 2: set the logFlag and persist. The transaction ID and entry
	// count share one 8-byte word so they persist atomically.
	g.store(tx, g.logFlag, logfmt.PackLogFlag(tx, len(lines)))
	g.clwb(g.logFlag)
	g.sfence()

	// Step 3: the data updates, then persist every written line (under
	// strict persistency each store already persisted individually).
	g.emitBody(t)
	if g.opts.Model != ModelStrict {
		for _, line := range t.WriteLines() {
			g.clwb(line)
		}
	}
	g.sfence()

	// Step 4: clear the logFlag and persist.
	g.store(tx, g.logFlag, 0)
	g.clwb(g.logFlag)
	g.sfence()

	g.op(isa.Op{Kind: isa.TxEnd, Tx: tx})
}

// emitNoLog generates the ideal case: data updates and their persists,
// with no logging at all (not failure safe).
func (g *gen) emitNoLog(t *heap.Txn) {
	g.op(isa.Op{Kind: isa.TxBegin, Tx: t.ID})
	g.emitBody(t)
	for _, line := range t.WriteLines() {
		g.clwb(line)
	}
	g.sfence()
	g.op(isa.Op{Kind: isa.TxEnd, Tx: t.ID})
}

// emitHW generates the ATOM form: plain transactional loads and stores;
// the hardware logs and makes the transaction durable at tx-end.
func (g *gen) emitHW(t *heap.Txn) {
	g.op(isa.Op{Kind: isa.TxBegin, Tx: t.ID})
	g.emitBody(t)
	g.op(isa.Op{Kind: isa.TxEnd, Tx: t.ID})
}

// emitProteus generates the Figure 4 expansion: each store becomes
// log-load, log-flush, store. The LLT filters duplicates dynamically —
// unless StaticLogElim emulates a perfect-alias-knowledge compiler that
// never emits the duplicate pairs in the first place (§4.2).
func (g *gen) emitProteus(t *heap.Txn) {
	tx := t.ID
	g.op(isa.Op{Kind: isa.TxBegin, Tx: tx})
	var logged map[uint64]struct{}
	if g.opts.StaticLogElim {
		logged = make(map[uint64]struct{})
	}
	for _, a := range t.Ops {
		switch a.Kind {
		case heap.Load:
			g.load(tx, a.Addr)
		case heap.Store:
			block := isa.LogBlockAddr(a.Addr)
			emit := true
			if logged != nil {
				if _, seen := logged[block]; seen {
					emit = false
				} else {
					logged[block] = struct{}{}
				}
			}
			if emit {
				g.op(isa.Op{Kind: isa.LogLoad, Size: isa.LogBlockSize, Tx: tx, Addr: block})
				g.op(isa.Op{Kind: isa.LogFlush, Size: isa.LogBlockSize, Tx: tx, Addr: block})
			}
			g.store(tx, a.Addr, a.Val)
		}
	}
	g.op(isa.Op{Kind: isa.TxEnd, Tx: tx})
}

// emitBody replays the transaction's recorded accesses. Under strict
// persistency every persistent store is individually persisted before the
// next instruction (§2.1's first column).
func (g *gen) emitBody(t *heap.Txn) {
	strict := g.opts.Model == ModelStrict &&
		(g.scheme == core.PMEM || g.scheme == core.PMEMPcommit)
	for _, a := range t.Ops {
		switch a.Kind {
		case heap.Load:
			g.load(t.ID, a.Addr)
		case heap.Store:
			g.store(t.ID, a.Addr, a.Val)
			if strict && isa.IsPersistentAddr(a.Addr) {
				g.clwb(a.Addr)
				g.sfence()
			}
		}
	}
}

// wordOf extracts little-endian word w from a byte slice.
func wordOf(b []byte, w int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[w*8+i])
	}
	return v
}

// putWord stores a little-endian word into a byte slice.
func putWord(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
