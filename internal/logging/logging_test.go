package logging

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/recovery"
	"repro/internal/workload"
)

func buildSmall(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.Build(workload.Queue, workload.Params{Threads: 2, InitOps: 32, SimOps: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func genTraces(t *testing.T, w *workload.Workload, s core.Scheme) []*isa.Trace {
	t.Helper()
	traces, err := Generate(w, s, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// TestSchemeComposition checks the structural properties of each scheme's
// expansion.
func TestSchemeComposition(t *testing.T) {
	w := buildSmall(t)

	sw := genTraces(t, w, core.PMEM)[0].Summarize()
	if sw.Sfences != 4*16 {
		t.Errorf("PMEM sfences per thread = %d, want %d (4 per txn)", sw.Sfences, 4*16)
	}
	if sw.Pcommits != 0 {
		t.Errorf("PMEM has pcommits")
	}
	if sw.LogLoads != 0 || sw.LogFlushes != 0 {
		t.Errorf("PMEM has hardware log ops")
	}
	if sw.Clwbs == 0 {
		t.Errorf("PMEM has no clwbs")
	}

	pc := genTraces(t, w, core.PMEMPcommit)[0].Summarize()
	if pc.Pcommits != pc.Sfences {
		t.Errorf("PMEM+pcommit: %d pcommits for %d sfences", pc.Pcommits, pc.Sfences)
	}

	nl := genTraces(t, w, core.PMEMNoLog)[0].Summarize()
	if nl.Sfences != 16 {
		t.Errorf("nolog sfences = %d, want 1 per txn", nl.Sfences)
	}
	if nl.Stores >= sw.Stores {
		t.Errorf("nolog stores (%d) not fewer than PMEM (%d)", nl.Stores, sw.Stores)
	}

	hw := genTraces(t, w, core.ATOM)[0].Summarize()
	if hw.Clwbs != 0 || hw.Sfences != 0 {
		t.Errorf("ATOM trace has explicit persist ops")
	}

	pr := genTraces(t, w, core.Proteus)[0].Summarize()
	if pr.LogLoads != pr.LogFlushes {
		t.Errorf("Proteus log-loads %d != log-flushes %d", pr.LogLoads, pr.LogFlushes)
	}
	if pr.LogLoads != pr.Stores {
		t.Errorf("Proteus: %d log pairs for %d stores (Figure 4: one pair per store)", pr.LogLoads, pr.Stores)
	}
	if pr.TxBegins != 16 || pr.TxEnds != 16 {
		t.Errorf("Proteus tx markers: %d/%d", pr.TxBegins, pr.TxEnds)
	}
}

// TestProteusExpansionOrder verifies the Figure 4 instruction order:
// log-load, log-flush, then the store, with matching addresses.
func TestProteusExpansionOrder(t *testing.T) {
	w := buildSmall(t)
	tr := genTraces(t, w, core.Proteus)[0]
	for i, op := range tr.Ops {
		if op.Kind == isa.St && isa.IsPersistentAddr(op.Addr) && op.Tx != 0 {
			// Find the preceding log-flush / log-load pair.
			j := i - 1
			for j >= 0 && tr.Ops[j].Kind == isa.Alu {
				j--
			}
			if j < 1 || tr.Ops[j].Kind != isa.LogFlush || tr.Ops[j-1].Kind != isa.LogLoad {
				t.Fatalf("op %d: store not preceded by log-load/log-flush (%v, %v)", i, tr.Ops[j-1].Kind, tr.Ops[j].Kind)
			}
			if tr.Ops[j].Addr != isa.LogBlockAddr(op.Addr) {
				t.Fatalf("op %d: log-from %#x does not cover store %#x", i, tr.Ops[j].Addr, op.Addr)
			}
		}
	}
}

// TestSWLogPrecedesData verifies Figure 2's step ordering per transaction:
// every store to the log area precedes every data store, separated by
// sfences.
func TestSWLogPrecedesData(t *testing.T) {
	w := buildSmall(t)
	tr := genTraces(t, w, core.PMEM)[0]
	inTx := false
	seenFence := 0
	for i, op := range tr.Ops {
		switch op.Kind {
		case isa.TxBegin:
			inTx = true
			seenFence = 0
		case isa.TxEnd:
			if seenFence != 4 {
				t.Fatalf("op %d: txn ended after %d sfences, want 4", i, seenFence)
			}
			inTx = false
		case isa.Sfence:
			if inTx {
				seenFence++
			}
		case isa.St:
			if !inTx {
				break
			}
			if isa.IsLogAddr(op.Addr) && seenFence > 0 {
				t.Fatalf("op %d: log store after fence %d", i, seenFence)
			}
			if isa.IsPersistentAddr(op.Addr) && !isa.IsLogAddr(op.Addr) && op.Addr != tr.Ops[0].Addr {
				// Data stores belong to steps 2-4 (after the first fence).
				if seenFence == 0 {
					// the logFlag line is persistent heap; data stores
					// proper come after fence 2 — but the flag store is
					// after fence 1. Either way, nothing before fence 1.
					t.Fatalf("op %d: data store before the log persisted", i)
				}
			}
		}
	}
}

// TestDeterminism: the same workload and scheme generate identical traces.
func TestDeterminism(t *testing.T) {
	w1 := buildSmall(t)
	w2 := buildSmall(t)
	t1 := genTraces(t, w1, core.Proteus)
	t2 := genTraces(t, w2, core.Proteus)
	if len(t1) != len(t2) {
		t.Fatal("trace count differs")
	}
	for i := range t1 {
		if len(t1[i].Ops) != len(t2[i].Ops) {
			t.Fatalf("thread %d: op count differs", i)
		}
		for j := range t1[i].Ops {
			if t1[i].Ops[j] != t2[i].Ops[j] {
				t.Fatalf("thread %d op %d differs: %v vs %v", i, j, t1[i].Ops[j], t2[i].Ops[j])
			}
		}
	}
}

// TestStrictPersistencyComposition: strict mode fences after every
// persistent store; the durable-tx model keeps Figure 2's four fences.
func TestStrictPersistencyComposition(t *testing.T) {
	w := buildSmall(t)
	cfg := config.Default()
	strict, err := GenerateOpts(w, core.PMEM, cfg, Options{Model: ModelStrict})
	if err != nil {
		t.Fatal(err)
	}
	normal, err := GenerateOpts(w, core.PMEM, cfg, Options{Model: ModelDurableTx})
	if err != nil {
		t.Fatal(err)
	}
	ss, ns := strict[0].Summarize(), normal[0].Summarize()
	if ss.Sfences <= ns.Sfences {
		t.Fatalf("strict fences (%d) not above durable-tx fences (%d)", ss.Sfences, ns.Sfences)
	}
	if ss.Stores != ns.Stores {
		t.Fatalf("models changed store count: %d vs %d", ss.Stores, ns.Stores)
	}
	// Epoch coincides with durable-tx for these workloads.
	epoch, err := GenerateOpts(w, core.PMEM, cfg, Options{Model: ModelEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if es := epoch[0].Summarize(); es.Sfences != ns.Sfences || es.Stores != ns.Stores {
		t.Fatalf("epoch differs from durable-tx: %+v vs %+v", es, ns)
	}
}

// TestStaticLogElimination: the compiler pass emits at most one log pair
// per 32-byte block per transaction and never more pairs than the plain
// expansion.
func TestStaticLogElimination(t *testing.T) {
	w := buildSmall(t)
	cfg := config.Default()
	static, err := GenerateOpts(w, core.Proteus, cfg, Options{StaticLogElim: true})
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := GenerateOpts(w, core.Proteus, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, dy := static[0].Summarize(), dynamic[0].Summarize()
	if st.LogFlushes >= dy.LogFlushes {
		t.Fatalf("static elimination removed nothing: %d vs %d", st.LogFlushes, dy.LogFlushes)
	}
	if st.Stores != dy.Stores {
		t.Fatalf("store counts differ: %d vs %d", st.Stores, dy.Stores)
	}
	// Per transaction, no block is logged twice.
	seen := make(map[uint64]bool)
	for _, op := range static[0].Ops {
		switch op.Kind {
		case isa.TxBegin:
			seen = make(map[uint64]bool)
		case isa.LogFlush:
			if seen[op.Addr] {
				t.Fatalf("block %#x logged twice in one txn", op.Addr)
			}
			seen[op.Addr] = true
		}
	}
}

// TestStaticElimRecoveryStillSound: static elimination must not break
// crash recovery (the single emitted pair carries the true pre-image).
func TestStaticElimRecoveryStillSound(t *testing.T) {
	w := buildSmall(t)
	cfg := config.Default()
	cfg.Cores = 2
	traces, err := GenerateOpts(w, core.Proteus, cfg, Options{StaticLogElim: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	oracle := recovery.NewOracle(w)
	for !sys.Finished() {
		sys.Step(499)
		img := sys.CrashImage()
		if _, err := recovery.Recover(img, core.Proteus, cfg.Cores); err != nil {
			t.Fatalf("cycle %d: %v", sys.Cycle(), err)
		}
		counts := make([]int, cfg.Cores)
		for i, cs := range sys.Commits() {
			counts[i] = len(cs)
		}
		if _, err := oracle.VerifyPrefix(img, counts); err != nil {
			t.Fatalf("cycle %d: %v", sys.Cycle(), err)
		}
	}
}
