package logging

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// PersistencyModel selects how the software schemes order persists
// (§2.1's taxonomy). It only affects the PMEM-based schemes; the hardware
// schemes order persists in hardware.
type PersistencyModel int

const (
	// ModelDurableTx is the paper's baseline: the four Figure 2 steps,
	// each closed by clwb(s) and one sfence — an epoch per step.
	ModelDurableTx PersistencyModel = iota
	// ModelStrict implements strict persistency: every persistent store
	// is followed by clwb + sfence, serializing all persists in program
	// order (§2.1: "significant performance costs of not allowing write
	// reordering and write coalescing").
	ModelStrict
	// ModelEpoch implements epoch persistency with one epoch per
	// transaction step but clwbs issued as stores complete — identical
	// step boundaries to ModelDurableTx with per-line flushes batched at
	// the epoch end. (For the modeled workloads this coincides with
	// ModelDurableTx; it exists so the taxonomy is complete and the
	// equivalence is checkable.)
	ModelEpoch
)

func (m PersistencyModel) String() string {
	switch m {
	case ModelDurableTx:
		return "durable-tx"
	case ModelStrict:
		return "strict"
	case ModelEpoch:
		return "epoch"
	}
	return fmt.Sprintf("PersistencyModel(%d)", int(m))
}

// Options tunes code generation.
type Options struct {
	// Model selects the persistency model for software schemes.
	Model PersistencyModel
	// StaticLogElim enables the compiler-side alternative to the LLT
	// (§4.2: "eliminating unnecessary logging can be achieved through
	// compiler analysis"): log-load/log-flush pairs whose 32-byte block
	// was already logged earlier in the same transaction are not emitted
	// at all. It represents a perfect-alias-knowledge compiler; the
	// hardware LLT achieves the same filtering dynamically.
	StaticLogElim bool
}

// GenerateOpts is Generate with explicit options.
func GenerateOpts(w *workload.Workload, scheme core.Scheme, cfg config.Config, opts Options) ([]*isa.Trace, error) {
	traces := make([]*isa.Trace, len(w.Heaps))
	for t, h := range w.Heaps {
		tr, err := generateThreadOpts(h, scheme, cfg, w.InitImage, opts)
		if err != nil {
			return nil, fmt.Errorf("logging: thread %d: %w", t, err)
		}
		tr.Thread = t
		traces[t] = tr
	}
	return traces, nil
}
