// Package memctrl models the memory controller: the read queue, the write
// pending queue (WPQ), and — for Proteus — the log pending queue (LPQ) of
// §4.3. With ADR, the WPQ and LPQ are inside the persistency domain:
// writes are durable on acceptance, which both lets log flushes complete
// early and enables Proteus's log write removal (log entries that are
// still in the LPQ when their transaction ends are flash-cleared and never
// written to NVMM).
package memctrl

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
	"repro/internal/stats"
)

// wpqEntry is one pending line write.
type wpqEntry struct {
	seq     uint64
	issueAt uint64
	addr    uint64 // line-aligned
	data    [isa.LineSize]byte
	cause   stats.WriteCause
	arrived uint64
	issued  bool
	doneAt  uint64
	// log bookkeeping for ATOM truncation: a log-creation write that is
	// cancelled before draining costs no NVM write.
	atomTx   uint32
	atomCore int
}

// LogEntry is one Proteus log-flush as it exists in the LPQ: the full
// 64-byte log line (32B data + metadata) plus the routing information the
// flash-clear needs (§4.3: "The LPQ contains log entries, where each entry
// contains the transaction ID, core ID, and various information about the
// log").
type LogEntry struct {
	Core  int
	Tx    uint32
	LogTo uint64 // line-aligned address in the thread's log area
	Data  [isa.LineSize]byte
	Last  bool // carries the transaction-end mark (§4.3)
}

// Controller is the memory controller plus its attached device.
type Controller struct {
	cfg   config.Mem
	dev   *nvm.Device
	store *nvm.Store
	st    *stats.Mem

	wpq       []wpqEntry
	lpq       []LogEntry
	reads     []uint64 // completion cycles of outstanding reads
	seq       uint64   // monotonically increasing write-acceptance sequence
	forceAll  int      // count of pcommit waiters forcing full drain
	drainHi   int
	maxWPQAge uint64

	// Event tracking: instead of polling every queue every cycle, Tick
	// keeps the next cycle each pass can possibly act. The cached values
	// are exact no-op filters — skipping a pass is provably identical to
	// running it.
	issuedN    int    // WPQ entries issued to the device, not yet retired
	unissuedN  int    // WPQ entries not yet issued
	nextRetire uint64 // min doneAt over issued entries (valid when issuedN > 0)
	readsMin   uint64 // min completion over outstanding reads (valid when len(reads) > 0)

	// storeWrites counts functional-store mutations (every c.store.Write),
	// folding the store's state into PersistSig without hashing it.
	storeWrites uint64

	atomScratch map[uint64]bool // reusable AtomTxEnd cancellation set
}

// New returns a controller draining into dev/store. The drain policy
// (hold-back threshold and maximum entry age) comes from the configuration
// so the §4.3 scheduling parameters can be swept like the queue capacities.
func New(cfg config.Mem, dev *nvm.Device, store *nvm.Store, st *stats.Mem) *Controller {
	return &Controller{
		cfg: cfg, dev: dev, store: store, st: st,
		drainHi:   cfg.DrainHi,
		maxWPQAge: uint64(cfg.MaxWPQAge),
		// WriteLineEvict can push past the configured capacity; leave
		// headroom so steady-state operation never regrows the arrays.
		wpq:         make([]wpqEntry, 0, cfg.WPQ+8),
		lpq:         make([]LogEntry, 0, cfg.LPQ+1),
		reads:       make([]uint64, 0, cfg.ReadQ),
		atomScratch: make(map[uint64]bool),
	}
}

// storeWrite applies data to the functional store, counting the mutation
// for PersistSig.
func (c *Controller) storeWrite(addr uint64, data []byte) {
	c.storeWrites++
	c.store.Write(addr, data)
}

// Device returns the attached device (for endurance accounting).
func (c *Controller) Device() *nvm.Device { return c.dev }

// Store returns the functional NVM contents.
func (c *Controller) Store() *nvm.Store { return c.store }

// ---------------------------------------------------------------- reads

// ReadLine services a 64-byte read arriving at the controller at cycle
// now. It returns the completion cycle (at the controller; the caller adds
// return transit) and the line data. ok is false when the read queue is
// full and the request must be retried.
//
// Reads check the WPQ for a pending write to the same line (§4.3) and are
// serviced from it with no device access; they do not check the LPQ.
func (c *Controller) ReadLine(now uint64, addr uint64) (done uint64, data [isa.LineSize]byte, ok bool) {
	addr = isa.LineAddr(addr)
	for i := range c.wpq {
		if c.wpq[i].addr == addr {
			// WPQ forwarding: a short fixed lookup cost.
			if c.st != nil {
				c.st.WPQForwards++
			}
			return now + 4, c.wpq[i].data, true
		}
	}
	if len(c.reads) >= c.cfg.ReadQ {
		if c.st != nil {
			c.st.ReadQFullStall++
		}
		return 0, data, false
	}
	done = c.dev.Access(now, addr, false, stats.WriteData)
	if c.st != nil {
		c.st.ReadLatency += done - now
		c.st.ReadsServed++
	}
	if len(c.reads) == 0 || done < c.readsMin {
		c.readsMin = done
	}
	c.reads = append(c.reads, done)
	c.store.ReadInto(addr, data[:])
	return done, data, true
}

// PeekLine reads a line functionally (no timing, no queue effects),
// merging any pending WPQ write. Used for pre-image capture by hardware
// log creation.
func (c *Controller) PeekLine(addr uint64) (uint64, [isa.LineSize]byte, bool) {
	addr = isa.LineAddr(addr)
	var data [isa.LineSize]byte
	for i := range c.wpq {
		if c.wpq[i].addr == addr {
			return 0, c.wpq[i].data, true
		}
	}
	c.store.ReadInto(addr, data[:])
	return 0, data, true
}

// --------------------------------------------------------------- writes

// WriteLine offers a 64-byte write to the WPQ at cycle now. It returns
// false when the WPQ is full (the caller retries, modeling backpressure
// into the cache hierarchy). Writes to a line already pending coalesce
// into the existing entry.
func (c *Controller) WriteLine(now uint64, addr uint64, data [isa.LineSize]byte, cause stats.WriteCause) bool {
	addr = isa.LineAddr(addr)
	for i := range c.wpq {
		if c.wpq[i].addr == addr && !c.wpq[i].issued {
			c.wpq[i].data = data
			if c.st != nil {
				c.st.WPQCoalesced++
			}
			return true
		}
	}
	if len(c.wpq) >= c.cfg.WPQ {
		if c.st != nil {
			c.st.WPQFullStall++
		}
		return false
	}
	c.seq++
	c.unissuedN++
	c.wpq = append(c.wpq, wpqEntry{seq: c.seq, addr: addr, data: data, cause: cause, arrived: now})
	return true
}

// atomWrite is WriteLine plus ATOM log bookkeeping so truncation can
// cancel log writes that have not yet drained.
func (c *Controller) atomWrite(now uint64, addr uint64, data [isa.LineSize]byte, cause stats.WriteCause, core int, tx uint32) bool {
	addr = isa.LineAddr(addr)
	if len(c.wpq) >= c.cfg.WPQ {
		if c.st != nil {
			c.st.WPQFullStall++
		}
		return false
	}
	c.seq++
	c.unissuedN++
	c.wpq = append(c.wpq, wpqEntry{seq: c.seq, addr: addr, data: data, cause: cause, arrived: now, atomCore: core + 1, atomTx: tx})
	return true
}

// WPQLen returns the number of WPQ entries still pending or in flight.
func (c *Controller) WPQLen() int { return len(c.wpq) }

// WPQFree returns the number of free WPQ slots.
func (c *Controller) WPQFree() int {
	f := c.cfg.WPQ - len(c.wpq)
	if f < 0 {
		f = 0
	}
	return f
}

// WPQEmpty reports whether every accepted write has drained to NVM.
func (c *Controller) WPQEmpty() bool { return len(c.wpq) == 0 }

// ReadQLen returns the number of outstanding device reads (monitoring).
func (c *Controller) ReadQLen() int { return len(c.reads) }

// CurSeq returns the acceptance sequence number of the most recently
// accepted write. A pcommit captures it and waits for WPQDrainedThrough —
// writes accepted later (other cores') do not extend the wait.
func (c *Controller) CurSeq() uint64 { return c.seq }

// WPQDrainedThrough reports whether every write accepted at or before seq
// has drained to NVM (pcommit's completion condition).
func (c *Controller) WPQDrainedThrough(seq uint64) bool {
	for i := range c.wpq {
		if c.wpq[i].seq <= seq {
			return false
		}
	}
	return true
}

// ForceDrain makes Tick drain the WPQ as fast as the device allows until
// it is empty (used while a pcommit is outstanding). Calls nest.
func (c *Controller) ForceDrain(on bool) {
	if on {
		c.forceAll++
	} else if c.forceAll > 0 {
		c.forceAll--
	}
}

// WriteLineEvict is WriteLine for cache evictions: it always accepts, even
// above the configured capacity, because an eviction in the middle of a
// line fill cannot be replayed. Overshoot is counted as WPQ full stalls.
func (c *Controller) WriteLineEvict(now uint64, addr uint64, data [isa.LineSize]byte, cause stats.WriteCause) {
	addr = isa.LineAddr(addr)
	for i := range c.wpq {
		if c.wpq[i].addr == addr && !c.wpq[i].issued {
			c.wpq[i].data = data
			if c.st != nil {
				c.st.WPQCoalesced++
			}
			return
		}
	}
	if len(c.wpq) >= c.cfg.WPQ && c.st != nil {
		c.st.WPQFullStall++
	}
	c.seq++
	c.unissuedN++
	c.wpq = append(c.wpq, wpqEntry{seq: c.seq, addr: addr, data: data, cause: cause, arrived: now})
}

// Tick advances the controller to cycle now: it retires writes whose
// device access has completed (applying their data to the store) and
// issues pending writes according to the drain policy (drain eagerly when
// the WPQ is above half capacity, when entries age out, or when a force
// drain is in effect; this leaves a window for write coalescing).
//
// Each pass is gated on the event times the controller tracks (read
// completions, issued-write completions, unissued-entry presence), so a
// tick in which nothing can happen costs three compares instead of three
// queue scans. The gates are exact: a skipped pass would not have changed
// any state.
func (c *Controller) Tick(now uint64) {
	if len(c.reads) > 0 && c.readsMin <= now {
		c.gcReads(now)
	}
	if c.issuedN > 0 && c.nextRetire <= now {
		c.retirePass(now)
	}
	if c.unissuedN > 0 {
		c.issuePass(now)
	}
}

// gcReads frees read-queue slots whose device access has completed.
func (c *Controller) gcReads(now uint64) {
	r := c.reads[:0]
	c.readsMin = ^uint64(0)
	for _, d := range c.reads {
		if d > now {
			if d < c.readsMin {
				c.readsMin = d
			}
			r = append(r, d)
		}
	}
	c.reads = r
}

// retirePass retires completed writes, applying their data to the store.
func (c *Controller) retirePass(now uint64) {
	w := c.wpq[:0]
	c.issuedN = 0
	c.nextRetire = ^uint64(0)
	for _, e := range c.wpq {
		if e.issued && e.doneAt <= now {
			c.storeWrite(e.addr, e.data[:])
			if c.st != nil {
				c.st.WPQDrained++
				if e.doneAt > e.arrived {
					c.st.WPQResidency += e.doneAt - e.arrived
				}
				if e.issueAt > e.arrived {
					c.st.WPQIssueDelay += e.issueAt - e.arrived
				}
				if e.doneAt > e.issueAt {
					c.st.WPQService += e.doneAt - e.issueAt
				}
			}
			continue
		}
		if e.issued {
			c.issuedN++
			if e.doneAt < c.nextRetire {
				c.nextRetire = e.doneAt
			}
		}
		w = append(w, e)
	}
	c.wpq = w
}

// markIssued records an entry transitioning to issued in the event caches.
func (c *Controller) markIssued(doneAt uint64) {
	c.issuedN++
	c.unissuedN--
	if doneAt < c.nextRetire || c.issuedN == 1 {
		c.nextRetire = doneAt
	}
}

// issuePass issues pending writes FR-FCFS style, at a bounded rate so
// newer entries linger long enough to coalesce: row-buffer hits on free
// banks first (batching same-row writes amortizes the expensive NVM
// activates), then oldest-first on free banks, then oldest-first.
// A force drain (pcommit) lifts the rate bound.
func (c *Controller) issuePass(now uint64) {
	budget := 4
	if c.forceAll > 0 {
		budget = len(c.wpq)
	}
	for ; budget > 0; budget-- {
		best := -1
		bestClass := 3
	candidates:
		for i := range c.wpq {
			e := &c.wpq[i]
			if e.issued || e.arrived > now {
				continue
			}
			// Same-address write-write ordering: never overtake an older
			// write to the same line still in the queue (issued or not) —
			// draining a newer value before an older one would leave the
			// older value in NVM.
			for j := 0; j < i; j++ {
				if c.wpq[j].addr == e.addr {
					continue candidates
				}
			}
			age := now - e.arrived
			maxAge := c.maxWPQAge
			if e.cause != stats.WriteData {
				// Log-area writes are never latency-critical (completion
				// is acceptance) and never read back; age them longer so
				// a transaction's worth accumulates and drains as one
				// row batch, amortizing the expensive NVM activate.
				maxAge *= 8
			}
			if c.forceAll == 0 && len(c.wpq) <= c.drainHi && age < maxAge {
				continue
			}
			// Read priority: writes only start on a currently-free bank
			// (reads arriving meanwhile find their banks idle), except
			// for badly aged entries and force drains.
			class := 2
			if c.dev.NextFree(e.addr) <= now {
				class = 1
				if c.dev.IsOpenRow(e.addr) {
					class = 0
				}
			} else if c.forceAll == 0 && age < 4*c.maxWPQAge {
				continue
			}
			if class < bestClass {
				best, bestClass = i, class
				if class == 0 {
					break
				}
			}
		}
		if best < 0 {
			break
		}
		e := &c.wpq[best]
		e.issued = true
		e.issueAt = now
		e.doneAt = c.dev.Access(now, e.addr, true, e.cause)
		c.markIssued(e.doneAt)
		// Burst out every other pending write to the same row while it is
		// open: one activate serves the whole batch (free of the budget —
		// row hits only occupy the bank for the burst).
		// Bound the burst so an arriving read never waits behind a long
		// write train (write pausing, a standard PCM-controller
		// technique).
		room := 4
	burst:
		for i := range c.wpq {
			if room == 0 {
				break
			}
			o := &c.wpq[i]
			if o.issued || o.arrived > now || o.addr == e.addr || !c.dev.SameRow(o.addr, e.addr) {
				continue
			}
			for j := 0; j < i; j++ {
				if c.wpq[j].addr == o.addr {
					continue burst // same-address ordering
				}
			}
			o.issued = true
			o.issueAt = now
			o.doneAt = c.dev.Access(now, o.addr, true, o.cause)
			c.markIssued(o.doneAt)
			room--
		}
	}
}

// ------------------------------------------------------------- LPQ (Proteus)

// LogFlush offers a Proteus log entry to the LPQ at cycle now. It returns
// false when the LPQ is full and no entry can be evicted this cycle. On
// overflow the oldest entry is drained to NVM to make room (log entries
// inevitably released early this way are later identified as stale by
// their transaction ID during recovery; no invalidation writes are needed,
// §4.3).
//
// The arrival of a new transaction's first log entry discards a held
// last-entry of the previous transaction from the same core (§4.3).
func (c *Controller) LogFlush(now uint64, e LogEntry) bool {
	// Discard a previous transaction's held commit-mark entry.
	l := c.lpq[:0]
	for _, p := range c.lpq {
		if p.Core == e.Core && p.Tx != e.Tx && p.Last {
			if c.st != nil {
				c.st.LPQDropped++
			}
			continue
		}
		l = append(l, p)
	}
	c.lpq = l

	if len(c.lpq) >= c.cfg.LPQ {
		// Evict the oldest entry to NVM, through the write scheduler so
		// evictions batch by row instead of wedging banks one by one.
		old := c.lpq[0]
		copy(c.lpq, c.lpq[1:])
		c.lpq = c.lpq[:len(c.lpq)-1]
		c.WriteLineEvict(now, old.LogTo, old.Data, stats.WriteLog)
		if c.st != nil {
			c.st.LPQDrained++
			c.st.LPQFullStall++
		}
	}
	c.lpq = append(c.lpq, e)
	if c.st != nil {
		c.st.LPQAccepted++
	}
	return true
}

// MarkCommit sets the transaction-end mark on the transaction's last log
// entry (§4.3: "Proteus utilizes the meta data of the last log entry for
// marking the end of the transaction"). If the entry is still in the LPQ
// the mark costs nothing; if it already drained to NVM (or the controller
// runs without log write removal) the updated entry must be written, which
// goes through the WPQ and can be refused when it is full (retry).
func (c *Controller) MarkCommit(now uint64, core int, tx uint32, lastLogTo uint64) bool {
	for i := range c.lpq {
		e := &c.lpq[i]
		if e.Core == core && e.Tx == tx && e.LogTo == lastLogTo {
			e.Last = true
			logfmt.SetProteusLast(&e.Data)
			return true
		}
	}
	// Entry already in NVM (or WPQ): rewrite it with the mark set.
	var line [isa.LineSize]byte
	_, line, _ = c.PeekLine(lastLogTo)
	logfmt.SetProteusLast(&line)
	return c.WriteLine(now, lastLogTo, line, stats.WriteLog)
}

// FlashClear drops all LPQ entries of (core, tx) except one carrying the
// transaction-end mark, which is held until the next transaction's first
// log entry arrives (§4.3). It is called when tx-end executes, after the
// transaction's data updates are durable.
func (c *Controller) FlashClear(core int, tx uint32) {
	l := c.lpq[:0]
	for _, e := range c.lpq {
		if e.Core == core && e.Tx == tx && !e.Last {
			if c.st != nil {
				c.st.LPQDropped++
			}
			continue
		}
		l = append(l, e)
	}
	c.lpq = l
}

// DrainLog writes every LPQ entry of (core, tx) to NVM (the context-switch
// path, §4.4: "we send a message to the MC informing it to write all LPQ
// entries for the txID to NVMM").
func (c *Controller) DrainLog(now uint64, core int, tx uint32) {
	l := c.lpq[:0]
	for _, e := range c.lpq {
		if e.Core == core && e.Tx == tx {
			c.dev.Access(now, e.LogTo, true, stats.WriteLog)
			c.storeWrite(e.LogTo, e.Data[:])
			if c.st != nil {
				c.st.LPQDrained++
			}
			continue
		}
		l = append(l, e)
	}
	c.lpq = l
}

// LPQLen returns the LPQ occupancy.
func (c *Controller) LPQLen() int { return len(c.lpq) }

// ---------------------------------------------------------------- ATOM

// AtomLog creates a log entry for one cache line at the controller (the
// source-log optimization: the entry is created at the MC rather than the
// cache controller). preimage is the line's pre-transaction contents;
// logTo is where the entry lands in the core's log area. With the
// posted-log optimization the acknowledgment is sent as soon as the entry
// is accepted, so the returned ack cycle is the acceptance cycle; ok is
// false when the WPQ is full and the request must be retried.
//
// ATOM has no LPQ: its log writes drain to NVM with regular writes, which
// is the source of its write amplification (Figure 8).
func (c *Controller) AtomLog(now uint64, core int, tx uint32, logTo uint64, entry [isa.LineSize]byte) (ack uint64, ok bool) {
	if !c.atomWrite(now, logTo, entry, stats.WriteLog, core, tx) {
		return 0, false
	}
	return now, true
}

// AtomTxEnd truncates the transaction's log: entries still pending in the
// WPQ are cancelled (no NVM write ever happens), while entries already
// drained must be invalidated with one NVM write each (§4.3: ATOM's MC
// tracks active log entries and clears them; beyond its tracking
// resources it searches the log area and invalidates them one by one).
// logEntries lists the log-to addresses the transaction wrote; tracked is
// the MC hardware's tracking capacity.
func (c *Controller) AtomTxEnd(now uint64, core int, tx uint32, logEntries []uint64, tracked int) {
	// Cancel the transaction's log writes still at the controller —
	// pending or in flight. (An in-flight entry that drained after the
	// invalidation would resurrect a stale log entry.) Only un-issued
	// cancellations save an NVM write; issued ones already accessed the
	// device.
	cancelled := c.atomScratch
	clear(cancelled)
	w := c.wpq[:0]
	c.issuedN, c.unissuedN = 0, 0
	c.nextRetire = ^uint64(0)
	for _, e := range c.wpq {
		if e.atomCore == core+1 && e.atomTx == tx && e.cause == stats.WriteLog {
			if !e.issued {
				cancelled[e.addr] = true
			}
			continue
		}
		if e.issued {
			c.issuedN++
			if e.doneAt < c.nextRetire {
				c.nextRetire = e.doneAt
			}
		} else {
			c.unissuedN++
		}
		w = append(w, e)
	}
	c.wpq = w

	var zero [isa.LineSize]byte
	for _, a := range logEntries {
		if cancelled[isa.LineAddr(a)] {
			continue
		}
		if tracked > 0 {
			// Within the MC's tracking resources the clear is free: the
			// tracking table is inside the ADR persistency domain, so the
			// entry is invalid without touching NVM (the design point
			// that bounds ATOM's benefits to its available resources,
			// §4.3).
			tracked--
			c.storeWrite(isa.LineAddr(a), zero[:])
			continue
		}
		// Beyond the tracking capacity: search the log area (a read) and
		// invalidate the entry with a write, through the WPQ.
		c.dev.Access(now, a, false, stats.WriteData)
		if !c.WriteLine(now, a, zero, stats.WriteTruncate) {
			c.dev.Access(now, a, true, stats.WriteTruncate)
			c.storeWrite(isa.LineAddr(a), zero[:])
		}
	}
}

// PersistSig summarizes everything a power failure at this instant could
// leave on NVM: the functional store's mutation count plus the pending
// WPQ and LPQ contents (address, data, issued flag) in acceptance order.
// Two cycles with equal signatures yield byte-identical crash images
// under every CrashFault, so an exhaustive crash-point sweep can classify
// one representative per signature and skip the cycles in between. FNV-1a
// over the raw bytes keeps the value stable across runs and platforms.
func (c *Controller) PersistSig() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(v>>(8*i)))) * prime
		}
	}
	bytes := func(b []byte) {
		for _, x := range b {
			h = (h ^ uint64(x)) * prime
		}
	}
	w64(c.storeWrites)
	w64(uint64(len(c.wpq)))
	for i := range c.wpq {
		e := &c.wpq[i]
		w64(e.addr)
		if e.issued {
			w64(1)
		} else {
			w64(0)
		}
		bytes(e.data[:])
	}
	w64(uint64(len(c.lpq)))
	for i := range c.lpq {
		e := &c.lpq[i]
		w64(e.LogTo)
		bytes(e.Data[:])
	}
	return h
}

// ------------------------------------------------------------ crash image

// CrashImage returns the persistent state visible to recovery after a
// power failure at the current moment. With ADR, everything accepted into
// the WPQ and LPQ is inside the persistency domain and therefore part of
// the image; without ADR (the PMEM+pcommit configuration) only data
// already written to NVM survives.
func (c *Controller) CrashImage(adr bool) *nvm.Store {
	return c.CrashImageWith(CrashFault{ADR: adr})
}

// CrashFault describes how a power failure mangles the pending queues on
// its way to the crash image. The zero value (no ADR, no tearing) is the
// harshest clean model: both queues are lost.
type CrashFault struct {
	// ADR marks the WPQ/LPQ as inside the persistency domain: their
	// contents drain into the image. Passing false for a scheme that
	// normally relies on ADR models ADR loss (a failed backup capacitor).
	ADR bool
	// Torn, when non-nil, is consulted once per line the failure would
	// persist — in acceptance order, WPQ before LPQ; idx counts calls —
	// and returns how many leading 8-byte words of the 64-byte line
	// actually reach NVM. Values >= 8 keep the whole line, <= 0 drop it;
	// anything between leaves the line's tail at its pre-crash NVM
	// contents (a torn line write).
	//
	// Without ADR the queues are volatile and nominally persist nothing,
	// but a write the device had already begun at the failure may still
	// land a torn prefix: with Torn set, issued WPQ entries are offered to
	// the hook instead of being dropped.
	Torn func(idx int, addr uint64) int
}

// CrashImageWith is CrashImage under an explicit fault model.
func (c *Controller) CrashImageWith(f CrashFault) *nvm.Store {
	img := c.store.Snapshot()
	idx := 0
	apply := func(addr uint64, data *[isa.LineSize]byte) {
		words := 8
		if f.Torn != nil {
			words = f.Torn(idx, addr)
		}
		idx++
		if words <= 0 {
			return
		}
		if words > 8 {
			words = 8
		}
		img.Write(addr, data[:words*8])
	}
	switch {
	case f.ADR:
		for i := range c.wpq {
			apply(c.wpq[i].addr, &c.wpq[i].data)
		}
		for i := range c.lpq {
			apply(c.lpq[i].LogTo, &c.lpq[i].Data)
		}
	case f.Torn != nil:
		for i := range c.wpq {
			if c.wpq[i].issued {
				apply(c.wpq[i].addr, &c.wpq[i].data)
			}
		}
	}
	return img
}

// PendingLines returns the line addresses a power failure at this moment
// would offer to a CrashFault.Torn hook, in hook-index order. A campaign
// uses it to aim a tear at a specific queued line.
func (c *Controller) PendingLines(adr bool) []uint64 {
	var out []uint64
	if adr {
		for i := range c.wpq {
			out = append(out, c.wpq[i].addr)
		}
		for i := range c.lpq {
			out = append(out, c.lpq[i].LogTo)
		}
		return out
	}
	for i := range c.wpq {
		if c.wpq[i].issued {
			out = append(out, c.wpq[i].addr)
		}
	}
	return out
}

// ------------------------------------------------------------- next event

// NextEvent reports the controller's next possible state change strictly
// after cycle now, for the fast-forward stepper. A return of 0 means the
// controller may act at now+1 and must be ticked; otherwise the returned
// cycle is a sound lower bound: ticking the controller at any cycle in
// (now, wake) is guaranteed to change nothing.
//
// The derivation mirrors Tick exactly. Retires happen at issued entries'
// completion times; read-queue slots free at read completion times; an
// unissued entry can first issue at the latest of its arrival, the drain
// gate opening (age or occupancy or force drain) and the bank gate opening
// (bank free, age override, or force drain). Bank busy times are frozen
// while the controller is idle, which is what makes the bound exact.
// An entry already eligible that was not issued (rate budget, same-address
// ordering) means the controller is active and 0 is returned.
func (c *Controller) NextEvent(now uint64) uint64 {
	const inf = ^uint64(0)
	wake := inf
	if len(c.reads) > 0 {
		if c.readsMin <= now {
			return 0
		}
		wake = c.readsMin
	}
	for i := range c.wpq {
		e := &c.wpq[i]
		if e.issued {
			if e.doneAt <= now {
				return 0
			}
			if e.doneAt < wake {
				wake = e.doneAt
			}
			continue
		}
		// Earliest cycle the drain gate can pass.
		tDrain := e.arrived
		if c.forceAll == 0 && len(c.wpq) <= c.drainHi {
			maxAge := c.maxWPQAge
			if e.cause != stats.WriteData {
				maxAge *= 8
			}
			tDrain = e.arrived + maxAge
		}
		// Earliest cycle the bank gate can pass: a free bank, the aged-out
		// override, or a force drain (which ignores bank state).
		tBank := c.dev.NextFree(e.addr)
		if c.forceAll > 0 {
			tBank = 0
		} else if t2 := e.arrived + 4*c.maxWPQAge; t2 < tBank {
			tBank = t2
		}
		t := e.arrived
		if tDrain > t {
			t = tDrain
		}
		if tBank > t {
			t = tBank
		}
		if t <= now {
			return 0 // eligible now but unissued: budget or ordering held it
		}
		if t < wake {
			wake = t
		}
	}
	return wake
}
