package memctrl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
	"repro/internal/stats"
)

func newTestController() (*Controller, *stats.Mem) {
	cfg := config.Default().Mem
	st := &stats.Mem{}
	store := nvm.NewStore()
	dev := nvm.NewDevice(cfg, st)
	return New(cfg, dev, store, st), st
}

// TestWPQDrainThroughput measures how many line writes per kilocycle the
// WPQ sustains; the scheme comparisons depend on this being comfortably
// above the workloads' write rates.
func TestWPQDrainThroughput(t *testing.T) {
	c, _ := newTestController()
	var accepted int
	addr := uint64(isa.HeapBase)
	var data [isa.LineSize]byte
	cycles := uint64(200_000)
	for now := uint64(1); now <= cycles; now++ {
		c.Tick(now)
		if c.WriteLine(now, addr, data, stats.WriteData) {
			accepted++
			addr += isa.LineSize
		}
	}
	perKilo := float64(accepted) / float64(cycles) * 1000
	t.Logf("sustained %.1f writes/kcycle (accepted %d)", perKilo, accepted)
	if perKilo < 20 {
		t.Errorf("WPQ drain too slow: %.1f writes/kcycle", perKilo)
	}
}

// TestWriteCoalescing verifies that rewriting a pending line does not
// create a second WPQ entry.
func TestWriteCoalescing(t *testing.T) {
	c, st := newTestController()
	var data [isa.LineSize]byte
	if !c.WriteLine(1, isa.HeapBase, data, stats.WriteData) {
		t.Fatal("first write refused")
	}
	data[0] = 7
	if !c.WriteLine(2, isa.HeapBase, data, stats.WriteData) {
		t.Fatal("second write refused")
	}
	if c.WPQLen() != 1 {
		t.Fatalf("WPQLen = %d, want 1 (coalesced)", c.WPQLen())
	}
	if st.WPQCoalesced != 1 {
		t.Fatalf("coalesced count = %d, want 1", st.WPQCoalesced)
	}
	// Drain and check the data landed.
	for now := uint64(3); now < 10_000; now++ {
		c.ForceDrain(true)
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	if !c.WPQEmpty() {
		t.Fatal("WPQ did not drain")
	}
	if got := c.Store().Read(isa.HeapBase, 1)[0]; got != 7 {
		t.Fatalf("store byte = %d, want 7", got)
	}
}

// ------------------------------------------------------------------ LPQ

func mkEntry(core int, tx uint32, logTo uint64, last bool) LogEntry {
	e := logfmt.ProteusEntry{From: isa.HeapBase, Tx: tx, Seq: uint64(tx)}
	e.Last = last
	line := logfmt.EncodeProteus(e)
	return LogEntry{Core: core, Tx: tx, LogTo: logTo, Data: line, Last: last}
}

func TestLPQFlashClear(t *testing.T) {
	c, st := newTestController()
	base, _ := isa.LogWindow(0)
	for i := 0; i < 5; i++ {
		c.LogFlush(10, mkEntry(0, 1, base+uint64(i)*64, false))
	}
	if c.LPQLen() != 5 {
		t.Fatalf("LPQ len %d", c.LPQLen())
	}
	if !c.MarkCommit(20, 0, 1, base+4*64) {
		t.Fatal("mark commit failed")
	}
	c.FlashClear(0, 1)
	// All but the marked last entry are dropped without NVM writes.
	if c.LPQLen() != 1 {
		t.Fatalf("LPQ after flash clear: %d", c.LPQLen())
	}
	if st.LPQDropped != 4 {
		t.Fatalf("dropped %d", st.LPQDropped)
	}
	if st.Writes[stats.WriteLog] != 0 {
		t.Fatalf("log writes reached NVM: %d", st.Writes[stats.WriteLog])
	}
	// The next transaction's first entry discards the held last entry.
	c.LogFlush(30, mkEntry(0, 2, base+5*64, false))
	if c.LPQLen() != 1 {
		t.Fatalf("LPQ after next txn's entry: %d", c.LPQLen())
	}
	if st.LPQDropped != 5 {
		t.Fatalf("dropped after discard: %d", st.LPQDropped)
	}
}

func TestLPQOverflowDrainsToNVM(t *testing.T) {
	c, st := newTestController()
	base, _ := isa.LogWindow(0)
	n := config.Default().Mem.LPQ
	for i := 0; i <= n; i++ { // one beyond capacity
		c.LogFlush(uint64(10+i), mkEntry(0, 1, base+uint64(i)*64, false))
	}
	if st.LPQDrained != 1 {
		t.Fatalf("drained %d, want 1 (the evicted oldest)", st.LPQDrained)
	}
	// The eviction goes through the WPQ; drain it to NVM.
	c.ForceDrain(true)
	for now := uint64(1000); now < 200_000; now++ {
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	if st.Writes[stats.WriteLog] != 1 {
		t.Fatalf("NVM log writes %d", st.Writes[stats.WriteLog])
	}
	// The drained entry's bytes must be in the store (it is durable NVM
	// content for recovery).
	if _, ok := logfmt.DecodeProteus(c.Store().Read(base, 64)); !ok {
		t.Fatal("drained entry not decodable from NVM")
	}
}

func TestMarkCommitOnDrainedEntry(t *testing.T) {
	c, _ := newTestController()
	base, _ := isa.LogWindow(0)
	// Write the entry straight to NVM (as if drained long ago).
	line := logfmt.EncodeProteus(logfmt.ProteusEntry{From: isa.HeapBase, Tx: 3, Seq: 1})
	c.Store().Write(base, line[:])
	if !c.MarkCommit(10, 0, 3, base) {
		t.Fatal("mark refused")
	}
	// Drain the WPQ and check the mark landed.
	c.ForceDrain(true)
	for now := uint64(11); now < 100_000; now++ {
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	e, ok := logfmt.DecodeProteus(c.Store().Read(base, 64))
	if !ok || !e.Last {
		t.Fatalf("mark not durable: ok=%v last=%v", ok, e.Last)
	}
}

func TestDrainLogWritesEverything(t *testing.T) {
	c, st := newTestController()
	base, _ := isa.LogWindow(0)
	for i := 0; i < 3; i++ {
		c.LogFlush(10, mkEntry(0, 7, base+uint64(i)*64, false))
	}
	c.DrainLog(20, 0, 7)
	if c.LPQLen() != 0 {
		t.Fatalf("LPQ not drained: %d", c.LPQLen())
	}
	if st.LPQDrained != 3 || st.Writes[stats.WriteLog] != 3 {
		t.Fatalf("drained %d, NVM log writes %d", st.LPQDrained, st.Writes[stats.WriteLog])
	}
}

func TestCrashImageADR(t *testing.T) {
	c, _ := newTestController()
	var data [isa.LineSize]byte
	data[0] = 0x5A
	if !c.WriteLine(10, isa.HeapBase, data, stats.WriteData) {
		t.Fatal("write refused")
	}
	base, _ := isa.LogWindow(0)
	c.LogFlush(10, mkEntry(0, 1, base, false))

	adr := c.CrashImage(true)
	if adr.Read(isa.HeapBase, 1)[0] != 0x5A {
		t.Fatal("ADR image missing WPQ write")
	}
	if _, ok := logfmt.DecodeProteus(adr.Read(base, 64)); !ok {
		t.Fatal("ADR image missing LPQ entry")
	}
	noADR := c.CrashImage(false)
	if noADR.Read(isa.HeapBase, 1)[0] != 0 {
		t.Fatal("non-ADR image contains undrained WPQ write")
	}
}

func TestSameAddressWriteOrdering(t *testing.T) {
	c, _ := newTestController()
	var v1, v2 [isa.LineSize]byte
	v1[0], v2[0] = 1, 2
	if !c.WriteLine(10, isa.HeapBase, v1, stats.WriteData) {
		t.Fatal("w1 refused")
	}
	// Force-issue the first, then write the same line again.
	c.ForceDrain(true)
	c.Tick(11)
	c.ForceDrain(false)
	if !c.WriteLine(12, isa.HeapBase, v2, stats.WriteData) {
		t.Fatal("w2 refused")
	}
	c.ForceDrain(true)
	for now := uint64(13); now < 100_000; now++ {
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	if got := c.Store().Read(isa.HeapBase, 1)[0]; got != 2 {
		t.Fatalf("final NVM value %d, want 2 (newest)", got)
	}
}

func TestAtomTxEndCancelsAndInvalidates(t *testing.T) {
	c, st := newTestController()
	base, _ := isa.LogWindow(0)
	meta := logfmt.EncodePairMeta(logfmt.PairEntry{From: isa.HeapBase, Tx: 4, Len: 64})
	// Two log entries: one will still be pending at tx-end (cancelled),
	// one long drained.
	if _, ok := c.AtomLog(10, 0, 4, base, meta); !ok {
		t.Fatal("atom log refused")
	}
	c.ForceDrain(true)
	for now := uint64(11); now < 100_000; now++ {
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	c.ForceDrain(false)
	if _, ok := c.AtomLog(200_000, 0, 4, base+128, meta); !ok {
		t.Fatal("second atom log refused")
	}
	// tx-end with generous tracking: the drained entry is cleared for
	// free; the pending one is cancelled from the WPQ.
	c.AtomTxEnd(200_001, 0, 4, []uint64{base, base + 128}, 32)
	if _, ok := logfmt.DecodePairMeta(c.Store().Read(base, 64)); ok {
		t.Fatal("drained entry not invalidated")
	}
	if st.Writes[stats.WriteTruncate] != 0 {
		t.Fatalf("tracked truncation cost %d NVM writes", st.Writes[stats.WriteTruncate])
	}
	// After tx-end nothing in the WPQ may resurrect the entries.
	c.ForceDrain(true)
	for now := uint64(200_002); now < 400_000; now++ {
		c.Tick(now)
		if c.WPQEmpty() {
			break
		}
	}
	if _, ok := logfmt.DecodePairMeta(c.Store().Read(base+128, 64)); ok {
		t.Fatal("cancelled entry resurrected in NVM")
	}
}

// TestDrainPolicyConfigurable verifies the WPQ hold-back policy follows
// config.Mem: an aggressive policy drains a lone write promptly, while a
// lazy one holds it far beyond the default age for coalescing.
func TestDrainPolicyConfigurable(t *testing.T) {
	run := func(drainHi, maxAge int) bool {
		cfg := config.Default().Mem
		cfg.DrainHi = drainHi
		cfg.MaxWPQAge = maxAge
		st := &stats.Mem{}
		store := nvm.NewStore()
		dev := nvm.NewDevice(cfg, st)
		c := New(cfg, dev, store, st)
		var data [isa.LineSize]byte
		if !c.WriteLine(1, isa.HeapBase, data, stats.WriteData) {
			t.Fatal("write refused")
		}
		for now := uint64(2); now < 2000; now++ {
			c.Tick(now)
		}
		return c.WPQEmpty()
	}
	if !run(0, 1) {
		t.Error("eager policy (hi=0, age=1) left the write pending")
	}
	if run(127, 100_000) {
		t.Error("lazy policy (hi=127, age=100000) drained a lone young write")
	}
}
