package nvm

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Device is the timing model of the main-memory device: a single channel
// with cfg.Banks banks, each with one open row of cfg.RowBytes. Accesses
// are 64-byte bursts. Latencies follow the Table 1 DDR timing set; in NVM
// modes tRCD is replaced by the NVM activation latencies (29 read / 109 or
// 245 write memory cycles).
//
// The model is deliberately first-order: per-bank busy-until timestamps,
// row-buffer hit/miss/conflict classification, and write-recovery time.
// Bank-level parallelism and the read-vs-write latency asymmetry — the
// effects the paper's sensitivity studies exercise — are captured;
// command-bus contention is not.
type Device struct {
	cfg   config.Mem
	banks []bank

	// endurance tracks per-block write counts when enabled (the
	// examples/endurance scenario and Figure 8's lifetime argument).
	endurance map[uint64]uint64
	// wear optionally rotates physical placement (Start-Gap).
	wear  *StartGap
	Stats *stats.Mem
}

type bank struct {
	openRow   int64 // -1 when closed
	busyUntil uint64
	lastWrite bool
}

// NewDevice returns a device with all banks idle and rows closed.
func NewDevice(cfg config.Mem, st *stats.Mem) *Device {
	d := &Device{cfg: cfg, banks: make([]bank, cfg.Banks), Stats: st}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// EnableEndurance turns on per-block write counting.
func (d *Device) EnableEndurance() {
	if d.endurance == nil {
		d.endurance = make(map[uint64]uint64)
	}
}

// WriteCounts returns the per-block write counts (nil unless enabled).
func (d *Device) WriteCounts() map[uint64]uint64 { return d.endurance }

// bankAndRow maps addresses at row granularity: a 2KB-aligned region
// shares one row buffer, and the row index is hashed across banks. Hot
// small regions — a thread's software-log head, a structure's header —
// then own an open row on "their" bank and hit it repeatedly, while
// large power-of-two-aligned regions (per-thread heaps and log areas)
// spread across banks without aliasing.
func (d *Device) bankAndRow(addr uint64) (int, int64) {
	banks := uint64(d.cfg.Banks)
	rowIdx := addr / uint64(d.cfg.RowBytes)
	// Multiplicative mixing: XOR-shift hashes preserve the low bits of
	// power-of-two strides, which would pile every thread's hot rows onto
	// one bank.
	h := (rowIdx * 0x9E3779B97F4A7C15) >> 32
	return int(h % banks), int64(rowIdx)
}

// cpuCycles converts memory-bus cycles to CPU cycles.
func (d *Device) cpuCycles(memCycles int) uint64 {
	return uint64(float64(memCycles)*d.cfg.ClockRatio + 0.5)
}

// activation latency (tRCD equivalent) for the configured device kind.
func (d *Device) trcd(write bool) int {
	t := d.cfg.Timing
	switch d.cfg.Kind {
	case config.DRAM:
		return t.TRCD
	default:
		if write {
			return t.TRCDWriteNVM
		}
		return t.TRCDReadNVM
	}
}

// burst is the data transfer time of one 64-byte burst (BL8 at 8B per
// transfer = 4 memory cycles).
const burst = 4

// Access performs one 64-byte access beginning no earlier than now and
// returns the CPU cycle at which it completes. It updates bank state and
// row-buffer statistics. Write accesses additionally count toward NVMM
// write totals under the given cause.
func (d *Device) Access(now uint64, addr uint64, write bool, cause stats.WriteCause) uint64 {
	addr = d.wearRemap(now, addr, write)
	bi, row := d.bankAndRow(addr)
	bk := &d.banks[bi]
	start := now
	if bk.busyUntil > start {
		start = bk.busyUntil
	}

	// Writes pay the full NVM cell-write latency before they are durable,
	// but they commit out of the row buffer and do not occupy the bank
	// for that long: occupancy uses the DRAM activate time. (Without this
	// write buffering, a handful of hot lines would saturate their banks
	// at ~150ns per write and turn every scheme write-bandwidth-bound,
	// which neither the paper's DRAMsim2 configuration nor real PCM-style
	// parts exhibit.) Reads expose the NVM activate latency directly.
	t := d.cfg.Timing
	var lat, occ int
	switch {
	case bk.openRow == row:
		// Row-buffer hit: CAS latency, but the bank is only occupied for
		// the burst — column accesses to an open row pipeline.
		lat = t.TCAS + burst
		occ = burst
		if d.Stats != nil {
			d.Stats.RowBufferHits++
		}
	case bk.openRow < 0:
		// Closed bank: activate + CAS.
		lat = d.trcd(write) + t.TCAS + burst
		occ = t.TRCD + t.TCAS + burst
		if d.Stats != nil {
			d.Stats.RowBufferMiss++
		}
	default:
		// Conflict: precharge + activate + CAS, plus write recovery if
		// the last access was a write.
		lat = t.TRP + d.trcd(write) + t.TCAS + burst
		occ = t.TRP + t.TRCD + t.TCAS + burst
		if bk.lastWrite {
			lat += t.TWR
			occ += t.TWR
		}
		if d.Stats != nil {
			d.Stats.RowBufferMiss++
		}
	}
	if !write {
		occ = lat
	}

	done := start + d.cpuCycles(lat)
	bk.openRow = row
	bk.busyUntil = start + d.cpuCycles(occ)
	bk.lastWrite = write
	if d.Stats != nil {
		d.Stats.BankBusy += d.cpuCycles(occ)
	}

	if d.Stats != nil {
		if write {
			d.Stats.Writes[cause]++
		} else {
			d.Stats.Reads++
		}
	}
	if write && d.endurance != nil {
		d.endurance[isa.LineAddr(addr)]++
	}
	return done
}

// BusyBanks counts banks still occupied at cycle now — the device-side
// pressure signal the trace layer samples per epoch.
func (d *Device) BusyBanks(now uint64) int {
	n := 0
	for i := range d.banks {
		if d.banks[i].busyUntil > now {
			n++
		}
	}
	return n
}

// NextFree returns the earliest cycle at which the bank holding addr can
// begin a new access; the memory-controller arbiter uses it to prefer
// ready banks.
func (d *Device) NextFree(addr uint64) uint64 {
	bi, _ := d.bankAndRow(addr)
	return d.banks[bi].busyUntil
}

// IsOpenRow reports whether addr would be a row-buffer hit right now. The
// memory controller's FR-FCFS drain uses it to batch same-row writes and
// avoid precharge/activate ping-pong between hot rows.
func (d *Device) IsOpenRow(addr uint64) bool {
	bi, row := d.bankAndRow(addr)
	return d.banks[bi].openRow == row
}

// SameRow reports whether two addresses share a bank row; the controller
// batches such writes so one activate serves all of them.
func (d *Device) SameRow(a, b uint64) bool {
	ba, ra := d.bankAndRow(a)
	bb, rb := d.bankAndRow(b)
	return ba == bb && ra == rb
}
