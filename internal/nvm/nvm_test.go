package nvm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	// Unwritten memory reads as zero.
	if got := s.Read(0x1000, 16); !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("fresh read not zero: %x", got)
	}
	data := []byte("hello, persistent world!")
	s.Write(0x1000, data)
	if got := s.Read(0x1000, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("roundtrip: %q", got)
	}
	// Cross-line write.
	s.Write(0x103c, data)
	if got := s.Read(0x103c, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("cross-line roundtrip: %q", got)
	}
}

func TestStoreUint64(t *testing.T) {
	s := NewStore()
	s.WriteUint64(0x2008, 0xDEADBEEFCAFEF00D)
	if got := s.ReadUint64(0x2008); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("got %#x", got)
	}
	// Little-endian byte order.
	if b := s.Read(0x2008, 1)[0]; b != 0x0D {
		t.Fatalf("first byte %#x", b)
	}
}

func TestStoreQuickRoundtrip(t *testing.T) {
	s := NewStore()
	prop := func(off uint16, val uint64) bool {
		addr := 0x5000 + uint64(off)
		s.WriteUint64(addr, val)
		return s.ReadUint64(addr) == val
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.WriteUint64(0x100, 1)
	snap := s.Snapshot()
	s.WriteUint64(0x100, 2)
	if snap.ReadUint64(0x100) != 1 {
		t.Fatal("snapshot mutated by later write")
	}
	snap.WriteUint64(0x100, 3)
	if s.ReadUint64(0x100) != 2 {
		t.Fatal("original mutated by snapshot write")
	}
}

func TestLinesIn(t *testing.T) {
	s := NewStore()
	s.WriteUint64(0x1000, 1)
	s.WriteUint64(0x1040, 1)
	s.WriteUint64(0x2000, 1)
	lines := s.LinesIn(0x1000, 0x2000)
	if len(lines) != 2 || lines[0] != 0x1000 || lines[1] != 0x1040 {
		t.Fatalf("lines: %#x", lines)
	}
}

func TestEqualRange(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.WriteUint64(0x100, 7)
	b.WriteUint64(0x100, 7)
	if eq, _ := a.EqualRange(b, 0x100, 64); !eq {
		t.Fatal("equal stores compared unequal")
	}
	b.WriteUint64(0x108, 9)
	eq, at := a.EqualRange(b, 0x100, 64)
	if eq || at != 0x108 {
		t.Fatalf("difference not found: eq=%v at=%#x", eq, at)
	}
}

// ---------------------------------------------------------------- device

func newDev(kind config.MemKind) (*Device, *stats.Mem) {
	st := &stats.Mem{}
	cfg := config.Default().WithMemKind(kind).Mem
	return NewDevice(cfg, st), st
}

func TestDeviceRowBufferHit(t *testing.T) {
	d, st := newDev(config.NVMFast)
	a := uint64(isa.HeapBase)
	first := d.Access(0, a, false, stats.WriteData)
	// Second access to the same line at a later time: row hit, cheaper.
	second := d.Access(first, a, false, stats.WriteData) - first
	if second >= first {
		t.Fatalf("row hit (%d) not faster than activate (%d)", second, first)
	}
	if st.RowBufferHits != 1 || st.RowBufferMiss != 1 {
		t.Fatalf("hit/miss counts: %d/%d", st.RowBufferHits, st.RowBufferMiss)
	}
}

func TestDeviceNVMWriteSlowerThanRead(t *testing.T) {
	d, _ := newDev(config.NVMFast)
	rd := d.Access(0, isa.HeapBase, false, stats.WriteData)
	d2, _ := newDev(config.NVMFast)
	wr := d2.Access(0, isa.HeapBase, true, stats.WriteData)
	if wr <= rd {
		t.Fatalf("NVM write latency (%d) not greater than read (%d)", wr, rd)
	}
}

func TestDeviceSlowNVMWriteSlower(t *testing.T) {
	fast, _ := newDev(config.NVMFast)
	slow, _ := newDev(config.NVMSlow)
	wf := fast.Access(0, isa.HeapBase, true, stats.WriteData)
	ws := slow.Access(0, isa.HeapBase, true, stats.WriteData)
	if ws <= wf {
		t.Fatalf("slow NVM write (%d) not slower than fast (%d)", ws, wf)
	}
	// Reads are unaffected (§7.1 keeps 50ns reads).
	rf := fast.Access(1_000_000, isa.HeapBase+1<<20, false, stats.WriteData) - 1_000_000
	rs := slow.Access(1_000_000, isa.HeapBase+1<<20, false, stats.WriteData) - 1_000_000
	if rf != rs {
		t.Fatalf("slow NVM changed read latency: %d vs %d", rs, rf)
	}
}

func TestDeviceDRAMFasterThanNVM(t *testing.T) {
	dram, _ := newDev(config.DRAM)
	nvmf, _ := newDev(config.NVMFast)
	wd := dram.Access(0, isa.HeapBase, true, stats.WriteData)
	wn := nvmf.Access(0, isa.HeapBase, true, stats.WriteData)
	if wd >= wn {
		t.Fatalf("DRAM write (%d) not faster than NVM (%d)", wd, wn)
	}
}

func TestDeviceBankParallelism(t *testing.T) {
	d, _ := newDev(config.NVMFast)
	// Writes to many distinct rows land on different banks and overlap;
	// the makespan must be far below the serialized sum.
	n := 16
	var last uint64
	single := d.Access(0, isa.HeapBase, true, stats.WriteData)
	d2, _ := newDev(config.NVMFast)
	for i := 0; i < n; i++ {
		done := d2.Access(0, isa.HeapBase+uint64(i)*4096, true, stats.WriteData)
		if done > last {
			last = done
		}
	}
	if last > single*4 {
		t.Fatalf("16 spread writes took %d; single takes %d — no bank parallelism?", last, single)
	}
}

func TestDeviceEndurance(t *testing.T) {
	d, _ := newDev(config.NVMFast)
	d.EnableEndurance()
	d.Access(0, isa.HeapBase, true, stats.WriteData)
	d.Access(1000, isa.HeapBase, true, stats.WriteData)
	d.Access(2000, isa.HeapBase+64, true, stats.WriteData)
	wc := d.WriteCounts()
	if wc[isa.HeapBase] != 2 || wc[isa.HeapBase+64] != 1 {
		t.Fatalf("write counts: %v", wc)
	}
}

func TestDeviceBankSpreadForAlignedRegions(t *testing.T) {
	d, _ := newDev(config.NVMFast)
	// Per-thread regions are large power-of-two strides; their hot rows
	// must not all collapse onto one bank.
	banks := make(map[int]bool)
	for thread := 0; thread < 8; thread++ {
		base, _ := isa.LogWindow(thread)
		b, _ := d.bankAndRow(base)
		banks[b] = true
	}
	if len(banks) < 4 {
		t.Fatalf("8 thread log bases map to only %d banks", len(banks))
	}
}

// TestSerializeRoundtrip: a serialized store reads back byte-identical,
// and the byte stream itself is deterministic (sorted lines).
func TestSerializeRoundtrip(t *testing.T) {
	s := NewStore()
	s.WriteUint64(isa.HeapBase+0x40, 0xDEAD_BEEF)
	s.WriteUint64(isa.HeapBase, 7)
	s.Write(isa.LogBase+128, []byte{1, 2, 3})

	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := s.Serialize(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}

	back, err := ReadSerialized(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Blocks() != s.Blocks() {
		t.Fatalf("blocks: got %d want %d", back.Blocks(), s.Blocks())
	}
	for _, a := range s.LinesIn(0, ^uint64(0)) {
		if eq, at := s.EqualRange(back, a, isa.LineSize); !eq {
			t.Fatalf("mismatch at %#x", at)
		}
	}

	if _, err := ReadSerialized(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Fatal("garbage accepted as image")
	}
}
