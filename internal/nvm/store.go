// Package nvm models the main-memory device: a byte-addressable backing
// store that holds the simulated machine's actual data (so that crash
// images can be extracted and recovery verified), and a DDR3-1600-style
// timing model with 16 banks and a 2KB row buffer whose tRCD is raised to
// NVM latencies per Table 1 (50ns read / 150ns write, or 300ns write in
// the slow-NVM study).
package nvm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Store is the functional contents of main memory, kept as sparse 64-byte
// blocks. It is shared between the timing layer (writes drained from the
// memory controller land here) and the recovery layer (crash images are
// snapshots of it).
//
// A store can be a copy-on-write fork of a base store (Fork): reads fall
// through to the base, the first write to a line copies it. Simulations
// fork the (immutable, shared) workload init image instead of deep-copying
// it, which removes the dominant allocation cost of building a System.
type Store struct {
	blocks map[uint64]*[isa.LineSize]byte
	base   *Store // copy-on-write parent; nil for a flat store
	slab   [][isa.LineSize]byte
}

// NewStore returns an empty store. Unwritten bytes read as zero.
func NewStore() *Store {
	return &Store{blocks: make(map[uint64]*[isa.LineSize]byte)}
}

// Fork returns a copy-on-write view of s. The fork sees every line of s
// and owns every line it writes; s must not be written while forks of it
// are alive (concurrent read-only use of the base is safe).
func (s *Store) Fork() *Store {
	return &Store{blocks: make(map[uint64]*[isa.LineSize]byte), base: s}
}

// slabBlocks sizes the arena chunks blocks are carved from: one heap
// allocation covers this many lines.
const slabBlocks = 512

func (s *Store) newBlock() *[isa.LineSize]byte {
	if len(s.slab) == 0 {
		s.slab = make([][isa.LineSize]byte, slabBlocks)
	}
	b := &s.slab[0]
	s.slab = s.slab[1:]
	return b
}

func (s *Store) block(addr uint64, create bool) *[isa.LineSize]byte {
	line := isa.LineAddr(addr)
	if b := s.blocks[line]; b != nil {
		return b
	}
	var inherited *[isa.LineSize]byte
	for p := s.base; p != nil; p = p.base {
		if b := p.blocks[line]; b != nil {
			inherited = b
			break
		}
	}
	if !create {
		return inherited
	}
	nb := s.newBlock()
	if inherited != nil {
		*nb = *inherited
	}
	s.blocks[line] = nb
	return nb
}

// view returns the merged line map of the store and its base chain (own
// lines shadow inherited ones). For a flat store it is the block map
// itself and costs nothing.
func (s *Store) view() map[uint64]*[isa.LineSize]byte {
	if s.base == nil {
		return s.blocks
	}
	n := len(s.blocks)
	for p := s.base; p != nil; p = p.base {
		n += len(p.blocks)
	}
	m := make(map[uint64]*[isa.LineSize]byte, n)
	var add func(*Store)
	add = func(p *Store) {
		if p.base != nil {
			add(p.base)
		}
		for a, b := range p.blocks {
			m[a] = b
		}
	}
	add(s)
	return m
}

// Read copies size bytes at addr into a fresh slice.
func (s *Store) Read(addr uint64, size int) []byte {
	out := make([]byte, size)
	s.ReadInto(addr, out)
	return out
}

// ReadInto fills buf with the bytes at addr.
func (s *Store) ReadInto(addr uint64, buf []byte) {
	for i := 0; i < len(buf); {
		b := s.block(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (isa.LineSize - 1))
		n := isa.LineSize - off
		if n > len(buf)-i {
			n = len(buf) - i
		}
		if b == nil {
			for j := 0; j < n; j++ {
				buf[i+j] = 0
			}
		} else {
			copy(buf[i:i+n], b[off:off+n])
		}
		i += n
	}
}

// Write stores data at addr.
func (s *Store) Write(addr uint64, data []byte) {
	for i := 0; i < len(data); {
		b := s.block(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (isa.LineSize - 1))
		n := isa.LineSize - off
		if n > len(data)-i {
			n = len(data) - i
		}
		copy(b[off:off+n], data[i:i+n])
		i += n
	}
}

// ReadUint64 reads an 8-byte little-endian value.
func (s *Store) ReadUint64(addr uint64) uint64 {
	var buf [8]byte
	s.ReadInto(addr, buf[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// WriteUint64 writes an 8-byte little-endian value.
func (s *Store) WriteUint64(addr, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	s.Write(addr, buf[:])
}

// Snapshot returns a deep, flat copy of the store (a crash image). Forked
// stores are flattened: the copy holds the merged contents and has no base.
func (s *Store) Snapshot() *Store {
	v := s.view()
	c := &Store{blocks: make(map[uint64]*[isa.LineSize]byte, len(v))}
	for a, b := range v {
		nb := c.newBlock()
		*nb = *b
		c.blocks[a] = nb
	}
	return c
}

// Blocks returns the number of materialized 64-byte blocks (including
// lines inherited from the base of a fork).
func (s *Store) Blocks() int { return len(s.view()) }

// LinesIn returns the sorted addresses of materialized 64-byte blocks in
// [base, limit). Recovery uses it to scan log areas without touching
// never-written space.
func (s *Store) LinesIn(base, limit uint64) []uint64 {
	var out []uint64
	for a := range s.view() {
		if a >= base && a < limit {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EqualRange reports whether two stores hold identical bytes over
// [addr, addr+size), along with the first differing address.
func (s *Store) EqualRange(o *Store, addr uint64, size int) (bool, uint64) {
	a := s.Read(addr, size)
	b := o.Read(addr, size)
	for i := range a {
		if a[i] != b[i] {
			return false, addr + uint64(i)
		}
	}
	return true, 0
}

func (s *Store) String() string {
	return fmt.Sprintf("nvm.Store{%d blocks}", s.Blocks())
}

// storeMagic heads a serialized store: "NVMIMG" + a format version.
var storeMagic = [8]byte{'N', 'V', 'M', 'I', 'M', 'G', 0, 1}

// Serialize writes the store to w in a deterministic flat format: the
// magic, a block count, then each materialized line in ascending address
// order as an 8-byte little-endian address followed by its 64 data bytes.
// Crash-campaign reproducer artifacts are written this way.
func (s *Store) Serialize(w io.Writer) error {
	if _, err := w.Write(storeMagic[:]); err != nil {
		return err
	}
	v := s.view()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(v)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	lines := make([]uint64, 0, len(v))
	for a := range v {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		binary.LittleEndian.PutUint64(buf[:], a)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		if _, err := w.Write(v[a][:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSerialized parses a store written by Serialize.
func ReadSerialized(r io.Reader) (*Store, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvm: reading image magic: %w", err)
	}
	if hdr != storeMagic {
		return nil, fmt.Errorf("nvm: bad image magic %q", hdr[:])
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvm: reading image block count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	s := NewStore()
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("nvm: reading block %d address: %w", i, err)
		}
		addr := binary.LittleEndian.Uint64(hdr[:])
		if addr != isa.LineAddr(addr) {
			return nil, fmt.Errorf("nvm: block %d address %#x not line aligned", i, addr)
		}
		b := new([isa.LineSize]byte)
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("nvm: reading block %d data: %w", i, err)
		}
		s.blocks[addr] = b
	}
	return s, nil
}
