package nvm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
)

// StartGap implements Start-Gap wear leveling (Qureshi et al., MICRO'09 —
// the paper's reference [39] for extending NVM lifetime): a region of N
// lines plus one spare. Every psi writes the gap moves by one line, slowly
// rotating the logical-to-physical mapping so that hot lines spread their
// writes over the whole region.
//
// The leveler remaps physical placement only: bank/row selection and
// endurance accounting see rotated addresses, while the functional store
// keeps logical addressing (the device presents a logical interface).
type StartGap struct {
	base  uint64 // region start (line aligned)
	lines uint64 // logical lines in the region (physical = lines+1)
	start uint64 // rotation offset
	gap   uint64 // current gap position in [0, lines]
	psi   int    // writes between gap movements
	count int
	moves uint64
}

// NewStartGap levels [base, base+lines*64). psi is the write interval
// between gap movements (Qureshi et al. use 100).
func NewStartGap(base uint64, lines uint64, psi int) (*StartGap, error) {
	if lines < 2 || psi < 1 || base%isa.LineSize != 0 {
		return nil, fmt.Errorf("nvm: bad start-gap region (base %#x, %d lines, psi %d)", base, lines, psi)
	}
	return &StartGap{base: base, lines: lines, gap: lines, psi: psi}, nil
}

// Contains reports whether addr falls in the leveled region.
func (s *StartGap) Contains(addr uint64) bool {
	return addr >= s.base && addr < s.base+s.lines*isa.LineSize
}

// Remap translates a logical line address to its current physical line
// address.
func (s *StartGap) Remap(addr uint64) uint64 {
	if !s.Contains(addr) {
		return addr
	}
	line := (addr - s.base) / isa.LineSize
	p := (line + s.start) % s.lines
	if p >= s.gap {
		p++
	}
	return s.base + p*isa.LineSize + (addr % isa.LineSize)
}

// OnWrite advances the write counter; every psi-th write moves the gap by
// one line and reports true (the movement itself costs one extra physical
// line write: the controller copies the line adjacent to the gap).
func (s *StartGap) OnWrite() (gapMoved bool, copyFrom, copyTo uint64) {
	s.count++
	if s.count < s.psi {
		return false, 0, 0
	}
	s.count = 0
	s.moves++
	if s.gap == 0 {
		s.gap = s.lines
		s.start = (s.start + 1) % s.lines
		return false, 0, 0 // wrap: bookkeeping only
	}
	from := s.base + (s.gap-1)*isa.LineSize
	to := s.base + s.gap*isa.LineSize
	s.gap--
	return true, from, to
}

// Moves returns how many gap movements have happened.
func (s *StartGap) Moves() uint64 { return s.moves }

// EnableWearLeveling attaches a Start-Gap leveler to the device: accesses
// inside its region are physically rotated, and gap movements cost one
// additional device write each.
func (d *Device) EnableWearLeveling(sg *StartGap) { d.wear = sg }

// WearLeveler returns the attached leveler, nil if none.
func (d *Device) WearLeveler() *StartGap { return d.wear }

// wearRemap applies the leveler (if any) to an address and, on writes,
// advances the gap — charging the copy write to the device.
func (d *Device) wearRemap(now uint64, addr uint64, write bool) uint64 {
	if d.wear == nil || !d.wear.Contains(addr) {
		return addr
	}
	phys := d.wear.Remap(addr)
	if write {
		if moved, _, to := d.wear.OnWrite(); moved {
			// The gap copy is one extra physical write at the new gap's
			// neighbor; it shares the row with high probability and is
			// off the critical path, so only endurance and write counts
			// are charged.
			if d.Stats != nil {
				d.Stats.Writes[stats.WriteData]++
			}
			if d.endurance != nil {
				d.endurance[isa.LineAddr(to)]++
			}
		}
	}
	return phys
}
