package nvm

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

func TestStartGapRemapBijective(t *testing.T) {
	sg, err := NewStartGap(isa.HeapBase, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	// After arbitrary gap movements the mapping must stay a bijection
	// over the physical region (no two logical lines collide).
	for round := 0; round < 200; round++ {
		seen := make(map[uint64]bool)
		for l := uint64(0); l < 64; l++ {
			p := sg.Remap(isa.HeapBase + l*isa.LineSize)
			if p%isa.LineSize != 0 {
				t.Fatalf("remap broke alignment: %#x", p)
			}
			if p < isa.HeapBase || p >= isa.HeapBase+65*isa.LineSize {
				t.Fatalf("remap escaped region: %#x", p)
			}
			if seen[p] {
				t.Fatalf("round %d: collision at %#x", round, p)
			}
			seen[p] = true
		}
		for i := 0; i < 10; i++ {
			sg.OnWrite()
		}
	}
}

func TestStartGapOffsetPreserved(t *testing.T) {
	sg, _ := NewStartGap(isa.HeapBase, 16, 5)
	prop := func(line uint8, off uint8) bool {
		addr := isa.HeapBase + uint64(line%16)*isa.LineSize + uint64(off%isa.LineSize)
		p := sg.Remap(addr)
		return p%isa.LineSize == addr%isa.LineSize
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStartGapOutsideRegionUntouched(t *testing.T) {
	sg, _ := NewStartGap(isa.HeapBase, 16, 5)
	out := isa.HeapBase + 1<<20
	if sg.Remap(out) != out {
		t.Fatal("address outside region remapped")
	}
}

func TestStartGapSpreadsHotLine(t *testing.T) {
	cfg := config.Default().Mem
	st := &stats.Mem{}
	d := NewDevice(cfg, st)
	d.EnableEndurance()
	sg, _ := NewStartGap(isa.HeapBase, 64, 4)
	d.EnableWearLeveling(sg)

	// Hammer one logical line.
	hot := uint64(isa.HeapBase)
	const writes = 4000
	now := uint64(0)
	for i := 0; i < writes; i++ {
		now = d.Access(now, hot, true, stats.WriteData)
	}
	counts := d.WriteCounts()
	var maxCount uint64
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Without leveling the hot line would hold all 4000 writes. With
	// Start-Gap the maximum must be far below that.
	if maxCount > writes/4 {
		t.Fatalf("hottest physical line has %d of %d writes — leveling ineffective", maxCount, writes)
	}
	if len(counts) < 32 {
		t.Fatalf("writes spread over only %d lines", len(counts))
	}
	if sg.Moves() == 0 {
		t.Fatal("gap never moved")
	}
}

func TestStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(isa.HeapBase, 1, 10); err == nil {
		t.Error("accepted 1-line region")
	}
	if _, err := NewStartGap(isa.HeapBase, 16, 0); err == nil {
		t.Error("accepted psi=0")
	}
	if _, err := NewStartGap(isa.HeapBase+1, 16, 10); err == nil {
		t.Error("accepted unaligned base")
	}
}
