// Package provenance answers one question for every layer that records
// results: which code produced this? The answer is the VCS revision Go
// stamped into the binary at build time (debug.ReadBuildInfo), with a
// "-dirty" suffix when the working tree had uncommitted changes — the
// "code version that produced it" field of the result ledger, the
// result-store schema, and /healthz.
//
// Binaries built outside a VCS checkout (go test in a tarball, go run on
// a bare tree) carry no stamp; Revision then reports "unknown" rather
// than guessing, so a ledger never records a revision the binary cannot
// actually vouch for.
package provenance

import (
	"runtime/debug"
	"sync"
)

// Unknown is the revision reported when the binary carries no VCS stamp.
const Unknown = "unknown"

var (
	once sync.Once
	rev  string
)

// readBuildInfo is stubbed in tests to exercise the stamped and
// unstamped paths without rebuilding the binary.
var readBuildInfo = debug.ReadBuildInfo

// Revision returns the VCS revision baked into the running binary,
// suffixed with "-dirty" when the build tree had local modifications,
// or Unknown when the binary carries no stamp. The value is computed
// once and cached; it cannot change within a process.
func Revision() string {
	once.Do(func() { rev = revisionFrom(readBuildInfo) })
	return rev
}

// revisionFrom extracts the revision from one build-info source.
func revisionFrom(read func() (*debug.BuildInfo, bool)) string {
	info, ok := read()
	if !ok {
		return Unknown
	}
	var revision string
	var dirty bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision == "" {
		return Unknown
	}
	if dirty {
		return revision + "-dirty"
	}
	return revision
}
