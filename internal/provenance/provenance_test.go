package provenance

import (
	"runtime/debug"
	"testing"
)

func fakeInfo(settings map[string]string) func() (*debug.BuildInfo, bool) {
	return func() (*debug.BuildInfo, bool) {
		info := &debug.BuildInfo{}
		for k, v := range settings {
			info.Settings = append(info.Settings, debug.BuildSetting{Key: k, Value: v})
		}
		return info, true
	}
}

func TestRevisionFrom(t *testing.T) {
	cases := []struct {
		name     string
		settings map[string]string
		noInfo   bool
		want     string
	}{
		{name: "clean", settings: map[string]string{"vcs.revision": "abc123", "vcs.modified": "false"}, want: "abc123"},
		{name: "dirty", settings: map[string]string{"vcs.revision": "abc123", "vcs.modified": "true"}, want: "abc123-dirty"},
		{name: "no stamp", settings: map[string]string{}, want: Unknown},
		{name: "no build info", noInfo: true, want: Unknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			read := fakeInfo(tc.settings)
			if tc.noInfo {
				read = func() (*debug.BuildInfo, bool) { return nil, false }
			}
			if got := revisionFrom(read); got != tc.want {
				t.Fatalf("revisionFrom = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestRevisionIsStable(t *testing.T) {
	if a, b := Revision(), Revision(); a != b || a == "" {
		t.Fatalf("Revision unstable or empty: %q then %q", a, b)
	}
}
