package pstruct

import "repro/internal/heap"

// AVL is a persistent AVL tree (the AT benchmark: insert or delete nodes
// in 16 AVL trees). Nodes are 64-byte lines.
//
// Node layout: [0] key, [8] value, [16] left, [24] right, [32] height.
// Header layout: [0] root, [8] size.
type AVL struct {
	h   *heap.Heap
	hdr uint64
}

const (
	avKey    = 0
	avVal    = 8
	avLeft   = 16
	avRight  = 24
	avHeight = 32
)

// NewAVL allocates an empty tree.
func NewAVL(h *heap.Heap) *AVL {
	return &AVL{h: h, hdr: h.Alloc(64)}
}

// Size returns the number of nodes.
func (t *AVL) Size() uint64 { return t.h.Load(t.hdr + 8) }

func (t *AVL) height(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return t.h.Load(n + avHeight)
}

func (t *AVL) fixHeight(n uint64) {
	l, r := t.height(t.h.Load(n+avLeft)), t.height(t.h.Load(n+avRight))
	if l < r {
		l = r
	}
	t.h.Store(n+avHeight, l+1)
}

func (t *AVL) balance(n uint64) int64 {
	return int64(t.height(t.h.Load(n+avLeft))) - int64(t.height(t.h.Load(n+avRight)))
}

func (t *AVL) rotateRight(n uint64) uint64 {
	h := t.h
	l := h.Load(n + avLeft)
	touch(h, l)
	h.Store(n+avLeft, h.Load(l+avRight))
	h.Store(l+avRight, n)
	t.fixHeight(n)
	t.fixHeight(l)
	return l
}

func (t *AVL) rotateLeft(n uint64) uint64 {
	h := t.h
	r := h.Load(n + avRight)
	touch(h, r)
	h.Store(n+avRight, h.Load(r+avLeft))
	h.Store(r+avLeft, n)
	t.fixHeight(n)
	t.fixHeight(r)
	return r
}

func (t *AVL) rebalance(n uint64) uint64 {
	t.fixHeight(n)
	switch b := t.balance(n); {
	case b > 1:
		l := t.h.Load(n + avLeft)
		touch(t.h, l)
		if t.balance(l) < 0 {
			t.h.Store(n+avLeft, t.rotateLeft(l))
		}
		return t.rotateRight(n)
	case b < -1:
		r := t.h.Load(n + avRight)
		touch(t.h, r)
		if t.balance(r) > 0 {
			t.h.Store(n+avRight, t.rotateRight(r))
		}
		return t.rotateLeft(n)
	}
	return n
}

// Insert adds key/val, reporting whether a new node was created.
func (t *AVL) Insert(key, val uint64) bool {
	touch(t.h, t.hdr)
	root, added := t.insert(t.h.Load(t.hdr), key, val)
	t.h.Store(t.hdr, root)
	if added {
		t.h.Store(t.hdr+8, t.h.Load(t.hdr+8)+1)
	}
	return added
}

func (t *AVL) insert(n, key, val uint64) (uint64, bool) {
	h := t.h
	if n == 0 {
		nn := h.Alloc(64)
		h.Store(nn+avKey, key)
		h.Store(nn+avVal, val)
		h.Store(nn+avLeft, 0)
		h.Store(nn+avRight, 0)
		h.Store(nn+avHeight, 1)
		return nn, true
	}
	touch(h, n) // conservative: the whole search path may rebalance
	k := h.Load(n + avKey)
	var added bool
	switch {
	case key < k:
		var l uint64
		l, added = t.insert(h.Load(n+avLeft), key, val)
		h.Store(n+avLeft, l)
	case key > k:
		var r uint64
		r, added = t.insert(h.Load(n+avRight), key, val)
		h.Store(n+avRight, r)
	default:
		h.Store(n+avVal, val)
		return n, false
	}
	return t.rebalance(n), added
}

// Delete removes key, reporting whether it was present.
func (t *AVL) Delete(key uint64) bool {
	touch(t.h, t.hdr)
	root, removed := t.delete(t.h.Load(t.hdr), key)
	t.h.Store(t.hdr, root)
	if removed {
		t.h.Store(t.hdr+8, t.h.Load(t.hdr+8)-1)
	}
	return removed
}

func (t *AVL) delete(n, key uint64) (uint64, bool) {
	h := t.h
	if n == 0 {
		return 0, false
	}
	touch(h, n)
	k := h.Load(n + avKey)
	var removed bool
	switch {
	case key < k:
		var l uint64
		l, removed = t.delete(h.Load(n+avLeft), key)
		h.Store(n+avLeft, l)
	case key > k:
		var r uint64
		r, removed = t.delete(h.Load(n+avRight), key)
		h.Store(n+avRight, r)
	default:
		l, r := h.Load(n+avLeft), h.Load(n+avRight)
		if l == 0 || r == 0 {
			child := l
			if child == 0 {
				child = r
			}
			h.Free(n, 64)
			return child, true
		}
		// Replace with the in-order successor (min of right subtree).
		succ := r
		for {
			touch(h, succ)
			l := h.Load(succ + avLeft)
			if l == 0 {
				break
			}
			succ = l
		}
		sk, sv := h.Load(succ+avKey), h.Load(succ+avVal)
		nr, _ := t.delete(r, sk)
		h.Store(n+avKey, sk)
		h.Store(n+avVal, sv)
		h.Store(n+avRight, nr)
		return t.rebalance(n), true
	}
	if !removed {
		return n, false
	}
	return t.rebalance(n), true
}

// Lookup returns the value for key.
func (t *AVL) Lookup(key uint64) (uint64, bool) {
	h := t.h
	n := h.Load(t.hdr)
	for n != 0 {
		k := h.Load(n + avKey)
		switch {
		case key < k:
			n = h.Load(n + avLeft)
		case key > k:
			n = h.Load(n + avRight)
		default:
			return h.Load(n + avVal), true
		}
	}
	return 0, false
}

// Check verifies ordering, height bookkeeping and the AVL balance
// invariant, and that the stored size matches the node count.
func (t *AVL) Check() error {
	count, _, err := t.check(t.h.Load(t.hdr), 0, ^uint64(0))
	if err != nil {
		return err
	}
	if got := t.Size(); got != count {
		return errCount("avl size", got, count)
	}
	return nil
}

func (t *AVL) check(n, lo, hi uint64) (count, height uint64, err error) {
	if n == 0 {
		return 0, 0, nil
	}
	h := t.h
	k := h.Load(n + avKey)
	if k < lo || k > hi {
		return 0, 0, errf("avl key %d out of range [%d,%d]", k, lo, hi)
	}
	lc, lh, err := t.check(h.Load(n+avLeft), lo, k-1)
	if err != nil {
		return 0, 0, err
	}
	rc, rh, err := t.check(h.Load(n+avRight), k+1, hi)
	if err != nil {
		return 0, 0, err
	}
	hh := lh
	if rh > hh {
		hh = rh
	}
	hh++
	if got := h.Load(n + avHeight); got != hh {
		return 0, 0, errf("avl height of %d: stored %d, actual %d", k, got, hh)
	}
	if d := int64(lh) - int64(rh); d < -1 || d > 1 {
		return 0, 0, errf("avl imbalance %d at key %d", d, k)
	}
	return lc + rc + 1, hh, nil
}
