package pstruct

import "repro/internal/heap"

// BTree is a persistent B-tree of minimum degree 2 (a 2-3-4 tree), the BT
// benchmark. One 64-byte node holds the occupancy/leaf word, up to 3 keys
// and up to 4 children — the largest order that fits Table 2's 64-byte,
// line-aligned node.
//
// Node layout: [0] count|leaf<<32, [8..24] keys, [32..56] children.
// Header layout: [0] root, [8] size.
type BTree struct {
	h   *heap.Heap
	hdr uint64
}

const btDegree = 2 // minimum degree t: nodes hold t-1..2t-1 keys

const (
	btMeta  = 0
	btKeys  = 8
	btKids  = 32
	btLeafF = uint64(1) << 32
)

// NewBTree allocates an empty tree.
func NewBTree(h *heap.Heap) *BTree {
	t := &BTree{h: h, hdr: h.Alloc(64)}
	root := h.Alloc(64)
	h.Store(root+btMeta, btLeafF) // empty leaf
	h.Store(t.hdr, root)
	return t
}

// Size returns the number of keys.
func (t *BTree) Size() uint64 { return t.h.Load(t.hdr + 8) }

func (t *BTree) count(n uint64) int { return int(t.h.Load(n+btMeta) & 0xFFFFFFFF) }
func (t *BTree) leaf(n uint64) bool { return t.h.Load(n+btMeta)&btLeafF != 0 }

func (t *BTree) setMeta(n uint64, count int, leaf bool) {
	m := uint64(count)
	if leaf {
		m |= btLeafF
	}
	t.h.Store(n+btMeta, m)
}

func (t *BTree) key(n uint64, i int) uint64       { return t.h.Load(n + btKeys + uint64(i*8)) }
func (t *BTree) setKey(n uint64, i int, k uint64) { t.h.Store(n+btKeys+uint64(i*8), k) }
func (t *BTree) child(n uint64, i int) uint64     { return t.h.Load(n + btKids + uint64(i*8)) }
func (t *BTree) setChild(n uint64, i int, c uint64) {
	t.h.Store(n+btKids+uint64(i*8), c)
}

// Insert adds key, reporting whether it was absent.
func (t *BTree) Insert(key uint64) bool {
	root := t.h.Load(t.hdr)
	touch(t.h, t.hdr)
	touch(t.h, root)
	if t.count(root) == 2*btDegree-1 {
		nr := t.h.Alloc(64)
		t.setMeta(nr, 0, false)
		t.setChild(nr, 0, root)
		t.h.Store(t.hdr, nr)
		t.splitChild(nr, 0)
		root = nr
	}
	added := t.insertNonFull(root, key)
	if added {
		t.h.Store(t.hdr+8, t.Size()+1)
	}
	return added
}

// splitChild splits the full i-th child of n (n is non-full).
func (t *BTree) splitChild(n uint64, i int) {
	h := t.h
	touch(h, n)
	c := t.child(n, i)
	touch(h, c)
	nn := h.Alloc(64)
	leaf := t.leaf(c)
	// Move the top t-1 keys (and t children) of c to nn.
	t.setMeta(nn, btDegree-1, leaf)
	for j := 0; j < btDegree-1; j++ {
		t.setKey(nn, j, t.key(c, j+btDegree))
	}
	if !leaf {
		for j := 0; j < btDegree; j++ {
			t.setChild(nn, j, t.child(c, j+btDegree))
		}
	}
	mid := t.key(c, btDegree-1)
	t.setMeta(c, btDegree-1, leaf)
	// Shift n's keys/children right and insert mid/nn.
	cnt := t.count(n)
	for j := cnt; j > i; j-- {
		t.setKey(n, j, t.key(n, j-1))
		t.setChild(n, j+1, t.child(n, j))
	}
	t.setKey(n, i, mid)
	t.setChild(n, i+1, nn)
	t.setMeta(n, cnt+1, t.leaf(n))
}

func (t *BTree) insertNonFull(n, key uint64) bool {
	h := t.h
	for {
		touch(h, n)
		cnt := t.count(n)
		// Reject duplicates.
		i := cnt - 1
		for i >= 0 && key < t.key(n, i) {
			i--
		}
		if i >= 0 && key == t.key(n, i) {
			return false
		}
		if t.leaf(n) {
			for j := cnt - 1; j > i; j-- {
				t.setKey(n, j+1, t.key(n, j))
			}
			t.setKey(n, i+1, key)
			t.setMeta(n, cnt+1, true)
			return true
		}
		ci := i + 1
		c := t.child(n, ci)
		touch(h, c)
		if t.count(c) == 2*btDegree-1 {
			t.splitChild(n, ci)
			if key == t.key(n, ci) {
				return false
			}
			if key > t.key(n, ci) {
				ci++
			}
			c = t.child(n, ci)
		}
		n = c
	}
}

// Delete removes key, reporting whether it was present.
func (t *BTree) Delete(key uint64) bool {
	h := t.h
	touch(h, t.hdr)
	root := h.Load(t.hdr)
	removed := t.delete(root, key)
	// Shrink the root when it empties.
	if t.count(root) == 0 && !t.leaf(root) {
		nr := t.child(root, 0)
		h.Store(t.hdr, nr)
		h.Free(root, 64)
	}
	if removed {
		h.Store(t.hdr+8, t.Size()-1)
	}
	return removed
}

func (t *BTree) delete(n, key uint64) bool {
	h := t.h
	touch(h, n)
	cnt := t.count(n)
	i := 0
	for i < cnt && key > t.key(n, i) {
		i++
	}
	if t.leaf(n) {
		if i < cnt && key == t.key(n, i) {
			for j := i; j < cnt-1; j++ {
				t.setKey(n, j, t.key(n, j+1))
			}
			t.setMeta(n, cnt-1, true)
			return true
		}
		return false
	}
	if i < cnt && key == t.key(n, i) {
		y, z := t.child(n, i), t.child(n, i+1)
		touch(h, y)
		touch(h, z)
		switch {
		case t.count(y) >= btDegree:
			pred := t.maxKey(y)
			t.setKey(n, i, pred)
			return t.delete(y, pred)
		case t.count(z) >= btDegree:
			succ := t.minKey(z)
			t.setKey(n, i, succ)
			return t.delete(z, succ)
		default:
			t.mergeChildren(n, i)
			return t.delete(y, key)
		}
	}
	c := t.child(n, i)
	touch(h, c)
	if t.count(c) == btDegree-1 {
		c = t.fixChild(n, i)
	}
	return t.delete(c, key)
}

// fixChild ensures the i-th child of n has at least t keys before
// descending, borrowing from a sibling or merging. It returns the child to
// descend into.
func (t *BTree) fixChild(n uint64, i int) uint64 {
	h := t.h
	c := t.child(n, i)
	cnt := t.count(n)
	// Borrow from the left sibling.
	if i > 0 {
		l := t.child(n, i-1)
		touch(h, l)
		if t.count(l) >= btDegree {
			ccnt, lcnt := t.count(c), t.count(l)
			leaf := t.leaf(c)
			for j := ccnt - 1; j >= 0; j-- {
				t.setKey(c, j+1, t.key(c, j))
			}
			if !leaf {
				for j := ccnt; j >= 0; j-- {
					t.setChild(c, j+1, t.child(c, j))
				}
				t.setChild(c, 0, t.child(l, lcnt))
			}
			t.setKey(c, 0, t.key(n, i-1))
			t.setKey(n, i-1, t.key(l, lcnt-1))
			t.setMeta(c, ccnt+1, leaf)
			t.setMeta(l, lcnt-1, t.leaf(l))
			return c
		}
	}
	// Borrow from the right sibling.
	if i < cnt {
		r := t.child(n, i+1)
		touch(h, r)
		if t.count(r) >= btDegree {
			ccnt, rcnt := t.count(c), t.count(r)
			leaf := t.leaf(c)
			t.setKey(c, ccnt, t.key(n, i))
			t.setKey(n, i, t.key(r, 0))
			if !leaf {
				t.setChild(c, ccnt+1, t.child(r, 0))
			}
			for j := 0; j < rcnt-1; j++ {
				t.setKey(r, j, t.key(r, j+1))
			}
			if !t.leaf(r) {
				for j := 0; j < rcnt; j++ {
					t.setChild(r, j, t.child(r, j+1))
				}
			}
			t.setMeta(c, ccnt+1, leaf)
			t.setMeta(r, rcnt-1, t.leaf(r))
			return c
		}
	}
	// Merge with a sibling.
	if i < cnt {
		t.mergeChildren(n, i)
		return t.child(n, i)
	}
	t.mergeChildren(n, i-1)
	return t.child(n, i-1)
}

// mergeChildren merges child i, separator key i, and child i+1 into child
// i (both children have t-1 keys).
func (t *BTree) mergeChildren(n uint64, i int) {
	h := t.h
	c, r := t.child(n, i), t.child(n, i+1)
	touch(h, c)
	touch(h, r)
	leaf := t.leaf(c)
	t.setKey(c, btDegree-1, t.key(n, i))
	for j := 0; j < btDegree-1; j++ {
		t.setKey(c, j+btDegree, t.key(r, j))
	}
	if !leaf {
		for j := 0; j < btDegree; j++ {
			t.setChild(c, j+btDegree, t.child(r, j))
		}
	}
	t.setMeta(c, 2*btDegree-1, leaf)
	cnt := t.count(n)
	for j := i; j < cnt-1; j++ {
		t.setKey(n, j, t.key(n, j+1))
		t.setChild(n, j+1, t.child(n, j+2))
	}
	t.setMeta(n, cnt-1, t.leaf(n))
	h.Free(r, 64)
}

func (t *BTree) maxKey(n uint64) uint64 {
	for !t.leaf(n) {
		touch(t.h, n)
		n = t.child(n, t.count(n))
	}
	touch(t.h, n)
	return t.key(n, t.count(n)-1)
}

func (t *BTree) minKey(n uint64) uint64 {
	for !t.leaf(n) {
		touch(t.h, n)
		n = t.child(n, 0)
	}
	touch(t.h, n)
	return t.key(n, 0)
}

// Contains reports whether key is present.
func (t *BTree) Contains(key uint64) bool {
	n := t.h.Load(t.hdr)
	for {
		cnt := t.count(n)
		i := 0
		for i < cnt && key > t.key(n, i) {
			i++
		}
		if i < cnt && key == t.key(n, i) {
			return true
		}
		if t.leaf(n) {
			return false
		}
		n = t.child(n, i)
	}
}

// Check verifies key ordering, occupancy bounds, uniform leaf depth, and
// the stored size.
func (t *BTree) Check() error {
	root := t.h.Load(t.hdr)
	count, _, err := t.check(root, 1, ^uint64(0), true)
	if err != nil {
		return err
	}
	if got := t.Size(); got != count {
		return errCount("btree size", got, count)
	}
	return nil
}

func (t *BTree) check(n, lo, hi uint64, isRoot bool) (count uint64, depth int, err error) {
	cnt := t.count(n)
	if cnt > 2*btDegree-1 {
		return 0, 0, errf("btree node overfull (%d keys)", cnt)
	}
	if !isRoot && cnt < btDegree-1 {
		return 0, 0, errf("btree node underfull (%d keys)", cnt)
	}
	prev := lo
	for i := 0; i < cnt; i++ {
		k := t.key(n, i)
		if k < prev || k > hi {
			return 0, 0, errf("btree key %d out of range [%d,%d]", k, prev, hi)
		}
		prev = k + 1
	}
	if t.leaf(n) {
		return uint64(cnt), 1, nil
	}
	total := uint64(cnt)
	childLo := lo
	var d0 int
	for i := 0; i <= cnt; i++ {
		childHi := hi
		if i < cnt {
			childHi = t.key(n, i) - 1
		}
		c, d, err := t.check(t.child(n, i), childLo, childHi, false)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			d0 = d
		} else if d != d0 {
			return 0, 0, errf("btree uneven leaf depth (%d vs %d)", d, d0)
		}
		total += c
		if i < cnt {
			childLo = t.key(n, i) + 1
		}
	}
	return total, d0 + 1, nil
}
