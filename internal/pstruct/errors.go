package pstruct

import "fmt"

func errLoop(what string) error {
	return fmt.Errorf("pstruct: %s contains a cycle", what)
}

func errCount(what string, got, want uint64) error {
	return fmt.Errorf("pstruct: %s mismatch: got %d, want %d", what, got, want)
}

func errf(format string, args ...any) error {
	return fmt.Errorf("pstruct: "+format, args...)
}
