package pstruct

import "repro/internal/heap"

// HashMap is a persistent chained hash map (the HM benchmark: insert or
// delete entries in 16 hash maps). The bucket array is a persistent array
// of head pointers; chain nodes are 64-byte lines.
//
// Node layout: [0] key, [8] value, [16] next.
type HashMap struct {
	h       *heap.Heap
	buckets uint64
	nBkt    uint64
}

const (
	hmKey  = 0
	hmVal  = 8
	hmNext = 16
)

// NewHashMap allocates a map with nBuckets chains (rounded up to a power
// of two).
func NewHashMap(h *heap.Heap, nBuckets int) *HashMap {
	n := uint64(1)
	for n < uint64(nBuckets) {
		n <<= 1
	}
	return &HashMap{h: h, buckets: h.Alloc(int(n) * 8), nBkt: n}
}

func (m *HashMap) bucketAddr(key uint64) uint64 {
	// Fibonacci hashing spreads sequential keys.
	idx := (key * 0x9E3779B97F4A7C15) >> 32 & (m.nBkt - 1)
	return m.buckets + idx*8
}

// Insert adds key with value v, or updates the value when present. It
// reports whether a new entry was created.
func (m *HashMap) Insert(key, v uint64) bool {
	h := m.h
	ba := m.bucketAddr(key)
	touch(h, ba) // the bucket word's line
	n := h.Load(ba)
	for n != 0 {
		touch(h, n) // conservative: every visited chain node
		if h.Load(n+hmKey) == key {
			h.Store(n+hmVal, v)
			return false
		}
		n = h.Load(n + hmNext)
	}
	nn := h.Alloc(64)
	h.Store(nn+hmKey, key)
	h.Store(nn+hmVal, v)
	h.Store(nn+hmNext, h.Load(ba))
	h.Store(ba, nn)
	return true
}

// Delete removes key, reporting whether it was present.
func (m *HashMap) Delete(key uint64) bool {
	h := m.h
	ba := m.bucketAddr(key)
	touch(h, ba)
	prev := uint64(0)
	n := h.Load(ba)
	for n != 0 {
		touch(h, n)
		if h.Load(n+hmKey) == key {
			next := h.Load(n + hmNext)
			if prev == 0 {
				h.Store(ba, next)
			} else {
				h.Store(prev+hmNext, next)
			}
			h.Free(n, 64)
			return true
		}
		prev = n
		n = h.Load(n + hmNext)
	}
	return false
}

// Lookup returns the value for key.
func (m *HashMap) Lookup(key uint64) (uint64, bool) {
	h := m.h
	n := h.Load(m.bucketAddr(key))
	for n != 0 {
		if h.Load(n+hmKey) == key {
			return h.Load(n + hmVal), true
		}
		n = h.Load(n + hmNext)
	}
	return 0, false
}

// Len counts entries (functional; tests only).
func (m *HashMap) Len() uint64 {
	h := m.h
	var count uint64
	for i := uint64(0); i < m.nBkt; i++ {
		n := h.Load(m.buckets + i*8)
		for n != 0 {
			count++
			n = h.Load(n + hmNext)
		}
	}
	return count
}

// Check verifies that every chain terminates and keys hash to their
// bucket.
func (m *HashMap) Check() error {
	h := m.h
	for i := uint64(0); i < m.nBkt; i++ {
		ba := m.buckets + i*8
		n := h.Load(ba)
		var steps uint64
		for n != 0 {
			if m.bucketAddr(h.Load(n+hmKey)) != ba {
				return errf("hashmap key %d in wrong bucket", h.Load(n+hmKey))
			}
			if steps++; steps > 1<<24 {
				return errLoop("hashmap chain")
			}
			n = h.Load(n + hmNext)
		}
	}
	return nil
}
