package pstruct

import "repro/internal/heap"

// LinkedList is the Table 3 microbenchmark substrate: a circular list of
// nodes, each carrying a large payload of 8-byte elements. One transaction
// updates every element of one node, generating orders of magnitude more
// log entries per transaction than the Table 2 benchmarks (§7.3).
//
// Node layout: one 64-byte header line ([0] next, [8] element count)
// followed by the payload lines.
type LinkedList struct {
	h     *heap.Heap
	hdr   uint64 // [0] first node, [8] node count
	cur   uint64 // next node to update (round-robin)
	elems int
}

// NewLinkedList builds a circular list of nodes, each with elems 8-byte
// elements.
func NewLinkedList(h *heap.Heap, nodes, elems int) *LinkedList {
	l := &LinkedList{h: h, hdr: h.Alloc(64), elems: elems}
	var first, prev uint64
	for i := 0; i < nodes; i++ {
		n := h.Alloc(64 + elems*8)
		h.Store(n+8, uint64(elems))
		if prev != 0 {
			h.Store(prev, n)
		} else {
			first = n
		}
		prev = n
	}
	h.Store(prev, first) // close the cycle
	h.Store(l.hdr, first)
	h.Store(l.hdr+8, uint64(nodes))
	l.cur = first
	return l
}

// Elems returns the per-node element count.
func (l *LinkedList) Elems() int { return l.elems }

// UpdateNext updates every element of the next node in round-robin order
// with val; the whole node update is one transaction's work.
func (l *LinkedList) UpdateNext(val uint64) {
	h := l.h
	n := l.cur
	touch(h, n) // header line
	h.LogHint(n+64, l.elems*8)
	for i := 0; i < l.elems; i++ {
		addr := n + 64 + uint64(i*8)
		old := h.Load(addr)
		h.Store(addr, old+val)
	}
	l.cur = h.Load(n) // advance (volatile cursor; next pointer unchanged)
}

// Check verifies the list is circular with the declared node count and
// every node's elements share one update generation.
func (l *LinkedList) Check() error {
	h := l.h
	first := h.Load(l.hdr)
	want := h.Load(l.hdr + 8)
	n := first
	var count uint64
	for {
		count++
		gen := h.Load(n + 64)
		for i := 1; i < l.elems; i++ {
			if v := h.Load(n + 64 + uint64(i*8)); v != gen {
				return errf("linkedlist node %#x torn: element %d is %d, element 0 is %d", n, i, v, gen)
			}
		}
		n = h.Load(n)
		if n == first {
			break
		}
		if count > want {
			return errLoop("linkedlist")
		}
	}
	if count != want {
		return errCount("linkedlist nodes", count, want)
	}
	return nil
}
