// Package pstruct implements the persistent data structures of Table 2 —
// queue, hash map, string array, AVL tree, B-tree, and red-black tree —
// plus the linked-list large-transaction microbenchmark of Table 3. All of
// them operate on a simulated persistent heap (package heap): every field
// access is an 8-byte heap load or store, nodes are 64 bytes and
// line-aligned, and each structure declares its conservative undo-log set
// via heap.LogHint before modifying anything (the set software logging
// must persist in Figure 2's Step 1).
package pstruct

import "repro/internal/heap"

// touch declares one 64-byte node as potentially modified by the current
// transaction. The self-balancing trees touch every node they visit,
// matching §5.2: "our manual undo-logging assumes the worst and logs all
// nodes that could be modified by the operation".
func touch(h *heap.Heap, addr uint64) {
	h.LogHint(addr, 64)
}
