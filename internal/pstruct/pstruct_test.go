package pstruct

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/nvm"
)

func newHeap() *heap.Heap { return heap.New(0, nvm.NewStore()) }

// --------------------------------------------------------------- queue

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(newHeap())
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(i)
	}
	if err := q.Check(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
	if err := q.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueInterleaved(t *testing.T) {
	q := NewQueue(newHeap())
	var model []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			v := rng.Uint64()
			q.Enqueue(v)
			model = append(model, v)
		} else {
			v, ok := q.Dequeue()
			if !ok || v != model[0] {
				t.Fatalf("op %d: dequeue got (%d,%v), want %d", i, v, ok, model[0])
			}
			model = model[1:]
		}
	}
	if q.Len() != uint64(len(model)) {
		t.Fatalf("len %d, want %d", q.Len(), len(model))
	}
	if err := q.Check(); err != nil {
		t.Fatal(err)
	}
}

// -------------------------------------------------------------- hashmap

func TestHashMapBasic(t *testing.T) {
	m := NewHashMap(newHeap(), 16)
	if !m.Insert(1, 10) {
		t.Fatal("first insert reported update")
	}
	if m.Insert(1, 20) {
		t.Fatal("second insert reported new entry")
	}
	if v, ok := m.Lookup(1); !ok || v != 20 {
		t.Fatalf("lookup: got (%d,%v)", v, ok)
	}
	if !m.Delete(1) {
		t.Fatal("delete missed")
	}
	if m.Delete(1) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := m.Lookup(1); ok {
		t.Fatal("lookup after delete succeeded")
	}
}

// setOps drives any set-like structure against a Go map model.
func setModelTest(t *testing.T, insert func(k uint64) bool, remove func(k uint64) bool,
	contains func(k uint64) bool, size func() uint64, check func() error, ops int, keyRange int64) {
	t.Helper()
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < ops; i++ {
		k := uint64(rng.Int63n(keyRange)) + 1
		if rng.Intn(2) == 0 {
			got := insert(k)
			want := !model[k]
			if got != want {
				t.Fatalf("op %d: insert(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		} else {
			got := remove(k)
			if got != model[k] {
				t.Fatalf("op %d: remove(%d) = %v, want %v", i, k, got, model[k])
			}
			delete(model, k)
		}
		if i%256 == 0 {
			if err := check(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if size() != uint64(len(model)) {
		t.Fatalf("size %d, want %d", size(), len(model))
	}
	for k := range model {
		if !contains(k) {
			t.Fatalf("missing key %d", k)
		}
	}
	if err := check(); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapModel(t *testing.T) {
	m := NewHashMap(newHeap(), 64)
	setModelTest(t,
		func(k uint64) bool { return m.Insert(k, k*3) },
		m.Delete,
		func(k uint64) bool { _, ok := m.Lookup(k); return ok },
		m.Len, m.Check, 4000, 500)
}

// ----------------------------------------------------------------- avl

func TestAVLModel(t *testing.T) {
	tr := NewAVL(newHeap())
	setModelTest(t,
		func(k uint64) bool { return tr.Insert(k, k^7) },
		tr.Delete,
		func(k uint64) bool { _, ok := tr.Lookup(k); return ok },
		tr.Size, tr.Check, 6000, 700)
}

func TestAVLSequential(t *testing.T) {
	tr := NewAVL(newHeap())
	for k := uint64(1); k <= 512; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 512; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 256 {
		t.Fatalf("size %d, want 256", tr.Size())
	}
}

// ------------------------------------------------------------------ rb

func TestRBTreeModel(t *testing.T) {
	tr := NewRBTree(newHeap())
	setModelTest(t,
		func(k uint64) bool { return tr.Insert(k, k^7) },
		tr.Delete,
		func(k uint64) bool { _, ok := tr.Lookup(k); return ok },
		tr.Size, tr.Check, 6000, 700)
}

func TestRBTreeSequential(t *testing.T) {
	tr := NewRBTree(newHeap())
	for k := uint64(1); k <= 512; k++ {
		tr.Insert(k, k)
		if k%64 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after insert %d: %v", k, err)
			}
		}
	}
	for k := uint64(512); k >= 1; k-- {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		if k%64 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after delete %d: %v", k, err)
			}
		}
	}
}

// --------------------------------------------------------------- btree

func TestBTreeModel(t *testing.T) {
	tr := NewBTree(newHeap())
	setModelTest(t,
		tr.Insert,
		tr.Delete,
		tr.Contains,
		tr.Size, tr.Check, 6000, 700)
}

func TestBTreeSequential(t *testing.T) {
	tr := NewBTree(newHeap())
	for k := uint64(1); k <= 1000; k++ {
		if !tr.Insert(k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 1000; k++ {
		if !tr.Contains(k) {
			t.Fatalf("missing %d", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		if k%100 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after delete %d: %v", k, err)
			}
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size %d after deleting all", tr.Size())
	}
}

// quick.Check property: any random batch of inserts produces a tree whose
// in-order content equals the sorted unique keys (checked via Contains and
// invariants). Shared across the three trees.
func TestTreesQuickProperty(t *testing.T) {
	prop := func(keys []uint16) bool {
		uniq := make(map[uint64]bool)
		for _, k := range keys {
			uniq[uint64(k)+1] = true
		}
		avl := NewAVL(newHeap())
		rb := NewRBTree(newHeap())
		bt := NewBTree(newHeap())
		for _, k := range keys {
			kk := uint64(k) + 1
			avl.Insert(kk, kk)
			rb.Insert(kk, kk)
			bt.Insert(kk)
		}
		if avl.Check() != nil || rb.Check() != nil || bt.Check() != nil {
			return false
		}
		if avl.Size() != uint64(len(uniq)) || rb.Size() != uint64(len(uniq)) || bt.Size() != uint64(len(uniq)) {
			return false
		}
		var sorted []uint64
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, k := range sorted {
			if _, ok := avl.Lookup(k); !ok {
				return false
			}
			if _, ok := rb.Lookup(k); !ok {
				return false
			}
			if !bt.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// quick.Check property: insert-then-delete of a random subset leaves
// exactly the complement.
func TestTreesDeleteQuickProperty(t *testing.T) {
	prop := func(keys []uint16, del []uint16) bool {
		avl := NewAVL(newHeap())
		rb := NewRBTree(newHeap())
		bt := NewBTree(newHeap())
		model := make(map[uint64]bool)
		for _, k := range keys {
			kk := uint64(k)%512 + 1
			avl.Insert(kk, kk)
			rb.Insert(kk, kk)
			bt.Insert(kk)
			model[kk] = true
		}
		for _, k := range del {
			kk := uint64(k)%512 + 1
			a := avl.Delete(kk)
			r := rb.Delete(kk)
			b := bt.Delete(kk)
			want := model[kk]
			if a != want || r != want || b != want {
				return false
			}
			delete(model, kk)
		}
		if avl.Check() != nil || rb.Check() != nil || bt.Check() != nil {
			return false
		}
		return avl.Size() == uint64(len(model)) && rb.Size() == uint64(len(model)) && bt.Size() == uint64(len(model))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ----------------------------------------------------------- stringswap

func TestStringSwap(t *testing.T) {
	a := NewStringArray(newHeap(), 32, 256)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a.Swap(rng.Intn(32), rng.Intn(32))
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStringSwapSelf(t *testing.T) {
	a := NewStringArray(newHeap(), 4, 256)
	a.Swap(2, 2)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

// ----------------------------------------------------------- linkedlist

func TestLinkedList(t *testing.T) {
	l := NewLinkedList(newHeap(), 5, 128)
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		l.UpdateNext(1)
		if err := l.Check(); err != nil {
			t.Fatalf("after update %d: %v", i, err)
		}
	}
}

// ------------------------------------------------------------- hints

// TestHintsCoverStructuralWrites verifies the conservative-undo-set
// contract the software-logging scheme depends on: every transactional
// store to memory that was live before the transaction falls inside the
// transaction's declared hint ranges. (Writes to freshly allocated nodes
// are exempt; allocation is failure-safe, §5.2.)
func TestHintsCoverStructuralWrites(t *testing.T) {
	h := newHeap()
	tr := NewRBTree(h)
	rng := rand.New(rand.NewSource(17))
	live := make(map[uint64]bool) // lines live before the current txn
	// Populate.
	for i := 0; i < 400; i++ {
		tr.Insert(uint64(rng.Int63n(300))+1, 1)
	}
	h.SetRecording(true)
	for i := 0; i < 300; i++ {
		h.Begin(0)
		k := uint64(rng.Int63n(300)) + 1
		if rng.Intn(2) == 0 {
			tr.Insert(k, k)
		} else {
			tr.Delete(k)
		}
		txn := h.End()

		hinted := make(map[uint64]bool)
		for _, r := range txn.Hints {
			for a := r.Addr &^ 63; a < r.Addr+uint64(r.Size); a += 64 {
				hinted[a] = true
			}
		}
		// Lines allocated within this transaction are exempt.
		for _, r := range txn.Allocs {
			for a := r.Addr &^ 63; a < r.Addr+uint64(r.Size); a += 64 {
				hinted[a] = true
			}
		}
		for a := range txn.Pre {
			line := a &^ 63
			if live[line] && !hinted[line] {
				t.Fatalf("txn %d: store to live line %#x not covered by hints", i, line)
			}
		}
		for a := range txn.Pre {
			live[a&^63] = true
		}
		for _, r := range txn.Allocs {
			// freshly allocated lines are now live
			for a := r.Addr &^ 63; a < r.Addr+uint64(r.Size); a += 64 {
				live[a] = true
			}
		}
	}
}
