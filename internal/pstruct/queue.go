package pstruct

import "repro/internal/heap"

// Queue is a persistent FIFO linked-list queue (the QE benchmark:
// enqueue/dequeue in 8 queues). The header and each node occupy one
// 64-byte line.
//
// Node layout: [0] value, [8] next.
// Header layout: [0] head, [8] tail, [16] length.
type Queue struct {
	h   *heap.Heap
	hdr uint64
}

const (
	qVal  = 0
	qNext = 8

	qHead = 0
	qTail = 8
	qLen  = 16
)

// NewQueue allocates an empty queue on h.
func NewQueue(h *heap.Heap) *Queue {
	return &Queue{h: h, hdr: h.Alloc(64)}
}

// Len returns the number of elements.
func (q *Queue) Len() uint64 { return q.h.Load(q.hdr + qLen) }

// Enqueue appends v.
func (q *Queue) Enqueue(v uint64) {
	h := q.h
	tail := h.Load(q.hdr + qTail)
	// Conservative undo set: the header and the old tail node. The new
	// node needs no undo entry (allocation is failure-safe and the node
	// is unreachable until the header/tail update).
	touch(h, q.hdr)
	if tail != 0 {
		touch(h, tail)
	}
	n := h.Alloc(64)
	h.Store(n+qVal, v)
	h.Store(n+qNext, 0)
	if tail == 0 {
		h.Store(q.hdr+qHead, n)
	} else {
		h.Store(tail+qNext, n)
	}
	h.Store(q.hdr+qTail, n)
	h.Store(q.hdr+qLen, h.Load(q.hdr+qLen)+1)
}

// Dequeue removes and returns the oldest element; ok is false when empty.
func (q *Queue) Dequeue() (v uint64, ok bool) {
	h := q.h
	head := h.Load(q.hdr + qHead)
	if head == 0 {
		return 0, false
	}
	touch(h, q.hdr)
	touch(h, head)
	v = h.Load(head + qVal)
	next := h.Load(head + qNext)
	h.Store(q.hdr+qHead, next)
	if next == 0 {
		h.Store(q.hdr+qTail, 0)
	}
	h.Store(q.hdr+qLen, h.Load(q.hdr+qLen)-1)
	h.Free(head, 64)
	return v, true
}

// Check verifies the queue's structural invariants functionally (used by
// tests and the recovery verifier).
func (q *Queue) Check() error {
	h := q.h
	n := h.Load(q.hdr + qHead)
	var count, last uint64
	for n != 0 {
		count++
		last = n
		n = h.Load(n + qNext)
		if count > 1<<30 {
			return errLoop("queue")
		}
	}
	if got := h.Load(q.hdr + qLen); got != count {
		return errCount("queue length", got, count)
	}
	if tail := h.Load(q.hdr + qTail); tail != last {
		return errCount("queue tail", tail, last)
	}
	return nil
}
