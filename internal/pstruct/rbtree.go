package pstruct

import "repro/internal/heap"

// RBTree is a persistent red-black tree (the RT benchmark: insert or
// delete nodes in 16 RB trees). Nodes are 64-byte lines.
//
// Node layout: [0] key, [8] value, [16] left, [24] right, [32] parent,
// [40] color (0 black, 1 red).
// Header layout: [0] root, [8] size.
type RBTree struct {
	h   *heap.Heap
	hdr uint64
}

const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40

	black = 0
	red   = 1
)

// NewRBTree allocates an empty tree.
func NewRBTree(h *heap.Heap) *RBTree {
	return &RBTree{h: h, hdr: h.Alloc(64)}
}

// Size returns the number of nodes.
func (t *RBTree) Size() uint64 { return t.h.Load(t.hdr + 8) }

func (t *RBTree) color(n uint64) uint64 {
	if n == 0 {
		return black
	}
	return t.h.Load(n + rbColor)
}

func (t *RBTree) setColor(n, c uint64) {
	if n != 0 {
		t.h.Store(n+rbColor, c)
	}
}

func (t *RBTree) root() uint64 { return t.h.Load(t.hdr) }

func (t *RBTree) setRoot(n uint64) { t.h.Store(t.hdr, n) }

func (t *RBTree) rotateLeft(x uint64) {
	h := t.h
	y := h.Load(x + rbRight)
	touch(h, x)
	touch(h, y)
	yl := h.Load(y + rbLeft)
	h.Store(x+rbRight, yl)
	if yl != 0 {
		touch(h, yl)
		h.Store(yl+rbParent, x)
	}
	p := h.Load(x + rbParent)
	h.Store(y+rbParent, p)
	if p == 0 {
		t.setRoot(y)
	} else {
		touch(h, p)
		if h.Load(p+rbLeft) == x {
			h.Store(p+rbLeft, y)
		} else {
			h.Store(p+rbRight, y)
		}
	}
	h.Store(y+rbLeft, x)
	h.Store(x+rbParent, y)
}

func (t *RBTree) rotateRight(x uint64) {
	h := t.h
	y := h.Load(x + rbLeft)
	touch(h, x)
	touch(h, y)
	yr := h.Load(y + rbRight)
	h.Store(x+rbLeft, yr)
	if yr != 0 {
		touch(h, yr)
		h.Store(yr+rbParent, x)
	}
	p := h.Load(x + rbParent)
	h.Store(y+rbParent, p)
	if p == 0 {
		t.setRoot(y)
	} else {
		touch(h, p)
		if h.Load(p+rbRight) == x {
			h.Store(p+rbRight, y)
		} else {
			h.Store(p+rbLeft, y)
		}
	}
	h.Store(y+rbRight, x)
	h.Store(x+rbParent, y)
}

// Insert adds key/val, reporting whether a new node was created.
func (t *RBTree) Insert(key, val uint64) bool {
	h := t.h
	touch(h, t.hdr)
	var parent uint64
	n := t.root()
	for n != 0 {
		touch(h, n) // conservative: the search path may recolor/rotate
		parent = n
		k := h.Load(n + rbKey)
		switch {
		case key < k:
			n = h.Load(n + rbLeft)
		case key > k:
			n = h.Load(n + rbRight)
		default:
			h.Store(n+rbVal, val)
			return false
		}
	}
	nn := h.Alloc(64)
	h.Store(nn+rbKey, key)
	h.Store(nn+rbVal, val)
	h.Store(nn+rbLeft, 0)
	h.Store(nn+rbRight, 0)
	h.Store(nn+rbParent, parent)
	h.Store(nn+rbColor, red)
	if parent == 0 {
		t.setRoot(nn)
	} else if key < h.Load(parent+rbKey) {
		h.Store(parent+rbLeft, nn)
	} else {
		h.Store(parent+rbRight, nn)
	}
	t.insertFixup(nn)
	h.Store(t.hdr+8, h.Load(t.hdr+8)+1)
	return true
}

func (t *RBTree) insertFixup(z uint64) {
	h := t.h
	for {
		p := h.Load(z + rbParent)
		if p == 0 || t.color(p) == black {
			break
		}
		touch(h, p)
		g := h.Load(p + rbParent)
		touch(h, g)
		if p == h.Load(g+rbLeft) {
			u := h.Load(g + rbRight)
			if t.color(u) == red {
				touch(h, u)
				t.setColor(p, black)
				t.setColor(u, black)
				t.setColor(g, red)
				z = g
				continue
			}
			if z == h.Load(p+rbRight) {
				z = p
				t.rotateLeft(z)
				p = h.Load(z + rbParent)
				g = h.Load(p + rbParent)
			}
			t.setColor(p, black)
			t.setColor(g, red)
			t.rotateRight(g)
		} else {
			u := h.Load(g + rbLeft)
			if t.color(u) == red {
				touch(h, u)
				t.setColor(p, black)
				t.setColor(u, black)
				t.setColor(g, red)
				z = g
				continue
			}
			if z == h.Load(p+rbLeft) {
				z = p
				t.rotateRight(z)
				p = h.Load(z + rbParent)
				g = h.Load(p + rbParent)
			}
			t.setColor(p, black)
			t.setColor(g, red)
			t.rotateLeft(g)
		}
	}
	t.setColor(t.root(), black)
}

// transplant replaces subtree u with subtree v.
func (t *RBTree) transplant(u, v uint64) {
	h := t.h
	p := h.Load(u + rbParent)
	if p == 0 {
		t.setRoot(v)
	} else {
		touch(h, p)
		if h.Load(p+rbLeft) == u {
			h.Store(p+rbLeft, v)
		} else {
			h.Store(p+rbRight, v)
		}
	}
	if v != 0 {
		touch(h, v)
		h.Store(v+rbParent, p)
	}
}

// Delete removes key, reporting whether it was present.
func (t *RBTree) Delete(key uint64) bool {
	h := t.h
	touch(h, t.hdr)
	z := t.root()
	for z != 0 {
		touch(h, z)
		k := h.Load(z + rbKey)
		if key < k {
			z = h.Load(z + rbLeft)
		} else if key > k {
			z = h.Load(z + rbRight)
		} else {
			break
		}
	}
	if z == 0 {
		return false
	}

	y := z
	yColor := t.color(y)
	var x, xParent uint64
	switch {
	case h.Load(z+rbLeft) == 0:
		x = h.Load(z + rbRight)
		xParent = h.Load(z + rbParent)
		t.transplant(z, x)
	case h.Load(z+rbRight) == 0:
		x = h.Load(z + rbLeft)
		xParent = h.Load(z + rbParent)
		t.transplant(z, x)
	default:
		// Successor: minimum of the right subtree.
		y = h.Load(z + rbRight)
		for {
			touch(h, y)
			l := h.Load(y + rbLeft)
			if l == 0 {
				break
			}
			y = l
		}
		yColor = t.color(y)
		x = h.Load(y + rbRight)
		if h.Load(y+rbParent) == z {
			xParent = y
		} else {
			xParent = h.Load(y + rbParent)
			t.transplant(y, x)
			zr := h.Load(z + rbRight)
			h.Store(y+rbRight, zr)
			touch(h, zr)
			h.Store(zr+rbParent, y)
		}
		t.transplant(z, y)
		zl := h.Load(z + rbLeft)
		h.Store(y+rbLeft, zl)
		touch(h, zl)
		h.Store(zl+rbParent, y)
		t.setColor(y, t.color(z))
	}
	h.Free(z, 64)
	if yColor == black {
		t.deleteFixup(x, xParent)
	}
	h.Store(t.hdr+8, h.Load(t.hdr+8)-1)
	return true
}

func (t *RBTree) deleteFixup(x, xParent uint64) {
	h := t.h
	for x != t.root() && t.color(x) == black {
		if xParent == 0 {
			break
		}
		touch(h, xParent)
		if x == h.Load(xParent+rbLeft) {
			w := h.Load(xParent + rbRight)
			touch(h, w)
			if t.color(w) == red {
				t.setColor(w, black)
				t.setColor(xParent, red)
				t.rotateLeft(xParent)
				w = h.Load(xParent + rbRight)
				touch(h, w)
			}
			if t.color(h.Load(w+rbLeft)) == black && t.color(h.Load(w+rbRight)) == black {
				t.setColor(w, red)
				x = xParent
				xParent = h.Load(x + rbParent)
			} else {
				if t.color(h.Load(w+rbRight)) == black {
					wl := h.Load(w + rbLeft)
					touch(h, wl)
					t.setColor(wl, black)
					t.setColor(w, red)
					t.rotateRight(w)
					w = h.Load(xParent + rbRight)
					touch(h, w)
				}
				t.setColor(w, t.color(xParent))
				t.setColor(xParent, black)
				wr := h.Load(w + rbRight)
				touch(h, wr)
				t.setColor(wr, black)
				t.rotateLeft(xParent)
				x = t.root()
				xParent = 0
			}
		} else {
			w := h.Load(xParent + rbLeft)
			touch(h, w)
			if t.color(w) == red {
				t.setColor(w, black)
				t.setColor(xParent, red)
				t.rotateRight(xParent)
				w = h.Load(xParent + rbLeft)
				touch(h, w)
			}
			if t.color(h.Load(w+rbRight)) == black && t.color(h.Load(w+rbLeft)) == black {
				t.setColor(w, red)
				x = xParent
				xParent = h.Load(x + rbParent)
			} else {
				if t.color(h.Load(w+rbLeft)) == black {
					wr := h.Load(w + rbRight)
					touch(h, wr)
					t.setColor(wr, black)
					t.setColor(w, red)
					t.rotateLeft(w)
					w = h.Load(xParent + rbLeft)
					touch(h, w)
				}
				t.setColor(w, t.color(xParent))
				t.setColor(xParent, black)
				wl := h.Load(w + rbLeft)
				touch(h, wl)
				t.setColor(wl, black)
				t.rotateRight(xParent)
				x = t.root()
				xParent = 0
			}
		}
	}
	if x != 0 {
		touch(t.h, x)
	}
	t.setColor(x, black)
}

// Lookup returns the value for key.
func (t *RBTree) Lookup(key uint64) (uint64, bool) {
	h := t.h
	n := t.root()
	for n != 0 {
		k := h.Load(n + rbKey)
		switch {
		case key < k:
			n = h.Load(n + rbLeft)
		case key > k:
			n = h.Load(n + rbRight)
		default:
			return h.Load(n + rbVal), true
		}
	}
	return 0, false
}

// Check verifies ordering, parent pointers, the red-red exclusion and the
// equal-black-height invariant, and the stored size.
func (t *RBTree) Check() error {
	root := t.root()
	if t.color(root) != black {
		return errf("rbtree root is red")
	}
	if root != 0 && t.h.Load(root+rbParent) != 0 {
		return errf("rbtree root has a parent")
	}
	count, _, err := t.check(root, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if got := t.Size(); got != count {
		return errCount("rbtree size", got, count)
	}
	return nil
}

func (t *RBTree) check(n, lo, hi uint64) (count, blackHeight uint64, err error) {
	if n == 0 {
		return 0, 1, nil
	}
	h := t.h
	k := h.Load(n + rbKey)
	if k < lo || k > hi {
		return 0, 0, errf("rbtree key %d out of range [%d,%d]", k, lo, hi)
	}
	l, r := h.Load(n+rbLeft), h.Load(n+rbRight)
	if t.color(n) == red && (t.color(l) == red || t.color(r) == red) {
		return 0, 0, errf("rbtree red-red violation at key %d", k)
	}
	for _, ch := range []uint64{l, r} {
		if ch != 0 && h.Load(ch+rbParent) != n {
			return 0, 0, errf("rbtree bad parent pointer under key %d", k)
		}
	}
	lc, lb, err := t.check(l, lo, k-1)
	if err != nil {
		return 0, 0, err
	}
	rc, rb, err := t.check(r, k+1, hi)
	if err != nil {
		return 0, 0, err
	}
	if lb != rb {
		return 0, 0, errf("rbtree black-height mismatch at key %d (%d vs %d)", k, lb, rb)
	}
	bh := lb
	if t.color(n) == black {
		bh++
	}
	return lc + rc + 1, bh, nil
}
