package pstruct

import "repro/internal/heap"

// StringArray is the SS benchmark substrate: an array of fixed-size
// strings (256 bytes each in Table 2); the operation swaps two strings.
type StringArray struct {
	h       *heap.Heap
	base    uint64
	n       int
	strSize int
}

// NewStringArray allocates n strings of strSize bytes, each initialized to
// a distinct pattern.
func NewStringArray(h *heap.Heap, n, strSize int) *StringArray {
	a := &StringArray{h: h, base: h.Alloc(n * strSize), n: n, strSize: strSize}
	for i := 0; i < n; i++ {
		addr := a.addr(i)
		for w := 0; w < strSize/8; w++ {
			h.Store(addr+uint64(w*8), uint64(i)<<16|uint64(w))
		}
	}
	return a
}

func (a *StringArray) addr(i int) uint64 { return a.base + uint64(i*a.strSize) }

// Len returns the number of strings.
func (a *StringArray) Len() int { return a.n }

// Swap exchanges strings i and j word by word.
func (a *StringArray) Swap(i, j int) {
	h := a.h
	ai, aj := a.addr(i), a.addr(j)
	h.LogHint(ai, a.strSize)
	h.LogHint(aj, a.strSize)
	for w := 0; w < a.strSize/8; w++ {
		off := uint64(w * 8)
		vi := h.Load(ai + off)
		vj := h.Load(aj + off)
		h.Store(ai+off, vj)
		h.Store(aj+off, vi)
	}
}

// Word returns word w of string i (tests).
func (a *StringArray) Word(i, w int) uint64 {
	return a.h.Load(a.addr(i) + uint64(w*8))
}

// Check verifies that the array still holds a permutation of the initial
// strings (each string's words share a consistent string tag).
func (a *StringArray) Check() error {
	seen := make(map[uint64]bool, a.n)
	for i := 0; i < a.n; i++ {
		tag := a.Word(i, 0) >> 16
		for w := 0; w < a.strSize/8; w++ {
			v := a.Word(i, w)
			if v>>16 != tag || v&0xFFFF != uint64(w) {
				return errf("stringswap: string %d torn at word %d (tag %d, got %#x)", i, w, tag, v)
			}
		}
		if seen[tag] {
			return errf("stringswap: duplicate string tag %d", tag)
		}
		seen[tag] = true
	}
	return nil
}
