package recovery_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// crashSetup builds a small machine/workload pair for crash testing.
func crashSetup(t *testing.T, kind workload.Kind) (*workload.Workload, config.Config, *recovery.Oracle) {
	t.Helper()
	p := workload.Params{Threads: 2, InitOps: 256, SimOps: 40, Seed: 11,
		SSItems: 256, SSStrSize: 256, ListNodes: 4, ListElems: 64}
	w, err := workload.Build(kind, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.Cores = p.Threads
	return w, cfg, recovery.NewOracle(w)
}

func newSystem(t *testing.T, w *workload.Workload, cfg config.Config, scheme core.Scheme) *core.System {
	t.Helper()
	traces, err := logging.Generate(w, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// committedCounts extracts per-core commit counts.
func committedCounts(sys *core.System) []int {
	commits := sys.Commits()
	counts := make([]int, len(commits))
	for i, cs := range commits {
		counts[i] = len(cs)
	}
	return counts
}

// TestCrashRecoveryAtomicity walks every failure-safe scheme forward in
// small steps, and at each step extracts a crash image, runs recovery, and
// verifies the durable-transaction property: the recovered persistent
// state equals the state after a prefix of each thread's transactions.
func TestCrashRecoveryAtomicity(t *testing.T) {
	kinds := []workload.Kind{workload.Queue, workload.HashMap, workload.AVLTree, workload.RBTree, workload.BTree, workload.StringSwap}
	if testing.Short() {
		kinds = kinds[:2]
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.Abbrev(), func(t *testing.T) {
			w, cfg, oracle := crashSetup(t, kind)
			for _, scheme := range []core.Scheme{core.PMEM, core.PMEMPcommit, core.ATOM, core.Proteus, core.ProteusNoLWR} {
				scheme := scheme
				t.Run(scheme.String(), func(t *testing.T) {
					sys := newSystem(t, w, cfg, scheme)
					points := 0
					for !sys.Finished() {
						sys.Step(997)
						img := sys.CrashImage()
						if _, err := recovery.Recover(img, scheme, cfg.Cores); err != nil {
							t.Fatalf("cycle %d: recovery failed: %v", sys.Cycle(), err)
						}
						verify := oracle.VerifyPrefix
						if scheme == core.PMEM || scheme == core.PMEMPcommit {
							verify = oracle.VerifyPrefixSW
						}
						if _, err := verify(img, committedCounts(sys)); err != nil {
							t.Fatalf("cycle %d: %v", sys.Cycle(), err)
						}
						points++
					}
					if points < 5 {
						t.Fatalf("only %d crash points sampled; run too short for coverage", points)
					}
				})
			}
		})
	}
}

// TestNoLogIsNotFailureSafe documents that the ideal PMEM+nolog case tears
// transactions: at least one crash point must leave state that matches no
// transaction prefix.
func TestNoLogIsNotFailureSafe(t *testing.T) {
	w, cfg, oracle := crashSetup(t, workload.StringSwap)
	sys := newSystem(t, w, cfg, core.PMEMNoLog)
	torn := false
	for !sys.Finished() && !torn {
		sys.Step(97)
		img := sys.CrashImage()
		if _, err := oracle.VerifyPrefix(img, committedCounts(sys)); err != nil {
			torn = true
		}
	}
	if !torn {
		t.Error("PMEM+nolog never tore a transaction; the failure-safety tests would be vacuous")
	}
}

// TestRecoveryIdempotent checks that running recovery twice is safe (a
// second crash during recovery).
func TestRecoveryIdempotent(t *testing.T) {
	w, cfg, oracle := crashSetup(t, workload.RBTree)
	full := newSystem(t, w, cfg, core.Proteus)
	full.Run(0)
	sys := newSystem(t, w, cfg, core.Proteus)
	sys.Step(full.Cycle() / 2)
	img := sys.CrashImage()
	if _, err := recovery.Recover(img, core.Proteus, cfg.Cores); err != nil {
		t.Fatal(err)
	}
	if _, err := recovery.Recover(img, core.Proteus, cfg.Cores); err != nil {
		t.Fatalf("second recovery pass failed: %v", err)
	}
	if _, err := oracle.VerifyPrefix(img, committedCounts(sys)); err != nil {
		t.Fatalf("state after double recovery: %v", err)
	}
}
