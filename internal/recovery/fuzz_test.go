package recovery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
)

// TestRecoveryRobustToGarbageImages: recovery over images containing
// random bytes in the log areas must terminate without panicking for
// every scheme — a recovery routine that crashes on a corrupt log is
// itself a failure-safety bug.
func TestRecoveryRobustToGarbageImages(t *testing.T) {
	prop := func(seed int64, blocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		img := nvm.NewStore()
		for t := 0; t < 2; t++ {
			base, limit := isa.LogWindow(t)
			for i := 0; i < int(blocks)%64+1; i++ {
				line := base + uint64(rng.Int63n(int64((limit-base)/isa.LineSize)))*isa.LineSize
				buf := make([]byte, isa.LineSize)
				rng.Read(buf)
				img.Write(line, buf)
			}
			// Random logFlag too.
			img.WriteUint64(logfmt.LogFlagAddr(t), rng.Uint64()&0xFFFF_0000_0000_00FF)
		}
		for _, s := range []core.Scheme{core.Proteus, core.ProteusNoLWR, core.ATOM, core.PMEMNoLog} {
			if _, err := Recover(img.Snapshot(), s, 2); err != nil {
				// Errors are acceptable (corruption detected); panics are
				// not — quick.Check would surface them as test failures.
				continue
			}
		}
		// The SW protocol may legitimately report corruption; it must not
		// panic either.
		_, _ = Recover(img.Snapshot(), core.PMEM, 2)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryHalfTornEntries: entries with valid flags but garbage
// payloads apply without panicking and only touch persistent space.
func TestRecoveryHalfTornEntries(t *testing.T) {
	prop := func(from uint64, tx uint32, seq uint64) bool {
		img := nvm.NewStore()
		base, _ := isa.LogWindow(0)
		// Constrain log-from into the persistent heap so the entry is
		// plausible; recovery applies it blindly (it trusts its own log).
		hb, hl := isa.HeapWindow(0)
		e := logfmt.ProteusEntry{From: hb + from%(hl-hb-64), Tx: tx%8 + 1, Seq: seq}
		line := logfmt.EncodeProteus(e)
		img.Write(base, line[:])
		res, err := Recover(img, core.Proteus, 1)
		if err != nil {
			return false
		}
		return res.EntriesApplied == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
