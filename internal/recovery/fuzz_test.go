package recovery

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
)

// FuzzRecoverGarbageLog: recovery over images containing random bytes in
// the log areas must terminate for every scheme, and any error it returns
// must be a typed corruption detection — a recovery routine that panics
// on a corrupt log, or fails with an untyped internal error, is itself a
// failure-safety bug.
//
// Run with `go test -fuzz=FuzzRecoverGarbageLog ./internal/recovery`;
// under plain `go test` the checked-in corpus in testdata/fuzz acts as a
// regression suite.
func FuzzRecoverGarbageLog(f *testing.F) {
	f.Add(int64(1), uint64(3))
	f.Add(int64(42), uint64(63))
	f.Add(int64(-7), uint64(0))
	f.Fuzz(func(t *testing.T, seed int64, blocks uint64) {
		rng := rand.New(rand.NewSource(seed))
		img := nvm.NewStore()
		for th := 0; th < 2; th++ {
			base, limit := isa.LogWindow(th)
			for i := 0; i < int(blocks%64)+1; i++ {
				line := base + uint64(rng.Int63n(int64((limit-base)/isa.LineSize)))*isa.LineSize
				buf := make([]byte, isa.LineSize)
				rng.Read(buf)
				img.Write(line, buf)
			}
			// Random logFlag too.
			img.WriteUint64(logfmt.LogFlagAddr(th), rng.Uint64()&0xFFFF_0000_0000_00FF)
		}
		for _, s := range []core.Scheme{core.PMEM, core.Proteus, core.ProteusNoLWR, core.ATOM, core.PMEMNoLog} {
			if _, err := Recover(img.Snapshot(), s, 2); err != nil && !IsDetectedCorruption(err) {
				t.Fatalf("scheme %v: garbage log produced an untyped error: %v", s, err)
			}
		}
	})
}

// FuzzRecoverTornFlag: a software-logging crash image whose logFlag
// claims in-flight entries, with one log line torn (only a prefix of its
// 8-byte words persisted), must either recover cleanly or detect the
// damage with a typed error. An untorn image must always recover and
// apply exactly the flagged entry count.
func FuzzRecoverTornFlag(f *testing.F) {
	f.Add(uint64(2), uint64(0), uint64(8), int64(11))
	f.Add(uint64(4), uint64(3), uint64(3), int64(5))
	f.Add(uint64(1), uint64(1), uint64(0), int64(-2))
	f.Fuzz(func(t *testing.T, entries, tearLine, tearWords uint64, seed int64) {
		n := int(entries%4) + 1
		rng := rand.New(rand.NewSource(seed))
		img := nvm.NewStore()
		base, _ := isa.LogWindow(0)
		hb, hl := isa.HeapWindow(0)
		heapLines := (hl - hb) / isa.LineSize
		const tx = 7
		for i := 0; i < n; i++ {
			var data [isa.LineSize]byte
			rng.Read(data[:])
			from := hb + uint64(rng.Int63n(int64(heapLines)))*isa.LineSize
			meta := logfmt.EncodePairMeta(logfmt.PairEntry{
				From: from, Tx: tx, Len: isa.LineSize,
				DataCRC: logfmt.PairDataCRC(data[:]),
			})
			img.Write(base+uint64(i)*logfmt.PairEntrySize, meta[:])
			img.Write(base+uint64(i)*logfmt.PairEntrySize+isa.LineSize, data[:])
		}
		img.WriteUint64(logfmt.LogFlagAddr(0), logfmt.PackLogFlag(tx, n))

		kept := int(tearWords % 9) // persisted 8-byte words of the torn line
		torn := kept < 8
		if torn {
			// Tear one of the 2n log lines (meta or data): the suffix
			// beyond the persisted prefix never reached NVM.
			line := base + (tearLine%uint64(2*n))*isa.LineSize
			buf := img.Read(line, isa.LineSize)
			for b := kept * 8; b < isa.LineSize; b++ {
				buf[b] = 0
			}
			img.Write(line, buf)
		}

		res, err := Recover(img, core.PMEM, 1)
		if err != nil {
			if !IsDetectedCorruption(err) {
				t.Fatalf("torn log produced an untyped error: %v", err)
			}
			return
		}
		if !torn && res.EntriesApplied != n {
			t.Fatalf("untorn log: applied %d entries, flag said %d", res.EntriesApplied, n)
		}
		if flag := img.ReadUint64(logfmt.LogFlagAddr(0)); flag != 0 {
			t.Fatalf("recovery succeeded but left logFlag %#x set", flag)
		}
	})
}
