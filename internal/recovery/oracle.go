package recovery

import (
	"fmt"
	"sort"

	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/nvm"
	"repro/internal/workload"
)

// Oracle knows the functional state the persistent heap must be in after
// any prefix of each thread's transactions, built from the workload's
// initialization image and recorded write sets. It verifies the core
// durable-transaction property: after a crash and recovery, each thread's
// persistent state equals the state after some prefix of its transactions
// — every transaction is all-or-nothing, and no committed transaction is
// lost except possibly the very last one in flight at the crash.
type Oracle struct {
	init *nvm.Store
	txns [][]*heap.Txn
	// domain is the per-thread set of words any transaction can write or
	// roll back (write sets widened to 32-byte blocks, plus hinted
	// lines): the addresses recovery is allowed to touch and the verifier
	// compares.
	domain [][]uint64
	// uncovered maps, per thread, a word to the (1-based) transaction
	// indexes that wrote it without declaring it in their undo-log hints
	// — writes to freshly allocated memory, which the paper's
	// failure-safe-allocation assumption (§5.2) exempts from undo
	// logging. Software-logging verification treats such words as
	// don't-care when one of those transactions may have executed past
	// the verified prefix.
	uncovered []map[uint64][]int
}

// NewOracle builds the oracle for a recorded workload.
func NewOracle(w *workload.Workload) *Oracle {
	o := &Oracle{init: w.InitImage}
	for _, h := range w.Heaps {
		o.txns = append(o.txns, h.Txns)
		seen := make(map[uint64]struct{})
		var words []uint64
		add := func(addr uint64) {
			if _, ok := seen[addr]; !ok {
				seen[addr] = struct{}{}
				words = append(words, addr)
			}
		}
		unc := make(map[uint64][]int)
		for i, t := range h.Txns {
			hinted := make(map[uint64]struct{})
			for _, r := range t.Hints {
				for a := isa.LineAddr(r.Addr); a < r.Addr+uint64(r.Size); a += 8 {
					hinted[a] = struct{}{}
				}
			}
			for a := range t.Pre {
				// Hardware logging restores whole 32-byte blocks.
				b := isa.LogBlockAddr(a)
				for w := uint64(0); w < isa.LogBlockSize; w += 8 {
					add(b + w)
				}
				if _, ok := hinted[a]; !ok {
					unc[a] = append(unc[a], i+1)
				}
			}
			for a := range hinted {
				add(a)
			}
		}
		// Sort so verification scans (and reports first mismatches) in
		// ascending address order: diagnostics stay deterministic across
		// processes despite the map-ordered build above.
		sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
		o.domain = append(o.domain, words)
		o.uncovered = append(o.uncovered, unc)
	}
	return o
}

// VerifyFinal checks that img holds the state after all transactions of
// every thread (the no-crash end state).
func (o *Oracle) VerifyFinal(img *nvm.Store) error {
	for t := range o.txns {
		if err := o.verifyThreadAt(img, t, len(o.txns[t]), false); err != nil {
			return err
		}
	}
	return nil
}

// VerifyPrefix checks that img is consistent with committed[t] durable
// transactions on each thread, tolerating one extra commit (the commit
// point may fall between the durability action and the simulator's commit
// record). It returns the prefix length matched per thread. Every written
// word is checked exactly — the guarantee hardware logging provides.
func (o *Oracle) VerifyPrefix(img *nvm.Store, committed []int) ([]int, error) {
	return o.verifyPrefix(img, committed, false)
}

// VerifyPrefixSW is VerifyPrefix for software undo logging, which per the
// paper's failure-safe-allocation assumption does not log writes to
// freshly allocated memory: words whose only post-prefix writers are such
// uncovered writes may legitimately hold clobbered values after rollback
// (the memory is free; the structure is consistent).
func (o *Oracle) VerifyPrefixSW(img *nvm.Store, committed []int) ([]int, error) {
	return o.verifyPrefix(img, committed, true)
}

func (o *Oracle) verifyPrefix(img *nvm.Store, committed []int, sw bool) ([]int, error) {
	matched := make([]int, len(o.txns))
	for t := range o.txns {
		n := 0
		if t < len(committed) {
			n = committed[t]
		}
		var firstErr error
		ok := false
		for _, m := range []int{n, n + 1} {
			if m > len(o.txns[t]) {
				break
			}
			if err := o.verifyThreadAt(img, t, m, sw); err == nil {
				matched[t] = m
				ok = true
				break
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if !ok {
			return nil, fmt.Errorf("recovery: thread %d state matches neither %d nor %d committed transactions: %w",
				t, n, n+1, firstErr)
		}
	}
	return matched, nil
}

// verifyThreadAt checks thread t's domain words against the state after m
// transactions. In sw mode, words with uncovered writes by transactions
// beyond the prefix are don't-care.
func (o *Oracle) verifyThreadAt(img *nvm.Store, t, m int, sw bool) error {
	state := make(map[uint64]uint64)
	for i := 0; i < m; i++ {
		for a, v := range o.txns[t][i].Post {
			state[a] = v
		}
	}
words:
	for _, a := range o.domain[t] {
		want, ok := state[a]
		if !ok {
			want = o.init.ReadUint64(a)
		}
		got := img.ReadUint64(a)
		if got == want {
			continue
		}
		if sw {
			for _, j := range o.uncovered[t][a] {
				if j > m {
					continue words // clobbered fresh allocation; free memory
				}
			}
		}
		return fmt.Errorf("word %#x: got %#x, want %#x (after %d txns)", a, got, want, m)
	}
	return nil
}

// ThreadStatus reports one thread's verification outcome.
type ThreadStatus struct {
	Thread    int
	Committed int    // prefix length the simulator recorded
	Matched   int    // prefix length the image matches; -1 on mismatch
	Mismatch  string // first divergent word when Matched < 0
}

// OK reports whether the thread's state verified.
func (s ThreadStatus) OK() bool { return s.Matched >= 0 }

// Report verifies every thread and returns a status per thread, rather
// than stopping at the first mismatch as VerifyPrefix does. It exists for
// diagnostics: a crash-campaign reproducer or proteus-recover run wants
// the full per-thread picture of a failed image.
func (o *Oracle) Report(img *nvm.Store, committed []int, sw bool) []ThreadStatus {
	out := make([]ThreadStatus, len(o.txns))
	for t := range o.txns {
		n := 0
		if t < len(committed) {
			n = committed[t]
		}
		st := ThreadStatus{Thread: t, Committed: n, Matched: -1}
		for _, m := range []int{n, n + 1} {
			if m > len(o.txns[t]) {
				break
			}
			if err := o.verifyThreadAt(img, t, m, sw); err == nil {
				st.Matched = m
				break
			} else if st.Mismatch == "" {
				st.Mismatch = err.Error()
			}
		}
		out[t] = st
	}
	return out
}

// Threads returns the thread count the oracle covers.
func (o *Oracle) Threads() int { return len(o.txns) }

// TxnCount returns thread t's recorded transaction count.
func (o *Oracle) TxnCount(t int) int { return len(o.txns[t]) }
