package recovery

import (
	"testing"

	"repro/internal/workload"
)

func buildW(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.Build(workload.Queue, workload.Params{Threads: 2, InitOps: 32, SimOps: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOracleAcceptsReplayedPrefixes(t *testing.T) {
	w := buildW(t)
	o := NewOracle(w)
	if o.Threads() != 2 {
		t.Fatalf("threads %d", o.Threads())
	}
	// Replay m transactions of each thread onto a copy of the init image
	// and verify the oracle accepts exactly that prefix.
	for m := 0; m <= o.TxnCount(0); m++ {
		img := w.InitImage.Snapshot()
		counts := make([]int, 2)
		for th, h := range w.Heaps {
			n := m
			if n > len(h.Txns) {
				n = len(h.Txns)
			}
			counts[th] = n
			for i := 0; i < n; i++ {
				for a, v := range h.Txns[i].Post {
					img.WriteUint64(a, v)
				}
			}
		}
		matched, err := o.VerifyPrefix(img, counts)
		if err != nil {
			t.Fatalf("prefix %d rejected: %v", m, err)
		}
		for th, got := range matched {
			if got != counts[th] {
				t.Fatalf("prefix %d: matched %d on thread %d", m, got, th)
			}
		}
	}
}

func TestOracleRejectsTornState(t *testing.T) {
	w := buildW(t)
	o := NewOracle(w)
	img := w.InitImage.Snapshot()
	// Apply only half of transaction 1's writes on thread 0 (a torn
	// transaction).
	txn := w.Heaps[0].Txns[0]
	if len(txn.Post) < 2 {
		t.Skip("first txn too small to tear")
	}
	i := 0
	for a, v := range txn.Post {
		if i%2 == 0 {
			img.WriteUint64(a, v)
		}
		i++
	}
	if _, err := o.VerifyPrefix(img, []int{0, 0}); err == nil {
		// Tearing the txn might coincidentally equal the pre state if the
		// applied words were unchanged; only fail when values differ.
		differs := false
		for a, v := range txn.Post {
			if txn.Pre[a] != v {
				differs = true
				break
			}
		}
		if differs {
			t.Fatal("oracle accepted a torn transaction")
		}
	}
}

func TestOracleToleratesOffByOneCommit(t *testing.T) {
	w := buildW(t)
	o := NewOracle(w)
	img := w.InitImage.Snapshot()
	// Thread 0 has one committed txn applied, but the commit record says 0
	// (the crash landed between durability and the record).
	for a, v := range w.Heaps[0].Txns[0].Post {
		img.WriteUint64(a, v)
	}
	matched, err := o.VerifyPrefix(img, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if matched[0] != 1 {
		t.Fatalf("matched %d, want 1 (n+1 tolerance)", matched[0])
	}
}

func TestOracleVerifyFinal(t *testing.T) {
	w := buildW(t)
	o := NewOracle(w)
	img := w.InitImage.Snapshot()
	for _, h := range w.Heaps {
		for _, txn := range h.Txns {
			for a, v := range txn.Post {
				img.WriteUint64(a, v)
			}
		}
	}
	if err := o.VerifyFinal(img); err != nil {
		t.Fatal(err)
	}
	// Corrupt one word.
	for a := range w.Heaps[0].Txns[0].Post {
		img.WriteUint64(a, ^img.ReadUint64(a))
		break
	}
	if err := o.VerifyFinal(img); err == nil {
		t.Fatal("corruption not detected")
	}
}
