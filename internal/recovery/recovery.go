// Package recovery implements post-crash recovery for every failure-safe
// logging scheme and the oracle-based verifier that checks transaction
// atomicity on recovered images.
//
// A crash image is the persistent state a power failure leaves behind
// (NVM contents plus WPQ/LPQ contents under ADR, see memctrl.CrashImage).
// Recovery scans each thread's log area and rolls back in-flight
// transactions:
//
//   - Software logging (PMEM): the per-thread logFlag holds the in-flight
//     transaction ID and entry count (Figure 2). A nonzero flag means the
//     transaction did not commit: its undo entries are applied and the
//     flag cleared.
//   - Proteus: undo entries carry transaction IDs; only entries belonging
//     to the most recent (per thread) transactions that lack a durable
//     transaction-end mark are valid (§4.3). Uncommitted transactions are
//     rolled back newest-first; within a transaction the earliest entry
//     per address wins (§4.2), which the program-order sequence number in
//     the entry metadata realizes.
//   - ATOM: all non-truncated entries belong to in-flight transactions and
//     are applied newest-transaction-first.
//
// Recovery trusts nothing it reads: every scan is bounded by the log
// window, entry counts and sizes are clamped before they index memory,
// and integrity checksums (logfmt) are verified on every entry before it
// is applied. A violated check aborts with a typed error — ErrCorruptLog
// or ErrTruncatedEntry — rather than silently applying damaged state; the
// crash-injection campaign counts these detected-corruption events.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
)

// ErrCorruptLog marks an integrity violation in a log area: a checksum
// mismatch, an impossible field (a log-from address outside the
// persistent heap), or a nonzero line that holds no entry. Recovery never
// applies data from such a log.
var ErrCorruptLog = errors.New("corrupt log")

// ErrTruncatedEntry marks a self-inconsistent entry boundary: an entry
// count pointing past the log window, a logged length larger than a cache
// line, or a flagged entry that is missing from the log.
var ErrTruncatedEntry = errors.New("truncated log entry")

// IsDetectedCorruption reports whether a recovery error is a typed
// integrity detection (ErrCorruptLog or ErrTruncatedEntry) — damage that
// recovery noticed and refused, as opposed to an internal failure.
func IsDetectedCorruption(err error) bool {
	return errors.Is(err, ErrCorruptLog) || errors.Is(err, ErrTruncatedEntry)
}

// Result summarizes a recovery pass.
type Result struct {
	// RolledBack lists, per thread, the transaction IDs that were undone.
	RolledBack [][]uint32
	// EntriesApplied counts undo entries written back.
	EntriesApplied int
}

// Recover runs the scheme's recovery protocol over the crash image for the
// given number of threads, mutating img into the recovered state.
func Recover(img *nvm.Store, scheme core.Scheme, threads int) (*Result, error) {
	res := &Result{RolledBack: make([][]uint32, threads)}
	for t := 0; t < threads; t++ {
		var (
			undone []uint32
			n      int
			err    error
		)
		switch scheme {
		case core.PMEM, core.PMEMPcommit:
			undone, n, err = recoverSW(img, t)
		case core.Proteus, core.ProteusNoLWR:
			undone, n, err = recoverProteus(img, t)
		case core.ATOM:
			undone, n, err = recoverATOM(img, t)
		case core.PMEMNoLog:
			// Not failure safe: nothing to recover with.
		default:
			return nil, fmt.Errorf("recovery: unknown scheme %v", scheme)
		}
		if err != nil {
			return nil, fmt.Errorf("recovery: thread %d: %w", t, err)
		}
		res.RolledBack[t] = undone
		res.EntriesApplied += n
	}
	return res, nil
}

// validFrom reports whether a log-from address may be restored to: it must
// lie in the persistent heap. Applying an undo entry anywhere else (the
// log areas themselves, the volatile region, unmapped space) can only be
// corruption.
func validFrom(addr uint64) bool {
	return addr >= isa.HeapBase && addr < isa.LogBase
}

// recoverSW implements the Figure 2 protocol.
func recoverSW(img *nvm.Store, thread int) ([]uint32, int, error) {
	flagAddr := logfmt.LogFlagAddr(thread)
	flag := img.ReadUint64(flagAddr)
	if flag == 0 {
		return nil, 0, nil // no transaction in flight
	}
	tx, count := logfmt.UnpackLogFlag(flag)
	base, limit := isa.LogWindow(thread)
	// Clamp the entry count to what the log window can hold before it
	// indexes anything: a corrupted flag must not walk the scan out of the
	// window.
	if maxEntries := int((limit - base) / logfmt.PairEntrySize); count < 0 || count > maxEntries {
		return nil, 0, fmt.Errorf("%w: logFlag entry count %d exceeds window capacity %d", ErrTruncatedEntry, count, maxEntries)
	}
	applied := 0
	// Undo in reverse entry order.
	for i := count - 1; i >= 0; i-- {
		metaAddr := base + uint64(i)*logfmt.PairEntrySize
		meta, state := logfmt.DecodePairMetaChecked(img.Read(metaAddr, isa.LineSize))
		switch state {
		case logfmt.LineCorrupt:
			return nil, 0, fmt.Errorf("%w: sw log entry %d at %#x fails its integrity check", ErrCorruptLog, i, metaAddr)
		case logfmt.LineEmpty:
			// The flag says this entry exists; an empty line means the
			// entry was lost (torn flag/entry ordering violation).
			return nil, 0, fmt.Errorf("%w: sw log entry %d at %#x missing (flag says %d entries)", ErrTruncatedEntry, i, metaAddr, count)
		}
		if meta.Tx != uint64(tx) {
			// Entry from an older transaction: the crash hit during
			// Step 1, before this transaction's entry was written. The
			// flag would still be 0 then, so this is corruption.
			return nil, 0, fmt.Errorf("%w: sw log entry %d has tx %d, flag says %d", ErrCorruptLog, i, meta.Tx, tx)
		}
		if meta.Len > isa.LineSize {
			return nil, 0, fmt.Errorf("%w: sw log entry %d claims %d logged bytes (max %d)", ErrTruncatedEntry, i, meta.Len, isa.LineSize)
		}
		if !validFrom(meta.From) {
			return nil, 0, fmt.Errorf("%w: sw log entry %d restores to %#x outside the persistent heap", ErrCorruptLog, i, meta.From)
		}
		data := img.Read(metaAddr+isa.LineSize, int(meta.Len))
		if logfmt.PairDataCRC(data) != meta.DataCRC {
			return nil, 0, fmt.Errorf("%w: sw log entry %d data line fails its checksum", ErrCorruptLog, i)
		}
		img.Write(meta.From, data)
		applied++
	}
	img.WriteUint64(flagAddr, 0)
	return []uint32{tx}, applied, nil
}

// proteusEntry pairs a decoded entry with its location.
type proteusEntry struct {
	at uint64
	e  logfmt.ProteusEntry
}

// recoverProteus implements the §4.3 validity rule with the descending
// walk over the in-flight transaction chain.
func recoverProteus(img *nvm.Store, thread int) ([]uint32, int, error) {
	base, limit := isa.LogWindow(thread)
	byTx := make(map[uint32][]proteusEntry)
	marked := make(map[uint32]bool)
	var maxTx uint32
	for _, line := range img.LinesIn(base, limit) {
		e, state := logfmt.DecodeProteusChecked(img.Read(line, isa.LineSize))
		switch state {
		case logfmt.LineEmpty:
			continue
		case logfmt.LineCorrupt:
			return nil, 0, fmt.Errorf("%w: log line at %#x fails its integrity check", ErrCorruptLog, line)
		}
		if !validFrom(e.From) {
			return nil, 0, fmt.Errorf("%w: log entry at %#x restores to %#x outside the persistent heap", ErrCorruptLog, line, e.From)
		}
		byTx[e.Tx] = append(byTx[e.Tx], proteusEntry{at: line, e: e})
		if e.Last {
			marked[e.Tx] = true
		}
		if e.Tx > maxTx {
			maxTx = e.Tx
		}
	}
	if maxTx == 0 {
		return nil, 0, nil
	}
	var undone []uint32
	applied := 0
	// Walk the contiguous chain of recent transactions, newest first.
	// A transaction with a durable end mark committed — it and everything
	// older is durable. A missing transaction ID means no older
	// transaction can have durable-but-unlogged state (a store is durable
	// only after its log entry is), so the walk stops. The walk visits at
	// most one transaction per decoded entry, so it is bounded by the log
	// window regardless of what the entries claim.
	for tx := maxTx; tx > 0; tx-- {
		entries, present := byTx[tx]
		if !present {
			break
		}
		if marked[tx] {
			break // committed; all older transactions committed earlier
		}
		// Roll back: apply entries newest-first so the earliest entry per
		// address wins (§4.2).
		sort.Slice(entries, func(i, j int) bool { return entries[i].e.Seq > entries[j].e.Seq })
		for _, pe := range entries {
			img.Write(pe.e.From, pe.e.Data[:])
			// Invalidate the entry so a second crash during recovery
			// cannot replay it against newer state.
			var zero [isa.LineSize]byte
			img.Write(pe.at, zero[:])
			applied++
		}
		undone = append(undone, tx)
	}
	return undone, applied, nil
}

// recoverATOM applies all non-truncated entries, newest transaction first.
func recoverATOM(img *nvm.Store, thread int) ([]uint32, int, error) {
	base, limit := isa.LogWindow(thread)
	type entry struct {
		metaAt uint64
		e      logfmt.PairEntry
	}
	byTx := make(map[uint64][]entry)
	var txs []uint64
	for _, line := range img.LinesIn(base, limit) {
		if (line-base)%logfmt.PairEntrySize != 0 {
			continue // data line
		}
		e, state := logfmt.DecodePairMetaChecked(img.Read(line, isa.LineSize))
		switch state {
		case logfmt.LineEmpty:
			continue // truncated or never written
		case logfmt.LineCorrupt:
			return nil, 0, fmt.Errorf("%w: log meta line at %#x fails its integrity check", ErrCorruptLog, line)
		}
		if e.Len > isa.LineSize {
			return nil, 0, fmt.Errorf("%w: log entry at %#x claims %d logged bytes (max %d)", ErrTruncatedEntry, line, e.Len, isa.LineSize)
		}
		if !validFrom(e.From) {
			return nil, 0, fmt.Errorf("%w: log entry at %#x restores to %#x outside the persistent heap", ErrCorruptLog, line, e.From)
		}
		if _, seen := byTx[e.Tx]; !seen {
			txs = append(txs, e.Tx)
		}
		byTx[e.Tx] = append(byTx[e.Tx], entry{metaAt: line, e: e})
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] > txs[j] })
	var undone []uint32
	applied := 0
	for _, tx := range txs {
		for _, en := range byTx[tx] {
			data := img.Read(en.metaAt+isa.LineSize, int(en.e.Len))
			if logfmt.PairDataCRC(data) != en.e.DataCRC {
				return nil, 0, fmt.Errorf("%w: log entry at %#x data line fails its checksum", ErrCorruptLog, en.metaAt)
			}
			img.Write(en.e.From, data)
			var zero [isa.LineSize]byte
			img.Write(en.metaAt, zero[:])
			applied++
		}
		undone = append(undone, uint32(tx))
	}
	return undone, applied, nil
}
