package recovery

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/logfmt"
	"repro/internal/nvm"
)

// writeProteusEntry puts an encoded entry at slot i of thread t's log area.
func writeProteusEntry(img *nvm.Store, thread, slot int, e logfmt.ProteusEntry) {
	base, _ := isa.LogWindow(thread)
	line := logfmt.EncodeProteus(e)
	img.Write(base+uint64(slot)*isa.LineSize, line[:])
}

func block32(vals ...uint64) (out [isa.LogBlockSize]byte) {
	for i, v := range vals {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(v >> (8 * b))
		}
	}
	return
}

// TestProteusRollbackUncommitted: entries of an unmarked (uncommitted)
// transaction are applied; the data reverts.
func TestProteusRollbackUncommitted(t *testing.T) {
	img := nvm.NewStore()
	dataAddr := uint64(isa.HeapBase + 0x1000)
	img.WriteUint64(dataAddr, 999) // the torn new value

	writeProteusEntry(img, 0, 0, logfmt.ProteusEntry{
		Data: block32(111, 222, 333, 444), From: dataAddr, Tx: 5, Seq: 1,
	})
	res, err := Recover(img, core.Proteus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RolledBack[0]) != 1 || res.RolledBack[0][0] != 5 {
		t.Fatalf("rolled back: %v", res.RolledBack)
	}
	if got := img.ReadUint64(dataAddr); got != 111 {
		t.Fatalf("word not restored: %d", got)
	}
	if got := img.ReadUint64(dataAddr + 8); got != 222 {
		t.Fatalf("second word not restored: %d", got)
	}
}

// TestProteusCommittedNotRolledBack: a transaction whose last entry carries
// the end mark is durable; nothing is undone.
func TestProteusCommittedNotRolledBack(t *testing.T) {
	img := nvm.NewStore()
	dataAddr := uint64(isa.HeapBase + 0x2000)
	img.WriteUint64(dataAddr, 42)
	writeProteusEntry(img, 0, 0, logfmt.ProteusEntry{
		Data: block32(1), From: dataAddr, Tx: 7, Seq: 1, Last: true,
	})
	res, err := Recover(img, core.Proteus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RolledBack[0]) != 0 {
		t.Fatalf("committed txn rolled back: %v", res.RolledBack)
	}
	if img.ReadUint64(dataAddr) != 42 {
		t.Fatal("data clobbered")
	}
}

// TestProteusEarliestEntryWins: with duplicate log-from addresses in one
// transaction (LLT eviction re-logging, §4.2), the earliest entry's
// pre-image must end up in memory.
func TestProteusEarliestEntryWins(t *testing.T) {
	img := nvm.NewStore()
	dataAddr := uint64(isa.HeapBase + 0x3000)
	img.WriteUint64(dataAddr, 999)
	// Entry seq 1 holds the true pre-image (100); seq 9 holds a mid-
	// transaction value (555).
	writeProteusEntry(img, 0, 0, logfmt.ProteusEntry{Data: block32(100), From: dataAddr, Tx: 3, Seq: 1})
	writeProteusEntry(img, 0, 1, logfmt.ProteusEntry{Data: block32(555), From: dataAddr, Tx: 3, Seq: 9})
	if _, err := Recover(img, core.Proteus, 1); err != nil {
		t.Fatal(err)
	}
	if got := img.ReadUint64(dataAddr); got != 100 {
		t.Fatalf("got %d, want the earliest pre-image 100", got)
	}
}

// TestProteusChainRollback: two uncommitted transactions in flight (the
// dispatch-overlap case) are both undone, newest first; an older committed
// transaction with a drained stray entry is left alone because the chain
// walk stops at the first absent transaction ID.
func TestProteusChainRollback(t *testing.T) {
	img := nvm.NewStore()
	a := uint64(isa.HeapBase + 0x100)
	b := uint64(isa.HeapBase + 0x200)
	c := uint64(isa.HeapBase + 0x300)
	img.WriteUint64(a, 1000)
	img.WriteUint64(b, 2000)
	img.WriteUint64(c, 3000)

	// Txn 2 (committed long ago): one stray overflow-drained entry with
	// pre-image 7 — must NOT be applied.
	writeProteusEntry(img, 0, 0, logfmt.ProteusEntry{Data: block32(7), From: c, Tx: 2, Seq: 2})
	// Txns 4 and 5 in flight at the crash (txn 3 left no entries).
	writeProteusEntry(img, 0, 1, logfmt.ProteusEntry{Data: block32(10), From: a, Tx: 4, Seq: 10})
	writeProteusEntry(img, 0, 2, logfmt.ProteusEntry{Data: block32(20), From: b, Tx: 5, Seq: 11})

	res, err := Recover(img, core.Proteus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RolledBack[0]; len(got) != 2 || got[0] != 5 || got[1] != 4 {
		t.Fatalf("rolled back %v, want [5 4]", got)
	}
	if img.ReadUint64(a) != 10 || img.ReadUint64(b) != 20 {
		t.Fatal("in-flight txns not undone")
	}
	if img.ReadUint64(c) != 3000 {
		t.Fatal("stray entry of committed txn 2 was applied")
	}
}

// TestSWRecovery: the logFlag protocol.
func TestSWRecovery(t *testing.T) {
	img := nvm.NewStore()
	dataAddr := uint64(isa.HeapBase + 0x4000)
	img.WriteUint64(dataAddr, 999)

	base := logfmt.SWLogBase(0)
	var data [isa.LineSize]byte
	data[0] = 77
	meta := logfmt.EncodePairMeta(logfmt.PairEntry{From: dataAddr, Tx: 6, Len: isa.LineSize, DataCRC: logfmt.PairDataCRC(data[:])})
	img.Write(base, meta[:])
	img.Write(base+isa.LineSize, data[:])
	img.WriteUint64(logfmt.LogFlagAddr(0), logfmt.PackLogFlag(6, 1))

	res, err := Recover(img, core.PMEM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RolledBack[0]) != 1 || res.RolledBack[0][0] != 6 {
		t.Fatalf("rolled back %v", res.RolledBack)
	}
	if got := img.Read(dataAddr, 1)[0]; got != 77 {
		t.Fatalf("byte %d", got)
	}
	if img.ReadUint64(logfmt.LogFlagAddr(0)) != 0 {
		t.Fatal("logFlag not cleared")
	}
	// Recovery with a clear flag does nothing.
	img.WriteUint64(dataAddr, 5)
	if res, err := Recover(img, core.PMEM, 1); err != nil || len(res.RolledBack[0]) != 0 {
		t.Fatalf("idle recovery acted: %v %v", res.RolledBack, err)
	}
}

// TestATOMRecovery: valid pair entries are applied; zeroed (truncated)
// entries are not.
func TestATOMRecovery(t *testing.T) {
	img := nvm.NewStore()
	a := uint64(isa.HeapBase + 0x5000)
	b := uint64(isa.HeapBase + 0x5040)
	img.WriteUint64(a, 999)
	img.WriteUint64(b, 888)

	base, _ := isa.LogWindow(0)
	// Valid entry for a (txn 9).
	var data [isa.LineSize]byte
	data[0] = 11
	meta := logfmt.EncodePairMeta(logfmt.PairEntry{From: a, Tx: 9, Len: isa.LineSize, DataCRC: logfmt.PairDataCRC(data[:])})
	img.Write(base, meta[:])
	img.Write(base+isa.LineSize, data[:])
	// Truncated (zeroed) entry for b.
	var zero [isa.LineSize]byte
	img.Write(base+2*isa.LineSize, zero[:])

	res, err := Recover(img, core.ATOM, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RolledBack[0]) != 1 || res.RolledBack[0][0] != 9 {
		t.Fatalf("rolled back %v", res.RolledBack)
	}
	if got := img.Read(a, 1)[0]; got != 11 {
		t.Fatalf("a not restored: %d", got)
	}
	if img.ReadUint64(b) != 888 {
		t.Fatal("b clobbered by truncated entry")
	}
}

// TestNoLogRecoveryIsNoop: the unsafe scheme has no recovery protocol.
func TestNoLogRecoveryIsNoop(t *testing.T) {
	img := nvm.NewStore()
	img.WriteUint64(isa.HeapBase, 1)
	res, err := Recover(img, core.PMEMNoLog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesApplied != 0 {
		t.Fatal("nolog recovery applied entries")
	}
}

// TestEmptyImageRecovery: recovery over a pristine image does nothing for
// any scheme.
func TestEmptyImageRecovery(t *testing.T) {
	for _, s := range core.Schemes {
		img := nvm.NewStore()
		res, err := Recover(img, s, 4)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.EntriesApplied != 0 {
			t.Fatalf("%v applied %d entries to an empty image", s, res.EntriesApplied)
		}
	}
}
