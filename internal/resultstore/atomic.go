package resultstore

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file in the same
// directory followed by os.Rename, so readers never observe a partially
// written file and an interrupted writer never leaves truncated content
// at the destination. The temporary file is fsynced before the rename,
// and the parent directory is fsynced after it: renaming updates a
// directory entry, and on a host crash an unsynced directory can lose
// the entry even though the file's blocks are on disk — the published
// result would silently vanish. Only after both syncs is the publish
// durable. A stale temp file from a crash is harmless — it is never the
// destination name.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return writeFileAtomic(osFS{}, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem, for
// callers outside this package (the provenance ledger) that publish
// through the same — possibly chaos-wrapped — FS as the store, so fault
// injection reaches their writes too. fsys == nil means the real
// filesystem.
func WriteFileAtomicFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	if fsys == nil {
		fsys = osFS{}
	}
	return writeFileAtomic(fsys, path, data, perm)
}

// writeFileAtomic is WriteFileAtomic over an explicit filesystem — the
// seam the store threads its (possibly chaos-wrapped) FS through.
func writeFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		fsys.Remove(name)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(dir)
}
