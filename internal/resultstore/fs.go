package resultstore

import (
	"io"
	"os"
)

// FS is the narrow filesystem surface the store performs its I/O
// through. The default implementation (osFS) forwards straight to the
// os package; internal/chaos substitutes a fault-injecting wrapper so
// torn writes, bit flips, ENOSPC, fsync failures and crash-before-rename
// can be rehearsed deterministically against the real store logic. The
// interface is structural on purpose: an implementation needs no import
// of this package beyond the File it returns.
type FS interface {
	// ReadFile returns the named file's contents.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory path (and parents) if missing.
	MkdirAll(path string, perm os.FileMode) error
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically moves oldpath to newpath (the publish step).
	Rename(oldpath, newpath string) error
	// CreateTemp creates a new temporary file in dir, opened for writing.
	CreateTemp(dir, pattern string) (File, error)
	// SyncDir fsyncs a directory so a just-renamed entry survives a host
	// crash.
	SyncDir(dir string) error
}

// File is the writable handle CreateTemp returns; the subset of *os.File
// the atomic-publish sequence touches.
type File interface {
	io.Writer
	Name() string
	Chmod(mode os.FileMode) error
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the store's default, real filesystem implementation —
// the identity layer chaos wrappers nest around.
func OSFS() FS { return osFS{} }

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) SyncDir(dir string) error                     { return syncDir(dir) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs the directory holding a just-renamed file so the new
// directory entry survives a host crash. Stubbed in tests to verify the
// crash contract.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
