// Package resultstore is the persistent, content-addressed simulation
// result cache behind internal/engine and the serving layer. Each entry
// is one successfully completed simulation, keyed by the full job-tuple
// fingerprint (engine.Job.Fingerprint(): workload kind, params, scheme,
// config.Config.Fingerprint() and logging options), so a key collision
// would require a fingerprint collision — which the config package's
// field-coverage test guards against as Config grows.
//
// Layout: <dir>/<key[:2]>/<key>.json, one JSON document per entry,
// written atomically (temp file + fsync + rename). The store therefore
// survives process restarts and concurrent writers: two processes
// storing the same key race benignly — both write identical bytes — and
// a crash mid-write never leaves a truncated entry at a live name.
//
// The store does not trust its own disk: every entry carries a sha256
// digest of its result payload, recomputed on Load, so a torn write a
// lying kernel published, a flipped bit, or a truncated document is
// detected rather than served. Detection is self-healing: the corrupt
// file is renamed into <dir>/quarantine/ (preserved for forensics, out
// of the live namespace), Load returns the typed ErrCorruptEntry, and
// the caller — the engine treats any Load error as a miss — simply
// re-simulates and re-stores a clean entry. Scrub walks the whole store
// and applies the same verification offline.
//
// Robustness over freshness: an unreadable, corrupt, mismatched or
// wrong-schema entry is reported as a miss (or typed corruption), so the
// worst failure mode of the cache is re-simulation.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/stats"
)

// schemaVersion is bumped whenever the entry encoding changes shape.
// Version 2 added the result payload digest; version 3 added the VCS
// revision of the producing binary. Entries older than minSchemaVersion
// (or newer than schemaVersion) are misses.
const (
	schemaVersion    = 3
	minSchemaVersion = 2
)

// quarantineDir is the subdirectory corrupt entries are renamed into.
// It is outside the shard namespace (shards are two hex characters), so
// quarantined files can never shadow a live key.
const quarantineDir = "quarantine"

// LedgerDir is the subdirectory (next to the shards, like quarantine/)
// where the provenance ledger lives. The store's traversals skip it; it
// is owned by internal/ledger and exported here only so both packages
// agree on the name.
const LedgerDir = "ledger"

// ErrCorruptEntry marks an entry that was present on disk but failed
// verification: unparseable, truncated, wrong key, wrong schema, or a
// result payload whose sha256 digest does not match the recorded one.
// The offending file has already been quarantined when this is
// returned; callers treat it as a miss and re-simulate.
var ErrCorruptEntry = errors.New("resultstore: corrupt entry")

var keyRE = regexp.MustCompile(`^[0-9a-f]{4,64}$`)

// entry is the on-disk document. Field order is the canonical encoding
// order: marshaling the same result always yields the same bytes, which
// is what makes concurrent same-key writers benign and lets callers
// compare cached and live payloads byte-for-byte. Result stays raw on
// load so Digest — sha256 over exactly those bytes — can be verified
// before anything is decoded or returned.
type entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	Job    string          `json:"job"` // human-readable tuple, for debugging only
	Rev    string          `json:"rev,omitempty"`
	Digest string          `json:"digest"`
	Result json.RawMessage `json:"result"`
}

type result struct {
	Report            *stats.Report `json:"report"`
	EmittedLogFlushes uint64        `json:"emitted_log_flushes"`
}

// Counters snapshots store activity.
type Counters struct {
	// Hits counts Load calls that returned a result.
	Hits uint64
	// Misses counts Load calls that found nothing usable (including
	// corrupt or unreadable entries).
	Misses uint64
	// Writes counts successful Store calls.
	Writes uint64
	// Errors counts Load/Store calls that failed on I/O or encoding.
	Errors uint64
	// Corrupt counts entries that were present but failed verification
	// (truncated, unparseable, digest mismatch) on Load or Scrub.
	Corrupt uint64
	// Quarantined counts corrupt files successfully renamed into the
	// quarantine/ subdirectory.
	Quarantined uint64
}

// Store is an on-disk result cache. It is safe for concurrent use by
// multiple goroutines and multiple processes sharing the directory.
type Store struct {
	dir string
	fs  FS

	// verifier, when set, lets Scrub cross-check healthy entries
	// against the provenance ledger (see SetVerifier).
	verifier atomic.Pointer[Verifier]

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	errs        atomic.Uint64
	corrupt     atomic.Uint64
	quarantined atomic.Uint64
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, osFS{})
}

// OpenFS is Open with an explicit filesystem — the injection point for
// internal/chaos's faulty FS. fsys == nil means the real filesystem.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, errors.New("resultstore: empty directory")
	}
	if fsys == nil {
		fsys = osFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the store's activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Errors:      s.errs.Load(),
		Corrupt:     s.corrupt.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// path shards entries by the first two key characters to keep directory
// fan-out bounded on large stores.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// digest is the content digest recorded with (and verified against)
// every entry's raw result bytes.
func digest(raw []byte) string {
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:])
}

// decode verifies one on-disk document against the key it lives under
// and returns the result it carries plus the verified entry envelope.
// Any failure means the entry is corrupt (or foreign) and must not be
// served. Schema 2 entries (no revision field) remain readable: the
// digest discipline is identical, they just predate provenance.
func decode(key string, data []byte) (*engine.Result, *entry, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, fmt.Errorf("unparseable: %w", err)
	}
	if e.Schema < minSchemaVersion || e.Schema > schemaVersion {
		return nil, nil, fmt.Errorf("schema %d, want %d..%d", e.Schema, minSchemaVersion, schemaVersion)
	}
	if e.Key != key {
		return nil, nil, fmt.Errorf("key %q under name %q", e.Key, key)
	}
	if got := digest(e.Result); got != e.Digest {
		return nil, nil, fmt.Errorf("result digest %.12s.., recorded %.12s..", got, e.Digest)
	}
	var r result
	if err := json.Unmarshal(e.Result, &r); err != nil {
		return nil, nil, fmt.Errorf("result payload: %w", err)
	}
	if r.Report == nil {
		return nil, nil, errors.New("entry carries no report")
	}
	return &engine.Result{Report: r.Report, EmittedLogFlushes: r.EmittedLogFlushes}, &e, nil
}

// EntryInfo is the provenance-relevant view of one verified entry.
type EntryInfo struct {
	// Key is the job fingerprint the entry is stored under.
	Key string `json:"key"`
	// Job is the human-readable "kind/scheme/mem" tuple.
	Job string `json:"job"`
	// Rev is the VCS revision of the binary that produced the entry
	// (provenance.Unknown for schema-2 entries, which predate it).
	Rev string `json:"rev"`
	// Digest is the sha256 over the entry's raw result bytes — the value
	// a ledger leaf records and an audit compares.
	Digest string `json:"digest"`
	// Schema is the entry's on-disk schema version.
	Schema int `json:"schema"`
}

// VerifyEntry runs the full Load-path verification on one raw on-disk
// document (as handed to a Walk callback) without touching the store,
// and returns its provenance view. It is the audit primitive: a
// non-nil error means the bytes would be quarantined on Load.
func VerifyEntry(key string, raw []byte) (EntryInfo, error) {
	_, e, err := decode(key, raw)
	if err != nil {
		return EntryInfo{}, fmt.Errorf("%w: key %s: %v", ErrCorruptEntry, key, err)
	}
	rev := e.Rev
	if rev == "" {
		rev = provenance.Unknown
	}
	return EntryInfo{Key: e.Key, Job: e.Job, Rev: rev, Digest: e.Digest, Schema: e.Schema}, nil
}

// EntryDigest computes the digest a stored copy of res would carry —
// sha256 over the canonical encoding of the result payload, exactly as
// Store records it. It is what ledger leaves commit to, computed
// without a store round-trip.
func EntryDigest(res *engine.Result) (string, error) {
	if res == nil || res.Report == nil {
		return "", errors.New("resultstore: empty result has no digest")
	}
	raw, err := json.Marshal(result{Report: res.Report, EmittedLogFlushes: res.EmittedLogFlushes})
	if err != nil {
		return "", fmt.Errorf("resultstore: %w", err)
	}
	return digest(raw), nil
}

// Load implements engine.ResultStore: it returns the stored result for
// key, or (nil, nil) when the store has nothing usable. An entry that is
// present but fails verification is quarantined and reported as
// ErrCorruptEntry — the engine treats any Load error as a miss, so the
// net effect is re-simulation followed by a clean re-publish: the store
// heals itself through its own miss path.
func (s *Store) Load(key string) (*engine.Result, error) {
	if !keyRE.MatchString(key) {
		s.misses.Add(1)
		return nil, nil
	}
	data, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		if !errors.Is(err, fs.ErrNotExist) {
			s.errs.Add(1)
		}
		return nil, nil
	}
	res, _, verr := decode(key, data)
	if verr != nil {
		s.misses.Add(1)
		s.corrupt.Add(1)
		s.quarantine(s.path(key), key)
		return nil, fmt.Errorf("%w: key %s: %v", ErrCorruptEntry, key, verr)
	}
	s.hits.Add(1)
	return res, nil
}

// quarantine moves a corrupt file out of the live namespace, preserving
// it for forensics. If the rename fails (the quarantine dir itself may
// be sick) the file is removed instead, so a bad entry can never shadow
// the clean rewrite that follows re-simulation.
func (s *Store) quarantine(path, key string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir, 0o755); err == nil {
		if err := s.fs.Rename(path, filepath.Join(qdir, key+".json")); err == nil {
			s.quarantined.Add(1)
			return
		}
	}
	s.errs.Add(1)
	if s.fs.Remove(path) != nil {
		// Could not even remove it: the next Load will re-detect it, and
		// Store's rename will overwrite it. Nothing more to do.
		return
	}
	s.quarantined.Add(1)
}

// Store implements engine.ResultStore: it persists res under key with an
// atomic write-then-rename, so a crash never leaves a partial entry.
func (s *Store) Store(key string, j engine.Job, res *engine.Result) error {
	if !keyRE.MatchString(key) {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: malformed key %q", key)
	}
	if res == nil || res.Report == nil {
		s.errs.Add(1)
		return errors.New("resultstore: refusing to store an empty result")
	}
	raw, err := json.Marshal(result{Report: res.Report, EmittedLogFlushes: res.EmittedLogFlushes})
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	e := entry{
		Schema: schemaVersion,
		Key:    key,
		Job:    j.String(),
		Rev:    provenance.Revision(),
		Digest: digest(raw),
		Result: raw,
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	path := s.path(key)
	if err := s.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := writeFileAtomic(s.fs, path, data, 0o644); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// scanResult is one deterministic pass over the store's directory tree:
// live entries sorted by key, leftover temp files from crashed writers,
// and the count of quarantined corpses. Every traversal consumer — Len,
// Walk, Scrub, Quarantined, the ledger's backfill and audit — is built
// on this one walk, so they all agree on what "the store's contents"
// means (quarantine/ is corpses, ledger/ is not entries, temps are not
// entries).
type scanResult struct {
	live        []liveEntry
	temps       []string
	quarantined int
}

type liveEntry struct {
	key  string
	path string
}

func (s *Store) scan() (scanResult, error) {
	var sc scanResult
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != s.dir && d.Name() == LedgerDir {
				return fs.SkipDir
			}
			return nil
		}
		if filepath.Base(filepath.Dir(path)) == quarantineDir {
			sc.quarantined++
			return nil
		}
		if strings.Contains(d.Name(), ".tmp-") {
			sc.temps = append(sc.temps, path)
			return nil
		}
		if filepath.Ext(path) != ".json" {
			return nil
		}
		sc.live = append(sc.live, liveEntry{key: strings.TrimSuffix(d.Name(), ".json"), path: path})
		return nil
	})
	sort.Slice(sc.live, func(i, j int) bool { return sc.live[i].key < sc.live[j].key })
	return sc, err
}

// Len walks the store and returns the number of live entries on disk
// (quarantined files are not entries).
func (s *Store) Len() (int, error) {
	sc, err := s.scan()
	return len(sc.live), err
}

// Walk visits every live entry in ascending key order, handing the
// callback the key, the raw on-disk bytes, and any read error for that
// entry (the walk continues either way; a non-nil readErr comes with
// nil raw bytes). Returning a non-nil error from fn stops the walk and
// propagates the error. Walk does not verify entries — pair it with
// VerifyEntry — and never mutates the store, so auditors can run it
// against a store that is actively serving.
func (s *Store) Walk(fn func(key string, raw []byte, readErr error) error) error {
	sc, err := s.scan()
	if err != nil {
		return err
	}
	for _, le := range sc.live {
		data, rerr := s.fs.ReadFile(le.path)
		if rerr != nil {
			data = nil
		}
		if ferr := fn(le.key, data, rerr); ferr != nil {
			return ferr
		}
	}
	return nil
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Scanned is the number of live entries examined.
	Scanned int `json:"scanned"`
	// Healthy entries passed verification.
	Healthy int `json:"healthy"`
	// Corrupt entries failed verification and were quarantined.
	Corrupt int `json:"corrupt"`
	// Quarantined lists the keys moved aside, sorted.
	Quarantined []string `json:"quarantined,omitempty"`
	// TempsRemoved counts leftover .tmp- files (crashed writers) that
	// were swept away.
	TempsRemoved int `json:"temps_removed"`
	// Diverged lists keys whose entries verified locally but disagree
	// with the external verifier (the provenance ledger): the bytes are
	// internally consistent yet not the bytes the ledger committed to.
	// Sorted; empty when no verifier is installed.
	Diverged []string `json:"diverged,omitempty"`
}

// Scrub walks every live entry, verifies it exactly as Load would, and
// quarantines the ones that fail — the offline repair pass that turns a
// disk full of latent corruption back into a store whose every future
// Load is either a verified hit or an honest miss. Leftover temp files
// from crashed writers are removed. Scrub is safe to run while the
// store is serving, with one caveat: a concurrent writer's in-flight
// temp file may be swept, failing that single Store call (the engine
// drops store-write errors, so the worst case is one re-simulation).
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	verify := s.verifier.Load()
	sc, err := s.scan()
	if err != nil {
		return rep, err
	}
	for _, tmp := range sc.temps {
		if s.fs.Remove(tmp) == nil {
			rep.TempsRemoved++
		}
	}
	for _, le := range sc.live {
		rep.Scanned++
		data, rerr := s.fs.ReadFile(le.path)
		if rerr != nil {
			s.errs.Add(1)
			continue
		}
		_, e, verr := decode(le.key, data)
		if verr != nil {
			rep.Corrupt++
			rep.Quarantined = append(rep.Quarantined, le.key)
			s.corrupt.Add(1)
			s.quarantine(le.path, le.key)
			continue
		}
		rep.Healthy++
		if verify != nil && *verify != nil {
			if cerr := (*verify)(le.key, e.Digest); cerr != nil {
				rep.Diverged = append(rep.Diverged, le.key)
			}
		}
	}
	sort.Strings(rep.Quarantined)
	sort.Strings(rep.Diverged)
	return rep, err
}

// Verifier cross-checks one locally-verified entry against an external
// source of truth — in practice the provenance ledger. It receives the
// entry's key and recorded digest and returns a non-nil error when the
// external record disagrees. Entries the external source has never
// heard of should return nil: absence means "not ledgered yet" (a
// pending batch), not divergence.
type Verifier func(key, digest string) error

// SetVerifier installs (or, with nil, removes) the external verifier
// Scrub consults for every healthy entry. Safe to call concurrently
// with Scrub; typically wired once at startup to the ledger.
func (s *Store) SetVerifier(v Verifier) {
	s.verifier.Store(&v)
}

// Quarantined returns the number of files currently parked in the
// quarantine directory (not the lifetime counter — the on-disk truth).
func (s *Store) Quarantined() (int, error) {
	sc, err := s.scan()
	return sc.quarantined, err
}
