// Package resultstore is the persistent, content-addressed simulation
// result cache behind internal/engine and the serving layer. Each entry
// is one successfully completed simulation, keyed by the full job-tuple
// fingerprint (engine.Job.Fingerprint(): workload kind, params, scheme,
// config.Config.Fingerprint() and logging options), so a key collision
// would require a fingerprint collision — which the config package's
// field-coverage test guards against as Config grows.
//
// Layout: <dir>/<key[:2]>/<key>.json, one JSON document per entry,
// written atomically (temp file + fsync + rename). The store therefore
// survives process restarts and concurrent writers: two processes
// storing the same key race benignly — both write identical bytes — and
// a crash mid-write never leaves a truncated entry at a live name.
//
// Robustness over freshness: an unreadable, corrupt, mismatched or
// wrong-schema entry is reported as a miss (never an error), so the
// worst failure mode of the cache is re-simulation.
package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/stats"
)

// schemaVersion is bumped whenever the entry encoding changes shape;
// entries with another schema are misses.
const schemaVersion = 1

var keyRE = regexp.MustCompile(`^[0-9a-f]{4,64}$`)

// entry is the on-disk document. Field order is the canonical encoding
// order: marshaling the same result always yields the same bytes, which
// is what makes concurrent same-key writers benign and lets callers
// compare cached and live payloads byte-for-byte.
type entry struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	Job    string `json:"job"` // human-readable tuple, for debugging only
	Result result `json:"result"`
}

type result struct {
	Report            *stats.Report `json:"report"`
	EmittedLogFlushes uint64        `json:"emitted_log_flushes"`
}

// Counters snapshots store activity.
type Counters struct {
	// Hits counts Load calls that returned a result.
	Hits uint64
	// Misses counts Load calls that found nothing usable (including
	// corrupt or unreadable entries).
	Misses uint64
	// Writes counts successful Store calls.
	Writes uint64
	// Errors counts Load/Store calls that failed on I/O or encoding.
	Errors uint64
}

// Store is an on-disk result cache. It is safe for concurrent use by
// multiple goroutines and multiple processes sharing the directory.
type Store struct {
	dir string

	hits   atomic.Uint64
	misses atomic.Uint64
	writes atomic.Uint64
	errs   atomic.Uint64
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("resultstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the store's activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Writes: s.writes.Load(),
		Errors: s.errs.Load(),
	}
}

// path shards entries by the first two key characters to keep directory
// fan-out bounded on large stores.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Load implements engine.ResultStore: it returns the stored result for
// key, or (nil, nil) when the store has nothing usable. Corrupt entries
// count as misses and are removed so they cannot shadow a future write.
func (s *Store) Load(key string) (*engine.Result, error) {
	if !keyRE.MatchString(key) {
		s.misses.Add(1)
		return nil, nil
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		if !errors.Is(err, fs.ErrNotExist) {
			s.errs.Add(1)
		}
		return nil, nil
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != schemaVersion || e.Key != key || e.Result.Report == nil {
		// A truncated, corrupt or foreign-schema entry: drop it and miss.
		s.misses.Add(1)
		s.errs.Add(1)
		os.Remove(s.path(key))
		return nil, nil
	}
	s.hits.Add(1)
	return &engine.Result{Report: e.Result.Report, EmittedLogFlushes: e.Result.EmittedLogFlushes}, nil
}

// Store implements engine.ResultStore: it persists res under key with an
// atomic write-then-rename, so a crash never leaves a partial entry.
func (s *Store) Store(key string, j engine.Job, res *engine.Result) error {
	if !keyRE.MatchString(key) {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: malformed key %q", key)
	}
	if res == nil || res.Report == nil {
		s.errs.Add(1)
		return errors.New("resultstore: refusing to store an empty result")
	}
	e := entry{
		Schema: schemaVersion,
		Key:    key,
		Job:    j.String(),
		Result: result{Report: res.Report, EmittedLogFlushes: res.EmittedLogFlushes},
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultstore: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Len walks the store and returns the number of entries on disk.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
