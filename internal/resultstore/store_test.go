package resultstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testJob() engine.Job {
	cfg := config.Default()
	cfg.Cores = 1
	return engine.Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 1},
		Scheme: core.PMEMNoLog,
		Config: cfg,
	}
}

func testResult() *engine.Result {
	rep := &stats.Report{Label: "test", Cycles: 12345, CoreStat: make([]stats.Core, 1)}
	rep.CoreStat[0].Retired = 678
	return &engine.Result{Report: rep, EmittedLogFlushes: 9}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	key := j.Fingerprint()

	if got, err := s.Load(key); err != nil || got != nil {
		t.Fatalf("Load before Store = (%v, %v), want miss", got, err)
	}
	if err := s.Store(key, j, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Load after Store missed")
	}
	// The loaded result must serialize byte-identically to the live one:
	// that equality is what lets the serving layer answer from disk
	// without observable difference.
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the result:\nlive: %s\ndisk: %s", a, b)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 {
		t.Fatalf("counters %+v, want 1 hit / 1 miss / 1 write", c)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, res := testJob(), testResult()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Store(j.Fingerprint(), j, res); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load(j.Fingerprint())
	if err != nil || got == nil {
		t.Fatalf("entry did not survive reopen: (%v, %v)", got, err)
	}
	if got.Report.Cycles != res.Report.Cycles {
		t.Fatalf("cycles %d, want %d", got.Report.Cycles, res.Report.Cycles)
	}
	if n, err := s2.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1", n, err)
	}
}

// corruptLoad stores one entry, mangles the on-disk file with mangle,
// and asserts Load detects the damage: typed ErrCorruptEntry, no result,
// the file quarantined out of the live namespace, and the corruption
// counters advanced.
func corruptLoad(t *testing.T, mangle func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	key := j.Fingerprint()
	if err := s.Store(key, j, testResult()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	mangle(t, path)

	got, err := s.Load(key)
	if got != nil {
		t.Fatalf("corrupt entry served a result: %+v", got)
	}
	if !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("Load = %v, want ErrCorruptEntry", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("corrupt entry still at its live name")
	}
	qpath := filepath.Join(dir, quarantineDir, key+".json")
	if _, serr := os.Stat(qpath); serr != nil {
		t.Fatalf("corrupt entry not quarantined: %v", serr)
	}
	c := s.Counters()
	if c.Corrupt != 1 || c.Quarantined != 1 || c.Misses != 1 {
		t.Fatalf("counters %+v, want 1 corrupt / 1 quarantined / 1 miss", c)
	}
	// The quarantined file must not count as an entry, and the store must
	// accept a clean rewrite of the same key.
	if n, lerr := s.Len(); lerr != nil || n != 0 {
		t.Fatalf("Len = (%d, %v) after quarantine, want 0", n, lerr)
	}
	if err := s.Store(key, j, testResult()); err != nil {
		t.Fatalf("re-store after quarantine: %v", err)
	}
	if got, err := s.Load(key); err != nil || got == nil {
		t.Fatalf("healed entry = (%v, %v), want a hit", got, err)
	}
}

func TestTruncatedEntryIsQuarantined(t *testing.T) {
	corruptLoad(t, func(t *testing.T, path string) {
		// Truncate the entry mid-document, as an interrupted non-atomic
		// writer (or a torn publish) would have.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSingleBitFlipIsQuarantined(t *testing.T) {
	corruptLoad(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one bit inside the result payload: the JSON often still
		// parses, so only the digest can catch it.
		i := bytes.Index(data, []byte(`"Cycles"`))
		if i < 0 {
			t.Fatal("no cycles field to corrupt")
		}
		data[i+10] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEmptyEntryIsQuarantined(t *testing.T) {
	corruptLoad(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestForeignSchemaIsQuarantined(t *testing.T) {
	corruptLoad(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte(`{"schema":1,"key":"x"}`), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestScrubQuarantinesCorruptEntries: an offline pass over a store with
// a mix of healthy, corrupt and leftover-temp files repairs it in place.
func TestScrubQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Three healthy entries with distinct keys.
	var keys []string
	for i := 0; i < 3; i++ {
		j := testJob()
		j.Params.Seed = int64(100 + i)
		if err := s.Store(j.Fingerprint(), j, testResult()); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, j.Fingerprint())
	}
	// Corrupt one of them and plant a stale temp file.
	victim := keys[1]
	vpath := filepath.Join(dir, victim[:2], victim+".json")
	if err := os.WriteFile(vpath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, victim[:2], victim+".json.tmp-12345")
	if err := os.WriteFile(tmp, []byte("half a doc"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 3 || rep.Healthy != 2 || rep.Corrupt != 1 || rep.TempsRemoved != 1 {
		t.Fatalf("scrub report %+v, want 3 scanned / 2 healthy / 1 corrupt / 1 temp removed", rep)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != victim {
		t.Fatalf("quarantined %v, want [%s]", rep.Quarantined, victim)
	}
	if n, err := s.Quarantined(); err != nil || n != 1 {
		t.Fatalf("Quarantined() = (%d, %v), want 1", n, err)
	}
	// The survivors still load; the victim is an honest miss.
	for _, k := range []string{keys[0], keys[2]} {
		if got, err := s.Load(k); err != nil || got == nil {
			t.Fatalf("healthy entry %s after scrub = (%v, %v)", k, got, err)
		}
	}
	if got, err := s.Load(victim); err != nil || got != nil {
		t.Fatalf("scrubbed entry = (%v, %v), want a clean miss", got, err)
	}
	// A second scrub finds nothing left to do.
	rep, err = s.Scrub()
	if err != nil || rep.Corrupt != 0 || rep.Healthy != 2 || rep.TempsRemoved != 0 {
		t.Fatalf("second scrub = (%+v, %v), want all healthy", rep, err)
	}
}

// failRenameFS simulates a process crash between the temp-file fsync and
// the publishing rename: the rename into a live entry name never
// happens. The store must keep serving whatever was at the name before.
type failRenameFS struct {
	FS
}

func (f failRenameFS) Rename(oldpath, newpath string) error {
	if filepath.Ext(newpath) == ".json" && !strings.Contains(newpath, ".tmp-") {
		return errors.New("injected crash before rename")
	}
	return f.FS.Rename(oldpath, newpath)
}

func TestCrashBeforeRenameKeepsOldEntry(t *testing.T) {
	dir := t.TempDir()
	j := testJob()
	key := j.Fingerprint()

	healthy, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Store(key, j, testResult()); err != nil {
		t.Fatal(err)
	}

	crashy, err := OpenFS(dir, failRenameFS{OSFS()})
	if err != nil {
		t.Fatal(err)
	}
	newer := testResult()
	newer.Report.Cycles = 999
	if err := crashy.Store(key, j, newer); err == nil {
		t.Fatal("Store succeeded though the publish rename crashed")
	}

	// The old entry is intact and verified; no temp debris shadows it.
	got, err := healthy.Load(key)
	if err != nil || got == nil {
		t.Fatalf("entry after crashed rewrite = (%v, %v), want the old result", got, err)
	}
	if got.Report.Cycles != testResult().Report.Cycles {
		t.Fatalf("cycles %d, want the pre-crash value %d", got.Report.Cycles, testResult().Report.Cycles)
	}
	if n, err := healthy.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want exactly the old entry", n, err)
	}
}

func TestRejectsBadKeysAndEmptyResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	if err := s.Store("../../etc/passwd", j, testResult()); err == nil {
		t.Fatal("path-traversal key accepted")
	}
	if err := s.Store(j.Fingerprint(), j, &engine.Result{}); err == nil {
		t.Fatal("empty result accepted")
	}
	if got, err := s.Load("ZZ"); err != nil || got != nil {
		t.Fatal("malformed key did not miss cleanly")
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := WriteFileAtomic(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "world" {
		t.Fatalf("read back (%q, %v)", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

// TestAtomicWriteSyncsParentDir pins the crash contract of the publish
// step: the parent directory must be fsynced after the rename (not
// before), otherwise a host crash can drop the freshly renamed entry and
// the published result vanishes even though its blocks were synced. The
// test also checks a directory-sync failure is reported to the caller
// rather than swallowed.
func TestAtomicWriteSyncsParentDir(t *testing.T) {
	orig := syncDir
	defer func() { syncDir = orig }()

	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	var synced []string
	syncDir = func(d string) error {
		// The rename must already be visible when the directory is synced;
		// syncing first would make the fsync cover the pre-rename state.
		if _, err := os.Stat(path); err != nil {
			t.Errorf("dir fsync ran before rename was visible: %v", err)
		}
		synced = append(synced, filepath.Clean(d))
		return orig(d)
	}
	if err := WriteFileAtomic(path, []byte("published"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != filepath.Clean(dir) {
		t.Fatalf("directory fsyncs = %q, want exactly one of %q", synced, dir)
	}

	syncDir = func(string) error { return fmt.Errorf("injected dir fsync failure") }
	if err := WriteFileAtomic(path, []byte("later"), 0o644); err == nil {
		t.Fatal("WriteFileAtomic swallowed the directory fsync error")
	}
}

// TestConcurrentMultiProcessWriters models the cluster deployment: several
// store handles on one shared directory (as separate worker processes
// would have) racing to publish the same fingerprint while readers load it
// concurrently. The atomic write-then-rename contract means a reader sees
// either a miss or one complete, valid entry — never a torn document — and
// the final state is a single winner.
func TestConcurrentMultiProcessWriters(t *testing.T) {
	dir := t.TempDir()
	j := testJob()
	key := j.Fingerprint()

	const writers = 4
	stores := make([]*Store, writers)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}

	// Each writer publishes its own distinguishable (but valid) result, so
	// a torn interleaving of two documents would fail to parse or carry an
	// impossible cycle count.
	results := make([]*engine.Result, writers)
	for i := range results {
		results[i] = testResult()
		results[i].Report.Cycles = uint64(10000 + i)
	}
	valid := make(map[uint64]bool, writers)
	for _, r := range results {
		valid[r.Report.Cycles] = true
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, writers*20)
	for i := 0; i < writers; i++ {
		// Writer i hammers the shared key.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for n := 0; n < 10; n++ {
				if err := stores[i].Store(key, j, results[i]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		// Reader i loads through a different handle the whole time.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			reader := stores[(i+1)%writers]
			for n := 0; n < 50; n++ {
				got, err := reader.Load(key)
				if err != nil {
					errs <- err
					return
				}
				if got != nil && !valid[got.Report.Cycles] {
					errs <- fmt.Errorf("torn read: cycles %d is no writer's value", got.Report.Cycles)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// One winner: a fresh handle sees exactly one complete entry whose
	// payload is one of the racers', and nobody counted an I/O error or a
	// corrupt-entry eviction.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Load(key)
	if err != nil || got == nil {
		t.Fatalf("final Load = (%v, %v), want the winning entry", got, err)
	}
	if !valid[got.Report.Cycles] {
		t.Fatalf("final entry cycles %d is no writer's value", got.Report.Cycles)
	}
	if n, err := fresh.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want exactly 1 entry", n, err)
	}
	for i, s := range stores {
		if c := s.Counters(); c.Errors != 0 {
			t.Errorf("store %d counted %d errors under concurrent writers", i, c.Errors)
		}
	}
}

// TestEngineHealsCorruptEntry is the store-miss-on-corruption contract
// end to end: a corrupt entry makes the engine re-simulate (counted as a
// store error, not a hit), and the successful run re-publishes a clean,
// verified entry — the store heals through its own miss path.
func TestEngineHealsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	j := testJob()
	key := j.Fingerprint()

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := engine.New(engine.Config{Workers: 1, Store: s1})
	live, err := e1.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the published entry in place.
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"schema":2,"key":"`+key+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Config{Workers: 1, Store: s2})
	healed, err := e2.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if c := e2.Counters(); c.Simulated != 1 || c.StoreHits != 0 || c.StoreErrors != 1 {
		t.Fatalf("second engine counters %+v, want 1 simulated / 0 store hits / 1 store error", c)
	}
	a, _ := json.Marshal(live)
	b, _ := json.Marshal(healed)
	if string(a) != string(b) {
		t.Fatal("re-simulated result differs from the original run")
	}

	// The re-publish healed the entry: a third engine gets a store hit.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3 := engine.New(engine.Config{Workers: 1, Store: s3})
	if _, err := e3.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if c := e3.Counters(); c.StoreHits != 1 || c.Simulated != 0 {
		t.Fatalf("third engine counters %+v, want a clean store hit", c)
	}
	if n, err := s3.Quarantined(); err != nil || n != 1 {
		t.Fatalf("Quarantined() = (%d, %v), want the corpse preserved", n, err)
	}
}

// TestEngineAnswersFromStore is the cross-process warm-cache contract:
// a second engine sharing the store directory answers the same tuple
// without simulating, and the result is byte-identical to the live run.
func TestEngineAnswersFromStore(t *testing.T) {
	dir := t.TempDir()
	j := testJob()

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := engine.New(engine.Config{Workers: 1, Store: s1})
	live, err := e1.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if c := e1.Counters(); c.Simulated != 1 || c.StoreHits != 0 {
		t.Fatalf("first engine counters %+v", c)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Config{Workers: 1, Store: s2})
	cached, err := e2.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if c := e2.Counters(); c.Simulated != 0 || c.StoreHits != 1 {
		t.Fatalf("second engine counters %+v, want 0 simulated / 1 store hit", c)
	}
	a, _ := json.Marshal(live)
	b, _ := json.Marshal(cached)
	if string(a) != string(b) {
		t.Fatal("store-answered result differs from the live run")
	}
}
