package resultstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func testJob() engine.Job {
	cfg := config.Default()
	cfg.Cores = 1
	return engine.Job{
		Kind:   workload.Queue,
		Params: workload.Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 1},
		Scheme: core.PMEMNoLog,
		Config: cfg,
	}
}

func testResult() *engine.Result {
	rep := &stats.Report{Label: "test", Cycles: 12345, CoreStat: make([]stats.Core, 1)}
	rep.CoreStat[0].Retired = 678
	return &engine.Result{Report: rep, EmittedLogFlushes: 9}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	key := j.Fingerprint()

	if got, err := s.Load(key); err != nil || got != nil {
		t.Fatalf("Load before Store = (%v, %v), want miss", got, err)
	}
	if err := s.Store(key, j, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Load after Store missed")
	}
	// The loaded result must serialize byte-identically to the live one:
	// that equality is what lets the serving layer answer from disk
	// without observable difference.
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the result:\nlive: %s\ndisk: %s", a, b)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 {
		t.Fatalf("counters %+v, want 1 hit / 1 miss / 1 write", c)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, res := testJob(), testResult()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Store(j.Fingerprint(), j, res); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load(j.Fingerprint())
	if err != nil || got == nil {
		t.Fatalf("entry did not survive reopen: (%v, %v)", got, err)
	}
	if got.Report.Cycles != res.Report.Cycles {
		t.Fatalf("cycles %d, want %d", got.Report.Cycles, res.Report.Cycles)
	}
	if n, err := s2.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1", n, err)
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	key := j.Fingerprint()
	if err := s.Store(key, j, testResult()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	// Truncate the entry mid-document, as an interrupted non-atomic
	// writer would have.
	if err := os.WriteFile(path, []byte(`{"schema":1,"key":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Load(key); err != nil || got != nil {
		t.Fatalf("corrupt entry loaded as (%v, %v), want miss", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not removed")
	}
	if c := s.Counters(); c.Errors == 0 {
		t.Fatalf("counters %+v: corruption not counted as an error", c)
	}
}

func TestRejectsBadKeysAndEmptyResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	if err := s.Store("../../etc/passwd", j, testResult()); err == nil {
		t.Fatal("path-traversal key accepted")
	}
	if err := s.Store(j.Fingerprint(), j, &engine.Result{}); err == nil {
		t.Fatal("empty result accepted")
	}
	if got, err := s.Load("ZZ"); err != nil || got != nil {
		t.Fatal("malformed key did not miss cleanly")
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := WriteFileAtomic(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "world" {
		t.Fatalf("read back (%q, %v)", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

// TestAtomicWriteSyncsParentDir pins the crash contract of the publish
// step: the parent directory must be fsynced after the rename (not
// before), otherwise a host crash can drop the freshly renamed entry and
// the published result vanishes even though its blocks were synced. The
// test also checks a directory-sync failure is reported to the caller
// rather than swallowed.
func TestAtomicWriteSyncsParentDir(t *testing.T) {
	orig := syncDir
	defer func() { syncDir = orig }()

	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	var synced []string
	syncDir = func(d string) error {
		// The rename must already be visible when the directory is synced;
		// syncing first would make the fsync cover the pre-rename state.
		if _, err := os.Stat(path); err != nil {
			t.Errorf("dir fsync ran before rename was visible: %v", err)
		}
		synced = append(synced, filepath.Clean(d))
		return orig(d)
	}
	if err := WriteFileAtomic(path, []byte("published"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != filepath.Clean(dir) {
		t.Fatalf("directory fsyncs = %q, want exactly one of %q", synced, dir)
	}

	syncDir = func(string) error { return fmt.Errorf("injected dir fsync failure") }
	if err := WriteFileAtomic(path, []byte("later"), 0o644); err == nil {
		t.Fatal("WriteFileAtomic swallowed the directory fsync error")
	}
}

// TestConcurrentMultiProcessWriters models the cluster deployment: several
// store handles on one shared directory (as separate worker processes
// would have) racing to publish the same fingerprint while readers load it
// concurrently. The atomic write-then-rename contract means a reader sees
// either a miss or one complete, valid entry — never a torn document — and
// the final state is a single winner.
func TestConcurrentMultiProcessWriters(t *testing.T) {
	dir := t.TempDir()
	j := testJob()
	key := j.Fingerprint()

	const writers = 4
	stores := make([]*Store, writers)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}

	// Each writer publishes its own distinguishable (but valid) result, so
	// a torn interleaving of two documents would fail to parse or carry an
	// impossible cycle count.
	results := make([]*engine.Result, writers)
	for i := range results {
		results[i] = testResult()
		results[i].Report.Cycles = uint64(10000 + i)
	}
	valid := make(map[uint64]bool, writers)
	for _, r := range results {
		valid[r.Report.Cycles] = true
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, writers*20)
	for i := 0; i < writers; i++ {
		// Writer i hammers the shared key.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for n := 0; n < 10; n++ {
				if err := stores[i].Store(key, j, results[i]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		// Reader i loads through a different handle the whole time.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			reader := stores[(i+1)%writers]
			for n := 0; n < 50; n++ {
				got, err := reader.Load(key)
				if err != nil {
					errs <- err
					return
				}
				if got != nil && !valid[got.Report.Cycles] {
					errs <- fmt.Errorf("torn read: cycles %d is no writer's value", got.Report.Cycles)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// One winner: a fresh handle sees exactly one complete entry whose
	// payload is one of the racers', and nobody counted an I/O error or a
	// corrupt-entry eviction.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Load(key)
	if err != nil || got == nil {
		t.Fatalf("final Load = (%v, %v), want the winning entry", got, err)
	}
	if !valid[got.Report.Cycles] {
		t.Fatalf("final entry cycles %d is no writer's value", got.Report.Cycles)
	}
	if n, err := fresh.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want exactly 1 entry", n, err)
	}
	for i, s := range stores {
		if c := s.Counters(); c.Errors != 0 {
			t.Errorf("store %d counted %d errors under concurrent writers", i, c.Errors)
		}
	}
}

// TestEngineAnswersFromStore is the cross-process warm-cache contract:
// a second engine sharing the store directory answers the same tuple
// without simulating, and the result is byte-identical to the live run.
func TestEngineAnswersFromStore(t *testing.T) {
	dir := t.TempDir()
	j := testJob()

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := engine.New(engine.Config{Workers: 1, Store: s1})
	live, err := e1.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if c := e1.Counters(); c.Simulated != 1 || c.StoreHits != 0 {
		t.Fatalf("first engine counters %+v", c)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Config{Workers: 1, Store: s2})
	cached, err := e2.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if c := e2.Counters(); c.Simulated != 0 || c.StoreHits != 1 {
		t.Fatalf("second engine counters %+v, want 0 simulated / 1 store hit", c)
	}
	a, _ := json.Marshal(live)
	b, _ := json.Marshal(cached)
	if string(a) != string(b) {
		t.Fatal("store-answered result differs from the live run")
	}
}
