package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/provenance"
)

// TestSchemaV2ReadCompat: entries written before the provenance schema
// (v2, no rev field) must keep loading, and their provenance view must
// report the unknown revision rather than inventing one.
func TestSchemaV2ReadCompat(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	key := j.Fingerprint()
	raw, err := json.Marshal(result{Report: res.Report, EmittedLogFlushes: res.EmittedLogFlushes})
	if err != nil {
		t.Fatal(err)
	}
	v2 := entry{Schema: 2, Key: key, Job: j.String(), Digest: digest(raw), Result: raw}
	data, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.Load(key)
	if err != nil || got == nil {
		t.Fatalf("Load of schema-2 entry = (%v, %v), want hit", got, err)
	}
	info, err := VerifyEntry(key, data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Schema != 2 || info.Rev != provenance.Unknown {
		t.Fatalf("schema-2 provenance view = %+v, want schema 2 / unknown rev", info)
	}

	// Schema versions outside [min, current] stay rejected.
	for _, bad := range []int{1, schemaVersion + 1} {
		v := v2
		v.Schema = bad
		data, _ := json.Marshal(v)
		if _, err := VerifyEntry(key, data); err == nil {
			t.Fatalf("schema %d entry verified; want rejection", bad)
		}
	}
}

// TestWalkDeterministicOrder: Walk must visit live entries in sorted
// key order, identically across calls — the property backfill, audit
// and Scrub lean on for reproducible reports.
func TestWalkDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	var want []string
	for i := 0; i < 8; i++ {
		jj := j
		jj.Params.Seed = int64(100 + i)
		key := jj.Fingerprint()
		if err := s.Store(key, jj, res); err != nil {
			t.Fatal(err)
		}
		want = append(want, key)
	}
	sort.Strings(want)

	walk := func() []string {
		var keys []string
		err := s.Walk(func(key string, raw []byte, readErr error) error {
			if readErr != nil {
				t.Fatalf("walk read %s: %v", key, readErr)
			}
			if _, err := VerifyEntry(key, raw); err != nil {
				t.Fatalf("walk handed unverifiable bytes for %s: %v", key, err)
			}
			keys = append(keys, key)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return keys
	}
	first := walk()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("walk order %v, want sorted %v", first, want)
	}
	if second := walk(); !reflect.DeepEqual(first, second) {
		t.Fatalf("walk not deterministic: %v then %v", first, second)
	}
}

// TestWalkSkipsServiceDirs: quarantined corpses and the ledger
// directory are not live entries; Walk must not hand them to callers,
// and Len must agree with Walk.
func TestWalkSkipsServiceDirs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	key := j.Fingerprint()
	if err := s.Store(key, j, res); err != nil {
		t.Fatal(err)
	}
	// A corrupt sibling gets quarantined on Load.
	j2 := j
	j2.Params.Seed = 2
	key2 := j2.Fingerprint()
	if err := s.Store(key2, j2, res); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, key2[:2], key2+".json")
	if err := os.WriteFile(p2, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(key2); err == nil {
		t.Fatal("corrupt entry loaded")
	}
	// Ledger files live under the store root but are not entries.
	if err := os.MkdirAll(filepath.Join(dir, LedgerDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, LedgerDir, "ledger.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var keys []string
	if err := s.Walk(func(k string, raw []byte, readErr error) error {
		keys = append(keys, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("walk visited %v, want only %s", keys, key)
	}
	n, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
}

// TestWalkStopsOnCallbackError: a callback error aborts the walk and
// surfaces to the caller.
func TestWalkStopsOnCallbackError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, res := testJob(), testResult()
	for i := 0; i < 3; i++ {
		jj := j
		jj.Params.Seed = int64(i + 1)
		if err := s.Store(jj.Fingerprint(), jj, res); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	werr := s.Walk(func(k string, raw []byte, readErr error) error {
		seen++
		return fmt.Errorf("stop here")
	})
	if werr == nil || seen != 1 {
		t.Fatalf("walk (err %v, visited %d), want the first callback error to abort", werr, seen)
	}
}
