package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// serverMetrics holds the serving-layer counters exported at /metrics in
// Prometheus text format alongside the engine and result-store counters.
// Everything is hand-rolled atomics: the repo takes no dependency on a
// metrics client library.
type serverMetrics struct {
	requests      atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsMerged    atomic.Uint64
	jobsRejected  atomic.Uint64
	queueDepth    atomic.Int64

	// queuedByType breaks the admission-queue depth down per job kind
	// ("sim", "figure", "campaign") — the autoscaling signal: a deep
	// campaign backlog wants more cluster workers, a deep sim backlog
	// wants more serve workers.
	queuedMu     sync.Mutex
	queuedByType map[string]int64

	requestSeconds histogram
	jobSeconds     histogram
}

// addQueuedByType adjusts the per-kind queue depth; it mirrors every
// queueDepth transition (admit, dequeue-to-run, cancel-while-queued).
func (m *serverMetrics) addQueuedByType(typ string, delta int64) {
	m.queuedMu.Lock()
	if m.queuedByType == nil {
		m.queuedByType = make(map[string]int64)
	}
	m.queuedByType[typ] += delta
	m.queuedMu.Unlock()
}

// queuedByTypeSnapshot returns the per-kind depths with stable key order.
func (m *serverMetrics) queuedByTypeSnapshot() (types []string, depths map[string]int64) {
	m.queuedMu.Lock()
	depths = make(map[string]int64, len(m.queuedByType))
	for k, v := range m.queuedByType {
		depths[k] = v
		types = append(types, k)
	}
	m.queuedMu.Unlock()
	sort.Strings(types)
	return types, depths
}

// histBuckets are the latency histogram upper bounds in seconds: tight
// sub-millisecond buckets for cache-hit requests, coarse multi-second
// ones for cold figure suites and campaigns.
var histBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120, 600}

// histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation. sumMicros keeps the running sum in integer microseconds so
// it can live in an atomic.
type histogram struct {
	counts    [len(histBuckets) + 1]atomic.Uint64 // +1 for +Inf
	count     atomic.Uint64
	sumMicros atomic.Uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(histBuckets[:], seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(uint64(seconds * 1e6))
}

// write emits the histogram in Prometheus exposition format.
func (h *histogram) write(w *metricsWriter, name string) {
	w.typ(name, "histogram")
	var cum uint64
	for i, le := range histBuckets[:] {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += h.counts[len(histBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// metricsWriter accumulates the exposition body.
type metricsWriter struct {
	http.ResponseWriter
}

func (w *metricsWriter) typ(name, kind string) {
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func (w *metricsWriter) counter(name string, v uint64) {
	w.typ(name, "counter")
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func (w *metricsWriter) gauge(name string, v float64) {
	w.typ(name, "gauge")
	if math.IsNaN(v) {
		fmt.Fprintf(w, "%s NaN\n", name)
		return
	}
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// handleMetrics renders every layer's counters: HTTP, queue, engine and
// result store.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	mw := &metricsWriter{ResponseWriter: w}

	// Serving layer.
	mw.counter("proteus_serve_requests_total", s.metrics.requests.Load())
	mw.counter("proteus_serve_jobs_done_total", s.metrics.jobsDone.Load())
	mw.counter("proteus_serve_jobs_failed_total", s.metrics.jobsFailed.Load())
	mw.counter("proteus_serve_jobs_cancelled_total", s.metrics.jobsCancelled.Load())
	mw.counter("proteus_serve_jobs_merged_total", s.metrics.jobsMerged.Load())
	mw.counter("proteus_serve_jobs_rejected_total", s.metrics.jobsRejected.Load())
	mw.gauge("proteus_serve_queue_depth", float64(s.metrics.queueDepth.Load()))
	if types, depths := s.metrics.queuedByTypeSnapshot(); len(types) > 0 {
		mw.typ("proteus_serve_queue_depth_by_type", "gauge")
		for _, typ := range types {
			fmt.Fprintf(mw, "proteus_serve_queue_depth_by_type{type=%q} %d\n", typ, depths[typ])
		}
	}
	mw.gauge("proteus_serve_queue_capacity", float64(s.conf.QueueDepth))
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	mw.gauge("proteus_serve_draining", draining)
	s.metrics.requestSeconds.write(mw, "proteus_serve_request_duration_seconds")
	s.metrics.jobSeconds.write(mw, "proteus_serve_job_duration_seconds")

	// Engine.
	ec := s.conf.Engine.Counters()
	mw.counter("proteus_engine_simulated_total", ec.Simulated)
	mw.counter("proteus_engine_deduped_total", ec.Deduped)
	mw.counter("proteus_engine_workloads_built_total", ec.WorkloadsBuilt)
	mw.counter("proteus_engine_failed_total", ec.Failed)
	mw.counter("proteus_engine_store_hits_total", ec.StoreHits)
	mw.counter("proteus_engine_store_errors_total", ec.StoreErrors)

	// Result store: hit ratio over this process's lookups.
	if s.conf.Store != nil {
		sc := s.conf.Store.Counters()
		mw.counter("proteus_store_hits_total", sc.Hits)
		mw.counter("proteus_store_misses_total", sc.Misses)
		mw.counter("proteus_store_writes_total", sc.Writes)
		mw.counter("proteus_store_errors_total", sc.Errors)
		mw.counter("proteus_store_corrupt_total", sc.Corrupt)
		mw.counter("proteus_store_quarantined_total", sc.Quarantined)
		ratio := math.NaN()
		if tot := sc.Hits + sc.Misses; tot > 0 {
			ratio = float64(sc.Hits) / float64(tot)
		}
		mw.gauge("proteus_store_cache_hit_ratio", ratio)
	}

	// Provenance ledger: chain tip shape plus batcher throughput — the
	// sealed/submitted gap is the current unflushed backlog.
	if s.conf.Ledger != nil {
		h := s.conf.Ledger.Head()
		mw.gauge("proteus_ledger_records", float64(h.Records))
		mw.gauge("proteus_ledger_leaves", float64(h.Leaves))
	}
	if s.conf.Admissions != nil {
		bc := s.conf.Admissions.Counters()
		mw.counter("proteus_ledger_leaves_submitted_total", bc.Submitted)
		mw.counter("proteus_ledger_leaves_sealed_total", bc.Sealed)
		mw.counter("proteus_ledger_batches_sealed_total", bc.Batches)
		mw.counter("proteus_ledger_seal_errors_total", bc.Errors)
	}

	// Cluster coordinator: queue states, failure/requeue counters and
	// per-worker gauges (leased, completed, requeued, lease expiries).
	if s.conf.Cluster != nil {
		cs := s.conf.Cluster.Stats()
		mw.gauge("proteus_cluster_items_pending", float64(cs.Pending))
		mw.gauge("proteus_cluster_items_leased", float64(cs.Leased))
		mw.gauge("proteus_cluster_items_done", float64(cs.Done))
		mw.gauge("proteus_cluster_items_quarantined", float64(cs.Quarantined))
		mw.gauge("proteus_cluster_workers", float64(len(cs.Workers)))
		mw.counter("proteus_cluster_leases_granted_total", cs.LeasesGranted)
		mw.counter("proteus_cluster_lease_expired_total", cs.LeaseExpired)
		mw.counter("proteus_cluster_requeued_total", cs.Requeued)
		mw.counter("proteus_cluster_completed_total", cs.Completed)
		mw.counter("proteus_cluster_quarantined_total", cs.QuarantinedN)
		mw.counter("proteus_cluster_stale_reports_total", cs.StaleReports)
		mw.counter("proteus_cluster_stamp_rejected_total", cs.StampRejected)
		mw.counter("proteus_cluster_workers_evicted_total", cs.WorkersEvicted)
		mw.counter("proteus_cluster_unknown_worker_total", cs.UnknownWorkerCalls)
		for _, m := range []struct {
			name string
			get  func(w cluster.WorkerStats) uint64
		}{
			{"leased", func(w cluster.WorkerStats) uint64 { return uint64(w.Leased) }},
			{"completed", func(w cluster.WorkerStats) uint64 { return w.Completed }},
			{"requeued", func(w cluster.WorkerStats) uint64 { return w.Requeued }},
			{"lease_expired", func(w cluster.WorkerStats) uint64 { return w.Expired }},
		} {
			mw.typ("proteus_cluster_worker_"+m.name, "gauge")
			for _, w := range cs.Workers {
				fmt.Fprintf(mw, "proteus_cluster_worker_%s{worker=%q} %d\n", m.name, w.Name, m.get(w))
			}
		}
	}
}
