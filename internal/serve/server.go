// Package serve is the simulation-as-a-service layer: an HTTP JSON job
// server over the shared internal/engine. It accepts single simulations,
// figure suites and crash campaigns, executes them on a bounded worker
// pool behind a bounded admission queue (full queue → 429 + Retry-After),
// collapses identical in-flight submissions into one task, answers
// repeated tuples from the engine's memo table and the persistent
// internal/resultstore, propagates per-request deadlines and client
// disconnects into engine contexts, and drains gracefully on SIGTERM.
//
// Endpoints:
//
//	POST /v1/jobs            submit a Spec; 202 {id} (200 if merged into
//	                         an identical in-flight task); ?wait=1 blocks
//	                         until completion and ties the job's context
//	                         to the request's
//	GET  /v1/jobs            list job summaries
//	GET  /v1/jobs/{id}       status + result when done
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	POST /v1/store/scrub     verify every result-store entry, quarantine
//	                         corrupt ones; returns the scrub report
//	                         (requires Config.Store)
//	GET  /healthz            200 ok, 503 while draining
//	GET  /metrics            Prometheus text format
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/provenance"
	"repro/internal/resultstore"
)

// State is a task's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Config tunes a Server.
type Config struct {
	// Engine executes all jobs; required.
	Engine *engine.Engine
	// Store, when non-nil, is reported in /metrics (cache hit ratio,
	// entry writes). The engine holds the actual read/write hook.
	Store *resultstore.Store
	// QueueDepth bounds the admission queue; <= 0 means 64. A submission
	// arriving while the queue is full is rejected with 429.
	QueueDepth int
	// Workers bounds concurrently executing tasks; <= 0 means 2. Note
	// each task may itself fan out on the engine's worker pool.
	Workers int
	// DefaultTimeout bounds a job's execution when the spec does not set
	// timeout_ms; 0 means unbounded.
	DefaultTimeout time.Duration
	// RetryAfter is advertised in the Retry-After header of 429/503
	// responses; <= 0 means 1s.
	RetryAfter time.Duration
	// Cluster, when non-nil, turns this server into the cluster
	// coordinator: its work-pull protocol is mounted under /v1/cluster/,
	// and "sim" and "campaign" submissions are scattered to pull-based
	// workers instead of running on the local engine ("figure" suites
	// stay local — their job matrices already dedup through the shared
	// store). With no workers connected, cluster jobs wait in the
	// coordinator's queue until one joins.
	Cluster *cluster.Coordinator
	// Ledger, when non-nil, mounts the provenance endpoints
	// (GET /v1/ledger/head, GET /v1/ledger/proof?key=…) over the
	// store's tamper-evident ledger.
	Ledger *ledger.Ledger
	// Admissions, when non-nil, records every admitted submission as a
	// batched ledger leaf; the inclusion proof appears in the task's
	// status once its batch seals. Submission is non-blocking — the
	// admission path never waits on ledger I/O.
	Admissions *ledger.Batcher
	// Logger receives structured request and task logs; nil discards.
	Logger *slog.Logger
}

// Server is the job service. Create with New, mount Handler, and call
// Drain before exit.
type Server struct {
	conf  Config
	log   *slog.Logger
	queue chan *task

	baseCtx  context.Context
	baseStop context.CancelFunc
	workers  sync.WaitGroup

	mu       sync.Mutex
	draining bool
	tasks    map[string]*task // by id
	inflight map[string]*task // singleflight: spec fingerprint → live task
	nextID   int

	metrics serverMetrics
}

// task is one admitted submission.
type task struct {
	id  string
	fp  string
	job *job

	cancel context.CancelFunc
	done   chan struct{}

	// admission, when the server ledgers admissions, resolves to the
	// inclusion proof once the admission's batch seals. Written before
	// the task becomes visible; read-only afterwards.
	admission *ledger.Ticket

	mu        sync.Mutex
	state     State
	result    json.RawMessage
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	merged    int // extra submissions collapsed into this task
}

// New returns a server over the engine. Call Start to launch the workers.
func New(conf Config) (*Server, error) {
	if conf.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if conf.QueueDepth <= 0 {
		conf.QueueDepth = 64
	}
	if conf.Workers <= 0 {
		conf.Workers = 2
	}
	if conf.RetryAfter <= 0 {
		conf.RetryAfter = time.Second
	}
	log := conf.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		conf:     conf,
		log:      log,
		queue:    make(chan *task, conf.QueueDepth),
		baseCtx:  ctx,
		baseStop: stop,
		tasks:    make(map[string]*task),
		inflight: make(map[string]*task),
	}
	return s, nil
}

// Start launches the execution workers.
func (s *Server) Start() {
	for i := 0; i < s.conf.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for t := range s.queue {
				s.run(t)
			}
		}()
	}
}

// run executes one task on a worker.
func (s *Server) run(t *task) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	timeout := t.job.spec.Timeout()
	if timeout == 0 {
		timeout = s.conf.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	defer cancel()

	t.mu.Lock()
	if t.state == StateCancelled {
		t.mu.Unlock()
		return
	}
	t.state = StateRunning
	t.started = time.Now()
	t.cancel = cancel
	t.mu.Unlock()
	s.metrics.queueDepth.Add(-1)
	s.metrics.addQueuedByType(t.job.spec.Type, -1)

	res, err := t.job.execute(ctx, s.conf.Engine, s.conf.Cluster)

	t.mu.Lock()
	t.finished = time.Now()
	elapsed := t.finished.Sub(t.started)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil && errors.Is(err, context.DeadlineExceeded)):
		t.state = StateCancelled
		t.errMsg = err.Error()
		s.metrics.jobsCancelled.Add(1)
	case err != nil:
		t.state = StateFailed
		t.errMsg = err.Error()
		s.metrics.jobsFailed.Add(1)
	default:
		t.state = StateDone
		t.result = res
		s.metrics.jobsDone.Add(1)
	}
	state := t.state
	t.mu.Unlock()
	s.metrics.jobSeconds.observe(elapsed.Seconds())
	s.retire(t)
	close(t.done)
	s.log.Info("job finished", "id", t.id, "type", t.job.spec.Type, "state", string(state),
		"elapsed", elapsed.Round(time.Millisecond).String(), "err", t.errMsg)
}

// retire removes the task from the singleflight table once it can no
// longer absorb submissions.
func (s *Server) retire(t *task) {
	s.mu.Lock()
	if s.inflight[t.fp] == t {
		delete(s.inflight, t.fp)
	}
	s.mu.Unlock()
}

// Submit admits a spec: it either merges into an identical in-flight
// task, enqueues a new one, or reports backpressure (ErrQueueFull) /
// drain (ErrDraining).
func (s *Server) Submit(spec Spec) (*task, bool, error) {
	j, err := compile(spec)
	if err != nil {
		return nil, false, err
	}
	fp := j.fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if live, ok := s.inflight[fp]; ok {
		live.mu.Lock()
		live.merged++
		live.mu.Unlock()
		s.metrics.jobsMerged.Add(1)
		return live, true, nil
	}
	s.nextID++
	t := &task{
		id:        fmt.Sprintf("job-%d", s.nextID),
		fp:        fp,
		job:       j,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- t:
	default:
		s.nextID--
		s.metrics.jobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	if s.conf.Admissions != nil {
		t.admission = s.conf.Admissions.Submit(admissionLeaf(fp, j))
	}
	s.tasks[t.id] = t
	s.inflight[fp] = t
	s.metrics.queueDepth.Add(1)
	s.metrics.addQueuedByType(t.job.spec.Type, 1)
	return t, false, nil
}

// Cancel cancels a queued or running task. It reports whether the id was
// known.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	t, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	t.mu.Lock()
	switch t.state {
	case StateQueued:
		t.state = StateCancelled
		t.errMsg = "cancelled before execution"
		t.finished = time.Now()
		s.metrics.jobsCancelled.Add(1)
		s.metrics.queueDepth.Add(-1)
		s.metrics.addQueuedByType(t.job.spec.Type, -1)
		close(t.done)
	case StateRunning:
		if t.cancel != nil {
			t.cancel()
		}
	}
	t.mu.Unlock()
	s.retire(t)
	return true
}

// ErrQueueFull reports admission-queue backpressure (HTTP 429).
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrDraining reports a submission during graceful shutdown (HTTP 503).
var ErrDraining = errors.New("serve: server is draining")

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: new submissions are refused
// with ErrDraining, queued and running tasks are given until ctx expires
// to finish, and any still alive after that are cancelled and awaited.
// The result store needs no separate flush — every write is an atomic
// synchronous publish. Drain returns nil when all work completed, or
// ctx's error when the deadline forced cancellation.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: already draining")
	}
	s.draining = true
	// No submitter can be inside Submit now (it holds mu), so the queue
	// has no producers left and closing it lets the workers drain it.
	close(s.queue)
	s.mu.Unlock()
	s.log.Info("drain started", "queued", s.metrics.queueDepth.Load())

	finished := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline: cancel everything still running and wait it out.
		err = ctx.Err()
		s.baseStop()
		s.mu.Lock()
		for _, t := range s.tasks {
			t.mu.Lock()
			if t.state == StateQueued {
				t.state = StateCancelled
				t.errMsg = "cancelled by drain deadline"
				t.finished = time.Now()
				s.metrics.jobsCancelled.Add(1)
				s.metrics.queueDepth.Add(-1)
				s.metrics.addQueuedByType(t.job.spec.Type, -1)
				close(t.done)
			}
			t.mu.Unlock()
		}
		s.mu.Unlock()
		<-finished
	}
	s.baseStop()
	s.log.Info("drain finished", "forced", err != nil)
	return err
}

// ---------------------------------------------------------------------
// HTTP layer

type statusResponse struct {
	ID        string                 `json:"id"`
	Type      string                 `json:"type"`
	State     State                  `json:"state"`
	Merged    int                    `json:"merged,omitempty"`
	Error     string                 `json:"error,omitempty"`
	Result    json.RawMessage        `json:"result,omitempty"`
	Elapsed   string                 `json:"elapsed,omitempty"`
	Deduped   bool                   `json:"deduped,omitempty"`
	Location  string                 `json:"location,omitempty"`
	Admission *ledger.InclusionProof `json:"admission,omitempty"`
}

func (t *task) status(deduped bool) statusResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := statusResponse{
		ID:       t.id,
		Type:     t.job.spec.Type,
		State:    t.state,
		Merged:   t.merged,
		Error:    t.errMsg,
		Deduped:  deduped,
		Location: "/v1/jobs/" + t.id,
	}
	if t.state == StateDone {
		out.Result = t.result
	}
	if !t.finished.IsZero() && !t.started.IsZero() {
		out.Elapsed = t.finished.Sub(t.started).Round(time.Millisecond).String()
	}
	if t.admission != nil {
		if p, err := t.admission.Proof(); err == nil {
			out.Admission = &p
		}
	}
	return out
}

// admissionLeaf records what the serve path accepted: the singleflight
// fingerprint, the job tuple when it is a single simulation (figure and
// campaign specs keep the spec type as the workload tag), and the code
// revision doing the admitting.
func admissionLeaf(fp string, j *job) ledger.Leaf {
	l := ledger.Leaf{
		Kind:     ledger.LeafAdmission,
		Key:      fp,
		Workload: j.spec.Type,
		Revision: provenance.Revision(),
	}
	if j.spec.Type == "sim" {
		l.ConfigFP = j.simJob.Config.Fingerprint()
		l.Scheme = j.simJob.Scheme.String()
		l.Workload = j.simJob.Kind.Abbrev()
	}
	return l
}

// Handler returns the server's HTTP handler with request logging and
// latency accounting wrapped around every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.conf.Store != nil {
		mux.HandleFunc("POST /v1/store/scrub", s.handleScrub)
	}
	if s.conf.Ledger != nil {
		mux.HandleFunc("GET /v1/ledger/head", s.handleLedgerHead)
		mux.HandleFunc("GET /v1/ledger/proof", s.handleLedgerProof)
	}
	if s.conf.Cluster != nil {
		mux.Handle("/v1/cluster/", http.StripPrefix("/v1/cluster", s.conf.Cluster.Handler()))
	}
	return s.withRequestLog(mux)
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.metrics.requestSeconds.observe(elapsed.Seconds())
		s.metrics.requests.Add(1)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"elapsed", elapsed.Round(time.Microsecond).String(), "remote", r.RemoteAddr)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	t, deduped, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(s.conf.RetryAfter))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.conf.RetryAfter))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	if r.URL.Query().Get("wait") != "" {
		// Synchronous mode: the job's lifetime is tied to the request.
		// A client disconnect (or request deadline) cancels the task —
		// and with it the engine context — unless another submission
		// shares it.
		select {
		case <-t.done:
		case <-r.Context().Done():
			t.mu.Lock()
			sole := t.merged == 0
			t.mu.Unlock()
			if sole {
				s.Cancel(t.id)
			}
			writeJSON(w, http.StatusRequestTimeout, t.status(deduped))
			return
		}
		writeJSON(w, http.StatusOK, t.status(deduped))
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	w.Header().Set("Location", "/v1/jobs/"+t.id)
	writeJSON(w, code, t.status(deduped))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	t, ok := s.tasks[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, t.status(false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if !s.Cancel(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]*task, 0, len(s.tasks))
	for _, t := range s.tasks {
		ids = append(ids, t)
	}
	s.mu.Unlock()
	out := make([]statusResponse, 0, len(ids))
	for _, t := range ids {
		st := t.status(false)
		st.Result = nil // summaries only
		out = append(out, st)
	}
	// Job ids are dense ("job-N"), so sort numerically by suffix.
	sortStatuses(out)
	writeJSON(w, http.StatusOK, out)
}

func sortStatuses(xs []statusResponse) {
	num := func(id string) int {
		n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
		return n
	}
	sort.Slice(xs, func(i, j int) bool { return num(xs[i].ID) < num(xs[j].ID) })
}

// handleScrub runs a full result-store verification pass and reports
// what it found — the operator's repair trigger after a disk scare. The
// store serves normally while the scrub walks it.
func (s *Server) handleScrub(w http.ResponseWriter, _ *http.Request) {
	rep, err := s.conf.Store.Scrub()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.log.Info("store scrubbed", "scanned", rep.Scanned, "corrupt", rep.Corrupt,
		"temps_removed", rep.TempsRemoved, "diverged", len(rep.Diverged))
	writeJSON(w, http.StatusOK, rep)
}

// handleLedgerHead publishes the chain tip — the one hash that
// summarizes the whole store history, what an external auditor pins.
func (s *Server) handleLedgerHead(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.conf.Ledger.Head())
}

// handleLedgerProof returns the inclusion proof for the newest leaf
// under ?key=…, optionally narrowed by ?kind=result|admission|completion.
func (s *Server) handleLedgerProof(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing key parameter"))
		return
	}
	p, err := s.conf.Ledger.Proof(key, r.URL.Query().Get("kind"))
	if errors.Is(err, ledger.ErrNoProof) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := map[string]string{"status": "ok", "revision": provenance.Revision()}
	if s.Draining() {
		status["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, status)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// retryAfterSeconds renders d as a whole-second Retry-After value,
// rounding up: advertising the floor of a 2.9s window invites clients
// back 900ms early into a still-full queue.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
