package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/resultstore"
)

// tinySpec names a sub-second simulation tuple.
func tinySpec(seed int64) Spec {
	return Spec{Type: "sim", Bench: "QE", Scheme: "PMEM+nolog", Mem: "nvm-fast",
		Threads: 1, SimOps: 8, InitOps: 32, Seed: seed}
}

// slowSpec names a tuple that simulates for many seconds — used to hold
// a worker busy while tests observe queue and cancellation behaviour.
func slowSpec() Spec {
	return Spec{Type: "sim", Bench: "QE", Scheme: "PMEM", Mem: "nvm-fast",
		Threads: 1, SimOps: 30000, InitOps: 32, Seed: 7}
}

func newTestServer(t *testing.T, conf Config) (*Server, *httptest.Server) {
	t.Helper()
	if conf.Engine == nil {
		conf.Engine = engine.New(engine.Config{Workers: 2})
	}
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec Spec, query string) (int, statusResponse) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad response %q: %v", data, err)
	}
	return resp.StatusCode, st
}

func poll(t *testing.T, ts *httptest.Server, id string, want ...State) statusResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st statusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return statusResponse{}
}

// TestDeterminismAcrossTransports is the acceptance contract: a job
// submitted over HTTP returns a report byte-identical to the same tuple
// executed directly on an engine (the CLI path), and byte-identical
// whether it was answered live, from the in-memory memo table, or from
// the on-disk result store.
func TestDeterminismAcrossTransports(t *testing.T) {
	spec := tinySpec(1)

	// Reference: the CLI path — compile the same spec and run it on a
	// private engine, then marshal the canonical payload.
	j, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.New(engine.Config{Workers: 1}).Run(context.Background(), j.simJob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(SimResult{
		Job:               j.simJob.String(),
		Fingerprint:       j.simJob.Fingerprint(),
		Report:            ref.Report,
		EmittedLogFlushes: ref.EmittedLogFlushes,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Config{Workers: 1, Store: store1})
	_, ts1 := newTestServer(t, Config{Engine: eng1, Store: store1})

	// Live run over HTTP.
	code, st := submit(t, ts1, spec, "?wait=1")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("live: code=%d state=%s err=%s", code, st.State, st.Error)
	}
	live := st.Result

	// Memo-table answer: same server, same spec.
	_, st = submit(t, ts1, spec, "?wait=1")
	memo := st.Result

	// On-disk answer: a fresh process (new engine, new server) sharing
	// only the store directory.
	store2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(engine.Config{Workers: 1, Store: store2})
	_, ts2 := newTestServer(t, Config{Engine: eng2, Store: store2})
	_, st = submit(t, ts2, spec, "?wait=1")
	disk := st.Result

	for name, got := range map[string]json.RawMessage{"live": live, "memo": memo, "disk": disk} {
		if !bytes.Equal(got, want) {
			t.Errorf("%s result differs from the direct engine run:\n got: %s\nwant: %s", name, got, want)
		}
	}
	if c := eng2.Counters(); c.Simulated != 0 || c.StoreHits != 1 {
		t.Fatalf("disk-path engine counters %+v, want 0 simulated / 1 store hit", c)
	}
}

// TestQueueBackpressure fills the admission queue and asserts overload is
// refused with 429 + Retry-After rather than queued without bound. The
// server is deliberately not started, so nothing drains the queue.
func TestQueueBackpressure(t *testing.T) {
	s, err := New(Config{Engine: engine.New(engine.Config{Workers: 1}), QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, _ := submit(t, ts, tinySpec(int64(100+i)), "")
		if code != http.StatusAccepted {
			t.Fatalf("submission %d: code %d, want 202", i, code)
		}
	}
	body, _ := json.Marshal(tinySpec(999))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: code %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// An identical resubmission of a queued spec still merges — the
	// singleflight path does not consume a queue slot.
	code, st := submit(t, ts, tinySpec(100), "")
	if code != http.StatusOK || !st.Deduped {
		t.Fatalf("identical spec on a full queue: code=%d deduped=%v, want 200 merged", code, st.Deduped)
	}
}

// TestSingleflightAcrossRequests: submissions identical to an in-flight
// job merge into its task instead of queueing a duplicate.
func TestSingleflightAcrossRequests(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	s, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	_, first := submit(t, ts, slowSpec(), "")
	poll(t, ts, first.ID, StateRunning)
	for i := 0; i < 3; i++ {
		code, st := submit(t, ts, slowSpec(), "")
		if code != http.StatusOK || !st.Deduped || st.ID != first.ID {
			t.Fatalf("resubmission %d: code=%d deduped=%v id=%s, want merge into %s",
				i, code, st.Deduped, st.ID, first.ID)
		}
	}
	st := poll(t, ts, first.ID, StateRunning)
	if st.Merged != 3 {
		t.Fatalf("task absorbed %d submissions, want 3", st.Merged)
	}
	s.Cancel(first.ID)
	poll(t, ts, first.ID, StateCancelled)
}

// TestClientDisconnectCancelsEngine: a wait-mode client going away must
// cancel the engine context of its job.
func TestClientDisconnectCancelsEngine(t *testing.T) {
	started := make(chan struct{}, 1)
	finished := make(chan error, 1)
	eng := engine.New(engine.Config{Workers: 1, Progress: func(ev engine.Event) {
		switch ev.Phase {
		case engine.JobStart:
			started <- struct{}{}
		case engine.JobDone:
			finished <- ev.Err
		}
	}})
	_, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(slowSpec())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-started:
	case <-time.After(time.Minute):
		t.Fatal("job never started")
	}
	cancel() // client disconnects mid-run
	<-errc

	select {
	case err := <-finished:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine job finished with %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine context was not cancelled by the client disconnect")
	}
	// The engine must stay clean: the tuple was not memoized as a
	// failure and can be recomputed by a later request.
	if c := eng.Counters(); c.Failed != 0 {
		t.Fatalf("cancelled job recorded as failure: %+v", c)
	}
}

// TestGracefulDrain: Drain finishes queued work, refuses new
// submissions, and flips /healthz to 503.
func TestGracefulDrain(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	s, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	code, st := submit(t, ts, tinySpec(3), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// While draining: health reports 503 and submissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	code, _ = submit(t, ts, tinySpec(4), "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: code %d, want 503", code)
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The queued job was finished, not dropped.
	fin := poll(t, ts, st.ID, StateDone)
	if fin.Result == nil {
		t.Fatal("drained job has no result")
	}
}

// TestDrainDeadlineCancelsRunningJobs: a drain whose context expires
// cancels in-flight work instead of hanging.
func TestDrainDeadlineCancelsRunningJobs(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	s, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	_, st := submit(t, ts, slowSpec(), "")
	poll(t, ts, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	fin := poll(t, ts, st.ID, StateCancelled)
	if fin.State != StateCancelled {
		t.Fatalf("running job state %s after forced drain", fin.State)
	}
}

// TestWarmCacheFigureSuite is the warm-cache acceptance criterion: a
// second submission of an identical Quick-scale figure suite is answered
// from the result store without re-simulation.
func TestWarmCacheFigureSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Quick-scale figure suite twice")
	}
	dir := t.TempDir()
	spec := Spec{Type: "figure", Figure: "6", Scale: "quick"}

	run := func() (json.RawMessage, engine.Counters, time.Duration) {
		store, err := resultstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Config{Store: store})
		_, ts := newTestServer(t, Config{Engine: eng, Store: store})
		start := time.Now()
		code, st := submit(t, ts, spec, "?wait=1")
		if code != http.StatusOK || st.State != StateDone {
			t.Fatalf("figure job: code=%d state=%s err=%s", code, st.State, st.Error)
		}
		return st.Result, eng.Counters(), time.Since(start)
	}

	cold, c1, coldWall := run()
	if c1.Simulated == 0 {
		t.Fatalf("cold run simulated nothing: %+v", c1)
	}
	warm, c2, warmWall := run()
	if c2.Simulated != 0 {
		t.Fatalf("warm run re-simulated %d tuples: %+v", c2.Simulated, c2)
	}
	if c2.StoreHits == 0 {
		t.Fatalf("warm run recorded no store hits: %+v", c2)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm figure result differs from cold")
	}
	if warmWall > coldWall/2 {
		t.Fatalf("warm run (%v) is not well under the cold run (%v)", warmWall, coldWall)
	}
}

// TestMetricsEndpoint asserts the Prometheus exposition carries every
// layer's series.
func TestMetricsEndpoint(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 1, Store: store})
	_, ts := newTestServer(t, Config{Engine: eng, Store: store, QueueDepth: 7})

	if code, st := submit(t, ts, tinySpec(2), "?wait=1"); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("warmup job failed: %d %+v", code, st)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	body := string(data)
	for _, want := range []string{
		"proteus_serve_jobs_done_total 1",
		"proteus_serve_queue_capacity 7",
		"proteus_serve_request_duration_seconds_bucket",
		"proteus_serve_job_duration_seconds_count",
		"proteus_engine_simulated_total 1",
		"proteus_store_writes_total 1",
		"proteus_store_cache_hit_ratio",
		"proteus_serve_draining 0",
		// The per-kind queue depth appears once a kind has been queued,
		// and drops back to zero when the job leaves the queue.
		"# TYPE proteus_serve_queue_depth_by_type gauge",
		`proteus_serve_queue_depth_by_type{type="sim"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestSpecValidation: malformed specs are 400s with a reason, never 500s.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []Spec{
		{Type: "warp-drive"},
		{Type: "sim", Bench: "nope"},
		{Type: "sim", Scheme: "nope"},
		{Type: "sim", Mem: "nope"},
		{Type: "figure", Figure: "13"},
		{Type: "campaign", Faults: "nope"},
		{Type: "sim", TimeoutMS: -5},
	}
	for i, spec := range cases {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e["error"] == "" {
			t.Errorf("case %d (%+v): code=%d err=%q, want 400 with reason", i, spec, resp.StatusCode, e["error"])
		}
	}
}

// TestListAndCancel covers the job listing and explicit cancellation of
// a queued task.
func TestListAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: engine.New(engine.Config{Workers: 1}), Workers: 1})

	_, running := submit(t, ts, slowSpec(), "")
	poll(t, ts, running.ID, StateRunning)
	_, queued := submit(t, ts, tinySpec(8), "")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []statusResponse
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list))
	}

	// Cancel the queued job, then the running one; both settle.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: code %d", id, resp.StatusCode)
		}
		poll(t, ts, id, StateCancelled)
	}
	_ = s
	if code, _ := fetchStatusCode(ts.URL + "/v1/jobs/job-99"); code != http.StatusNotFound {
		t.Fatalf("unknown job: code %d, want 404", code)
	}
}

func fetchStatusCode(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestClusterSimThroughServe is the end-to-end coordinator path: a server
// started with a cluster coordinator scatters a sim job to a pull-based
// worker over the mounted /v1/cluster/ protocol, and the HTTP result is
// byte-identical to a local in-process execution of the same spec.
func TestClusterSimThroughServe(t *testing.T) {
	co := cluster.NewCoordinator(cluster.Config{LeaseTTL: 5 * time.Second})
	_, ts := newTestServer(t, Config{Cluster: co})

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := &cluster.Worker{
		Name:        "w1",
		Coordinator: ts.URL,
		Engine:      engine.New(engine.Config{Workers: 1}),
		Poll:        10 * time.Millisecond,
	}
	go func() { _ = w.Run(wctx) }()

	code, st := submit(t, ts, tinySpec(3), "?wait=1")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("cluster-scattered sim: %d %+v", code, st)
	}

	// Local reference: same spec, private engine, no cluster.
	j, err := compile(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	local, err := j.execute(context.Background(), engine.New(engine.Config{Workers: 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Result, local) {
		t.Errorf("cluster result differs from local execution:\ncluster: %s\nlocal: %s", st.Result, local)
	}

	// The coordinator section of /metrics reflects the completed item.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"proteus_cluster_completed_total 1",
		"proteus_cluster_items_done 1",
		`proteus_cluster_worker_completed{worker="w1"} 1`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRetryAfterSecondsRoundsUp pins the Retry-After ceiling: flooring a
// 2.9s window advertises "2" and invites clients back 900ms early into a
// queue that is, by the server's own estimate, still full.
func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{2900 * time.Millisecond, "3"},
		{3 * time.Second, "3"},
		{59*time.Second + time.Nanosecond, "60"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestScrubEndpointRepairsCorruption: an entry corrupted on disk shows
// up in the scrub report, moves to quarantine, and the corruption
// counters surface in /metrics; a second scrub confirms the store is
// clean again.
func TestScrubEndpointRepairsCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 1, Store: store})
	_, ts := newTestServer(t, Config{Engine: eng, Store: store, Workers: 1})

	if code, st := submit(t, ts, tinySpec(5), "?wait=1"); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("warmup job failed: %d %+v", code, st)
	}

	// Truncate the one live entry behind the store's back.
	var entry string
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			entry = path
		}
		return nil
	})
	if err != nil || entry == "" {
		t.Fatalf("no store entry found (%v)", err)
	}
	if err := os.Truncate(entry, 10); err != nil {
		t.Fatal(err)
	}

	scrub := func() resultstore.ScrubReport {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/store/scrub", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrub status %d", resp.StatusCode)
		}
		var rep resultstore.ScrubReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := scrub(); rep.Scanned != 1 || rep.Corrupt != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("scrub report %+v, want 1 scanned / 1 corrupt / 1 quarantined", rep)
	}
	if rep := scrub(); rep.Scanned != 0 || rep.Corrupt != 0 {
		t.Fatalf("second scrub %+v, want a clean empty store", rep)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"proteus_store_corrupt_total 1",
		"proteus_store_quarantined_total 1",
		"proteus_engine_store_errors_total 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q\n%s", want, data)
		}
	}

	// A fresh tuple writes a new entry that scrubs healthy. (The original
	// tuple would be answered from the engine's in-process memo without a
	// store write; cross-process healing is covered by the resultstore and
	// chaos tests.)
	if code, st := submit(t, ts, tinySpec(6), "?wait=1"); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("follow-up job failed: %d %+v", code, st)
	}
	if rep := scrub(); rep.Scanned != 1 || rep.Healthy != 1 {
		t.Fatalf("post-write scrub %+v, want 1 healthy entry", rep)
	}
}
