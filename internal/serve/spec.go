package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crashcampaign"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Spec is the wire format of one job submission. Type selects the shape:
//
//   - "sim": one (bench, scheme, mem) tuple, the proteus-sim workload
//     sizing rules (zero SimOps means Table 2 / 25).
//   - "figure": one experiment table ("6".."12", "t4") on a shared
//     experiments.Suite; Scale "quick" uses the test sizing, anything
//     else the standard reduced scale.
//   - "campaign": a crash-campaign sweep (benches × schemes × faults).
//
// Unset numeric fields take the same defaults the CLIs use, so a job
// submitted over HTTP names the same tuple as the equivalent CLI run and
// shares its cache entries.
type Spec struct {
	Type string `json:"type"`

	// sim fields.
	Bench   string `json:"bench,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	Mem     string `json:"mem,omitempty"`
	Threads int    `json:"threads,omitempty"`
	SimOps  int    `json:"simops,omitempty"`
	InitOps int    `json:"initops,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	LogQ    int    `json:"logq,omitempty"`
	LPQ     int    `json:"lpq,omitempty"`

	// figure fields.
	Figure string `json:"figure,omitempty"`
	Scale  string `json:"scale,omitempty"`

	// campaign fields.
	Benches      string `json:"benches,omitempty"`
	Schemes      string `json:"schemes,omitempty"`
	Sweep        int    `json:"sweep,omitempty"`
	Rand         int    `json:"rand,omitempty"`
	Faults       string `json:"faults,omitempty"`
	CampaignSeed int64  `json:"campaign_seed,omitempty"`

	// TimeoutMS bounds the job's execution wall clock; 0 uses the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Timeout returns the requested per-job deadline, or 0 for none.
func (s Spec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// job is a validated, executable submission.
type job struct {
	spec Spec

	// sim
	simJob engine.Job

	// figure
	figure string
	opts   experiments.Options

	// campaign
	campaign crashcampaign.Config
}

// fingerprint is the singleflight identity of the submission: two
// requests with the same fingerprint share one queued task. For sim jobs
// it is the engine's own job fingerprint — the same key the memo table
// and the result store use — so the collapse is exactly as wide as the
// cache. Figure and campaign jobs hash their normalized parameters. The
// execution deadline is part of the identity only through TimeoutMS, so
// differently-bounded submissions do not share a task.
func (j *job) fingerprint() string {
	switch j.spec.Type {
	case "sim":
		if j.spec.TimeoutMS == 0 {
			return j.simJob.Fingerprint()
		}
		return hash(fmt.Sprintf("sim/%s/%d", j.simJob.Fingerprint(), j.spec.TimeoutMS))
	case "figure":
		return hash(fmt.Sprintf("figure/%s/%#v/%d", j.figure, j.opts, j.spec.TimeoutMS))
	default:
		c := j.campaign
		return hash(fmt.Sprintf("campaign/%v/%v/%#v/%s/%d/%d/%v/%d/%d",
			c.Benches, c.Schemes, c.Params, c.Sim.Fingerprint(), c.Sweep, c.Rand, c.Faults, c.Seed, j.spec.TimeoutMS))
	}
}

func hash(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:8])
}

// figures maps the spec names to suite methods returning tables.
var figures = map[string]func(*experiments.Suite) (*stats.Table, error){
	"6":  (*experiments.Suite).Figure6,
	"7":  (*experiments.Suite).Figure7,
	"8":  (*experiments.Suite).Figure8,
	"9":  (*experiments.Suite).Figure9,
	"10": (*experiments.Suite).Figure10,
	"11": (*experiments.Suite).Figure11,
	"12": (*experiments.Suite).Figure12,
	"t4": (*experiments.Suite).Table4,
}

// compile validates the spec and resolves it to an executable job.
func compile(s Spec) (*job, error) {
	j := &job{spec: s}
	if s.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", s.TimeoutMS)
	}
	switch s.Type {
	case "sim":
		kind, err := workload.KindByName(defaultStr(s.Bench, "QE"))
		if err != nil {
			return nil, err
		}
		scheme, err := core.SchemeByName(defaultStr(s.Scheme, "Proteus"))
		if err != nil {
			return nil, err
		}
		memKind, err := config.ParseMemKind(defaultStr(s.Mem, "nvm-fast"))
		if err != nil {
			return nil, err
		}
		j.simJob = simJob(kind, scheme, memKind, s)
	case "figure":
		name := strings.ToLower(defaultStr(s.Figure, "6"))
		if _, ok := figures[name]; !ok {
			return nil, fmt.Errorf("unknown figure %q (want 6-12, t4)", s.Figure)
		}
		j.figure = name
		j.opts = experiments.Default()
		if strings.EqualFold(s.Scale, "quick") {
			j.opts = experiments.Quick()
		}
		if s.Threads > 0 {
			j.opts.Threads = s.Threads
		}
		if s.Seed != 0 {
			j.opts.Seed = s.Seed
		}
	case "campaign":
		benches, err := splitParse(defaultStr(s.Benches, "QE"), func(n string) (workload.Kind, error) {
			return workload.KindByName(n)
		})
		if err != nil {
			return nil, err
		}
		schemes, err := splitParse(defaultStr(s.Schemes, "Proteus"), core.SchemeByName)
		if err != nil {
			return nil, err
		}
		faults, err := crashcampaign.ParseFaults(defaultStr(s.Faults, "clean"))
		if err != nil {
			return nil, err
		}
		threads := s.Threads
		if threads <= 0 {
			threads = 2
		}
		simOps, initOps := s.SimOps, s.InitOps
		if simOps <= 0 {
			simOps = 40
		}
		if initOps <= 0 {
			initOps = 256
		}
		wseed := s.Seed
		if wseed == 0 {
			wseed = 11
		}
		cseed := s.CampaignSeed
		if cseed == 0 {
			cseed = 1
		}
		sweep := s.Sweep
		if sweep <= 0 {
			sweep = 16
		}
		j.campaign = crashcampaign.Config{
			Benches: benches,
			Schemes: schemes,
			Params: workload.Params{Threads: threads, InitOps: initOps, SimOps: simOps, Seed: wseed,
				SSItems: 256, SSStrSize: 256, ListNodes: 4, ListElems: 64},
			Sim:    config.Default(),
			Sweep:  sweep,
			Rand:   s.Rand,
			Faults: faults,
			Seed:   cseed,
		}
	default:
		return nil, fmt.Errorf("unknown job type %q (want sim, figure, campaign)", s.Type)
	}
	return j, nil
}

// simJob builds the engine job exactly the way cmd/proteus-sim does, so
// the HTTP transport and the CLI name identical tuples — the determinism
// guarantee across transports reduces to the engine's own.
func simJob(kind workload.Kind, scheme core.Scheme, memKind config.MemKind, s Spec) engine.Job {
	threads := s.Threads
	if threads <= 0 {
		threads = 4
	}
	p := kind.DefaultParams(1)
	p.Threads = threads
	p.Seed = defaultInt64(s.Seed, 42)
	if s.SimOps > 0 {
		p.SimOps = s.SimOps
	} else {
		p.SimOps /= 25
		if p.SimOps < 8 {
			p.SimOps = 8
		}
	}
	if s.InitOps > 0 {
		p.InitOps = s.InitOps
	}
	cfg := config.Default().WithMemKind(memKind)
	cfg.Cores = threads
	cfg.Proteus.LogQ = defaultInt(s.LogQ, 16)
	cfg.Mem.LPQ = defaultInt(s.LPQ, 256)
	return engine.Job{Kind: kind, Params: p, Scheme: scheme, Config: cfg}
}

// SimResult is the result payload of a "sim" job. It is canonical: the
// same tuple marshals to identical bytes whether it ran live, came from
// the engine memo table, or was read back from the on-disk store.
type SimResult struct {
	Job               string        `json:"job"`
	Fingerprint       string        `json:"fingerprint"`
	Report            *stats.Report `json:"report"`
	EmittedLogFlushes uint64        `json:"emitted_log_flushes"`
}

// FigureResult is the result payload of a "figure" job.
type FigureResult struct {
	Figure string       `json:"figure"`
	Table  *stats.Table `json:"table"`
	Text   string       `json:"text"`
}

// execute runs the compiled job and returns its canonical result
// encoding. With a cluster coordinator attached, sim and campaign jobs
// are scattered to pull-based workers; the encodings are identical either
// way (the cluster returns the same Result/Report structs the local
// engine produces), so clients cannot tell — and must not care — where a
// job ran.
func (j *job) execute(ctx context.Context, eng *engine.Engine, clu *cluster.Coordinator) (json.RawMessage, error) {
	switch j.spec.Type {
	case "sim":
		var res *engine.Result
		var err error
		if clu != nil {
			res, err = cluster.RunSim(ctx, clu, j.simJob)
		} else {
			res, err = eng.Run(ctx, j.simJob)
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(SimResult{
			Job:               j.simJob.String(),
			Fingerprint:       j.simJob.Fingerprint(),
			Report:            res.Report,
			EmittedLogFlushes: res.EmittedLogFlushes,
		})
	case "figure":
		suite := experiments.NewSuite(ctx, j.opts, eng)
		tab, err := figures[j.figure](suite)
		if err != nil {
			return nil, err
		}
		return json.Marshal(FigureResult{Figure: j.figure, Table: tab, Text: tab.String()})
	default:
		c := j.campaign
		if clu != nil {
			rep, err := cluster.RunCampaign(ctx, clu, c)
			if err != nil {
				return nil, err
			}
			return json.Marshal(rep)
		}
		c.Engine = eng
		rep, err := crashcampaign.Run(ctx, c)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	}
}

func splitParse[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, name := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func defaultStr(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defaultInt64(v, d int64) int64 {
	if v == 0 {
		return d
	}
	return v
}
