package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export helpers: the experiment tables render to CSV and JSON so results
// can be plotted outside the harness.

// WriteCSV emits the table as CSV: a header row of RowName plus columns,
// then one row per benchmark.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{t.RowName}, t.Cols...)); err != nil {
		return err
	}
	for i, r := range t.Rows {
		rec := make([]string, 0, len(t.Cols)+1)
		rec = append(rec, r)
		for j := range t.Cols {
			// Precision -1: the shortest representation that round-trips,
			// so raw cycle counts above 1e6 (-paperscale) survive export
			// unclipped. NaN cells export as "NaN".
			rec = append(rec, strconv.FormatFloat(t.Cells[i][j], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the JSON shape of a table.
type tableJSON struct {
	Title string               `json:"title"`
	Rows  []string             `json:"rows"`
	Cols  []string             `json:"cols"`
	Cells map[string][]float64 `json:"cells"` // row -> values per column
}

// MarshalJSON renders the table as a stable JSON document.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Rows: t.Rows, Cols: t.Cols, Cells: make(map[string][]float64, len(t.Rows))}
	for i, r := range t.Rows {
		out.Cells[r] = append([]float64(nil), t.Cells[i]...)
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses a table produced by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	t.Title, t.Rows, t.Cols = in.Title, in.Rows, in.Cols
	if t.RowName == "" {
		t.RowName = "row"
	}
	t.Cells = make([][]float64, len(in.Rows))
	for i, r := range in.Rows {
		vals, ok := in.Cells[r]
		if !ok || len(vals) != len(in.Cols) {
			return fmt.Errorf("stats: row %q missing or malformed in JSON table", r)
		}
		t.Cells[i] = append([]float64(nil), vals...)
	}
	return nil
}
