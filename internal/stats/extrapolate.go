package stats

// Closed-form counter advance for the event-driven fast path. When the
// stepper proves a span of cycles is inert (no component can change state),
// it ticks the first cycle of the span for real — measuring the constant
// per-cycle counter delta, e.g. an sfence's SfenceWait — and applies that
// delta to the remaining span in one multiply-add instead of re-simulating
// identical cycles.
//
// Both methods must cover every field of their struct; a reflection test
// (TestAddScaledDiffCoversAllFields) fails the build-out if a new counter
// is added without extending them.

// AddScaledDiff adds k copies of the delta (c - before) to c, field by
// field. before is the snapshot taken just before the measured cycle.
func (c *Core) AddScaledDiff(before *Core, k uint64) {
	c.Cycles += (c.Cycles - before.Cycles) * k
	c.Retired += (c.Retired - before.Retired) * k
	for i := range c.StallCycles {
		c.StallCycles[i] += (c.StallCycles[i] - before.StallCycles[i]) * k
	}
	c.LoadHitsL1 += (c.LoadHitsL1 - before.LoadHitsL1) * k
	c.LoadHitsL2 += (c.LoadHitsL2 - before.LoadHitsL2) * k
	c.LoadHitsL3 += (c.LoadHitsL3 - before.LoadHitsL3) * k
	c.LoadMisses += (c.LoadMisses - before.LoadMisses) * k
	c.Stores += (c.Stores - before.Stores) * k
	c.Clwbs += (c.Clwbs - before.Clwbs) * k
	c.Sfences += (c.Sfences - before.Sfences) * k
	c.TxCommitted += (c.TxCommitted - before.TxCommitted) * k
	c.LogLoads += (c.LogLoads - before.LogLoads) * k
	c.LogFlushes += (c.LogFlushes - before.LogFlushes) * k
	c.LLTHits += (c.LLTHits - before.LLTHits) * k
	c.LLTMisses += (c.LLTMisses - before.LLTMisses) * k
	c.LogOverflow += (c.LogOverflow - before.LogOverflow) * k
	c.ATOMLogDelays += (c.ATOMLogDelays - before.ATOMLogDelays) * k
	c.SfenceWait += (c.SfenceWait - before.SfenceWait) * k
	c.PcommitWait += (c.PcommitWait - before.PcommitWait) * k
	c.SBWPQBlocked += (c.SBWPQBlocked - before.SBWPQBlocked) * k
	c.TxEndWait += (c.TxEndWait - before.TxEndWait) * k
}

// AddScaledDiff adds k copies of the delta (m - before) to m.
func (m *Mem) AddScaledDiff(before *Mem, k uint64) {
	m.Reads += (m.Reads - before.Reads) * k
	for i := range m.Writes {
		m.Writes[i] += (m.Writes[i] - before.Writes[i]) * k
	}
	m.WPQCoalesced += (m.WPQCoalesced - before.WPQCoalesced) * k
	m.LPQAccepted += (m.LPQAccepted - before.LPQAccepted) * k
	m.LPQDropped += (m.LPQDropped - before.LPQDropped) * k
	m.LPQDrained += (m.LPQDrained - before.LPQDrained) * k
	m.RowBufferHits += (m.RowBufferHits - before.RowBufferHits) * k
	m.RowBufferMiss += (m.RowBufferMiss - before.RowBufferMiss) * k
	m.ReadQFullStall += (m.ReadQFullStall - before.ReadQFullStall) * k
	m.WPQFullStall += (m.WPQFullStall - before.WPQFullStall) * k
	m.LPQFullStall += (m.LPQFullStall - before.LPQFullStall) * k
	m.WPQResidency += (m.WPQResidency - before.WPQResidency) * k
	m.WPQDrained += (m.WPQDrained - before.WPQDrained) * k
	m.WPQIssueDelay += (m.WPQIssueDelay - before.WPQIssueDelay) * k
	m.WPQService += (m.WPQService - before.WPQService) * k
	m.ReadLatency += (m.ReadLatency - before.ReadLatency) * k
	m.ReadsServed += (m.ReadsServed - before.ReadsServed) * k
	m.WPQForwards += (m.WPQForwards - before.WPQForwards) * k
	m.BankBusy += (m.BankBusy - before.BankBusy) * k
}
