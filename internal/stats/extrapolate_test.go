package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// fillRandom sets every numeric field (including array elements) of the
// struct pointed to by v to a distinct pseudo-random value.
func fillRandom(t *testing.T, v reflect.Value, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(rng.Int63n(1000) + 1))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(uint64(rng.Int63n(1000) + 1))
			}
		default:
			t.Fatalf("unsupported field kind %s for %s", f.Kind(), v.Type().Field(i).Name)
		}
	}
}

// checkScaled verifies after = before + (mid-before)*(k+1) holds for every
// field, which is exactly what AddScaledDiff(before, k) applied to mid
// must produce. Any field the hand-written method forgot shows up as a
// mismatch because every field was seeded with a nonzero random delta.
func checkScaled(t *testing.T, name string, before, mid, after reflect.Value, k uint64) {
	t.Helper()
	ty := before.Type()
	for i := 0; i < ty.NumField(); i++ {
		fb, fm, fa := before.Field(i), mid.Field(i), after.Field(i)
		check := func(b, m, a uint64, field string) {
			want := b + (m-b)*(k+1)
			if a != want {
				t.Errorf("%s.%s: got %d, want %d (AddScaledDiff misses this field?)", name, field, a, want)
			}
		}
		switch fb.Kind() {
		case reflect.Uint64:
			check(fb.Uint(), fm.Uint(), fa.Uint(), ty.Field(i).Name)
		case reflect.Array:
			for j := 0; j < fb.Len(); j++ {
				check(fb.Index(j).Uint(), fm.Index(j).Uint(), fa.Index(j).Uint(), ty.Field(i).Name)
			}
		}
	}
}

func TestAddScaledDiffCoversAllFields(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 5

	var beforeC, midC Core
	fillRandom(t, reflect.ValueOf(&beforeC).Elem(), rng)
	midC = beforeC
	// Perturb mid so every field has a nonzero delta.
	mv := reflect.ValueOf(&midC).Elem()
	for i := 0; i < mv.NumField(); i++ {
		switch f := mv.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() + uint64(rng.Int63n(9)+1))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				e.SetUint(e.Uint() + uint64(rng.Int63n(9)+1))
			}
		}
	}
	afterC := midC
	afterC.AddScaledDiff(&beforeC, k)
	checkScaled(t, "Core", reflect.ValueOf(beforeC), reflect.ValueOf(midC), reflect.ValueOf(afterC), k)

	var beforeM, midM Mem
	fillRandom(t, reflect.ValueOf(&beforeM).Elem(), rng)
	midM = beforeM
	mv = reflect.ValueOf(&midM).Elem()
	for i := 0; i < mv.NumField(); i++ {
		switch f := mv.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() + uint64(rng.Int63n(9)+1))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				e.SetUint(e.Uint() + uint64(rng.Int63n(9)+1))
			}
		}
	}
	afterM := midM
	afterM.AddScaledDiff(&beforeM, k)
	checkScaled(t, "Mem", reflect.ValueOf(beforeM), reflect.ValueOf(midM), reflect.ValueOf(afterM), k)
}
