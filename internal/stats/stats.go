// Package stats collects the counters the paper reports (cycles,
// front-end stall cycles, NVMM writes by cause, logging activity) and
// provides the aggregation helpers (geometric mean, speedup) used by the
// experiment harness.
package stats

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
)

// StallCause classifies why dispatch was blocked in a cycle (Figure 7
// breaks performance down by front-end stalls).
type StallCause int

const (
	StallNone StallCause = iota
	StallROB
	StallLoadQ
	StallStoreQ
	StallLogReg  // no free Proteus log register
	StallLogQ    // LogQ full: dispatch must stall (§4.2)
	StallDrained // trace exhausted; not counted as a stall
	numStallCauses
)

func (c StallCause) String() string {
	switch c {
	case StallNone:
		return "none"
	case StallROB:
		return "rob"
	case StallLoadQ:
		return "loadq"
	case StallStoreQ:
		return "storeq"
	case StallLogReg:
		return "logreg"
	case StallLogQ:
		return "logq"
	case StallDrained:
		return "drained"
	}
	return fmt.Sprintf("StallCause(%d)", int(c))
}

// WriteCause classifies NVMM writes (Figure 8 separates logging writes
// from data writes).
type WriteCause int

const (
	WriteData     WriteCause = iota // regular write-back / clwb of data
	WriteLog                        // log-entry creation reaching NVMM
	WriteTruncate                   // log truncation / invalidation writes (ATOM)
	numWriteCauses
)

func (c WriteCause) String() string {
	switch c {
	case WriteData:
		return "data"
	case WriteLog:
		return "log"
	case WriteTruncate:
		return "truncate"
	}
	return fmt.Sprintf("WriteCause(%d)", int(c))
}

// Core holds one core's counters.
type Core struct {
	Cycles        uint64 // cycles until this core drained its trace
	Retired       uint64 // micro-ops retired
	StallCycles   [numStallCauses]uint64
	LoadHitsL1    uint64
	LoadHitsL2    uint64
	LoadHitsL3    uint64
	LoadMisses    uint64
	Stores        uint64
	Clwbs         uint64
	Sfences       uint64
	TxCommitted   uint64
	LogLoads      uint64
	LogFlushes    uint64
	LLTHits       uint64
	LLTMisses     uint64
	LogOverflow   uint64 // circular log-area wrap-arounds within a transaction
	ATOMLogDelays uint64 // cycles stores spent held at retirement waiting for log acks
	SfenceWait    uint64 // cycles an sfence blocked retirement at the ROB head
	PcommitWait   uint64 // cycles a pcommit blocked retirement at the ROB head
	SBWPQBlocked  uint64 // cycles the store-buffer head was refused by the WPQ
	TxEndWait     uint64 // cycles tx-end actions blocked retirement
}

// FrontEndStalls sums the stall cycles that block dispatch for lack of
// resources (ROB, LSQ, log structures), matching Figure 7's metric.
func (c *Core) FrontEndStalls() uint64 {
	return c.StallCycles[StallROB] + c.StallCycles[StallLoadQ] +
		c.StallCycles[StallStoreQ] + c.StallCycles[StallLogReg] +
		c.StallCycles[StallLogQ]
}

// LLTMissRate returns the LLT miss rate in percent (Table 4).
func (c *Core) LLTMissRate() float64 {
	tot := c.LLTHits + c.LLTMisses
	if tot == 0 {
		return 0
	}
	return 100 * float64(c.LLTMisses) / float64(tot)
}

// Mem holds the memory-side counters.
type Mem struct {
	Reads          uint64
	Writes         [numWriteCauses]uint64 // NVMM writes by cause
	WPQCoalesced   uint64                 // writes merged into an existing WPQ entry
	LPQAccepted    uint64                 // log flushes accepted into the LPQ
	LPQDropped     uint64                 // log entries flash-cleared before reaching NVMM
	LPQDrained     uint64                 // log entries that did reach NVMM
	RowBufferHits  uint64
	RowBufferMiss  uint64
	ReadQFullStall uint64
	WPQFullStall   uint64
	LPQFullStall   uint64
	// WPQResidency accumulates cycles entries spent in the WPQ from
	// arrival to drain completion; divide by drained writes for the mean.
	WPQResidency uint64
	WPQDrained   uint64
	// WPQIssueDelay accumulates cycles entries waited before being issued
	// to the device.
	WPQIssueDelay uint64
	// WPQService accumulates device service cycles (issue to completion).
	WPQService uint64
	// ReadLatency accumulates MC read service cycles; ReadsServed counts
	// device reads (excludes WPQ forwards).
	ReadLatency uint64
	ReadsServed uint64
	WPQForwards uint64
	// BankBusy accumulates bank occupancy cycles across all banks.
	BankBusy uint64
}

// MeanWPQResidency returns the average cycles a write spent in the WPQ.
func (m *Mem) MeanWPQResidency() float64 {
	if m.WPQDrained == 0 {
		return 0
	}
	return float64(m.WPQResidency) / float64(m.WPQDrained)
}

// NVMWrites is the total number of writes that reached NVMM.
func (m *Mem) NVMWrites() uint64 {
	var t uint64
	for _, w := range m.Writes {
		t += w
	}
	return t
}

// Report is the complete result of one simulation run.
type Report struct {
	Label    string
	Cycles   uint64 // max over cores: wall-clock of the run
	CoreStat []Core
	MemStat  Mem
}

// TotalFrontEndStalls sums front-end stalls over all cores.
func (r *Report) TotalFrontEndStalls() uint64 {
	var t uint64
	for i := range r.CoreStat {
		t += r.CoreStat[i].FrontEndStalls()
	}
	return t
}

// TotalRetired sums retired micro-ops over all cores.
func (r *Report) TotalRetired() uint64 {
	var t uint64
	for i := range r.CoreStat {
		t += r.CoreStat[i].Retired
	}
	return t
}

// LLTMissRate aggregates the LLT miss rate over all cores in percent.
func (r *Report) LLTMissRate() float64 {
	var hits, misses uint64
	for i := range r.CoreStat {
		hits += r.CoreStat[i].LLTHits
		misses += r.CoreStat[i].LLTMisses
	}
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(misses) / float64(hits+misses)
}

// TotalLogFlushes sums log flushes issued to the MC over all cores.
func (r *Report) TotalLogFlushes() uint64 {
	var t uint64
	for i := range r.CoreStat {
		t += r.CoreStat[i].LogFlushes
	}
	return t
}

// Speedup returns base.Cycles / r.Cycles, the convention of Figures 6,
// 9-12 (values above 1 mean r is faster than base).
func (r *Report) Speedup(base *Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// GeoMean returns the geometric mean of the positive elements of xs.
// Non-positive and NaN elements — a failed or timed-out run's missing
// cell — are skipped rather than zeroing the whole mean; when nothing
// positive remains the result is NaN (rendered "-" by Table).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// Table renders a fixed-width table: one row per name in rows, one column
// per series. cell(row, col) supplies each value. It is used by the
// experiment harness to print the same rows/series the paper's figures
// plot.
type Table struct {
	Title   string
	RowName string
	Rows    []string
	Cols    []string
	Cells   [][]float64 // [row][col]
	Format  string      // value format, default "%8.3f"
}

// NewTable allocates a table with the given shape.
func NewTable(title, rowName string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, RowName: rowName, Rows: rows, Cols: cols, Cells: cells, Format: "%8.3f"}
}

// Set stores a value by row and column name.
func (t *Table) Set(row, col string, v float64) {
	ri := indexOf(t.Rows, row)
	ci := indexOf(t.Cols, col)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("stats: unknown table cell (%q, %q)", row, col))
	}
	t.Cells[ri][ci] = v
}

// Get returns a value by row and column name.
func (t *Table) Get(row, col string) float64 {
	ri := indexOf(t.Rows, row)
	ci := indexOf(t.Cols, col)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("stats: unknown table cell (%q, %q)", row, col))
	}
	return t.Cells[ri][ci]
}

// AddGeoMeanRow appends a "geomean" row computed over the current rows.
// Rows whose cell is missing (NaN) or non-positive are skipped — the mean
// covers the surviving benchmarks — and a warning names the dropped rows
// so a partial summary is never mistaken for a complete one.
func (t *Table) AddGeoMeanRow() {
	row := make([]float64, len(t.Cols))
	for c := range t.Cols {
		col := make([]float64, 0, len(t.Rows))
		var dropped []string
		for r := range t.Rows {
			v := t.Cells[r][c]
			if v <= 0 || math.IsNaN(v) {
				dropped = append(dropped, t.Rows[r])
				continue
			}
			col = append(col, v)
		}
		if len(dropped) > 0 {
			log.Printf("stats: %s: geomean for %q computed without rows %v (missing or non-positive cells)",
				t.Title, t.Cols[c], dropped)
		}
		row[c] = GeoMean(col)
	}
	t.Rows = append(t.Rows, "geomean")
	t.Cells = append(t.Cells, row)
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := 10
	for _, c := range t.Cols {
		if len(c)+2 > w {
			w = len(c) + 2
		}
	}
	rw := len(t.RowName)
	for _, r := range t.Rows {
		if len(r) > rw {
			rw = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", rw+2, t.RowName)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", w, c)
	}
	b.WriteByte('\n')
	format := t.Format
	if format == "" {
		format = "%8.3f"
	}
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rw+2, r)
		for j := range t.Cols {
			cell := fmt.Sprintf(format, t.Cells[i][j])
			if math.IsNaN(t.Cells[i][j]) {
				cell = "-" // missing cell (failed or skipped run)
			}
			fmt.Fprintf(&b, "%*s", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the keys of m sorted lexicographically; a helper for
// deterministic report printing.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
