package stats

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := GeoMean(nil); !math.IsNaN(g) {
		t.Fatalf("geomean(nil) = %v, want NaN", g)
	}
	if g := GeoMean([]float64{-1, 0, math.NaN()}); !math.IsNaN(g) {
		t.Fatalf("geomean of all-invalid = %v, want NaN", g)
	}
	// Non-positive and NaN cells (failed runs) are skipped, not zeroing:
	// the mean covers the surviving elements.
	if g := GeoMean([]float64{2, 8, -1, 0, math.NaN()}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean skipping invalid = %v, want 4", g)
	}
	// Scale invariance: geomean(kx) = k*geomean(x).
	prop := func(a, b uint8) bool {
		x := []float64{float64(a) + 1, float64(b) + 1}
		g1 := GeoMean(x)
		g2 := GeoMean([]float64{x[0] * 3, x[1] * 3})
		return math.Abs(g2-3*g1) < 1e-9*g2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	base := &Report{Cycles: 1000}
	fast := &Report{Cycles: 500}
	if s := fast.Speedup(base); s != 2 {
		t.Fatalf("speedup %v", s)
	}
	if s := base.Speedup(base); s != 1 {
		t.Fatalf("self speedup %v", s)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("title", "bench", []string{"A", "B"}, []string{"x", "y"})
	tab.Set("A", "x", 1.5)
	tab.Set("B", "y", 2.5)
	if tab.Get("A", "x") != 1.5 {
		t.Fatal("get/set mismatch")
	}
	tab.AddGeoMeanRow()
	out := tab.String()
	for _, want := range []string{"title", "bench", "A", "B", "geomean", "1.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableUnknownCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown cell")
		}
	}()
	NewTable("", "r", []string{"a"}, []string{"b"}).Set("nope", "b", 1)
}

func TestCoreStallAggregation(t *testing.T) {
	var c Core
	c.StallCycles[StallROB] = 10
	c.StallCycles[StallLogQ] = 5
	c.StallCycles[StallDrained] = 100 // not a resource stall
	if got := c.FrontEndStalls(); got != 15 {
		t.Fatalf("front-end stalls %d", got)
	}
}

func TestLLTMissRate(t *testing.T) {
	var c Core
	if c.LLTMissRate() != 0 {
		t.Fatal("empty LLT rate nonzero")
	}
	c.LLTHits, c.LLTMisses = 75, 25
	if r := c.LLTMissRate(); math.Abs(r-25) > 1e-9 {
		t.Fatalf("miss rate %v", r)
	}
	rep := Report{CoreStat: []Core{{LLTHits: 50, LLTMisses: 50}, {LLTHits: 100, LLTMisses: 0}}}
	if r := rep.LLTMissRate(); math.Abs(r-25) > 1e-9 {
		t.Fatalf("aggregated rate %v", r)
	}
}

func TestMemNVMWrites(t *testing.T) {
	var m Mem
	m.Writes[WriteData] = 3
	m.Writes[WriteLog] = 2
	m.Writes[WriteTruncate] = 1
	if m.NVMWrites() != 6 {
		t.Fatalf("total %d", m.NVMWrites())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "bench", []string{"A"}, []string{"x", "y"})
	tab.Set("A", "x", 1.25)
	tab.Set("A", "y", 2.5)
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "bench,x,y\nA,1.25,2.5\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestTableCSVRoundTrip is the regression test for the precision-6
// export bug: cells must survive CSV export byte-exactly, including raw
// cycle counts far above 1e6 and NaN "missing" cells.
func TestTableCSVRoundTrip(t *testing.T) {
	tab := NewTable("t", "bench", []string{"A", "B"}, []string{"x", "y"})
	tab.Set("A", "x", 123456789.25) // would clip to 1.23457e+08 at precision 6
	tab.Set("A", "y", 0.3333333333333333)
	tab.Set("B", "x", math.NaN()) // failed run: missing cell
	tab.Set("B", "y", 2.5)
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(tab.Rows)+1 {
		t.Fatalf("csv has %d records, want %d", len(recs), len(tab.Rows)+1)
	}
	for i, row := range tab.Rows {
		for j, col := range tab.Cols {
			got, err := strconv.ParseFloat(recs[i+1][j+1], 64)
			if err != nil {
				t.Fatalf("cell (%s,%s) = %q: %v", row, col, recs[i+1][j+1], err)
			}
			want := tab.Get(row, col)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("cell (%s,%s) round-tripped to %v, want %v", row, col, got, want)
			}
		}
	}
}

func TestTableStringRendersNaNAsDash(t *testing.T) {
	tab := NewTable("t", "bench", []string{"A", "B"}, []string{"x"})
	tab.Set("A", "x", 2.0)
	tab.Set("B", "x", math.NaN())
	tab.AddGeoMeanRow() // geomean over the survivor: 2.0
	out := tab.String()
	if !strings.Contains(out, "-") {
		t.Fatalf("NaN cell not rendered as -:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("raw NaN leaked into rendering:\n%s", out)
	}
	if !strings.Contains(out, "2.000") {
		t.Fatalf("geomean over survivors missing:\n%s", out)
	}
}

func TestTableJSONRoundtrip(t *testing.T) {
	tab := NewTable("title", "bench", []string{"A", "B"}, []string{"x"})
	tab.Set("A", "x", 1.5)
	tab.Set("B", "x", 2.5)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "title" || got.Get("B", "x") != 2.5 {
		t.Fatalf("roundtrip: %+v", got)
	}
	// Malformed: missing row data.
	if err := json.Unmarshal([]byte(`{"title":"t","rows":["A"],"cols":["x"],"cells":{}}`), &got); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
