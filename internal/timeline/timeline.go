// Package timeline renders an epoch-sampled trace (internal/trace JSONL)
// as an ASCII occupancy chart: one row per machine structure, one column
// per time bucket, glyphs scaled to the row's own peak. It is the
// terminal-side view of the observability layer — enough to see where a
// run queues up (a saturated LogQ, a WPQ that never drains, banks pinned
// busy) without leaving the shell.
package timeline

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// ramp maps a [0,1] intensity to a glyph; index 0 (exactly zero) renders
// as a space so idle periods stay visually empty.
const ramp = " .:-=+*#%@"

// DefaultWidth is the chart width in columns when none is given.
const DefaultWidth = 72

// series is one chart row: a value per sample plus its label.
type series struct {
	label string
	vals  []float64
	// rate marks first-difference series (per-kilocycle rates); they are
	// annotated differently and bucketed by mean rather than peak.
	rate bool
}

// Render reads a JSONL trace from r and writes the chart to w. Width is
// the number of chart columns (0 = DefaultWidth). Rows that stay zero for
// the whole run (e.g. the LogQ under PMEM) are omitted.
func Render(w io.Writer, r io.Reader, width int) error {
	meta, samples, err := trace.Read(r)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("timeline: trace has no samples")
	}
	if width <= 0 {
		width = DefaultWidth
	}
	if len(samples) < width {
		width = len(samples) // one column per sample; axis matches the chart
	}

	last := samples[len(samples)-1]
	fmt.Fprintf(w, "%s  epoch=%d cycles=%d samples=%d cores=%d",
		orUnlabelled(meta.Label), meta.Epoch, last.Cycle, len(samples), meta.Cores)
	if meta.Fingerprint != "" {
		fmt.Fprintf(w, " config=%s", meta.Fingerprint)
	}
	fmt.Fprintln(w)

	rows := buildSeries(samples)
	labelW := 0
	for _, s := range rows {
		if len(s.label) > labelW {
			labelW = len(s.label)
		}
	}
	for _, s := range rows {
		max := 0.0
		for _, v := range s.vals {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			continue
		}
		cols := bucket(s.vals, width, s.rate)
		var b strings.Builder
		for _, v := range cols {
			idx := int(v / max * float64(len(ramp)-1))
			if v > 0 && idx == 0 {
				idx = 1 // nonzero activity never renders as idle
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		unit := "peak"
		if s.rate {
			unit = "peak/kcyc"
		}
		fmt.Fprintf(w, "  %-*s |%s| %s %.5g\n", labelW, s.label, b.String(), unit, max)
	}
	fmt.Fprintf(w, "  %-*s  %s\n", labelW, "", axis(width, last.Cycle))
	return nil
}

// RenderString is Render into a string (test and CLI convenience).
func RenderString(r io.Reader, width int) (string, error) {
	var b strings.Builder
	if err := Render(&b, r, width); err != nil {
		return "", err
	}
	return b.String(), nil
}

func orUnlabelled(label string) string {
	if label == "" {
		return "(unlabelled trace)"
	}
	return label
}

// buildSeries turns the sample stream into chart rows: instantaneous
// occupancies summed over cores, plus per-kilocycle rates derived as
// first differences of the cumulative counters.
func buildSeries(samples []trace.Sample) []series {
	n := len(samples)
	occ := func(label string, f func(*trace.Sample) float64) series {
		s := series{label: label, vals: make([]float64, n)}
		for i := range samples {
			s.vals[i] = f(&samples[i])
		}
		return s
	}
	sumCores := func(f func(*trace.CoreSample) int) func(*trace.Sample) float64 {
		return func(sm *trace.Sample) float64 {
			t := 0
			for i := range sm.Cores {
				t += f(&sm.Cores[i])
			}
			return float64(t)
		}
	}
	rate := func(label string, f func(*trace.Sample) float64) series {
		s := series{label: label, vals: make([]float64, n), rate: true}
		prevV, prevC := 0.0, uint64(0)
		for i := range samples {
			v, c := f(&samples[i]), samples[i].Cycle
			if dc := c - prevC; dc > 0 {
				s.vals[i] = (v - prevV) / float64(dc) * 1000
			}
			prevV, prevC = v, c
		}
		return s
	}
	sumRetired := sumCores(func(c *trace.CoreSample) int { return int(c.Retired) })
	return []series{
		occ("rob", sumCores(func(c *trace.CoreSample) int { return c.ROB })),
		occ("loadq", sumCores(func(c *trace.CoreSample) int { return c.LoadQ })),
		occ("storeq", sumCores(func(c *trace.CoreSample) int { return c.StoreQ })),
		occ("storebuf", sumCores(func(c *trace.CoreSample) int { return c.StoreBuf })),
		occ("logq", sumCores(func(c *trace.CoreSample) int { return c.LogQ })),
		occ("atom-inflight", sumCores(func(c *trace.CoreSample) int { return c.ATOMInFlight })),
		occ("wpq", func(sm *trace.Sample) float64 { return float64(sm.Mem.WPQ) }),
		occ("lpq", func(sm *trace.Sample) float64 { return float64(sm.Mem.LPQ) }),
		occ("readq", func(sm *trace.Sample) float64 { return float64(sm.Mem.ReadQ) }),
		occ("busy-banks", func(sm *trace.Sample) float64 { return float64(sm.Mem.BusyBanks) }),
		rate("retired", sumRetired),
		rate("nvm-writes", func(sm *trace.Sample) float64 {
			return float64(sm.Mem.WritesData + sm.Mem.WritesLog + sm.Mem.WritesTruncate)
		}),
		rate("nvm-reads", func(sm *trace.Sample) float64 { return float64(sm.Mem.Reads) }),
		rate("stalls", sumCores(func(c *trace.CoreSample) int {
			return int(c.StallROB + c.StallLoadQ + c.StallStoreQ + c.StallLogReg + c.StallLogQ)
		})),
	}
}

// bucket folds vals into width columns. Occupancy rows keep the bucket
// peak (a one-epoch spike to a full queue must stay visible); rate rows
// keep the mean.
func bucket(vals []float64, width int, mean bool) []float64 {
	if len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for col := 0; col < width; col++ {
		lo := col * len(vals) / width
		hi := (col + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		if mean {
			sum := 0.0
			for _, v := range vals[lo:hi] {
				sum += v
			}
			out[col] = sum / float64(hi-lo)
		} else {
			for _, v := range vals[lo:hi] {
				if v > out[col] {
					out[col] = v
				}
			}
		}
	}
	return out
}

// axis renders the time axis: cycle 0 to the final cycle.
func axis(width int, lastCycle uint64) string {
	lo, hi := "0", fmt.Sprintf("%d cycles", lastCycle)
	pad := width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	return lo + strings.Repeat("-", pad) + hi
}
