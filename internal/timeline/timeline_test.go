package timeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// synthTrace builds an in-memory JSONL trace: n samples of a 2-core
// Proteus-shaped run with a busy LogQ and WPQ but no ATOM activity.
func synthTrace(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sink, err := trace.NewJSONL(&buf, trace.Meta{Label: "QE/Proteus/nvm-fast", Fingerprint: "deadbeef", Epoch: 1000, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		s := trace.Sample{
			Cycle: uint64(i) * 1000,
			Final: i == n,
			Cores: []trace.CoreSample{
				{ROB: 10 + i%7, LoadQ: i % 4, StoreQ: 2, LogQ: i % 9, FreeLogRegs: 8, Retired: uint64(i) * 300},
				{ROB: 5, StoreBuf: 1, LogQ: (i + 3) % 9, FreeLogRegs: 8, Retired: uint64(i) * 290},
			},
			Mem: trace.MemSample{WPQ: i % 12, LPQ: i % 30, Reads: uint64(i) * 10, WritesData: uint64(i) * 4},
		}
		if err := sink.Emit(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRenderTimeline(t *testing.T) {
	out, err := RenderString(synthTrace(t, 200), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "QE/Proteus/nvm-fast") || !strings.Contains(out, "config=deadbeef") {
		t.Fatalf("header missing label or fingerprint:\n%s", out)
	}
	for _, row := range []string{"rob", "logq", "wpq", "lpq", "retired", "nvm-writes"} {
		if !strings.Contains(out, row) {
			t.Fatalf("row %q missing:\n%s", row, out)
		}
	}
	// The synthetic run has no ATOM traffic and never reads the read
	// queue: all-zero rows must be omitted, not rendered flat.
	for _, row := range []string{"atom-inflight", "readq", "busy-banks"} {
		if strings.Contains(out, row) {
			t.Fatalf("all-zero row %q rendered:\n%s", row, out)
		}
	}
	if !strings.Contains(out, "200000 cycles") {
		t.Fatalf("time axis missing final cycle:\n%s", out)
	}
	// Every chart line is exactly the requested width between its pipes.
	for _, line := range strings.Split(out, "\n") {
		lo, hi := strings.IndexByte(line, '|'), strings.LastIndexByte(line, '|')
		if lo < 0 || hi <= lo {
			continue
		}
		if got := hi - lo - 1; got != 60 {
			t.Fatalf("chart width %d, want 60: %q", got, line)
		}
	}
}

func TestRenderFewSamplesNarrowsChart(t *testing.T) {
	out, err := RenderString(synthTrace(t, 5), 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		lo, hi := strings.IndexByte(line, '|'), strings.LastIndexByte(line, '|')
		if lo < 0 || hi <= lo {
			continue
		}
		if got := hi - lo - 1; got != 5 {
			t.Fatalf("chart width %d, want 5 (one column per sample): %q", got, line)
		}
	}
}

func TestRenderRejectsBadInput(t *testing.T) {
	if _, err := RenderString(strings.NewReader(""), 40); err == nil {
		t.Fatal("empty trace accepted")
	}
	// A meta line with no samples is readable but unrenderable.
	var buf bytes.Buffer
	sink, err := trace.NewJSONL(&buf, trace.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := RenderString(&buf, 40); err == nil {
		t.Fatal("sample-less trace accepted")
	}
}
