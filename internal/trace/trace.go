// Package trace is the simulator's epoch-sampled observability layer.
// A System with a Tracer attached snapshots every structure the paper's
// analysis reasons about — ROB/LSQ occupancy and stall-cause counters per
// core (plus the Proteus LogQ/log-register and ATOM in-flight state),
// WPQ/LPQ/read-queue depth and write-cause totals at the memory
// controller, and bank pressure at the NVM device — once per epoch
// (default every 10k cycles) and streams the samples as JSONL.
//
// Two contracts make the layer usable for divergence hunting:
//
//   - Counters are cumulative from cycle 0, so the final sample's totals
//     equal the end-of-run stats report (asserted by the trace tests);
//     per-epoch rates are first differences between adjacent samples.
//   - A disabled tracer (nil *Tracer on the System) costs one pointer
//     nil-check per simulated cycle and zero allocations; the guard lives
//     in the repository's bench_test.go.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 names the JSONL schema emitted by this package.
const SchemaV1 = "proteus-trace/v1"

// DefaultEpoch is the sampling period in cycles when none is given.
const DefaultEpoch = 10_000

// Meta is the first record of a trace: everything a reader needs to
// interpret the sample stream.
type Meta struct {
	Schema string `json:"schema"`
	// Label identifies the run (typically "workload/scheme/mem").
	Label string `json:"label,omitempty"`
	// Fingerprint is the machine configuration's digest
	// (config.Config.Fingerprint), tying a trace to its exact config.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Epoch is the sampling period in cycles.
	Epoch uint64 `json:"epoch"`
	Cores int    `json:"cores"`
}

// CoreSample is one core's state at an epoch boundary. Occupancy fields
// are instantaneous; counter fields are cumulative since cycle 0.
type CoreSample struct {
	ROB      int `json:"rob"`
	LoadQ    int `json:"loadq"`
	StoreQ   int `json:"storeq"`
	StoreBuf int `json:"storebuf"`
	// Proteus structures (zero in other modes).
	LogQ        int `json:"logq"`
	FreeLogRegs int `json:"freelr"`
	// ATOM outstanding hardware log-creation requests.
	ATOMInFlight int `json:"atomq"`

	Retired     uint64 `json:"retired"`
	StallROB    uint64 `json:"stall_rob"`
	StallLoadQ  uint64 `json:"stall_loadq"`
	StallStoreQ uint64 `json:"stall_storeq"`
	StallLogReg uint64 `json:"stall_logreg"`
	StallLogQ   uint64 `json:"stall_logq"`
	SfenceWait  uint64 `json:"sfence_wait"`
	PcommitWait uint64 `json:"pcommit_wait"`
}

// MemSample is the memory-side state at an epoch boundary: queue depths
// are instantaneous, traffic counters cumulative.
type MemSample struct {
	WPQ       int `json:"wpq"`
	LPQ       int `json:"lpq"`
	ReadQ     int `json:"readq"`
	BusyBanks int `json:"busy_banks"`

	Reads          uint64 `json:"reads"`
	WritesData     uint64 `json:"writes_data"`
	WritesLog      uint64 `json:"writes_log"`
	WritesTruncate uint64 `json:"writes_truncate"`
	LPQAccepted    uint64 `json:"lpq_accepted"`
	LPQDropped     uint64 `json:"lpq_dropped"`
	LPQDrained     uint64 `json:"lpq_drained"`
}

// Sample is one epoch snapshot — one JSONL line.
type Sample struct {
	Cycle uint64 `json:"cycle"`
	// Final marks the end-of-run sample, taken after the residual WPQ
	// drain; its counters equal the stats report.
	Final bool         `json:"final,omitempty"`
	Cores []CoreSample `json:"cores"`
	Mem   MemSample    `json:"mem"`
}

// Sink consumes samples. Implementations are driven from the single
// simulation goroutine and need not be safe for concurrent use.
type Sink interface {
	Emit(*Sample) error
	Close() error
}

// Tracer pairs a sink with a sampling period; it is what a System drives.
// A nil *Tracer means tracing is disabled.
type Tracer struct {
	sink  Sink
	epoch uint64
	err   error
}

// New returns a tracer sampling every epoch cycles (0 = DefaultEpoch).
func New(sink Sink, epoch uint64) *Tracer {
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	return &Tracer{sink: sink, epoch: epoch}
}

// Epoch returns the sampling period in cycles.
func (t *Tracer) Epoch() uint64 { return t.epoch }

// Emit forwards one sample to the sink. The first sink error sticks:
// later samples are dropped and Err reports it, so the simulation loop
// never has to branch on I/O failures.
func (t *Tracer) Emit(s *Sample) {
	if t.err == nil {
		t.err = t.sink.Emit(s)
	}
}

// Err returns the first sink error, if any.
func (t *Tracer) Err() error { return t.err }

// Close flushes and closes the sink, returning the first error seen over
// the tracer's lifetime.
func (t *Tracer) Close() error {
	if err := t.sink.Close(); t.err == nil {
		t.err = err
	}
	return t.err
}

// JSONL writes a trace as JSON lines: the Meta header first, then one
// object per sample. Output is buffered; Close flushes (and closes the
// underlying writer when it is an io.Closer).
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewJSONL writes the meta header to w and returns the sink. The schema
// field is forced to SchemaV1.
func NewJSONL(w io.Writer, meta Meta) (*JSONL, error) {
	meta.Schema = SchemaV1
	if meta.Epoch == 0 {
		meta.Epoch = DefaultEpoch
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return nil, fmt.Errorf("trace: writing meta: %w", err)
	}
	s := &JSONL{bw: bw, enc: enc}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s, nil
}

// Emit writes one sample line.
func (s *JSONL) Emit(sm *Sample) error { return s.enc.Encode(sm) }

// Close flushes the buffer and closes the underlying writer if possible.
func (s *JSONL) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NewJSONLTracer is the one-call constructor the CLIs use: a JSONL sink
// on w plus a tracer sampling every epoch cycles (0 = DefaultEpoch).
func NewJSONLTracer(w io.Writer, meta Meta, epoch uint64) (*Tracer, error) {
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	meta.Epoch = epoch
	sink, err := NewJSONL(w, meta)
	if err != nil {
		return nil, err
	}
	return New(sink, epoch), nil
}

// Read parses a JSONL trace produced by a JSONL sink: the meta header
// followed by every sample.
func Read(r io.Reader) (Meta, []Sample, error) {
	var meta Meta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var samples []Sample
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			if err := json.Unmarshal(line, &meta); err != nil {
				return meta, nil, fmt.Errorf("trace: malformed meta line: %w", err)
			}
			if meta.Schema != SchemaV1 {
				return meta, nil, fmt.Errorf("trace: unknown schema %q (want %q)", meta.Schema, SchemaV1)
			}
			continue
		}
		var s Sample
		if err := json.Unmarshal(line, &s); err != nil {
			return meta, samples, fmt.Errorf("trace: malformed sample at line %d: %w", len(samples)+2, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return meta, samples, fmt.Errorf("trace: %w", err)
	}
	if first {
		return meta, nil, fmt.Errorf("trace: empty input (no meta line)")
	}
	return meta, samples, nil
}
