package trace_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestJSONLRoundTrip(t *testing.T) {
	meta := trace.Meta{Label: "QE/Proteus/nvm-fast", Fingerprint: "abc123", Epoch: 5000, Cores: 2}
	samples := []trace.Sample{
		{Cycle: 5000, Cores: []trace.CoreSample{{ROB: 12, LogQ: 3, Retired: 100}, {ROB: 7, FreeLogRegs: 8}},
			Mem: trace.MemSample{WPQ: 4, LPQ: 9, Reads: 55, WritesData: 12}},
		{Cycle: 10000, Cores: []trace.CoreSample{{ROB: 1, StallLogQ: 17}, {StoreBuf: 2, SfenceWait: 3}},
			Mem: trace.MemSample{BusyBanks: 2, LPQDropped: 40}},
		{Cycle: 12345, Final: true, Cores: []trace.CoreSample{{Retired: 500}, {Retired: 498}},
			Mem: trace.MemSample{WritesLog: 7, LPQAccepted: 47, LPQDrained: 7}},
	}
	var buf bytes.Buffer
	sink, err := trace.NewJSONL(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if err := sink.Emit(&samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	gotMeta, got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := meta
	wantMeta.Schema = trace.SchemaV1
	if gotMeta != wantMeta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, wantMeta)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatalf("samples round-trip:\ngot  %+v\nwant %+v", got, samples)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, _, err := trace.Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := trace.Read(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, _, err := trace.Read(strings.NewReader(`{"schema":"proteus-trace/v1","epoch":1}` + "\nnot-json\n")); err == nil {
		t.Fatal("malformed sample line accepted")
	}
}

// errSink fails on the nth Emit; used to verify the sticky-error contract.
type errSink struct{ n, calls int }

func (s *errSink) Emit(*trace.Sample) error {
	s.calls++
	if s.calls >= s.n {
		return errors.New("sink full")
	}
	return nil
}
func (s *errSink) Close() error { return nil }

func TestTracerStickyError(t *testing.T) {
	sink := &errSink{n: 2}
	tr := trace.New(sink, 0)
	if tr.Epoch() != trace.DefaultEpoch {
		t.Fatalf("epoch %d, want default %d", tr.Epoch(), trace.DefaultEpoch)
	}
	var s trace.Sample
	tr.Emit(&s)
	if tr.Err() != nil {
		t.Fatal("error before the sink failed")
	}
	tr.Emit(&s)
	if tr.Err() == nil {
		t.Fatal("sink error not surfaced")
	}
	tr.Emit(&s)
	if sink.calls != 2 {
		t.Fatalf("sink called %d times after failure, want 2 (emits must stop)", sink.calls)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close dropped the sticky error")
	}
}

// runTraced runs one small QE simulation with a tracer attached and
// returns the trace contents plus the run's report.
func runTraced(t *testing.T, scheme core.Scheme, epoch uint64) ([]byte, *stats.Report) {
	t.Helper()
	cfg := config.Default()
	cfg.Cores = 2
	p := workload.Params{Threads: 2, InitOps: 64, SimOps: 24, Seed: 1}
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := logging.Generate(w, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, scheme, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr, err := trace.NewJSONLTracer(&buf, trace.Meta{Label: "QE", Cores: cfg.Cores}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(tr)
	rep, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestFinalSampleMatchesReport asserts the layer's totals contract: the
// final sample's cumulative counters equal the end-of-run stats report,
// so a trace never disagrees with the numbers the tables print.
func TestFinalSampleMatchesReport(t *testing.T) {
	for _, scheme := range []core.Scheme{core.Proteus, core.ATOM, core.PMEM} {
		data, rep := runTraced(t, scheme, 1000)
		meta, samples, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if meta.Epoch != 1000 || meta.Cores != 2 {
			t.Fatalf("%v: meta %+v", scheme, meta)
		}
		if len(samples) == 0 {
			t.Fatalf("%v: no samples", scheme)
		}
		for _, s := range samples[:len(samples)-1] {
			if s.Final {
				t.Fatalf("%v: non-last sample marked final", scheme)
			}
		}
		last := samples[len(samples)-1]
		if !last.Final {
			t.Fatalf("%v: last sample not marked final", scheme)
		}
		if last.Cycle != rep.Cycles {
			t.Errorf("%v: final sample at cycle %d, report says %d", scheme, last.Cycle, rep.Cycles)
		}
		var retired, stalls uint64
		for i, c := range last.Cores {
			retired += c.Retired
			stalls += c.StallROB + c.StallLoadQ + c.StallStoreQ + c.StallLogReg + c.StallLogQ
			if c.Retired != rep.CoreStat[i].Retired {
				t.Errorf("%v: core %d retired %d, report %d", scheme, i, c.Retired, rep.CoreStat[i].Retired)
			}
		}
		if retired != rep.TotalRetired() {
			t.Errorf("%v: final retired %d, report %d", scheme, retired, rep.TotalRetired())
		}
		if stalls != rep.TotalFrontEndStalls() {
			t.Errorf("%v: final stalls %d, report %d", scheme, stalls, rep.TotalFrontEndStalls())
		}
		m, rm := last.Mem, rep.MemStat
		if m.Reads != rm.Reads || m.WritesData != rm.Writes[stats.WriteData] ||
			m.WritesLog != rm.Writes[stats.WriteLog] || m.WritesTruncate != rm.Writes[stats.WriteTruncate] {
			t.Errorf("%v: final mem sample %+v disagrees with report %+v", scheme, m, rm)
		}
		if m.LPQAccepted != rm.LPQAccepted || m.LPQDropped != rm.LPQDropped || m.LPQDrained != rm.LPQDrained {
			t.Errorf("%v: final LPQ counters %+v disagree with report", scheme, m)
		}
		// Epochal samples must be strictly ordered and cumulative.
		for i := 1; i < len(samples); i++ {
			if samples[i].Cycle <= samples[i-1].Cycle {
				t.Fatalf("%v: sample cycles not increasing at %d", scheme, i)
			}
			for c := range samples[i].Cores {
				if samples[i].Cores[c].Retired < samples[i-1].Cores[c].Retired {
					t.Fatalf("%v: retired counter went backwards at sample %d", scheme, i)
				}
			}
		}
	}
}

// TestSinkFailureSurfacesFromRun asserts a failing sink turns into a run
// error instead of being silently dropped.
func TestSinkFailureSurfacesFromRun(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 1
	p := workload.Params{Threads: 1, InitOps: 32, SimOps: 16, Seed: 1}
	w, err := workload.Build(workload.Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := logging.Generate(w, core.Proteus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, core.Proteus, traces, w.InitImage)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(trace.New(&errSink{n: 1}, 100))
	if _, err := sys.Run(0); err == nil {
		t.Fatal("run succeeded despite a failing trace sink")
	}
}
