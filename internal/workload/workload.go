// Package workload builds the benchmarks of Table 2 (and the Table 3
// linked-list microbenchmark): it populates the persistent data structures
// with the initialization operations (fast-forwarded: executed functionally
// but not recorded), then records each timed operation as one durable
// transaction. Operation types and keys come from a seeded generator — the
// equivalent of the paper's pre-generated random input files.
//
// Structures are partitioned across threads (structure i belongs to thread
// i mod Threads), so locks are executed but never contended; the paper
// sizes its structure counts to the same end (§5.2) and treats inter-thread
// synchronization as out of scope.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/nvm"
	"repro/internal/pstruct"
)

// Kind identifies a benchmark.
type Kind int

const (
	Queue Kind = iota
	HashMap
	StringSwap
	AVLTree
	BTree
	RBTree
	LinkedList // Table 3 microbenchmark
	// Litmus marks hand-assembled litmus-test workloads (internal/litmus)
	// built directly from heap recordings rather than by Build; it is not
	// part of the benchmark tables.
	Litmus
)

// Abbrev returns the paper's benchmark abbreviation.
func (k Kind) Abbrev() string {
	switch k {
	case Queue:
		return "QE"
	case HashMap:
		return "HM"
	case StringSwap:
		return "SS"
	case AVLTree:
		return "AT"
	case BTree:
		return "BT"
	case RBTree:
		return "RT"
	case LinkedList:
		return "LL"
	case Litmus:
		return "LT"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

func (k Kind) String() string { return k.Abbrev() }

// Table2 lists the six evaluation benchmarks in the paper's figure order.
var Table2 = []Kind{Queue, HashMap, StringSwap, AVLTree, BTree, RBTree}

// KindByName resolves a benchmark by its paper abbreviation,
// case-insensitively (QE, HM, SS, AT, BT, RT, LL). It is the shared
// parser for every CLI flag and HTTP job spec naming a benchmark.
func KindByName(name string) (Kind, error) {
	for _, k := range append(append([]Kind{}, Table2...), LinkedList) {
		if strings.EqualFold(k.Abbrev(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown benchmark %q (want QE, HM, SS, AT, BT, RT, LL)", name)
}

// Params configures a workload build.
type Params struct {
	Threads int
	InitOps int // per thread, fast-forwarded
	SimOps  int // per thread, recorded as transactions
	Seed    int64

	// StringSwap sizing.
	SSItems   int // per thread
	SSStrSize int

	// LinkedList (Table 3) sizing.
	ListNodes int // per thread
	ListElems int // elements per node = per-transaction update count

	// Mix controls the operation mix for the keyed benchmarks beyond the
	// paper's 50/50 insert-or-delete: percentages of inserts, deletes and
	// read-only lookups. Zero values select the paper's mix (50/50/0).
	Mix OpMix
}

// OpMix is an operation mix in percent; the three fields sum to 100 (or
// all zero for the default 50/50 insert/delete mix of §5.2).
type OpMix struct {
	InsertPct int
	DeletePct int
	LookupPct int
}

func (m OpMix) normalized() (OpMix, error) {
	if m == (OpMix{}) {
		return OpMix{InsertPct: 50, DeletePct: 50}, nil
	}
	if m.InsertPct < 0 || m.DeletePct < 0 || m.LookupPct < 0 ||
		m.InsertPct+m.DeletePct+m.LookupPct != 100 {
		return m, fmt.Errorf("workload: operation mix %+v does not sum to 100", m)
	}
	return m, nil
}

// DefaultParams returns the Table 2 configuration for the benchmark,
// scaled down by scale (scale 1 reproduces the paper's counts; the test
// and bench harnesses use larger scales to keep runs fast — the per-
// transaction behaviour is unchanged, only the number of timed
// transactions shrinks).
func (k Kind) DefaultParams(scale int) Params {
	if scale < 1 {
		scale = 1
	}
	p := Params{Threads: 4, Seed: 42, SSStrSize: 256, ListNodes: 16, ListElems: 1024}
	switch k {
	case Queue:
		p.InitOps, p.SimOps = 20000/scale, 50000/scale
	case HashMap:
		p.InitOps, p.SimOps = 100000/scale, 20000/scale
	case StringSwap:
		p.InitOps, p.SimOps = 20000/scale, 50000/scale
		p.SSItems = 262144 / 4 / scale // per thread share of 262144 items
	case AVLTree, BTree, RBTree:
		p.InitOps, p.SimOps = 100000/scale, 10000/scale
	case LinkedList:
		p.InitOps, p.SimOps = 0, 256/scale
	}
	if p.InitOps < 16 && k != LinkedList {
		p.InitOps = 16
	}
	if p.SimOps < 8 {
		p.SimOps = 8
	}
	if p.SSItems < 64 {
		p.SSItems = 64
	}
	return p
}

// structCount returns the Table 2 structure count for the benchmark.
func (k Kind) structCount() int {
	switch k {
	case Queue:
		return 8
	case HashMap, AVLTree, BTree, RBTree:
		return 16
	default:
		return 1 // per-thread substrate (SS array, LL list)
	}
}

// checker is the invariant-verification surface every structure offers.
type checker interface{ Check() error }

// Workload is a built benchmark: the functional image after
// initialization, the recorded transactions per thread, and the live
// structures (for invariant checks).
type Workload struct {
	Kind   Kind
	Params Params
	// InitImage is the functional NVM contents after the fast-forwarded
	// initialization — the image the timing simulation starts from.
	InitImage *nvm.Store
	// Heaps hold the recorded transactions, one per thread.
	Heaps []*heap.Heap
	// Structs are the per-thread structures, for invariant checks.
	Structs [][]checker
}

// lockAddr returns the volatile lock word of a thread's s-th structure.
func lockAddr(thread, s int) uint64 {
	base, _ := isa.VolatileWindow(thread)
	return base + uint64(s)*isa.LineSize
}

// keyed abstracts the set-like structures (HM, AT, BT, RT).
type keyed interface {
	checker
	insert(key uint64) bool
	remove(key uint64) bool
	lookup(key uint64) bool
}

type hashMapAdapter struct{ *pstruct.HashMap }

func (a hashMapAdapter) insert(k uint64) bool { return a.Insert(k, k^0xDEAD) }
func (a hashMapAdapter) remove(k uint64) bool { return a.Delete(k) }
func (a hashMapAdapter) lookup(k uint64) bool { _, ok := a.Lookup(k); return ok }

type avlAdapter struct{ *pstruct.AVL }

func (a avlAdapter) insert(k uint64) bool { return a.Insert(k, k^0xDEAD) }
func (a avlAdapter) remove(k uint64) bool { return a.Delete(k) }
func (a avlAdapter) lookup(k uint64) bool { _, ok := a.Lookup(k); return ok }

type btreeAdapter struct{ *pstruct.BTree }

func (a btreeAdapter) insert(k uint64) bool { return a.Insert(k) }
func (a btreeAdapter) remove(k uint64) bool { return a.Delete(k) }
func (a btreeAdapter) lookup(k uint64) bool { return a.Contains(k) }

type rbAdapter struct{ *pstruct.RBTree }

func (a rbAdapter) insert(k uint64) bool { return a.Insert(k, k^0xDEAD) }
func (a rbAdapter) remove(k uint64) bool { return a.Delete(k) }
func (a rbAdapter) lookup(k uint64) bool { _, ok := a.Lookup(k); return ok }

// Build constructs and records the workload.
func Build(kind Kind, p Params) (*Workload, error) {
	if p.Threads < 1 || p.Threads > isa.MaxThreads {
		return nil, fmt.Errorf("workload: bad thread count %d", p.Threads)
	}
	if p.SimOps < 1 {
		return nil, fmt.Errorf("workload: SimOps must be positive")
	}
	if _, err := p.Mix.normalized(); err != nil {
		return nil, err
	}
	img := nvm.NewStore()
	w := &Workload{Kind: kind, Params: p}

	type threadState struct {
		h   *heap.Heap
		rng *rand.Rand
		op  func(r *rand.Rand)
	}
	states := make([]*threadState, p.Threads)

	// Phase 1: build and initialize (fast-forwarded, unrecorded).
	for t := 0; t < p.Threads; t++ {
		h := heap.New(t, img)
		rng := rand.New(rand.NewSource(p.Seed + int64(t)*1_000_003))
		ts := &threadState{h: h, rng: rng}
		states[t] = ts
		w.Heaps = append(w.Heaps, h)

		switch kind {
		case Queue, HashMap, AVLTree, BTree, RBTree:
			n := kind.structCount()
			var owned []int
			for s := 0; s < n; s++ {
				if s%p.Threads == t {
					owned = append(owned, s)
				}
			}
			if len(owned) == 0 {
				owned = append(owned, t%n)
			}
			checks, op := buildKeyed(kind, h, t, owned, p, rng)
			w.Structs = append(w.Structs, checks)
			ts.op = op

		case StringSwap:
			arr := pstruct.NewStringArray(h, p.SSItems, p.SSStrSize)
			w.Structs = append(w.Structs, []checker{arr})
			lock := lockAddr(t, 0)
			ts.op = func(r *rand.Rand) {
				i, j := r.Intn(arr.Len()), r.Intn(arr.Len())
				h.Begin(lock)
				arr.Swap(i, j)
				h.End()
			}
			for i := 0; i < p.InitOps; i++ {
				arr.Swap(rng.Intn(arr.Len()), rng.Intn(arr.Len()))
			}

		case LinkedList:
			ll := pstruct.NewLinkedList(h, p.ListNodes, p.ListElems)
			w.Structs = append(w.Structs, []checker{ll})
			lock := lockAddr(t, 0)
			ts.op = func(r *rand.Rand) {
				h.Begin(lock)
				ll.UpdateNext(1)
				h.End()
			}

		default:
			return nil, fmt.Errorf("workload: unknown kind %v", kind)
		}
	}

	// The timing simulation starts from this image.
	w.InitImage = img.Snapshot()

	// Phase 2: record the timed operations as durable transactions.
	for _, ts := range states {
		ts.h.SetRecording(true)
		for i := 0; i < p.SimOps; i++ {
			ts.op(ts.rng)
		}
		ts.h.SetRecording(false)
	}
	return w, nil
}

// buildKeyed constructs the per-thread instances of a keyed benchmark,
// populates them, and returns the op closure (a random insert/delete — or
// enqueue/dequeue — on a random owned structure).
func buildKeyed(kind Kind, h *heap.Heap, thread int, owned []int, p Params, rng *rand.Rand) ([]checker, func(*rand.Rand)) {
	var checks []checker
	var queues []*pstruct.Queue
	var sets []keyed
	// Size hash maps for a load factor around one at the initial
	// population (half the key range is live on average).
	perMap := p.InitOps / len(owned)
	if perMap < 256 {
		perMap = 256
	}
	for range owned {
		switch kind {
		case Queue:
			q := pstruct.NewQueue(h)
			queues = append(queues, q)
			checks = append(checks, q)
		case HashMap:
			m := pstruct.NewHashMap(h, perMap)
			sets = append(sets, hashMapAdapter{m})
			checks = append(checks, m)
		case AVLTree:
			t := pstruct.NewAVL(h)
			sets = append(sets, avlAdapter{t})
			checks = append(checks, t)
		case BTree:
			t := pstruct.NewBTree(h)
			sets = append(sets, btreeAdapter{t})
			checks = append(checks, t)
		case RBTree:
			t := pstruct.NewRBTree(h)
			sets = append(sets, rbAdapter{t})
			checks = append(checks, t)
		}
	}

	// Keys are drawn from twice the initial population so deletes hit
	// roughly half the time.
	perStruct := p.InitOps / len(owned)
	if perStruct < 1 {
		perStruct = 1
	}
	keyRange := uint64(2 * perStruct)
	if keyRange < 16 {
		keyRange = 16
	}
	key := func(r *rand.Rand) uint64 { return uint64(r.Int63n(int64(keyRange))) + 1 }

	if kind == Queue {
		for i := 0; i < p.InitOps; i++ {
			queues[rng.Intn(len(queues))].Enqueue(rng.Uint64())
		}
		return checks, func(r *rand.Rand) {
			q := queues[r.Intn(len(queues))]
			lock := lockAddr(thread, r.Intn(len(queues)))
			h.Begin(lock)
			if r.Intn(2) == 0 {
				q.Enqueue(r.Uint64())
			} else if _, ok := q.Dequeue(); !ok {
				q.Enqueue(r.Uint64())
			}
			h.End()
		}
	}

	for i := 0; i < p.InitOps; i++ {
		sets[rng.Intn(len(sets))].insert(key(rng))
	}
	mix, _ := p.Mix.normalized()
	return checks, func(r *rand.Rand) {
		si := r.Intn(len(sets))
		s := sets[si]
		lock := lockAddr(thread, si)
		h.Begin(lock)
		switch roll := r.Intn(100); {
		case roll < mix.InsertPct:
			s.insert(key(r))
		case roll < mix.InsertPct+mix.DeletePct:
			s.remove(key(r))
		default:
			s.lookup(key(r))
		}
		h.End()
	}
}

// Check runs every structure's invariant verification.
func (w *Workload) Check() error {
	for t, cs := range w.Structs {
		for i, c := range cs {
			if err := c.Check(); err != nil {
				return fmt.Errorf("workload %v thread %d structure %d: %w", w.Kind, t, i, err)
			}
		}
	}
	return nil
}
