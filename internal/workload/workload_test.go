package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range append(append([]Kind{}, Table2...), LinkedList) {
		kind := kind
		t.Run(kind.Abbrev(), func(t *testing.T) {
			p := Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 1,
				SSItems: 128, SSStrSize: 256, ListNodes: 4, ListElems: 32}
			w, err := Build(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Check(); err != nil {
				t.Fatal(err)
			}
			if len(w.Heaps) != p.Threads {
				t.Fatalf("%d heaps", len(w.Heaps))
			}
			for th, h := range w.Heaps {
				if len(h.Txns) != p.SimOps {
					t.Fatalf("thread %d recorded %d txns, want %d", th, len(h.Txns), p.SimOps)
				}
				for i, txn := range h.Txns {
					if txn.ID != uint32(i+1) {
						t.Fatalf("thread %d txn %d has ID %d", th, i, txn.ID)
					}
					if len(txn.Ops) == 0 {
						t.Fatalf("thread %d txn %d empty", th, i)
					}
					if !isa.IsVolatileAddr(txn.Lock) {
						t.Fatalf("lock %#x not volatile", txn.Lock)
					}
					// Every access stays inside the thread's heap window.
					base, limit := isa.HeapWindow(th)
					for _, a := range txn.Ops {
						if a.Addr < base || a.Addr >= limit {
							t.Fatalf("thread %d access %#x outside window", th, a.Addr)
						}
					}
				}
			}
		})
	}
}

func TestThreadPartitioning(t *testing.T) {
	// Two builds with different thread counts must both work; and threads
	// never share write lines.
	w, err := Build(HashMap, Params{Threads: 3, InitOps: 96, SimOps: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[uint64]int)
	for th, h := range w.Heaps {
		for _, txn := range h.Txns {
			for a := range txn.Pre {
				line := isa.LineAddr(a)
				if prev, ok := owner[line]; ok && prev != th {
					t.Fatalf("line %#x written by threads %d and %d", line, prev, th)
				}
				owner[line] = th
			}
		}
	}
}

func TestDefaultParams(t *testing.T) {
	for _, k := range Table2 {
		p := k.DefaultParams(1)
		if p.Threads != 4 {
			t.Fatalf("%v: threads %d", k, p.Threads)
		}
		if p.SimOps <= 0 || p.InitOps <= 0 {
			t.Fatalf("%v: non-positive ops", k)
		}
	}
	// Table 2 exact counts at scale 1.
	if p := Queue.DefaultParams(1); p.InitOps != 20000 || p.SimOps != 50000 {
		t.Fatalf("QE params: %+v", p)
	}
	if p := HashMap.DefaultParams(1); p.InitOps != 100000 || p.SimOps != 20000 {
		t.Fatalf("HM params: %+v", p)
	}
	if p := AVLTree.DefaultParams(1); p.InitOps != 100000 || p.SimOps != 10000 {
		t.Fatalf("AT params: %+v", p)
	}
}

func TestDeterministicRecording(t *testing.T) {
	p := Params{Threads: 2, InitOps: 64, SimOps: 16, Seed: 9}
	w1, _ := Build(RBTree, p)
	w2, _ := Build(RBTree, p)
	for th := range w1.Heaps {
		a, b := w1.Heaps[th].Txns, w2.Heaps[th].Txns
		if len(a) != len(b) {
			t.Fatal("txn count differs")
		}
		for i := range a {
			if len(a[i].Ops) != len(b[i].Ops) {
				t.Fatalf("thread %d txn %d op count differs", th, i)
			}
			for j := range a[i].Ops {
				if a[i].Ops[j] != b[i].Ops[j] {
					t.Fatalf("thread %d txn %d op %d differs", th, i, j)
				}
			}
		}
	}
}

func TestInitImagePredatesSimOps(t *testing.T) {
	p := Params{Threads: 1, InitOps: 32, SimOps: 8, Seed: 2}
	w, err := Build(Queue, p)
	if err != nil {
		t.Fatal(err)
	}
	// The first timed transaction's pre-image of every word must equal
	// the init image (nothing of the timed ops leaked in).
	txn := w.Heaps[0].Txns[0]
	for a, pre := range txn.Pre {
		if got := w.InitImage.ReadUint64(a); got != pre {
			t.Fatalf("init image at %#x = %#x, first txn pre = %#x", a, got, pre)
		}
	}
}

func TestOpMix(t *testing.T) {
	// Lookup-heavy mix: transactions exist but most write nothing.
	p := Params{Threads: 1, InitOps: 128, SimOps: 64, Seed: 4,
		Mix: OpMix{InsertPct: 10, DeletePct: 10, LookupPct: 80}}
	w, err := Build(HashMap, p)
	if err != nil {
		t.Fatal(err)
	}
	readOnly := 0
	for _, txn := range w.Heaps[0].Txns {
		if len(txn.Pre) == 0 {
			readOnly++
		}
	}
	if readOnly < 64/4 {
		t.Fatalf("only %d of 64 transactions were read-only under an 80%% lookup mix", readOnly)
	}
	// Invalid mixes are rejected.
	if _, err := Build(HashMap, Params{Threads: 1, InitOps: 16, SimOps: 8,
		Mix: OpMix{InsertPct: 60, DeletePct: 60}}); err == nil {
		t.Fatal("mix summing to 120 accepted")
	}
}
