#!/usr/bin/env bash
# Benchmark trajectory: run the repo's bench_test.go suite, snapshot it as
# a BENCH_<n>.json at the repo root via cmd/benchjson, and gate against the
# newest committed snapshot — any shared benchmark more than MAX_REGRESS
# percent slower on ns/op or allocs/op fails the script.
#
# Usage:
#   scripts/bench_report.sh                 # write BENCH_10.json, gate vs previous
#   scripts/bench_report.sh /tmp/ci.json    # CI: throwaway snapshot, gate vs committed
#
# Environment:
#   BENCH        benchmark regexp passed to -bench      (default: .)
#   BENCHTIME    -benchtime value                       (default: 1x)
#   MAX_REGRESS  tolerance percent for the gate         (default: 20)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_10.json}"
BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1x}"
MAX_REGRESS="${MAX_REGRESS:-20}"

say() { echo "bench_report: $*" >&2; }

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# The suite has two kinds of benchmarks: macro experiment regenerations
# (one iteration IS the experiment — BENCHTIME 1x) and the Step/Admission
# micro benchmarks, where a single iteration is noise-dominated and needs
# a time-based budget to converge.
say "running go test -bench '$BENCH' -benchtime $BENCHTIME (macro)"
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count 1 . \
    | grep -Ev '^Benchmark(Step|Admission)' | tee "$RAW"
say "running go test -bench 'Benchmark(Step|Admission)' -benchtime ${MICRO_BENCHTIME:-2s} (micro)"
go test -run '^$' -bench '^Benchmark(Step|Admission)' -benchmem -benchtime "${MICRO_BENCHTIME:-2s}" -count 1 . \
    | tee -a "$RAW"

go run ./cmd/benchjson -emit "$OUT" <"$RAW"
say "snapshot written to $OUT"

# Gate against the newest committed snapshot other than the one we just
# wrote. The first snapshot of a series has no baseline and passes.
BASELINE=$(git ls-files 'BENCH_*.json' | sort -V | grep -vx "$(basename "$OUT")" | tail -1 || true)
if [ -z "$BASELINE" ]; then
    say "no committed baseline snapshot; skipping regression gate"
    exit 0
fi
say "gating against $BASELINE (tolerance ${MAX_REGRESS}%)"
go run ./cmd/benchjson -old "$BASELINE" -new "$OUT" -max-regress "$MAX_REGRESS"
say "within tolerance — PASS"
