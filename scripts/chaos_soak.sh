#!/usr/bin/env bash
# Fixed-seed chaos soak of the serve/cluster/resultstore stack, built
# with -race. Each iteration proteus-chaos runs the same crash campaign
# fault-free and on a real in-process cluster with injected disk faults
# (torn writes, bit flips, ENOSPC, fsync failure, crash-before-rename),
# network faults (drops, delays, duplicates, 5xx) and process faults
# (worker killed mid-batch, stalls past the lease TTL), and asserts the
# two reports are byte-identical. The run fails on any mismatch, any
# quarantined cluster item, or corruption that survives the final scrub.
#
# Env overrides: SEED (default 42), DURATION (default 60s),
# WORKERS (default 3), OUT_DIR (default a temp dir; soak report and
# stores land there for artifact upload).
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-42}"
DURATION="${DURATION:-60s}"
WORKERS="${WORKERS:-3}"
OUT_DIR="${OUT_DIR:-$(mktemp -d)}"
mkdir -p "$OUT_DIR"

say() { echo "chaos_soak: $*" >&2; }

BIN="$OUT_DIR/proteus-chaos"
go build -race -o "$BIN" ./cmd/proteus-chaos
say "built proteus-chaos (-race); seed=$SEED duration=$DURATION workers=$WORKERS"

"$BIN" -seed "$SEED" -duration "$DURATION" -workers "$WORKERS" \
    -faults fs,http,kill -store "$OUT_DIR/stores" -out "$OUT_DIR/soak-report.json"

say "soak passed; report at $OUT_DIR/soak-report.json"
